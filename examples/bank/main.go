// Bank: the paper's Listing 1 write-skew walkthrough. Two accounts share
// the invariant checking + saving > 0. Concurrent withdrawals that read
// both accounts but write different ones slip through snapshot isolation
// (§5); the example then shows the three remedies the paper discusses:
// the write-skew tool with automatic read promotion (§5.1), SSI-TM
// (§5.2), and — for contrast — a serializable baseline.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/skew"
	"repro/internal/tm"
	"repro/internal/twopl"
	"repro/internal/txlib"
)

// scenario runs the two concurrent withdrawals of Listing 1 and returns
// the final balances plus the engine's abort count.
func scenario(engine tm.Engine) (checking, saving int64, aborts uint64) {
	m := txlib.NewMem(engine)
	accChecking := m.A.AllocLines(1)
	accSaving := m.A.AllocLines(1)
	engine.NonTxWrite(accChecking, 60)
	engine.NonTxWrite(accSaving, 60)

	withdraw := func(tx tm.Txn, account mem.Addr, value uint64) {
		tx.Site("bank.check")
		if tx.Read(accChecking)+tx.Read(accSaving) > value {
			tx.Site("bank.withdraw")
			tx.Write(account, tx.Read(account)-value)
		}
	}

	// Two logical threads withdraw 100 concurrently from different
	// accounts; each sees 120 total in its snapshot and proceeds.
	sched.New(2, 1).Run(func(th *sched.Thread) {
		account := accChecking
		if th.ID() == 1 {
			account = accSaving
		}
		tx := engine.Begin(th)
		withdraw(tx, account, 100)
		_ = tx.Commit() // an abort here is the system saving us
	})
	return int64(engine.NonTxRead(accChecking)), int64(engine.NonTxRead(accSaving)), engine.Stats().TotalAborts()
}

func main() {
	fmt.Println("Listing 1: Withdraw code exhibiting write skew")
	fmt.Println()

	// 1. Plain SI-TM permits the anomaly.
	si := core.New(core.DefaultConfig())
	rec := skew.NewRecorder()
	si.SetTracer(rec)
	c, s, _ := scenario(si)
	fmt.Printf("SI-TM:   checking=%d saving=%d  -> invariant broken: sum=%d\n", c, s, c+s)

	// 2. The write-skew tool finds the cycle and names the sites.
	rep := rec.Analyze()
	fmt.Println()
	fmt.Print(rep)

	// 3. Automatic repair: promoted reads force a conflict.
	repaired := core.New(core.DefaultConfig())
	rep.Promote(repaired)
	c, s, aborts := scenario(repaired)
	fmt.Printf("\nSI-TM + read promotion: checking=%d saving=%d aborts=%d -> invariant holds\n", c, s, aborts)

	// 4. SSI-TM detects the dangerous structure in hardware (§5.2).
	ssiCfg := core.DefaultConfig()
	ssiCfg.Serializable = true
	c, s, aborts = scenario(core.New(ssiCfg))
	fmt.Printf("SSI-TM:                 checking=%d saving=%d aborts=%d -> invariant holds\n", c, s, aborts)

	// 5. The 2PL baseline is serializable from the start (and pays for
	// it with read-write aborts everywhere else).
	c, s, aborts = scenario(twopl.New(twopl.DefaultConfig()))
	fmt.Printf("2PL:                    checking=%d saving=%d aborts=%d -> invariant holds\n", c, s, aborts)
}
