// Quickstart: the smallest complete SI-TM program. It builds the
// simulated machine, starts transactions on four logical threads, and
// increments a set of shared counters through the snapshot-isolation
// transactional memory, printing the engine statistics at the end.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

func main() {
	// An SI-TM engine with the paper's default configuration: a
	// 4-version multiversioned memory with coalescing, lazy write-write
	// conflict detection, Table-1 cache latencies.
	engine := core.New(core.DefaultConfig())

	// The simulated address space. Allocations are cache-line aligned
	// so unrelated counters never share a conflict-detection unit.
	m := txlib.NewMem(engine)
	const nCounters = 8
	counters := txlib.NewVector(m, nCounters, true)

	// A deterministic 4-thread machine; the same seed always produces
	// the same interleaving, commits and aborts.
	machine := sched.New(4, 42)
	machine.Run(func(th *sched.Thread) {
		for i := 0; i < 100; i++ {
			c := th.Rand().Intn(nCounters)
			// tm.Atomic retries the body until it commits, exactly
			// like the compiler-generated TM_BEGIN/TM_COMMIT loop.
			err := tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				counters.Add(tx, c, 1)
				return nil
			})
			if err != nil {
				panic(err)
			}
		}
	})

	total := counters.SumNonTx()
	st := engine.Stats()
	fmt.Printf("counter total:      %d (expected 400)\n", total)
	fmt.Printf("commits:            %d\n", st.Commits)
	fmt.Printf("write-write aborts: %d\n", st.Aborts[tm.AbortWriteWrite])
	fmt.Printf("simulated cycles:   %d\n", machine.Makespan())
}
