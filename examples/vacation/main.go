// Vacation: a travel-booking workload on the public API, comparing the
// three TM engines head to head. Reservation transactions browse many
// items across car/flight/room tables (long read phases over red-black
// trees) and book one — the long-read/small-write mix the paper's §6
// identifies as the ideal snapshot-isolation candidate.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sontm"
	"repro/internal/tm"
	"repro/internal/twopl"
	"repro/internal/txlib"
)

const (
	threads       = 16
	txnsPerThread = 40
	itemsPerTable = 256
	browsePerTxn  = 8
)

// book runs the reservation workload on engine and reports statistics.
func book(engine tm.Engine, bo tm.BackoffConfig) (commits, aborts, makespan uint64) {
	m := txlib.NewMem(engine)
	cars := txlib.NewRBTree(m)
	flights := txlib.NewRBTree(m)
	rooms := txlib.NewRBTree(m)
	tables := []*txlib.RBTree{cars, flights, rooms}
	keys := make([]uint64, itemsPerTable)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	for _, t := range tables {
		t.SeedNonTx(keys) // value = remaining capacity
	}

	machine := sched.New(threads, 2024)
	machine.Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < txnsPerThread; i++ {
			table := tables[r.Intn(len(tables))]
			wanted := make([]uint64, browsePerTxn)
			for q := range wanted {
				wanted[q] = uint64(1 + r.Intn(itemsPerTable))
			}
			err := tm.Atomic(engine, th, bo, func(tx tm.Txn) error {
				for _, item := range wanted {
					if capacity, ok := table.Lookup(tx, item); ok && capacity > 0 {
						table.Set(tx, item, capacity-1) // book it
						return nil
					}
				}
				return nil // fully booked: read-only transaction
			})
			if err != nil {
				panic(err)
			}
		}
	})
	st := engine.Stats()
	return st.Commits, st.TotalAborts(), machine.Makespan()
}

func main() {
	fmt.Printf("vacation: %d threads x %d reservations, %d items/table, browse %d\n\n",
		threads, txnsPerThread, itemsPerTable, browsePerTxn)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tcommits\taborts\tabort rate\tsimulated cycles")
	engines := []tm.Engine{
		twopl.New(twopl.DefaultConfig()),
		sontm.New(sontm.DefaultConfig()),
		core.New(core.DefaultConfig()),
	}
	for _, e := range engines {
		commits, aborts, cycles := book(e, tm.DefaultBackoff())
		rate := float64(aborts) / float64(commits+aborts)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%d\n", e.Name(), commits, aborts, rate, cycles)
	}
	tw.Flush()
	fmt.Println("\nSI-TM commits every browse-only transaction read-only and only")
	fmt.Println("aborts when two bookings collide on the same item (write-write).")
}
