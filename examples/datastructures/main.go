// Datastructures: concurrent use of the transactional containers and a
// live demonstration of the paper's Listing 2 anomaly — removing adjacent
// linked-list elements under snapshot isolation drops or retains nodes
// unless the remove also nulls the victim's next pointer (the line-10
// fix), which turns the anomaly into an honest write-write conflict.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// adjacentRemoves removes keys 20 and 30 from two concurrent threads and
// reports the surviving keys and abort count.
func adjacentRemoves(unsafe bool) (keys []uint64, aborts uint64) {
	engine := core.New(core.DefaultConfig())
	m := txlib.NewMem(engine)
	l := txlib.NewList(m)
	l.UnsafeRemove = unsafe
	l.SeedNonTx([]uint64{10, 20, 30, 40, 50})

	sched.New(2, 3).Run(func(th *sched.Thread) {
		k := uint64(20)
		if th.ID() == 1 {
			k = 30
		}
		// The retry loop re-executes a remove whose commit conflicted.
		if err := tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
			l.Remove(tx, k)
			return nil
		}); err != nil {
			panic(err)
		}
	})
	return l.KeysNonTx(), engine.Stats().TotalAborts()
}

func main() {
	fmt.Println("Listing 2: adjacent removes of 20 and 30 from [10 20 30 40 50]")

	keys, aborts := adjacentRemoves(true)
	fmt.Printf("  unsafe remove: keys=%v aborts=%d  <- 30 still reachable: write skew\n", keys, aborts)

	keys, aborts = adjacentRemoves(false)
	fmt.Printf("  safe remove:   keys=%v aborts=%d  <- conflict forced, retry removes both\n", keys, aborts)

	// The rest of the library under concurrent SI-TM load: a hash
	// table, a queue and a red-black tree with read promotion on its
	// update paths (the repair the paper's tool applies, §5.1).
	engine := core.New(core.DefaultConfig())
	engine.Promote(txlib.SiteRBInsert)
	engine.Promote(txlib.SiteRBDelete)
	engine.Promote(txlib.SiteRBFixup)
	m := txlib.NewMem(engine)
	table := txlib.NewHashtable(m, 64)
	queue := txlib.NewQueue(m)
	tree := txlib.NewRBTree(m)

	machine := sched.New(8, 7)
	machine.Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 50; i++ {
			k := uint64(1 + r.Intn(256))
			err := tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				switch r.Intn(4) {
				case 0:
					table.Set(tx, k, k)
					queue.Push(tx, k)
				case 1:
					if v, ok := queue.Pop(tx); ok {
						tree.Insert(tx, v, v)
					}
				case 2:
					tree.Delete(tx, k)
				default:
					table.Contains(tx, k)
					tree.Contains(tx, k)
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
		}
	})

	var invariant string
	sched.New(1, 1).Run(func(th *sched.Thread) {
		_ = tm.Atomic(engine, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
			invariant = tree.CheckInvariants(tx)
			return nil
		})
	})
	st := engine.Stats()
	fmt.Printf("\nmixed container run: commits=%d aborts=%d (ww=%d skew=%d)\n",
		st.Commits, st.TotalAborts(), st.Aborts[tm.AbortWriteWrite], st.Aborts[tm.AbortSkew])
	if invariant == "" {
		fmt.Println("red-black invariants: ok")
	} else {
		fmt.Println("red-black invariants: VIOLATED:", invariant)
	}
}
