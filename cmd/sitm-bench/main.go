// Command sitm-bench regenerates the tables and figures of the SI-TM
// paper's evaluation (§6) on the simulated machine:
//
//	sitm-bench -fig 1          Figure 1: RW vs WW abort breakdown in 2PL
//	sitm-bench -fig 7          Figure 7: abort rates relative to 2PL
//	sitm-bench -fig 8          Figure 8: application speedup curves
//	sitm-bench -table 1        Table 1: simulated architecture
//	sitm-bench -table 2        Table 2 / Appendix A: MVM version accesses
//	sitm-bench -all            everything above
//	sitm-bench -oltp           Figure OLTP: serving-tier abort rates and
//	                           p50/p99/p999 commit-latency tails (not in -all,
//	                           which keeps the paper set byte-stable)
//
// Flags -seeds, -threads, -workers, -workload, -word, -dropoldest and
// -nobackoff expose the evaluation's knobs and ablations. -workload
// accepts the paper workloads and the OLTP tier names (kv[@theta],
// ledger[@theta], e.g. kv@0.99). Sweeps are
// experiment plans executed on a shared-nothing worker pool; -workers
// bounds the pool (default: one worker per CPU) and the output is
// byte-identical at any worker count.
//
// -cache-dir names a persistent content-addressed result cache: every
// cell result is stored under a key hashing the cell, its configuration
// and fingerprints of the simulation sources, so a re-run with an
// unchanged tree simulates nothing and an engine edit recomputes only
// that engine's cells. Figure bytes are identical cold or warm.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/plot"
	"repro/internal/report"
)

// startProfiles begins the optional CPU profile and returns the function
// that stops it and writes the optional heap profile. The returned stop is
// idempotent so it can run both deferred and before os.Exit paths. Profile
// failures are diagnostics, not sweep failures: they warn on stderr.
func startProfiles(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "sitm-bench: -cpuprofile: %v\n", err)
			} else {
				fmt.Printf("wrote %s\n", cpuPath)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sitm-bench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialise the post-sweep live set
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sitm-bench: -memprofile: %v\n", err)
				return
			}
			fmt.Printf("wrote %s\n", memPath)
		}
	}
}

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (1, 7 or 8)")
		table      = flag.Int("table", 0, "table to regenerate (1 or 2)")
		all        = flag.Bool("all", false, "regenerate every figure and table of the paper set (excludes -oltp)")
		oltp       = flag.Bool("oltp", false, "regenerate the OLTP serving-tier figure: Zipfian kv/ledger abort rates and p50/p99/p999 commit-latency tails per engine, skew and thread count")
		threads    = flag.Int("threads", 32, "thread count for Figure 1 / Table 2")
		seeds      = flag.String("seeds", "1,2,3", "seeds to average over: N for seeds 1..N (the paper uses -seeds 5), or a comma-separated list of explicit seeds")
		workers    = flag.Int("workers", 0, "experiment-runner worker pool size (0 = one per CPU); results do not depend on it")
		workload   = flag.String("workload", "", "restrict sweeps to these comma-separated workloads (default: all); includes the OLTP tier names kv[@theta] and ledger[@theta]")
		progress   = flag.Bool("progress", false, "print per-cell progress to stderr as the sweep runs")
		word       = flag.Bool("word", false, "enable SI-TM word-granularity conflict filtering (§4.2)")
		dropOldest = flag.Bool("dropoldest", false, "use the drop-oldest version policy instead of abort-fifth (§3.1)")
		noBackoff  = flag.Bool("nobackoff", false, "replace exponential backoff with a constant delay (§6.4 ablation)")
		perEvent   = flag.Bool("per-event", false, "disable the conductor's horizon batching: schedule strictly per event (differential baseline; figure bytes are identical either way)")
		csvDir     = flag.String("csv", "", "also write figure7.csv / figure8.csv / table2.csv into this directory")
		verify     = flag.Bool("verify", false, "check the measured data against the paper's qualitative shapes and exit non-zero on deviation")
		chart      = flag.Bool("chart", false, "also render Figure 7/8 series as ASCII charts")
		scale      = flag.Int("scale", 1, "workload size multiplier (larger approaches the paper's inputs)")
		mvmStats   = flag.Bool("mvm", false, "report the §3 MVM behaviour (coalescing, GC, overheads, dedup) per workload")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory: cells whose key (cell + config + source fingerprints) is already stored are served without simulating; figure bytes are identical either way")
		jsonPath   = flag.String("json", "", "write a machine-readable benchmark trajectory (wall time, simulated Mcycles/s and hot-path allocs per section) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the sweeps (not the -json hot-path measurement) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile, taken after the sweeps complete, to this file")
	)
	flag.Parse()

	// stopProfiles flushes -cpuprofile / -memprofile once the sweeps are
	// done. It runs both deferred and explicitly before every later
	// os.Exit path, so a failing -verify still leaves usable profiles.
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	o := harness.DefaultOptions()
	o.WordGranularity = *word
	o.DropOldest = *dropOldest
	o.NoBackoff = *noBackoff
	o.PerEvent = *perEvent
	o.Scale = *scale
	o.Workers = *workers
	var err error
	if o.Seeds, err = parseSeeds(*seeds); err != nil {
		fmt.Fprintf(os.Stderr, "sitm-bench: %v\n", err)
		os.Exit(2)
	}
	if *workload != "" {
		for _, name := range strings.Split(*workload, ",") {
			name = strings.TrimSpace(name)
			f, err := harness.WorkloadByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sitm-bench: %v\n", err)
				os.Exit(2)
			}
			// Canonical form, so "kv" and "KV@0.99" address the same cells.
			o.Only = append(o.Only, f().Name())
		}
	}
	if *cacheDir != "" {
		c, err := exp.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: %v\n", err)
			os.Exit(2)
		}
		o.Cache = c
	}
	if *progress {
		o.Progress = func(p exp.Progress) {
			tag := "run"
			if p.Cached {
				tag = "hit"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s (%s)\n", p.Done, p.Total, p.Cell, tag, p.Wall.Round(time.Millisecond))
		}
	}
	var bench *benchCollector
	if *jsonPath != "" {
		bench = newBenchCollector(o.Workers, o.Seeds)
		bench.report.PerEvent = *perEvent
		o.CellDone = bench.cellDone
	}

	ran := false
	var findings report.Findings
	if *all || *table == 1 {
		harness.Table1(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *fig == 1 {
		bench.begin()
		results := harness.Figure1(os.Stdout, *threads, o)
		bench.end("figure1")
		if *verify {
			shares := make(map[string]float64, len(results))
			for _, r := range results {
				if t := r.RWAborts + r.WWAborts; t > 0 {
					shares[r.Workload] = r.RWAborts / t
				}
			}
			findings = append(findings, report.CheckFigure1(shares)...)
		}
		fmt.Println()
		ran = true
	}
	if *all || *fig == 7 {
		bench.begin()
		data := harness.Figure7(os.Stdout, o)
		bench.end("figure7")
		writeCSV(*csvDir, "figure7.csv", func(w *os.File) error { return harness.WriteFigure7CSV(w, data) })
		if *chart {
			chartFigure7(data)
		}
		if *verify {
			findings = append(findings, report.CheckFigure7(data)...)
		}
		fmt.Println()
		ran = true
	}
	if *all || *fig == 8 {
		bench.begin()
		data := harness.Figure8(os.Stdout, o)
		bench.end("figure8")
		writeCSV(*csvDir, "figure8.csv", func(w *os.File) error { return harness.WriteFigure8CSV(w, data) })
		if *chart {
			chartFigure8(data)
		}
		if *verify {
			findings = append(findings, report.CheckFigure8(data, harness.Fig8Threads)...)
		}
		fmt.Println()
		ran = true
	}
	if *all || *table == 2 {
		bench.begin()
		data := harness.Table2(os.Stdout, *threads, o)
		bench.end("table2")
		writeCSV(*csvDir, "table2.csv", func(w *os.File) error { return harness.WriteTable2CSV(w, data) })
		if *verify {
			findings = append(findings, report.CheckTable2(data)...)
		}
		fmt.Println()
		ran = true
	}
	if *all || *mvmStats {
		bench.begin()
		harness.MVMReport(os.Stdout, *threads, o)
		bench.end("mvm")
		fmt.Println()
		ran = true
	}
	if *oltp {
		bench.begin()
		harness.FigureOLTP(os.Stdout, o)
		bench.end("figure-oltp")
		fmt.Println()
		ran = true
	}
	stopProfiles()
	if o.Cache != nil && ran {
		st := o.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache %s: %d cells served warm, %d computed and stored\n", *cacheDir, st.Hits, st.Puts)
		if err := o.Cache.LastError(); err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: cache (non-fatal): %v\n", err)
		}
	}
	if bench != nil && ran {
		if err := bench.write(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *verify {
		fmt.Println("Shape verification against the paper's claims:")
		fmt.Print(findings)
		if !findings.AllOK() {
			os.Exit(1)
		}
	}
}

// parseSeeds interprets the -seeds flag. A bare integer N expands to the
// seeds 1..N, so the paper's 5-seed averaging is `-seeds 5`; a value with
// commas is an explicit seed list (a single explicit seed can be written
// with a trailing comma, e.g. `-seeds 7,`).
func parseSeeds(s string) ([]uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty -seeds")
	}
	if !strings.Contains(s, ",") {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds %q: %v", s, err)
		}
		if n == 0 || n > 1<<16 {
			return nil, fmt.Errorf("bad -seeds %d: seed count must be in 1..%d", n, 1<<16)
		}
		seeds := make([]uint64, n)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		return seeds, nil
	}
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("empty -seeds list %q", s)
	}
	return seeds, nil
}

// chartFigure7 renders the abort-ratio series per benchmark (log y).
func chartFigure7(data map[string]map[int][3]float64) {
	for _, name := range sortedNames(data) {
		rows := data[name]
		var ticks []string
		series := []plot.Series{{Name: "2PL"}, {Name: "SONTM"}, {Name: "SI-TM"}}
		for _, th := range harness.Fig7Threads {
			ticks = append(ticks, strconv.Itoa(th))
			row := rows[th]
			for e := 0; e < 3; e++ {
				series[e].Points = append(series[e].Points, row[e])
			}
		}
		c := plot.Chart{
			Title: name + " — aborts relative to 2PL", XLabel: "threads",
			YLabel: "rel. aborts (log)", XTicks: ticks, Series: series, LogY: true,
		}
		if err := c.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: chart: %v\n", err)
			return
		}
		fmt.Println()
	}
}

// chartFigure8 renders the speedup curves per benchmark.
func chartFigure8(data map[string]map[string][]float64) {
	for _, name := range sortedNames(data) {
		var ticks []string
		for _, th := range harness.Fig8Threads {
			ticks = append(ticks, strconv.Itoa(th))
		}
		var series []plot.Series
		for _, engine := range []string{"2PL", "SONTM", "SI-TM"} {
			if pts, ok := data[name][engine]; ok {
				series = append(series, plot.Series{Name: engine, Points: pts})
			}
		}
		c := plot.Chart{
			Title: name + " — speedup", XLabel: "threads",
			YLabel: "x over 1 thread", XTicks: ticks, Series: series,
		}
		if err := c.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sitm-bench: chart: %v\n", err)
			return
		}
		fmt.Println()
	}
}

// sortedNames returns map keys in sorted order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// writeCSV writes one CSV artefact into dir when -csv is set.
func writeCSV(dir, name string, fill func(*os.File) error) {
	if dir == "" {
		return
	}
	path := dir + string(os.PathSeparator) + name
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sitm-bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	err = fill(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sitm-bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
