package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/mvm"
	"repro/internal/sched"
	"repro/internal/sontm"
	"repro/internal/tm"
	"repro/internal/twopl"
)

// benchSection is the benchmark record of one figure or table sweep: its
// wall-clock cost and the simulated work it got through. The simulated
// throughput (Mcycles/s) is the sum of every cell's makespan divided by
// the section's wall time, so it reflects the whole pipeline — setup,
// simulation and rendering — not just the simulator inner loop.
type benchSection struct {
	Name             string  `json:"name"`
	Cells            uint64  `json:"cells"`
	WallSeconds      float64 `json:"wall_seconds"`
	SimCycles        uint64  `json:"sim_cycles"`
	SimMcyclesPerSec float64 `json:"sim_mcycles_per_sec"`
	// PeakHeapBytes is the live heap (runtime.MemStats.HeapAlloc) when
	// the section finished, and TotalAllocs the heap allocations the
	// section performed (Mallocs delta across the section). The pair is
	// the footprint trajectory: serving-scale sweeps must show heap
	// proportional to touched lines, not address span.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	TotalAllocs   uint64 `json:"total_allocs"`
}

// benchHotPath is the measurement of one simulator hot path, taken with
// testing.Benchmark at report time.
type benchHotPath struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the -json artefact (BENCH_PR3.json). The schema is
// documented in EXPERIMENTS.md ("Benchmark trajectory").
type benchReport struct {
	Command    string `json:"command"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// GitRevision is the revision the binary was built from (build-info
	// VCS stamp, falling back to asking git about the build tree;
	// "unknown" outside a git checkout, with a "-dirty" suffix when the
	// working tree has uncommitted changes).
	GitRevision string `json:"git_revision"`
	// PerEvent records whether the sweep ran with horizon batching
	// disabled (-per-event); figure bytes are identical either way, but
	// SchedStats is the counter that tells the two conductors apart.
	PerEvent bool           `json:"per_event,omitempty"`
	Workers  int            `json:"workers"`
	Seeds    []uint64       `json:"seeds"`
	Sections []benchSection `json:"sections"`
	// SchedStats sums the deterministic conductor counters over every
	// cell of the invocation: coroutine switches, inline ticks,
	// horizon-batched events and local (uncontended) ticks. Batching
	// shows up here as coroutine_switches dropping and batched_events
	// rising relative to a -per-event run of the same sweep.
	SchedStats sched.Stats    `json:"sched_stats"`
	HotPaths   []benchHotPath `json:"hot_paths"`
}

// benchCollector accumulates per-cell simulated cycles (fed concurrently
// by the harness CellDone hook) and section wall times.
type benchCollector struct {
	report      benchReport
	cells       atomic.Uint64
	simCycles   atomic.Uint64
	started     time.Time
	baseMallocs uint64 // runtime.MemStats.Mallocs at section begin

	mu    sync.Mutex  // guards sched
	sched sched.Stats // conductor counters summed over all cells
}

// newBenchCollector starts a collector describing the current invocation.
func newBenchCollector(workers int, seeds []uint64) *benchCollector {
	args := append([]string{filepath.Base(os.Args[0])}, os.Args[1:]...)
	return &benchCollector{report: benchReport{
		Command:     strings.Join(args, " "),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GitRevision: exp.CurrentGitRevision(),
		Workers:     workers,
		Seeds:       seeds,
	}}
}

// cellDone is the harness CellDone hook; safe for concurrent calls.
func (b *benchCollector) cellDone(_ exp.Cell, res exp.CellResult) {
	b.cells.Add(1)
	b.simCycles.Add(res.SimCycles)
	b.mu.Lock()
	b.sched.Add(res.Sched)
	b.mu.Unlock()
}

// begin opens a section: zeroes the cell counters and stamps the clock.
// Safe on a nil collector (no -json), like end.
func (b *benchCollector) begin() {
	if b == nil {
		return
	}
	b.cells.Store(0)
	b.simCycles.Store(0)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.baseMallocs = ms.Mallocs
	b.started = time.Now()
}

// end closes the section opened by begin and records it under name.
func (b *benchCollector) end(name string) {
	if b == nil {
		return
	}
	wall := time.Since(b.started).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := benchSection{
		Name:          name,
		Cells:         b.cells.Load(),
		WallSeconds:   wall,
		SimCycles:     b.simCycles.Load(),
		PeakHeapBytes: ms.HeapAlloc,
		TotalAllocs:   ms.Mallocs - b.baseMallocs,
	}
	if wall > 0 {
		s.SimMcyclesPerSec = float64(s.SimCycles) / wall / 1e6
	}
	b.report.Sections = append(b.report.Sections, s)
}

// write measures the hot paths and writes the JSON artefact.
func (b *benchCollector) write(path string) error {
	b.mu.Lock()
	b.report.SchedStats = b.sched
	b.mu.Unlock()
	b.report.HotPaths = measureHotPaths()
	data, err := json.MarshalIndent(&b.report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureHotPaths benchmarks the allocation-free hot paths the benchmark
// trajectory pins — the scheduler Tick fast path, the MVM steady-state
// Install, the memory-hierarchy way-predicted probes and each TM engine's
// full-commit transaction path — with the same shapes as the package
// benchmarks (BenchmarkTick in internal/sched, BenchmarkInstall in
// internal/mvm, BenchmarkAccess/BenchmarkAccessVersioned in
// internal/cache, BenchmarkCommit/hit in each engine package).
func measureHotPaths() []benchHotPath {
	tick := testing.Benchmark(func(b *testing.B) {
		s := sched.New(2, 1)
		b.ReportAllocs()
		b.ResetTimer()
		s.Run(func(th *sched.Thread) {
			if th.ID() == 0 {
				for i := 0; i < b.N; i++ {
					th.Tick(1)
				}
			} else {
				th.Tick(uint64(b.N) + 2)
			}
		})
	})
	install := testing.Benchmark(func(b *testing.B) {
		clk := clock.New()
		active := clock.NewActiveTable()
		m := mvm.New(mvm.DefaultConfig(), clk, active)
		const line = mem.Line(1)
		var words [mem.WordsPerLine]uint64
		install := func(i int) {
			ts := clk.ReserveEnd()
			words[0] = uint64(i)
			if _, err := m.Install(line, ts, m.NewestLine(line), 1, &words); err != nil {
				b.Fatal(err)
			}
			clk.CompleteEnd(ts)
		}
		for i := 0; i < 16; i++ {
			install(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			install(i)
		}
	})
	// The memory-hierarchy hot paths, in the regime the fast path
	// exists for: a way-predicted L1 hit on the Table 1 architecture
	// (the same shape as BenchmarkAccess/hit in internal/cache).
	access := testing.Benchmark(func(b *testing.B) {
		cfg := cache.DefaultConfig()
		h := cache.NewHierarchy(cfg, cache.NewShared(cfg))
		h.Access(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(1)
		}
	})
	versioned := testing.Benchmark(func(b *testing.B) {
		cfg := cache.DefaultConfig()
		h := cache.NewHierarchy(cfg, cache.NewShared(cfg))
		h.AccessVersioned(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.AccessVersioned(1)
		}
	})
	out := []benchHotPath{
		{Name: "sched.Tick", NsPerOp: float64(tick.T.Nanoseconds()) / float64(tick.N), AllocsPerOp: tick.AllocsPerOp()},
		{Name: "mvm.Install", NsPerOp: float64(install.T.Nanoseconds()) / float64(install.N), AllocsPerOp: install.AllocsPerOp()},
		{Name: "cache.Access", NsPerOp: float64(access.T.Nanoseconds()) / float64(access.N), AllocsPerOp: access.AllocsPerOp()},
		{Name: "cache.AccessVersioned", NsPerOp: float64(versioned.T.Nanoseconds()) / float64(versioned.N), AllocsPerOp: versioned.AllocsPerOp()},
	}
	// The engine transaction hot paths: one whole writer transaction per
	// op (begin, four first-writes, commit) on the aset-backed fast sets.
	for _, eng := range []struct {
		name string
		make func() tm.Engine
	}{
		{"core.Commit", func() tm.Engine { return core.New(core.DefaultConfig()) }},
		{"twopl.Commit", func() tm.Engine { return twopl.New(twopl.DefaultConfig()) }},
		{"sontm.Commit", func() tm.Engine { return sontm.New(sontm.DefaultConfig()) }},
	} {
		r := testing.Benchmark(engineCommitBench(eng.make()))
		out = append(out, benchHotPath{Name: eng.name, NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), AllocsPerOp: r.AllocsPerOp()})
	}
	for _, hp := range out {
		if hp.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "sitm-bench: warning: %s allocates %d allocs/op (expected 0)\n", hp.Name, hp.AllocsPerOp)
		}
	}
	return out
}

// engineCommitBench is the full-commit transaction shape on a
// single-threaded simulation, after one warm-up transaction brings the
// engine's recycled transaction object and access sets to steady state.
func engineCommitBench(e tm.Engine) func(b *testing.B) {
	return func(b *testing.B) {
		s := sched.New(1, 1)
		s.Run(func(th *sched.Thread) {
			commitOne := func(i int) {
				tx := e.Begin(th)
				for l := 0; l < 4; l++ {
					tx.Write(mem.Addr((1+l)*mem.LineBytes), uint64(i))
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			commitOne(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitOne(i)
			}
			b.StopTimer()
		})
	}
}
