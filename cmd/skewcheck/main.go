// Command skewcheck runs the write-skew detection tool of §5.1 over the
// built-in transactional workloads: it traces a run under SI-TM, builds
// the read-write dependency graph, reports candidate cycles with their
// source sites, and (with -repair) applies read promotion automatically
// and re-runs to confirm the anomaly is gone.
//
//	skewcheck -workload list        the Listing 2 linked list anomaly
//	skewcheck -workload dlist       the doubly linked list anomaly
//	skewcheck -workload rbtree      the red-black tree anomalies
//	skewcheck -workload bank        the Listing 1 withdraw anomaly
//
// Engines are constructed through the tm registry; -engine selects any
// registered engine (default SI-TM, where the anomalies reproduce).
// Under a serializable engine (2PL, SONTM, SSI-TM) the same schedules
// must come back clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sched"
	"repro/internal/skew"
	"repro/internal/tm"
	"repro/internal/txlib"

	// All engines self-register with the tm engine registry.
	_ "repro/internal/core"
	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

func main() {
	var (
		engine   = flag.String("engine", "SI-TM", "engine to trace: "+strings.Join(tm.Engines(), ", "))
		workload = flag.String("workload", "list", "workload to analyse: list, dlist, rbtree or bank")
		threads  = flag.Int("threads", 4, "logical threads")
		txns     = flag.Int("txns", 40, "transactions per thread")
		seed     = flag.Uint64("seed", 7, "simulation seed")
		repair   = flag.Bool("repair", false, "apply read promotion and re-run to verify")
		traceOut = flag.String("trace", "", "write the committed-transaction trace (JSON lines) to this file")
		coverage = flag.Bool("coverage", false, "report schedule coverage of concurrent site pairs")
	)
	flag.Parse()

	// Validate the engine name up front, before any tracing runs: the
	// registry error lists every registered engine, like WorkloadByName
	// does for workloads.
	if _, err := tm.NewEngine(*engine, tm.EngineOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "skewcheck: %v\n", err)
		os.Exit(2)
	}

	var firstRec *skew.Recorder
	run := func(promote *skew.Report) (*skew.Report, string) {
		e, err := tm.NewEngine(*engine, tm.EngineOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skewcheck: %v\n", err)
			os.Exit(1)
		}
		if promote != nil {
			promote.Promote(e)
		}
		rec := skew.NewRecorder()
		e.SetTracer(rec)
		m := txlib.NewMem(e)
		body, check := buildWorkload(*workload, m, *txns)
		sched.New(*threads, *seed).Run(body)
		if firstRec == nil {
			firstRec = rec
		}
		return rec.Analyze(), check()
	}

	rep, consistency := run(nil)
	fmt.Print(rep)
	if *coverage {
		cov := firstRec.MeasureCoverage()
		fmt.Printf("schedule coverage: %d/%d concurrent site pairs exercised (%.0f%%)\n",
			cov.PairsCovered, cov.PairsPossible, cov.Pct())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skewcheck: %v\n", err)
			os.Exit(1)
		}
		if err := firstRec.WriteTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "skewcheck: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "skewcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, firstRec.Events())
	}
	if consistency != "" {
		fmt.Printf("post-run consistency check: VIOLATED (%s)\n", consistency)
	} else {
		fmt.Println("post-run consistency check: ok (this schedule)")
	}

	if *repair && rep.HasSkew() {
		fmt.Println("\napplying read promotion and re-running ...")
		rep2, consistency2 := run(rep)
		if consistency2 != "" {
			fmt.Printf("repaired run consistency: STILL VIOLATED (%s)\n", consistency2)
			os.Exit(1)
		}
		fmt.Println("repaired run consistency: ok")
		if rep2.HasSkew() {
			fmt.Println("note: residual dependency cycles remain (promoted reads now abort them at runtime)")
		}
	}
}

// buildWorkload returns the per-thread body and a post-run consistency
// check for the named workload.
func buildWorkload(name string, m *txlib.Mem, txns int) (func(*sched.Thread), func() string) {
	e := m.E
	switch name {
	case "list":
		l := txlib.NewList(m)
		l.UnsafeRemove = true
		var keys []uint64
		for i := uint64(1); i <= 64; i++ {
			keys = append(keys, i*2)
		}
		l.SeedNonTx(keys)
		return func(th *sched.Thread) {
				r := th.Rand()
				for i := 0; i < txns; i++ {
					k := uint64(1 + r.Intn(128))
					_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
						if r.Intn(2) == 0 {
							l.Insert(tx, k, k)
						} else {
							l.Remove(tx, k)
						}
						return nil
					})
				}
			}, func() string {
				ks := l.KeysNonTx()
				for i := 1; i < len(ks); i++ {
					if ks[i] <= ks[i-1] {
						return fmt.Sprintf("list unsorted at %d: %v", i, ks[:i+1])
					}
				}
				return ""
			}
	case "dlist":
		l := txlib.NewDList(m)
		l.UnsafeRemove = true
		var keys []uint64
		for i := uint64(1); i <= 64; i++ {
			keys = append(keys, i*2)
		}
		l.SeedNonTx(keys)
		return func(th *sched.Thread) {
			r := th.Rand()
			for i := 0; i < txns; i++ {
				k := uint64(1 + r.Intn(128))
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					if r.Intn(2) == 0 {
						l.Insert(tx, k, k)
					} else {
						l.Remove(tx, k)
					}
					return nil
				})
			}
		}, l.CheckConsistent
	case "rbtree":
		tr := txlib.NewRBTree(m) // deliberately unpromoted
		var keys []uint64
		for i := uint64(1); i <= 64; i++ {
			keys = append(keys, i*2)
		}
		tr.SeedNonTx(keys)
		return func(th *sched.Thread) {
				r := th.Rand()
				for i := 0; i < txns; i++ {
					k := uint64(1 + r.Intn(128))
					_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
						switch r.Intn(3) {
						case 0:
							tr.Insert(tx, k, k)
						case 1:
							tr.Delete(tx, k)
						default:
							tr.Contains(tx, k)
						}
						return nil
					})
				}
			}, func() string {
				var msg string
				sched.New(1, 1).Run(func(th *sched.Thread) {
					_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
						msg = tr.CheckInvariants(tx)
						return nil
					})
				})
				return msg
			}
	case "bank":
		checking := m.A.AllocLines(1)
		saving := m.A.AllocLines(1)
		e.NonTxWrite(checking, 1000)
		e.NonTxWrite(saving, 1000)
		return func(th *sched.Thread) {
				r := th.Rand()
				for i := 0; i < txns; i++ {
					fromChecking := r.Intn(2) == 0
					_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
						tx.Site("bank.check")
						if tx.Read(checking)+tx.Read(saving) >= 100 {
							tx.Site("bank.withdraw")
							if fromChecking {
								tx.Write(checking, tx.Read(checking)-100)
							} else {
								tx.Write(saving, tx.Read(saving)-100)
							}
						}
						return nil
					})
				}
			}, func() string {
				// Listing 1's invariant is the total balance: the guard
				// permits one account to go negative serially, but only
				// write skew can take the sum below zero.
				sum := int64(e.NonTxRead(checking)) + int64(e.NonTxRead(saving))
				if sum < 0 {
					return fmt.Sprintf("total balance went negative (%d)", sum)
				}
				return ""
			}
	default:
		fmt.Fprintf(os.Stderr, "skewcheck: unknown workload %q (valid: list, dlist, rbtree, bank)\n", name)
		os.Exit(2)
		return nil, nil
	}
}
