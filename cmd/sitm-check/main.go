// Command sitm-check model-checks the transactional memory engines: it
// drives each litmus program through every schedule the simulator admits
// (sched.RunChoose + depth-first prefix replay), classifies every
// distinct history against the snapshot-isolation axioms, and fails if
// any engine admits behaviour outside its family's contract — see
// DESIGN.md "Model checking".
//
//	sitm-check                         all litmus programs x all engines
//	sitm-check -list                   show the litmus library
//	sitm-check -engine SI-TM -litmus bank -v
//	sitm-check -variants               also check the Reference* option
//	                                   variants admit identical history sets
//
// The 2-thread programs are exhausted outright; the 3- and 4-thread
// programs stop at -max-schedules, and verdicts about *admitted*
// anomalies become lower bounds (the tool says which).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/mc"
	"repro/internal/tm"

	// All engines self-register with the tm engine registry.
	_ "repro/internal/core"
	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

func main() {
	var (
		engine  = flag.String("engine", "all", "engine to check, or all: "+strings.Join(tm.Engines(), ", "))
		litmus  = flag.String("litmus", "all", "litmus program to check, or all: "+strings.Join(mc.ProgramNames(), ", "))
		maxSch  = flag.Int("max-schedules", 200000, "schedule bound per cell; 2-thread programs exhaust below it")
		variant = flag.Bool("variants", false, "also run the ReferenceSets and ReferenceCache variants and require identical history sets")
		list    = flag.Bool("list", false, "list the litmus programs and exit")
		verbose = flag.Bool("v", false, "print every distinct history with its verdict")
	)
	flag.Parse()

	if *list {
		for _, p := range mc.Programs() {
			fmt.Printf("%-12s %d threads  %s\n", p.Name, len(p.Threads), p.Doc)
		}
		return
	}

	engines := tm.Engines()
	if *engine != "all" {
		if _, err := tm.NewEngine(*engine, tm.EngineOptions{}); err != nil {
			fmt.Fprintf(os.Stderr, "sitm-check: %v\n", err)
			os.Exit(2)
		}
		engines = []string{*engine}
	}
	progs := mc.Programs()
	if *litmus != "all" {
		p, err := mc.ProgramByName(*litmus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sitm-check: %v\n", err)
			os.Exit(2)
		}
		progs = []mc.Program{p}
	}

	opts := mc.Options{MaxSchedules: *maxSch}
	failed := false
	for _, eng := range engines {
		fam, err := mc.EngineFamily(eng, tm.EngineOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sitm-check: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s (%s)\n", eng, fam)
		for _, prog := range progs {
			if !checkCell(prog, eng, fam, opts, *variant, *verbose) {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkCell explores one (program, engine) cell, prints its summary line
// (and evidence for failures) and reports whether it passed.
func checkCell(prog mc.Program, eng string, fam mc.Family, opts mc.Options, variants, verbose bool) bool {
	r, err := mc.RunLitmus(prog, eng, tm.EngineOptions{}, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sitm-check: %v\n", err)
		os.Exit(2)
	}
	scope := "exhaustive"
	if !r.Explored.Exhausted {
		scope = fmt.Sprintf("bounded at %d; admitted anomalies are a lower bound", opts.MaxSchedules)
	}
	violations := r.Violations(fam)
	verdict := "ok"
	if len(violations) > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("  %-12s %6d schedules (%s), %3d histories, admitted=[%s]  %s\n",
		prog.Name, r.Explored.Schedules, scope, len(r.Histories), r.Admitted, verdict)
	if verbose {
		for _, hv := range r.Histories {
			fmt.Printf("    %4dx  %-18s %s\n", hv.Count, hv.Class.Anomalies(), hv.Key)
		}
	}
	for _, v := range violations {
		fmt.Printf("    violation: %s\n", v)
	}
	// For non-serializable histories, show the dependency-cycle evidence.
	if len(violations) > 0 || verbose {
		printCycles(prog, r)
	}
	ok := len(violations) == 0
	if variants {
		ok = checkVariants(prog, eng, opts, r) && ok
	}
	return ok
}

// printCycles prints the DSG cyclic components of each non-serializable
// history — the explanation behind a write-skew or serializability
// verdict.
func printCycles(prog mc.Program, r *mc.Result) {
	varName := func(v int) string { return prog.VarNames[v] }
	shown := 0
	for _, hv := range r.Histories {
		if hv.Class.Serializable || !hv.Class.SnapshotReads {
			continue
		}
		g := mc.DSG(hv.Hist, prog.Init, len(prog.Threads), varName)
		comps := g.CyclicComponents()
		if len(comps) == 0 {
			continue
		}
		fmt.Printf("    cycle in %q:", hv.Key)
		for _, comp := range comps {
			for _, from := range comp {
				for _, e := range g.Edges(from) {
					fmt.Printf(" T%d-%s(%s)->T%d", from, e.Kind, e.Label, e.To)
				}
			}
		}
		fmt.Println()
		if shown++; shown >= 3 {
			fmt.Println("    (further cycles elided)")
			return
		}
	}
}

// checkVariants re-explores the cell under the differential option
// variants and requires the identical history set: the fast paths they
// shadow must never change simulated behaviour.
func checkVariants(prog mc.Program, eng string, opts mc.Options, base *mc.Result) bool {
	ok := true
	for _, v := range []struct {
		name string
		opts tm.EngineOptions
	}{
		{"reference-sets", tm.EngineOptions{ReferenceSets: true}},
		{"reference-cache", tm.EngineOptions{ReferenceCache: true}},
	} {
		r, err := mc.RunLitmus(prog, eng, v.opts, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sitm-check: %v\n", err)
			os.Exit(2)
		}
		if !equalKeys(r.HistoryKeys(), base.HistoryKeys()) {
			fmt.Printf("    violation: %s variant admits a different history set (%d vs %d histories)\n",
				v.name, len(r.Histories), len(base.Histories))
			ok = false
		}
	}
	if ok {
		fmt.Printf("    variants: reference-sets, reference-cache history sets identical\n")
	}
	return ok
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
