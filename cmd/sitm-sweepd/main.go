// Command sitm-sweepd is the sweep daemon: a long-running HTTP/JSON
// service that accepts figure plans, shards their cells across worker
// processes with work-stealing leases, streams per-cell progress, and
// serves figures rendered from a shared content-addressed result cache.
//
// Because every cell result is content-addressed by its provenance
// (workload, engine, threads, seed, configuration, source fingerprints),
// the daemon is crash-safe by construction: kill it mid-plan, restart it
// on the same -cache-dir, and it resumes from whatever the cache already
// holds — persisted plan specs are resubmitted and only the missing
// cells are recomputed. Figures served over HTTP are byte-identical to a
// local `sitm-bench` run of the same tree.
//
// Quickstart:
//
//	sitm-sweepd -cache-dir /tmp/sitm-cache -addr 127.0.0.1:8347 &
//	curl -s -X POST localhost:8347/api/plans \
//	     -d '{"figures":["figure7"],"workloads":["List"],"seeds":[1]}'
//	curl -s localhost:8347/api/plans/<id>/events       # watch progress
//	curl -s localhost:8347/api/plans/<id>/figures/figure7
//
// With -procs N the daemon spawns N copies of itself as external worker
// processes (each re-executes this binary with -worker); they share the
// cache directory and drain the same queue via the lease protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"syscall"

	"repro/internal/exp"
	"repro/internal/sweep"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8347", "listen address")
		cacheDir = flag.String("cache-dir", "", "shared content-addressed result cache directory (required)")
		workers  = flag.Int("workers", 0, "in-process executor goroutines (0 = GOMAXPROCS, -1 = none)")
		procs    = flag.Int("procs", 0, "external worker processes to spawn (each runs this binary with -worker)")
		workerOf = flag.String("worker", "", "run as an external worker for the daemon at this base URL instead of serving")
		name     = flag.String("name", "", "worker name (with -worker; default pid-based)")
	)
	flag.Parse()
	log.SetFlags(log.Ltime)
	log.SetPrefix("sitm-sweepd: ")

	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "sitm-sweepd: -cache-dir is required")
		os.Exit(2)
	}
	cache, err := exp.OpenCache(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *workerOf != "" {
		runWorker(ctx, *workerOf, cache, *name)
		return
	}
	runServer(ctx, *addr, cache, *workers, *procs)
}

// runWorker runs this process as one external worker until cancelled.
func runWorker(ctx context.Context, server string, cache *exp.Cache, name string) {
	if name == "" {
		name = fmt.Sprintf("proc-%d", os.Getpid())
	}
	w := &sweep.Worker{Server: server, Cache: cache, Name: name, Logf: log.Printf}
	if err := w.Run(ctx); err != nil {
		log.Fatal(err)
	}
}

// runServer serves the sweep API until cancelled, optionally spawning
// external worker subprocesses that drain the same queue.
func runServer(ctx context.Context, addr string, cache *exp.Cache, workers, procs int) {
	srv, err := sweep.New(sweep.Config{Cache: cache, Workers: workers, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (cache %s)", ln.Addr(), cache.Dir())
	srv.Start()

	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	var procCmds []*exec.Cmd
	for i := 0; i < procs; i++ {
		cmd := exec.Command(os.Args[0],
			"-worker", "http://"+ln.Addr().String(),
			"-cache-dir", cache.Dir(),
			"-name", fmt.Sprintf("proc-%d-%d", os.Getpid(), i))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Printf("spawning worker %d: %v", i, err)
			continue
		}
		log.Printf("spawned worker process %d (pid %d)", i, cmd.Process.Pid)
		procCmds = append(procCmds, cmd)
	}

	<-ctx.Done()
	log.Printf("shutting down")
	for _, cmd := range procCmds {
		cmd.Process.Signal(os.Interrupt)
	}
	for _, cmd := range procCmds {
		cmd.Wait()
	}
	hs.Shutdown(context.Background())
	srv.Close()
}
