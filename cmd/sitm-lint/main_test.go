package main

import (
	"testing"

	"repro/internal/lint"
)

// TestRepositoryIsLintClean runs the full analyzer suite over the real
// tree, so `go test ./...` fails on any new violation even before CI's
// dedicated lint job runs.
func TestRepositoryIsLintClean(t *testing.T) {
	loader := lint.NewLoader()
	if err := loader.AddTree("../..", "repro"); err != nil {
		t.Fatal(err)
	}
	var pkgs []*lint.Package
	for _, p := range loader.Paths() {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
