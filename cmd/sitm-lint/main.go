// Command sitm-lint is the multichecker driver for the repository's
// custom static-analysis passes (internal/lint):
//
//	detlint      no nondeterminism sources in simulation packages
//	enginelint   engines constructed only through the tm registry
//	chargelint   simulated-memory accessors charge cycles
//	findinglint  report.Finding literals set Check, OK and Detail
//
// Usage:
//
//	go run ./cmd/sitm-lint ./...
//	go run ./cmd/sitm-lint ./internal/mvm ./internal/cache
//
// sitm-lint must run from the module root. It prints one line per
// diagnostic and exits non-zero if any analyzer reported a finding that
// is not covered by a //sitm:allow(<analyzer>) directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sitm-lint [-list] [./... | packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	modPath, err := modulePath("go.mod")
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader()
	if err := loader.AddTree(".", modPath); err != nil {
		fatal(err)
	}

	paths, err := selectPackages(loader, modPath, flag.Args())
	if err != nil {
		fatal(err)
	}

	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sitm-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectPackages maps command-line patterns to registered import paths.
// No arguments or "./..." selects every package in the module.
func selectPackages(loader *lint.Loader, modPath string, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.Paths(), nil
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return loader.Paths(), nil
		}
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + rel
		}
		if strings.HasSuffix(imp, "/...") {
			prefix := strings.TrimSuffix(imp, "...")
			matched := false
			for _, p := range loader.Paths() {
				if p+"/" == prefix || strings.HasPrefix(p, prefix) {
					out = append(out, p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("sitm-lint: no packages match %q", arg)
			}
			continue
		}
		out = append(out, imp)
	}
	return out, nil
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePath reads the module path from go.mod; sitm-lint runs from the
// module root by construction (go run ./cmd/sitm-lint).
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("sitm-lint: must run from the module root: %w", err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("sitm-lint: no module line in %s", gomod)
	}
	return string(m[1]), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sitm-lint: %v\n", err)
	os.Exit(1)
}
