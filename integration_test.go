// Integration tests exercising the whole stack — engines, multiversioned
// memory, data structures, workloads and the write-skew tool — together,
// the way a downstream user composes them.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/micro"
	"repro/internal/sched"
	"repro/internal/skew"
	"repro/internal/sontm"
	"repro/internal/stamp"
	"repro/internal/tm"
	"repro/internal/twopl"
	"repro/internal/txlib"
)

// engines returns fresh instances of all three TM implementations.
func engines() []tm.Engine {
	return []tm.Engine{
		twopl.New(twopl.DefaultConfig()),
		sontm.New(sontm.DefaultConfig()),
		core.New(core.DefaultConfig()),
	}
}

// TestMixedContainersConsistentOnEveryEngine drives a bank built from the
// transactional containers (accounts in a hash table, an audit queue, an
// index tree) on every engine and checks cross-structure invariants.
func TestMixedContainersConsistentOnEveryEngine(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			if si, ok := e.(*core.Engine); ok {
				// The paper's repair for the tree's write skews.
				si.Promote(txlib.SiteRBInsert)
				si.Promote(txlib.SiteRBDelete)
				si.Promote(txlib.SiteRBFixup)
			}
			m := txlib.NewMem(e)
			accounts := txlib.NewHashtable(m, 32)
			audit := txlib.NewQueue(m)
			index := txlib.NewRBTree(m)
			const nAccounts = 16
			seed := map[uint64]uint64{}
			for i := uint64(1); i <= nAccounts; i++ {
				seed[i] = 1000
			}
			accounts.SeedNonTx(seed)

			s := sched.New(6, 31)
			s.Run(func(th *sched.Thread) {
				r := th.Rand()
				for i := 0; i < 30; i++ {
					from := uint64(1 + r.Intn(nAccounts))
					to := uint64(1 + r.Intn(nAccounts))
					if from == to {
						continue
					}
					amount := uint64(1 + r.Intn(50))
					err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
						bal, _ := accounts.Get(tx, from)
						if bal < amount {
							return nil
						}
						accounts.Set(tx, from, bal-amount)
						toBal, _ := accounts.Get(tx, to)
						accounts.Set(tx, to, toBal+amount)
						audit.Push(tx, from<<32|to)
						index.Insert(tx, uint64(th.ID())<<32|uint64(i), amount)
						return nil
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
					}
				}
			})

			// Invariant 1: money conserved.
			var total uint64
			s2 := sched.New(1, 1)
			var audited int
			s2.Run(func(th *sched.Thread) {
				_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
					total = 0
					for i := uint64(1); i <= nAccounts; i++ {
						v, _ := accounts.Get(tx, i)
						total += v
					}
					return nil
				})
				// Invariant 2: the audit log drains cleanly.
				_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
					audited = 0
					for {
						if _, ok := audit.Pop(tx); !ok {
							return nil
						}
						audited++
					}
				})
				// Invariant 3: the index tree is structurally valid.
				_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
					if msg := index.CheckInvariants(tx); msg != "" {
						t.Errorf("index tree: %s", msg)
					}
					if audited != len(index.Keys(tx)) {
						t.Errorf("audit entries %d != index entries %d", audited, len(index.Keys(tx)))
					}
					return nil
				})
			})
			if total != nAccounts*1000 {
				t.Errorf("total = %d, want %d", total, nAccounts*1000)
			}
		})
	}
}

// TestToolWorkflowEndToEnd runs the full §5.1 loop on the unsafe list:
// trace, analyse, repair, re-run, confirm consistency.
func TestToolWorkflowEndToEnd(t *testing.T) {
	runOnce := func(promote *skew.Report) (*skew.Recorder, string) {
		e := core.New(core.DefaultConfig())
		if promote != nil {
			promote.Promote(e)
		}
		rec := skew.NewRecorder()
		e.SetTracer(rec)
		m := txlib.NewMem(e)
		l := txlib.NewList(m)
		l.UnsafeRemove = true
		var keys []uint64
		for i := uint64(1); i <= 40; i++ {
			keys = append(keys, i*2)
		}
		l.SeedNonTx(keys)
		sched.New(4, 19).Run(func(th *sched.Thread) {
			r := th.Rand()
			for i := 0; i < 30; i++ {
				k := uint64(1 + r.Intn(80))
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					if r.Intn(2) == 0 {
						l.Insert(tx, k, k)
					} else {
						l.Remove(tx, k)
					}
					return nil
				})
			}
		})
		ks := l.KeysNonTx()
		for i := 1; i < len(ks); i++ {
			if ks[i] <= ks[i-1] {
				return rec, "list unsorted"
			}
		}
		return rec, ""
	}

	rec, _ := runOnce(nil)
	rep := rec.Analyze()
	if !rep.HasSkew() {
		t.Skip("schedule exercised no skew (best-effort tool)")
	}
	cov := rec.MeasureCoverage()
	if cov.PairsCovered == 0 {
		t.Fatal("coverage reports nothing despite detected cycles")
	}
	_, consistency := runOnce(rep)
	if consistency != "" {
		t.Fatalf("repaired run still inconsistent: %s", consistency)
	}
}

// TestHarnessHeadlineResult asserts the reproduction's headline at the
// integration level: SI-TM cuts List aborts by an order of magnitude over
// 2PL and commits strictly more cheaply.
func TestHarnessHeadlineResult(t *testing.T) {
	o := harness.Options{Seeds: []uint64{1}}
	f := func() harness.Workload { return micro.NewList() }
	base := harness.Run(harness.TwoPL, f, 16, o)
	cs := harness.Run(harness.SONTM, f, 16, o)
	si := harness.Run(harness.SITM, f, 16, o)
	if !(si.Aborts < cs.Aborts && cs.Aborts < base.Aborts) {
		t.Fatalf("abort ordering violated: 2PL=%v SONTM=%v SI=%v", base.Aborts, cs.Aborts, si.Aborts)
	}
	if si.Aborts*10 > base.Aborts {
		t.Fatalf("SI-TM aborts %v not an order of magnitude below 2PL %v", si.Aborts, base.Aborts)
	}
	if si.Makespan >= base.Makespan {
		t.Fatalf("SI-TM makespan %v not better than 2PL %v", si.Makespan, base.Makespan)
	}
}

// TestStampKernelsDeterministicAcrossEngines pins determinism at the
// integration level: identical seeds give identical results per engine.
func TestStampKernelsDeterministicAcrossEngines(t *testing.T) {
	o := harness.Options{Seeds: []uint64{5}}
	for _, kind := range []harness.EngineKind{harness.TwoPL, harness.SONTM, harness.SITM} {
		f := func() harness.Workload { return stamp.NewVacation() }
		a := harness.Run(kind, f, 8, o)
		b := harness.Run(kind, f, 8, o)
		if a.Aborts != b.Aborts || a.Makespan != b.Makespan || a.Commits != b.Commits {
			t.Fatalf("%v nondeterministic: %+v vs %+v", kind, a, b)
		}
	}
}
