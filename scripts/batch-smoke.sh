#!/usr/bin/env bash
# batch-smoke: end-to-end differential of the horizon-batched conductor.
#
# Runs the same small Figure 7 sweep twice with sitm-bench — once with
# horizon batching (the default) and once with -per-event — and verifies
# that:
#   - the rendered figure bytes are identical,
#   - the batched run actually batched (sched_stats.batched_events > 0),
#   - the per-event run batched nothing,
#   - the batched run's coroutine-switch count is strictly lower.
set -euo pipefail

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

cd "$(dirname "$0")/.."
go build -o "$workdir/sitm-bench" ./cmd/sitm-bench

common=(-fig 7 -workload List -seeds 1 -workers 2)
# Drop the "wrote <path>" status line: it names the -json file, which
# legitimately differs between the two runs.
"$workdir/sitm-bench" "${common[@]}" -json "$workdir/batched.json" | grep -v '^wrote ' >"$workdir/batched.txt"
"$workdir/sitm-bench" "${common[@]}" -per-event -json "$workdir/per-event.json" | grep -v '^wrote ' >"$workdir/per-event.txt"

if ! cmp -s "$workdir/batched.txt" "$workdir/per-event.txt"; then
  echo "batch-smoke: figure bytes diverge between batched and per-event conductors" >&2
  diff "$workdir/per-event.txt" "$workdir/batched.txt" >&2 || true
  exit 1
fi

# Pull one integer counter out of the sched_stats JSON object.
counter() { # counter <file> <name>
  sed -n "s/^ *\"$2\": \([0-9]*\),*$/\1/p" "$1" | head -n 1
}

switches_batched="$(counter "$workdir/batched.json" coroutine_switches)"
switches_per_event="$(counter "$workdir/per-event.json" coroutine_switches)"
batched_events="$(counter "$workdir/batched.json" batched_events)"
batched_events_per_event="$(counter "$workdir/per-event.json" batched_events)"

echo "batch-smoke: coroutine_switches batched=$switches_batched per-event=$switches_per_event, batched_events=$batched_events"

if [ -z "$switches_batched" ] || [ -z "$switches_per_event" ]; then
  echo "batch-smoke: could not read coroutine_switches from the -json reports" >&2
  exit 1
fi
if [ "$batched_events" -eq 0 ]; then
  echo "batch-smoke: batched run reports zero batched_events — batching never engaged" >&2
  exit 1
fi
if [ "$batched_events_per_event" -ne 0 ]; then
  echo "batch-smoke: -per-event run reports $batched_events_per_event batched_events" >&2
  exit 1
fi
if [ "$switches_batched" -ge "$switches_per_event" ]; then
  echo "batch-smoke: batching did not reduce coroutine switches ($switches_batched >= $switches_per_event)" >&2
  exit 1
fi
echo "batch-smoke: OK"
