#!/usr/bin/env bash
# sweep-smoke: end-to-end crash/resume exercise of the sweep daemon.
#
# Builds sitm-sweepd and sitm-bench, starts the daemon on a temp cache,
# submits a small Figure 7 plan, kill -9s the daemon mid-plan, restarts
# it on the same cache and verifies that:
#   - the interrupted plan resumes and completes from the cache,
#   - resubmitting the plan is served >= 90% from the cache,
#   - the figure bytes are identical across the resubmit AND identical
#     to a local sitm-bench render of the same cells.
set -euo pipefail

workdir="$(mktemp -d)"
cache="$workdir/cache"
addr="127.0.0.1:${SWEEP_SMOKE_PORT:-18473}"
base="http://$addr"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "sweep-smoke: $*"; }

say "building binaries"
go build -o "$workdir/sitm-sweepd" ./cmd/sitm-sweepd
go build -o "$workdir/sitm-bench" ./cmd/sitm-bench

start_daemon() {
  "$workdir/sitm-sweepd" -cache-dir "$cache" -addr "$addr" -workers 2 \
    >>"$workdir/sweepd.log" 2>&1 &
  pid=$!
  disown "$pid" 2>/dev/null || true # silence job-control noise on kill -9
  for _ in $(seq 1 50); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  say "daemon did not come up"; cat "$workdir/sweepd.log"; exit 1
}

plan_status() { curl -fsS "$base/api/plans/$1"; }

wait_done() {
  local id="$1" tries="${2:-600}"
  for _ in $(seq 1 "$tries"); do
    local state
    state="$(plan_status "$id" | jq -r .state)"
    [ "$state" = done ] && return 0
    [ "$state" = failed ] && { say "plan $id failed"; plan_status "$id"; exit 1; }
    sleep 0.2
  done
  say "plan $id did not finish"; plan_status "$id"; exit 1
}

spec='{"figures":["figure7"],"workloads":["List"],"seeds":[1]}'

say "starting daemon on $base (cache $cache)"
start_daemon

say "submitting plan"
submit="$(curl -fsS -X POST "$base/api/plans" -d "$spec")"
id="$(echo "$submit" | jq -r .id)"
total="$(echo "$submit" | jq -r .total)"
say "plan $id: $total cells"

# Let it make some progress, then kill it the hard way.
for _ in $(seq 1 200); do
  done_cells="$(plan_status "$id" | jq -r .done)"
  [ "$done_cells" -ge 1 ] && break
  sleep 0.1
done
say "kill -9 mid-plan (done=$done_cells/$total)"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

say "restarting daemon on the same cache"
start_daemon
wait_done "$id"
resumed="$(plan_status "$id")"
say "resumed plan completed: $(echo "$resumed" | jq -c '{done,hits,computed}')"
[ "$(echo "$resumed" | jq -r .done)" = "$total" ] || { say "resume incomplete"; exit 1; }

curl -fsS "$base/api/plans/$id/figures/figure7" > "$workdir/fig7_first.txt"

say "resubmitting the identical plan"
again="$(curl -fsS -X POST "$base/api/plans" -d "$spec")"
id2="$(echo "$again" | jq -r .id)"
wait_done "$id2"
st2="$(plan_status "$id2")"
hits2="$(echo "$st2" | jq -r .hits)"
say "resubmit served $hits2/$total from cache"
if [ $((hits2 * 10)) -lt $((total * 9)) ]; then
  say "FAIL: resubmit served fewer than 90% of cells from cache"; exit 1
fi

curl -fsS "$base/api/plans/$id2/figures/figure7" > "$workdir/fig7_second.txt"
cmp "$workdir/fig7_first.txt" "$workdir/fig7_second.txt" \
  || { say "FAIL: figure bytes differ across resubmit"; exit 1; }

say "comparing against a local sitm-bench render"
"$workdir/sitm-bench" -fig 7 -workload List -seeds 1 -cache-dir "$cache" \
  > "$workdir/fig7_cli_raw.txt" 2>"$workdir/bench.log"
# The CLI prints a blank separator line after each section; the server
# serves the bare canonical figure bytes.
sed -e '${/^$/d}' "$workdir/fig7_cli_raw.txt" > "$workdir/fig7_cli.txt"
cmp "$workdir/fig7_first.txt" "$workdir/fig7_cli.txt" \
  || { say "FAIL: server figure differs from sitm-bench"; diff "$workdir/fig7_first.txt" "$workdir/fig7_cli.txt" || true; exit 1; }
grep -q "served warm" "$workdir/bench.log" && say "bench: $(grep 'served warm' "$workdir/bench.log")"

say "PASS: resume + cache + byte-identity all hold"
