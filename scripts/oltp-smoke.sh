#!/usr/bin/env bash
# oltp-smoke: end-to-end determinism check of the serving-workload tier.
#
# Renders a small figure-oltp sweep (one KV cell grid at a mild skew)
# three times with sitm-bench — twice at -workers 1 and once at
# -workers 2 — and verifies the figure bytes are identical across runs
# and across worker counts: the Zipfian generator, the paged store and
# the commit-latency histogram are all deterministic end to end.
set -euo pipefail

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

cd "$(dirname "$0")/.."
go build -o "$workdir/sitm-bench" ./cmd/sitm-bench

common=(-oltp -workload kv@0.50 -seeds 1)
"$workdir/sitm-bench" "${common[@]}" -workers 1 >"$workdir/run1.txt"
"$workdir/sitm-bench" "${common[@]}" -workers 1 >"$workdir/run2.txt"
"$workdir/sitm-bench" "${common[@]}" -workers 2 >"$workdir/run3.txt"

if ! cmp -s "$workdir/run1.txt" "$workdir/run2.txt"; then
  echo "oltp-smoke: figure bytes diverge across identical runs" >&2
  diff "$workdir/run1.txt" "$workdir/run2.txt" >&2 || true
  exit 1
fi
if ! cmp -s "$workdir/run1.txt" "$workdir/run3.txt"; then
  echo "oltp-smoke: figure bytes depend on -workers" >&2
  diff "$workdir/run1.txt" "$workdir/run3.txt" >&2 || true
  exit 1
fi

# The render must actually contain the serving-tier table with its
# quantile columns, not an empty header.
if ! grep -q 'kv@0.50' "$workdir/run1.txt" || ! grep -q 'p999' "$workdir/run1.txt"; then
  echo "oltp-smoke: render is missing the kv table or the quantile columns" >&2
  cat "$workdir/run1.txt" >&2
  exit 1
fi
echo "oltp-smoke: OK"
