// Package repro's top-level benchmarks regenerate every table and figure
// of the SI-TM paper's evaluation (§6) plus the ablations DESIGN.md calls
// out. Each benchmark prints nothing; it reports the headline numbers as
// custom benchmark metrics so `go test -bench=. -benchmem` doubles as the
// reproduction record. Use cmd/sitm-bench for the full human-readable
// tables.
package repro

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/micro"
	"repro/internal/sched"
	"repro/internal/stamp"
	"repro/internal/tm"
	"repro/internal/twopl"
	"repro/internal/txlib"
)

// benchOpts keeps benchmark runs deterministic and single-seeded.
func benchOpts() harness.Options {
	return harness.Options{Seeds: []uint64{1}}
}

// BenchmarkFigure1 regenerates Figure 1: the read-write vs write-write
// abort breakdown under 2PL. The reported metric is the suite-wide share
// of read-write aborts (the paper: 75-99%).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := harness.Figure1(io.Discard, 16, benchOpts())
		var rw, total float64
		for _, r := range results {
			rw += r.RWAborts
			total += r.RWAborts + r.WWAborts
		}
		if total > 0 {
			b.ReportMetric(100*rw/total, "rw-abort-%")
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: abort rates relative to 2PL.
// Reported metrics are SI-TM's relative aborts at 32 threads on the two
// microbenchmarks the paper highlights.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rel := harness.Figure7(io.Discard, benchOpts())
		b.ReportMetric(rel["Array"][32][2], "array-si/2pl")
		b.ReportMetric(rel["List"][32][2], "list-si/2pl")
		b.ReportMetric(rel["Vacation"][32][2], "vacation-si/2pl")
	}
}

// BenchmarkFigure8 regenerates Figure 8: speedup curves. Reported metrics
// are SI-TM's and 2PL's 32-thread speedups on Array (the paper: ~20x for
// SI-TM, below 1 for 2PL).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := harness.Figure8(io.Discard, benchOpts())
		last := len(harness.Fig8Threads) - 1
		b.ReportMetric(sp["Array"]["SI-TM"][last], "array-si-speedup@32")
		b.ReportMetric(sp["Array"]["2PL"][last], "array-2pl-speedup@32")
		b.ReportMetric(sp["Vacation"]["SI-TM"][last], "vacation-si-speedup@32")
	}
}

// BenchmarkTable2 regenerates Table 2 / Appendix A: accesses per MVM
// version depth with unbounded versions at 32 threads. The reported
// metric is the suite-wide percentage of accesses to versions older than
// the 4th (the paper: below 1%).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table2(io.Discard, 32, benchOpts())
		var old, total uint64
		for _, row := range rows {
			for d, v := range row {
				total += v
				if d >= 4 {
					old += v
				}
			}
		}
		if total > 0 {
			b.ReportMetric(100*float64(old)/float64(total), "older-than-4th-%")
		}
	}
}

// benchWorkloads is the representative pair for the ablations: a
// version-pressure-heavy kernel and a read-mostly one.
func benchWorkloads() []func() harness.Workload {
	return []func() harness.Workload{
		func() harness.Workload { return stamp.NewIntruder() },
		func() harness.Workload { return stamp.NewVacation() },
	}
}

// ablate runs the representative workloads on SI-TM at 16 threads with
// the given options and returns total aborts and makespan.
func ablate(o harness.Options) (aborts, makespan float64) {
	for _, f := range benchWorkloads() {
		r := harness.Run(harness.SITM, f, 16, o)
		aborts += r.Aborts
		makespan += r.Makespan
	}
	return aborts, makespan
}

// BenchmarkAblationVersionPolicy compares abort-on-fifth against
// drop-oldest (§3.1: "both implementations affect the abort rates and
// performance by less than 1%" at the paper's scale; at our compressed
// scale the hot queue head separates them more).
func BenchmarkAblationVersionPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a1, m1 := ablate(benchOpts())
		o := benchOpts()
		o.DropOldest = true
		a2, m2 := ablate(o)
		b.ReportMetric(a2/a1, "aborts-drop/abort5")
		b.ReportMetric(m2/m1, "cycles-drop/abort5")
	}
}

// BenchmarkAblationWordGranularity measures the §4.2 word-level
// false-sharing/silent-store filter (off in the paper's evaluation, which
// makes its line-granularity results "a lower bound").
func BenchmarkAblationWordGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a1, _ := ablate(benchOpts())
		o := benchOpts()
		o.WordGranularity = true
		a2, _ := ablate(o)
		b.ReportMetric(a2/a1, "aborts-word/line")
	}
}

// BenchmarkAblationBackoff measures the §6.4 note: without exponential
// backoff the eager mechanisms show even higher abort rates.
func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := func() harness.Workload { return micro.NewList() }
		withBO := harness.Run(harness.TwoPL, f, 16, benchOpts())
		o := benchOpts()
		o.NoBackoff = true
		noBO := harness.Run(harness.TwoPL, f, 16, o)
		b.ReportMetric(noBO.Aborts/withBO.Aborts, "2pl-aborts-nobo/bo")
	}
}

// BenchmarkAblationCoalescing measures version coalescing's effect on
// capacity aborts (Figure 4's mechanism).
func BenchmarkAblationCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a1, _ := ablate(benchOpts())
		o := benchOpts()
		o.NoCoalescing = true
		a2, _ := ablate(o)
		b.ReportMetric(a2/a1, "aborts-nocoalesce/coalesce")
	}
}

// BenchmarkAblationXlate measures the translation cache of §3.2: without
// it every private-cache miss pays the full indirection round trip.
func BenchmarkAblationXlate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := func() harness.Workload { return stamp.NewVacation() }
		with := harness.Run(harness.SITM, f, 16, benchOpts())
		o := benchOpts()
		o.NoXlate = true
		without := harness.Run(harness.SITM, f, 16, o)
		b.ReportMetric(without.Makespan/with.Makespan, "cycles-noxlate/xlate")
	}
}

// BenchmarkUnboundedTransactions reproduces §4.3: a workload of large
// transactions (64-line write sets) on SI-TM versus a 2PL whose version
// buffer holds 32 lines, as cache-buffered HTMs do. The bounded baseline
// can never commit the large transactions; SI-TM spills to multiversioned
// memory and commits them all. Reported metric: large-transaction commit
// ratio per engine.
func BenchmarkUnboundedTransactions(b *testing.B) {
	const lines = 64
	for i := 0; i < b.N; i++ {
		// SI-TM: unbounded.
		si := core.New(core.DefaultConfig())
		runLarge(si, lines)
		b.ReportMetric(float64(si.Stats().Commits), "si-commits")

		// 2PL with a 32-line version buffer.
		cfg := twopl.DefaultConfig()
		cfg.VersionBufferLines = 32
		bounded := twopl.New(cfg)
		commits := runLargeBounded(bounded, lines)
		b.ReportMetric(float64(commits), "2pl-bounded-commits")
		b.ReportMetric(float64(bounded.Stats().Aborts[tm.AbortCapacity]), "2pl-capacity-aborts")
	}
}

// runLarge executes 4 threads x 5 large transactions on an engine whose
// retry loop can succeed.
func runLarge(e tm.Engine, lines int) {
	s := sched.New(4, 3)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 5; i++ {
			_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				base := th.ID()*1000 + i*100
				for l := 0; l < lines; l++ {
					tx.Write(mem.Addr((base+l+1)*64), uint64(l))
				}
				return nil
			})
		}
	})
}

// runLargeBounded executes the same workload on a bounded engine, giving
// up on a transaction after a few capacity aborts (retrying an overflow
// forever would never succeed).
func runLargeBounded(e tm.Engine, lines int) (commits uint64) {
	s := sched.New(4, 3)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 5; i++ {
			for attempt := 0; attempt < 3; attempt++ {
				ok := func() (ok bool) {
					defer func() {
						if recover() != nil {
							ok = false
						}
					}()
					tx := e.Begin(th)
					base := th.ID()*1000 + i*100
					for l := 0; l < lines; l++ {
						tx.Write(mem.Addr((base+l+1)*64), uint64(l))
					}
					return tx.Commit() == nil
				}()
				if ok {
					commits++
					break
				}
			}
		}
	})
	return commits
}

// BenchmarkAblationInterrupts reproduces the §1 claim that conventional
// TMs abort on interrupts while SI-TM's memory-resident state survives
// them: the same workload with interrupts injected every 2000 accesses.
// (The period must exceed the longest transaction's access count, or the
// retry loop can never win — which is itself the paper's point about
// unpredictable performance.)
func BenchmarkAblationInterrupts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := twopl.DefaultConfig()
		cfg.InterruptPeriod = 2000
		e := twopl.New(cfg)
		m := txlibMemFor(e)
		w := micro.NewList()
		w.Setup(m, 8)
		s := sched.New(8, 7)
		s.Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
		b.ReportMetric(float64(e.Stats().Aborts[tm.AbortInterrupt]), "2pl-interrupt-aborts")

		si := core.New(core.DefaultConfig())
		m2 := txlibMemFor(si)
		w2 := micro.NewList()
		w2.Setup(m2, 8)
		s2 := sched.New(8, 7)
		s2.Run(func(th *sched.Thread) { w2.Run(m2, th, tm.DefaultBackoff()) })
		b.ReportMetric(float64(si.Stats().Aborts[tm.AbortInterrupt]), "si-interrupt-aborts")
	}
}

// txlibMemFor wraps an engine in a fresh simulated address space.
func txlibMemFor(e tm.Engine) *txlib.Mem { return txlib.NewMem(e) }

// BenchmarkEngineThroughput compares raw committed-transaction throughput
// (commits per million simulated cycles) per engine on the List
// microbenchmark at 16 threads.
func BenchmarkEngineThroughput(b *testing.B) {
	kinds := []harness.EngineKind{harness.TwoPL, harness.SONTM, harness.SITM}
	for _, kind := range kinds {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := harness.Run(kind, func() harness.Workload { return micro.NewList() }, 16, benchOpts())
				b.ReportMetric(r.Throughput*1000, "commits/Mcycle")
				b.ReportMetric(r.AbortRate, "abort-rate")
			}
		})
	}
}
