package aset

import "repro/internal/mem"

// LineWords buffers a transaction's stores to one cache line: a mask of
// written words plus the buffered values. It is the per-line unit of
// every engine's speculative write state.
type LineWords struct {
	Mask  uint8
	Words [mem.WordsPerLine]uint64
}

// WriteLog is a transaction's speculative write state: a LineMap from
// written lines to their buffered words. It replaces both the engines'
// per-word write logs (map[mem.Addr]uint64) and their line-granularity
// write sets (map[mem.Line]struct{}): line membership, first-write order
// and the buffered words all live in one structure, so the per-store cost
// is a single probe. The zero value is an empty log.
type WriteLog struct {
	m LineMap[LineWords]
}

// Len returns the number of written lines.
func (w *WriteLog) Len() int { return w.m.Len() }

// Lines returns the written lines in first-write order (shared slice;
// callers must not modify it, and Reset invalidates it).
func (w *WriteLog) Lines() []mem.Line { return w.m.Lines() }

// At returns the i-th written line and its buffered words without
// probing.
func (w *WriteLog) At(i int) (mem.Line, *LineWords) { return w.m.At(i) }

// Has reports whether the transaction wrote line l.
func (w *WriteLog) Has(l mem.Line) bool { return w.m.Has(l) }

// Line returns the buffered words of line l, or (nil, false) when the
// transaction never wrote it.
func (w *WriteLog) Line(l mem.Line) (*LineWords, bool) { return w.m.Get(l) }

// Store buffers a word store and reports whether it was the first store
// to its line.
func (w *WriteLog) Store(a mem.Addr, v uint64) bool {
	e, first := w.m.Put(mem.LineOf(a))
	i := mem.WordOf(a)
	e.Mask |= 1 << i
	e.Words[i] = v
	return first
}

// Load returns the buffered value of address a, if the transaction wrote
// that exact word. The signature rejects the common "line not in my write
// set" case with a single AND.
func (w *WriteLog) Load(a mem.Addr) (uint64, bool) {
	e, ok := w.m.Get(mem.LineOf(a))
	if !ok {
		return 0, false
	}
	i := mem.WordOf(a)
	if e.Mask&(1<<i) == 0 {
		return 0, false
	}
	return e.Words[i], true
}

// Reset discards the log in O(touched lines), keeping capacity.
func (w *WriteLog) Reset() { w.m.Reset() }
