package aset

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestLineSetMatchesMap drives a LineSet and a reference Go map with the
// same random stream — adds, membership probes and periodic resets over
// a skewed key range — and requires identical answers at every step plus
// identical first-insertion order. This is the property the engines'
// byte-identical figures rest on: the open-addressing table must be
// observably a map with deterministic iteration order.
func TestLineSetMatchesMap(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		var s LineSet
		ref := map[mem.Line]bool{}
		var refOrder []mem.Line
		for op := 0; op < 20000; op++ {
			// Mixed key ranges: a hot dense region (collision-heavy
			// after masking) and a sparse tail, including line 0.
			l := mem.Line(r.Intn(64))
			if r.Intn(4) == 0 {
				l = mem.Line(r.Uint64() >> 34)
			}
			switch r.Intn(8) {
			case 0: // reset
				s.Reset()
				ref = map[mem.Line]bool{}
				refOrder = refOrder[:0]
			case 1, 2: // membership probe
				if got, want := s.Contains(l), ref[l]; got != want {
					t.Fatalf("seed %d op %d: Contains(%d) = %v, want %v", seed, op, l, got, want)
				}
			default: // add
				got := s.Add(l)
				want := !ref[l]
				if got != want {
					t.Fatalf("seed %d op %d: Add(%d) = %v, want %v", seed, op, l, got, want)
				}
				if want {
					ref[l] = true
					refOrder = append(refOrder, l)
				}
			}
			if s.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, s.Len(), len(ref))
			}
		}
		lines := s.Lines()
		if len(lines) != len(refOrder) {
			t.Fatalf("seed %d: order length %d, want %d", seed, len(lines), len(refOrder))
		}
		for i := range lines {
			if lines[i] != refOrder[i] {
				t.Fatalf("seed %d: Lines()[%d] = %d, want %d (insertion order broken)", seed, i, lines[i], refOrder[i])
			}
		}
	}
}

// TestWriteLogMatchesMap drives a WriteLog and a reference
// map[mem.Addr]uint64 with the same random stream of stores, loads and
// resets, checking word-exact load answers, line membership, and
// first-write line order.
func TestWriteLogMatchesMap(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		var w WriteLog
		ref := map[mem.Addr]uint64{}
		var refOrder []mem.Line
		refLines := map[mem.Line]bool{}
		for op := 0; op < 20000; op++ {
			a := mem.Addr(r.Intn(512) * mem.WordBytes)
			switch r.Intn(8) {
			case 0: // reset
				w.Reset()
				ref = map[mem.Addr]uint64{}
				refOrder = refOrder[:0]
				refLines = map[mem.Line]bool{}
			case 1, 2, 3: // load
				got, ok := w.Load(a)
				want, wok := ref[a]
				if ok != wok || got != want {
					t.Fatalf("seed %d op %d: Load(%d) = %d,%v want %d,%v", seed, op, a, got, ok, want, wok)
				}
				line := mem.LineOf(a)
				if w.Has(line) != refLines[line] {
					t.Fatalf("seed %d op %d: Has(%d) = %v, want %v", seed, op, line, w.Has(line), refLines[line])
				}
			default: // store
				v := r.Uint64()
				first := w.Store(a, v)
				line := mem.LineOf(a)
				if first != !refLines[line] {
					t.Fatalf("seed %d op %d: Store(%d) first = %v, want %v", seed, op, a, first, !refLines[line])
				}
				if first {
					refLines[line] = true
					refOrder = append(refOrder, line)
				}
				ref[a] = v
			}
		}
		lines := w.Lines()
		if len(lines) != len(refOrder) {
			t.Fatalf("seed %d: %d lines, want %d", seed, len(lines), len(refOrder))
		}
		for i, l := range lines {
			if l != refOrder[i] {
				t.Fatalf("seed %d: Lines()[%d] = %d, want %d", seed, i, l, refOrder[i])
			}
			gl, ok := w.Line(l)
			if !ok {
				t.Fatalf("seed %d: Line(%d) missing", seed, l)
			}
			al, ap := w.At(i)
			if al != l || ap != gl {
				t.Fatalf("seed %d: At(%d) = (%d,%p), want (%d,%p)", seed, i, al, ap, l, gl)
			}
			for word := 0; word < mem.WordsPerLine; word++ {
				a := mem.WordAddr(l, word)
				if v, wok := ref[a]; wok {
					if gl.Mask&(1<<word) == 0 || gl.Words[word] != v {
						t.Fatalf("seed %d: line %d word %d = %d mask %v, want %d", seed, l, word, gl.Words[word], gl.Mask&(1<<word) != 0, v)
					}
				} else if gl.Mask&(1<<word) != 0 {
					t.Fatalf("seed %d: line %d word %d spuriously masked", seed, l, word)
				}
			}
		}
	}
}

// TestLineMapValuesSurviveGrowth pins the value lane across rehashes:
// entries inserted before several growth rounds keep their values.
func TestLineMapValuesSurviveGrowth(t *testing.T) {
	var m LineMap[uint64]
	const n = 1000
	for i := 0; i < n; i++ {
		v, first := m.Put(mem.Line(i * 7))
		if !first {
			t.Fatalf("line %d: duplicate insert", i*7)
		}
		*v = uint64(i) + 1
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(mem.Line(i * 7))
		if !ok || *v != uint64(i)+1 {
			t.Fatalf("line %d: value lost across growth (got %v, ok %v)", i*7, v, ok)
		}
	}
}

// TestResetKeepsCapacity proves the recycling contract: after a Reset, a
// transaction-sized reuse of the set allocates nothing and observes a
// pristine value lane.
func TestResetKeepsCapacity(t *testing.T) {
	var s LineSet
	var w WriteLog
	for i := 0; i < 128; i++ {
		s.Add(mem.Line(i))
		w.Store(mem.WordAddr(mem.Line(i), i%mem.WordsPerLine), uint64(i))
	}
	s.Reset()
	w.Reset()
	if s.Len() != 0 || w.Len() != 0 {
		t.Fatalf("Reset left %d/%d entries", s.Len(), w.Len())
	}
	if got, ok := w.Load(mem.WordAddr(3, 3)); ok {
		t.Fatalf("Reset left a loadable word: %d", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			s.Add(mem.Line(i))
			w.Store(mem.WordAddr(mem.Line(i), i%mem.WordsPerLine), uint64(i))
		}
		for i := 0; i < 128; i++ {
			if !s.Contains(mem.Line(i)) {
				t.Fatal("lost line after reset")
			}
		}
		s.Reset()
		w.Reset()
	})
	if allocs != 0 {
		t.Errorf("reused set allocates %v allocs/op, want 0", allocs)
	}
}

// TestSignatureRejectsWithoutProbe checks the Bloom fast path is wired:
// an empty set with a nil table answers Contains without touching table
// memory (no panic, no allocation), and a populated signature never
// produces a false negative.
func TestSignatureRejectsWithoutProbe(t *testing.T) {
	var s LineSet
	if s.Contains(42) {
		t.Fatal("empty set claims membership")
	}
	r := rand.New(rand.NewSource(7))
	var added []mem.Line
	for i := 0; i < 300; i++ {
		l := mem.Line(r.Uint64() >> 40)
		s.Add(l)
		added = append(added, l)
	}
	for _, l := range added {
		if !s.Contains(l) {
			t.Fatalf("false negative for %d", l)
		}
	}
}

// liveEntry is the engines' liveness shape: epoch match plus a finished
// flag on the object.
type fakeTxn struct {
	epoch    uint64
	finished bool
}

func liveFake(t *fakeTxn, epoch uint64) bool { return t.epoch == epoch && !t.finished }

// TestReadersEpochValidation pins the reader-list semantics: records go
// stale when the transaction finishes or its object is recycled (epoch
// bump), compaction removes exactly the stale records, and CompactAdd
// after recycling leaves one live record.
func TestReadersEpochValidation(t *testing.T) {
	var r Readers[*fakeTxn]
	a := &fakeTxn{epoch: 1}
	b := &fakeTxn{epoch: 1}
	c := &fakeTxn{epoch: 1}
	r.CompactAdd(a, a.epoch, liveFake)
	r.CompactAdd(b, b.epoch, liveFake)
	r.CompactAdd(c, c.epoch, liveFake)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	b.finished = true  // finished: record stale
	c.epoch++          // recycled: record stale
	c.finished = false // even though the new incarnation is unfinished

	live := 0
	for _, e := range r.Entries() {
		if liveFake(e.Tx, e.Epoch) {
			live++
			if e.Tx != a {
				t.Fatalf("wrong live record %+v", e.Tx)
			}
		}
	}
	if live != 1 {
		t.Fatalf("%d live records, want 1", live)
	}

	r.Compact(liveFake)
	if r.Len() != 1 || r.Entries()[0].Tx != a {
		t.Fatalf("Compact kept %d records", r.Len())
	}

	// The recycled object re-reads the line: its stale record is gone,
	// so CompactAdd leaves exactly one live record for it.
	r.CompactAdd(c, c.epoch, liveFake)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Reset left %d records", r.Len())
	}
}

// BenchmarkLineSet measures the membership probes the engines issue per
// simulated access: a signature-rejected miss (the overwhelmingly common
// case) and a table hit.
func BenchmarkLineSet(b *testing.B) {
	var s LineSet
	for i := 0; i < 32; i++ {
		s.Add(mem.Line(i * 3))
	}
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		sink := false
		for i := 0; i < b.N; i++ {
			sink = s.Contains(mem.Line(1_000_000 + i))
		}
		_ = sink
	})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		sink := false
		for i := 0; i < b.N; i++ {
			sink = s.Contains(mem.Line((i % 32) * 3))
		}
		_ = sink
	})
}

// BenchmarkWriteLogStore measures the steady-state store path: repeated
// stores into an already-written working set.
func BenchmarkWriteLogStore(b *testing.B) {
	var w WriteLog
	for i := 0; i < 32; i++ {
		w.Store(mem.WordAddr(mem.Line(i), 0), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Store(mem.WordAddr(mem.Line(i%32), i%mem.WordsPerLine), uint64(i))
	}
}
