// Package aset provides the access-set structures the TM engines track
// transactions with: open-addressing line tables fronted by one-word
// Bloom signatures, and epoch-stamped per-line reader lists. Real HTMs
// track read/write sets with fixed hardware structures — signatures and
// limited set tables — rather than software hash maps; these types are
// the software rendering of that design, replacing the Go maps that
// dominated the engines' per-access cost: a membership probe is one
// word-AND in the common "line not in my set" case and a short linear
// probe otherwise, and resetting a set between transaction attempts
// touches only the entries the transaction used, so recycled
// transactions keep their grown capacity without rehash churn.
//
// All types are single-simulation state, used only under the
// deterministic scheduler: no locking, and iteration order is always
// first-insertion order, never hash order.
package aset

import (
	"math/bits"

	"repro/internal/mem"
)

// minTable is the smallest table a set allocates: small enough that a
// short transaction stays cache-resident, large enough that typical
// transactions never grow.
const minTable = 16

// hashMul is the golden-ratio multiplier of the multiply-shift hash
// (Fibonacci hashing): the high bits of line*hashMul are well mixed, so
// the slot index is taken from the top of the product and the signature
// bit from the middle.
const hashMul = 0x9E3779B97F4A7C15

// hashLine mixes a line number. Lines are keyed as line+1 so that a zero
// table word can serve as the empty sentinel (line 0 itself is legal:
// only address 0 is reserved by the allocator).
func hashLine(l mem.Line) uint64 { return (uint64(l) + 1) * hashMul }

// sigBit returns the line's bit in the one-word Bloom signature. The bit
// index comes from product bits the slot index does not use, so signature
// and table misses stay independent.
func sigBit(h uint64) uint64 { return 1 << ((h >> 50) & 63) }

// LineSet is a set of cache lines: a power-of-two open-addressing table
// with linear probing, a Bloom signature for O(1) miss rejection, and
// first-insertion iteration order. The zero value is an empty set.
type LineSet struct {
	sig   uint64
	shift uint8
	tab   []uint64 // line+1 per slot; 0 = empty
	lines []mem.Line
	slots []uint32 // lines[i] occupies tab[slots[i]]
}

// Len returns the number of lines in the set.
func (s *LineSet) Len() int { return len(s.lines) }

// Lines returns the set's lines in first-insertion order (shared slice;
// callers must not modify it, and Reset invalidates it).
func (s *LineSet) Lines() []mem.Line { return s.lines }

// Contains reports whether l is in the set. The signature rejects most
// misses with a single AND.
func (s *LineSet) Contains(l mem.Line) bool {
	h := hashLine(l)
	if s.sig&sigBit(h) == 0 {
		return false
	}
	mask := uint64(len(s.tab) - 1)
	k := uint64(l) + 1
	for i := h >> s.shift; ; i = (i + 1) & mask {
		switch s.tab[i] {
		case k:
			return true
		case 0:
			return false
		}
	}
}

// Add inserts l and reports whether it was absent.
func (s *LineSet) Add(l mem.Line) bool {
	if 2*len(s.lines) >= len(s.tab) {
		s.grow()
	}
	h := hashLine(l)
	mask := uint64(len(s.tab) - 1)
	k := uint64(l) + 1
	i := h >> s.shift
	for s.tab[i] != 0 {
		if s.tab[i] == k {
			return false
		}
		i = (i + 1) & mask
	}
	s.tab[i] = k
	s.sig |= sigBit(h)
	s.lines = append(s.lines, l)
	s.slots = append(s.slots, uint32(i))
	return true
}

// Reset empties the set in O(touched): only the slots the set's lines
// occupy are cleared, so the grown table capacity survives for the next
// transaction without a rehash.
func (s *LineSet) Reset() {
	for _, slot := range s.slots {
		s.tab[slot] = 0
	}
	s.lines = s.lines[:0]
	s.slots = s.slots[:0]
	s.sig = 0
}

// grow doubles the table (allocating the minimum on first use) and
// rehashes the existing lines, recording their new slots.
func (s *LineSet) grow() {
	n := 2 * len(s.tab)
	if n < minTable {
		n = minTable
	}
	s.tab = make([]uint64, n)
	s.shift = uint8(64 - bits.TrailingZeros(uint(n)))
	mask := uint64(n - 1)
	for j, l := range s.lines {
		i := hashLine(l) >> s.shift
		for s.tab[i] != 0 {
			i = (i + 1) & mask
		}
		s.tab[i] = uint64(l) + 1
		s.slots[j] = uint32(i)
	}
}

// LineMap is a map from cache lines to values of type T with the LineSet
// layout plus a value lane: values live in a slot-parallel slab, so
// entries are index-linked rather than pointer-allocated and a recycled
// transaction reuses the slab in place. The zero value is an empty map.
//
// Value pointers returned by Get/Put/At are invalidated by the next Put
// (which may grow the table) and by Reset.
type LineMap[T any] struct {
	sig   uint64
	shift uint8
	tab   []uint64 // line+1 per slot; 0 = empty
	vals  []T      // slot-parallel value slab
	lines []mem.Line
	slots []uint32
}

// Len returns the number of entries.
func (m *LineMap[T]) Len() int { return len(m.lines) }

// Lines returns the keys in first-insertion order (shared slice; callers
// must not modify it, and Reset invalidates it).
func (m *LineMap[T]) Lines() []mem.Line { return m.lines }

// At returns the i-th inserted entry without probing.
func (m *LineMap[T]) At(i int) (mem.Line, *T) {
	return m.lines[i], &m.vals[m.slots[i]]
}

// Has reports whether l has an entry.
func (m *LineMap[T]) Has(l mem.Line) bool {
	_, ok := m.Get(l)
	return ok
}

// Get returns the value slot for l, or (nil, false) when absent. The
// signature rejects most misses with a single AND.
func (m *LineMap[T]) Get(l mem.Line) (*T, bool) {
	h := hashLine(l)
	if m.sig&sigBit(h) == 0 {
		return nil, false
	}
	mask := uint64(len(m.tab) - 1)
	k := uint64(l) + 1
	for i := h >> m.shift; ; i = (i + 1) & mask {
		switch m.tab[i] {
		case k:
			return &m.vals[i], true
		case 0:
			return nil, false
		}
	}
}

// Put returns the value slot for l, inserting a zero entry when absent,
// and reports whether it inserted.
func (m *LineMap[T]) Put(l mem.Line) (*T, bool) {
	if 2*len(m.lines) >= len(m.tab) {
		m.grow()
	}
	h := hashLine(l)
	mask := uint64(len(m.tab) - 1)
	k := uint64(l) + 1
	i := h >> m.shift
	for m.tab[i] != 0 {
		if m.tab[i] == k {
			return &m.vals[i], false
		}
		i = (i + 1) & mask
	}
	m.tab[i] = k
	m.sig |= sigBit(h)
	m.lines = append(m.lines, l)
	m.slots = append(m.slots, uint32(i))
	return &m.vals[i], true
}

// Reset empties the map in O(touched), zeroing only the value slots the
// map's entries occupy so the slab is pristine for the next transaction.
func (m *LineMap[T]) Reset() {
	var zero T
	for _, slot := range m.slots {
		m.tab[slot] = 0
		m.vals[slot] = zero
	}
	m.lines = m.lines[:0]
	m.slots = m.slots[:0]
	m.sig = 0
}

// grow doubles the table and rehashes, carrying each entry's value to its
// new slot.
func (m *LineMap[T]) grow() {
	n := 2 * len(m.tab)
	if n < minTable {
		n = minTable
	}
	oldVals := m.vals
	m.tab = make([]uint64, n)
	m.vals = make([]T, n)
	m.shift = uint8(64 - bits.TrailingZeros(uint(n)))
	mask := uint64(n - 1)
	for j, l := range m.lines {
		i := hashLine(l) >> m.shift
		for m.tab[i] != 0 {
			i = (i + 1) & mask
		}
		m.tab[i] = uint64(l) + 1
		m.vals[i] = oldVals[m.slots[j]]
		m.slots[j] = uint32(i)
	}
}
