package aset

// Entry is one epoch-stamped reader record: the transaction and the
// epoch its object had when the record was made. A record is live only
// while the caller's liveness predicate accepts the pair — typically
// "the object's epoch still matches and the transaction has not
// finished" — so finishing or recycling a transaction invalidates all of
// its records at once, without walking any table.
type Entry[T any] struct {
	Tx    T
	Epoch uint64
}

// Readers is a per-line list of epoch-stamped reader records, the
// replacement for the engines' map[*txn]struct{} visible-reader sets.
// Records are appended on first read and removed by swap-remove when a
// scan finds them stale, so registering and deregistering readers never
// allocates in steady state (the backing array is retained). The zero
// value is an empty list.
//
// Population is bounded: every scan compacts, so a list holds at most
// the live readers plus the stale records accumulated since the last
// scan — in practice a handful of entries, cheaper to scan than a map
// was to hash.
type Readers[T any] struct {
	s []Entry[T]
}

// Len returns the number of records, live and stale.
func (r *Readers[T]) Len() int { return len(r.s) }

// Entries returns the records (shared slice; callers must validate each
// record with their liveness predicate and must not modify the slice).
func (r *Readers[T]) Entries() []Entry[T] { return r.s }

// Compact swap-removes every record the predicate rejects.
func (r *Readers[T]) Compact(live func(T, uint64) bool) {
	s := r.s
	for i := 0; i < len(s); {
		if live(s[i].Tx, s[i].Epoch) {
			i++
			continue
		}
		last := len(s) - 1
		s[i] = s[last]
		s[last] = Entry[T]{}
		s = s[:last]
	}
	r.s = s
}

// CompactAdd compacts the list and appends a record for tx. The caller
// guarantees tx is not already live in the list (engines dedup with a
// per-transaction LineSet before registering); a stale record for the
// same object is removed by the compaction.
func (r *Readers[T]) CompactAdd(tx T, epoch uint64, live func(T, uint64) bool) {
	r.Compact(live)
	r.s = append(r.s, Entry[T]{Tx: tx, Epoch: epoch})
}

// Reset drops every record, keeping capacity.
func (r *Readers[T]) Reset() {
	for i := range r.s {
		r.s[i] = Entry[T]{}
	}
	r.s = r.s[:0]
}
