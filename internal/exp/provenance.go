package exp

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// Provenance identifies the code that produces cell results. A cell
// result is a pure function of (cell, config, provenance) — the property
// PRs 1–5 pinned at byte-identity — which is what makes results
// content-addressable and location-independent.
//
// The cache key deliberately uses *source fingerprints* rather than the
// git revision: hashing the simulation sources directly means an engine
// edit invalidates only that engine's cells, an uncommitted edit can
// never masquerade as a clean-revision result, and a commit that touches
// no simulation code keeps the whole cache warm. The git revision (with
// a -dirty suffix for modified trees) is carried alongside for humans.
type Provenance struct {
	// GoVersion is runtime.Version(); figure bytes are pinned per
	// toolchain, so it participates in every key.
	GoVersion string `json:"go_version"`
	// GitRevision is the tree's revision, "-dirty"-suffixed when the
	// working tree has uncommitted changes, or "unknown". Informational:
	// it does not participate in cache keys.
	GitRevision string `json:"git_revision"`
	// Sim fingerprints the shared simulation sources (scheduler, memory
	// hierarchy, MVM, workloads, the cell layer itself): a change here
	// invalidates every cell.
	Sim string `json:"sim"`
	// Engines fingerprints each registered engine's defining sources by
	// lower-cased engine name: a change to one engine invalidates only
	// that engine's cells.
	Engines map[string]string `json:"engines"`
	// AllEngines is the combined engine fingerprint, used for engine
	// names without a dedicated source mapping (conservative: any
	// engine edit invalidates such cells).
	AllEngines string `json:"all_engines"`
}

// IsZero reports whether p carries no provenance at all.
func (p Provenance) IsZero() bool {
	return p.GoVersion == "" && p.Sim == "" && len(p.Engines) == 0
}

// CanCache reports whether p is strong enough to address a persistent
// cache: without source fingerprints a stored result could masquerade as
// a result of the current (possibly edited) tree.
func (p Provenance) CanCache() bool {
	return p.Sim != "" && p.Sim != fingerprintUnavailable
}

// engineFingerprint resolves the fingerprint for a cell's engine name.
func (p Provenance) engineFingerprint(engine string) string {
	if fp, ok := p.Engines[strings.ToLower(engine)]; ok {
		return fp
	}
	return p.AllEngines
}

// CellKey content-addresses one cell result: a hex SHA-256 over the cell
// coordinates, the full cell configuration, the Go version and the
// relevant source fingerprints. The schema is versioned; bump the prefix
// when the key composition changes.
func (p Provenance) CellKey(c Cell, cfg CellConfig) string {
	scale := cfg.Scale
	if scale < 1 {
		scale = 1 // the cell layer treats Scale<=1 as the fast defaults
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sitm-cell-v2\n")
	fmt.Fprintf(&b, "workload=%s\nengine=%s\nthreads=%d\nseed=%d\n",
		strings.ToLower(c.Workload), strings.ToLower(c.Engine), c.Threads, c.Seed)
	fmt.Fprintf(&b, "word=%t\nunbounded=%t\ndropoldest=%t\nnocoalescing=%t\nnoxlate=%t\nnobackoff=%t\nscale=%d\nmeasuremvm=%t\n",
		cfg.WordGranularity, cfg.UnboundedVersions, cfg.DropOldest, cfg.NoCoalescing,
		cfg.NoXlate, cfg.NoBackoff, scale, cfg.MeasureMVM)
	fmt.Fprintf(&b, "refsched=%t\nrefcache=%t\nrefsets=%t\nrefstore=%t\n", cfg.RefSched, cfg.RefCache, cfg.RefSets, cfg.RefStore)
	fmt.Fprintf(&b, "go=%s\nsim=%s\nenginesrc=%s\n", p.GoVersion, p.Sim, p.engineFingerprint(c.Engine))
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// fingerprintUnavailable marks provenance computed without access to the
// source tree; CanCache rejects it.
const fingerprintUnavailable = "unavailable"

// simSourceDirs are the module-relative directories whose sources
// determine every cell's result regardless of engine: the deterministic
// machine, the shared TM plumbing, the workloads, and the cell layer
// itself. internal/report is included because the commit-latency
// histogram recorded into every cell result (tm.Stats.CommitHist) gets
// its bucket geometry there. The figure renderers (internal/harness) and
// the service layer (internal/sweep) are deliberately absent — rendering
// and orchestration changes never invalidate simulated results.
var simSourceDirs = []string{
	"internal/aset",
	"internal/cache",
	"internal/clock",
	"internal/exp",
	"internal/mem",
	"internal/micro",
	"internal/mvm",
	"internal/oltp",
	"internal/report",
	"internal/sched",
	"internal/stamp",
	"internal/tm",
	"internal/txlib",
}

// engineSourceDirs maps lower-cased registered engine names to the
// directories that define them. SI-TM and SSI-TM share internal/core.
var engineSourceDirs = map[string][]string{
	"2pl":    {"internal/twopl"},
	"sontm":  {"internal/sontm"},
	"si-tm":  {"internal/core"},
	"ssi-tm": {"internal/core"},
}

var (
	provOnce sync.Once
	provCur  Provenance
)

// CurrentProvenance computes (once per process) the provenance of the
// running code: source fingerprints hashed from the module checkout this
// binary was built from, plus the git revision and Go version. Outside a
// source checkout the fingerprints degrade to "unavailable" and CanCache
// reports false.
func CurrentProvenance() Provenance {
	provOnce.Do(func() { provCur = ProvenanceAt(moduleRoot()) })
	return provCur
}

// ProvenanceAt computes provenance over the module checkout rooted at
// root (the directory holding go.mod). It is CurrentProvenance's worker,
// exported so tests can fingerprint synthetic trees.
func ProvenanceAt(root string) Provenance {
	p := Provenance{
		GoVersion:   runtime.Version(),
		GitRevision: GitRevision(root),
		Engines:     make(map[string]string, len(engineSourceDirs)),
	}
	p.Sim = fingerprintDirs(root, simSourceDirs)
	var engineNames []string
	for name := range engineSourceDirs {
		engineNames = append(engineNames, name)
	}
	sort.Strings(engineNames)
	var allDirs []string
	seen := map[string]bool{}
	for _, name := range engineNames {
		dirs := engineSourceDirs[name]
		p.Engines[name] = fingerprintDirs(root, dirs)
		for _, d := range dirs {
			if !seen[d] {
				seen[d] = true
				allDirs = append(allDirs, d)
			}
		}
	}
	p.AllEngines = fingerprintDirs(root, allDirs)
	return p
}

// moduleRoot locates the module checkout this source file was compiled
// from. The path is baked in at build time by the compiler, so it is
// valid whenever the sources are still present (go test, go run, CI, a
// binary run in its build tree) and absent only for relocated binaries.
func moduleRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ""
	}
	// file = <root>/internal/exp/provenance.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return ""
	}
	return root
}

// fingerprintDirs hashes every non-test .go file under the given
// module-relative directories (sorted by path, content included) into one
// hex digest. Missing directories hash as absent — a tree layout change
// is a code change. An unreadable root degrades to "unavailable".
func fingerprintDirs(root string, dirs []string) string {
	if root == "" {
		return fingerprintUnavailable
	}
	h := sha256.New()
	for _, dir := range dirs {
		abs := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(abs)
		if err != nil {
			fmt.Fprintf(h, "missing %s\n", dir)
			continue
		}
		var names []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := os.Open(filepath.Join(abs, name))
			if err != nil {
				fmt.Fprintf(h, "unreadable %s/%s\n", dir, name)
				continue
			}
			fmt.Fprintf(h, "file %s/%s\n", dir, name)
			_, cerr := io.Copy(h, f)
			f.Close()
			if cerr != nil {
				fmt.Fprintf(h, "unreadable %s/%s\n", dir, name)
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// CurrentGitRevision reports the running code's git revision (with a
// "-dirty" suffix for modified trees): the artefact-stamping form of
// GitRevision, resolved against the module checkout this binary was
// built from.
func CurrentGitRevision() string { return GitRevision(moduleRoot()) }

// GitRevision reports the tree's revision with a "-dirty" suffix when the
// working tree has uncommitted changes, so a stamped artefact (BENCH
// json, cached cell records) can never masquerade as a clean-revision
// result. It prefers the VCS stamp baked into the binary's build info
// and falls back to asking git about the checkout at root; "unknown"
// when neither is available.
func GitRevision(root string) string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	if root == "" {
		return "unknown"
	}
	out, err := exec.Command("git", "-C", root, "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "unknown"
	}
	if status, err := exec.Command("git", "-C", root, "status", "--porcelain").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		rev += "-dirty"
	}
	return rev
}
