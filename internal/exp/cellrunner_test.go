package exp_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/micro"
)

// corruptBlob truncates a stored blob mid-record.
func corruptBlob(t *testing.T, c *exp.Cache, key string) {
	t.Helper()
	path := filepath.Join(c.Dir(), key+".json")
	if err := os.WriteFile(path, []byte(`{"workload":`), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runner builds a cached CellRunner with a fixed synthetic provenance so
// the tests control invalidation precisely.
func runner(c *exp.Cache, prov exp.Provenance) exp.CellRunner {
	return exp.CellRunner{
		Runner:  exp.Runner{Workers: 1},
		Resolve: harness.WorkloadByName,
		Cache:   c,
		Prov:    prov,
	}
}

// fakeProv is a fully populated provenance that CanCache.
func fakeProv() exp.Provenance {
	return exp.Provenance{
		GoVersion:   "go-test",
		GitRevision: "abc",
		Sim:         "sim-fp-1",
		Engines:     map[string]string{"2pl": "twopl-fp-1", "sontm": "sontm-fp-1", "si-tm": "core-fp-1", "ssi-tm": "core-fp-1"},
		AllEngines:  "all-fp-1",
	}
}

func counts(rs []exp.Result[exp.CellResult]) (hits, computed int) {
	for _, r := range rs {
		if r.Cached {
			hits++
		} else {
			computed++
		}
	}
	return
}

func TestCellRunnerMemoizes(t *testing.T) {
	c, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := exp.Cross([]string{"List"}, []string{"2PL", "SI-TM"}, []int{2}, []uint64{1})
	cr := runner(c, fakeProv())

	cold, err := cr.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if hits, computed := counts(cold); hits != 0 || computed != len(plan) {
		t.Fatalf("cold run: %d hits, %d computed", hits, computed)
	}
	warm, err := cr.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if hits, computed := counts(warm); hits != len(plan) || computed != 0 {
		t.Fatalf("warm run: %d hits, %d computed", hits, computed)
	}
	// Cached results reproduce the computed ones exactly — this is what
	// figure byte-identity rests on.
	for i := range cold {
		if warm[i].Value != cold[i].Value {
			t.Fatalf("cell %s: cached %+v != computed %+v", plan[i], warm[i].Value, cold[i].Value)
		}
	}
}

func TestEngineEditRecomputesOnlyThatEngine(t *testing.T) {
	c, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := exp.Cross([]string{"List"}, []string{"2PL", "SONTM", "SI-TM"}, []int{2}, []uint64{1})
	if _, err := runner(c, fakeProv()).Run(plan); err != nil {
		t.Fatal(err)
	}

	// Simulate an edit to internal/twopl: only the 2PL fingerprint moves.
	edited := fakeProv()
	edited.Engines = map[string]string{"2pl": "twopl-fp-2", "sontm": "sontm-fp-1", "si-tm": "core-fp-1", "ssi-tm": "core-fp-1"}
	rs, err := runner(c, edited).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		wantCached := r.Cell.Engine != "2PL"
		if r.Cached != wantCached {
			t.Errorf("%s: cached=%v, want %v after a twopl-only edit", r.Cell, r.Cached, wantCached)
		}
	}
}

func TestCellRunnerBypassesCacheWithoutProvenance(t *testing.T) {
	c, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	weak := exp.Provenance{GoVersion: "go-test"} // no source fingerprints
	cr := exp.CellRunner{
		Runner:  exp.Runner{Workers: 1},
		Resolve: func(string) (func() exp.Workload, error) { return func() exp.Workload { return micro.NewList() }, nil },
		Cache:   c,
		Prov:    weak,
	}
	plan := exp.Plan{{Workload: "List", Engine: "SI-TM", Threads: 2, Seed: 1}}
	for run := 0; run < 2; run++ {
		rs, err := cr.Run(plan)
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].Cached {
			t.Fatal("unprovenanced run must never report a cache hit")
		}
	}
	if st := c.Stats(); st.Puts != 0 {
		t.Fatalf("unprovenanced run must not store blobs: %+v", st)
	}
}

func TestCellRunnerRecoversFromCorruptBlob(t *testing.T) {
	c, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prov := fakeProv()
	plan := exp.Plan{{Workload: "List", Engine: "SI-TM", Threads: 2, Seed: 1}}
	cr := runner(c, prov)
	cold, err := cr.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored blob in place, then re-run: the runner must
	// recompute (not crash, not serve garbage) and heal the cache.
	key := prov.CellKey(plan[0], exp.CellConfig{})
	if err := c.Put(key, cold[0].Value); err != nil {
		t.Fatal(err)
	}
	corruptBlob(t, c, key)
	again, err := cr.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Cached {
		t.Fatal("corrupt blob must force a recompute")
	}
	if again[0].Value != cold[0].Value {
		t.Fatalf("recomputed value differs: %+v vs %+v", again[0].Value, cold[0].Value)
	}
	healed, err := cr.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !healed[0].Cached {
		t.Fatal("recompute must re-store the blob")
	}
}
