package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testResult(commits uint64) CellResult {
	return CellResult{
		Workload: "List", Commits: commits, Aborts: 7,
		RWAborts: 4, WWAborts: 2, OtherAborts: 1, SimCycles: 123456,
		GitRevision: "deadbeef", GoVersion: "go-test",
	}
}

func testKey(b byte) string { return strings.Repeat(string([]byte{b}), 64) }

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey('a')
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache must miss")
	}
	want := testResult(42)
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored key must hit")
	}
	if got != want {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1/1/1", st)
	}
	// Contains neither loads nor accounts.
	if !c.Contains(key) || c.Contains(testKey('b')) {
		t.Fatal("Contains wrong")
	}
	if st2 := c.Stats(); st2 != st {
		t.Fatalf("Contains must not change stats: %+v vs %+v", st2, st)
	}
}

func TestCachePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c1, _ := OpenCache(dir)
	key := testKey('c')
	if err := c1.Put(key, testResult(9)); err != nil {
		t.Fatal(err)
	}
	c2, _ := OpenCache(dir)
	got, ok := c2.Get(key)
	if !ok || got.Commits != 9 {
		t.Fatalf("reopened cache lost the blob: ok=%v got=%+v", ok, got)
	}
}

func TestCacheCorruptBlobRecovers(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCache(dir)
	key := testKey('d')
	if err := c.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	// Truncate the blob mid-record, as a crash on an exotic filesystem
	// might. The cache must treat it as a miss, remove it, and keep the
	// error inspectable — recompute, don't crash.
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte(`{"workload":"List","com`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt blob must miss")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob must be removed, stat err = %v", err)
	}
	if c.LastError() == nil {
		t.Fatal("corruption must be recorded in LastError")
	}
	// The key is reusable after recovery.
	if err := c.Put(key, testResult(2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(key); !ok || got.Commits != 2 {
		t.Fatalf("recomputed blob must round-trip: ok=%v got=%+v", ok, got)
	}
}

func TestCacheRejectsBadKeys(t *testing.T) {
	c, _ := OpenCache(t.TempDir())
	for _, key := range []string{
		"",
		"short",
		strings.Repeat("A", 64), // upper-case hex is not produced
		"../../../../etc/passwd0000000000000000000000000", // traversal shape
		strings.Repeat("a", 63) + "/",
	} {
		if err := c.Put(key, CellResult{}); err == nil {
			t.Errorf("Put(%q) must reject the key", key)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("Get(%q) must miss", key)
		}
		if c.Contains(key) {
			t.Errorf("Contains(%q) must be false", key)
		}
	}
}

func TestCacheOverwriteLastWriterWins(t *testing.T) {
	c, _ := OpenCache(t.TempDir())
	key := testKey('e')
	c.Put(key, testResult(1))
	c.Put(key, testResult(2))
	if got, _ := c.Get(key); got.Commits != 2 {
		t.Fatalf("overwrite lost: %+v", got)
	}
}
