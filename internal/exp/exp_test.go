package exp

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCrossOrderAndSize(t *testing.T) {
	p := Cross([]string{"A", "B"}, []string{"E1", "E2"}, []int{1, 2}, []uint64{7, 8})
	if len(p) != 2*2*2*2 {
		t.Fatalf("plan size = %d, want 16", len(p))
	}
	// Nested order: workload outermost, then engine, threads, seeds.
	want := []Cell{
		{"A", "E1", 1, 7}, {"A", "E1", 1, 8}, {"A", "E1", 2, 7}, {"A", "E1", 2, 8},
		{"A", "E2", 1, 7}, {"A", "E2", 1, 8}, {"A", "E2", 2, 7}, {"A", "E2", 2, 8},
		{"B", "E1", 1, 7}, {"B", "E1", 1, 8}, {"B", "E1", 2, 7}, {"B", "E1", 2, 8},
		{"B", "E2", 1, 7}, {"B", "E2", 1, 8}, {"B", "E2", 2, 7}, {"B", "E2", 2, 8},
	}
	if !reflect.DeepEqual([]Cell(p), want) {
		t.Fatalf("plan order wrong:\n got %v\nwant %v", p, want)
	}
	if s := p[0].String(); s != "A/E1/t1/s7" {
		t.Fatalf("cell string = %q", s)
	}
}

// exec must see results come back in plan order no matter how cells
// interleave across workers.
func TestResultsInPlanOrderRegardlessOfWorkers(t *testing.T) {
	plan := Cross([]string{"w"}, []string{"e"}, []int{1}, seeds(32))
	exec := func(i int, c Cell) string {
		// Earlier cells sleep longer, so completion order inverts plan
		// order under parallelism.
		time.Sleep(time.Duration(len(plan)-i) * time.Millisecond)
		return fmt.Sprintf("%d:%s", i, c)
	}
	for _, workers := range []int{1, 3, 16} {
		rs := Run(Runner{Workers: workers}, plan, exec)
		if len(rs) != len(plan) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(rs), len(plan))
		}
		for i, r := range rs {
			if r.Cell != plan[i] {
				t.Fatalf("workers=%d: result %d carries cell %v, want %v", workers, i, r.Cell, plan[i])
			}
			if want := fmt.Sprintf("%d:%s", i, plan[i]); r.Value != want {
				t.Fatalf("workers=%d: result %d = %q, want %q", workers, i, r.Value, want)
			}
			if r.Wall <= 0 {
				t.Fatalf("workers=%d: result %d has no wall-clock", workers, i)
			}
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	plan := Cross([]string{"a", "b", "c"}, []string{"x", "y"}, []int{1, 2, 4}, seeds(3))
	exec := func(_ int, c Cell) uint64 { return c.Seed*1000 + uint64(c.Threads) }
	base := Values(Run(Runner{Workers: 1}, plan, exec))
	for _, workers := range []int{2, 5, 64} {
		got := Values(Run(Runner{Workers: workers}, plan, exec))
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}

func TestWorkerPoolIsBounded(t *testing.T) {
	const bound = 3
	var cur, peak atomic.Int64
	plan := Cross([]string{"w"}, []string{"e"}, []int{1}, seeds(24))
	Run(Runner{Workers: bound}, plan, func(int, Cell) int {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return 0
	})
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, bound)
	}
}

func TestProgressIsSerialisedAndComplete(t *testing.T) {
	plan := Cross([]string{"w"}, []string{"e"}, []int{1}, seeds(20))
	var mu sync.Mutex
	var dones []int
	total := -1
	rs := Run(Runner{Workers: 4, Progress: func(p Progress) {
		// The runner serialises callbacks; the mutex here only guards
		// against the test's own assertions racing a buggy runner.
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, p.Done)
		total = p.Total
		if p.Wall < 0 {
			t.Errorf("negative wall for %v", p.Cell)
		}
	}}, plan, func(i int, c Cell) int { return i })
	if len(rs) != len(plan) || total != len(plan) {
		t.Fatalf("results=%d total=%d, want %d", len(rs), total, len(plan))
	}
	if len(dones) != len(plan) {
		t.Fatalf("%d progress callbacks, want %d", len(dones), len(plan))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done sequence %v not monotonically 1..N", dones)
		}
	}
}

func TestZeroWorkersDefaultsAndEmptyPlan(t *testing.T) {
	if rs := Run(Runner{}, nil, func(int, Cell) int { return 1 }); len(rs) != 0 {
		t.Fatalf("empty plan produced %d results", len(rs))
	}
	rs := Run(Runner{Workers: 0}, Plan{{Workload: "w", Engine: "e", Threads: 1, Seed: 1}},
		func(int, Cell) int { return 42 })
	if len(rs) != 1 || rs[0].Value != 42 {
		t.Fatalf("default-worker run wrong: %+v", rs)
	}
	if got := (Runner{Workers: -1}).workers(10); got < 1 {
		t.Fatalf("workers(-1) = %d, want >= 1", got)
	}
	if got := (Runner{Workers: 8}).workers(2); got != 2 {
		t.Fatalf("workers should clamp to plan length, got %d", got)
	}
}

func TestValues(t *testing.T) {
	rs := []Result[int]{{Value: 1}, {Value: 2}, {Value: 3}}
	if got := Values(rs); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Values = %v", got)
	}
}

func seeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}
