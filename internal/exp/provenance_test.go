package exp

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out a synthetic module checkout: go.mod plus one .go
// file per fingerprinted directory.
func writeTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module synthetic\n")
	for _, dir := range simSourceDirs {
		write(dir+"/pkg.go", "package p // "+dir+"\n")
	}
	for _, dirs := range engineSourceDirs {
		for _, dir := range dirs {
			write(dir+"/engine.go", "package p // "+dir+"\n")
		}
	}
	write("internal/harness/harness.go", "package harness\n")
	return root
}

func edit(t *testing.T, root, rel, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, filepath.FromSlash(rel)), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// keysFor computes the cache keys of one cell per engine under p.
func keysFor(p Provenance) map[string]string {
	keys := make(map[string]string)
	for _, engine := range []string{"2PL", "SONTM", "SI-TM", "SSI-TM"} {
		c := Cell{Workload: "List", Engine: engine, Threads: 8, Seed: 1}
		keys[engine] = p.CellKey(c, CellConfig{})
	}
	return keys
}

func TestEngineEditInvalidatesOnlyThatEngine(t *testing.T) {
	root := writeTree(t)
	before := ProvenanceAt(root)
	if !before.CanCache() {
		t.Fatal("synthetic tree must be cacheable")
	}
	keysBefore := keysFor(before)

	// The acceptance criterion: editing one engine's sources changes the
	// keys of exactly that engine's cells.
	edit(t, root, "internal/twopl/engine.go", "package p // edited\n")
	after := ProvenanceAt(root)
	keysAfter := keysFor(after)

	if after.Sim != before.Sim {
		t.Fatal("engine edit must not change the shared sim fingerprint")
	}
	if keysAfter["2PL"] == keysBefore["2PL"] {
		t.Fatal("2PL keys must change after editing internal/twopl")
	}
	for _, engine := range []string{"SONTM", "SI-TM", "SSI-TM"} {
		if keysAfter[engine] != keysBefore[engine] {
			t.Fatalf("%s keys must survive a twopl edit", engine)
		}
	}
}

func TestCoreEditInvalidatesBothSIEngines(t *testing.T) {
	// SI-TM and SSI-TM share internal/core, so a core edit invalidates
	// both — and only both.
	root := writeTree(t)
	before := keysFor(ProvenanceAt(root))
	edit(t, root, "internal/core/engine.go", "package p // edited\n")
	after := keysFor(ProvenanceAt(root))
	for engine, want := range map[string]bool{"2PL": false, "SONTM": false, "SI-TM": true, "SSI-TM": true} {
		if changed := after[engine] != before[engine]; changed != want {
			t.Errorf("%s key changed=%v, want %v", engine, changed, want)
		}
	}
}

func TestSimEditInvalidatesEverything(t *testing.T) {
	root := writeTree(t)
	before := ProvenanceAt(root)
	edit(t, root, "internal/sched/pkg.go", "package p // edited\n")
	after := ProvenanceAt(root)
	if after.Sim == before.Sim {
		t.Fatal("sched edit must change the sim fingerprint")
	}
	kb, ka := keysFor(before), keysFor(after)
	for engine := range kb {
		if ka[engine] == kb[engine] {
			t.Errorf("%s key must change after a shared-sim edit", engine)
		}
	}
}

func TestRenderingEditKeepsCacheWarm(t *testing.T) {
	// The harness (figure rendering) is deliberately outside the
	// fingerprint: figure edits must not cold the cache.
	root := writeTree(t)
	before := keysFor(ProvenanceAt(root))
	edit(t, root, "internal/harness/harness.go", "package harness // edited\n")
	after := keysFor(ProvenanceAt(root))
	for engine := range before {
		if after[engine] != before[engine] {
			t.Errorf("%s key changed after a harness-only edit", engine)
		}
	}
}

func TestTestFileEditKeepsCacheWarm(t *testing.T) {
	root := writeTree(t)
	before := ProvenanceAt(root)
	path := filepath.Join(root, "internal/sched/pkg_test.go")
	if err := os.WriteFile(path, []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if after := ProvenanceAt(root); after.Sim != before.Sim {
		t.Fatal("_test.go files must not participate in fingerprints")
	}
}

func TestProvenanceUnavailableCannotCache(t *testing.T) {
	p := ProvenanceAt("")
	if p.CanCache() {
		t.Fatal("empty root must not be cacheable")
	}
	if !ProvenanceAt(writeTree(t)).CanCache() {
		t.Fatal("real tree must be cacheable")
	}
}

func TestCellKeySeparatesConfigs(t *testing.T) {
	p := ProvenanceAt(writeTree(t))
	c := Cell{Workload: "List", Engine: "SI-TM", Threads: 8, Seed: 1}
	base := p.CellKey(c, CellConfig{})
	seen := map[string]string{"base": base}
	for name, cfg := range map[string]CellConfig{
		"word":       {WordGranularity: true},
		"unbounded":  {UnboundedVersions: true},
		"dropoldest": {DropOldest: true},
		"nobackoff":  {NoBackoff: true},
		"scale":      {Scale: 3},
		"mvm":        {MeasureMVM: true},
		"refsched":   {RefSched: true},
	} {
		key := p.CellKey(c, cfg)
		for prev, pk := range seen {
			if pk == key {
				t.Errorf("config %q collides with %q", name, prev)
			}
		}
		seen[name] = key
	}
	// Scale <= 1 normalises to the fast defaults.
	if p.CellKey(c, CellConfig{Scale: 1}) != base || p.CellKey(c, CellConfig{}) != base {
		t.Error("Scale 0 and 1 must share a key")
	}
	// Coordinates separate too.
	c2 := c
	c2.Seed = 2
	if p.CellKey(c2, CellConfig{}) == base {
		t.Error("seed must participate in the key")
	}
	// Case-insensitive coordinates share a key (the registry is
	// case-insensitive, so "list" and "List" name the same cell).
	lower := Cell{Workload: "list", Engine: "si-tm", Threads: 8, Seed: 1}
	if p.CellKey(lower, CellConfig{}) != base {
		t.Error("workload/engine case must not split the cache")
	}
}

func TestCurrentProvenanceFingerprintsThisCheckout(t *testing.T) {
	// Built from the real source tree (go test always is), provenance
	// must be strong enough to cache and stable across calls.
	p := CurrentProvenance()
	if !p.CanCache() {
		t.Fatal("test build must have usable provenance")
	}
	if p.Engines["2pl"] == "" || p.Engines["si-tm"] == "" {
		t.Fatalf("engine fingerprints missing: %+v", p.Engines)
	}
	if p.Engines["si-tm"] != p.Engines["ssi-tm"] {
		t.Fatal("SI-TM and SSI-TM share internal/core and must share a fingerprint")
	}
	if q := CurrentProvenance(); q.Sim != p.Sim {
		t.Fatal("CurrentProvenance must be stable within a process")
	}
}
