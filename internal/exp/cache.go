package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache is a persistent content-addressed store of cell results: one JSON
// blob per provenance key under a directory. Because keys hash the full
// cell coordinates, configuration and source fingerprints, there is no
// explicit invalidation protocol — an edit to simulation code changes the
// keys of the affected cells and the stale blobs simply stop being
// addressed. Entries never lie; at worst they are garbage to every future
// key and can be deleted wholesale (`rm -r <dir>`).
//
// The cache is safe for concurrent use by multiple goroutines AND
// multiple processes sharing one directory: blobs are written to a
// temporary file and renamed into place, so a reader sees either nothing
// or a complete record. A corrupted or truncated blob (crash mid-rename
// on exotic filesystems, manual tampering) is treated as a miss and
// removed — recompute, don't crash.
type Cache struct {
	dir string

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64

	errMu   sync.Mutex
	lastErr error
}

// OpenCache opens (creating if needed) a result cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("exp: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its blob path. Keys are hex digests; anything else
// is rejected by Get/Put before reaching the filesystem.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// validKey guards against path traversal through hand-built keys.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if !strings.ContainsRune("0123456789abcdef", r) {
			return false
		}
	}
	return true
}

// Get loads the result stored under key. A missing, unreadable or
// corrupted blob reports ok=false (and removes the blob when corrupted):
// the caller recomputes and overwrites.
func (c *Cache) Get(key string) (CellResult, bool) {
	var res CellResult
	if !validKey(key) {
		return res, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return res, false
	}
	if err := json.Unmarshal(data, &res); err != nil {
		// Corrupted blob: recover by recomputing, and drop the blob so
		// it stops costing a parse on every probe.
		os.Remove(c.path(key))
		c.noteError(fmt.Errorf("exp: corrupt cache blob %s (removed): %w", key, err))
		c.misses.Add(1)
		return res, false
	}
	c.hits.Add(1)
	return res, true
}

// Contains reports whether key is stored, without loading or accounting
// it (the sweep service uses it to size resumed plans).
func (c *Cache) Contains(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Put stores res under key atomically (temp file + rename), so concurrent
// writers of the same key — workers racing on a shared cell — both
// succeed and readers never observe a partial blob. Last writer wins;
// deterministic cells make every writer's record identical anyway.
func (c *Cache) Put(key string, res CellResult) error {
	if !validKey(key) {
		return fmt.Errorf("exp: invalid cache key %q", key)
	}
	data, err := json.MarshalIndent(&res, "", " ")
	if err != nil {
		return fmt.Errorf("exp: encoding cache blob: %w", err)
	}
	f, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("exp: writing cache blob: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return fmt.Errorf("exp: writing cache blob: %w", werr)
	}
	if err := os.Rename(f.Name(), c.path(key)); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("exp: writing cache blob: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// CacheStats is a point-in-time snapshot of cache traffic.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
}

// Stats snapshots the per-process hit/miss/store counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Puts: c.puts.Load()}
}

// noteError records a non-fatal cache problem (failed store, corrupt
// blob) for later inspection; cache errors cost recomputes, never
// correctness.
func (c *Cache) noteError(err error) {
	c.errMu.Lock()
	c.lastErr = err
	c.errMu.Unlock()
}

// LastError returns the most recent non-fatal cache problem, if any.
func (c *Cache) LastError() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.lastErr
}
