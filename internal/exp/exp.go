// Package exp is the experiment-plan layer of the evaluation harness.
//
// A Plan is a flat, ordered list of cells — one fully specified simulation
// each: {workload, engine, threads, seed}. A Runner executes a plan on a
// bounded pool of OS goroutines. Each cell is an isolated deterministic
// simulation (the executor builds a fresh engine, memory hierarchy and
// workload per cell — shared-nothing), so cells can run concurrently
// without perturbing each other's lowest-cycle-first schedules: the
// deterministic conductor of internal/sched serialises the *logical*
// threads within one simulation, while the runner parallelises across
// simulations.
//
// Results are always returned in plan order, regardless of the worker
// count or the order in which cells happen to finish, so any report
// rendered from them is byte-identical whether the sweep ran on one
// worker or on every core of the machine.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Cell names one simulation of a sweep: a workload run on an engine with a
// thread count and a scheduler seed. Cells are plain values; the runner
// never interprets them beyond passing them to the executor.
type Cell struct {
	Workload string
	Engine   string
	Threads  int
	Seed     uint64
}

func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/t%d/s%d", c.Workload, c.Engine, c.Threads, c.Seed)
}

// Plan is an ordered list of cells. Order is significant: results come
// back in plan order.
type Plan []Cell

// Cross builds the full cross-product plan in nested order: workloads
// outermost, then engines, then thread counts, then seeds. This is the
// iteration order the figure renderers aggregate in.
func Cross(workloads, engines []string, threads []int, seeds []uint64) Plan {
	p := make(Plan, 0, len(workloads)*len(engines)*len(threads)*len(seeds))
	for _, w := range workloads {
		for _, e := range engines {
			for _, th := range threads {
				for _, s := range seeds {
					p = append(p, Cell{Workload: w, Engine: e, Threads: th, Seed: s})
				}
			}
		}
	}
	return p
}

// Progress reports one completed cell to the Runner's callback.
type Progress struct {
	// Done counts completed cells including this one; Total is the plan
	// length.
	Done, Total int
	// Cell is the completed cell; Wall is its wall-clock duration.
	Cell Cell
	Wall time.Duration
	// Cached reports that the cell was served from the result cache
	// instead of being simulated (CellRunner only).
	Cached bool
}

// Runner executes plans on a bounded worker pool.
type Runner struct {
	// Workers bounds the pool; values <= 0 mean runtime.GOMAXPROCS(0).
	// Each worker executes whole cells, one at a time.
	Workers int
	// Progress, when non-nil, is called after every completed cell.
	// Calls are serialised (the callback needs no locking) but arrive in
	// completion order, which is nondeterministic with more than one
	// worker — progress is for humans, results are for reports.
	Progress func(Progress)
}

// workers resolves the effective pool size for a plan.
func (r Runner) workers(planLen int) int {
	n := r.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > planLen {
		n = planLen
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Result pairs a cell with the executor's measurement and the cell's
// wall-clock duration. Cached reports whether the value was served from
// the result cache (CellRunner only).
type Result[T any] struct {
	Cell   Cell
	Value  T
	Wall   time.Duration
	Cached bool
}

// Run executes every cell of plan through exec and returns the results in
// plan order. exec receives the cell's plan index alongside the cell so
// callers can correlate with side tables; it must be safe to call from
// multiple goroutines and must not share mutable state between cells.
func Run[T any](r Runner, plan Plan, exec func(i int, c Cell) T) []Result[T] {
	return RunWarm(r, plan,
		func() struct{} { return struct{}{} },
		func(i int, c Cell, _ struct{}) T { return exec(i, c) })
}

// RunWarm is Run with per-worker warm state: every worker builds one W
// via warm and hands it to exec for each cell it executes, so state whose
// construction is expensive (resolved configurations, scratch memory for
// simulated cache arrays) is paid once per worker rather than once per
// cell. A W is only ever used by the worker that built it — exec may
// mutate it freely without synchronisation — and must not influence
// measured results: which worker runs a cell, and therefore which W it
// sees, is nondeterministic.
func RunWarm[T, W any](r Runner, plan Plan, warm func() W, exec func(i int, c Cell, w W) T) []Result[T] {
	return runWarm(r, plan, warm, func(i int, c Cell, w W) (T, bool) {
		return exec(i, c, w), false
	})
}

// runWarm is the shared worker-pool core: exec additionally reports
// whether the cell was served from a cache, which is threaded into the
// result and the progress callback.
func runWarm[T, W any](r Runner, plan Plan, warm func() W, exec func(i int, c Cell, w W) (T, bool)) []Result[T] {
	results := make([]Result[T], len(plan))
	if len(plan) == 0 {
		return results
	}

	var (
		mu   sync.Mutex
		done int
	)
	runCell := func(i int, w W) {
		start := time.Now()
		v, cached := exec(i, plan[i], w)
		wall := time.Since(start)
		results[i] = Result[T]{Cell: plan[i], Value: v, Wall: wall, Cached: cached}
		if r.Progress != nil {
			mu.Lock()
			done++
			r.Progress(Progress{Done: done, Total: len(plan), Cell: plan[i], Wall: wall, Cached: cached})
			mu.Unlock()
		}
	}

	n := r.workers(len(plan))
	if n == 1 {
		w := warm()
		for i := range plan {
			runCell(i, w)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			ws := warm()
			for i := range idx {
				runCell(i, ws)
			}
		}()
	}
	for i := range plan {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Values strips the cell and timing metadata, returning just the
// measurements in plan order.
func Values[T any](rs []Result[T]) []T {
	vs := make([]T, len(rs))
	for i, r := range rs {
		vs[i] = r.Value
	}
	return vs
}
