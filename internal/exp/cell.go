package exp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mvm"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Workload is the surface the microbenchmarks and STAMP kernels expose;
// they satisfy it structurally. It lives in the cell layer so one cell —
// a fully specified simulation — is self-contained: the figure renderers
// above never see a workload, only serialized cell results.
type Workload interface {
	Name() string
	Setup(m *txlib.Mem, threads int)
	Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig)
	Validate(m *txlib.Mem) string
}

// Scalable is implemented by workloads whose input sizes can be grown
// toward the paper's scale (CellConfig.Scale).
type Scalable interface {
	Scale(factor int)
}

// CellConfig is the simulation-affecting configuration of a cell, in a
// plain serializable form: together with the Cell itself (workload,
// engine, threads, seed) and the code provenance it fully determines the
// cell's result. Every field participates in the content-address
// (Provenance.CellKey), so two cells with different configs never share a
// cache entry.
type CellConfig struct {
	// WordGranularity enables SI-TM's §4.2 word-level conflict filter.
	WordGranularity bool `json:"word_granularity,omitempty"`
	// UnboundedVersions configures SI-TM's MVM with no version bound
	// (the Table 2 / Appendix A measurement).
	UnboundedVersions bool `json:"unbounded_versions,omitempty"`
	// DropOldest selects the alternative version-overflow policy (§3.1).
	DropOldest bool `json:"drop_oldest,omitempty"`
	// NoCoalescing disables version coalescing (ablation).
	NoCoalescing bool `json:"no_coalescing,omitempty"`
	// NoXlate disables the translation cache (ablation).
	NoXlate bool `json:"no_xlate,omitempty"`
	// NoBackoff replaces the tuned exponential backoff with a minimal
	// constant delay (§6.4 ablation).
	NoBackoff bool `json:"no_backoff,omitempty"`
	// Scale multiplies workload input sizes; values <= 1 mean the fast
	// defaults.
	Scale int `json:"scale,omitempty"`
	// MeasureMVM additionally runs the §3.1–§3.3 MVM measurements
	// (overheads, dedup) per cell.
	MeasureMVM bool `json:"measure_mvm,omitempty"`
	// RefSched runs the cell under the reference linear-scan conductor
	// (sched.Sim.Slow) instead of the inline fast path.
	RefSched bool `json:"ref_sched,omitempty"`
	// PerEvent runs the heap conductor with horizon batching disabled
	// (sched.Sim.SetPerEvent): every charge goes through the per-event
	// protocol. It is the differential baseline the batched conductor is
	// pinned against, and the reference point for the coroutine-switch
	// counters in sched_stats.
	PerEvent bool `json:"per_event,omitempty"`
	// RefCache runs the cell with the reference memory-hierarchy model
	// (cache.SlowHierarchy) instead of the way-predicted fast path.
	RefCache bool `json:"ref_cache,omitempty"`
	// RefSets runs the cell with the reference map-based access-set
	// implementation instead of the internal/aset fast path.
	RefSets bool `json:"ref_sets,omitempty"`
	// RefStore runs the cell with the retained dense mem backing for the
	// engines' per-word/per-line tables, the MVM's version table and the
	// presence filters, instead of the paged fast path (mem.Paged).
	RefStore bool `json:"ref_store,omitempty"`
}

// engineOptions maps the cell knobs onto the registry's
// representation-independent engine options.
func (c CellConfig) engineOptions() tm.EngineOptions {
	return tm.EngineOptions{
		WordGranularity:   c.WordGranularity,
		UnboundedVersions: c.UnboundedVersions,
		DropOldest:        c.DropOldest,
		NoCoalescing:      c.NoCoalescing,
		NoXlate:           c.NoXlate,
		ReferenceCache:    c.RefCache,
		ReferenceSets:     c.RefSets,
		ReferenceStore:    c.RefStore,
	}
}

// backoff returns the retry policy. Every engine's software retry loop
// uses the tuned exponential backoff (the RSTM retry loops the paper
// builds on back off unconditionally); the paper additionally notes the
// two eager mechanisms *depend* on it to avoid livelock (§6.4) — the
// NoBackoff ablation shows that dependence. A literal zero delay would
// let the eager engines livelock forever under the deterministic
// scheduler, which is the very pathology the paper's tuning avoids.
func (c CellConfig) backoff() tm.BackoffConfig {
	if c.NoBackoff {
		return tm.BackoffConfig{Enabled: true, Base: 32, MaxShift: 0}
	}
	return tm.DefaultBackoff()
}

// CellResult is the self-contained, serializable record of one executed
// cell: everything the figure renderers aggregate, plus provenance. All
// counters are the engine's exact integers; the float conversions the
// renderers perform are deterministic, so a result loaded from the cache
// reproduces figure bytes exactly.
type CellResult struct {
	Workload    string    `json:"workload"`
	Commits     uint64    `json:"commits"`
	ReadOnly    uint64    `json:"read_only,omitempty"` // committed with an empty write set
	Aborts      uint64    `json:"aborts"`
	RWAborts    uint64    `json:"rw_aborts"`
	WWAborts    uint64    `json:"ww_aborts"`
	OtherAborts uint64    `json:"other_aborts"`
	SimCycles   uint64    `json:"sim_cycles"` // the simulation's makespan
	MVM         mvm.Stats `json:"mvm"`
	ValidateMsg string    `json:"validate_msg,omitempty"`

	// CommitHist is the cell's commit-latency distribution in simulated
	// cycles (see tm.Stats.CommitHist): deterministic integer buckets,
	// so cached cells reproduce p50/p99/p999 byte-exactly.
	CommitHist report.Hist `json:"commit_hist"`

	// Sched counts the conductor's work for the cell (deterministic, so
	// cacheable like every other counter). Diagnostic only: no figure or
	// table renders it, so batched and per-event runs of the same cell
	// produce byte-identical figures while differing here.
	Sched sched.Stats `json:"sched_stats"`

	// Filled only under CellConfig.MeasureMVM (the §3.1–§3.3 report).
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	SharablePct float64 `json:"sharable_pct,omitempty"`
	Stalls      uint64  `json:"stalls,omitempty"`

	// Provenance of the run that produced this record (informational;
	// the cache key carries the authoritative source fingerprints).
	GitRevision string `json:"git_revision,omitempty"`
	GoVersion   string `json:"go_version,omitempty"`
}

// WarmState is the per-worker state of a sweep, built once per experiment
// worker and reused across all the cells that worker executes: the
// resolved engine options and backoff policy, plus a cache scratch pool
// that recycles the multi-megabyte simulated tag/stamp arrays between
// consecutive cells. None of it affects measured results — cells stay
// shared-nothing across workers and byte-identical at any worker count.
type WarmState struct {
	eopts tm.EngineOptions
	bo    tm.BackoffConfig
}

// NewWarmState builds the per-worker warm state for cfg.
func NewWarmState(cfg CellConfig) WarmState {
	eopts := cfg.engineOptions()
	eopts.CacheScratch = cache.NewScratch()
	return WarmState{eopts: eopts, bo: cfg.backoff()}
}

// releaser is the optional engine surface that returns pooled simulated
// cache arrays to the worker's scratch once a cell is measured.
type releaser interface{ ReleaseCaches() }

// ExecuteCell runs one plan cell as an isolated simulation: a fresh
// workload instance, a fresh engine from the registry and a fresh
// deterministic machine, sharing nothing with concurrently running cells.
// Only the warm state (scratch memory, resolved options) carries over
// between the cells of one worker.
func ExecuteCell(c Cell, cfg CellConfig, factory func() Workload, warm WarmState) CellResult {
	w := factory()
	if s, ok := w.(Scalable); ok && cfg.Scale > 1 {
		s.Scale(cfg.Scale)
	}
	e, err := tm.NewEngine(c.Engine, warm.eopts)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	m := txlib.NewMem(e)
	w.Setup(m, c.Threads)
	s := sched.New(c.Threads, c.Seed)
	s.SetPerEvent(cfg.PerEvent)
	body := func(th *sched.Thread) { w.Run(m, th, warm.bo) }
	if cfg.RefSched {
		s.Slow(body)
	} else {
		s.Run(body)
	}

	st := e.Stats()
	res := CellResult{
		Workload:    w.Name(),
		Commits:     st.Commits,
		ReadOnly:    st.ReadOnly,
		CommitHist:  st.CommitHist,
		Aborts:      st.TotalAborts(),
		RWAborts:    st.Aborts[tm.AbortReadWrite],
		WWAborts:    st.Aborts[tm.AbortWriteWrite],
		OtherAborts: st.Aborts[tm.AbortOrder] + st.Aborts[tm.AbortCapacity] + st.Aborts[tm.AbortSkew],
		SimCycles:   s.Makespan(),
		ValidateMsg: w.Validate(m),
		Sched:       s.Stats(),
	}
	if si, ok := e.(*core.Engine); ok {
		res.MVM = si.MVM().Stats()
		if cfg.MeasureMVM {
			res.OverheadPct = si.MVM().MeasureOverheads(1).OverheadPct
			res.SharablePct = si.MVM().MeasureDedup().SharablePct()
			res.Stalls = st.Stalls
		}
	}
	if r, ok := e.(releaser); ok {
		r.ReleaseCaches()
	}
	return res
}

// CellRunner executes cell plans, optionally memoized through a
// content-addressed result cache. It is the seam between the cell layer
// and everything above it: the figure renderers and the sweep service
// both hand it plans and consume serializable CellResults.
type CellRunner struct {
	// Runner is the worker pool configuration (bound + progress).
	Runner Runner
	// Config is the simulation configuration shared by every cell of
	// the plan; it participates in each cell's cache key.
	Config CellConfig
	// Resolve maps a cell's workload name to its factory.
	Resolve func(workload string) (func() Workload, error)
	// Cache, when non-nil, serves cells whose provenance key is already
	// stored and records freshly computed cells.
	Cache *Cache
	// Prov is the code provenance used for cache keys. A zero value
	// resolves to CurrentProvenance() when a cache is configured.
	Prov Provenance
	// CellDone, when non-nil, receives every completed cell (hit or
	// computed) and its full result. It is called from worker goroutines
	// concurrently; callers must synchronise.
	CellDone func(c Cell, res CellResult)
}

// Run executes every cell of plan, serving cells from the cache where
// possible, and returns the results in plan order. Result.Cached reports
// per-cell whether the simulation was skipped.
func (cr CellRunner) Run(plan Plan) ([]Result[CellResult], error) {
	factories := make(map[string]func() Workload)
	for _, c := range plan {
		if _, ok := factories[c.Workload]; ok {
			continue
		}
		f, err := cr.Resolve(c.Workload)
		if err != nil {
			return nil, err
		}
		factories[c.Workload] = f
	}
	cache := cr.Cache
	prov := cr.Prov
	if cache != nil && prov.IsZero() {
		prov = CurrentProvenance()
	}
	if cache != nil && !prov.CanCache() {
		// Without usable provenance a cache entry could masquerade as a
		// result of the current tree; compute everything instead.
		cache = nil
	}
	rs := runWarm(cr.Runner, plan,
		func() WarmState { return NewWarmState(cr.Config) },
		func(i int, c Cell, warm WarmState) (CellResult, bool) {
			var key string
			if cache != nil {
				key = prov.CellKey(c, cr.Config)
				if res, ok := cache.Get(key); ok {
					if cr.CellDone != nil {
						cr.CellDone(c, res)
					}
					return res, true
				}
			}
			res := ExecuteCell(c, cr.Config, factories[c.Workload], warm)
			res.GitRevision = prov.GitRevision
			res.GoVersion = prov.GoVersion
			if cache != nil {
				if err := cache.Put(key, res); err != nil {
					// A failed store costs a recompute next run, never
					// correctness; the result itself stands.
					cache.noteError(err)
				}
			}
			if cr.CellDone != nil {
				cr.CellDone(c, res)
			}
			return res, false
		})
	return rs, nil
}
