package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
)

// tinySpec is the smallest real plan: one cell (List under 2PL at two
// threads, one seed).
func tinySpec() Spec {
	return Spec{Figures: []string{"figure1"}, Workloads: []string{"List"}, Threads: 2, Seeds: []uint64{1}}
}

func newTestServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	cache, err := exp.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cache: cache, Workers: workers, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/api/plans/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State != "running" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("plan %s did not finish", id)
	return Status{}
}

func TestServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, dir, 2)
	s.Start()

	var st Status
	if code := postJSON(t, ts.URL+"/api/plans", tinySpec(), &st); code != http.StatusOK {
		t.Fatalf("submit returned %d", code)
	}
	if st.Total != 1 {
		t.Fatalf("tiny plan has %d cells, want 1", st.Total)
	}
	done := waitDone(t, ts.URL, st.ID)
	if done.State != "done" || done.Computed != 1 || done.Hits != 0 {
		t.Fatalf("cold plan finished as %+v", done)
	}

	// The served figure must be byte-identical to a direct harness
	// render of the same spec over the same cache.
	resp, err := http.Get(ts.URL + "/api/plans/" + st.ID + "/figures/figure1")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure fetch returned %d: %s", resp.StatusCode, served)
	}
	spec := tinySpec().withDefaults()
	o := spec.options()
	o.Cache = s.cache
	direct, err := harness.RenderFigureText("figure1", spec.Threads, o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct) {
		t.Fatalf("served figure differs from direct render:\nserved:\n%s\ndirect:\n%s", served, direct)
	}

	// Resubmitting the identical spec completes instantly from the cache.
	var again Status
	postJSON(t, ts.URL+"/api/plans", tinySpec(), &again)
	if again.State != "done" || again.Hits != again.Total || again.Computed != 0 {
		t.Fatalf("resubmit not fully cached: %+v", again)
	}

	// The events stream of a done plan is a single terminal snapshot.
	resp, err = http.Get(ts.URL + "/api/plans/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ev Event
	if err := json.Unmarshal(bytes.TrimSpace(stream), &ev); err != nil || ev.State != "done" || ev.Done != ev.Total {
		t.Fatalf("events stream of a done plan = %q (err %v)", stream, err)
	}
}

func TestServerResumesFromCacheAfterRestart(t *testing.T) {
	dir := t.TempDir()

	// First server: accept the plan but compute nothing (no executors),
	// as if it was killed the moment the plan was persisted.
	s1, ts1 := newTestServer(t, dir, -1)
	var st Status
	postJSON(t, ts1.URL+"/api/plans", tinySpec(), &st)
	if st.State != "running" || st.Done != 0 {
		t.Fatalf("executor-less plan should sit at 0: %+v", st)
	}
	ts1.Close()
	s1.Close()

	// Second server over the same directory: the persisted plan is
	// resubmitted and completes.
	s2, ts2 := newTestServer(t, dir, 2)
	s2.Start()
	done := waitDone(t, ts2.URL, st.ID)
	if done.State != "done" {
		t.Fatalf("resumed plan finished as %+v", done)
	}

	// Third server: everything is now cached, so the resumed plan is
	// born done with zero recomputes.
	s3, ts3 := newTestServer(t, dir, -1)
	_ = s3
	born := getStatus(t, ts3.URL, st.ID)
	if born.State != "done" || born.Hits != born.Total || born.Computed != 0 {
		t.Fatalf("fully cached resume must be born done: %+v", born)
	}
}

func TestExternalWorkerDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, dir, -1) // no in-process executors
	_ = s
	var st Status
	postJSON(t, ts.URL+"/api/plans", tinySpec(), &st)

	cache, err := exp.OpenCache(dir) // worker's own handle on the shared dir
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Server: ts.URL, Cache: cache, Name: "test-worker", Poll: 10 * time.Millisecond, Logf: t.Logf}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(ctx) }()

	done := waitDone(t, ts.URL, st.ID)
	if done.State != "done" || done.Computed != 1 {
		t.Fatalf("worker-driven plan finished as %+v", done)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("worker exited with %v", err)
	}
}

func TestWorkerRefusesProvenanceMismatch(t *testing.T) {
	// A lease whose key does not match the worker's own sources must be
	// refused (failed back), never computed and stored.
	dir := t.TempDir()
	cache, err := exp.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var completes []completeRequest
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/lease", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, leaseResponse{
			Key:  strings.Repeat("0", 64), // matches no real provenance
			Cell: exp.Cell{Workload: "List", Engine: "2PL", Threads: 2, Seed: 1},
		})
	})
	mux.HandleFunc("POST /api/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		json.NewDecoder(r.Body).Decode(&req)
		completes = append(completes, req)
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{Server: ts.URL, Cache: cache, Name: "skewed", Poll: time.Millisecond}
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	w.Run(ctx)
	if len(completes) == 0 {
		t.Fatal("worker never reported the lease back")
	}
	for _, c := range completes {
		if !c.Failed || !strings.Contains(c.Error, "provenance mismatch") {
			t.Fatalf("mismatched lease must fail with a provenance error: %+v", c)
		}
	}
	if cache.Stats().Puts != 0 {
		t.Fatal("mismatched worker must not write to the cache")
	}
}

func TestFigureConflictsWhileRunning(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), -1)
	_ = s
	var st Status
	postJSON(t, ts.URL+"/api/plans", tinySpec(), &st)
	resp, err := http.Get(ts.URL + "/api/plans/" + st.ID + "/figures/figure1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("figure of a running plan returned %d, want 409", resp.StatusCode)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), -1)
	_ = s
	if code := postJSON(t, ts.URL+"/api/plans", Spec{Figures: []string{"nosuch"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown figure returned %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/plans", Spec{Workloads: []string{"nosuch"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown workload returned %d", code)
	}
	for _, path := range []string{"/api/plans/nope", "/api/plans/nope/events", "/api/plans/nope/figures/figure1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s returned %d, want 404", path, resp.StatusCode)
		}
	}
	var st Status
	postJSON(t, ts.URL+"/api/plans", tinySpec(), &st)
	resp, err := http.Get(ts.URL + "/api/plans/" + st.ID + "/figures/figure7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("figure outside the plan returned %d, want 404", resp.StatusCode)
	}
}

func TestPlanIDsAreSequencedAndStable(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), -1)
	_ = s
	var a, b Status
	postJSON(t, ts.URL+"/api/plans", tinySpec(), &a)
	postJSON(t, ts.URL+"/api/plans", tinySpec(), &b)
	if !strings.HasPrefix(a.ID, "p001-") || !strings.HasPrefix(b.ID, "p002-") {
		t.Fatalf("ids not sequenced: %s, %s", a.ID, b.ID)
	}
	// The suffix is the spec hash: identical specs share it.
	if strings.SplitN(a.ID, "-", 2)[1] != strings.SplitN(b.ID, "-", 2)[1] {
		t.Fatalf("identical specs must share the hash suffix: %s vs %s", a.ID, b.ID)
	}
	resp, err := http.Get(ts.URL + "/api/plans")
	if err != nil {
		t.Fatal(err)
	}
	var all []Status
	json.NewDecoder(resp.Body).Decode(&all)
	resp.Body.Close()
	if len(all) != 2 || all[0].ID != a.ID || all[1].ID != b.ID {
		t.Fatalf("plan listing wrong: %+v", all)
	}
}

func TestSpecDefaultsAndHash(t *testing.T) {
	s := Spec{}.withDefaults()
	if len(s.Figures) != 1 || s.Figures[0] != "figure7" || s.Threads != 32 || len(s.Seeds) != 3 {
		t.Fatalf("defaults wrong: %+v", s)
	}
	if (Spec{}).hash() == tinySpec().hash() {
		t.Fatal("distinct specs must hash differently")
	}
	if tinySpec().hash() != tinySpec().hash() {
		t.Fatal("hash must be deterministic")
	}
}
