// Package sweep is the service layer of the experiment stack: a
// long-running sweep server that accepts figure plans over HTTP/JSON,
// shards their cells across worker processes with work-stealing leases,
// streams per-cell progress, renders figures from a shared
// content-addressed result cache (internal/exp), and resumes interrupted
// sweeps from whatever the cache already holds.
//
// The layering it sits on is strict: cells (internal/exp) are
// deterministic, so a cell result is a pure function of its
// content-address — (workload, engine, threads, seed, configuration,
// source fingerprints) — which makes results location-independent: any
// worker process may compute any cell, the only shared state is the
// cache directory, and a server restart loses nothing that was already
// computed. Figures (internal/harness) are pure functions of cached cell
// results, so the server renders them byte-identical to a local
// sitm-bench run.
//
// This package is service code, not simulation code: wall clocks,
// goroutines and net/http are the point here, and sitm-lint's detlint
// deliberately exempts it (lint.ServicePackagePaths) while keeping the
// simulation packages locked down.
package sweep

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"repro/internal/exp"
	"repro/internal/harness"
)

// Spec is a submitted sweep plan: which figures to build, over which
// workloads, seeds and thread count, under which ablations. The zero
// value of each field means the evaluation default.
type Spec struct {
	// Figures names the sections to build (harness.FigureNames);
	// default {"figure7"}.
	Figures []string `json:"figures,omitempty"`
	// Threads is the thread count for the sections that take one
	// (figure1, table2, mvm); default 32.
	Threads int `json:"threads,omitempty"`
	// Seeds to average over; default {1, 2, 3}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Workloads restricts the sweep (case-insensitive); empty means
	// every workload of each figure.
	Workloads []string `json:"workloads,omitempty"`

	// Ablation knobs, mirroring sitm-bench flags.
	Word       bool `json:"word,omitempty"`
	DropOldest bool `json:"drop_oldest,omitempty"`
	NoBackoff  bool `json:"no_backoff,omitempty"`
	Scale      int  `json:"scale,omitempty"`
}

// withDefaults fills unset fields with the evaluation defaults.
func (s Spec) withDefaults() Spec {
	if len(s.Figures) == 0 {
		s.Figures = []string{"figure7"}
	}
	if s.Threads == 0 {
		s.Threads = 32
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1, 2, 3}
	}
	return s
}

// validate rejects unknown figures and workloads up front, so a bad plan
// fails at submit time rather than inside a worker.
func (s Spec) validate() error {
	for _, f := range s.Figures {
		if !harness.KnownFigure(f) {
			return fmt.Errorf("sweep: unknown figure %q (valid: %s)", f, strings.Join(harness.FigureNames, ", "))
		}
	}
	for _, w := range s.Workloads {
		if _, err := harness.WorkloadByName(w); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if s.Threads < 0 || s.Scale < 0 {
		return fmt.Errorf("sweep: negative threads or scale")
	}
	return nil
}

// options maps the spec onto harness options. The cache is attached by
// the server at render time.
func (s Spec) options() harness.Options {
	return harness.Options{
		Seeds:           s.Seeds,
		Only:            s.Workloads,
		WordGranularity: s.Word,
		DropOldest:      s.DropOldest,
		NoBackoff:       s.NoBackoff,
		Scale:           s.Scale,
	}
}

// hash digests the normalized spec for use in plan IDs.
func (s Spec) hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figures=%s\nthreads=%d\nseeds=%v\nworkloads=%s\nword=%t\ndrop=%t\nnobackoff=%t\nscale=%d\n",
		strings.ToLower(strings.Join(s.Figures, ",")), s.Threads, s.Seeds,
		strings.ToLower(strings.Join(s.Workloads, ",")), s.Word, s.DropOldest, s.NoBackoff, s.Scale)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// Status is the externally visible state of one submitted plan.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"` // "running", "done" or "failed"
	// Total counts the plan's unique cells; Done how many are finished.
	Total int `json:"total"`
	Done  int `json:"done"`
	// Hits counts cells served from the cache (or shared with an
	// earlier plan); Computed counts cells this plan caused to be
	// simulated; Failed counts cells abandoned after repeated errors.
	Hits     int  `json:"hits"`
	Computed int  `json:"computed"`
	Failed   int  `json:"failed,omitempty"`
	Spec     Spec `json:"spec"`
}

// Event is one line of a plan's progress stream (NDJSON): a completed
// cell, whether it was served from the cache, and the running totals.
type Event struct {
	Plan   string `json:"plan"`
	Cell   string `json:"cell,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	State  string `json:"state"`
}

// leaseResponse hands one cell to a worker. Key is the cell's
// content-address under the server's provenance: a worker recomputes the
// key from its own sources and refuses the lease on mismatch, so a
// worker built from a different tree can never poison the cache.
type leaseResponse struct {
	Key    string         `json:"key"`
	Cell   exp.Cell       `json:"cell"`
	Config exp.CellConfig `json:"config"`
}

// leaseRequest identifies the polling worker.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// completeRequest reports a leased cell finished (its result is already
// in the shared cache) or failed.
type completeRequest struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
	Cached bool   `json:"cached,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// submitResponse acknowledges a submitted plan.
type submitResponse struct {
	Status
}
