package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
)

// Config parameterises a sweep server.
type Config struct {
	// Cache is the shared content-addressed result store. Required; it is
	// also the server's only persistent state (plan specs live under
	// <dir>/plans), which is what makes restarts resumable.
	Cache *exp.Cache
	// Workers is the number of in-process executor goroutines. 0 means
	// one per GOMAXPROCS; negative means none (external worker processes
	// only, via /api/lease).
	Workers int
	// LeaseTTL bounds how long a worker may sit on a leased cell before
	// another worker can steal it. 0 means 2 minutes.
	LeaseTTL time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// jobState tracks one unique cell through the server.
type jobState int

const (
	jobPending jobState = iota // queued, waiting for a worker
	jobLeased                  // handed to a worker, lease running
	jobDone                    // result in the cache
	jobFailed                  // abandoned after maxJobFailures errors
)

// maxJobFailures bounds retries of a crashing cell before the plan is
// marked failed instead of spinning forever.
const maxJobFailures = 3

// job is one unique cell (by cache key) shared by every plan that needs
// it. Work-stealing is lazy: an expired lease makes the job takeable
// again, there is no reaper goroutine.
type job struct {
	key      string
	cell     exp.Cell
	cfg      exp.CellConfig
	state    jobState
	worker   string
	expires  time.Time
	failures int
	lastErr  string
	plans    []*plan // plans still waiting on this job
}

// plan is one submitted spec and its progress counters.
type plan struct {
	id       string
	spec     Spec
	total    int
	done     int
	hits     int
	computed int
	failed   int
	subs     []chan Event // progress streams; closed when the plan ends
}

func (p *plan) state() string {
	if p.done < p.total {
		return "running"
	}
	if p.failed > 0 {
		return "failed"
	}
	return "done"
}

func (p *plan) status() Status {
	return Status{
		ID: p.id, State: p.state(),
		Total: p.total, Done: p.done,
		Hits: p.hits, Computed: p.computed, Failed: p.failed,
		Spec: p.spec,
	}
}

// Server accepts sweep plans, schedules their cells as deduplicated jobs
// and serves figures from the shared cache. All coordination state is in
// memory; everything needed to resume — cell results and plan specs —
// lives in the cache directory.
type Server struct {
	cache    *exp.Cache
	plansDir string
	workers  int
	leaseTTL time.Duration
	logf     func(string, ...any)
	prov     exp.Provenance

	mu        sync.Mutex
	plans     map[string]*plan
	planOrder []string
	jobs      map[string]*job // by cache key; shared across plans
	queue     []*job          // jobs not yet done, in submit order
	seq       int

	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a server over cfg.Cache and resumes any plans persisted
// under its directory from an earlier run: cells already in the cache
// count as done immediately, the rest are re-queued. It refuses to start
// without usable code provenance — a sweep server whose results could
// masquerade as another tree's is worse than no server.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		return nil, fmt.Errorf("sweep: Config.Cache is required")
	}
	prov := exp.CurrentProvenance()
	if !prov.CanCache() {
		return nil, fmt.Errorf("sweep: no usable code provenance (running outside the source checkout?); refusing to serve cacheable results")
	}
	s := &Server{
		cache:    cfg.Cache,
		plansDir: filepath.Join(cfg.Cache.Dir(), "plans"),
		workers:  cfg.Workers,
		leaseTTL: cfg.LeaseTTL,
		logf:     cfg.Logf,
		prov:     prov,
		plans:    make(map[string]*plan),
		jobs:     make(map[string]*job),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	if s.leaseTTL <= 0 {
		s.leaseTTL = 2 * time.Minute
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(s.plansDir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if err := s.loadPersistedPlans(); err != nil {
		return nil, err
	}
	return s, nil
}

// Start launches the in-process executors. Safe to skip entirely when
// only external workers will drive the queue.
func (s *Server) Start() {
	n := s.workers
	if n == 0 {
		n = defaultWorkers()
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.executor(fmt.Sprintf("local-%d", i))
	}
}

// Close stops the executors and closes every progress stream. Leased
// cells finish writing to the cache but are not waited for beyond the
// current cell. Idempotent.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.plans {
		for _, ch := range p.subs {
			close(ch)
		}
		p.subs = nil
	}
}

// loadPersistedPlans re-submits every plan spec stored under plansDir.
// Submission recomputes each cell's key against the *current* provenance,
// so a resume after a code edit transparently recomputes exactly the
// invalidated cells.
func (s *Server) loadPersistedPlans() error {
	entries, err := os.ReadDir(s.plansDir)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	sort.Strings(names)
	for _, id := range names {
		data, err := os.ReadFile(filepath.Join(s.plansDir, id+".json"))
		if err != nil {
			s.logf("sweep: skipping persisted plan %s: %v", id, err)
			continue
		}
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			s.logf("sweep: skipping corrupt persisted plan %s: %v", id, err)
			continue
		}
		// Keep the sequence counter ahead of resumed IDs ("p007-...").
		if n, err := strconv.Atoi(strings.TrimPrefix(strings.SplitN(id, "-", 2)[0], "p")); err == nil && n > s.seq {
			s.seq = n
		}
		if _, err := s.submit(spec, id, false); err != nil {
			s.logf("sweep: skipping persisted plan %s: %v", id, err)
			continue
		}
		s.logf("sweep: resumed plan %s", id)
	}
	return nil
}

// submit registers a plan: expands its figures into cells, deduplicates
// them by cache key against every job the server already knows, counts
// cached cells as immediately done and queues the rest.
func (s *Server) submit(spec Spec, id string, persist bool) (Status, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Status{}, err
	}
	o := spec.options()
	var fps []harness.FigurePlan
	for _, f := range spec.Figures {
		fp, err := harness.PlanFigure(f, spec.Threads, o)
		if err != nil {
			return Status{}, err
		}
		fps = append(fps, fp)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		s.seq++
		id = fmt.Sprintf("p%03d-%s", s.seq, spec.hash()[:12])
	}
	if _, ok := s.plans[id]; ok {
		return Status{}, fmt.Errorf("sweep: duplicate plan id %s", id)
	}
	p := &plan{id: id, spec: spec}
	seen := make(map[string]bool)
	queued := 0
	for _, fp := range fps {
		for _, c := range fp.Plan {
			key := s.prov.CellKey(c, fp.Config)
			if seen[key] {
				continue
			}
			seen[key] = true
			p.total++
			j, ok := s.jobs[key]
			if !ok {
				j = &job{key: key, cell: c, cfg: fp.Config}
				if s.cache.Contains(key) {
					j.state = jobDone
				}
				s.jobs[key] = j
				if j.state != jobDone {
					s.queue = append(s.queue, j)
					queued++
				}
			}
			switch j.state {
			case jobDone:
				p.done++
				p.hits++
			case jobFailed:
				p.done++
				p.failed++
			default:
				j.plans = append(j.plans, p)
			}
		}
	}
	s.plans[id] = p
	s.planOrder = append(s.planOrder, id)
	if persist {
		if err := s.persistPlan(p); err != nil {
			s.logf("sweep: persisting plan %s: %v", id, err)
		}
	}
	if queued > 0 {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	s.logf("sweep: plan %s: %d cells (%d cached, %d queued)", id, p.total, p.hits, queued)
	return p.status(), nil
}

// persistPlan writes the plan spec next to the cache so a restarted
// server can resubmit it. Atomic like cache blobs.
func (s *Server) persistPlan(p *plan) error {
	data, err := json.MarshalIndent(p.spec, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.plansDir, p.id+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(s.plansDir, p.id+".json"))
}

// take leases the next available job to a worker: pending jobs first,
// then jobs whose lease has expired (the holder is presumed dead — this
// is the work-stealing path). Returns nil when nothing is takeable.
func (s *Server) take(worker string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	live := s.queue[:0]
	var got *job
	for _, j := range s.queue {
		if j.state == jobDone || j.state == jobFailed {
			continue // drop finished jobs from the queue lazily
		}
		live = append(live, j)
		if got != nil {
			continue
		}
		if j.state == jobPending || (j.state == jobLeased && now.After(j.expires)) {
			if j.state == jobLeased {
				s.logf("sweep: stealing %s from worker %s (lease expired)", j.cell, j.worker)
			}
			j.state = jobLeased
			j.worker = worker
			j.expires = now.Add(s.leaseTTL)
			got = j
		}
	}
	s.queue = live
	return got
}

// finish marks a job's result present in the cache and advances every
// plan waiting on it. Double-completes (a stolen job finishing twice)
// are harmless no-ops.
func (s *Server) finish(key string, cached bool) {
	s.complete(key, cached, false, "")
}

// fail records one failed attempt; after maxJobFailures the job is
// abandoned and its plans marked failed.
func (s *Server) fail(key, errMsg string) {
	s.mu.Lock()
	j := s.jobs[key]
	if j == nil || j.state == jobDone || j.state == jobFailed {
		s.mu.Unlock()
		return
	}
	j.failures++
	j.lastErr = errMsg
	if j.failures < maxJobFailures {
		j.state = jobPending // retry (possibly on another worker)
		s.mu.Unlock()
		s.wakeWorkers()
		return
	}
	s.mu.Unlock()
	s.logf("sweep: abandoning %s after %d failures: %s", j.cell, j.failures, errMsg)
	s.complete(key, false, true, errMsg)
}

// complete is the shared terminal transition for finish and fail.
func (s *Server) complete(key string, cached, failed bool, errMsg string) {
	s.mu.Lock()
	j := s.jobs[key]
	if j == nil || j.state == jobDone || j.state == jobFailed {
		s.mu.Unlock()
		return
	}
	if failed {
		j.state = jobFailed
		j.lastErr = errMsg
	} else {
		j.state = jobDone
	}
	waiting := j.plans
	j.plans = nil
	var toClose []chan Event
	for _, p := range waiting {
		p.done++
		switch {
		case failed:
			p.failed++
		case cached:
			p.hits++
		default:
			p.computed++
		}
		e := Event{
			Plan: p.id, Cell: j.cell.String(), Cached: cached, Failed: failed,
			Done: p.done, Total: p.total, State: p.state(),
		}
		for _, ch := range p.subs {
			select {
			case ch <- e:
			default: // a stalled stream never blocks the sweep
			}
		}
		if p.done >= p.total {
			toClose = append(toClose, p.subs...)
			p.subs = nil
		}
	}
	s.mu.Unlock()
	for _, ch := range toClose {
		close(ch)
	}
}

// wakeWorkers nudges one idle executor without blocking.
func (s *Server) wakeWorkers() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// executor is one in-process worker goroutine: lease, compute, store,
// complete, repeat. It shares the lease protocol with external workers
// so stealing works uniformly across both.
func (s *Server) executor(name string) {
	defer s.wg.Done()
	for {
		j := s.take(name)
		if j == nil {
			select {
			case <-s.stop:
				return
			case <-s.wake:
			case <-time.After(s.leaseTTL / 4):
			}
			continue
		}
		select {
		case <-s.stop:
			return
		default:
		}
		s.runJob(j)
		s.wakeWorkers() // more queue may be takeable
	}
}

// runJob executes one leased job against the shared cache.
func (s *Server) runJob(j *job) {
	if s.cache.Contains(j.key) { // another worker raced us to it
		s.finish(j.key, true)
		return
	}
	res, err := ComputeCell(j.cell, j.cfg, s.prov)
	if err != nil {
		s.fail(j.key, err.Error())
		return
	}
	if err := s.cache.Put(j.key, res); err != nil {
		s.fail(j.key, err.Error())
		return
	}
	s.finish(j.key, false)
}

// ComputeCell executes one cell through the harness workload registry and
// stamps it with prov. Panics from the simulator (unknown engine,
// workload invariant violations) surface as errors so a bad cell fails
// its job instead of killing the process.
func ComputeCell(c exp.Cell, cfg exp.CellConfig, prov exp.Provenance) (res exp.CellResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell %s: panic: %v", c, r)
		}
	}()
	factory, err := harness.WorkloadByName(c.Workload)
	if err != nil {
		return res, err
	}
	res = exp.ExecuteCell(c, cfg, factory, exp.NewWarmState(cfg))
	res.GitRevision = prov.GitRevision
	res.GoVersion = prov.GoVersion
	return res, nil
}

// statuses snapshots every plan in submit order.
func (s *Server) statuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.planOrder))
	for _, id := range s.planOrder {
		out = append(out, s.plans[id].status())
	}
	return out
}

// subscribe attaches a progress stream to a plan. The returned channel
// closes when the plan completes; ok=false means no such plan. done
// reports whether the plan is already complete (channel arrives closed).
func (s *Server) subscribe(id string) (ch chan Event, snapshot Status, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, found := s.plans[id]
	if !found {
		return nil, Status{}, false
	}
	ch = make(chan Event, 64)
	if p.done >= p.total {
		close(ch)
	} else {
		p.subs = append(p.subs, ch)
	}
	return ch, p.status(), true
}
