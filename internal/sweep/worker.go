package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/exp"
)

// Worker is an external worker process's client side of the lease
// protocol: poll the server for a cell, simulate it, store the result in
// the shared cache directory, report completion. Workers are stateless —
// kill one mid-cell and the server's lease expiry hands the cell to
// someone else.
type Worker struct {
	// Server is the daemon's base URL, e.g. "http://127.0.0.1:8347".
	Server string
	// Cache is the shared result store; must point at the same directory
	// the server uses.
	Cache *exp.Cache
	// Name identifies this worker in leases and server logs.
	Name string
	// Poll is the idle backoff between lease attempts when the queue is
	// drained. 0 means 200ms.
	Poll time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests); nil means a default with
	// no timeout (event-free request/response calls only).
	Client *http.Client
}

// maxLeaseErrors bounds consecutive transport failures before Run gives
// up — a dead server should stop the worker, not spin it.
const maxLeaseErrors = 30

// Run polls for cells until ctx is cancelled or the server goes away.
// Before computing anything it recomputes each leased cell's cache key
// from this process's own sources and refuses on mismatch: a worker
// built from a different tree must never write under the server's keys.
func (w *Worker) Run(ctx context.Context) error {
	if w.Cache == nil {
		return fmt.Errorf("sweep: Worker.Cache is required")
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	prov := exp.CurrentProvenance()
	errors := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			errors++
			if errors >= maxLeaseErrors {
				return fmt.Errorf("sweep: giving up after %d consecutive lease errors: %w", errors, err)
			}
			sleepCtx(ctx, poll)
			continue
		}
		errors = 0
		if !ok {
			sleepCtx(ctx, poll)
			continue
		}
		if key := prov.CellKey(lease.Cell, lease.Config); key != lease.Key {
			// Provenance skew: this worker's sources differ from the
			// server's. Writing under the server's key would poison the
			// cache with results of different code.
			msg := fmt.Sprintf("worker %s provenance mismatch (key %s != %s): worker built from different sources", w.Name, key, lease.Key)
			logf("sweep: %s", msg)
			w.complete(ctx, completeRequest{Key: lease.Key, Worker: w.Name, Failed: true, Error: msg})
			sleepCtx(ctx, poll)
			continue
		}
		if w.Cache.Contains(lease.Key) {
			w.complete(ctx, completeRequest{Key: lease.Key, Worker: w.Name, Cached: true})
			continue
		}
		res, err := ComputeCell(lease.Cell, lease.Config, prov)
		if err != nil {
			logf("sweep: cell %s failed: %v", lease.Cell, err)
			w.complete(ctx, completeRequest{Key: lease.Key, Worker: w.Name, Failed: true, Error: err.Error()})
			continue
		}
		if err := w.Cache.Put(lease.Key, res); err != nil {
			logf("sweep: storing %s: %v", lease.Cell, err)
			w.complete(ctx, completeRequest{Key: lease.Key, Worker: w.Name, Failed: true, Error: err.Error()})
			continue
		}
		logf("sweep: computed %s", lease.Cell)
		w.complete(ctx, completeRequest{Key: lease.Key, Worker: w.Name})
	}
}

// lease asks the server for one cell; ok=false means the queue is empty.
func (w *Worker) lease(ctx context.Context) (leaseResponse, bool, error) {
	var lr leaseResponse
	body, status, err := w.post(ctx, "/api/lease", leaseRequest{Worker: w.Name})
	if err != nil {
		return lr, false, err
	}
	if status == http.StatusNoContent {
		return lr, false, nil
	}
	if status != http.StatusOK {
		return lr, false, fmt.Errorf("sweep: lease: server returned %d: %s", status, bytes.TrimSpace(body))
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		return lr, false, fmt.Errorf("sweep: lease: %w", err)
	}
	return lr, true, nil
}

// complete reports a leased cell's outcome; errors are logged by the
// caller's next lease failure, not handled here — the lease TTL already
// guarantees progress if a complete is lost.
func (w *Worker) complete(ctx context.Context, req completeRequest) {
	w.post(ctx, "/api/complete", req)
}

// post sends one JSON request to the server.
func (w *Worker) post(ctx context.Context, path string, v any) ([]byte, int, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(data))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
