package sweep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"

	"repro/internal/harness"
)

// defaultWorkers sizes the in-process executor pool.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Handler returns the server's HTTP API:
//
//	GET  /healthz                       liveness probe
//	POST /api/plans                     submit a Spec, returns its Status
//	GET  /api/plans                     list plan statuses
//	GET  /api/plans/{id}                one plan's status
//	GET  /api/plans/{id}/events         NDJSON progress stream until done
//	GET  /api/plans/{id}/figures/{fig}  rendered figure text (409 until done)
//	GET  /api/cache                     cache traffic counters
//	POST /api/lease                     worker protocol: lease one cell
//	POST /api/complete                  worker protocol: report a cell done
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /api/plans", s.handleSubmit)
	mux.HandleFunc("GET /api/plans", s.handleList)
	mux.HandleFunc("GET /api/plans/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/plans/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/plans/{id}/figures/{figure}", s.handleFigure)
	mux.HandleFunc("GET /api/cache", s.handleCache)
	mux.HandleFunc("POST /api/lease", s.handleLease)
	mux.HandleFunc("POST /api/complete", s.handleComplete)
	return mux
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	st, err := s.submit(spec, "", true)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.wakeWorkers()
	writeJSON(w, http.StatusOK, submitResponse{Status: st})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	p, ok := s.plans[id]
	var st Status
	if ok {
		st = p.status()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no plan %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a plan's progress as NDJSON: one snapshot line,
// then one line per completed cell, closing when the plan is done.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, snapshot, ok := s.subscribe(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no plan %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(Event{Plan: snapshot.ID, Done: snapshot.Done, Total: snapshot.Total, State: snapshot.State})
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, open := <-ch:
			if !open {
				return
			}
			enc.Encode(e)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// handleFigure renders one of a done plan's figures from the shared
// cache. 409 while the plan is still running: rendering would silently
// recompute cells inline, defeating the point of the sweep.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id, figure := r.PathValue("id"), strings.ToLower(r.PathValue("figure"))
	s.mu.Lock()
	p, ok := s.plans[id]
	var spec Spec
	var state string
	if ok {
		spec, state = p.spec, p.state()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no plan %q", id)
		return
	}
	inPlan := false
	for _, f := range spec.Figures {
		if strings.EqualFold(f, figure) {
			inPlan = true
		}
	}
	if !inPlan {
		httpError(w, http.StatusNotFound, "plan %s has no figure %q (has: %s)", id, figure, strings.Join(spec.Figures, ", "))
		return
	}
	switch state {
	case "running":
		httpError(w, http.StatusConflict, "plan %s still running; poll /api/plans/%s", id, id)
		return
	case "failed":
		httpError(w, http.StatusConflict, "plan %s failed; figure would be incomplete", id)
		return
	}
	o := spec.options()
	o.Cache = s.cache
	text, err := harness.RenderFigureText(figure, spec.Threads, o)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(text)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

// handleLease hands one takeable cell to an external worker process;
// 204 when the queue is drained.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	if req.Worker == "" {
		req.Worker = "remote-" + r.RemoteAddr
	}
	j := s.take(req.Worker)
	if j == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{Key: j.key, Cell: j.cell, Config: j.cfg})
}

// handleComplete finishes a leased cell. The server verifies the result
// actually landed in the shared cache before trusting the report; a
// complete without a blob re-queues the cell instead.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding complete request: %v", err)
		return
	}
	switch {
	case req.Failed:
		s.fail(req.Key, req.Error)
	case s.cache.Contains(req.Key):
		s.finish(req.Key, req.Cached)
	default:
		s.fail(req.Key, fmt.Sprintf("worker %s reported %s complete but the cache has no blob", req.Worker, req.Key))
	}
	s.wakeWorkers()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
