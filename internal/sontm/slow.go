package sontm

// The pre-aset access-set implementation, kept verbatim as the
// differential oracle for the signature-backed fast path (see
// Config.ReferenceSets). slowTxn tracks its read set, write set and write
// log in Go maps, exactly as the engine did before internal/aset existed.
// Results are bit-identical to the fast path; only simulator wall time
// changes. Do not "improve" this file: its value is being the unchanged
// original.

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// slowTxn is one SONTM transaction attempt under the reference map-based
// access tracking.
type slowTxn struct {
	e  *Engine
	t  *sched.Thread
	h  *cache.Hierarchy
	id uint64

	lo, hi uint64 // SON interval, inclusive

	readSet map[mem.Line]struct{}
	// lastRead memoises the line of the previous Read: the readSet
	// insert is idempotent and entries are never removed mid-transaction
	// (commit broadcasts only probe membership), so a repeat read of the
	// same line skips the map write.
	lastRead mem.Line
	writeSet map[mem.Line]struct{}
	writeLog map[mem.Addr]uint64
	// writeOrder preserves first-write order so commit-time cache
	// charging is deterministic (map iteration is not).
	writeOrder []mem.Line

	// selfBit is this thread's presence bit (cache.CoreBit of its ID),
	// noted on every access so committers know this core may hold the
	// line.
	selfBit uint64
	// activeIdx is this transaction's slot in Engine.activeSlow while
	// in flight (swap-remove bookkeeping).
	activeIdx int

	doomed   bool
	doomLine mem.Line
	finished bool
	site     string
}

var _ tm.Txn = (*slowTxn)(nil)

// beginSlow is the reference-path tm.Engine.Begin.
func (e *Engine) beginSlow(t *sched.Thread) tm.Txn {
	e.txnSeq++
	var tx *slowTxn
	if old := e.lastTxnSlow[t.ID()]; old != nil && old.finished {
		// clear keeps the maps' grown capacity, so steady-state
		// transactions insert without rehashing.
		clear(old.readSet)
		clear(old.writeSet)
		clear(old.writeLog)
		*old = slowTxn{
			e: e, t: t, h: old.h, id: e.txnSeq,
			lo: 1, hi: maxSON,
			readSet:    old.readSet,
			lastRead:   noLine,
			selfBit:    old.selfBit,
			writeSet:   old.writeSet,
			writeLog:   old.writeLog,
			writeOrder: old.writeOrder[:0],
		}
		tx = old
	} else {
		tx = &slowTxn{
			e: e, t: t, h: e.hierarchy(t), id: e.txnSeq,
			lo: 1, hi: maxSON,
			readSet:  make(map[mem.Line]struct{}),
			lastRead: noLine,
			selfBit:  cache.CoreBit(t.ID()),
			writeSet: make(map[mem.Line]struct{}),
			writeLog: make(map[mem.Addr]uint64),
		}
		e.lastTxnSlow[t.ID()] = tx
	}
	tx.activeIdx = len(e.activeSlow)
	e.activeSlow = append(e.activeSlow, tx)
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	t.Tick(2)
	return tx
}

// Site implements tm.Txn.
func (x *slowTxn) Site(s string) tm.Txn { x.site = s; return x }

// raiseLo raises the lower bound; the interval emptying dooms the txn.
func (x *slowTxn) raiseLo(v uint64, line mem.Line) {
	if v > x.lo {
		x.lo = v
	}
	if x.lo > x.hi {
		x.doomed = true
		x.doomLine = line
	}
}

// clampHi lowers the upper bound; the interval emptying dooms the txn.
func (x *slowTxn) clampHi(v uint64, line mem.Line) {
	if v < x.hi {
		x.hi = v
	}
	if x.lo > x.hi {
		x.doomed = true
		x.doomLine = line
	}
}

// checkDoom unwinds (via the tm abort signal) if the SON interval has
// emptied; used on the Read/Write paths.
func (x *slowTxn) checkDoom() {
	if !x.doomed {
		return
	}
	x.abortDoomed()
	tm.SignalAbort(tm.AbortOrder, x.doomLine)
}

// abortDoomed finalises a doomed transaction and returns its abort error;
// used on the Commit path.
func (x *slowTxn) abortDoomed() error {
	x.cleanup()
	x.e.stats.Count(tm.AbortOrder)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	return &tm.AbortError{Kind: tm.AbortOrder, Line: x.doomLine}
}

// Read implements tm.Txn: the transaction must serialize after the
// committed writer whose value it reads.
func (x *slowTxn) Read(a mem.Addr) uint64 {
	x.checkDoom()
	line := mem.LineOf(a)
	// Note before the Tick: the fill happens when Access evaluates,
	// before the yield, so the presence record must be in place for any
	// commit that interleaves with the yield.
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line))
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	if line != x.lastRead {
		x.readSet[line] = struct{}{}
		x.lastRead = line
	}
	x.raiseLo(x.e.writeNums.Load(uint64(line))+1, line)
	x.checkDoom()
	if len(x.writeLog) != 0 {
		if v, ok := x.writeLog[a]; ok {
			return v
		}
	}
	return x.e.words.Load(mem.WordIndex(a))
}

// ReadPromoted implements tm.Txn; SONTM is serializable, so it is an
// ordinary read.
func (x *slowTxn) ReadPromoted(a mem.Addr) uint64 { return x.Read(a) }

// Write implements tm.Txn: the store is logged; the transaction must
// serialize after the last committed writer of the line.
func (x *slowTxn) Write(a mem.Addr, v uint64) {
	x.checkDoom()
	line := mem.LineOf(a)
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line))
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	// One map operation instead of probe-then-insert: the length delta
	// reveals whether the assignment was a first write.
	n := len(x.writeSet)
	x.writeSet[line] = struct{}{}
	if len(x.writeSet) != n {
		x.writeOrder = append(x.writeOrder, line)
	}
	x.writeLog[a] = v
	x.raiseLo(x.e.writeNums.Load(uint64(line))+1, line)
	x.checkDoom()
}

func (x *slowTxn) cleanup() {
	a := x.e.activeSlow
	last := len(a) - 1
	moved := a[last]
	a[x.activeIdx] = moved
	moved.activeIdx = x.activeIdx
	a[last] = nil
	x.e.activeSlow = a[:last]
	x.finished = true
}

// Abort implements tm.Txn.
func (x *slowTxn) Abort() {
	if x.finished {
		return
	}
	x.cleanup()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn: the transaction picks the smallest SON in its
// interval, serializes after committed readers of its write set, and
// broadcasts the write set so concurrent transactions adjust their own
// intervals (§6.1).
func (x *slowTxn) Commit() error {
	if x.finished {
		panic("sontm: Commit on finished transaction")
	}
	if x.doomed {
		return x.abortDoomed()
	}
	if len(x.writeLog) == 0 {
		// Readers commit with their interval; record their reads so
		// future writers serialize after them.
		son := x.lo
		for line := range x.readSet {
			if rn := x.e.readNums.Slot(uint64(line)); son > *rn {
				*rn = son
			}
		}
		x.cleanup()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		x.t.Tick(2)
		return nil
	}

	// Unlike the 2PL baseline, SONTM detects conflicts eagerly during
	// execution, so commits of different transactions have disjoint
	// effects and need no token: the commit's hashing, broadcast and
	// write-back overheads are accumulated and charged to the thread
	// without serializing other committers behind it.
	var cost uint64 = x.e.cfg.CommitOverhead

	// Serialize after every committed reader of the lines we write
	// (the read-history check); the scan cost grows with the number of
	// retained readsets, which tracks concurrency.
	for line := range x.writeSet {
		cost += x.e.cfg.BroadcastCost + x.e.cfg.HistoryCheckCost*uint64(len(x.e.activeSlow))
		x.raiseLo(x.e.readNums.Load(uint64(line))+1, line)
	}
	// Writers occupy the next sonGap multiple above their lower bound,
	// leaving room below for overlapping readers to serialize.
	son := (x.lo/sonGap + 1) * sonGap
	if x.doomed || son > x.hi {
		x.doomed = true
		return x.abortDoomed()
	}

	// Broadcast the write set: concurrent readers of these lines must
	// serialize before us; concurrent writers after us.
	for _, line := range x.writeOrder {
		for _, other := range x.e.activeSlow {
			if other == x || other.finished {
				continue
			}
			// A transaction that wrote the line must serialize
			// after us; one that read it must serialize before
			// us. A read-modify-write needs both and its
			// interval empties — exactly the Kmeans pattern the
			// paper notes CS cannot help with.
			if _, ok := other.writeSet[line]; ok {
				other.raiseLo(son+1, line)
			}
			if _, ok := other.readSet[line]; ok {
				other.clampHi(son-1, line)
			}
		}
	}

	// Write back and tag committed writes with the SON in the global
	// write-numbers hashtable.
	for a, v := range x.writeLog {
		x.e.words.Store(mem.WordIndex(a), v)
	}
	for _, line := range x.writeOrder {
		// Re-note: another commit may have drained this core's bit, and
		// the Access below re-fills the line.
		x.e.presence.Note(line, x.selfBit)
		cost += x.h.Access(line) + x.e.cfg.HashCost
		if wn := x.e.writeNums.Slot(uint64(line)); son > *wn {
			*wn = son
		}
		// SONTM never performs versioned accesses, so only the data
		// caches can hold the line; invalidate exactly the cores the
		// presence filter says may hold it.
		for others := x.e.presence.Drain(line, x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateData(line)
		}
		for id := 64; id < len(x.e.hiers); id++ {
			if h := x.e.hiers[id]; h != nil && id != x.t.ID() {
				h.InvalidateData(line)
			}
		}
	}
	for line := range x.readSet {
		if rn := x.e.readNums.Slot(uint64(line)); son > *rn {
			*rn = son
		}
	}
	x.cleanup()
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.t.Tick(cost)
	return nil
}
