package sontm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// The per-transaction hot paths — Read, Write and Commit — run once per
// simulated access and once per transaction across every figure sweep, so
// they must be allocation-free in steady state: the read set and write
// log are aset tables that Reset in O(touched) and transaction objects
// recycle per thread. "hit" is the repeat-access fast path; "conflict"
// keeps a concurrent transaction's read set covering the benchmark's
// lines, so every commit broadcast probes it (the signature-AND miss path
// the aset tables exist for) and clamps its SON interval.
// TestTxnHotPathsAllocFree asserts 0 allocs/op for all of them; the CI
// bench smoke and sitm-bench -json report them.

const benchTxnOps = 256

func benchLineAddr(i int) mem.Addr { return mem.Addr((1 + i) * mem.LineBytes) }

func runSingle(body func(th *sched.Thread)) {
	s := sched.New(1, 1)
	s.Run(body)
}

// runWithBystander drives body on thread 0 while thread 1 holds one
// transaction open across the whole timed region: it stays in the active
// list, so every commit broadcast on thread 0 probes its read and write
// sets. The bystander aborts once thread 0 finishes.
func runWithBystander(e *Engine, setup func(tm.Txn), body func(th *sched.Thread)) {
	s := sched.New(2, 1)
	s.Run(func(th *sched.Thread) {
		if th.ID() == 1 {
			by := e.Begin(th)
			setup(by)
			th.Tick(1 << 62)
			by.Abort()
			return
		}
		// Start past the bystander's setup so it begins first.
		th.Tick(1 << 16)
		body(th)
	})
}

func benchReads(b *testing.B, e *Engine, th *sched.Thread, spread int) {
	tx := e.Begin(th)
	for i := 0; i < spread; i++ {
		_ = tx.Read(benchLineAddr(i))
	}
	_ = tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	tx = e.Begin(th)
	n := 0
	for i := 0; i < b.N; i++ {
		_ = tx.Read(benchLineAddr(i % spread))
		if n++; n == benchTxnOps {
			_ = tx.Commit()
			tx = e.Begin(th)
			n = 0
		}
	}
	b.StopTimer()
	_ = tx.Commit()
}

func benchWrites(b *testing.B, e *Engine, th *sched.Thread, spread int) {
	tx := e.Begin(th)
	for i := 0; i < spread; i++ {
		tx.Write(benchLineAddr(i), uint64(i))
	}
	if err := tx.Commit(); err != nil {
		b.Fatalf("warm-up commit: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tx = e.Begin(th)
	n := 0
	for i := 0; i < b.N; i++ {
		tx.Write(benchLineAddr(i%spread), uint64(i))
		if n++; n == benchTxnOps {
			if err := tx.Commit(); err != nil {
				b.Fatalf("commit: %v", err)
			}
			tx = e.Begin(th)
			n = 0
		}
	}
	b.StopTimer()
	_ = tx.Commit()
}

func benchCommits(b *testing.B, e *Engine, th *sched.Thread, lines int) {
	commitOne := func(i int) {
		tx := e.Begin(th)
		for l := 0; l < lines; l++ {
			tx.Write(benchLineAddr(l), uint64(i))
		}
		if err := tx.Commit(); err != nil {
			b.Fatalf("commit: %v", err)
		}
	}
	commitOne(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		commitOne(i)
	}
	b.StopTimer()
}

// readBystander reads the benchmark's lines and stays active: each commit
// broadcast finds it in the read set and clamps its interval (the clamp
// is monotonic, so it never dooms the bystander).
func readBystander(spread int) func(tm.Txn) {
	return func(by tm.Txn) {
		for i := 0; i < spread; i++ {
			_ = by.Read(benchLineAddr(i))
		}
	}
}

func BenchmarkTxnRead(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := New(DefaultConfig())
		runSingle(func(th *sched.Thread) { benchReads(b, e, th, 8) })
	})
	// Reads of lines with committed writers: the write-numbers lookup
	// raises the SON lower bound on every read.
	b.Run("conflict", func(b *testing.B) {
		e := New(DefaultConfig())
		runSingle(func(th *sched.Thread) {
			// Commit a writer over the lines first so every read's
			// raiseLo actually moves the interval.
			tx := e.Begin(th)
			for i := 0; i < 8; i++ {
				tx.Write(benchLineAddr(i), uint64(i))
			}
			if err := tx.Commit(); err != nil {
				b.Fatalf("seed commit: %v", err)
			}
			benchReads(b, e, th, 8)
		})
	})
}

func BenchmarkTxnWrite(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := New(DefaultConfig())
		runSingle(func(th *sched.Thread) { benchWrites(b, e, th, 8) })
	})
	// A concurrent reader of the written lines: every commit broadcast
	// probes its sets and clamps its interval.
	b.Run("conflict", func(b *testing.B) {
		e := New(DefaultConfig())
		runWithBystander(e, readBystander(8), func(th *sched.Thread) {
			benchWrites(b, e, th, 8)
		})
	})
}

func BenchmarkCommit(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := New(DefaultConfig())
		runSingle(func(th *sched.Thread) { benchCommits(b, e, th, 4) })
	})
	b.Run("conflict", func(b *testing.B) {
		e := New(DefaultConfig())
		runWithBystander(e, readBystander(4), func(th *sched.Thread) {
			benchCommits(b, e, th, 4)
		})
	})
}

// TestTxnHotPathsAllocFree asserts the transaction hot paths never
// allocate in steady state, in every regime.
func TestTxnHotPathsAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks")
	}
	leaves := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"TxnRead/hit", func(b *testing.B) {
			e := New(DefaultConfig())
			runSingle(func(th *sched.Thread) { benchReads(b, e, th, 8) })
		}},
		{"TxnRead/conflict", func(b *testing.B) {
			e := New(DefaultConfig())
			runSingle(func(th *sched.Thread) {
				tx := e.Begin(th)
				for i := 0; i < 8; i++ {
					tx.Write(benchLineAddr(i), uint64(i))
				}
				if err := tx.Commit(); err != nil {
					b.Fatalf("seed commit: %v", err)
				}
				benchReads(b, e, th, 8)
			})
		}},
		{"TxnWrite/hit", func(b *testing.B) {
			e := New(DefaultConfig())
			runSingle(func(th *sched.Thread) { benchWrites(b, e, th, 8) })
		}},
		{"TxnWrite/conflict", func(b *testing.B) {
			e := New(DefaultConfig())
			runWithBystander(e, readBystander(8), func(th *sched.Thread) { benchWrites(b, e, th, 8) })
		}},
		{"Commit/hit", func(b *testing.B) {
			e := New(DefaultConfig())
			runSingle(func(th *sched.Thread) { benchCommits(b, e, th, 4) })
		}},
		{"Commit/conflict", func(b *testing.B) {
			e := New(DefaultConfig())
			runWithBystander(e, readBystander(4), func(th *sched.Thread) { benchCommits(b, e, th, 4) })
		}},
	}
	for _, leaf := range leaves {
		if r := testing.Benchmark(leaf.run); r.AllocsPerOp() != 0 {
			t.Errorf("%s: %d allocs/op, want 0", leaf.name, r.AllocsPerOp())
		}
	}
}
