// Package sontm implements the paper's second baseline (§6.1): the SONTM
// conflict-serializable HTM of Aydonat and Abdelrahman, which commits
// transactions in the presence of conflicting accesses as long as a valid
// serialization order exists.
//
// Each transaction maintains a serializability-order-number (SON) interval
// [lo, hi]. Reads-from dependencies raise the lower bound (a transaction
// serializes after the committed writer whose value it read, tracked via a
// global write-numbers table). At commit, a writer must also serialize
// after every committed reader of the lines it writes (the paper models an
// infinitely sized read-history; we keep the equivalent per-line maximum
// reader SON). A committing transaction broadcasts its write set: active
// transactions that read any of those lines must serialize before it
// (upper bound clamps), active transactions that wrote any of them must
// serialize after it (lower bound raises). A transaction whose interval
// empties can no longer be ordered and aborts.
//
// Access tracking uses the signature-backed tables of internal/aset: the
// commit broadcast probes other transactions' read/write sets with a
// one-word signature AND in the common miss case, mirroring the hardware
// signatures SONTM itself assumes. The pre-aset map-based engine is kept
// verbatim in slow.go as a differential oracle behind
// Config.ReferenceSets.
package sontm

import (
	"fmt"
	"math/bits"

	"repro/internal/aset"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// Config tunes the baseline.
type Config struct {
	Cache cache.Config
	// BroadcastCost is the per-commit-line cost of broadcasting the
	// write set to other cores for read-history checks.
	BroadcastCost uint64
	// HashCost models tagging committed writes with their SON in the
	// global write-numbers hashtable (§6.1: "overheads in terms of
	// hashing and additional memory write operations").
	HashCost uint64
	// HistoryCheckCost is charged per written line and per concurrent
	// transaction at commit: the committer compares its write set
	// "against every readset in the read-history table", whose
	// population grows with concurrency — the weak point the paper
	// calls out ("the overheads of maintaining and checking conflicts
	// against this table are high") and the reason CS scalability
	// drops off at higher thread counts in Figure 8.
	HistoryCheckCost uint64
	// CommitOverhead is the fixed commit setup cost.
	CommitOverhead uint64
	// ReferenceSets routes transactions through the verbatim map-based
	// access-set implementation (slow.go), the differential oracle for
	// the aset fast path. Results are bit-identical to the default; only
	// simulator wall time changes.
	ReferenceSets bool
	// ReferenceStore backs the per-word values and per-line SON tables
	// with the retained dense mem store instead of the paged one, the
	// differential oracle for the paged backing. Results are
	// bit-identical to the default; only memory footprint changes.
	ReferenceStore bool
}

// DefaultConfig returns the evaluated configuration.
func DefaultConfig() Config {
	return Config{Cache: cache.DefaultConfig(), BroadcastCost: 4, HashCost: 6, HistoryCheckCost: 4, CommitOverhead: 10}
}

const maxSON = ^uint64(0)

// sonGap spaces the SONs that committed writers occupy. Writers take the
// next multiple of sonGap above their lower bound, leaving integer room so
// that readers overlapping two writers can still serialize between them.
const sonGap = 1 << 10

// Engine is the SONTM baseline.
type Engine struct {
	cfg    Config
	shared *cache.Shared
	// hiers holds each core's private hierarchy, indexed by thread ID
	// (IDs are dense, 0..n-1); nil until the thread first begins.
	hiers  []*cache.Hierarchy
	stats  tm.Stats
	tracer tm.Tracer

	// presence filters commit-time invalidation: only cores that
	// actually accessed a written line are visited (see cache.Presence);
	// the skipped invalidations are no-ops.
	presence cache.Presence

	// words, writeNums and readNums are paged tables keyed by word/line
	// number: the simulated address space is dense (bump allocated),
	// and words/writeNums sit on the per-access hot path where a map
	// hash dominated. The paged backing keeps the heap proportional to
	// touched lines at serving-scale footprints (Config.ReferenceStore
	// retains the dense backing as the differential oracle).
	words mem.Paged[uint64]
	// writeNums holds the SON of the last committed writer per line —
	// SONTM's global write-numbers hashtable.
	writeNums mem.Paged[uint64]
	// readNums holds the maximum SON of any committed reader per line —
	// the collapsed equivalent of the infinite read-history the paper
	// models.
	readNums mem.Paged[uint64]

	// active lists the in-flight transactions. A slice, not a set: the
	// commit broadcast walks it once per written line, and every
	// broadcast effect (interval raises/clamps, doom flags) is
	// commutative, so the swap-remove order is unobservable.
	active []*txn
	txnSeq uint64

	// lastTxn recycles each thread's most recent transaction object;
	// cleanup removes a finished transaction from active and resets its
	// sets, so the object and its grown tables can be reused without
	// rehash churn.
	lastTxn map[int]*txn

	// Reference map-based implementation state (slow.go), used only when
	// cfg.ReferenceSets.
	activeSlow  []*slowTxn
	lastTxnSlow map[int]*slowTxn

	commitBusy bool
}

// New creates a SONTM engine.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:      cfg,
		shared:   cache.NewShared(cfg.Cache),
		lastTxn:  make(map[int]*txn),
		presence: cache.NewPresence(cfg.Cache.Scratch, cfg.ReferenceStore),
	}
	if cfg.ReferenceSets {
		e.lastTxnSlow = make(map[int]*slowTxn)
	}
	if cfg.ReferenceStore {
		e.words.SetReference()
		e.writeNums.SetReference()
		e.readNums.SetReference()
	}
	return e
}

// Name implements tm.Engine.
func (e *Engine) Name() string { return "SONTM" }

// Stats implements tm.Engine.
func (e *Engine) Stats() *tm.Stats { return &e.stats }

// Promote implements tm.Engine; SONTM is serializable, so promotion is a
// no-op.
func (e *Engine) Promote(string) {}

// SetTracer implements tm.Engine.
func (e *Engine) SetTracer(tr tm.Tracer) { e.tracer = tr }

// NonTxRead implements tm.Engine.
//
//sitm:allow(yieldlint) workload setup/verification API, called before threads start or after they quiesce
func (e *Engine) NonTxRead(a mem.Addr) uint64 { return e.words.Load(mem.WordIndex(a)) }

// NonTxWrite implements tm.Engine.
//
//sitm:allow(yieldlint) workload setup/verification API, called before threads start or after they quiesce
func (e *Engine) NonTxWrite(a mem.Addr, v uint64) { e.words.Store(mem.WordIndex(a), v) }

func (e *Engine) hierarchy(t *sched.Thread) *cache.Hierarchy {
	id := t.ID()
	for id >= len(e.hiers) {
		e.hiers = append(e.hiers, nil)
	}
	h := e.hiers[id]
	if h == nil {
		h = cache.NewHierarchy(e.cfg.Cache, e.shared)
		e.hiers[id] = h
	}
	return h
}

// ReleaseCaches returns the simulated cache arrays to the scratch pool
// the engine was configured with (no-op without one). The harness calls
// it once the run's statistics have been extracted; the engine must not
// run transactions afterwards.
func (e *Engine) ReleaseCaches() {
	for _, h := range e.hiers {
		if h != nil {
			h.Release()
		}
	}
	e.hiers = nil
	e.shared.Release()
	e.presence.Release(e.cfg.Cache.Scratch)
}

// CacheStats returns aggregate cache statistics over all cores.
func (e *Engine) CacheStats() cache.Stats {
	var s cache.Stats
	for _, h := range e.hiers {
		if h == nil {
			continue
		}
		s.L1Hits += h.Stats.L1Hits
		s.L2Hits += h.Stats.L2Hits
		s.L3Hits += h.Stats.L3Hits
		s.MemAccesses += h.Stats.MemAccesses
		s.XlateHits += h.Stats.XlateHits
		s.XlateMisses += h.Stats.XlateMisses
		s.Accesses += h.Stats.Accesses
	}
	return s
}

// AuditAccessSets verifies that no live access-set state survives outside
// a running transaction: the active list is empty and every recycled
// transaction object holds empty sets. tmtest calls it after each
// conformance cell. The reference (map-based) path keeps the pre-aset
// engine's own lifecycle — maps are cleared at Begin — so it is not
// audited.
func (e *Engine) AuditAccessSets() error {
	if e.cfg.ReferenceSets {
		return nil
	}
	if n := len(e.active); n != 0 {
		return fmt.Errorf("sontm: %d transactions still active after quiescence", n)
	}
	for id, tx := range e.lastTxn {
		if tx == nil {
			continue
		}
		if !tx.finished {
			return fmt.Errorf("sontm: thread %d transaction unfinished", id)
		}
		if n := tx.readSet.Len(); n != 0 {
			return fmt.Errorf("sontm: thread %d leaked %d read-set lines", id, n)
		}
		if n := tx.writes.Len(); n != 0 {
			return fmt.Errorf("sontm: thread %d leaked %d write-set lines", id, n)
		}
	}
	return nil
}

// noLine is the lastRead sentinel: no real line has this number, so a
// fresh transaction's first read always takes the set path.
const noLine = ^mem.Line(0)

// txn is one SONTM transaction attempt.
type txn struct {
	e  *Engine
	t  *sched.Thread
	h  *cache.Hierarchy
	id uint64

	lo, hi uint64 // SON interval, inclusive

	readSet aset.LineSet
	// lastRead memoises the line of the previous Read: the readSet
	// insert is idempotent and entries are never removed mid-transaction
	// (commit broadcasts only probe membership), so a repeat read of the
	// same line skips the set probe.
	lastRead mem.Line
	// writes buffers the speculative stores: line membership,
	// first-write order and the logged words in one structure. Commit
	// broadcasts probe it with a one-word signature AND in the common
	// miss case.
	writes aset.WriteLog

	// selfBit is this thread's presence bit (cache.CoreBit of its ID),
	// noted on every access so committers know this core may hold the
	// line.
	selfBit uint64
	// activeIdx is this transaction's slot in Engine.active while
	// in flight (swap-remove bookkeeping).
	activeIdx int

	doomed   bool
	doomLine mem.Line
	finished bool
	site     string
}

var _ tm.Txn = (*txn)(nil)

// Begin implements tm.Engine.
func (e *Engine) Begin(t *sched.Thread) tm.Txn {
	if e.cfg.ReferenceSets {
		return e.beginSlow(t)
	}
	e.txnSeq++
	var tx *txn
	if old := e.lastTxn[t.ID()]; old != nil && old.finished {
		// The object's sets were Reset when it finished, keeping their
		// grown capacity. The thread object can differ across scheduler
		// runs even for the same thread ID, so it is rebound.
		old.t = t
		old.id = e.txnSeq
		old.lo, old.hi = 1, maxSON
		old.lastRead = noLine
		old.doomed, old.doomLine = false, 0
		old.finished = false
		old.site = ""
		tx = old
	} else {
		tx = &txn{
			e: e, t: t, h: e.hierarchy(t), id: e.txnSeq,
			lo: 1, hi: maxSON,
			lastRead: noLine,
			selfBit:  cache.CoreBit(t.ID()),
		}
		e.lastTxn[t.ID()] = tx
	}
	tx.activeIdx = len(e.active)
	e.active = append(e.active, tx)
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	t.Tick(2)
	return tx
}

// Site implements tm.Txn.
func (x *txn) Site(s string) tm.Txn { x.site = s; return x }

// raiseLo raises the lower bound; the interval emptying dooms the txn.
func (x *txn) raiseLo(v uint64, line mem.Line) {
	if v > x.lo {
		x.lo = v
	}
	if x.lo > x.hi {
		x.doomed = true
		x.doomLine = line
	}
}

// clampHi lowers the upper bound; the interval emptying dooms the txn.
func (x *txn) clampHi(v uint64, line mem.Line) {
	if v < x.hi {
		x.hi = v
	}
	if x.lo > x.hi {
		x.doomed = true
		x.doomLine = line
	}
}

// checkDoom unwinds (via the tm abort signal) if the SON interval has
// emptied; used on the Read/Write paths.
func (x *txn) checkDoom() {
	if !x.doomed {
		return
	}
	x.abortDoomed()
	tm.SignalAbort(tm.AbortOrder, x.doomLine)
}

// abortDoomed finalises a doomed transaction and returns its abort error;
// used on the Commit path.
func (x *txn) abortDoomed() error {
	x.cleanup()
	x.e.stats.Count(tm.AbortOrder)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	return &tm.AbortError{Kind: tm.AbortOrder, Line: x.doomLine}
}

// Read implements tm.Txn: the transaction must serialize after the
// committed writer whose value it reads.
func (x *txn) Read(a mem.Addr) uint64 {
	x.checkDoom()
	line := mem.LineOf(a)
	// Note before the Tick: the fill happens when Access evaluates,
	// before the yield, so the presence record must be in place for any
	// commit that interleaves with the yield.
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line))
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	// The SON interval update reads the shared write-number table. The
	// read itself would be safe to batch (write numbers only change
	// inside writer commits), but SONTM can never publish interaction
	// slack: a writer commit charges its whole cost in one trailing
	// Tick, so the broadcast dooms peers at the committer's previous
	// park position — zero charge-distance after the park. Any nonzero
	// slack promise at Begin would let a peer batch past a doom that
	// logically precedes its reads. See DESIGN.md, "Horizon batching".
	x.t.Interact()
	if line != x.lastRead {
		x.readSet.Add(line)
		x.lastRead = line
	}
	x.raiseLo(x.e.writeNums.Load(uint64(line))+1, line)
	x.checkDoom()
	if v, ok := x.writes.Load(a); ok {
		return v
	}
	return x.e.words.Load(mem.WordIndex(a))
}

// ReadPromoted implements tm.Txn; SONTM is serializable, so it is an
// ordinary read.
func (x *txn) ReadPromoted(a mem.Addr) uint64 { return x.Read(a) }

// Write implements tm.Txn: the store is logged; the transaction must
// serialize after the last committed writer of the line.
func (x *txn) Write(a mem.Addr, v uint64) {
	x.checkDoom()
	line := mem.LineOf(a)
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line))
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	x.t.Interact() // per event: no sound slack exists (see Read)
	x.writes.Store(a, v)
	x.raiseLo(x.e.writeNums.Load(uint64(line))+1, line)
	x.checkDoom()
}

// cleanup removes the transaction from the active list and resets its
// sets in O(touched), keeping capacity for the next incarnation.
func (x *txn) cleanup() {
	a := x.e.active
	last := len(a) - 1
	moved := a[last]
	a[x.activeIdx] = moved
	moved.activeIdx = x.activeIdx
	a[last] = nil
	x.e.active = a[:last]
	x.finished = true
	x.readSet.Reset()
	x.writes.Reset()
}

// Abort implements tm.Txn.
func (x *txn) Abort() {
	if x.finished {
		return
	}
	x.cleanup()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn: the transaction picks the smallest SON in its
// interval, serializes after committed readers of its write set, and
// broadcasts the write set so concurrent transactions adjust their own
// intervals (§6.1).
func (x *txn) Commit() error {
	if x.finished {
		panic("sontm: Commit on finished transaction")
	}
	if x.doomed {
		return x.abortDoomed()
	}
	if x.writes.Len() == 0 {
		// Readers commit with their interval; record their reads so
		// future writers serialize after them.
		son := x.lo
		for _, line := range x.readSet.Lines() {
			if rn := x.e.readNums.Slot(uint64(line)); son > *rn {
				*rn = son
			}
		}
		x.cleanup()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		x.t.Tick(2)
		return nil
	}

	// Unlike the 2PL baseline, SONTM detects conflicts eagerly during
	// execution, so commits of different transactions have disjoint
	// effects and need no token: the commit's hashing, broadcast and
	// write-back overheads are accumulated and charged to the thread
	// without serializing other committers behind it.
	var cost uint64 = x.e.cfg.CommitOverhead

	// Serialize after every committed reader of the lines we write
	// (the read-history check); the scan cost grows with the number of
	// retained readsets, which tracks concurrency.
	for _, line := range x.writes.Lines() {
		cost += x.e.cfg.BroadcastCost + x.e.cfg.HistoryCheckCost*uint64(len(x.e.active))
		x.raiseLo(x.e.readNums.Load(uint64(line))+1, line)
	}
	// Writers occupy the next sonGap multiple above their lower bound,
	// leaving room below for overlapping readers to serialize.
	son := (x.lo/sonGap + 1) * sonGap
	if x.doomed || son > x.hi {
		x.doomed = true
		return x.abortDoomed()
	}

	// Broadcast the write set: concurrent readers of these lines must
	// serialize before us; concurrent writers after us. These effects
	// execute at the park position of the transaction's LAST access —
	// the commit cost is charged in one trailing Tick below — which is
	// why SONTM threads can never promise interaction slack: the doom
	// lands at charge-distance zero from a park. Splitting the charge
	// to land effects later (as core does) would move the broadcast to
	// a different simulated cycle and change figure bytes.
	x.t.Interact() // interval broadcast + write-back: per-event interactions
	for _, line := range x.writes.Lines() {
		for _, other := range x.e.active {
			if other == x || other.finished {
				continue
			}
			// A transaction that wrote the line must serialize
			// after us; one that read it must serialize before
			// us. A read-modify-write needs both and its
			// interval empties — exactly the Kmeans pattern the
			// paper notes CS cannot help with.
			if other.writes.Has(line) {
				other.raiseLo(son+1, line)
			}
			if other.readSet.Contains(line) {
				other.clampHi(son-1, line)
			}
		}
	}

	// Write back and tag committed writes with the SON in the global
	// write-numbers hashtable.
	for i := 0; i < x.writes.Len(); i++ {
		line, w := x.writes.At(i)
		for word := 0; word < mem.WordsPerLine; word++ {
			if w.Mask&(1<<word) != 0 {
				x.e.words.Store(mem.WordIndex(mem.WordAddr(line, word)), w.Words[word])
			}
		}
	}
	for _, line := range x.writes.Lines() {
		// Re-note: another commit may have drained this core's bit, and
		// the Access below re-fills the line.
		x.e.presence.Note(line, x.selfBit)
		cost += x.h.Access(line) + x.e.cfg.HashCost
		if wn := x.e.writeNums.Slot(uint64(line)); son > *wn {
			*wn = son
		}
		// SONTM never performs versioned accesses, so only the data
		// caches can hold the line; invalidate exactly the cores the
		// presence filter says may hold it.
		for others := x.e.presence.Drain(line, x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateData(line)
		}
		for id := 64; id < len(x.e.hiers); id++ {
			if h := x.e.hiers[id]; h != nil && id != x.t.ID() {
				h.InvalidateData(line)
			}
		}
	}
	for _, line := range x.readSet.Lines() {
		if rn := x.e.readNums.Slot(uint64(line)); son > *rn {
			*rn = son
		}
	}
	x.cleanup()
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.t.Tick(cost)
	return nil
}
