package sontm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

func addr(i int) mem.Addr { return mem.Addr(i * mem.LineBytes) }

func single(body func(th *sched.Thread)) {
	sched.New(1, 1).Run(body)
}

func TestBasicCommit(t *testing.T) {
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 3)
		if v := tx.Read(addr(1)); v != 3 {
			t.Errorf("read own write = %d", v)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if e.NonTxRead(addr(1)) != 3 {
		t.Fatal("write not committed")
	}
}

// TestOrderableConflictCommits is the key CS property Figure 2 relies on:
// a reader that overlaps a committed writer can still commit when a valid
// serialization order exists (the reader serializes before the writer).
func TestOrderableConflictCommits(t *testing.T) {
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 5)
	single(func(th *sched.Thread) {
		r := e.Begin(th)
		_ = r.Read(addr(1)) // reads the old value
		w := e.Begin(th)
		w.Write(addr(1), 6)
		if err := w.Commit(); err != nil {
			t.Fatalf("writer: %v", err)
		}
		// r read the pre-write value: r serializes before w.
		if err := r.Commit(); err != nil {
			t.Errorf("orderable reader must commit under CS: %v", err)
		}
	})
	if e.Stats().TotalAborts() != 0 {
		t.Fatalf("aborts = %d, want 0", e.Stats().TotalAborts())
	}
}

// TestFigure2ScheduleCS replays Figure 2 under conflict serializability:
// TX0 and TX1 commit; TX2 aborts (cyclic dependency with TX0 through A and
// B); TX3 aborts (would have to serialize both before and after TX0).
func TestFigure2ScheduleCS(t *testing.T) {
	e := New(DefaultConfig())
	A, B, C := addr(1), addr(2), addr(3)
	e.NonTxWrite(A, 1)
	e.NonTxWrite(B, 1)
	results := map[string]error{}
	single(func(th *sched.Thread) {
		tx0 := e.Begin(th)
		tx1 := e.Begin(th)
		tx2 := e.Begin(th)
		tx3 := e.Begin(th)

		step := func(name string, f func()) {
			if results[name] != nil {
				return // already aborted
			}
			defer func() {
				if r := recover(); r != nil {
					results[name] = r.(error)
				}
			}()
			f()
		}
		_ = step
		read := func(name string, tx tm.Txn, a mem.Addr) {
			if results[name] == nil {
				func() {
					defer func() {
						if r := recover(); r != nil {
							results[name] = &tm.AbortError{Kind: tm.AbortOrder}
						}
					}()
					_ = tx.Read(a)
				}()
			}
		}
		write := func(name string, tx tm.Txn, a mem.Addr) {
			if results[name] == nil {
				func() {
					defer func() {
						if r := recover(); r != nil {
							results[name] = &tm.AbortError{Kind: tm.AbortOrder}
						}
					}()
					tx.Write(a, 9)
				}()
			}
		}
		commit := func(name string, tx tm.Txn) {
			if results[name] == nil {
				results[name] = tx.Commit()
			}
		}

		read("tx0", tx0, A)
		read("tx3", tx3, A)
		write("tx0", tx0, A)
		read("tx2", tx2, B)
		write("tx2", tx2, C)
		write("tx0", tx0, B)
		commit("tx0", tx0)
		read("tx1", tx1, A)
		write("tx3", tx3, A)
		commit("tx1", tx1)
		read("tx2", tx2, A)
		commit("tx2", tx2)
		commit("tx3", tx3)
	})
	if results["tx0"] != nil {
		t.Errorf("TX0 must commit: %v", results["tx0"])
	}
	if results["tx1"] != nil {
		t.Errorf("TX1 must commit under CS: %v", results["tx1"])
	}
	if results["tx2"] == nil {
		t.Error("TX2 must abort under CS (cycle with TX0)")
	}
	if results["tx3"] == nil {
		t.Error("TX3 must abort under CS")
	}
}

func TestWriterAfterCommittedReaderOrdering(t *testing.T) {
	// A committed reader of line A forces a later writer of A to take a
	// higher SON; if that writer also read data constraining it below,
	// it aborts.
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		r := e.Begin(th)
		_ = r.Read(addr(1))
		if err := r.Commit(); err != nil {
			t.Fatalf("reader: %v", err)
		}
		w := e.Begin(th)
		w.Write(addr(1), 2)
		if err := w.Commit(); err != nil {
			t.Fatalf("writer after committed reader must still commit: %v", err)
		}
	})
}

func TestConcurrentIncrementsAreSerializable(t *testing.T) {
	e := New(DefaultConfig())
	s := sched.New(4, 5)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 25; i++ {
			err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				v := tx.Read(addr(1))
				tx.Write(addr(1), v+1)
				return nil
			})
			if err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
	})
	if got := e.NonTxRead(addr(1)); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestAbortDiscardsWriteLog(t *testing.T) {
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 5)
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 9)
		tx.Abort()
	})
	if e.NonTxRead(addr(1)) != 5 {
		t.Fatal("aborted write leaked")
	}
}

func TestIntervalEmptyAborts(t *testing.T) {
	// Long reader: reads A (must be before any later writer of A) then
	// reads a line freshly written by a high-SON committer (must be
	// after it) -> interval empties.
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		long := e.Begin(th)
		_ = long.Read(addr(1))
		// Updater 1 bumps A's write number past long's upper bound.
		u1 := e.Begin(th)
		u1.Write(addr(1), 1)
		if err := u1.Commit(); err != nil {
			t.Fatalf("u1: %v", err)
		}
		// Updater 2 writes B with an even higher SON.
		u2 := e.Begin(th)
		_ = u2.Read(addr(1)) // forces u2 after u1
		u2.Write(addr(2), 2)
		if err := u2.Commit(); err != nil {
			t.Fatalf("u2: %v", err)
		}
		// long now reads B: lo must exceed hi.
		aborted := false
		func() {
			defer func() {
				if recover() != nil {
					aborted = true
				}
			}()
			_ = long.Read(addr(2))
			if err := long.Commit(); err != nil {
				aborted = true
			}
		}()
		if !aborted {
			t.Error("long reader with cyclic constraints must abort")
		}
	})
}

func TestReadOnlyCommits(t *testing.T) {
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		_ = tx.Read(addr(1))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if e.Stats().ReadOnly != 1 {
		t.Fatal("read-only commit not counted")
	}
}
