package sontm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// TestHistoryCheckCostGrowsWithConcurrency verifies the commit overhead
// models the paper's read-history weakness: committing the same write set
// costs more cycles when more transactions are active.
func TestHistoryCheckCostGrowsWithConcurrency(t *testing.T) {
	commitCost := func(extraActive int) uint64 {
		e := New(DefaultConfig())
		var cost uint64
		single(func(th *sched.Thread) {
			// Park extra transactions to inflate the active set.
			var parked []tm.Txn
			for i := 0; i < extraActive; i++ {
				parked = append(parked, e.Begin(th))
			}
			tx := e.Begin(th)
			tx.Write(addr(1), 1)
			tx.Write(addr(2), 2)
			before := th.Cycles()
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			cost = th.Cycles() - before
			for _, p := range parked {
				p.Abort()
			}
		})
		return cost
	}
	lo, hi := commitCost(0), commitCost(16)
	if hi <= lo {
		t.Fatalf("commit cost with 16 active (%d) not above idle cost (%d)", hi, lo)
	}
	// Two written lines x 16 extra actives x HistoryCheckCost.
	wantDelta := 2 * 16 * DefaultConfig().HistoryCheckCost
	if hi-lo < wantDelta {
		t.Fatalf("cost delta = %d, want >= %d", hi-lo, wantDelta)
	}
}

// TestTraceEmission verifies SONTM feeds the write-skew tool's recorder
// with a begin/read/write/commit stream.
func TestTraceEmission(t *testing.T) {
	e := New(DefaultConfig())
	rec := &countingTracer{}
	e.SetTracer(rec)
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		_ = tx.Read(addr(1))
		tx.Write(addr(2), 5)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx2 := e.Begin(th)
		tx2.Write(addr(3), 1)
		tx2.Abort()
	})
	if rec.begins != 2 || rec.reads != 1 || rec.writes != 2 || rec.commits != 1 || rec.aborts != 1 {
		t.Fatalf("trace counts = %+v", *rec)
	}
}

// countingTracer tallies tracer callbacks.
type countingTracer struct {
	begins, reads, writes, commits, aborts int
}

func (c *countingTracer) TxnBegin(uint64, int)              { c.begins++ }
func (c *countingTracer) TxnRead(uint64, mem.Addr, string)  { c.reads++ }
func (c *countingTracer) TxnWrite(uint64, mem.Addr, string) { c.writes++ }
func (c *countingTracer) TxnCommit(uint64)                  { c.commits++ }
func (c *countingTracer) TxnAbort(uint64)                   { c.aborts++ }
