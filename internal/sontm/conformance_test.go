package sontm_test

import (
	"testing"

	"repro/internal/sontm"
	"repro/internal/tm"
	"repro/internal/tmtest"
)

func TestConformanceSONTM(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		return sontm.New(sontm.DefaultConfig())
	})
}

func TestSerializableSemanticsSONTM(t *testing.T) {
	tmtest.RunSerializableSuite(t, func() tm.Engine {
		return sontm.New(sontm.DefaultConfig())
	})
}
