package micro

// Scale implementations grow the workloads toward the paper's input
// sizes (§6.2): a factor of 15 restores Array's 30 K entries, a factor
// of 8 restores List's 1000 elements; RBTree's 100 elements already match
// the paper and only the transaction count grows.

// Scale implements harness.Scalable.
func (a *Array) Scale(factor int) {
	if factor < 1 {
		return
	}
	a.Entries *= factor
	a.TxnsPerThread *= factor
	// Long reads grow with Entries; keep update frequency in the same
	// ratio so version pressure stays in the paper's regime.
	a.UpdateThinkCycles *= uint64(factor)
}

// Scale implements harness.Scalable.
func (l *List) Scale(factor int) {
	if factor < 1 {
		return
	}
	l.InitSize *= factor
	l.KeyRange *= factor
	l.TxnsPerThread *= factor
}

// Scale implements harness.Scalable.
func (t *RBTree) Scale(factor int) {
	if factor < 1 {
		return
	}
	t.TxnsPerThread *= factor
}
