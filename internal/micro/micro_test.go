package micro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// drive runs workload w on a fresh SI-TM engine with n threads and
// returns the engine for inspection.
func drive(t *testing.T, w interface {
	Setup(m *txlib.Mem, threads int)
	Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig)
	Validate(m *txlib.Mem) string
}, n int) *core.Engine {
	t.Helper()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, n)
	sched.New(n, 1).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	if msg := w.Validate(m); msg != "" {
		t.Fatalf("validate: %s", msg)
	}
	return e
}

func TestArrayCommitsExpectedCount(t *testing.T) {
	a := NewArray()
	a.TxnsPerThread = 20
	e := drive(t, a, 4)
	if got := e.Stats().Commits; got != 80 {
		t.Fatalf("commits = %d, want 80", got)
	}
}

func TestArrayUpdatesSumToCommits(t *testing.T) {
	a := NewArray()
	a.TxnsPerThread = 30
	a.LongRatioPct = 0 // updates only: each adds exactly 2
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	a.Setup(m, 2)
	base := a.vec.SumNonTx()
	sched.New(2, 1).Run(func(th *sched.Thread) { a.Run(m, th, tm.DefaultBackoff()) })
	if got, want := a.vec.SumNonTx()-base, uint64(2*30*2); got != want {
		t.Fatalf("array delta = %d, want %d (every committed update adds 2)", got, want)
	}
}

func TestArrayLongReadersNeverAbortUnderSI(t *testing.T) {
	a := NewArray()
	a.LongRatioPct = 100
	e := drive(t, a, 8)
	if e.Stats().TotalAborts() != 0 {
		t.Fatalf("aborts = %d, want 0 for read-only transactions", e.Stats().TotalAborts())
	}
	if e.Stats().ReadOnly != e.Stats().Commits {
		t.Fatalf("all commits must be read-only: %+v", e.Stats())
	}
}

func TestListStaysSorted(t *testing.T) {
	l := NewList()
	drive(t, l, 8)
	// Validate already ran inside drive; double-check non-empty.
	if len(l.list.KeysNonTx()) == 0 {
		t.Fatal("list emptied entirely; workload parameters broken")
	}
}

func TestListDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		l := NewList()
		e := core.New(core.DefaultConfig())
		m := txlib.NewMem(e)
		l.Setup(m, 4)
		s := sched.New(4, 9)
		s.Run(func(th *sched.Thread) { l.Run(m, th, tm.DefaultBackoff()) })
		return s.Makespan()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic makespan: %d vs %d", a, b)
	}
}

func TestRBTreeInvariantsSurviveConcurrency(t *testing.T) {
	w := NewRBTree()
	w.TxnsPerThread = 80
	drive(t, w, 8) // drive fails the test if invariants break
}

func TestRBTreePromotionRegistered(t *testing.T) {
	w := NewRBTree()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 2)
	// Promotion must make concurrent conflicting updates abort instead
	// of corrupting: run a hot small tree hard and check invariants.
	w.KeyRange = 16
	sched.New(8, 2).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	if msg := w.Validate(m); msg != "" {
		t.Fatalf("tree corrupt despite promotion: %s", msg)
	}
	if e.Stats().Aborts[tm.AbortSkew] == 0 {
		t.Log("no skew aborts observed (acceptable: low contention schedule)")
	}
}

func TestWorkloadNames(t *testing.T) {
	if NewArray().Name() != "Array" || NewList().Name() != "List" || NewRBTree().Name() != "RBTree" {
		t.Fatal("workload names changed; the harness registry depends on them")
	}
}
