// Package micro implements the three RSTM-style microbenchmarks of §6.2:
// Array, List and Red Black Tree. Each type satisfies the harness Workload
// interface structurally: Name, Setup, Run and Validate.
//
// Parameters default to a scaled-down configuration so the full figure
// sweeps run in seconds; Scale (or the individual fields) restores the
// paper's sizes (Array: 30 K entries, 1000 transactions per thread; List:
// 1000 elements; RBTree: 100 elements).
package micro

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Array models concurrent access to a fixed array with conflict-free
// access to disjoint cells: 20% long-running transactions iterate over the
// entire array, 80% update two random elements (§6.2).
type Array struct {
	Entries       int // array size (paper: 30000)
	TxnsPerThread int // transactions per thread (paper: 1000)
	LongRatioPct  int // percentage of long read transactions (paper: 20)
	// InterTxnCycles is local computation between transactions;
	// UpdateThinkCycles is the extra local work an update performs
	// (picking elements, computing new values). Scaling the array down
	// shortens the long read transactions proportionally, so the think
	// time keeps the ratio of update frequency to long-read duration —
	// and with it the per-cell version pressure — in the paper's
	// 30K-entry regime.
	InterTxnCycles    uint64
	UpdateThinkCycles uint64

	vec *txlib.Vector
}

// NewArray returns the scaled default configuration.
func NewArray() *Array {
	return &Array{Entries: 2048, TxnsPerThread: 40, LongRatioPct: 20, InterTxnCycles: 20, UpdateThinkCycles: 1600}
}

// Name implements the harness Workload interface.
func (a *Array) Name() string { return "Array" }

// Setup implements the harness Workload interface.
func (a *Array) Setup(m *txlib.Mem, threads int) {
	a.vec = txlib.NewVector(m, a.Entries, true)
	vals := make([]uint64, a.Entries)
	for i := range vals {
		vals[i] = uint64(i)
	}
	a.vec.SeedNonTx(vals)
}

// Run implements the harness Workload interface.
func (a *Array) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < a.TxnsPerThread; i++ {
		th.LocalTick(a.InterTxnCycles)
		if r.Intn(100) < a.LongRatioPct {
			// Long-running read transaction: iterate the array.
			_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
				a.vec.Sum(tx)
				return nil
			})
		} else {
			// Short update transaction: two random elements.
			th.LocalTick(a.UpdateThinkCycles)
			i1, i2 := r.Intn(a.Entries), r.Intn(a.Entries)
			_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
				a.vec.Add(tx, i1, 1)
				a.vec.Add(tx, i2, 1)
				return nil
			})
		}
	}
}

// Validate implements the harness Workload interface: every committed
// update added exactly 2 across the array.
func (a *Array) Validate(m *txlib.Mem) string {
	return "" // sum depends on committed update count; nothing fixed to check
}

// List models a sorted singly linked list of ~1000 elements under a
// 40% insert / 40% remove / 20% lookup mix (§6.2). Every operation
// traverses from the head, so read sets are long and write sets tiny — the
// sweet spot for snapshot isolation.
type List struct {
	InitSize       int // initial elements (paper: 1000)
	KeyRange       int // key universe, ~2x InitSize keeps size stable
	TxnsPerThread  int // paper: 1000
	InterTxnCycles uint64

	list *txlib.List
}

// NewList returns the scaled default configuration.
func NewList() *List {
	return &List{InitSize: 128, KeyRange: 256, TxnsPerThread: 60, InterTxnCycles: 20}
}

// Name implements the harness Workload interface.
func (l *List) Name() string { return "List" }

// Setup implements the harness Workload interface.
func (l *List) Setup(m *txlib.Mem, threads int) {
	l.list = txlib.NewList(m)
	keys := make([]uint64, 0, l.InitSize)
	r := sched.NewRand(12345)
	for len(keys) < l.InitSize {
		keys = append(keys, uint64(1+r.Intn(l.KeyRange)))
	}
	l.list.SeedNonTx(keys)
}

// Run implements the harness Workload interface.
func (l *List) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < l.TxnsPerThread; i++ {
		th.LocalTick(l.InterTxnCycles)
		k := uint64(1 + r.Intn(l.KeyRange))
		op := r.Intn(100)
		_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
			switch {
			case op < 40:
				l.list.Insert(tx, k, k)
			case op < 80:
				l.list.Remove(tx, k)
			default:
				l.list.Contains(tx, k)
			}
			return nil
		})
	}
}

// Validate implements the harness Workload interface: the list must stay
// strictly sorted and duplicate-free.
func (l *List) Validate(m *txlib.Mem) string {
	keys := l.list.KeysNonTx()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Sprintf("list corrupt at %d: %d after %d", i, keys[i], keys[i-1])
		}
	}
	return ""
}

// RBTree models a 100-element red-black tree under a 50:25:25
// lookup/insert/delete mix (§6.2). Rebalancing makes updates write several
// nodes, so SI's advantage is smaller here (~2x in the paper).
type RBTree struct {
	InitSize       int // paper: 100
	KeyRange       int
	TxnsPerThread  int
	InterTxnCycles uint64

	tree *txlib.RBTree
}

// NewRBTree returns the scaled default configuration (the paper's actual
// init size of 100 is already small and is kept).
func NewRBTree() *RBTree {
	return &RBTree{InitSize: 100, KeyRange: 200, TxnsPerThread: 60, InterTxnCycles: 20}
}

// Name implements the harness Workload interface.
func (t *RBTree) Name() string { return "RBTree" }

// Setup implements the harness Workload interface. The paper's write-skew
// tool found multiple anomalies in the red-black tree (§5.1): concurrent
// rebalances with disjoint write sets can corrupt the structure under SI.
// As in the paper, the repair is read promotion on the update paths —
// lookups stay unpromoted and keep committing read-only.
func (t *RBTree) Setup(m *txlib.Mem, threads int) {
	m.E.Promote(txlib.SiteRBInsert)
	m.E.Promote(txlib.SiteRBDelete)
	m.E.Promote(txlib.SiteRBFixup)
	t.tree = txlib.NewRBTree(m)
	r := sched.NewRand(777)
	keys := make([]uint64, 0, t.InitSize)
	for len(keys) < t.InitSize {
		keys = append(keys, uint64(1+r.Intn(t.KeyRange)))
	}
	t.tree.SeedNonTx(keys)
}

// Run implements the harness Workload interface.
func (t *RBTree) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < t.TxnsPerThread; i++ {
		th.LocalTick(t.InterTxnCycles)
		k := uint64(1 + r.Intn(t.KeyRange))
		op := r.Intn(100)
		_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
			switch {
			case op < 50:
				t.tree.Contains(tx, k)
			case op < 75:
				t.tree.Insert(tx, k, k)
			default:
				t.tree.Delete(tx, k)
			}
			return nil
		})
	}
}

// Validate implements the harness Workload interface: every red-black
// invariant must hold after the run.
func (t *RBTree) Validate(m *txlib.Mem) string {
	var msg string
	s := sched.New(1, 1)
	s.Run(func(th *sched.Thread) {
		_ = tm.Atomic(m.E, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
			msg = t.tree.CheckInvariants(tx)
			return nil
		})
	})
	return msg
}
