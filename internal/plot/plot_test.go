package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "speedup",
		XLabel: "threads",
		YLabel: "x over 1 thread",
		XTicks: []string{"1", "2", "4", "8", "16", "32"},
		Series: []Series{
			{Name: "SI-TM", Points: []float64{1, 2, 4.5, 8.4, 15.7, 28.6}},
			{Name: "2PL", Points: []float64{1, 1.7, 3.3, 4.0, 5.2, 5.1}},
		},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"speedup", "SI-TM", "2PL", "threads", "32", "legend:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The top axis label must be the max value of any series.
	if !strings.Contains(out, "28.6") {
		t.Fatalf("y max label missing:\n%s", out)
	}
	// Both series markers appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("series markers missing:\n%s", out)
	}
}

func TestRenderMarksHighSeriesAboveLow(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	// Find the rows containing the final '*' (SI-TM @32) and final 'o'
	// (2PL @32); the SI-TM row must be strictly higher (smaller index).
	starRow, oRow := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "*") && starRow == -1 {
			starRow = i
		}
	}
	for i, l := range lines {
		if strings.Contains(l, "o") && !strings.Contains(l, "o ") || strings.Contains(l, " o") {
			oRow = i
			break
		}
	}
	if starRow == -1 || oRow == -1 {
		t.Fatalf("markers not found:\n%s", buf.String())
	}
	if starRow >= oRow {
		t.Fatalf("fastest series not plotted above: star@%d o@%d\n%s", starRow, oRow, buf.String())
	}
}

func TestRenderLogScale(t *testing.T) {
	c := &Chart{
		XTicks: []string{"8", "16", "32"},
		LogY:   true,
		Series: []Series{
			{Name: "rel", Points: []float64{1, 0.1, 0.001}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.001") {
		t.Fatalf("log min label missing:\n%s", buf.String())
	}
}

func TestRenderHandlesFlatAndEmpty(t *testing.T) {
	flat := &Chart{XTicks: []string{"1", "2"}, Series: []Series{{Name: "f", Points: []float64{3, 3}}}}
	var buf bytes.Buffer
	if err := flat.Render(&buf); err != nil {
		t.Fatal(err)
	}
	empty := &Chart{XTicks: nil, Series: nil}
	buf.Reset()
	if err := empty.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderZeroWithLogScale(t *testing.T) {
	c := &Chart{
		XTicks: []string{"a", "b"},
		LogY:   true,
		Series: []Series{{Name: "z", Points: []float64{0, 1}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
