// Package plot renders simple ASCII line charts for the figure data, so
// sitm-bench can show the speedup curves and abort-rate series directly in
// the terminal alongside the tables.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Points []float64 // y values, one per x position
}

// Chart is an ASCII line chart over shared x positions.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string // labels for the x positions
	Series []Series

	// Height is the plot area height in rows (default 12).
	Height int
	// Width is the plot area width in columns (default: spread ticks
	// evenly with at least 6 columns per tick).
	Width int
	// LogY selects a logarithmic y axis (useful for abort ratios).
	LogY bool
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	width := c.Width
	if width <= 0 {
		width = 6 * len(c.XTicks)
		if width < 24 {
			width = 24
		}
	}

	ymin, ymax := c.bounds()
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}

	toRow := func(y float64) int {
		t := (c.scale(y) - c.scale(ymin)) / (c.scale(ymax) - c.scale(ymin))
		row := int(math.Round(float64(height-1) * (1 - t)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	toCol := func(i, n int) int {
		if n <= 1 {
			return 0
		}
		return i * (width - 1) / (n - 1)
	}

	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		prevRow, prevCol := -1, -1
		for i, y := range s.Points {
			if i >= len(c.XTicks) {
				break
			}
			row, col := toRow(y), toCol(i, len(c.XTicks))
			grid[row][col] = mark
			// Sparse linear interpolation between points.
			if prevCol >= 0 {
				steps := col - prevCol
				for s := 1; s < steps; s++ {
					ir := prevRow + (row-prevRow)*s/steps
					ic := prevCol + s
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			prevRow, prevCol = row, col
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	axisWidth := 9
	for i, row := range grid {
		label := strings.Repeat(" ", axisWidth)
		switch i {
		case 0:
			label = fmt.Sprintf("%8.4g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.4g ", ymin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.4g ", c.unscale((c.scale(ymin)+c.scale(ymax))/2))
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", axisWidth), strings.Repeat("-", width)); err != nil {
		return err
	}
	// X tick labels (a little wider than the plot so the final label
	// is not truncated at the edge).
	tickRow := []byte(strings.Repeat(" ", width+8))
	for i, t := range c.XTicks {
		col := toCol(i, len(c.XTicks))
		for j := 0; j < len(t) && col+j < len(tickRow); j++ {
			tickRow[col+j] = t[j]
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s   (%s)\n", strings.Repeat(" ", axisWidth), string(tickRow), c.XLabel); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s legend: %s%s\n", strings.Repeat(" ", axisWidth), strings.Join(legend, "  "), c.yLabelSuffix())
	return err
}

func (c *Chart) yLabelSuffix() string {
	if c.YLabel == "" {
		return ""
	}
	return "  y: " + c.YLabel
}

// scale maps y into the plotting domain (log or linear).
func (c *Chart) scale(y float64) float64 {
	if c.LogY {
		if y <= 0 {
			y = 1e-6
		}
		return math.Log10(y)
	}
	return y
}

// unscale inverts scale.
func (c *Chart) unscale(v float64) float64 {
	if c.LogY {
		return math.Pow(10, v)
	}
	return v
}

// bounds finds the y range over all series.
func (c *Chart) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i, y := range s.Points {
			if i >= len(c.XTicks) {
				break
			}
			if c.LogY && y <= 0 {
				y = 1e-6
			}
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	return lo, hi
}
