// Package mem defines the simulated physical address space of the machine
// and the mvmalloc-style allocator the SI-TM paper exposes to applications
// (§3, §4.4).
//
// The geometry matches the paper's hardware: 64-byte cache lines holding
// eight 64-bit words. Conflict detection, versioning and cache modelling all
// operate at line granularity; data accesses operate at word granularity.
package mem

// Addr is a simulated byte address. Address 0 is reserved as the nil
// pointer for transactional data structures.
type Addr uint64

// Line identifies a 64-byte cache line (Addr >> 6).
type Line uint64

// Geometry of the simulated memory system.
const (
	WordBytes    = 8                     // one 64-bit word
	LineBytes    = 64                    // one cache line
	WordsPerLine = LineBytes / WordBytes // 8
	lineShift    = 6
	wordShift    = 3
)

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> lineShift) }

// WordOf returns the word index of a within its line, in [0, WordsPerLine).
func WordOf(a Addr) int { return int(a>>wordShift) & (WordsPerLine - 1) }

// WordAddr returns the word-aligned address of word w within line l.
func WordAddr(l Line, w int) Addr { return Addr(l)<<lineShift | Addr(w)<<wordShift }

// Base returns the address of the first byte of line l.
func (l Line) Base() Addr { return Addr(l) << lineShift }

// Allocator hands out simulated memory. It models the paper's mvmalloc():
// a conventional heap manager over the multiversioned partition (§4.4,
// "it can be administered by a conventional heap manager") whose
// version-list entries are installed on allocation and whose data lines
// are populated on first write (§3). Allocation is a bump pointer plus
// size-segregated free lists for line-aligned blocks; address 0 is never
// handed out.
type Allocator struct {
	next Addr
	// free holds returned line-aligned blocks, segregated by size in
	// lines. Freeing is non-transactional, like the paper's allocator:
	// the data structures free() nodes only on committed removals.
	free map[int][]Addr
}

// NewAllocator returns an allocator whose first allocation starts at one
// full line past address zero, keeping 0 usable as a nil pointer.
func NewAllocator() *Allocator {
	return &Allocator{next: LineBytes, free: make(map[int][]Addr)}
}

// Alloc reserves nWords contiguous 64-bit words and returns the address of
// the first. Allocations are word-aligned.
func (a *Allocator) Alloc(nWords int) Addr {
	if nWords <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	p := a.next
	a.next += Addr(nWords * WordBytes)
	return p
}

// AllocLines reserves nLines full cache lines, line-aligned, and returns
// the base address, reusing freed blocks of the same size when available.
// Line-aligned allocation is how workloads avoid false sharing between
// unrelated objects (§6.1 evaluates at line granularity).
func (a *Allocator) AllocLines(nLines int) Addr {
	if nLines <= 0 {
		panic("mem: AllocLines with non-positive size")
	}
	if fl := a.free[nLines]; len(fl) > 0 {
		p := fl[len(fl)-1]
		a.free[nLines] = fl[:len(fl)-1]
		return p
	}
	if rem := a.next & (LineBytes - 1); rem != 0 {
		a.next += LineBytes - rem
	}
	p := a.next
	a.next += Addr(nLines * LineBytes)
	return p
}

// FreeLines returns a block previously obtained from AllocLines (or
// AllocAligned with the same line count) to the free list. The caller is
// responsible for not freeing memory that live snapshots still reference —
// in the transactional containers a node is freed only after the removal
// that unlinked it has committed.
func (a *Allocator) FreeLines(p Addr, nLines int) {
	if nLines <= 0 || p == 0 || p&(LineBytes-1) != 0 {
		panic("mem: FreeLines with invalid block")
	}
	a.free[nLines] = append(a.free[nLines], p)
}

// FreeCount returns how many blocks of nLines lines sit on the free list.
func (a *Allocator) FreeCount(nLines int) int { return len(a.free[nLines]) }

// AllocAligned reserves nWords words starting on a fresh cache line. It is
// the usual allocation mode for transactional data-structure nodes: each
// node occupies its own line(s) so that line-granularity conflict detection
// does not create artificial conflicts between nodes.
func (a *Allocator) AllocAligned(nWords int) Addr {
	lines := (nWords*WordBytes + LineBytes - 1) / LineBytes
	return a.AllocLines(lines)
}

// Brk returns the current top of the allocated region (exclusive).
func (a *Allocator) Brk() Addr { return a.next }
