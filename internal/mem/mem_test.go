package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if WordsPerLine != 8 {
		t.Fatalf("WordsPerLine = %d, want 8", WordsPerLine)
	}
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf boundaries wrong")
	}
	if WordOf(0) != 0 || WordOf(8) != 1 || WordOf(56) != 7 || WordOf(64) != 0 {
		t.Fatal("WordOf boundaries wrong")
	}
	if Line(3).Base() != 192 {
		t.Fatalf("Base = %d, want 192", Line(3).Base())
	}
}

func TestWordAddrRoundTrip(t *testing.T) {
	f := func(l uint32, w uint8) bool {
		line := Line(l)
		word := int(w) % WordsPerLine
		a := WordAddr(line, word)
		return LineOf(a) == line && WordOf(a) == word
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorNeverReturnsZero(t *testing.T) {
	a := NewAllocator()
	for i := 0; i < 100; i++ {
		if p := a.Alloc(1); p == 0 {
			t.Fatal("allocator returned the nil address")
		}
	}
}

func TestAllocatorDisjoint(t *testing.T) {
	a := NewAllocator()
	p1 := a.Alloc(4)
	p2 := a.Alloc(4)
	if p2 < p1+4*WordBytes {
		t.Fatalf("allocations overlap: %d then %d", p1, p2)
	}
}

func TestAllocLinesAligned(t *testing.T) {
	a := NewAllocator()
	a.Alloc(3) // misalign the bump pointer
	p := a.AllocLines(2)
	if p&(LineBytes-1) != 0 {
		t.Fatalf("AllocLines returned unaligned address %d", p)
	}
}

func TestAllocAlignedSeparateLines(t *testing.T) {
	a := NewAllocator()
	p1 := a.AllocAligned(2) // 2 words -> 1 line
	p2 := a.AllocAligned(2)
	if LineOf(p1) == LineOf(p2) {
		t.Fatal("aligned allocations share a cache line")
	}
	p3 := a.AllocAligned(9) // 9 words -> 2 lines
	p4 := a.AllocAligned(1)
	if LineOf(p4) < LineOf(p3)+2 {
		t.Fatalf("9-word aligned alloc did not reserve 2 lines: %d then %d", p3, p4)
	}
}

func TestFreeListReuse(t *testing.T) {
	a := NewAllocator()
	p1 := a.AllocLines(2)
	p2 := a.AllocLines(2)
	a.FreeLines(p1, 2)
	if a.FreeCount(2) != 1 {
		t.Fatalf("free count = %d, want 1", a.FreeCount(2))
	}
	p3 := a.AllocLines(2)
	if p3 != p1 {
		t.Fatalf("AllocLines did not reuse freed block: got %d, want %d", p3, p1)
	}
	// Different sizes never cross-match.
	a.FreeLines(p2, 2)
	p4 := a.AllocLines(3)
	if p4 == p2 {
		t.Fatal("3-line allocation reused a 2-line block")
	}
	if a.FreeCount(2) != 1 {
		t.Fatalf("2-line free list disturbed: %d", a.FreeCount(2))
	}
}

func TestFreeLinesRejectsBadBlocks(t *testing.T) {
	a := NewAllocator()
	for _, f := range []func(){
		func() { a.FreeLines(0, 1) },    // nil pointer
		func() { a.FreeLines(64, 0) },   // zero size
		func() { a.FreeLines(64+8, 1) }, // unaligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAllocPanicsOnBadSize(t *testing.T) {
	for _, f := range []func(){
		func() { NewAllocator().Alloc(0) },
		func() { NewAllocator().AllocLines(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
