package mem

// WordIndex returns a's global word number (Addr >> 3). It is the natural
// key for word-granular side tables: simulated addresses come from the
// bump allocator, so word numbers are small and dense.
func WordIndex(a Addr) uint64 { return uint64(a) >> wordShift }

// Dense is a flat table keyed by small dense indices — word numbers
// (WordIndex) or line numbers. The simulated address space is bump
// allocated from address 64 upward, so the engines' per-word values and
// per-line metadata, previously Go maps on the hottest access paths,
// live equally well in a slice indexed directly by word/line number:
// a load is a bounds check instead of a hash.
//
// The zero Dense is empty and ready to use. Load of an index never
// stored returns the zero value, like a map read; Slot grows the table
// (indices stay bounded by Allocator.Brk, so growth is bounded by the
// simulated footprint).
type Dense[T any] struct {
	v []T
}

// Load returns the value at index i, or the zero value when i was never
// stored.
func (d *Dense[T]) Load(i uint64) T {
	if i < uint64(len(d.v)) {
		return d.v[i]
	}
	var zero T
	return zero
}

// Slot returns a pointer to the value at index i, growing the table as
// needed. The pointer is invalidated by the next growing Slot call.
func (d *Dense[T]) Slot(i uint64) *T {
	if i >= uint64(len(d.v)) {
		d.grow(i)
	}
	return &d.v[i]
}

// Store sets the value at index i, growing the table as needed.
func (d *Dense[T]) Store(i uint64, x T) { *d.Slot(i) = x }

// MaxDenseEntries bounds Dense growth. Doubling to an arbitrary maximum
// index silently allocates the whole address-space prefix, so a sparse-key
// bug in a workload (an address computed from corrupt data) turns into a
// quiet OOM; the bound makes it fail loudly instead. Real footprints stay
// far below it — serving-scale workloads with sparse spans belong on
// Paged, which allocates proportional to touched pages.
const MaxDenseEntries = 1 << 26

func (d *Dense[T]) grow(i uint64) {
	if i >= MaxDenseEntries {
		panic("mem: Dense index exceeds MaxDenseEntries — sparse-key bug, or a footprint that belongs on mem.Paged")
	}
	n := uint64(cap(d.v)) * 2
	if n < 1024 {
		n = 1024
	}
	for n <= i {
		n *= 2
	}
	nv := make([]T, n)
	copy(nv, d.v)
	d.v = nv
}

// Slice exposes the backing storage for iteration (index = key). Unlike
// a map range, iteration order is the key order, deterministic by
// construction; most entries are zero values and must be skipped.
func (d *Dense[T]) Slice() []T { return d.v }
