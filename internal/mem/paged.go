package mem

// Paged is a page-granular sparse table keyed by the same small dense
// indices as Dense — word numbers (WordIndex) or line numbers — built for
// serving-scale footprints: a 10⁶+-line address span where a cell touches
// only a sliver of it. Dense grows to the maximum index ever touched, so
// one stray access at index 2²⁴ allocates (and later makes the collector
// walk) the whole prefix. Paged allocates fixed-size pages lazily on
// first write, so the heap tracks the *touched* pages, not the address
// span, and teardown/GC cost does too.
//
// Pages never move once allocated, so — unlike Dense.Slot — a pointer
// returned by Slot stays valid across later growth.
//
// Dirty pages are tracked the same way the cache hierarchy tracks dirty
// replacement-state sets (cache.level dirtyBits/dirtySets): Slot/Store
// record the page on first mutation since the last Reset, and Reset
// clears exactly those pages — reset-to-pristine in O(touched), keeping
// the page allocations for reuse.
//
// The zero Paged is empty and ready to use. SetReference switches the
// table to the retained dense backing (Dense, verbatim) — the
// differential oracle the paged fast path is pinned against at the
// property, engine-registry and report byte-identity levels, following
// the house Reference pattern.
type Paged[T any] struct {
	pages []*pageOf[T]
	dirty []int32 // indices of pages mutated since the last Reset
	ref   *Dense[T]
}

// Page geometry: 4096 entries per page. At 8-byte entries a page is
// 32 KiB — big enough that spine overhead is negligible, small enough
// that a sparse workload pays for little untouched space around each
// touched index.
const (
	pageShift = 12
	// PageEntries is the number of table entries per page.
	PageEntries = 1 << pageShift
	pageMask    = PageEntries - 1

	// maxPageIndex bounds the page spine like MaxDenseEntries bounds
	// Dense: a sparse-key bug (an address computed from corrupt data)
	// fails loudly instead of allocating an enormous spine. 2²⁶ pages
	// cover indices up to 2³⁸ — far past any simulated footprint.
	maxPageIndex = 1 << 26
)

// pageOf is one allocated page plus its dirty mark. The mark lives with
// the page so the Slot fast path touches one cache line for both.
type pageOf[T any] struct {
	dirty bool
	v     [PageEntries]T
}

// SetReference switches the table to the retained dense backing. It must
// be called before the first access; engines call it at construction
// when EngineOptions.ReferenceStore is set.
func (p *Paged[T]) SetReference() {
	if p.ref == nil {
		p.ref = &Dense[T]{}
	}
}

// Reference reports whether the table uses the retained dense backing.
func (p *Paged[T]) Reference() bool { return p.ref != nil }

// Load returns the value at index i, or the zero value when i was never
// stored. It never allocates: reading an absent page leaves it absent.
func (p *Paged[T]) Load(i uint64) T {
	if p.ref != nil {
		return p.ref.Load(i)
	}
	pi := i >> pageShift
	if pi < uint64(len(p.pages)) {
		if pg := p.pages[pi]; pg != nil {
			return pg.v[i&pageMask]
		}
	}
	var zero T
	return zero
}

// Slot returns a pointer to the value at index i, allocating the page on
// first touch. The pointer stays valid across later growth (pages never
// move). The page is marked dirty: Reset will clear it.
func (p *Paged[T]) Slot(i uint64) *T {
	if p.ref != nil {
		return p.ref.Slot(i)
	}
	pi := i >> pageShift
	var pg *pageOf[T]
	if pi < uint64(len(p.pages)) {
		pg = p.pages[pi]
	}
	if pg == nil {
		pg = p.grow(pi)
	}
	if !pg.dirty {
		pg.dirty = true
		p.dirty = append(p.dirty, int32(pi))
	}
	return &pg.v[i&pageMask]
}

// Store sets the value at index i, allocating the page on first touch.
func (p *Paged[T]) Store(i uint64, x T) { *p.Slot(i) = x }

// grow extends the spine to cover page pi and allocates the page.
func (p *Paged[T]) grow(pi uint64) *pageOf[T] {
	if pi >= maxPageIndex {
		panic("mem: Paged index exceeds the address-space bound — a sparse-key bug in the workload, not a footprint limit")
	}
	if pi >= uint64(len(p.pages)) {
		if pi < uint64(cap(p.pages)) {
			p.pages = p.pages[:pi+1]
		} else {
			n := uint64(cap(p.pages)) * 2
			if n < 64 {
				n = 64
			}
			for n <= pi {
				n *= 2
			}
			spine := make([]*pageOf[T], n)
			copy(spine, p.pages)
			p.pages = spine[:pi+1]
		}
	}
	pg := &pageOf[T]{}
	p.pages[pi] = pg
	return pg
}

// Reset returns the table to pristine (every Load yields the zero value)
// in O(pages touched since the last Reset), keeping page allocations for
// reuse — the cache.dirtySets pattern at page granularity. Under the
// dense reference backing the reset is the reference cost: a clear of
// the whole grown prefix.
func (p *Paged[T]) Reset() {
	if p.ref != nil {
		clear(p.ref.v)
		return
	}
	for _, pi := range p.dirty {
		pg := p.pages[pi]
		clear(pg.v[:])
		pg.dirty = false
	}
	p.dirty = p.dirty[:0]
}

// Range calls f for every slot of every allocated page in ascending
// index order — deterministic by construction, like Dense.Slice with the
// absent pages skipped. Entries in never-touched pages hold the zero
// value and are not visited; callers already treat zero entries as
// absent. The *T argument aliases the table slot.
func (p *Paged[T]) Range(f func(i uint64, v *T)) {
	if p.ref != nil {
		for i := range p.ref.v {
			f(uint64(i), &p.ref.v[i])
		}
		return
	}
	for pi, pg := range p.pages {
		if pg == nil {
			continue
		}
		base := uint64(pi) << pageShift
		for j := range pg.v {
			f(base+uint64(j), &pg.v[j])
		}
	}
}

// Pages returns the number of allocated pages — the footprint metric the
// serving-scale tests assert on (heap ∝ touched pages, not address
// span). Under the dense reference backing it reports the equivalent
// page count of the grown prefix.
func (p *Paged[T]) Pages() int {
	if p.ref != nil {
		return (len(p.ref.v) + PageEntries - 1) / PageEntries
	}
	n := 0
	for _, pg := range p.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

// DirtyPages returns the number of pages mutated since the last Reset —
// the exact cost of the next Reset, exposed so tests can pin the
// O(touched) bound.
func (p *Paged[T]) DirtyPages() int {
	if p.ref != nil {
		return (len(p.ref.v) + PageEntries - 1) / PageEntries
	}
	return len(p.dirty)
}
