package mem

import (
	"math/rand/v2"
	"testing"
)

// TestPagedDifferential pins the paged store against the retained dense
// Reference backing: random interleavings of loads, stores, slot
// mutations and resets must observe identical values throughout.
func TestPagedDifferential(t *testing.T) {
	for _, span := range []uint64{100, PageEntries, 3 * PageEntries} {
		r := rand.New(rand.NewPCG(42, span))
		var fast Paged[uint64]
		var slow Paged[uint64]
		slow.SetReference()
		for op := 0; op < 20000; op++ {
			i := r.Uint64N(span)
			switch r.IntN(10) {
			case 0, 1, 2, 3:
				if got, want := fast.Load(i), slow.Load(i); got != want {
					t.Fatalf("span %d op %d: Load(%d) = %d, reference %d", span, op, i, got, want)
				}
			case 4, 5, 6:
				v := r.Uint64()
				fast.Store(i, v)
				slow.Store(i, v)
			case 7, 8:
				*fast.Slot(i) += i + 1
				*slow.Slot(i) += i + 1
			case 9:
				if r.IntN(50) == 0 {
					fast.Reset()
					slow.Reset()
				}
			}
		}
		// Full sweep at the end, including indices never touched.
		for i := uint64(0); i < span; i++ {
			if got, want := fast.Load(i), slow.Load(i); got != want {
				t.Fatalf("span %d final: Load(%d) = %d, reference %d", span, i, got, want)
			}
		}
	}
}

// TestPagedRangeMatchesReference checks Range visits exactly the slots the
// reference backing would report as non-zero, in ascending order.
func TestPagedRangeMatchesReference(t *testing.T) {
	var fast Paged[uint64]
	var slow Paged[uint64]
	slow.SetReference()
	r := rand.New(rand.NewPCG(7, 7))
	for k := 0; k < 500; k++ {
		i := r.Uint64N(8 * PageEntries)
		v := 1 + r.Uint64N(1000)
		fast.Store(i, v)
		slow.Store(i, v)
	}
	collect := func(p *Paged[uint64]) map[uint64]uint64 {
		m := make(map[uint64]uint64)
		last := int64(-1)
		p.Range(func(i uint64, v *uint64) {
			if int64(i) <= last {
				t.Fatalf("Range out of order: %d after %d", i, last)
			}
			last = int64(i)
			if *v != 0 {
				m[i] = *v
			}
		})
		return m
	}
	got, want := collect(&fast), collect(&slow)
	if len(got) != len(want) {
		t.Fatalf("Range saw %d non-zero slots, reference %d", len(got), len(want))
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("Range slot %d = %d, reference %d", i, got[i], v)
		}
	}
}

// TestPagedResetOTouched pins the reset-to-pristine cost: after touching k
// pages, exactly k pages are dirty, Reset clears them, and pages stay
// allocated for reuse.
func TestPagedResetOTouched(t *testing.T) {
	var p Paged[uint64]
	// Touch 3 pages out of a 1000-page span.
	for _, pi := range []uint64{0, 500, 999} {
		p.Store(pi*PageEntries+17, pi+1)
	}
	if got := p.Pages(); got != 3 {
		t.Fatalf("Pages() = %d after touching 3 pages", got)
	}
	if got := p.DirtyPages(); got != 3 {
		t.Fatalf("DirtyPages() = %d after touching 3 pages", got)
	}
	p.Reset()
	if got := p.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages() = %d after Reset", got)
	}
	if got := p.Pages(); got != 3 {
		t.Fatalf("Pages() = %d after Reset; pages must be kept for reuse", got)
	}
	for _, pi := range []uint64{0, 500, 999} {
		if v := p.Load(pi*PageEntries + 17); v != 0 {
			t.Fatalf("Load after Reset = %d, want 0", v)
		}
	}
	// Loads of absent pages never allocate or dirty.
	_ = p.Load(700 * PageEntries)
	if got := p.Pages(); got != 3 {
		t.Fatalf("Pages() = %d after Load of absent page", got)
	}
	if got := p.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages() = %d after Load of absent page", got)
	}
}

// TestPagedSlotStable pins the pointer-stability contract: unlike
// Dense.Slot, a Paged slot pointer survives later growth.
func TestPagedSlotStable(t *testing.T) {
	var p Paged[uint64]
	s := p.Slot(5)
	*s = 99
	p.Store(100*PageEntries, 1) // forces spine growth
	if *s != 99 || p.Load(5) != 99 {
		t.Fatalf("slot pointer invalidated by growth: *s=%d Load=%d", *s, p.Load(5))
	}
}

// TestPagedBound checks the spine bound fails loudly on sparse-key bugs.
func TestPagedBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Slot beyond the address-space bound did not panic")
		}
	}()
	var p Paged[uint64]
	p.Slot(uint64(maxPageIndex) * PageEntries)
}

// TestDenseBound checks Dense growth fails loudly instead of allocating
// the whole address-space prefix.
func TestDenseBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dense.Slot beyond MaxDenseEntries did not panic")
		}
	}()
	var d Dense[uint64]
	d.Slot(MaxDenseEntries)
}
