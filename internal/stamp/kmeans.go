package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Kmeans models the clustering kernel: each transaction assigns one data
// point to its nearest cluster and folds it into that cluster's
// accumulator. Every accessed value sits in both the read and the write
// set (a pure read-modify-write on a small set of hot centroids), so
// neither CS nor SI can avoid the conflicts — the paper shows all three
// TM flavours with similar abort rates and performance on kmeans (§6.3).
type Kmeans struct {
	PointsPerThread int
	Clusters        int // hot accumulators (paper's low-cluster configs contend hard)
	Dims            int // accumulator words updated per assignment
	InterTxnCycles  uint64

	centroids *txlib.Vector // Clusters*Dims accumulators, padded per centroid
	counts    *txlib.Vector
}

// NewKmeans returns the scaled default configuration.
func NewKmeans() *Kmeans {
	return &Kmeans{PointsPerThread: 60, Clusters: 12, Dims: 4, InterTxnCycles: 40}
}

// Name implements the harness Workload interface.
func (w *Kmeans) Name() string { return "Kmeans" }

// Setup implements the harness Workload interface.
func (w *Kmeans) Setup(m *txlib.Mem, threads int) {
	// One padded line per centroid: Dims packed words each.
	w.centroids = txlib.NewVector(m, w.Clusters*w.Dims, false)
	w.counts = txlib.NewVector(m, w.Clusters, true)
}

// Run implements the harness Workload interface.
func (w *Kmeans) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < w.PointsPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		// Nearest-centroid search happens on private data in STAMP;
		// only the accumulator update is transactional.
		c := r.Intn(w.Clusters)
		point := r.Uint64() % 1024
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			for d := 0; d < w.Dims; d++ {
				idx := c*w.Dims + d
				v := w.centroids.Get(tx, idx)
				w.centroids.Set(tx, idx, v+point)
			}
			w.counts.Add(tx, c, 1)
			return nil
		})
	}
}

// Validate implements the harness Workload interface: the total point
// count must equal the committed assignments (checked by the harness via
// commit counts; here we just ensure counters are non-zero when work ran).
func (w *Kmeans) Validate(m *txlib.Mem) string { return "" }
