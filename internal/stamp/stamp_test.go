package stamp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sontm"
	"repro/internal/tm"
	"repro/internal/twopl"
	"repro/internal/txlib"
)

// workload is the structural interface every kernel satisfies.
type workload interface {
	Name() string
	Setup(m *txlib.Mem, threads int)
	Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig)
	Validate(m *txlib.Mem) string
}

// kernels returns one fresh instance of every STAMP kernel.
func kernels() []workload {
	return []workload{NewGenome(), NewIntruder(), NewKmeans(), NewLabyrinth(), NewSSCA2(), NewVacation(), NewBayes()}
}

// driveOn runs w on the given engine with n threads.
func driveOn(t *testing.T, w workload, e tm.Engine, n int, seed uint64) {
	t.Helper()
	m := txlib.NewMem(e)
	w.Setup(m, n)
	sched.New(n, seed).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	if msg := w.Validate(m); msg != "" {
		t.Fatalf("%s validate: %s", w.Name(), msg)
	}
}

func TestEveryKernelRunsOnEveryEngine(t *testing.T) {
	for _, w := range kernels() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			for _, e := range []tm.Engine{
				twopl.New(twopl.DefaultConfig()),
				sontm.New(sontm.DefaultConfig()),
				core.New(core.DefaultConfig()),
			} {
				driveOn(t, w, e, 4, 1)
				if e.Stats().Commits == 0 {
					t.Fatalf("%s on %s committed nothing", w.Name(), e.Name())
				}
				// Fresh workload per engine: Setup reallocates.
				w = freshLike(w)
			}
		})
	}
}

// freshLike returns a new default instance of the same kernel type.
func freshLike(w workload) workload {
	switch w.(type) {
	case *Genome:
		return NewGenome()
	case *Intruder:
		return NewIntruder()
	case *Kmeans:
		return NewKmeans()
	case *Labyrinth:
		return NewLabyrinth()
	case *SSCA2:
		return NewSSCA2()
	case *Vacation:
		return NewVacation()
	case *Bayes:
		return NewBayes()
	}
	panic("unknown kernel")
}

func TestKernelNamesStable(t *testing.T) {
	want := []string{"Genome", "Intruder", "Kmeans", "Labyrinth", "SSCA2", "Vacation", "Bayes"}
	for i, w := range kernels() {
		if w.Name() != want[i] {
			t.Errorf("kernel %d name = %q, want %q", i, w.Name(), want[i])
		}
	}
}

func TestIntruderProcessesEveryPacketOnce(t *testing.T) {
	w := NewIntruder()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	threads := 4
	w.Setup(m, threads)
	sched.New(threads, 3).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	// All packets were seeded; after the run the queue must be empty or
	// hold only the tail beyond PacketsPerThread budgets.
	var remaining int
	sched.New(1, 1).Run(func(th *sched.Thread) {
		_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
			for {
				if _, ok := w.queue.Pop(tx); !ok {
					return nil
				}
				remaining++
			}
		})
	})
	if remaining != 0 {
		t.Fatalf("%d packets left unprocessed", remaining)
	}
}

func TestKmeansAccumulatorConservation(t *testing.T) {
	w := NewKmeans()
	w.PointsPerThread = 25
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 4)
	sched.New(4, 5).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	// Every committed assignment increments exactly one cluster count.
	var total uint64
	for c := 0; c < w.Clusters; c++ {
		total += e.NonTxRead(w.counts.Addr(c))
	}
	if total != uint64(4*25) {
		t.Fatalf("cluster counts sum to %d, want %d", total, 4*25)
	}
}

func TestLabyrinthPathsDisjoint(t *testing.T) {
	w := NewLabyrinth()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 4)
	sched.New(4, 7).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	// Each claimed cell carries the net id that claimed it; committed
	// routes never overwrite each other (they abort instead), so every
	// non-zero cell was claimed exactly once — nothing to count beyond
	// being parseable, but the run must have claimed something.
	var claimed int
	for i := 0; i < w.grid.Len(); i++ {
		if e.NonTxRead(w.grid.Addr(i)) != 0 {
			claimed++
		}
	}
	if claimed == 0 {
		t.Fatal("no cells claimed")
	}
}

func TestSSCA2DegreesBounded(t *testing.T) {
	w := NewSSCA2()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 8)
	sched.New(8, 9).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	if msg := w.Validate(m); msg != "" {
		t.Fatal(msg)
	}
}

func TestVacationNeverOverbooks(t *testing.T) {
	w := NewVacation()
	w.ItemsPerTable = 8 // tiny inventory: overbooking would show
	w.TxnsPerThread = 60
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 8)
	sched.New(8, 11).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	// Capacities are unsigned; booking at 0 is skipped, and WW conflict
	// detection prevents double-booking the same capacity unit, so no
	// item can underflow past zero.
	var total uint64
	check := func(tr *txlib.RBTree) {
		sched.New(1, 1).Run(func(th *sched.Thread) {
			_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
				for k := uint64(1); k <= uint64(w.ItemsPerTable); k++ {
					v, ok := tr.Lookup(tx, k)
					if !ok {
						t.Errorf("item %d missing", k)
						continue
					}
					if v > uint64(w.ItemsPerTable)*1000 {
						t.Errorf("item %d capacity underflowed: %d", k, v)
					}
					total += v
				}
				return nil
			})
		})
	}
	check(w.cars)
	check(w.flights)
	check(w.rooms)
}

func TestBayesTerminates(t *testing.T) {
	w := NewBayes()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 4)
	sched.New(4, 13).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	if e.Stats().Commits == 0 {
		t.Fatal("bayes committed nothing")
	}
	// The 25% read-only ratio must be visible in the stats.
	if e.Stats().ReadOnly == 0 {
		t.Fatal("no read-only transactions recorded")
	}
}

func TestGenomeDeduplicates(t *testing.T) {
	w := NewGenome()
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	w.Setup(m, 4)
	sched.New(4, 15).Run(func(th *sched.Thread) { w.Run(m, th, tm.DefaultBackoff()) })
	// Every segment key appears at most once in the hash set: probe a
	// sample of keys and ensure Get is stable (set semantics are
	// guaranteed by Insert; this exercises the table post-run).
	sched.New(1, 1).Run(func(th *sched.Thread) {
		_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
			for k := uint64(1); k <= 64; k++ {
				if v, ok := w.table.Get(tx, k); ok && v != k {
					t.Errorf("segment %d stored value %d", k, v)
				}
			}
			return nil
		})
	})
}
