package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// SSCA2 models kernel 1 of the Scalable Synthetic Compact Applications
// graph suite: threads insert directed weighted edges into shared
// adjacency arrays. Transactions are tiny (read the vertex's edge count,
// append one slot) and vertices are numerous, so absolute abort rates stay
// below a few percent for every TM flavour and the speedups coincide
// (§6.3).
type SSCA2 struct {
	EdgesPerThread int
	Vertices       int
	MaxDegree      int
	InterTxnCycles uint64

	degrees *txlib.Vector // per-vertex edge count, padded
	adj     *txlib.Vector // Vertices*MaxDegree slots, packed
}

// NewSSCA2 returns the scaled default configuration.
func NewSSCA2() *SSCA2 {
	return &SSCA2{EdgesPerThread: 60, Vertices: 512, MaxDegree: 8, InterTxnCycles: 25}
}

// Name implements the harness Workload interface.
func (w *SSCA2) Name() string { return "SSCA2" }

// Setup implements the harness Workload interface.
func (w *SSCA2) Setup(m *txlib.Mem, threads int) {
	w.degrees = txlib.NewVector(m, w.Vertices, true)
	w.adj = txlib.NewVector(m, w.Vertices*w.MaxDegree, false)
}

// Run implements the harness Workload interface.
func (w *SSCA2) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < w.EdgesPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		u := r.Intn(w.Vertices)
		v := uint64(1 + r.Intn(w.Vertices))
		weight := uint64(1 + r.Intn(255))
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			d := w.degrees.Get(tx, u)
			if int(d) >= w.MaxDegree {
				return nil // adjacency full: drop the edge
			}
			w.adj.Set(tx, u*w.MaxDegree+int(d), v<<8|weight)
			w.degrees.Set(tx, u, d+1)
			return nil
		})
	}
}

// Validate implements the harness Workload interface: no vertex may
// exceed its maximum degree.
func (w *SSCA2) Validate(m *txlib.Mem) string {
	for u := 0; u < w.Vertices; u++ {
		if d := m.E.NonTxRead(w.degrees.Addr(u)); int(d) > w.MaxDegree {
			return "vertex degree exceeds capacity"
		}
	}
	return ""
}
