package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Labyrinth models the path-routing CAD kernel: each transaction routes
// one net through a shared 3D grid, reading the cells along a candidate
// path and, if all are free, claiming them. Transactions are long but the
// grid is large, so absolute abort rates are low for every TM flavour and
// scalability is not limited by the TM policy (§6.3).
type Labyrinth struct {
	RoutesPerThread int
	X, Y, Z         int // grid dimensions
	InterTxnCycles  uint64

	grid *txlib.Vector // packed: cells are words; 0 = free, else net id
}

// NewLabyrinth returns the scaled default configuration.
func NewLabyrinth() *Labyrinth {
	return &Labyrinth{RoutesPerThread: 40, X: 24, Y: 24, Z: 3, InterTxnCycles: 50}
}

// Name implements the harness Workload interface.
func (w *Labyrinth) Name() string { return "Labyrinth" }

// Setup implements the harness Workload interface.
func (w *Labyrinth) Setup(m *txlib.Mem, threads int) {
	w.grid = txlib.NewVector(m, w.X*w.Y*w.Z, false)
}

func (w *Labyrinth) cell(x, y, z int) int { return (z*w.Y+y)*w.X + x }

// Run implements the harness Workload interface.
func (w *Labyrinth) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	net := uint64(th.ID())<<32 | 1
	for i := 0; i < w.RoutesPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		// Manhattan route between two random points on a random layer.
		x0, y0 := r.Intn(w.X), r.Intn(w.Y)
		x1, y1 := r.Intn(w.X), r.Intn(w.Y)
		z := r.Intn(w.Z)
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			var path []int
			for x := min(x0, x1); x <= max(x0, x1); x++ {
				path = append(path, w.cell(x, y0, z))
			}
			for y := min(y0, y1); y <= max(y0, y1); y++ {
				path = append(path, w.cell(x1, y, z))
			}
			// Read phase: the whole candidate path must be free.
			for _, c := range path {
				if w.grid.Get(tx, c) != 0 {
					return nil // blocked: give up this net
				}
			}
			// Write phase: claim the path.
			for _, c := range path {
				w.grid.Set(tx, c, net)
			}
			return nil
		})
		net++
	}
}

// Validate implements the harness Workload interface.
func (w *Labyrinth) Validate(m *txlib.Mem) string { return "" }
