package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Vacation models the online transaction processing system: a travel
// reservation database with car/flight/room relations held in red-black
// trees and customer records in a hash table. A reservation transaction
// browses many items (long tree traversals, a high read ratio) and updates
// the one or two it books. Long read-mostly transactions make vacation an
// ideal SI candidate: the paper measures < 1% of 2PL's aborts and linear
// scaling to 32 threads (§6.3, §6.4).
type Vacation struct {
	TxnsPerThread  int
	ItemsPerTable  int
	QueriesPerTxn  int // items browsed before booking (paper default: ~10)
	ReserveRatio   int // percent of transactions that book (vs pure queries)
	InterTxnCycles uint64

	cars, flights, rooms *txlib.RBTree
	customers            *txlib.Hashtable
}

// NewVacation returns the scaled default configuration.
func NewVacation() *Vacation {
	return &Vacation{TxnsPerThread: 50, ItemsPerTable: 384, QueriesPerTxn: 8, ReserveRatio: 75, InterTxnCycles: 40}
}

// Name implements the harness Workload interface.
func (w *Vacation) Name() string { return "Vacation" }

// Setup implements the harness Workload interface.
func (w *Vacation) Setup(m *txlib.Mem, threads int) {
	w.cars = txlib.NewRBTree(m)
	w.flights = txlib.NewRBTree(m)
	w.rooms = txlib.NewRBTree(m)
	w.customers = txlib.NewHashtable(m, 512)
	keys := make([]uint64, w.ItemsPerTable)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	for _, t := range []*txlib.RBTree{w.cars, w.flights, w.rooms} {
		t.SeedNonTx(keys) // value = key = initial capacity stand-in
	}
}

func (w *Vacation) table(i int) *txlib.RBTree {
	switch i % 3 {
	case 0:
		return w.cars
	case 1:
		return w.flights
	default:
		return w.rooms
	}
}

// Run implements the harness Workload interface.
func (w *Vacation) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	customer := uint64(th.ID())<<16 | 1
	for i := 0; i < w.TxnsPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		reserve := r.Intn(100) < w.ReserveRatio
		// Choose the items to browse up front so retries re-browse
		// the same working set.
		items := make([]int, w.QueriesPerTxn)
		for q := range items {
			items[q] = r.Intn(w.ItemsPerTable) + 1
		}
		kind := r.Intn(3)
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			// Browse: query availability of every item in the
			// working set (pure reads over tree traversals), then
			// book the first available one — as in vacation,
			// clients book the specific items of their own
			// itinerary rather than herding onto a global best.
			best, bestVal := 0, uint64(0)
			for _, it := range items {
				if v, ok := w.table(kind).Lookup(tx, uint64(it)); ok && v > 0 && best == 0 {
					best, bestVal = it, v
				}
			}
			if reserve && best != 0 {
				// Book: decrement capacity, record reservation.
				w.table(kind).Set(tx, uint64(best), bestVal-1)
				w.customers.Add(tx, customer, 1)
			}
			return nil
		})
		customer++
	}
}

// Validate implements the harness Workload interface.
func (w *Vacation) Validate(m *txlib.Mem) string { return "" }
