// Package stamp re-implements the transactional structure of the seven
// STAMP applications the paper evaluates (§6.2): genome, intruder, kmeans,
// labyrinth, ssca2, vacation and bayes. The kernels are original Go
// programs that preserve what determines abort behaviour — the read:write
// ratio, transaction length, read-only fraction and contention footprint
// of each application's transactions — while scaling the input sizes down
// so a full figure sweep runs in seconds. Every kernel satisfies the
// harness Workload interface structurally.
package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// atomicOp runs body as one transaction with the configured backoff,
// ignoring engine aborts (they are counted by the engine and retried).
func atomicOp(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig, body func(tx tm.Txn) error) {
	_ = tm.Atomic(m.E, th, bo, body)
}
