package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Bayes models Bayesian network structure learning: threads pop candidate
// edges from a shared task heap, score them by reading a long stretch of
// the shared adjacency/score state (few but long and costly transactions),
// and occasionally commit an edge insertion plus follow-up tasks. A
// quarter of the transactions are pure score queries — the 25% read-only
// ratio the paper cites when explaining SI's ~20x abort reduction and 10x
// speedup at 32 threads (§6.3, §6.4).
type Bayes struct {
	TasksPerThread int
	Vars           int // network variables
	ScoreReads     int // adjacency cells read per scoring pass
	ReadOnlyPct    int // pure query transactions (paper: 25)
	InterTxnCycles uint64

	adj   *txlib.Vector // Vars*Vars adjacency, packed
	tasks *txlib.Heap
}

// NewBayes returns the scaled default configuration.
func NewBayes() *Bayes {
	return &Bayes{TasksPerThread: 30, Vars: 48, ScoreReads: 64, ReadOnlyPct: 25, InterTxnCycles: 60}
}

// Name implements the harness Workload interface.
func (w *Bayes) Name() string { return "Bayes" }

// Setup implements the harness Workload interface.
func (w *Bayes) Setup(m *txlib.Mem, threads int) {
	w.adj = txlib.NewVector(m, w.Vars*w.Vars, false)
	w.tasks = txlib.NewHeap(m, 4096)
	r := sched.NewRand(31337)
	seed := make([]uint64, w.TasksPerThread*threads)
	for i := range seed {
		u, v := r.Intn(w.Vars), r.Intn(w.Vars)
		seed[i] = uint64(u*w.Vars+v) + 1
	}
	w.tasks.SeedNonTx(seed)
}

// Run implements the harness Workload interface.
func (w *Bayes) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < w.TasksPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		if r.Intn(100) < w.ReadOnlyPct {
			// Pure score query: long read-only scan of the
			// adjacency state.
			start := r.Intn(w.Vars * w.Vars)
			atomicOp(m, th, bo, func(tx tm.Txn) error {
				var s uint64
				for k := 0; k < w.ScoreReads; k++ {
					s += w.adj.Get(tx, (start+k)%(w.Vars*w.Vars))
				}
				return nil
			})
			continue
		}
		// Learning step: pop a task, score it (long reads), maybe
		// insert the edge and enqueue follow-ups.
		var task uint64
		var ok bool
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			task, ok = w.tasks.Pop(tx)
			return nil
		})
		if !ok {
			task = uint64(r.Intn(w.Vars*w.Vars)) + 1
		}
		cell := int(task-1) % (w.Vars * w.Vars)
		accept := r.Intn(100) < 30
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			var score uint64
			for k := 0; k < w.ScoreReads; k++ {
				score += w.adj.Get(tx, (cell+k*7)%(w.Vars*w.Vars))
			}
			// Insert the edge only when the score test passes: most
			// learning steps evaluate a candidate and reject it, so
			// the long transactions stay read-dominated.
			if accept {
				w.adj.Set(tx, cell, task)
			}
			return nil
		})
		if r.Intn(4) == 0 {
			atomicOp(m, th, bo, func(tx tm.Txn) error {
				w.tasks.Push(tx, uint64(r.Intn(w.Vars*w.Vars))+1)
				return nil
			})
		}
	}
}

// Validate implements the harness Workload interface.
func (w *Bayes) Validate(m *txlib.Mem) string { return "" }
