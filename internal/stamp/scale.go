package stamp

// Scale implementations grow the kernels toward the paper's STAMP
// configurations; transaction structure is unchanged, only input sizes and
// per-thread work multiply.

// Scale implements harness.Scalable.
func (g *Genome) Scale(factor int) {
	if factor < 1 {
		return
	}
	g.Segments *= factor
	g.KeySpace *= factor
	g.Buckets *= factor
}

// Scale implements harness.Scalable.
func (w *Intruder) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.PacketsPerThread *= factor
	w.Flows *= factor
}

// Scale implements harness.Scalable.
func (w *Kmeans) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.PointsPerThread *= factor
	w.Clusters *= factor
}

// Scale implements harness.Scalable.
func (w *Labyrinth) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.RoutesPerThread *= factor
	w.X *= factor
	w.Y *= factor
}

// Scale implements harness.Scalable.
func (w *SSCA2) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.EdgesPerThread *= factor
	w.Vertices *= factor
}

// Scale implements harness.Scalable.
func (w *Vacation) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.TxnsPerThread *= factor
	w.ItemsPerTable *= factor
}

// Scale implements harness.Scalable.
func (w *Bayes) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.TasksPerThread *= factor
	w.Vars *= factor
}
