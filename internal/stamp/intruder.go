package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Intruder models signature-based network intrusion detection: threads pop
// packet fragments from a shared work queue, then reassemble them in a
// shared session map — a sorted list keyed by flow, as in the original
// application, whose transactions are dominated by traversal reads over
// shared chains with a single fragment-mask write at the end. The paper
// notes intruder "only utilizes transactions to perform concurrent access
// to data structures including a list and a tree which ... perform well
// under SI": the traversals make 2PL and CS abort on read-write conflicts
// while SI only aborts on same-flow or queue-head write-write conflicts
// (§6.3: 50x fewer aborts than 2PL, 40x fewer than CS at 32 threads).
type Intruder struct {
	PacketsPerThread int
	Flows            int    // concurrent flow descriptors
	FragmentsPerFlow int    // fragments to complete a flow
	DecodeCycles     uint64 // non-transactional decode work per packet
	InterTxnCycles   uint64

	queue      *txlib.Queue
	sessions   *txlib.List   // flow id -> fragment mask, traversed per packet
	detections *txlib.Vector // per-thread detection counters, padded
}

// NewIntruder returns the scaled default configuration.
func NewIntruder() *Intruder {
	return &Intruder{PacketsPerThread: 50, Flows: 96, FragmentsPerFlow: 4, DecodeCycles: 350, InterTxnCycles: 30}
}

// Name implements the harness Workload interface.
func (w *Intruder) Name() string { return "Intruder" }

// Setup implements the harness Workload interface.
func (w *Intruder) Setup(m *txlib.Mem, threads int) {
	w.queue = txlib.NewQueue(m)
	w.sessions = txlib.NewList(m)
	w.detections = txlib.NewVector(m, threads, true)
	// Pre-load the packet queue: packets cycle through flows and
	// fragment indices; flows are pre-registered so the session map has
	// realistic traversal depth from the start.
	r := sched.NewRand(4242)
	var flowKeys []uint64
	for f := 1; f <= w.Flows; f++ {
		flowKeys = append(flowKeys, uint64(f))
	}
	w.sessions.SeedNonTx(flowKeys)
	total := w.PacketsPerThread * threads
	pkts := make([]uint64, total)
	for i := range pkts {
		flow := uint64(1 + r.Intn(w.Flows))
		frag := uint64(r.Intn(w.FragmentsPerFlow))
		pkts[i] = flow<<8 | frag
	}
	w.queue.SeedNonTx(pkts)
}

// popBatch is how many packets one queue transaction grabs; batching
// amortises the write-write hot spot on the queue head across several
// packets' worth of work.
const popBatch = 4

// Run implements the harness Workload interface.
func (w *Intruder) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	full := uint64(1)<<w.FragmentsPerFlow - 1
	handled := 0
	for handled < w.PacketsPerThread {
		th.LocalTick(w.InterTxnCycles)
		// Transaction 1: grab a batch of packets from the shared
		// queue.
		var batch []uint64
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			batch = batch[:0]
			for len(batch) < popBatch {
				pkt, ok := w.queue.Pop(tx)
				if !ok {
					break
				}
				batch = append(batch, pkt)
			}
			return nil
		})
		if len(batch) == 0 {
			return // queue drained by other threads
		}
		for _, pkt := range batch {
			handled++
			// Decode the fragment — thread-local work between
			// the transactions, as in the original application.
			th.LocalTick(w.DecodeCycles)
			flow, frag := pkt>>8, pkt&0xff
			// Transaction 2: reassemble — traverse the session
			// list to the flow entry (a long shared read path),
			// merge our fragment bit, and count a detection when
			// the flow completes.
			atomicOp(m, th, bo, func(tx tm.Txn) error {
				mask, _ := w.sessions.Get(tx, flow)
				mask |= 1 << frag
				if mask == full {
					w.sessions.Set(tx, flow, 0)
					w.detections.Add(tx, th.ID(), 1)
				} else {
					w.sessions.Set(tx, flow, mask)
				}
				return nil
			})
		}
	}
}

// Validate implements the harness Workload interface.
func (w *Intruder) Validate(m *txlib.Mem) string { return "" }
