package stamp

import (
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Genome models the gene-sequencing application: phase one deduplicates
// DNA segments by inserting them into a shared hash set; phase two matches
// overlapping segments, probing the table for several candidate suffixes
// (a read-heavy scan) and recording at most one link. Conflicts are
// read-write on bucket chains almost everywhere, which is why both CS and
// SI cut aborts dramatically over 2PL and end up on par (§6.3).
type Genome struct {
	Segments       int // segments handled per thread
	KeySpace       int // distinct segment identifiers
	Buckets        int
	ProbesPerMatch int // table probes per match transaction
	InterTxnCycles uint64

	table   *txlib.Hashtable
	links   *txlib.Vector
	barrier *sched.Barrier
}

// NewGenome returns the scaled default configuration.
func NewGenome() *Genome {
	return &Genome{Segments: 60, KeySpace: 2048, Buckets: 128, ProbesPerMatch: 12, InterTxnCycles: 30}
}

// Name implements the harness Workload interface.
func (g *Genome) Name() string { return "Genome" }

// Setup implements the harness Workload interface.
func (g *Genome) Setup(m *txlib.Mem, threads int) {
	g.table = txlib.NewHashtable(m, g.Buckets)
	g.links = txlib.NewVector(m, g.KeySpace, true)
	g.barrier = sched.NewBarrier(threads)
}

// Run implements the harness Workload interface.
func (g *Genome) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	// Phase 1: segment deduplication — insert-if-absent transactions.
	for i := 0; i < g.Segments; i++ {
		th.LocalTick(g.InterTxnCycles)
		seg := uint64(1 + r.Intn(g.KeySpace))
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			g.table.Insert(tx, seg, seg)
			return nil
		})
	}
	// The matching phase begins only after every thread finished
	// deduplicating, as in the original application's phase barrier.
	g.barrier.Wait(th)
	// Phase 2: overlap matching — probe several candidate suffixes
	// (reads), then record one link (single write).
	for i := 0; i < g.Segments; i++ {
		th.LocalTick(g.InterTxnCycles)
		seg := uint64(1 + r.Intn(g.KeySpace))
		atomicOp(m, th, bo, func(tx tm.Txn) error {
			var match uint64
			for p := 0; p < g.ProbesPerMatch; p++ {
				cand := uint64(1 + (int(seg)+p*31)%g.KeySpace)
				if g.table.Contains(tx, cand) {
					match = cand
				}
			}
			if match != 0 {
				g.links.Set(tx, int(seg)%g.KeySpace, match)
			}
			return nil
		})
	}
}

// Validate implements the harness Workload interface.
func (g *Genome) Validate(m *txlib.Mem) string { return "" }
