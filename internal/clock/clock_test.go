package clock

import (
	"testing"
	"testing/quick"
)

func TestBeginMonotonicUnique(t *testing.T) {
	c := New()
	var last Timestamp
	for i := 0; i < 100; i++ {
		s := c.Begin()
		if s <= last {
			t.Fatalf("start %d not above previous %d", s, last)
		}
		last = s
	}
}

func TestEndAboveAllStarts(t *testing.T) {
	c := New()
	s1 := c.Begin()
	s2 := c.Begin()
	e := c.ReserveEnd()
	if e <= s1 || e <= s2 {
		t.Fatalf("end %d not above starts %d,%d", e, s1, s2)
	}
	c.CompleteEnd(e)
}

func TestMustStallWhileInFlight(t *testing.T) {
	c := New()
	if c.MustStall() {
		t.Fatal("fresh clock must not stall")
	}
	e := c.ReserveEnd()
	if !c.MustStall() {
		t.Fatal("in-flight commit must stall starters")
	}
	c.CompleteEnd(e)
	if c.MustStall() {
		t.Fatal("drained window must not stall")
	}
}

func TestBeginPanicsWhileInFlight(t *testing.T) {
	c := New()
	c.ReserveEnd()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Begin()
}

func TestOverlappingCommitsCompleteAnyOrder(t *testing.T) {
	c := New()
	e1 := c.ReserveEnd()
	e2 := c.ReserveEnd()
	if o, ok := c.OldestInflight(); !ok || o != e1 {
		t.Fatalf("oldest in flight = %d,%v want %d", o, ok, e1)
	}
	c.CompleteEnd(e2) // out of order completion is allowed
	if o, ok := c.OldestInflight(); !ok || o != e1 {
		t.Fatalf("oldest in flight after e2 = %d,%v want %d", o, ok, e1)
	}
	c.CompleteEnd(e1)
	if _, ok := c.OldestInflight(); ok {
		t.Fatal("window should be empty")
	}
	// Starts after drain are above both ends.
	if s := c.Begin(); s <= e2 {
		t.Fatalf("post-drain start %d not above end %d", s, e2)
	}
}

func TestCompleteEndUnknownPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.CompleteEnd(42)
}

func TestStartsNeverReachInflightEnds(t *testing.T) {
	// Property: any interleaving of Begin (when allowed) and
	// Reserve/Complete keeps every start below every end that was in
	// flight when the start was issued.
	f := func(ops []bool) bool {
		c := New()
		var inflight []Timestamp
		for _, commit := range ops {
			if commit {
				if len(inflight) > 0 && len(inflight)%2 == 0 {
					// complete the oldest half the time
					c.CompleteEnd(inflight[0])
					inflight = inflight[1:]
				} else {
					inflight = append(inflight, c.ReserveEnd())
				}
			} else if !c.MustStall() {
				s := c.Begin()
				for _, e := range inflight {
					if s >= e {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveTableOldest(t *testing.T) {
	a := NewActiveTable()
	if _, ok := a.OldestActive(); ok {
		t.Fatal("empty table has no oldest")
	}
	a.Register(10)
	a.Register(5)
	a.Register(7)
	if o, ok := a.OldestActive(); !ok || o != 5 {
		t.Fatalf("oldest = %d,%v want 5", o, ok)
	}
	a.Deregister(5)
	if o, _ := a.OldestActive(); o != 7 {
		t.Fatalf("oldest = %d want 7", o)
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d want 2", a.Len())
	}
}

func TestActiveTableDuplicates(t *testing.T) {
	a := NewActiveTable()
	a.Register(3)
	a.Register(3)
	a.Deregister(3)
	if o, ok := a.OldestActive(); !ok || o != 3 {
		t.Fatalf("oldest = %d,%v want 3 (one copy left)", o, ok)
	}
}

func TestActiveTableDeregisterUnknownPanics(t *testing.T) {
	a := NewActiveTable()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Deregister(1)
}

func TestActiveTableAnyIn(t *testing.T) {
	a := NewActiveTable()
	a.Register(5)
	cases := []struct {
		lo, hi Timestamp
		want   bool
	}{
		{0, 5, false}, // half-open: 5 not in [0,5)
		{5, 6, true},  // 5 in [5,6)
		{4, 10, true},
		{6, 10, false},
	}
	for _, c := range cases {
		if got := a.AnyIn(c.lo, c.hi); got != c.want {
			t.Errorf("AnyIn(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestActiveTableStaysSorted(t *testing.T) {
	// The MVM garbage collector merge-walks Starts() against a line's
	// ascending version list; the table must keep the slice sorted under
	// any register/deregister interleaving.
	f := func(ops []uint8) bool {
		a := NewActiveTable()
		var live []Timestamp
		for _, op := range ops {
			if op&1 == 0 || len(live) == 0 {
				s := Timestamp(op >> 1)
				a.Register(s)
				live = append(live, s)
			} else {
				victim := int(op>>1) % len(live)
				a.Deregister(live[victim])
				live = append(live[:victim], live[victim+1:]...)
			}
			ss := a.Starts()
			if len(ss) != len(live) {
				return false
			}
			for i := 1; i < len(ss); i++ {
				if ss[i-1] > ss[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveTableAnyInProperty(t *testing.T) {
	f := func(starts []uint8, lo, hi uint8) bool {
		a := NewActiveTable()
		want := false
		for _, s := range starts {
			a.Register(Timestamp(s))
			if Timestamp(lo) <= Timestamp(s) && Timestamp(s) < Timestamp(hi) {
				want = true
			}
		}
		return a.AnyIn(Timestamp(lo), Timestamp(hi)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
