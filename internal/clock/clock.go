// Package clock provides the global timestamp machinery of SI-TM (§4.1,
// §4.2): a global timestamp counter handing out start and end timestamps,
// the Δ-reservation commit window that prevents newly started transactions
// from observing partially committed write sets, and the active-transaction
// table used by the multiversioned memory for garbage collection and
// version coalescing (§3.1).
//
// The paper's hardware obtains an end timestamp equal to the current global
// timestamp plus Δ, so that transactions which begin while the commit is in
// progress cannot observe its half-installed write set, and stalls starters
// that would catch up with an in-flight commit (§4.2). This package
// realises the same guarantee in software with an in-flight window: end
// timestamps are reserved strictly above every start timestamp issued so
// far, and transactions that want to begin while any commit is in flight
// stall until the window drains. Stalling starters is the paper's own
// escape hatch for the exhausted-Δ case; applying it whenever a commit is
// in flight additionally keeps version coalescing safe, because a future
// snapshot can then never land between a coalesced-away version and its
// replacement (fresh start timestamps are always above every issued end).
package clock

import "fmt"

// Timestamp is a point in the global transactional time of the machine.
// Timestamp 0 precedes every transaction; pre-existing (initial) data is
// installed at timestamp 0.
type Timestamp uint64

// Clock is the global timestamp counter plus the in-flight commit window.
// It is used only under the deterministic scheduler and needs no locking.
type Clock struct {
	// next is the source of monotonically increasing timestamps.
	next Timestamp
	// inflight holds end timestamps of commits that are reserved but
	// not yet completed, in ascending (reservation) order.
	inflight []Timestamp

	// MaxInflight bounds how many commits may be in flight at once —
	// the hardware Δ of §4.2. 0 means unbounded. When the window is
	// full, the paper stalls the next starting transaction.
	MaxInflight int

	// Stalls counts how often a transaction had to stall on a full
	// commit window.
	Stalls uint64
}

// New returns a clock at time zero.
func New() *Clock { return &Clock{} }

// Begin issues a unique start timestamp for a new transaction. It must be
// called only when no commit is in flight (MustStall reports that); the
// engine stalls the thread otherwise. Because ends are reserved above every
// issued timestamp and begins wait out in-flight commits, a start timestamp
// is always above every committed version and below every future install,
// so the snapshot at start is transaction-consistent.
func (c *Clock) Begin() Timestamp {
	if len(c.inflight) > 0 {
		panic("clock: Begin while commits are in flight")
	}
	c.next++
	return c.next
}

// MustStall reports whether a transaction wanting to begin has to stall:
// either a commit is in flight, or the bounded window is exhausted (§4.2:
// the starting transaction stalls until the commit is processed).
func (c *Clock) MustStall() bool {
	if len(c.inflight) > 0 {
		return true
	}
	return c.MaxInflight > 0 && len(c.inflight) >= c.MaxInflight
}

// ReserveEnd reserves an end timestamp for a committing transaction. The
// end is strictly greater than every start timestamp issued so far, so
// versions installed at this timestamp are invisible to all concurrent
// snapshots until the commit completes and later transactions begin above
// it.
func (c *Clock) ReserveEnd() Timestamp {
	c.next++
	end := c.next
	c.inflight = append(c.inflight, end)
	return end
}

// CompleteEnd retires a reservation made by ReserveEnd, whether the commit
// succeeded or rolled back.
func (c *Clock) CompleteEnd(end Timestamp) {
	for i, e := range c.inflight {
		if e == end {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("clock: CompleteEnd(%d) not in flight", end))
}

// InFlight returns the number of unfinished commits.
func (c *Clock) InFlight() int { return len(c.inflight) }

// OldestInflight returns the smallest unfinished end timestamp and true,
// or 0 and false when no commit is in flight. Ends are issued
// monotonically and CompleteEnd removes in place, so the slice stays
// ascending and the head is the oldest — no scan.
func (c *Clock) OldestInflight() (Timestamp, bool) {
	if len(c.inflight) == 0 {
		return 0, false
	}
	return c.inflight[0], true
}

// Now returns the most recently issued timestamp.
func (c *Clock) Now() Timestamp { return c.next }

// ActiveTable tracks the start timestamps of in-flight transactions as a
// sorted small-set (ascending). The paper stores these in a priority queue
// whose head is the oldest active transaction (§3.1); keeping the slice
// sorted makes the head query O(1) and lets interval and reachability
// queries stop scanning early. The population is bounded by the hardware
// thread count, and starts are issued monotonically, so the sorted insert
// is an O(1) append on the hot path and the table never allocates once it
// has grown to the thread count.
type ActiveTable struct {
	starts []Timestamp // sorted ascending
}

// NewActiveTable returns an empty table.
func NewActiveTable() *ActiveTable { return &ActiveTable{} }

// Register records a transaction's start timestamp. Timestamps come from
// Clock.Begin in increasing order, so the insertion point is almost always
// the end of the slice.
func (t *ActiveTable) Register(s Timestamp) {
	t.starts = append(t.starts, s)
	for i := len(t.starts) - 1; i > 0 && t.starts[i-1] > s; i-- {
		t.starts[i] = t.starts[i-1]
		t.starts[i-1] = s
	}
}

// Deregister removes one occurrence of start timestamp s, preserving the
// sorted order. It panics if s is not registered, which would indicate an
// engine bookkeeping bug.
func (t *ActiveTable) Deregister(s Timestamp) {
	for i, v := range t.starts {
		if v == s {
			t.starts = append(t.starts[:i], t.starts[i+1:]...)
			return
		}
		if v > s {
			break // sorted: s cannot appear later
		}
	}
	panic(fmt.Sprintf("clock: Deregister(%d) not active", s))
}

// OldestActive returns the smallest registered start timestamp and true,
// or 0 and false if no transaction is active. O(1): the head of the
// sorted set.
func (t *ActiveTable) OldestActive() (Timestamp, bool) {
	if len(t.starts) == 0 {
		return 0, false
	}
	return t.starts[0], true
}

// AnyIn reports whether some active start timestamp s satisfies
// lo <= s < hi. Version coalescing creates a new version only if a start
// timestamp separates it from the previous version (§3.1). The scan stops
// at the first start >= hi; on the commit path hi is the newest timestamp
// in the system, so the decision usually falls out of the first elements.
func (t *ActiveTable) AnyIn(lo, hi Timestamp) bool {
	for _, v := range t.starts {
		if v >= hi {
			return false
		}
		if v >= lo {
			return true
		}
	}
	return false
}

// Len returns the number of active transactions.
func (t *ActiveTable) Len() int { return len(t.starts) }

// Starts returns the registered start timestamps in ascending order
// (shared slice; callers must not modify it). The multiversioned memory's
// garbage collector merge-walks it against a line's version list.
func (t *ActiveTable) Starts() []Timestamp { return t.starts }
