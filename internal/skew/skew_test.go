package skew

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// runSI executes body on n threads with a fresh SI-TM engine and an
// attached recorder.
func runSI(n int, seed uint64, body func(m *txlib.Mem, th *sched.Thread)) (*Recorder, *txlib.Mem) {
	e := core.New(core.DefaultConfig())
	rec := NewRecorder()
	e.SetTracer(rec)
	m := txlib.NewMem(e)
	sched.New(n, seed).Run(func(th *sched.Thread) { body(m, th) })
	return rec, m
}

// TestListing1WriteSkew reproduces the paper's Listing 1: two concurrent
// withdrawals on disjoint accounts slip past SI; the tool must find the
// cycle and name the withdraw sites.
func TestListing1WriteSkew(t *testing.T) {
	e := core.New(core.DefaultConfig())
	rec := NewRecorder()
	e.SetTracer(rec)
	m := txlib.NewMem(e)
	checking := m.A.AllocLines(1)
	saving := m.A.AllocLines(1)
	e.NonTxWrite(checking, 60)
	e.NonTxWrite(saving, 60)

	sched.New(1, 1).Run(func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		withdraw := func(tx tm.Txn, fromChecking bool) {
			tx.Site("bank.check")
			if tx.Read(checking)+tx.Read(saving) > 100 {
				tx.Site("bank.withdraw")
				if fromChecking {
					tx.Write(checking, tx.Read(checking)-100)
				} else {
					tx.Write(saving, tx.Read(saving)-100)
				}
			}
		}
		withdraw(t1, true)
		withdraw(t2, false)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2: %v", err)
		}
	})

	rep := rec.Analyze()
	if !rep.HasSkew() {
		t.Fatal("tool failed to detect the Listing 1 write skew")
	}
	joined := strings.Join(rep.Sites, " ")
	if !strings.Contains(joined, "bank.check") && !strings.Contains(joined, "bank.withdraw") {
		t.Fatalf("offending sites not identified: %v", rep.Sites)
	}
	if !strings.Contains(rep.String(), "write-skew") {
		t.Fatalf("report rendering: %s", rep.String())
	}
}

// TestListing1PromotionRepairs applies the tool's automatic repair and
// verifies the skew can no longer commit on a fresh engine.
func TestListing1PromotionRepairs(t *testing.T) {
	// First run: detect.
	rep := func() *Report {
		e := core.New(core.DefaultConfig())
		rec := NewRecorder()
		e.SetTracer(rec)
		m := txlib.NewMem(e)
		a1, a2 := m.A.AllocLines(1), m.A.AllocLines(1)
		e.NonTxWrite(a1, 60)
		e.NonTxWrite(a2, 60)
		sched.New(1, 1).Run(func(th *sched.Thread) {
			t1, t2 := e.Begin(th), e.Begin(th)
			t1.Site("bank.check")
			_, _ = t1.Read(a1), t1.Read(a2)
			t1.Site("bank.withdraw").Write(a1, 0)
			t2.Site("bank.check")
			_, _ = t2.Read(a1), t2.Read(a2)
			t2.Site("bank.withdraw").Write(a2, 0)
			_ = t1.Commit()
			_ = t2.Commit()
		})
		return rec.Analyze()
	}()
	if !rep.HasSkew() {
		t.Fatal("detection run found nothing")
	}

	// Second run: repaired engine must abort one transaction.
	e := core.New(core.DefaultConfig())
	rep.Promote(e)
	m := txlib.NewMem(e)
	a1, a2 := m.A.AllocLines(1), m.A.AllocLines(1)
	e.NonTxWrite(a1, 60)
	e.NonTxWrite(a2, 60)
	aborts := 0
	sched.New(1, 1).Run(func(th *sched.Thread) {
		t1, t2 := e.Begin(th), e.Begin(th)
		t1.Site("bank.check")
		_, _ = t1.Read(a1), t1.Read(a2)
		t1.Site("bank.withdraw").Write(a1, 0)
		t2.Site("bank.check")
		_, _ = t2.Read(a1), t2.Read(a2)
		t2.Site("bank.withdraw").Write(a2, 0)
		if t1.Commit() != nil {
			aborts++
		}
		if t2.Commit() != nil {
			aborts++
		}
	})
	if aborts == 0 {
		t.Fatal("promotion did not prevent the write skew")
	}
	sum := e.NonTxRead(a1) + e.NonTxRead(a2)
	if sum < 60 {
		t.Fatalf("invariant still broken after repair: sum=%d", sum)
	}
}

// TestListing2ListSkew drives the unsafe linked-list removal (Listing 2
// without line 10) until adjacent concurrent removes corrupt the list,
// and checks the tool localises the traversal/remove sites.
func TestListing2ListSkew(t *testing.T) {
	e := core.New(core.DefaultConfig())
	rec := NewRecorder()
	e.SetTracer(rec)
	m := txlib.NewMem(e)
	l := txlib.NewList(m)
	l.UnsafeRemove = true
	l.SeedNonTx([]uint64{10, 20, 30, 40, 50})

	// Two logical threads remove adjacent elements concurrently.
	sched.New(2, 3).Run(func(th *sched.Thread) {
		k := uint64(20)
		if th.ID() == 1 {
			k = 30
		}
		tx := e.Begin(th)
		l.Remove(tx, k)
		if err := tx.Commit(); err != nil {
			t.Errorf("thread %d: %v (disjoint writes must both commit)", th.ID(), err)
		}
	})

	// The list is now inconsistent: 30 was "removed" but is still
	// reachable through 10 -> 30 (20's unlink redirected to 30).
	keys := l.KeysNonTx()
	has30 := false
	for _, k := range keys {
		if k == 30 {
			has30 = true
		}
	}
	if !has30 {
		t.Log("schedule did not corrupt; still expecting cycle detection")
	}

	rep := rec.Analyze()
	if !rep.HasSkew() {
		t.Fatal("tool failed to detect the Listing 2 write skew")
	}
	found := false
	for _, s := range rep.Sites {
		if strings.HasPrefix(s, "list.") {
			found = true
		}
	}
	if !found {
		t.Fatalf("list sites not identified: %v", rep.Sites)
	}
}

// TestListing2FixForcesConflict verifies the line-10 fix: with safe
// removal the same schedule produces a write-write conflict instead.
func TestListing2FixForcesConflict(t *testing.T) {
	e := core.New(core.DefaultConfig())
	m := txlib.NewMem(e)
	l := txlib.NewList(m) // safe removal by default
	l.SeedNonTx([]uint64{10, 20, 30, 40, 50})
	var errs int
	sched.New(2, 3).Run(func(th *sched.Thread) {
		k := uint64(20)
		if th.ID() == 1 {
			k = 30
		}
		tx := e.Begin(th)
		l.Remove(tx, k)
		if err := tx.Commit(); err != nil {
			errs++
		}
	})
	if errs == 0 {
		t.Fatal("safe removal must force a write-write conflict on adjacent removes")
	}
	// Whatever committed, the list must be consistent: strictly sorted.
	keys := l.KeysNonTx()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("list corrupt: %v", keys)
		}
	}
}

// TestNoFalseSkewOnSerialRuns checks that non-overlapping transactions
// produce no candidates.
func TestNoFalseSkewOnSerialRuns(t *testing.T) {
	rec, _ := runSI(1, 1, func(m *txlib.Mem, th *sched.Thread) {
		e := m.E
		a := m.A.AllocLines(1)
		for i := 0; i < 10; i++ {
			tx := e.Begin(th)
			v := tx.Read(a)
			tx.Write(a, v+1)
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
	})
	rep := rec.Analyze()
	if rep.HasSkew() {
		t.Fatalf("false positive on serial schedule: %s", rep)
	}
}

// TestRBTreeSkewDetected reproduces the paper's finding of write skews in
// the red-black tree: concurrent unpromoted updates create rw-dependency
// cycles the tool reports.
func TestRBTreeSkewDetected(t *testing.T) {
	e := core.New(core.DefaultConfig()) // no promotion: raw tree
	rec := NewRecorder()
	e.SetTracer(rec)
	m := txlib.NewMem(e)
	tr := txlib.NewRBTree(m)
	var seedKeys []uint64
	for i := uint64(1); i <= 40; i++ {
		seedKeys = append(seedKeys, i*2)
	}
	tr.SeedNonTx(seedKeys)
	sched.New(4, 5).Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 15; i++ {
			_ = tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
				k := uint64(1 + r.Intn(80))
				if r.Intn(2) == 0 {
					tr.Insert(tx, k, k)
				} else {
					tr.Delete(tx, k)
				}
				return nil
			})
		}
	})
	rep := rec.Analyze()
	if !rep.HasSkew() {
		t.Skip("schedule exercised no dangerous cycle (tool is best-effort)")
	}
	foundTreeSite := false
	for _, s := range rep.Sites {
		if strings.HasPrefix(s, "rbtree.") {
			foundTreeSite = true
		}
	}
	if !foundTreeSite {
		t.Fatalf("tree sites not identified: %v", rep.Sites)
	}
}

func TestRecorderCounts(t *testing.T) {
	rec, _ := runSI(1, 1, func(m *txlib.Mem, th *sched.Thread) {
		e := m.E
		a := m.A.AllocLines(1)
		tx := e.Begin(th)
		tx.Write(a, 1)
		_ = tx.Commit()
		tx2 := e.Begin(th)
		tx2.Write(a, 2)
		tx2.Abort()
	})
	if rec.Committed() != 1 {
		t.Fatalf("committed = %d, want 1 (aborted attempts excluded)", rec.Committed())
	}
	if rec.Events() == 0 {
		t.Fatal("no events recorded")
	}
}

func TestSharedDSGCore(t *testing.T) {
	// Analyze now runs on internal/mc's serialization graph; pin the two
	// properties it relies on. Cycle search: 0 -> 1 -> 2 -> 0 plus a
	// chain 3 -> 0 yields exactly the 3-cycle.
	g := mc.NewGraph(4)
	g.Add(0, 1, mc.RW, "")
	g.Add(1, 2, mc.RW, "")
	g.Add(2, 0, mc.RW, "")
	g.Add(3, 0, mc.RW, "")
	comps := g.CyclicComponents()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("CyclicComponents = %v, want one 3-cycle", comps)
	}
	// Dedup: a duplicate (reader, writer) edge is dropped and the first
	// read site kept — the hand-rolled seenEdge behaviour Analyze had
	// before the refactor.
	g2 := mc.NewGraph(2)
	g2.Add(0, 1, mc.RW, "siteA")
	g2.Add(0, 1, mc.RW, "siteB")
	if g2.NumEdges() != 1 || g2.Edges(0)[0].Label != "siteA" {
		t.Fatalf("edges = %v (n=%d), want one edge labelled siteA", g2.Edges(0), g2.NumEdges())
	}
}
