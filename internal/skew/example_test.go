package skew_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/skew"
	"repro/internal/txlib"
)

// Example runs the §5.1 workflow on the Listing 1 withdraw anomaly:
// trace a run under SI-TM, analyse the dependency graph, and promote the
// offending reads.
func Example() {
	engine := core.New(core.DefaultConfig())
	recorder := skew.NewRecorder()
	engine.SetTracer(recorder)

	m := txlib.NewMem(engine)
	checking := m.A.AllocLines(1)
	saving := m.A.AllocLines(1)
	engine.NonTxWrite(checking, 60)
	engine.NonTxWrite(saving, 60)

	sched.New(1, 1).Run(func(th *sched.Thread) {
		t1, t2 := engine.Begin(th), engine.Begin(th)
		t1.Site("withdraw.check")
		_, _ = t1.Read(checking), t1.Read(saving)
		t1.Site("withdraw.apply").Write(checking, 0)
		t2.Site("withdraw.check")
		_, _ = t2.Read(checking), t2.Read(saving)
		t2.Site("withdraw.apply").Write(saving, 0)
		_ = t1.Commit()
		_ = t2.Commit() // SI permits the skew: both commit
	})

	report := recorder.Analyze()
	fmt.Println("skew detected:", report.HasSkew())
	fmt.Println("promote reads at:", report.Sites)

	repaired := core.New(core.DefaultConfig())
	report.Promote(repaired) // future runs abort the anomaly
	// Output:
	// skew detected: true
	// promote reads at: [withdraw.check]
}
