// Package skew implements the paper's write-skew detection and prevention
// methodology (§5.1) in the simulated world: where the paper instruments
// binaries with PIN, engines here emit a globally ordered trace of
// TM_BEGIN / TM_READ / TM_WRITE / TM_COMMIT events tagged with source
// "sites". The trace is post-processed into a read-write dependency graph
// whose cycles are write-skew candidates; the offending read sites are
// reported and can be promoted automatically (reads inserted into the
// write set for conflict detection without creating data versions).
//
// Like the paper's tool, this is a best-effort dynamic analysis: it can
// only find skews exercised by the traced schedules, and dangerous-
// situation detection may report false positives.
package skew

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mc"
	"repro/internal/mem"
	"repro/internal/tm"
)

// Recorder captures the globally ordered transactional event stream. It
// implements tm.Tracer; install it with engine.SetTracer.
type Recorder struct {
	seq  uint64
	txns map[uint64]*txnTrace
	done []*txnTrace
}

// access is one read or write with its source site.
type access struct {
	line mem.Line
	site string
	seq  uint64
}

// txnTrace is the recorded life of one transaction attempt.
type txnTrace struct {
	id        uint64
	thread    int
	beginSeq  uint64
	commitSeq uint64
	committed bool
	reads     []access
	writes    []access
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{txns: make(map[uint64]*txnTrace)}
}

// TxnBegin implements tm.Tracer.
func (r *Recorder) TxnBegin(txn uint64, thread int) {
	r.seq++
	r.txns[txn] = &txnTrace{id: txn, thread: thread, beginSeq: r.seq}
}

// TxnRead implements tm.Tracer.
func (r *Recorder) TxnRead(txn uint64, a mem.Addr, site string) {
	r.seq++
	if t := r.txns[txn]; t != nil {
		t.reads = append(t.reads, access{line: mem.LineOf(a), site: site, seq: r.seq})
	}
}

// TxnWrite implements tm.Tracer.
func (r *Recorder) TxnWrite(txn uint64, a mem.Addr, site string) {
	r.seq++
	if t := r.txns[txn]; t != nil {
		t.writes = append(t.writes, access{line: mem.LineOf(a), site: site, seq: r.seq})
	}
}

// TxnCommit implements tm.Tracer.
func (r *Recorder) TxnCommit(txn uint64) {
	r.seq++
	if t := r.txns[txn]; t != nil {
		t.commitSeq = r.seq
		t.committed = true
		r.done = append(r.done, t)
		delete(r.txns, txn)
	}
}

// TxnAbort implements tm.Tracer.
func (r *Recorder) TxnAbort(txn uint64) {
	r.seq++
	delete(r.txns, txn) // aborted attempts cannot participate in a skew
}

// Events returns the number of trace events recorded.
func (r *Recorder) Events() uint64 { return r.seq }

// Committed returns the number of committed transactions in the trace.
func (r *Recorder) Committed() int { return len(r.done) }

// Cycle is one write-skew candidate: a cycle of read-write
// antidependencies between concurrent committed transactions.
type Cycle struct {
	// Txns are the transaction ids on the cycle, in cycle order.
	Txns []uint64
	// Sites are the source sites of the reads participating in the
	// cycle's antidependency edges — where read promotion must apply.
	Sites []string
}

// Report is the outcome of analysing a trace.
type Report struct {
	// Cycles are the detected write-skew candidates.
	Cycles []Cycle
	// Sites is the deduplicated, sorted union of all offending read
	// sites.
	Sites []string
	// Txns and Edges describe the analysed graph size.
	Txns, Edges int
}

// HasSkew reports whether any write-skew candidate was found.
func (rep *Report) HasSkew() bool { return len(rep.Cycles) > 0 }

// String renders the report like the tool's output.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysed %d committed transactions, %d rw-dependency edges\n", rep.Txns, rep.Edges)
	if !rep.HasSkew() {
		b.WriteString("no write skew detected\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d write-skew candidate cycle(s) detected\n", len(rep.Cycles))
	for i, c := range rep.Cycles {
		fmt.Fprintf(&b, "  cycle %d: transactions %v via sites %v\n", i+1, c.Txns, c.Sites)
	}
	fmt.Fprintf(&b, "reads to promote: %s\n", strings.Join(rep.Sites, ", "))
	return b.String()
}

// Analyze post-processes the trace (the paper defers the heavy work to a
// post-processing phase to minimise perturbation, §5.1): it builds the
// read-write dependency graph over concurrent committed transactions and
// reports every cycle as a write-skew candidate. The graph and its cycle
// search are the shared serialization-graph core in internal/mc — the
// same implementation the model checker uses for its serializability
// evidence.
func (r *Recorder) Analyze() *Report {
	txns := r.done
	n := len(txns)
	rep := &Report{Txns: n}

	// writersOf maps a line to the transactions that committed writes
	// to it.
	writersOf := make(map[mem.Line][]int)
	for i, t := range txns {
		seen := make(map[mem.Line]bool)
		for _, w := range t.writes {
			if !seen[w.line] {
				seen[w.line] = true
				writersOf[w.line] = append(writersOf[w.line], i)
			}
		}
	}

	// Build rw antidependency edges reader -> writer between concurrent
	// transactions: the reader read a line the writer overwrote, and
	// neither saw the other's effects. Graph.Add drops duplicate
	// (reader, writer) pairs, keeping the first read site — the same
	// dedup the pre-mc implementation did by hand.
	g := mc.NewGraph(n)
	for i, t := range txns {
		for _, rd := range t.reads {
			for _, j := range writersOf[rd.line] {
				if i != j && concurrent(t, txns[j]) {
					g.Add(i, j, mc.RW, rd.site)
				}
			}
		}
	}
	rep.Edges = g.NumEdges()

	// Every strongly connected component with more than one node
	// contains a dependency cycle — the necessary condition for write
	// skew (§5.1, after Cahill et al.). Self-loops cannot occur (i == j
	// edges are never added), so CyclicComponents returns exactly the
	// multi-node components.
	for _, comp := range g.CyclicComponents() {
		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		c := Cycle{}
		siteSet := map[string]bool{}
		for _, v := range comp {
			c.Txns = append(c.Txns, txns[v].id)
			for _, e := range g.Edges(v) {
				if inComp[e.To] && e.Label != "" {
					siteSet[e.Label] = true
				}
			}
		}
		sort.Slice(c.Txns, func(a, b int) bool { return c.Txns[a] < c.Txns[b] })
		for s := range siteSet {
			c.Sites = append(c.Sites, s)
		}
		sort.Strings(c.Sites)
		rep.Cycles = append(rep.Cycles, c)
	}

	all := map[string]bool{}
	for _, c := range rep.Cycles {
		for _, s := range c.Sites {
			all[s] = true
		}
	}
	for s := range all {
		rep.Sites = append(rep.Sites, s)
	}
	sort.Strings(rep.Sites)
	return rep
}

// concurrent reports whether two committed transactions overlapped: each
// began before the other committed.
func concurrent(a, b *txnTrace) bool {
	return a.beginSeq < b.commitSeq && b.beginSeq < a.commitSeq
}

// Promote applies the tool's automatic repair: every offending read site
// is promoted on the engine, so subsequent runs treat those reads as
// writes for conflict detection without creating data versions (§5.1).
func (rep *Report) Promote(e tm.Engine) {
	for _, s := range rep.Sites {
		e.Promote(s)
	}
}
