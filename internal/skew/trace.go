package skew

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/mem"
)

// This file adds the tool workflow around the recorder: persisting traces
// (the paper's tool writes a trace during execution and defers the heavy
// analysis to post-processing, §5.1) and the schedule-coverage report the
// paper describes as an extension ("we are currently extending our
// methodology to provide information on test coverage").

// Event is one trace record in the persisted stream.
type Event struct {
	Kind   string   `json:"k"` // "begin","read","write","commit","abort"
	Txn    uint64   `json:"t"`
	Thread int      `json:"h,omitempty"`
	Addr   mem.Addr `json:"a,omitempty"`
	Site   string   `json:"s,omitempty"`
}

// WriteTrace persists the recorded trace as JSON lines in global order. Only
// committed transactions are written (aborted attempts cannot participate
// in a write skew), each as its begin, accesses, and commit.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	// Reconstruct a globally ordered stream from the per-transaction
	// records using the recorded sequence numbers.
	type seqEvent struct {
		seq uint64
		ev  Event
	}
	var all []seqEvent
	for _, t := range r.done {
		all = append(all, seqEvent{t.beginSeq, Event{Kind: "begin", Txn: t.id, Thread: t.thread}})
		for _, a := range t.reads {
			all = append(all, seqEvent{a.seq, Event{Kind: "read", Txn: t.id, Addr: a.line.Base(), Site: a.site}})
		}
		for _, a := range t.writes {
			all = append(all, seqEvent{a.seq, Event{Kind: "write", Txn: t.id, Addr: a.line.Base(), Site: a.site}})
		}
		all = append(all, seqEvent{t.commitSeq, Event{Kind: "commit", Txn: t.id}})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, e := range all {
		if err := enc.Encode(e.ev); err != nil {
			return fmt.Errorf("skew: encode trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace reconstructs a Recorder from a persisted trace so analysis can
// run offline, on another machine, or on merged traces.
func ReadTrace(rd io.Reader) (*Recorder, error) {
	rec := NewRecorder()
	dec := json.NewDecoder(rd)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("skew: decode trace: %w", err)
		}
		switch e.Kind {
		case "begin":
			rec.TxnBegin(e.Txn, e.Thread)
		case "read":
			rec.TxnRead(e.Txn, e.Addr, e.Site)
		case "write":
			rec.TxnWrite(e.Txn, e.Addr, e.Site)
		case "commit":
			rec.TxnCommit(e.Txn)
		case "abort":
			rec.TxnAbort(e.Txn)
		default:
			return nil, fmt.Errorf("skew: unknown trace event kind %q", e.Kind)
		}
	}
	return rec, nil
}

// Coverage reports how thoroughly the traced schedules exercised the
// program's critical sections: which site pairs were ever observed
// running in overlapping transactions. A skew between two sites can only
// be detected if the pair was covered, so low coverage means the
// best-effort analysis has blind spots (§5.1: "only a sufficiently large
// test coverage leads to meaningful results").
type Coverage struct {
	// Sites are all distinct sites observed in committed transactions.
	Sites []string
	// ConcurrentPairs maps "siteA|siteB" (sorted) to the number of
	// overlapping transaction pairs where one executed siteA and the
	// other siteB.
	ConcurrentPairs map[string]int
	// PairsCovered / PairsPossible summarise the ratio.
	PairsCovered, PairsPossible int
}

// Pct returns the covered fraction of site pairs as a percentage.
func (c Coverage) Pct() float64 {
	if c.PairsPossible == 0 {
		return 0
	}
	return 100 * float64(c.PairsCovered) / float64(c.PairsPossible)
}

// MeasureCoverage computes schedule coverage over the committed trace.
func (r *Recorder) MeasureCoverage() Coverage {
	cov := Coverage{ConcurrentPairs: make(map[string]int)}
	siteSet := map[string]bool{}
	txSites := make([]map[string]bool, len(r.done))
	for i, t := range r.done {
		s := map[string]bool{}
		for _, a := range t.reads {
			if a.site != "" {
				s[a.site] = true
				siteSet[a.site] = true
			}
		}
		for _, a := range t.writes {
			if a.site != "" {
				s[a.site] = true
				siteSet[a.site] = true
			}
		}
		txSites[i] = s
	}
	for s := range siteSet {
		cov.Sites = append(cov.Sites, s)
	}
	sort.Strings(cov.Sites)

	for i := 0; i < len(r.done); i++ {
		for j := i + 1; j < len(r.done); j++ {
			if !concurrent(r.done[i], r.done[j]) {
				continue
			}
			for si := range txSites[i] {
				for sj := range txSites[j] {
					cov.ConcurrentPairs[pairKey(si, sj)]++
				}
			}
		}
	}
	n := len(cov.Sites)
	cov.PairsPossible = n * (n + 1) / 2
	cov.PairsCovered = len(cov.ConcurrentPairs)
	return cov
}

// pairKey builds the canonical (sorted) key for a site pair.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}
