package skew

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/txlib"
)

// recordBankSkew produces a recorder holding the Listing 1 schedule.
func recordBankSkew(t *testing.T) *Recorder {
	t.Helper()
	e := core.New(core.DefaultConfig())
	rec := NewRecorder()
	e.SetTracer(rec)
	m := txlib.NewMem(e)
	a1, a2 := m.A.AllocLines(1), m.A.AllocLines(1)
	e.NonTxWrite(a1, 60)
	e.NonTxWrite(a2, 60)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		t1, t2 := e.Begin(th), e.Begin(th)
		t1.Site("bank.check")
		_, _ = t1.Read(a1), t1.Read(a2)
		t1.Site("bank.withdraw").Write(a1, 0)
		t2.Site("bank.check")
		_, _ = t2.Read(a1), t2.Read(a2)
		t2.Site("bank.withdraw").Write(a2, 0)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2: %v", err)
		}
	})
	return rec
}

func TestTraceRoundTrip(t *testing.T) {
	rec := recordBankSkew(t)
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Committed() != rec.Committed() {
		t.Fatalf("committed = %d, want %d", back.Committed(), rec.Committed())
	}
	// The offline analysis must find the same skew.
	rep1, rep2 := rec.Analyze(), back.Analyze()
	if !rep2.HasSkew() {
		t.Fatal("skew lost in trace round trip")
	}
	if len(rep1.Sites) != len(rep2.Sites) {
		t.Fatalf("sites differ: %v vs %v", rep1.Sites, rep2.Sites)
	}
	for i := range rep1.Sites {
		if rep1.Sites[i] != rep2.Sites[i] {
			t.Fatalf("sites differ: %v vs %v", rep1.Sites, rep2.Sites)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"k":"frob","t":1}` + "\n")); err == nil {
		t.Fatal("expected error for unknown event kind")
	}
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for malformed trace")
	}
}

func TestReadTraceEmpty(t *testing.T) {
	rec, err := ReadTrace(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Committed() != 0 || rec.Analyze().HasSkew() {
		t.Fatal("empty trace must analyse cleanly")
	}
}

func TestMeasureCoverage(t *testing.T) {
	rec := recordBankSkew(t)
	cov := rec.MeasureCoverage()
	if len(cov.Sites) != 2 {
		t.Fatalf("sites = %v, want [bank.check bank.withdraw]", cov.Sites)
	}
	// Both transactions overlap and each executes both sites: every
	// pair (including self-pairs) is covered.
	if cov.PairsPossible != 3 {
		t.Fatalf("possible = %d, want 3", cov.PairsPossible)
	}
	if cov.PairsCovered != 3 {
		t.Fatalf("covered = %d, want 3 (%v)", cov.PairsCovered, cov.ConcurrentPairs)
	}
	if cov.Pct() != 100 {
		t.Fatalf("pct = %v, want 100", cov.Pct())
	}
}

func TestCoverageSerialSchedulesCoverNothing(t *testing.T) {
	e := core.New(core.DefaultConfig())
	rec := NewRecorder()
	e.SetTracer(rec)
	m := txlib.NewMem(e)
	a := m.A.AllocLines(1)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		for i := 0; i < 3; i++ {
			tx := e.Begin(th)
			tx.Site("counter.inc")
			tx.Write(a, tx.Read(a)+1)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	})
	cov := rec.MeasureCoverage()
	if cov.PairsCovered != 0 {
		t.Fatalf("serial schedule covered %d pairs, want 0 — the tool must report the blind spot", cov.PairsCovered)
	}
	if cov.Pct() != 0 {
		t.Fatalf("pct = %v, want 0", cov.Pct())
	}
}

func TestCoverageEmptyTrace(t *testing.T) {
	cov := NewRecorder().MeasureCoverage()
	if cov.Pct() != 0 || len(cov.Sites) != 0 {
		t.Fatalf("empty coverage = %+v", cov)
	}
}
