package tm

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestAbortKindStrings(t *testing.T) {
	kinds := map[AbortKind]string{
		AbortReadWrite:  "read-write",
		AbortWriteWrite: "write-write",
		AbortOrder:      "order",
		AbortCapacity:   "capacity",
		AbortSkew:       "skew",
		AbortExplicit:   "explicit",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if AbortKind(99).String() == "" {
		t.Error("unknown kind must still stringify")
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.Commits = 90
	s.Count(AbortWriteWrite)
	s.Count(AbortWriteWrite)
	s.Count(AbortReadWrite)
	if s.TotalAborts() != 3 {
		t.Fatalf("TotalAborts = %d, want 3", s.TotalAborts())
	}
	// 3 aborts out of 93 attempts.
	got := s.AbortRate()
	want := 3.0 / 93.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("AbortRate = %v, want %v", got, want)
	}
	s.Reset()
	if s.TotalAborts() != 0 || s.Commits != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestAbortRateEmpty(t *testing.T) {
	var s Stats
	if s.AbortRate() != 0 {
		t.Fatal("empty stats must have zero abort rate")
	}
}

func TestBackoffDisabled(t *testing.T) {
	b := BackoffConfig{}
	if d := b.Delay(5, sched.NewRand(1)); d != 0 {
		t.Fatalf("disabled backoff delay = %d, want 0", d)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := DefaultBackoff()
	r := sched.NewRand(1)
	prevMax := uint64(0)
	for attempt := 1; attempt <= 15; attempt++ {
		maxWindow := b.Base << min(uint(attempt), b.MaxShift)
		if maxWindow < prevMax {
			t.Fatalf("window shrank at attempt %d", attempt)
		}
		prevMax = maxWindow
		d := b.Delay(attempt, r)
		if d < maxWindow/2 || d > maxWindow {
			t.Fatalf("attempt %d: delay %d outside [%d,%d]", attempt, d, maxWindow/2, maxWindow)
		}
	}
}

func TestBackoffDelayProperty(t *testing.T) {
	f := func(seed uint64, attempt uint8) bool {
		b := DefaultBackoff()
		if attempt == 0 {
			return b.Delay(0, sched.NewRand(seed)) == 0
		}
		d := b.Delay(int(attempt), sched.NewRand(seed))
		limit := b.Base << b.MaxShift
		return d > 0 && d <= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbortErrorMessage(t *testing.T) {
	e := &AbortError{Kind: AbortWriteWrite, Line: 0x10}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}
