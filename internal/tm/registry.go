package tm

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cache"
)

// EngineOptions carries the engine-level knobs of the evaluation (§6) in a
// representation-independent form, so that engine packages can register
// factories without the registry depending on their config types. Engines
// ignore options that do not apply to them.
type EngineOptions struct {
	// WordGranularity enables SI-TM's §4.2 word-level conflict filter.
	WordGranularity bool
	// UnboundedVersions configures the MVM with no version bound (the
	// Table 2 / Appendix A measurement).
	UnboundedVersions bool
	// DropOldest selects the alternative version-overflow policy (§3.1).
	DropOldest bool
	// NoCoalescing disables version coalescing (ablation).
	NoCoalescing bool
	// NoXlate disables the translation cache (ablation).
	NoXlate bool
	// ReferenceCache routes every simulated memory access through the
	// verbatim pre-fast-path cache model (cache.SlowHierarchy), the
	// differential oracle for the way-predicted implementation. Results
	// are bit-identical to the default; only simulator wall time
	// changes.
	ReferenceCache bool
	// ReferenceSets routes every transaction through the verbatim
	// map-based access-set implementation (each engine's slow.go), the
	// differential oracle for the signature-backed internal/aset fast
	// path. Results are bit-identical to the default; only simulator
	// wall time changes.
	ReferenceSets bool
	// ReferenceStore backs the engines' per-word/per-line tables (and
	// SI-TM's version table and presence filters) with the retained
	// dense mem store instead of the paged one, the differential oracle
	// for the paged backing (mem.Paged). Results are bit-identical to
	// the default; only memory footprint changes.
	ReferenceStore bool
	// CacheScratch, when non-nil, recycles simulated cache arrays
	// across the engines built with these options. It never changes
	// simulated behaviour; callers own the scratch's single-threaded
	// lifecycle (one per experiment worker) and must call the engine's
	// ReleaseCaches after the run to return the arrays.
	CacheScratch *cache.Scratch
}

// EngineFactory builds a fresh, fully isolated engine instance. Factories
// must not share mutable state between the engines they return: the
// experiment runner constructs one engine per plan cell and runs cells on
// concurrent OS threads (shared-nothing parallelism).
type EngineFactory func(EngineOptions) Engine

var (
	registryMu sync.RWMutex
	registry   = map[string]registration{}
)

type registration struct {
	display string
	factory EngineFactory
}

// Register records a named engine factory. Engine packages call it from
// init(); the canonical names are the paper's: "2PL", "SONTM", "SI-TM" and
// "SSI-TM". Lookup is case-insensitive. Registering a duplicate name
// panics — that is a programming error, not a runtime condition.
func Register(name string, f EngineFactory) {
	if f == nil {
		panic("tm: Register with nil factory")
	}
	key := strings.ToLower(name)
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("tm: engine %q registered twice", name))
	}
	registry[key] = registration{display: name, factory: f}
}

// NewEngine constructs a fresh engine by registered name (case-insensitive).
// Unknown names return an error listing the registered engines.
func NewEngine(name string, o EngineOptions) (Engine, error) {
	registryMu.RLock()
	reg, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tm: unknown engine %q (registered: %s)",
			name, strings.Join(Engines(), ", "))
	}
	return reg.factory(o), nil
}

// Engines lists the registered engine names (as registered) in sorted
// order.
func Engines() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for _, reg := range registry {
		names = append(names, reg.display)
	}
	sort.Strings(names)
	return names
}
