package tm

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
)

// fakeEngine is a minimal Engine for registry tests; the real engines
// register themselves from their own packages.
type fakeEngine struct {
	name string
	opts EngineOptions
	st   Stats
}

func (f *fakeEngine) Begin(*sched.Thread) Txn     { return nil }
func (f *fakeEngine) Name() string                { return f.name }
func (f *fakeEngine) Stats() *Stats               { return &f.st }
func (f *fakeEngine) Promote(string)              {}
func (f *fakeEngine) NonTxRead(mem.Addr) uint64   { return 0 }
func (f *fakeEngine) NonTxWrite(mem.Addr, uint64) {}
func (f *fakeEngine) SetTracer(Tracer)            {}

func TestRegistryRoundTrip(t *testing.T) {
	Register("Fake-A", func(o EngineOptions) Engine { return &fakeEngine{name: "Fake-A", opts: o} })

	for _, name := range []string{"Fake-A", "fake-a", "FAKE-A"} {
		e, err := NewEngine(name, EngineOptions{WordGranularity: true})
		if err != nil {
			t.Fatalf("NewEngine(%q): %v", name, err)
		}
		fe := e.(*fakeEngine)
		if fe.name != "Fake-A" || !fe.opts.WordGranularity {
			t.Fatalf("factory not invoked with options: %+v", fe)
		}
	}

	// Fresh instance per call: the registry must never cache engines.
	a, _ := NewEngine("Fake-A", EngineOptions{})
	b, _ := NewEngine("Fake-A", EngineOptions{})
	if a == b {
		t.Fatal("NewEngine returned a shared instance; cells must be shared-nothing")
	}
}

func TestRegistryUnknownEngine(t *testing.T) {
	Register("Fake-B", func(o EngineOptions) Engine { return &fakeEngine{name: "Fake-B"} })
	_, err := NewEngine("nope", EngineOptions{})
	if err == nil {
		t.Fatal("unknown engine must error")
	}
	if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "Fake-B") {
		t.Fatalf("error must echo the bad name and list registered engines: %v", err)
	}
}

func TestRegistryRejectsDuplicatesAndNil(t *testing.T) {
	Register("Fake-C", func(EngineOptions) Engine { return &fakeEngine{name: "Fake-C"} })
	mustPanic(t, "duplicate", func() {
		Register("fake-c", func(EngineOptions) Engine { return &fakeEngine{} })
	})
	mustPanic(t, "nil factory", func() { Register("Fake-D", nil) })
}

func TestEnginesSorted(t *testing.T) {
	Register("Fake-Z", func(EngineOptions) Engine { return &fakeEngine{name: "Fake-Z"} })
	Register("Fake-M", func(EngineOptions) Engine { return &fakeEngine{name: "Fake-M"} })
	names := Engines()
	zi, mi := -1, -1
	for i, n := range names {
		if n == "Fake-Z" {
			zi = i
		}
		if n == "Fake-M" {
			mi = i
		}
	}
	if zi < 0 || mi < 0 || mi > zi {
		t.Fatalf("Engines() = %v: want Fake-M before Fake-Z", names)
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s must panic", what)
		}
	}()
	f()
}
