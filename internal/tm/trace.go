package tm

import "repro/internal/mem"

// Tracer observes the globally ordered stream of transactional operations,
// exactly the trace the paper's PIN tool records for write-skew analysis
// (§5.1): TM_BEGIN, TM_READ, TM_WRITE, TM_COMMIT (and aborts). Because the
// machine is simulated deterministically, calls arrive already in global
// order. Site carries the source location the tool would recover from the
// call stack.
type Tracer interface {
	TxnBegin(txn uint64, thread int)
	TxnRead(txn uint64, a mem.Addr, site string)
	TxnWrite(txn uint64, a mem.Addr, site string)
	TxnCommit(txn uint64)
	TxnAbort(txn uint64)
}
