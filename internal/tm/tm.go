// Package tm defines the transactional memory programming interface shared
// by the SI-TM engine and the 2PL and SONTM baselines, the abort taxonomy
// the paper's evaluation distinguishes (Figure 1), per-engine statistics,
// the software retry loop with exponential backoff (§6.1, §6.4), and the
// trace hooks consumed by the write-skew detection tool (§5.1).
package tm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sched"
)

// AbortKind classifies why a transaction aborted, following the paper's
// taxonomy.
type AbortKind int

const (
	// AbortReadWrite is a read-write conflict: only 2PL and SONTM
	// abort on these; under SI they are invisible (Figure 1).
	AbortReadWrite AbortKind = iota
	// AbortWriteWrite is a write-write conflict — the only conflict
	// SI-TM aborts on (§4).
	AbortWriteWrite
	// AbortOrder is a conflict-serializability order violation (SONTM:
	// the transaction's serializability-order-number interval emptied).
	AbortOrder
	// AbortCapacity is a version-buffer overflow: a fifth version under
	// the bounded MVM policy, or a stale read under DropOldest (§3.1).
	AbortCapacity
	// AbortSkew is an abort forced by a promoted read — a read that the
	// write-skew tool inserted into the write set (§5.1) — or by the
	// SSI-TM dangerous-structure rule (§5.2).
	AbortSkew
	// AbortInterrupt is an abort caused by an interrupt or context
	// switch hitting a cache-buffered transaction (§1, §4.3);
	// multiversioned memory makes SI-TM immune to these.
	AbortInterrupt
	// AbortExplicit is a programmatic abort requested by the workload.
	AbortExplicit

	numAbortKinds
)

func (k AbortKind) String() string {
	switch k {
	case AbortReadWrite:
		return "read-write"
	case AbortWriteWrite:
		return "write-write"
	case AbortOrder:
		return "order"
	case AbortCapacity:
		return "capacity"
	case AbortSkew:
		return "skew"
	case AbortInterrupt:
		return "interrupt"
	case AbortExplicit:
		return "explicit"
	}
	return fmt.Sprintf("AbortKind(%d)", int(k))
}

// AbortError reports a transaction abort and its cause.
type AbortError struct {
	Kind AbortKind
	// Line is the conflicting cache line when known.
	Line mem.Line
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("tm: transaction aborted (%s conflict on line %#x)", e.Kind, uint64(e.Line))
}

// Txn is one transaction attempt. Read and Write may abort the attempt
// internally (eager engines doom transactions mid-flight); workloads run
// inside Atomic, which handles the retry. A Txn must finish with exactly
// one Commit or Abort call.
type Txn interface {
	// Read returns the 64-bit word at a under the engine's isolation
	// level.
	Read(a mem.Addr) uint64
	// Write buffers a 64-bit store to a.
	Write(a mem.Addr, v uint64)
	// ReadPromoted is a read that participates in write conflict
	// detection without creating a data version — the read-promotion
	// primitive of §5.1. Engines without promotion treat it as Read.
	ReadPromoted(a mem.Addr) uint64
	// Commit attempts to make the transaction's writes visible. It
	// returns nil on success or an *AbortError.
	Commit() error
	// Abort abandons the attempt and releases engine state.
	Abort()
	// Site labels subsequent operations with a source location for the
	// write-skew tool; it returns the transaction for chaining.
	Site(s string) Txn
}

// Engine is a transactional memory implementation: the paper's SI-TM or
// one of the two baselines. Engines are driven by logical threads of the
// deterministic simulator; Begin may stall the thread (commit window,
// backoff) but must eventually return a fresh transaction.
type Engine interface {
	// Begin starts a transaction on the given logical thread.
	Begin(t *sched.Thread) Txn
	// Name identifies the engine in reports ("2PL", "SONTM", "SI-TM").
	Name() string
	// Stats returns the engine's accumulated counters.
	Stats() *Stats
	// Promote marks a site label so that reads issued under it are
	// treated as promoted reads (automatic write-skew repair, §5.1).
	// Engines that cannot promote ignore it.
	Promote(site string)
	// NonTxRead reads a word outside any transaction (newest data).
	NonTxRead(a mem.Addr) uint64
	// NonTxWrite stores a word outside any transaction, in place.
	// Workloads use it for single-threaded initialisation.
	NonTxWrite(a mem.Addr, v uint64)
	// SetTracer installs a trace observer (nil disables tracing).
	SetTracer(tr Tracer)
}

// Stats aggregates commit/abort counts per engine. Aborts are classified
// by AbortKind so the harness can reproduce Figure 1's read-write versus
// write-write breakdown.
type Stats struct {
	Commits   uint64
	ReadOnly  uint64 // committed transactions with an empty write set
	Aborts    [numAbortKinds]uint64
	Stalls    uint64 // commit-window or token stalls
	BackoffNs uint64 // simulated cycles spent in exponential backoff
	// CommitHist is the commit-latency distribution in simulated cycles:
	// for each Atomic that committed, the cycles from the start of its
	// first attempt to commit success, aborted attempts and backoff
	// included — the serving-systems tail metric (p50/p99/p999) the
	// paper's abort-rate figures never show.
	CommitHist report.Hist
}

// TotalAborts sums aborts over all kinds.
func (s *Stats) TotalAborts() uint64 {
	var n uint64
	for _, a := range s.Aborts {
		n += a
	}
	return n
}

// AbortRate returns aborts per started transaction attempt, in [0, 1].
func (s *Stats) AbortRate() float64 {
	attempts := s.Commits + s.TotalAborts()
	if attempts == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(attempts)
}

// Count records an abort of the given kind.
func (s *Stats) Count(k AbortKind) { s.Aborts[k]++ }

// Reset zeroes all counters (between warm-up and measurement).
func (s *Stats) Reset() { *s = Stats{} }

// abortSignal carries an abort out of Read/Write to the Atomic retry loop
// without forcing an error check on every memory access. It never escapes
// package boundaries: Atomic recovers it.
type abortSignal struct{ err *AbortError }

// SignalAbort unwinds the current transaction attempt with the given
// cause. Engines call it from Read/Write/Commit paths; it must only run
// beneath Atomic.
func SignalAbort(kind AbortKind, line mem.Line) {
	panic(abortSignal{&AbortError{Kind: kind, Line: line}})
}

// BackoffConfig tunes the exponential backoff the eager baselines rely on
// to avoid livelock (§6.4). Delay for the n-th consecutive abort is
// Base << min(n, MaxShift) cycles, jittered uniformly.
type BackoffConfig struct {
	Enabled  bool
	Base     uint64
	MaxShift uint
}

// DefaultBackoff is the tuned configuration used in the evaluation.
func DefaultBackoff() BackoffConfig {
	return BackoffConfig{Enabled: true, Base: 32, MaxShift: 10}
}

// Delay returns the simulated backoff delay after `attempt` consecutive
// aborts (attempt counts from 1).
func (b BackoffConfig) Delay(attempt int, rng *sched.Rand) uint64 {
	if !b.Enabled || attempt <= 0 {
		return 0
	}
	shift := uint(attempt)
	if shift > b.MaxShift {
		shift = b.MaxShift
	}
	window := b.Base << shift
	return window/2 + rng.Uint64()%(window/2+1)
}

// ErrRetry can be returned by an Atomic body to request re-execution
// without counting an engine abort (used by workloads that model
// application-level retry).
var ErrRetry = fmt.Errorf("tm: retry requested")

// Atomic runs body as a transaction on engine, retrying on aborts with the
// engine's backoff policy until it commits. It is the software equivalent
// of the compiler-generated retry loop around TM_BEGIN/TM_COMMIT. The body
// may return an error to abort and propagate the error to the caller
// (after rolling back), or ErrRetry to abort and re-execute.
func Atomic(e Engine, t *sched.Thread, backoff BackoffConfig, body func(Txn) error) error {
	start := t.Cycles()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if d := backoff.Delay(attempt, t.Rand()); d > 0 {
				e.Stats().BackoffNs += d
				// Backoff is pure thread-local waiting; the fence in
				// runAttempt re-synchronises before the next Begin.
				t.LocalTick(d)
			}
		}
		err := runAttempt(e, t, body)
		switch {
		case err == nil:
			e.Stats().CommitHist.Record(t.Cycles() - start)
			return nil
		case err == ErrRetry:
			continue
		default:
			var abort *AbortError
			if as, ok := err.(*AbortError); ok {
				abort = as
			}
			if abort == nil {
				return err // workload error: already rolled back
			}
			// engine abort: retry
		}
	}
}

// RunOnce executes body as a single transaction attempt with no retry:
// the attempt either commits (nil) or returns the *AbortError (or the
// body's own error) after rolling back. The model checker (internal/mc)
// runs litmus transactions through it — under an adversarial schedule
// chooser a retry loop need not terminate, and an aborted attempt is
// itself a history the SI axioms must account for, not something to hide
// behind a retry.
func RunOnce(e Engine, t *sched.Thread, body func(Txn) error) error {
	return runAttempt(e, t, body)
}

// runAttempt executes one transaction attempt, translating abort signals
// into *AbortError values.
func runAttempt(e Engine, t *sched.Thread, body func(Txn) error) (err error) {
	// End any batched quantum before Begin: engine Begin paths read
	// order-sensitive shared state (commit-window occupancy, global
	// clocks, lock tables) that must be observed at the per-event
	// scheduling point. This single fence covers every engine.
	t.Fence()
	tx := e.Begin(t)
	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(abortSignal)
			if !ok {
				panic(r)
			}
			err = sig.err
		}
	}()
	if berr := body(tx); berr != nil {
		tx.Abort()
		return berr
	}
	return tx.Commit()
}
