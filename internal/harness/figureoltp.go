package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/oltp"
)

// The OLTP serving-tier figure: abort rates and deterministic
// commit-latency tails (p50/p99/p999 simulated cycles) for the Zipfian
// KV and ledger workloads across engines, skews and thread counts. This
// is the paper's §1 claim measured at serving scale: under SI-TM the
// long analytical read-only scans commit without aborting writers, which
// shows up here as zero read-write aborts and a bounded commit tail,
// while the eager baselines pay for every scan.

// OLTPThetas are the Zipfian skews of the figure-oltp grid, spanning
// near-uniform to the YCSB-default hot-head regime.
var OLTPThetas = []float64{0.50, 0.90, 0.99}

// OLTPThreads are the thread counts of the figure-oltp grid.
var OLTPThreads = []int{8, 32}

// OLTPWorkloads returns the default figure-oltp workload names: both
// serving tiers at every grid skew, in canonical name form.
func OLTPWorkloads() []string {
	var names []string
	for _, base := range []string{"kv", "ledger"} {
		for _, theta := range OLTPThetas {
			names = append(names, fmt.Sprintf("%s@%.2f", base, theta))
		}
	}
	return names
}

// oltpFigureNames resolves the workload set of one figure-oltp render:
// the default grid, or — when o.Only is set — the subset of o.Only that
// parses as tier names, canonicalised (so "kv" and "KV@0.99" select the
// same column). Non-tier Only entries select nothing here, mirroring how
// the paper figures ignore Only entries outside their workload set.
func oltpFigureNames(o Options) []string {
	if len(o.Only) == 0 {
		return OLTPWorkloads()
	}
	var names []string
	seen := make(map[string]bool)
	for _, only := range o.Only {
		f, isOLTP, err := oltp.ByName(only)
		if !isOLTP || err != nil {
			continue
		}
		if name := f().Name(); !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names
}

// FigureOLTP sweeps the serving-tier grid and writes one table per
// workload: per thread count and engine, seed-averaged commit and
// read-only-commit counts, the abort rate, and the merged commit-latency
// quantiles in simulated cycles.
func FigureOLTP(w io.Writer, o Options) map[sweepKey]Result {
	names := oltpFigureNames(o)
	res := make(map[sweepKey]Result)
	if len(names) > 0 {
		res = mustSweep(names, fig7Engines, OLTPThreads, o)
	}
	return renderFigureOLTP(w, names, res)
}

// renderFigureOLTP renders the figure from seed-averaged sweep points —
// a pure function of aggregated cell results, no simulator calls.
func renderFigureOLTP(w io.Writer, names []string, res map[sweepKey]Result) map[sweepKey]Result {
	fmt.Fprintln(w, "Figure OLTP: serving-tier abort rates and commit-latency tails (cycles)")
	for _, name := range names {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\tthreads\tengine\tcommits\tro-commits\tabort %%\tp50\tp99\tp999\n", name)
		for _, th := range OLTPThreads {
			for _, kind := range fig7Engines {
				r := res[sweepKey{Workload: name, Engine: kind, Threads: th}]
				fmt.Fprintf(tw, "\t%d\t%s\t%.1f\t%.1f\t%.2f\t%d\t%d\t%d\n",
					th, kind, r.Commits, r.ROCommits, 100*r.AbortRate,
					r.CommitHist.Quantile(0.50), r.CommitHist.Quantile(0.99), r.CommitHist.Quantile(0.999))
			}
		}
		tw.Flush()
	}
	return res
}
