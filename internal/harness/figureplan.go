package harness

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/exp"
)

// The figure-plan surface: every figure/table of the evaluation exposed
// as (plan, cell config) pairs, so services above the harness — the
// sweep daemon in particular — can enumerate exactly the cells a figure
// needs, execute or cache them independently, and then render the figure
// as a pure function of the shared result cache.

// FigureNames lists the renderable sections in presentation order.
// "table1" is static (no cells); every other section sweeps a plan.
var FigureNames = []string{"table1", "figure1", "figure7", "figure8", "table2", "mvm", "figure-oltp"}

// KnownFigure reports whether name names a renderable section.
func KnownFigure(name string) bool {
	for _, f := range FigureNames {
		if strings.EqualFold(f, name) {
			return true
		}
	}
	return false
}

// FigurePlan is the cell-layer footprint of one figure: the exact plan
// its sweep executes and the cell configuration those cells run under
// (which participates in their cache keys).
type FigurePlan struct {
	Figure string
	Plan   exp.Plan
	Config exp.CellConfig
}

// PlanFigure returns the plan and cell configuration of the named
// figure under the given options — exactly the cells the corresponding
// Figure/Table/MVMReport call would run, so a cache populated from this
// plan serves that call without simulating. threads applies to the
// sections that take a thread count (figure1, table2, mvm).
func PlanFigure(figure string, threads int, o Options) (FigurePlan, error) {
	o = o.withDefaults()
	switch strings.ToLower(figure) {
	case "table1":
		return FigurePlan{Figure: "table1"}, nil
	case "figure1":
		names := o.filterWorkloads(Fig1Workloads)
		return FigurePlan{
			Figure: "figure1",
			Plan:   exp.Cross(names, []EngineKind{TwoPL}, []int{threads}, o.Seeds),
			Config: o.cellConfig(),
		}, nil
	case "figure7":
		names := o.filterWorkloads(registryNames())
		return FigurePlan{
			Figure: "figure7",
			Plan:   exp.Cross(names, fig7Engines, Fig7Threads, o.Seeds),
			Config: o.cellConfig(),
		}, nil
	case "figure8":
		names := o.filterWorkloads(registryNames())
		return FigurePlan{
			Figure: "figure8",
			Plan:   exp.Cross(names, fig7Engines, Fig8Threads, o.Seeds),
			Config: o.cellConfig(),
		}, nil
	case "table2":
		o.UnboundedVersions = true
		names := o.filterWorkloads(registryNames())
		return FigurePlan{
			Figure: "table2",
			Plan:   exp.Cross(names, []EngineKind{SITM}, []int{threads}, o.Seeds),
			Config: o.cellConfig(),
		}, nil
	case "mvm":
		o.measureMVM = true
		return FigurePlan{
			Figure: "mvm",
			Plan:   mvmPlan(threads, o),
			Config: o.cellConfig(),
		}, nil
	case "figure-oltp":
		names := oltpFigureNames(o)
		return FigurePlan{
			Figure: "figure-oltp",
			Plan:   exp.Cross(names, fig7Engines, OLTPThreads, o.Seeds),
			Config: o.cellConfig(),
		}, nil
	}
	return FigurePlan{}, fmt.Errorf("harness: unknown figure %q (valid: %s)",
		figure, strings.Join(FigureNames, ", "))
}

// RenderFigureText renders the named figure as its canonical text bytes.
// Cells run through the options' worker pool and result cache; with a
// cache warmed by the figure's plan (PlanFigure) no simulation happens
// and the bytes are identical to a cold render.
func RenderFigureText(figure string, threads int, o Options) ([]byte, error) {
	if !KnownFigure(figure) {
		return nil, fmt.Errorf("harness: unknown figure %q (valid: %s)",
			figure, strings.Join(FigureNames, ", "))
	}
	var buf bytes.Buffer
	switch strings.ToLower(figure) {
	case "table1":
		Table1(&buf)
	case "figure1":
		Figure1(&buf, threads, o)
	case "figure7":
		Figure7(&buf, o)
	case "figure8":
		Figure8(&buf, o)
	case "table2":
		Table2(&buf, threads, o)
	case "mvm":
		MVMReport(&buf, threads, o)
	case "figure-oltp":
		FigureOLTP(&buf, o)
	}
	return buf.Bytes(), nil
}
