package harness

import (
	"testing"

	"repro/internal/micro"
)

func TestScaleOptionGrowsWorkloads(t *testing.T) {
	o := Options{Seeds: []uint64{1}, Scale: 2}
	base := Run(SITM, func() Workload { return micro.NewList() }, 2, Options{Seeds: []uint64{1}})
	scaled := Run(SITM, func() Workload { return micro.NewList() }, 2, o)
	if scaled.Commits <= base.Commits {
		t.Fatalf("scaled commits %v not above base %v", scaled.Commits, base.Commits)
	}
}

func TestEveryWorkloadIsScalable(t *testing.T) {
	for _, f := range Registry() {
		w := f()
		if _, ok := w.(Scalable); !ok {
			t.Errorf("%s does not implement Scalable", w.Name())
		}
	}
}
