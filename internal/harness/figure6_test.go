package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sontm"
	"repro/internal/tm"
)

func lineAddr(i int) mem.Addr { return mem.Addr(i * mem.LineBytes) }

// TestFigure6TemporalDependency replays the paper's Figure 6 schedule: a
// long-running reader TX0 scans A..E while a short updater TX1 commits
// writes to A and E in the middle of the scan — A is read before its
// modification, E after. Conflict serializability sees a temporal cycle
// and aborts the reader; SSI-TM's type-based dependencies record two
// edges of the same direction (reader -> writer), no dangerous structure,
// and the reader commits.
func TestFigure6TemporalDependency(t *testing.T) {
	A, B, C, D, E := lineAddr(1), lineAddr(2), lineAddr(3), lineAddr(4), lineAddr(5)

	schedule := func(e tm.Engine) (readerErr, writerErr error) {
		sched.New(1, 1).Run(func(th *sched.Thread) {
			guard := func(f func()) (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = &tm.AbortError{Kind: tm.AbortOrder}
					}
				}()
				f()
				return nil
			}
			tx0 := e.Begin(th)
			readerErr = guard(func() {
				_ = tx0.Read(A)
				_ = tx0.Read(B)
				_ = tx0.Read(C)
			})
			tx1 := e.Begin(th)
			tx1.Write(A, 1)
			tx1.Write(E, 1)
			writerErr = tx1.Commit()
			if readerErr == nil {
				readerErr = guard(func() {
					_ = tx0.Read(D)
					_ = tx0.Read(E)
				})
			}
			if readerErr == nil {
				readerErr = tx0.Commit()
			} else {
				tx0.Abort()
			}
		})
		return readerErr, writerErr
	}

	// Under conflict serializability the reader must abort: it read A
	// before TX1's committed modification and E after it.
	csReader, csWriter := schedule(sontm.New(sontm.DefaultConfig()))
	if csWriter != nil {
		t.Fatalf("CS writer: %v", csWriter)
	}
	if csReader == nil {
		t.Fatal("CS must abort the reader (temporal cyclic dependency)")
	}

	// SSI-TM records two same-direction rw dependencies: no dangerous
	// structure, both commit. (Under plain SI the reader is read-only
	// and trivially commits.)
	cfg := core.DefaultConfig()
	cfg.Serializable = true
	ssiReader, ssiWriter := schedule(core.New(cfg))
	if ssiWriter != nil {
		t.Fatalf("SSI-TM writer: %v", ssiWriter)
	}
	if ssiReader != nil {
		t.Fatalf("SSI-TM must commit the reader (two incoming edges only): %v", ssiReader)
	}

	siReader, siWriter := schedule(core.New(core.DefaultConfig()))
	if siReader != nil || siWriter != nil {
		t.Fatalf("SI-TM: reader=%v writer=%v, want both commits", siReader, siWriter)
	}
}

// TestFigure6ReaderSeesSnapshot confirms the §4 consistency property on
// the same schedule: the reader's late reads return the old values even
// though the writer committed in between.
func TestFigure6ReaderSeesSnapshot(t *testing.T) {
	A, E := lineAddr(1), lineAddr(5)
	e := core.New(core.DefaultConfig())
	e.NonTxWrite(A, 10)
	e.NonTxWrite(E, 50)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		tx0 := e.Begin(th)
		if got := tx0.Read(A); got != 10 {
			t.Errorf("early read A = %d, want 10", got)
		}
		tx1 := e.Begin(th)
		tx1.Write(A, 11)
		tx1.Write(E, 51)
		if err := tx1.Commit(); err != nil {
			t.Fatalf("writer: %v", err)
		}
		if got := tx0.Read(E); got != 50 {
			t.Errorf("late read E = %d, want 50 (snapshot, not committed 51)", got)
		}
		if err := tx0.Commit(); err != nil {
			t.Errorf("reader: %v", err)
		}
	})
}
