package harness

import (
	"bytes"
	"io"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
)

// poolWorkers picks the "all cores" worker count for the determinism
// tests; on a single-CPU machine it still uses a multi-goroutine pool so
// the concurrent path (and the race detector) is exercised.
func poolWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 4
}

// TestFigure7DeterministicAcrossWorkers is the runner's core contract:
// the full Figure 7 result map — and the rendered report — must be
// identical when computed with 1 worker and with a full worker pool, and
// across two runs at the same worker count.
func TestFigure7DeterministicAcrossWorkers(t *testing.T) {
	o := Options{Seeds: []uint64{1}}
	run := func(workers int) (map[string]map[int][3]float64, string) {
		o.Workers = workers
		var buf bytes.Buffer
		data := Figure7(&buf, o)
		return data, buf.String()
	}

	serial, serialOut := run(1)
	parallel, parallelOut := run(poolWorkers())
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Figure7 data diverges between 1 worker and %d workers", poolWorkers())
	}
	if serialOut != parallelOut {
		t.Fatalf("Figure7 report not byte-identical across worker counts:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
			serialOut, poolWorkers(), parallelOut)
	}

	again, againOut := run(poolWorkers())
	if !reflect.DeepEqual(parallel, again) || parallelOut != againOut {
		t.Fatalf("Figure7 not reproducible across two runs at %d workers", poolWorkers())
	}
}

// TestFigure8ParallelIdenticalAndTimed runs the Figure 8 sweep serially
// and on a full worker pool: the outputs must be byte-identical, and on a
// multi-core machine the parallel sweep must be faster.
func TestFigure8ParallelIdenticalAndTimed(t *testing.T) {
	o := Options{Seeds: []uint64{1}}
	run := func(workers int) (map[string]map[string][]float64, string, time.Duration) {
		o.Workers = workers
		var buf bytes.Buffer
		start := time.Now()
		data := Figure8(&buf, o)
		return data, buf.String(), time.Since(start)
	}

	serial, serialOut, serialWall := run(1)
	parallel, parallelOut, parallelWall := run(poolWorkers())
	t.Logf("Figure8 sweep: workers=1 %v, workers=%d %v", serialWall, poolWorkers(), parallelWall)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Figure8 data diverges between 1 worker and %d workers", poolWorkers())
	}
	if serialOut != parallelOut {
		t.Fatal("Figure8 report not byte-identical across worker counts")
	}
	if runtime.GOMAXPROCS(0) > 1 && parallelWall >= serialWall {
		t.Errorf("parallel Figure8 sweep (%v at %d workers) not faster than serial (%v)",
			parallelWall, poolWorkers(), serialWall)
	}
}

// BenchmarkFigure8Sweep times the Figure 8 sweep per worker count, so
// `go test -bench Figure8Sweep ./internal/harness` shows the wall-clock
// effect of the pool directly.
func BenchmarkFigure8Sweep(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(map[bool]string{true: "workers=1", false: "workers=gomaxprocs"}[workers == 1], func(b *testing.B) {
			o := Options{Seeds: []uint64{1}, Workers: workers}
			for i := 0; i < b.N; i++ {
				Figure8(io.Discard, o)
			}
		})
	}
}

// TestProgressCallbackCoversPlan checks the per-cell progress plumbing
// through the harness options.
func TestProgressCallbackCoversPlan(t *testing.T) {
	var calls atomic.Int64
	var total atomic.Int64
	o := Options{
		Seeds:   []uint64{1, 2},
		Workers: 2,
		Only:    []string{"List"},
		Progress: func(p exp.Progress) {
			calls.Add(1)
			total.Store(int64(p.Total))
			if p.Cell.Workload != "List" {
				t.Errorf("unexpected cell %v under Only filter", p.Cell)
			}
		},
	}
	Figure1(io.Discard, 4, o)
	// Figure 1 restricted to List: 1 workload × 1 engine × 1 thread
	// count × 2 seeds.
	if calls.Load() != 2 || total.Load() != 2 {
		t.Fatalf("progress calls=%d total=%d, want 2/2", calls.Load(), total.Load())
	}
}

// TestOnlyFilterSelectsAndOrders checks workload filtering for figure
// sweeps.
func TestOnlyFilterSelectsAndOrders(t *testing.T) {
	o := Options{Only: []string{"rbtree", "GENOME"}}
	got := o.filterWorkloads(registryNames())
	if !reflect.DeepEqual(got, []string{"RBTree", "Genome"}) {
		t.Fatalf("filterWorkloads = %v", got)
	}
	var buf bytes.Buffer
	o.Seeds = []uint64{1}
	data := Figure7(&buf, o)
	if len(data) != 2 {
		t.Fatalf("filtered Figure7 covered %d workloads, want 2", len(data))
	}
	if _, ok := data["Genome"]; !ok {
		t.Fatalf("filtered Figure7 missing Genome: %v", data)
	}
}
