package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSV export of the figure data, so the series can be re-plotted against
// the paper's charts with any plotting tool.

// WriteFigure7CSV renders Figure 7 data (from Figure7) as CSV rows:
// benchmark,threads,engine,aborts_relative_to_2pl.
func WriteFigure7CSV(w io.Writer, data map[string]map[int][3]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "threads", "engine", "aborts_rel_2pl"}); err != nil {
		return fmt.Errorf("harness: write csv header: %w", err)
	}
	engines := []string{"2PL", "SONTM", "SI-TM"}
	for _, name := range sortedKeys(data) {
		rows := data[name]
		var threads []int
		for th := range rows {
			threads = append(threads, th)
		}
		sort.Ints(threads)
		for _, th := range threads {
			for ei, e := range engines {
				rec := []string{name, strconv.Itoa(th), e, formatFloat(rows[th][ei])}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("harness: write csv row: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure8CSV renders Figure 8 data (from Figure8) as CSV rows:
// benchmark,threads,engine,speedup.
func WriteFigure8CSV(w io.Writer, data map[string]map[string][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "threads", "engine", "speedup"}); err != nil {
		return fmt.Errorf("harness: write csv header: %w", err)
	}
	for _, name := range sortedKeys(data) {
		series := data[name]
		for _, engine := range sortedKeys(series) {
			for i, sp := range series[engine] {
				if i >= len(Fig8Threads) {
					break
				}
				rec := []string{name, strconv.Itoa(Fig8Threads[i]), engine, formatFloat(sp)}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("harness: write csv row: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV renders Table 2 data (from Table2) as CSV rows:
// benchmark,depth,accesses.
func WriteTable2CSV(w io.Writer, data map[string][6]uint64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "depth", "accesses"}); err != nil {
		return fmt.Errorf("harness: write csv header: %w", err)
	}
	depths := []string{"1st", "2nd", "3rd", "4th", "5th", "tail"}
	for _, name := range sortedKeys(data) {
		row := data[name]
		for d, label := range depths {
			rec := []string{name, label, strconv.FormatUint(row[d], 10)}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("harness: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
