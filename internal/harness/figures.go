package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/cache"
)

// Fig1Workloads is the benchmark set shown in the paper's Figure 1.
var Fig1Workloads = []string{"Genome", "Bayes", "Intruder", "Kmeans", "Labyrinth", "SSCA2", "Vacation", "List", "RBTree"}

// Figure1 measures the read-write versus write-write abort breakdown
// under 2PL at the given thread count and writes the table: the paper
// reports 75-99% of aborts are read-write across the suite.
func Figure1(w io.Writer, threads int, o Options) []Result {
	names := o.filterWorkloads(Fig1Workloads)
	res := mustSweep(names, []EngineKind{TwoPL}, []int{threads}, o)
	return renderFigure1(w, threads, names, res)
}

// renderFigure1 renders Figure 1 from seed-averaged sweep points — a
// pure function of aggregated cell results, no simulator calls.
func renderFigure1(w io.Writer, threads int, names []string, res map[sweepKey]Result) []Result {
	fmt.Fprintf(w, "Figure 1: Read-Write and Write-Write Aborts in 2PL (%d threads)\n", threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\taborts\tread-write %\twrite-write %")
	var out []Result
	for _, name := range names {
		r := res[sweepKey{Workload: name, Engine: TwoPL, Threads: threads}]
		total := r.RWAborts + r.WWAborts
		rw, ww := 0.0, 0.0
		if total > 0 {
			rw = 100 * r.RWAborts / total
			ww = 100 * r.WWAborts / total
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%.1f\n", name, r.Aborts, rw, ww)
		out = append(out, r)
	}
	tw.Flush()
	return out
}

// Fig7Threads are the thread counts of the Figure 7 panels.
var Fig7Threads = []int{8, 16, 32}

// fig7Engines are the engines compared in Figures 7 and 8, in column
// order.
var fig7Engines = []EngineKind{TwoPL, SONTM, SITM}

// Figure7 measures abort counts relative to 2PL for every benchmark at 8,
// 16 and 32 threads and writes one table per benchmark. Values below 1.0
// mean fewer aborts than 2PL at the same thread count.
func Figure7(w io.Writer, o Options) map[string]map[int][3]float64 {
	names := o.filterWorkloads(registryNames())
	res := mustSweep(names, fig7Engines, Fig7Threads, o)
	return renderFigure7(w, names, res)
}

// renderFigure7 renders Figure 7 from seed-averaged sweep points — a
// pure function of aggregated cell results, no simulator calls.
func renderFigure7(w io.Writer, names []string, res map[sweepKey]Result) map[string]map[int][3]float64 {
	fmt.Fprintln(w, "Figure 7: Abort rates relative to 2PL")
	out := make(map[string]map[int][3]float64)
	for _, name := range names {
		out[name] = make(map[int][3]float64)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\tthreads\t2PL\tSONTM\tSI-TM\n", name)
		for _, th := range Fig7Threads {
			base := res[sweepKey{Workload: name, Engine: TwoPL, Threads: th}]
			cs := res[sweepKey{Workload: name, Engine: SONTM, Threads: th}]
			si := res[sweepKey{Workload: name, Engine: SITM, Threads: th}]
			rel := func(r Result) float64 {
				if base.Aborts == 0 {
					if r.Aborts == 0 {
						return 0
					}
					return 1
				}
				return r.Aborts / base.Aborts
			}
			row := [3]float64{1, rel(cs), rel(si)}
			if base.Aborts == 0 {
				row[0] = 0
			}
			out[name][th] = row
			fmt.Fprintf(tw, "\t%d\t%.4f\t%.4f\t%.4f\n", th, row[0], row[1], row[2])
		}
		tw.Flush()
	}
	return out
}

// Fig8Threads are the x-axis points of Figure 8.
var Fig8Threads = []int{1, 2, 4, 8, 16, 32}

// Figure8 measures application speedup — simulated-cycle throughput
// normalised to the same engine at one thread — for every benchmark and
// engine, and writes one table per benchmark.
func Figure8(w io.Writer, o Options) map[string]map[string][]float64 {
	names := o.filterWorkloads(registryNames())
	res := mustSweep(names, fig7Engines, Fig8Threads, o)
	return renderFigure8(w, names, res)
}

// renderFigure8 renders Figure 8 from seed-averaged sweep points — a
// pure function of aggregated cell results, no simulator calls.
func renderFigure8(w io.Writer, names []string, res map[sweepKey]Result) map[string]map[string][]float64 {
	fmt.Fprintln(w, "Figure 8: Application speedup (throughput vs 1 thread)")
	out := make(map[string]map[string][]float64)
	for _, name := range names {
		out[name] = make(map[string][]float64)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\tthreads\t2PL\tSONTM\tSI-TM\n", name)
		series := make(map[EngineKind][]float64)
		for _, kind := range fig7Engines {
			base := res[sweepKey{Workload: name, Engine: kind, Threads: 1}].Throughput
			for _, th := range Fig8Threads {
				r := res[sweepKey{Workload: name, Engine: kind, Threads: th}]
				sp := 0.0
				if base > 0 {
					sp = r.Throughput / base
				}
				series[kind] = append(series[kind], sp)
			}
			out[name][kind] = series[kind]
		}
		for i, th := range Fig8Threads {
			fmt.Fprintf(tw, "\t%d\t%.2f\t%.2f\t%.2f\n", th, series[TwoPL][i], series[SONTM][i], series[SITM][i])
		}
		tw.Flush()
	}
	return out
}

// Table1 writes the simulated architecture parameters (Table 1).
func Table1(w io.Writer) {
	cfg := cache.DefaultConfig()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: Simulated Architecture")
	fmt.Fprintf(tw, "CPU cores\t32 (logical threads)\n")
	fmt.Fprintf(tw, "L1D cache size\t%d KByte, 4-way, %d cycles\n", cfg.L1SizeBytes>>10, cfg.L1Latency)
	fmt.Fprintf(tw, "L2 cache size\t%d KByte, 8-way, %d cycles\n", cfg.L2SizeBytes>>10, cfg.L2Latency)
	fmt.Fprintf(tw, "L3 cache size\t%d MByte, 16-way, %d cycles (8 MByte MVM partition)\n", cfg.L3SizeBytes>>20, cfg.L3Latency)
	fmt.Fprintf(tw, "Memory latency\t%d cycles\n", cfg.MemLatency)
	fmt.Fprintf(tw, "Translation cache\t%d entries\n", cfg.XlateEntries)
	tw.Flush()
}

// Table2 runs every benchmark on SI-TM with an unbounded MVM at the given
// thread count and writes the per-version access histogram of Appendix A:
// the paper finds <1% of accesses target versions older than the 4th.
func Table2(w io.Writer, threads int, o Options) map[string][6]uint64 {
	o.UnboundedVersions = true
	names := o.filterWorkloads(registryNames())
	res := mustSweep(names, []EngineKind{SITM}, []int{threads}, o)
	return renderTable2(w, threads, names, res)
}

// renderTable2 renders Table 2 from seed-averaged sweep points — a pure
// function of aggregated cell results, no simulator calls.
func renderTable2(w io.Writer, threads int, names []string, res map[sweepKey]Result) map[string][6]uint64 {
	fmt.Fprintf(w, "Table 2: Number of accesses to specific MVM versions (%d threads, unbounded)\n", threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\t1st\t2nd\t3rd\t4th\t5th\ttail\tolder-than-4th %")
	out := make(map[string][6]uint64)
	for _, name := range names {
		r := res[sweepKey{Workload: name, Engine: SITM, Threads: threads}]
		var row [6]uint64
		copy(row[:5], r.MVM.AccessDepth[:])
		row[5] = r.MVM.AccessTail
		out[name] = row
		var total, old uint64
		for i, v := range row {
			total += v
			if i >= 4 {
				old += v
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(old) / float64(total)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\n", name, row[0], row[1], row[2], row[3], row[4], row[5], pct)
	}
	tw.Flush()
	return out
}
