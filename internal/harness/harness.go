// Package harness runs the paper's evaluation (§6): it sweeps workloads ×
// TM engines × thread counts on the deterministic machine simulator,
// averages runs over seeds, and renders the text equivalents of Figure 1
// (read-write vs write-write abort breakdown under 2PL), Figure 7 (abort
// rates relative to 2PL), Figure 8 (application speedup) and Table 2 /
// Appendix A (accesses per MVM version depth).
//
// The sweeps are expressed as experiment plans (internal/exp): every
// (workload, engine, threads, seed) cell is one isolated deterministic
// simulation, executed on a bounded pool of OS goroutines. Engines are
// constructed through the tm engine registry; each cell builds its own
// engine, memory hierarchy and workload instance (shared-nothing), so the
// lowest-cycle-first schedule inside a cell is unaffected by how many
// cells run concurrently and all reports are byte-identical at any worker
// count.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/exp"
	"repro/internal/micro"
	"repro/internal/mvm"
	"repro/internal/sched"
	"repro/internal/stamp"
	"repro/internal/tm"
	"repro/internal/txlib"

	// Engine packages self-register with the tm registry.
	"repro/internal/core"
	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

// Workload is the surface the microbenchmarks and STAMP kernels expose;
// they satisfy it structurally.
type Workload interface {
	Name() string
	Setup(m *txlib.Mem, threads int)
	Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig)
	Validate(m *txlib.Mem) string
}

// Scalable is implemented by workloads whose input sizes can be grown
// toward the paper's scale (Options.Scale).
type Scalable interface {
	Scale(factor int)
}

// EngineKind names a TM implementation in the tm engine registry.
type EngineKind = string

const (
	// TwoPL is the eager requester-wins baseline (§6.1).
	TwoPL EngineKind = "2PL"
	// SONTM is the conflict-serializable baseline (§6.1).
	SONTM EngineKind = "SONTM"
	// SITM is the paper's snapshot-isolation TM (§4).
	SITM EngineKind = "SI-TM"
	// SSITM is serializable SI-TM (§5.2).
	SSITM EngineKind = "SSI-TM"
)

// Options tunes a run.
type Options struct {
	// Seeds to average over; the paper averages 5 runs with different
	// random seeds. Defaults to {1, 2, 3}.
	Seeds []uint64
	// Workers bounds the experiment runner's worker pool; 0 means one
	// worker per available CPU (runtime.GOMAXPROCS). Results do not
	// depend on the worker count.
	Workers int
	// Progress, when non-nil, receives a callback after each completed
	// plan cell (completion order, serialised).
	Progress func(exp.Progress)
	// Only restricts figure sweeps to these workload names
	// (case-insensitive); empty selects every workload of the figure.
	// Validate names with WorkloadByName before building plans.
	Only []string
	// NoBackoff replaces the tuned exponential backoff with a minimal
	// constant (jittered, non-growing) delay — the §6.4 ablation
	// ("without exponential backoff 2PL and CS show even higher abort
	// rates"). A literal zero delay would let the eager engines
	// livelock forever under the deterministic scheduler, which is the
	// very pathology the paper's tuning avoids.
	NoBackoff bool
	// UnboundedVersions configures SI-TM's MVM with no version bound
	// (the Table 2 / Appendix A measurement).
	UnboundedVersions bool
	// WordGranularity enables SI-TM's §4.2 word-level conflict filter.
	WordGranularity bool
	// NoCoalescing disables version coalescing (ablation).
	NoCoalescing bool
	// DropOldest selects the alternative version-overflow policy.
	DropOldest bool
	// NoXlate disables the translation cache (ablation).
	NoXlate bool
	// Scale multiplies workload input sizes (1 = the fast defaults;
	// larger values approach the paper's configurations at the cost of
	// wall-clock time).
	Scale int
	// CellDone, when non-nil, receives every completed cell and its
	// simulated makespan in cycles (the benchmark harness sums these
	// into a simulated-throughput figure). It is called from worker
	// goroutines concurrently; callers must synchronise, e.g. with an
	// atomic counter.
	CellDone func(c exp.Cell, simCycles uint64)

	// measureMVM additionally runs the §3.1–§3.3 MVM measurements
	// (overheads, dedup) per cell; set internally by MVMReport.
	measureMVM bool
	// refSched runs every cell under the reference linear-scan
	// conductor (sched.Sim.Slow) instead of the inline fast path; the
	// differential tests use it to pin byte-identical figure output.
	refSched bool
	// refCache runs every cell with the reference memory-hierarchy
	// model (cache.SlowHierarchy) instead of the way-predicted fast
	// path; the differential tests use it to pin byte-identical figure
	// output.
	refCache bool
	// refSets runs every cell with the reference map-based access-set
	// implementation (each engine's slow.go) instead of the
	// signature-backed internal/aset fast path; the differential tests
	// use it to pin byte-identical figure output.
	refSets bool
}

// DefaultOptions returns the evaluation defaults.
func DefaultOptions() Options { return Options{Seeds: []uint64{1, 2, 3}} }

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	return o
}

// engineOptions maps the harness knobs onto the registry's
// representation-independent engine options.
func (o Options) engineOptions() tm.EngineOptions {
	return tm.EngineOptions{
		WordGranularity:   o.WordGranularity,
		UnboundedVersions: o.UnboundedVersions,
		DropOldest:        o.DropOldest,
		NoCoalescing:      o.NoCoalescing,
		NoXlate:           o.NoXlate,
		ReferenceCache:    o.refCache,
		ReferenceSets:     o.refSets,
	}
}

// runner returns the experiment runner configured by the options.
func (o Options) runner() exp.Runner {
	return exp.Runner{Workers: o.Workers, Progress: o.Progress}
}

// filterWorkloads restricts names to o.Only (case-insensitive), keeping
// the input order; an empty Only keeps all names.
func (o Options) filterWorkloads(names []string) []string {
	if len(o.Only) == 0 {
		return names
	}
	var out []string
	for _, name := range names {
		for _, only := range o.Only {
			if strings.EqualFold(name, only) {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// Result aggregates one workload × engine × thread-count cell, averaged
// over seeds.
type Result struct {
	Engine   string
	Workload string
	Threads  int

	Commits     float64
	Aborts      float64
	RWAborts    float64
	WWAborts    float64
	OtherAborts float64
	AbortRate   float64 // aborts / (commits+aborts)
	Makespan    float64 // simulated cycles
	Throughput  float64 // commits per 1000 simulated cycles
	MVM         mvm.Stats
	ValidateMsg string
}

// cellStats is the raw measurement of one plan cell: a single-seed run of
// one workload on one engine at one thread count.
type cellStats struct {
	workload    string
	commits     float64
	aborts      float64
	rwAborts    float64
	wwAborts    float64
	otherAborts float64
	makespan    float64
	mvm         mvm.Stats
	validateMsg string

	// Filled only under Options.measureMVM (the §3.1–§3.3 report).
	overheadPct float64
	sharablePct float64
	stalls      uint64
}

// backoffFor returns the retry policy. Every engine's software retry loop
// uses the tuned exponential backoff (the RSTM retry loops the paper
// builds on back off unconditionally); the paper additionally notes the
// two eager mechanisms *depend* on it to avoid livelock (§6.4) — the
// NoBackoff ablation shows that dependence.
func backoffFor(o Options) tm.BackoffConfig {
	if o.NoBackoff {
		return tm.BackoffConfig{Enabled: true, Base: 32, MaxShift: 0}
	}
	return tm.DefaultBackoff()
}

// warmState is the per-worker state of a sweep, built once per experiment
// worker and reused across all the cells that worker executes: the
// resolved engine options and backoff policy, plus a cache scratch pool
// that recycles the multi-megabyte simulated tag/stamp arrays between
// consecutive cells. None of it affects measured results — cells stay
// shared-nothing across workers and byte-identical at any worker count.
type warmState struct {
	eopts tm.EngineOptions
	bo    tm.BackoffConfig
}

// warmFactory returns the per-worker warm-state constructor for o.
func (o Options) warmFactory() func() warmState {
	return func() warmState {
		eopts := o.engineOptions()
		eopts.CacheScratch = cache.NewScratch()
		return warmState{eopts: eopts, bo: backoffFor(o)}
	}
}

// releaser is the optional engine surface that returns pooled simulated
// cache arrays to the worker's scratch once a cell is measured.
type releaser interface{ ReleaseCaches() }

// runCell executes one plan cell as an isolated simulation: a fresh
// workload instance, a fresh engine from the registry and a fresh
// deterministic machine, sharing nothing with concurrently running cells.
// Only the warm state (scratch memory, resolved options) carries over
// between the cells of one worker.
func runCell(c exp.Cell, factory func() Workload, o Options, warm warmState) cellStats {
	w := factory()
	if s, ok := w.(Scalable); ok && o.Scale > 1 {
		s.Scale(o.Scale)
	}
	e, err := tm.NewEngine(c.Engine, warm.eopts)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	m := txlib.NewMem(e)
	w.Setup(m, c.Threads)
	bo := warm.bo
	s := sched.New(c.Threads, c.Seed)
	body := func(th *sched.Thread) { w.Run(m, th, bo) }
	if o.refSched {
		s.Slow(body)
	} else {
		s.Run(body)
	}

	st := e.Stats()
	cs := cellStats{
		workload:    w.Name(),
		commits:     float64(st.Commits),
		aborts:      float64(st.TotalAborts()),
		rwAborts:    float64(st.Aborts[tm.AbortReadWrite]),
		wwAborts:    float64(st.Aborts[tm.AbortWriteWrite]),
		otherAborts: float64(st.Aborts[tm.AbortOrder] + st.Aborts[tm.AbortCapacity] + st.Aborts[tm.AbortSkew]),
		makespan:    float64(s.Makespan()),
		validateMsg: w.Validate(m),
	}
	if si, ok := e.(*core.Engine); ok {
		cs.mvm = si.MVM().Stats()
		if o.measureMVM {
			cs.overheadPct = si.MVM().MeasureOverheads(1).OverheadPct
			cs.sharablePct = si.MVM().MeasureDedup().SharablePct()
			cs.stalls = st.Stalls
		}
	}
	if r, ok := e.(releaser); ok {
		r.ReleaseCaches()
	}
	if o.CellDone != nil {
		o.CellDone(c, s.Makespan())
	}
	return cs
}

// aggregate folds the per-seed cell measurements of one sweep point into
// a seed-averaged Result.
func aggregate(engine EngineKind, threads int, cells []cellStats) Result {
	agg := Result{Engine: engine, Threads: threads}
	for _, c := range cells {
		agg.Workload = c.workload
		agg.Commits += c.commits
		agg.Aborts += c.aborts
		agg.RWAborts += c.rwAborts
		agg.WWAborts += c.wwAborts
		agg.OtherAborts += c.otherAborts
		agg.Makespan += c.makespan
		if c.validateMsg != "" && agg.ValidateMsg == "" {
			agg.ValidateMsg = c.validateMsg
		}
		agg.MVM.AccessTail += c.mvm.AccessTail
		for i := range c.mvm.AccessDepth {
			agg.MVM.AccessDepth[i] += c.mvm.AccessDepth[i]
		}
		agg.MVM.Coalesced += c.mvm.Coalesced
		agg.MVM.Installs += c.mvm.Installs
		agg.MVM.GCReclaimed += c.mvm.GCReclaimed
		agg.MVM.DroppedOld += c.mvm.DroppedOld
		if c.mvm.PeakVersions > agg.MVM.PeakVersions {
			agg.MVM.PeakVersions = c.mvm.PeakVersions
		}
	}
	n := float64(len(cells))
	agg.Commits /= n
	agg.Aborts /= n
	agg.RWAborts /= n
	agg.WWAborts /= n
	agg.OtherAborts /= n
	agg.Makespan /= n
	if agg.Commits+agg.Aborts > 0 {
		agg.AbortRate = agg.Aborts / (agg.Commits + agg.Aborts)
	}
	if agg.Makespan > 0 {
		agg.Throughput = agg.Commits / agg.Makespan * 1000
	}
	return agg
}

// Run executes workload (built fresh per seed by factory) on the named
// engine with the given thread count and returns seed-averaged results.
// The per-seed cells run on the options' worker pool.
func Run(kind EngineKind, factory func() Workload, threads int, o Options) Result {
	o = o.withDefaults()
	name := factory().Name()
	plan := make(exp.Plan, 0, len(o.Seeds))
	for _, seed := range o.Seeds {
		plan = append(plan, exp.Cell{Workload: name, Engine: kind, Threads: threads, Seed: seed})
	}
	rs := exp.RunWarm(o.runner(), plan, o.warmFactory(), func(_ int, c exp.Cell, w warmState) cellStats {
		return runCell(c, factory, o, w)
	})
	return aggregate(kind, threads, exp.Values(rs))
}

// sweepKey addresses one seed-averaged point of a sweep.
type sweepKey struct {
	Workload string
	Engine   EngineKind
	Threads  int
}

// sweep runs the full workloads × engines × threads × seeds cross-product
// as ONE experiment plan — so the worker pool parallelises across the
// whole sweep — and returns the seed-averaged results keyed by sweep
// point. Workload names must exist in the registry.
func sweep(workloads []string, engines []EngineKind, threads []int, o Options) (map[sweepKey]Result, error) {
	o = o.withDefaults()
	factories := make(map[string]func() Workload, len(workloads))
	for _, name := range workloads {
		f, err := WorkloadByName(name)
		if err != nil {
			return nil, err
		}
		factories[name] = f
	}
	plan := exp.Cross(workloads, engines, threads, o.Seeds)
	rs := exp.RunWarm(o.runner(), plan, o.warmFactory(), func(_ int, c exp.Cell, w warmState) cellStats {
		return runCell(c, factories[c.Workload], o, w)
	})
	out := make(map[sweepKey]Result, len(rs)/len(o.Seeds))
	for i := 0; i < len(rs); i += len(o.Seeds) {
		cells := exp.Values(rs[i : i+len(o.Seeds)])
		c := rs[i].Cell
		out[sweepKey{Workload: c.Workload, Engine: c.Engine, Threads: c.Threads}] =
			aggregate(c.Engine, c.Threads, cells)
	}
	return out, nil
}

// mustSweep is sweep for callers whose workload names come from the
// registry itself and therefore cannot be unknown.
func mustSweep(workloads []string, engines []EngineKind, threads []int, o Options) map[sweepKey]Result {
	m, err := sweep(workloads, engines, threads, o)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return m
}

// Registry returns the workload factories in the paper's presentation
// order: the three microbenchmarks followed by the seven STAMP kernels.
func Registry() []func() Workload {
	return []func() Workload{
		func() Workload { return micro.NewArray() },
		func() Workload { return micro.NewList() },
		func() Workload { return micro.NewRBTree() },
		func() Workload { return stamp.NewGenome() },
		func() Workload { return stamp.NewIntruder() },
		func() Workload { return stamp.NewKmeans() },
		func() Workload { return stamp.NewLabyrinth() },
		func() Workload { return stamp.NewVacation() },
		func() Workload { return stamp.NewSSCA2() },
		func() Workload { return stamp.NewBayes() },
	}
}

// registryNames returns the workload names in presentation order.
func registryNames() []string {
	var names []string
	for _, f := range Registry() {
		names = append(names, f().Name())
	}
	return names
}

// WorkloadByName returns the registry entry for name (case-insensitive).
// Unknown names return an error listing the valid workload names.
func WorkloadByName(name string) (func() Workload, error) {
	for _, f := range Registry() {
		if strings.EqualFold(f().Name(), name) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown workload %q (valid: %s)",
		name, strings.Join(Workloads(), ", "))
}

// Workloads lists the registered workload names.
func Workloads() []string {
	names := registryNames()
	sort.Strings(names)
	return names
}
