// Package harness runs the paper's evaluation (§6): it sweeps workloads ×
// TM engines × thread counts on the deterministic machine simulator,
// averages runs over seeds, and renders the text equivalents of Figure 1
// (read-write vs write-write abort breakdown under 2PL), Figure 7 (abort
// rates relative to 2PL), Figure 8 (application speedup) and Table 2 /
// Appendix A (accesses per MVM version depth).
package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/micro"
	"repro/internal/mvm"
	"repro/internal/sched"
	"repro/internal/sontm"
	"repro/internal/stamp"
	"repro/internal/tm"
	"repro/internal/twopl"
	"repro/internal/txlib"
)

// Workload is the surface the microbenchmarks and STAMP kernels expose;
// they satisfy it structurally.
type Workload interface {
	Name() string
	Setup(m *txlib.Mem, threads int)
	Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig)
	Validate(m *txlib.Mem) string
}

// Scalable is implemented by workloads whose input sizes can be grown
// toward the paper's scale (Options.Scale).
type Scalable interface {
	Scale(factor int)
}

// EngineKind selects a TM implementation.
type EngineKind int

const (
	// TwoPL is the eager requester-wins baseline (§6.1).
	TwoPL EngineKind = iota
	// SONTM is the conflict-serializable baseline (§6.1).
	SONTM
	// SITM is the paper's snapshot-isolation TM (§4).
	SITM
	// SSITM is serializable SI-TM (§5.2).
	SSITM
)

func (k EngineKind) String() string {
	switch k {
	case TwoPL:
		return "2PL"
	case SONTM:
		return "SONTM"
	case SITM:
		return "SI-TM"
	case SSITM:
		return "SSI-TM"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Options tunes a run.
type Options struct {
	// Seeds to average over; the paper averages 5 runs with different
	// random seeds. Defaults to {1, 2, 3}.
	Seeds []uint64
	// NoBackoff replaces the tuned exponential backoff with a minimal
	// constant (jittered, non-growing) delay — the §6.4 ablation
	// ("without exponential backoff 2PL and CS show even higher abort
	// rates"). A literal zero delay would let the eager engines
	// livelock forever under the deterministic scheduler, which is the
	// very pathology the paper's tuning avoids.
	NoBackoff bool
	// UnboundedVersions configures SI-TM's MVM with no version bound
	// (the Table 2 / Appendix A measurement).
	UnboundedVersions bool
	// WordGranularity enables SI-TM's §4.2 word-level conflict filter.
	WordGranularity bool
	// NoCoalescing disables version coalescing (ablation).
	NoCoalescing bool
	// DropOldest selects the alternative version-overflow policy.
	DropOldest bool
	// NoXlate disables the translation cache (ablation).
	NoXlate bool
	// Scale multiplies workload input sizes (1 = the fast defaults;
	// larger values approach the paper's configurations at the cost of
	// wall-clock time).
	Scale int
}

// DefaultOptions returns the evaluation defaults.
func DefaultOptions() Options { return Options{Seeds: []uint64{1, 2, 3}} }

// Result aggregates one workload × engine × thread-count cell, averaged
// over seeds.
type Result struct {
	Engine   string
	Workload string
	Threads  int

	Commits     float64
	Aborts      float64
	RWAborts    float64
	WWAborts    float64
	OtherAborts float64
	AbortRate   float64 // aborts / (commits+aborts)
	Makespan    float64 // simulated cycles
	Throughput  float64 // commits per 1000 simulated cycles
	MVM         mvm.Stats
	ValidateMsg string
}

// newEngine builds a fresh engine of the given kind per run.
func newEngine(kind EngineKind, o Options) tm.Engine {
	switch kind {
	case TwoPL:
		return twopl.New(twopl.DefaultConfig())
	case SONTM:
		return sontm.New(sontm.DefaultConfig())
	case SITM, SSITM:
		cfg := core.DefaultConfig()
		cfg.Serializable = kind == SSITM
		cfg.WordGranularity = o.WordGranularity
		if o.UnboundedVersions {
			cfg.MVM.Policy = mvm.Unbounded
		}
		if o.DropOldest {
			cfg.MVM.Policy = mvm.DropOldest
		}
		if o.NoCoalescing {
			cfg.MVM.Coalesce = false
		}
		if o.NoXlate {
			cfg.Cache.XlateEntries = 0
		}
		return core.New(cfg)
	}
	panic("harness: unknown engine kind")
}

// backoffFor returns the retry policy. Every engine's software retry loop
// uses the tuned exponential backoff (the RSTM retry loops the paper
// builds on back off unconditionally); the paper additionally notes the
// two eager mechanisms *depend* on it to avoid livelock (§6.4) — the
// NoBackoff ablation shows that dependence.
func backoffFor(kind EngineKind, o Options) tm.BackoffConfig {
	if o.NoBackoff {
		return tm.BackoffConfig{Enabled: true, Base: 32, MaxShift: 0}
	}
	_ = kind
	return tm.DefaultBackoff()
}

// Run executes workload (built fresh per seed by factory) on an engine of
// the given kind with the given thread count and returns seed-averaged
// results.
func Run(kind EngineKind, factory func() Workload, threads int, o Options) Result {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	var agg Result
	agg.Threads = threads
	agg.Engine = kind.String()
	for _, seed := range o.Seeds {
		w := factory()
		if s, ok := w.(Scalable); ok && o.Scale > 1 {
			s.Scale(o.Scale)
		}
		agg.Workload = w.Name()
		e := newEngine(kind, o)
		m := txlib.NewMem(e)
		w.Setup(m, threads)
		bo := backoffFor(kind, o)
		s := sched.New(threads, seed)
		s.Run(func(th *sched.Thread) { w.Run(m, th, bo) })

		st := e.Stats()
		agg.Commits += float64(st.Commits)
		agg.Aborts += float64(st.TotalAborts())
		agg.RWAborts += float64(st.Aborts[tm.AbortReadWrite])
		agg.WWAborts += float64(st.Aborts[tm.AbortWriteWrite])
		agg.OtherAborts += float64(st.Aborts[tm.AbortOrder] + st.Aborts[tm.AbortCapacity] + st.Aborts[tm.AbortSkew])
		agg.Makespan += float64(s.Makespan())
		if msg := w.Validate(m); msg != "" && agg.ValidateMsg == "" {
			agg.ValidateMsg = msg
		}
		if si, ok := e.(*core.Engine); ok {
			ms := si.MVM().Stats()
			agg.MVM.AccessTail += ms.AccessTail
			for i := range ms.AccessDepth {
				agg.MVM.AccessDepth[i] += ms.AccessDepth[i]
			}
			agg.MVM.Coalesced += ms.Coalesced
			agg.MVM.Installs += ms.Installs
			agg.MVM.GCReclaimed += ms.GCReclaimed
			if ms.PeakVersions > agg.MVM.PeakVersions {
				agg.MVM.PeakVersions = ms.PeakVersions
			}
		}
	}
	n := float64(len(o.Seeds))
	agg.Commits /= n
	agg.Aborts /= n
	agg.RWAborts /= n
	agg.WWAborts /= n
	agg.OtherAborts /= n
	agg.Makespan /= n
	if agg.Commits+agg.Aborts > 0 {
		agg.AbortRate = agg.Aborts / (agg.Commits + agg.Aborts)
	}
	if agg.Makespan > 0 {
		agg.Throughput = agg.Commits / agg.Makespan * 1000
	}
	return agg
}

// Registry returns the workload factories in the paper's presentation
// order: the three microbenchmarks followed by the seven STAMP kernels.
func Registry() []func() Workload {
	return []func() Workload{
		func() Workload { return micro.NewArray() },
		func() Workload { return micro.NewList() },
		func() Workload { return micro.NewRBTree() },
		func() Workload { return stamp.NewGenome() },
		func() Workload { return stamp.NewIntruder() },
		func() Workload { return stamp.NewKmeans() },
		func() Workload { return stamp.NewLabyrinth() },
		func() Workload { return stamp.NewVacation() },
		func() Workload { return stamp.NewSSCA2() },
		func() Workload { return stamp.NewBayes() },
	}
}

// byName returns the registry entry for name (case-insensitive), or nil.
func byName(name string) func() Workload {
	for _, f := range Registry() {
		if strings.EqualFold(f().Name(), name) {
			return f
		}
	}
	return nil
}

// Workloads lists the registered workload names.
func Workloads() []string {
	var names []string
	for _, f := range Registry() {
		names = append(names, f().Name())
	}
	sort.Strings(names)
	return names
}
