// Package harness runs the paper's evaluation (§6): it sweeps workloads ×
// TM engines × thread counts on the deterministic machine simulator,
// averages runs over seeds, and renders the text equivalents of Figure 1
// (read-write vs write-write abort breakdown under 2PL), Figure 7 (abort
// rates relative to 2PL), Figure 8 (application speedup) and Table 2 /
// Appendix A (accesses per MVM version depth).
//
// The package is the *figure layer* of the experiment stack: it builds
// experiment plans (internal/exp), hands them to the cell layer's
// CellRunner — which executes each (workload, engine, threads, seed)
// cell as one isolated deterministic simulation, optionally memoized
// through a content-addressed result cache (Options.Cache) — and renders
// figures as pure functions of the returned serializable cell results.
// Engines are constructed through the tm engine registry; each cell
// builds its own engine, memory hierarchy and workload instance
// (shared-nothing), so the lowest-cycle-first schedule inside a cell is
// unaffected by how many cells run concurrently and all reports are
// byte-identical at any worker count, and identical whether cells were
// simulated or served from a warm cache.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exp"
	"repro/internal/micro"
	"repro/internal/mvm"
	"repro/internal/oltp"
	"repro/internal/report"
	"repro/internal/stamp"

	// Engine packages self-register with the tm registry.
	_ "repro/internal/core"
	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

// Workload is the surface the microbenchmarks and STAMP kernels expose;
// they satisfy it structurally. It is defined by the cell layer
// (internal/exp) and aliased here for the workload registry.
type Workload = exp.Workload

// Scalable is implemented by workloads whose input sizes can be grown
// toward the paper's scale (Options.Scale).
type Scalable = exp.Scalable

// EngineKind names a TM implementation in the tm engine registry.
type EngineKind = string

const (
	// TwoPL is the eager requester-wins baseline (§6.1).
	TwoPL EngineKind = "2PL"
	// SONTM is the conflict-serializable baseline (§6.1).
	SONTM EngineKind = "SONTM"
	// SITM is the paper's snapshot-isolation TM (§4).
	SITM EngineKind = "SI-TM"
	// SSITM is serializable SI-TM (§5.2).
	SSITM EngineKind = "SSI-TM"
)

// Options tunes a run.
type Options struct {
	// Seeds to average over; the paper averages 5 runs with different
	// random seeds. Defaults to {1, 2, 3}.
	Seeds []uint64
	// Workers bounds the experiment runner's worker pool; 0 means one
	// worker per available CPU (runtime.GOMAXPROCS). Results do not
	// depend on the worker count.
	Workers int
	// Progress, when non-nil, receives a callback after each completed
	// plan cell (completion order, serialised), including whether the
	// cell was served from the result cache.
	Progress func(exp.Progress)
	// Only restricts figure sweeps to these workload names
	// (case-insensitive); empty selects every workload of the figure.
	// Validate names with WorkloadByName before building plans.
	Only []string
	// Cache, when non-nil, memoizes cell results across runs: cells
	// whose content-address (cell coordinates + configuration + source
	// fingerprints) is already stored are served without simulating.
	// Figure bytes are identical either way.
	Cache *exp.Cache
	// NoBackoff replaces the tuned exponential backoff with a minimal
	// constant (jittered, non-growing) delay — the §6.4 ablation
	// ("without exponential backoff 2PL and CS show even higher abort
	// rates"). A literal zero delay would let the eager engines
	// livelock forever under the deterministic scheduler, which is the
	// very pathology the paper's tuning avoids.
	NoBackoff bool
	// UnboundedVersions configures SI-TM's MVM with no version bound
	// (the Table 2 / Appendix A measurement).
	UnboundedVersions bool
	// WordGranularity enables SI-TM's §4.2 word-level conflict filter.
	WordGranularity bool
	// NoCoalescing disables version coalescing (ablation).
	NoCoalescing bool
	// DropOldest selects the alternative version-overflow policy.
	DropOldest bool
	// NoXlate disables the translation cache (ablation).
	NoXlate bool
	// Scale multiplies workload input sizes (1 = the fast defaults;
	// larger values approach the paper's configurations at the cost of
	// wall-clock time).
	Scale int
	// PerEvent runs the fast heap conductor with horizon batching
	// disabled: every charge goes through the per-event protocol, as it
	// did before multi-event quanta existed. Figures are byte-identical
	// either way — the knob exists as the differential baseline for the
	// batched conductor and as the reference point for the
	// coroutine-switch counters in sched_stats.
	PerEvent bool
	// CellDone, when non-nil, receives every completed cell and its
	// full result record (the benchmark harness sums makespans into a
	// simulated-throughput figure and accumulates scheduler counters).
	// It is called from worker goroutines concurrently; callers must
	// synchronise, e.g. with a mutex or atomic counters.
	CellDone func(c exp.Cell, res exp.CellResult)

	// measureMVM additionally runs the §3.1–§3.3 MVM measurements
	// (overheads, dedup) per cell; set internally by MVMReport.
	measureMVM bool
	// refSched runs every cell under the reference linear-scan
	// conductor (sched.Sim.Slow) instead of the inline fast path; the
	// differential tests use it to pin byte-identical figure output.
	refSched bool
	// refCache runs every cell with the reference memory-hierarchy
	// model (cache.SlowHierarchy) instead of the way-predicted fast
	// path; the differential tests use it to pin byte-identical figure
	// output.
	refCache bool
	// refSets runs every cell with the reference map-based access-set
	// implementation (each engine's slow.go) instead of the
	// signature-backed internal/aset fast path; the differential tests
	// use it to pin byte-identical figure output.
	refSets bool
	// refStore runs every cell with the retained dense mem backing
	// behind the engines' per-line tables and presence filters instead
	// of the paged O(touched) store; the differential tests use it to
	// pin byte-identical figure output.
	refStore bool
}

// DefaultOptions returns the evaluation defaults.
func DefaultOptions() Options { return Options{Seeds: []uint64{1, 2, 3}} }

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	return o
}

// cellConfig maps the harness knobs onto the cell layer's serializable
// cell configuration — the part of Options that participates in cache
// keys because it changes simulated results.
func (o Options) cellConfig() exp.CellConfig {
	return exp.CellConfig{
		WordGranularity:   o.WordGranularity,
		UnboundedVersions: o.UnboundedVersions,
		DropOldest:        o.DropOldest,
		NoCoalescing:      o.NoCoalescing,
		NoXlate:           o.NoXlate,
		NoBackoff:         o.NoBackoff,
		Scale:             o.Scale,
		MeasureMVM:        o.measureMVM,
		RefSched:          o.refSched,
		PerEvent:          o.PerEvent,
		RefCache:          o.refCache,
		RefSets:           o.refSets,
		RefStore:          o.refStore,
	}
}

// runner returns the experiment runner configured by the options.
func (o Options) runner() exp.Runner {
	return exp.Runner{Workers: o.Workers, Progress: o.Progress}
}

// cellRunner assembles the cell layer's executor for these options: the
// worker pool, the cell configuration, the workload registry and the
// optional result cache.
func (o Options) cellRunner() exp.CellRunner {
	return exp.CellRunner{
		Runner:   o.runner(),
		Config:   o.cellConfig(),
		Resolve:  WorkloadByName,
		Cache:    o.Cache,
		CellDone: o.CellDone,
	}
}

// filterWorkloads restricts names to o.Only (case-insensitive), keeping
// the input order; an empty Only keeps all names.
func (o Options) filterWorkloads(names []string) []string {
	if len(o.Only) == 0 {
		return names
	}
	var out []string
	for _, name := range names {
		for _, only := range o.Only {
			if strings.EqualFold(name, only) {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// Result aggregates one workload × engine × thread-count cell, averaged
// over seeds.
type Result struct {
	Engine   string
	Workload string
	Threads  int

	Commits     float64
	Aborts      float64
	RWAborts    float64
	WWAborts    float64
	OtherAborts float64
	ROCommits   float64 // committed with an empty write set
	AbortRate   float64 // aborts / (commits+aborts)
	Makespan    float64 // simulated cycles
	Throughput  float64 // commits per 1000 simulated cycles
	// CommitHist merges the per-seed commit-latency histograms: the
	// quantiles it reports cover every committed transaction of every
	// seed (merged, not averaged — quantiles do not average).
	CommitHist  report.Hist
	MVM         mvm.Stats
	ValidateMsg string
}

// aggregate folds the per-seed cell records of one sweep point into a
// seed-averaged Result. It is a pure function of serialized cell
// results: the floats it averages come from exact integer counters, so a
// record loaded from the cache aggregates byte-identically to one just
// simulated.
func aggregate(engine EngineKind, threads int, cells []exp.CellResult) Result {
	agg := Result{Engine: engine, Threads: threads}
	for _, c := range cells {
		agg.Workload = c.Workload
		agg.Commits += float64(c.Commits)
		agg.Aborts += float64(c.Aborts)
		agg.RWAborts += float64(c.RWAborts)
		agg.WWAborts += float64(c.WWAborts)
		agg.OtherAborts += float64(c.OtherAborts)
		agg.ROCommits += float64(c.ReadOnly)
		agg.CommitHist.Add(&c.CommitHist)
		agg.Makespan += float64(c.SimCycles)
		if c.ValidateMsg != "" && agg.ValidateMsg == "" {
			agg.ValidateMsg = c.ValidateMsg
		}
		agg.MVM.AccessTail += c.MVM.AccessTail
		for i := range c.MVM.AccessDepth {
			agg.MVM.AccessDepth[i] += c.MVM.AccessDepth[i]
		}
		agg.MVM.Coalesced += c.MVM.Coalesced
		agg.MVM.Installs += c.MVM.Installs
		agg.MVM.GCReclaimed += c.MVM.GCReclaimed
		agg.MVM.DroppedOld += c.MVM.DroppedOld
		if c.MVM.PeakVersions > agg.MVM.PeakVersions {
			agg.MVM.PeakVersions = c.MVM.PeakVersions
		}
	}
	n := float64(len(cells))
	agg.Commits /= n
	agg.Aborts /= n
	agg.RWAborts /= n
	agg.WWAborts /= n
	agg.OtherAborts /= n
	agg.ROCommits /= n
	agg.Makespan /= n
	if agg.Commits+agg.Aborts > 0 {
		agg.AbortRate = agg.Aborts / (agg.Commits + agg.Aborts)
	}
	if agg.Makespan > 0 {
		agg.Throughput = agg.Commits / agg.Makespan * 1000
	}
	return agg
}

// Run executes workload (built fresh per seed by factory) on the named
// engine with the given thread count and returns seed-averaged results.
// The per-seed cells run on the options' worker pool (and through the
// options' result cache, when configured).
func Run(kind EngineKind, factory func() Workload, threads int, o Options) Result {
	o = o.withDefaults()
	name := factory().Name()
	plan := make(exp.Plan, 0, len(o.Seeds))
	for _, seed := range o.Seeds {
		plan = append(plan, exp.Cell{Workload: name, Engine: kind, Threads: threads, Seed: seed})
	}
	cr := o.cellRunner()
	cr.Resolve = func(string) (func() Workload, error) { return factory, nil }
	rs, err := cr.Run(plan)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return aggregate(kind, threads, exp.Values(rs))
}

// sweepKey addresses one seed-averaged point of a sweep.
type sweepKey struct {
	Workload string
	Engine   EngineKind
	Threads  int
}

// aggregateSweep folds plan-ordered cell results — produced by a plan
// built with exp.Cross over o.Seeds innermost — into seed-averaged
// results keyed by sweep point. It is the pure aggregation half of a
// sweep: it touches no simulator, only serializable cell records.
func aggregateSweep(rs []exp.Result[exp.CellResult], nSeeds int) map[sweepKey]Result {
	out := make(map[sweepKey]Result, len(rs)/nSeeds)
	for i := 0; i < len(rs); i += nSeeds {
		cells := exp.Values(rs[i : i+nSeeds])
		c := rs[i].Cell
		out[sweepKey{Workload: c.Workload, Engine: c.Engine, Threads: c.Threads}] =
			aggregate(c.Engine, c.Threads, cells)
	}
	return out
}

// sweep runs the full workloads × engines × threads × seeds cross-product
// as ONE experiment plan — so the worker pool parallelises across the
// whole sweep — and returns the seed-averaged results keyed by sweep
// point. Workload names must exist in the registry.
func sweep(workloads []string, engines []EngineKind, threads []int, o Options) (map[sweepKey]Result, error) {
	o = o.withDefaults()
	plan := exp.Cross(workloads, engines, threads, o.Seeds)
	rs, err := o.cellRunner().Run(plan)
	if err != nil {
		return nil, err
	}
	return aggregateSweep(rs, len(o.Seeds)), nil
}

// mustSweep is sweep for callers whose workload names come from the
// registry itself and therefore cannot be unknown.
func mustSweep(workloads []string, engines []EngineKind, threads []int, o Options) map[sweepKey]Result {
	m, err := sweep(workloads, engines, threads, o)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return m
}

// Registry returns the workload factories in the paper's presentation
// order: the three microbenchmarks followed by the seven STAMP kernels.
func Registry() []func() Workload {
	return []func() Workload{
		func() Workload { return micro.NewArray() },
		func() Workload { return micro.NewList() },
		func() Workload { return micro.NewRBTree() },
		func() Workload { return stamp.NewGenome() },
		func() Workload { return stamp.NewIntruder() },
		func() Workload { return stamp.NewKmeans() },
		func() Workload { return stamp.NewLabyrinth() },
		func() Workload { return stamp.NewVacation() },
		func() Workload { return stamp.NewSSCA2() },
		func() Workload { return stamp.NewBayes() },
	}
}

// registryNames returns the workload names in presentation order.
func registryNames() []string {
	var names []string
	for _, f := range Registry() {
		names = append(names, f().Name())
	}
	return names
}

// WorkloadByName returns the registry entry for name (case-insensitive).
// Names outside the registry resolve through the OLTP serving tier
// ("kv", "ledger", optionally with a "@theta" skew suffix). Unknown
// names return an error listing the valid workload and tier names; a
// tier name with a malformed or out-of-range theta returns the tier's
// error.
func WorkloadByName(name string) (func() Workload, error) {
	for _, f := range Registry() {
		if strings.EqualFold(f().Name(), name) {
			return f, nil
		}
	}
	if of, isOLTP, err := oltp.ByName(name); isOLTP {
		if err != nil {
			return nil, err
		}
		return func() Workload { return of() }, nil
	}
	return nil, fmt.Errorf("harness: unknown workload %q (valid: %s)",
		name, strings.Join(append(Workloads(), oltp.TierNames()...), ", "))
}

// Workloads lists the registered workload names.
func Workloads() []string {
	names := registryNames()
	sort.Strings(names)
	return names
}
