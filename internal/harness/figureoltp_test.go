package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exp"
)

// TestWorkloadByNameResolvesOLTPTier pins the registry fallback: tier
// names resolve (canonicalised), malformed skews error with the tier's
// message, and unknown names list the tier forms alongside the registry.
func TestWorkloadByNameResolvesOLTPTier(t *testing.T) {
	f, err := WorkloadByName("kv@0.5")
	if err != nil {
		t.Fatal(err)
	}
	if name := f().Name(); name != "kv@0.50" {
		t.Fatalf("canonical name = %q", name)
	}
	if _, err := WorkloadByName("ledger"); err != nil {
		t.Fatalf("default-theta ledger: %v", err)
	}
	if _, err := WorkloadByName("kv@1.5"); err == nil || !strings.Contains(err.Error(), "theta") {
		t.Fatalf("out-of-range theta error = %v", err)
	}
	_, err = WorkloadByName("nosuch")
	if err == nil || !strings.Contains(err.Error(), "kv[@theta]") || !strings.Contains(err.Error(), "List") {
		t.Fatalf("unknown-workload listing must include registry and tier names, got: %v", err)
	}
}

// TestFigureOLTPClaims runs a reduced serving-tier figure and pins the
// §1 claim the figure exists to show: SI-TM commits the analytical scans
// read-only with zero read-write aborts, while 2PL on the identical
// cells pays read-write aborts; and every engine's commit histogram
// carries exactly its commits.
func TestFigureOLTPClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a serving-tier sweep")
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"kv@0.99"}}
	var buf bytes.Buffer
	res := FigureOLTP(&buf, o)
	out := buf.String()
	if !strings.Contains(out, "kv@0.99") || !strings.Contains(out, "p999") {
		t.Fatalf("render missing workload table or quantile columns:\n%s", out)
	}
	for _, th := range OLTPThreads {
		si := res[sweepKey{Workload: "kv@0.99", Engine: SITM, Threads: th}]
		if si.ROCommits == 0 {
			t.Fatalf("%d threads: SI-TM reports no read-only commits despite analytical scans", th)
		}
		if si.RWAborts != 0 {
			t.Fatalf("%d threads: SI-TM paid %.0f read-write aborts; snapshot reads must be invisible", th, si.RWAborts)
		}
		if got, want := si.CommitHist.Total(), uint64(si.Commits); got != want {
			t.Fatalf("%d threads: SI-TM histogram holds %d commits, stats say %d", th, got, want)
		}
	}
	pl := res[sweepKey{Workload: "kv@0.99", Engine: TwoPL, Threads: 32}]
	if pl.RWAborts == 0 {
		t.Fatal("2PL: same cells produced no read-write aborts; the differential claim has no teeth")
	}
}

// TestPlanFigureCoversOLTPSweep extends the plan-coverage pin to the new
// figure: warming the cache from PlanFigure("figure-oltp") makes the
// subsequent render recompute nothing.
func TestPlanFigureCoversOLTPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a serving-tier sweep")
	}
	c, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"kv@0.50"}, Cache: c}
	fp, err := PlanFigure("figure-oltp", 4, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Plan) == 0 {
		t.Fatal("empty plan")
	}
	cr := exp.CellRunner{Config: fp.Config, Resolve: WorkloadByName, Cache: o.Cache}
	if _, err := cr.Run(fp.Plan); err != nil {
		t.Fatal(err)
	}
	var computed int
	o.Progress = func(p exp.Progress) {
		if !p.Cached {
			computed++
		}
	}
	if _, err := RenderFigureText("figure-oltp", 4, o); err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Errorf("render recomputed %d cells not covered by PlanFigure", computed)
	}
}
