package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/micro"
	"repro/internal/tm"
)

func quickOpts() Options { return Options{Seeds: []uint64{1}} }

func TestRunProducesConsistentStats(t *testing.T) {
	r := Run(SITM, func() Workload { return micro.NewList() }, 4, quickOpts())
	if r.Workload != "List" || r.Engine != "SI-TM" || r.Threads != 4 {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if r.Commits != 4*60 {
		t.Fatalf("commits = %v, want 240 (workload-determined)", r.Commits)
	}
	if r.AbortRate < 0 || r.AbortRate > 1 {
		t.Fatalf("abort rate out of range: %v", r.AbortRate)
	}
	if r.Makespan <= 0 || r.Throughput <= 0 {
		t.Fatalf("timing not measured: %+v", r)
	}
	if r.ValidateMsg != "" {
		t.Fatalf("validation failed: %s", r.ValidateMsg)
	}
}

func TestRunSeedAveragingIsDeterministic(t *testing.T) {
	o := Options{Seeds: []uint64{1, 2}}
	a := Run(TwoPL, func() Workload { return micro.NewRBTree() }, 4, o)
	b := Run(TwoPL, func() Workload { return micro.NewRBTree() }, 4, o)
	if a.Aborts != b.Aborts || a.Makespan != b.Makespan {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestEngineKindsConstructAndName(t *testing.T) {
	names := map[EngineKind]string{TwoPL: "2PL", SONTM: "SONTM", SITM: "SI-TM", SSITM: "SSI-TM"}
	for kind, want := range names {
		e, err := tm.NewEngine(kind, tm.EngineOptions{})
		if err != nil {
			t.Fatalf("engine %q not registered: %v", kind, err)
		}
		if e.Name() != want {
			t.Errorf("%v engine name = %q, want %q", kind, e.Name(), want)
		}
	}
	if _, err := tm.NewEngine("nosuch", tm.EngineOptions{}); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestRegistryNamesUniqueAndComplete(t *testing.T) {
	want := []string{"Array", "Bayes", "Genome", "Intruder", "Kmeans", "Labyrinth", "List", "RBTree", "SSCA2", "Vacation"}
	got := Workloads()
	if len(got) != len(want) {
		t.Fatalf("workloads = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("workloads = %v, want %v", got, want)
		}
	}
	for _, name := range []string{"vacation", "VACATION"} {
		if f, err := WorkloadByName(name); err != nil || f == nil {
			t.Fatalf("WorkloadByName(%q) must be case-insensitive, got %v", name, err)
		}
	}
	f, err := WorkloadByName("nosuch")
	if f != nil || err == nil {
		t.Fatal("WorkloadByName must reject unknown names with an error")
	}
	if !strings.Contains(err.Error(), "Vacation") || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("error must list valid names and echo the bad one: %v", err)
	}
}

func TestSITMBeatsTwoPLOnList(t *testing.T) {
	// The paper's core result at harness level: SI-TM aborts a small
	// fraction of what 2PL aborts on the read-heavy List benchmark.
	o := quickOpts()
	f := func() Workload { return micro.NewList() }
	base := Run(TwoPL, f, 8, o)
	si := Run(SITM, f, 8, o)
	if si.Aborts >= base.Aborts/2 {
		t.Fatalf("SI-TM aborts %v vs 2PL %v: expected a large reduction", si.Aborts, base.Aborts)
	}
	if si.Makespan >= base.Makespan {
		t.Fatalf("SI-TM makespan %v vs 2PL %v: expected faster", si.Makespan, base.Makespan)
	}
}

func TestReadOnlyNeverAbortsUnderSITM(t *testing.T) {
	// "Read-only transactions are guaranteed to commit" (§4): the Array
	// long readers never abort under SI-TM.
	r := Run(SITM, func() Workload {
		a := micro.NewArray()
		a.LongRatioPct = 100 // read-only transactions exclusively
		return a
	}, 8, quickOpts())
	if r.Aborts != 0 {
		t.Fatalf("read-only workload aborted %v times under SI-TM", r.Aborts)
	}
}

func TestFigure1Output(t *testing.T) {
	var buf bytes.Buffer
	results := Figure1(&buf, 4, quickOpts())
	if len(results) != len(Fig1Workloads) {
		t.Fatalf("results for %d workloads, want %d", len(results), len(Fig1Workloads))
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Genome") {
		t.Fatalf("table rendering wrong:\n%s", out)
	}
	// The paper's headline: read-write aborts dominate under 2PL.
	var rw, total float64
	for _, r := range results {
		rw += r.RWAborts
		total += r.RWAborts + r.WWAborts
	}
	if total == 0 || rw/total < 0.5 {
		t.Fatalf("read-write abort share = %.2f, expected the RW-dominated regime", rw/total)
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	for _, want := range []string{"32", "L1D", "Memory latency"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, buf.String())
		}
	}
}

func TestTable2UnboundedVersions(t *testing.T) {
	var buf bytes.Buffer
	rows := Table2(&buf, 8, quickOpts())
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// Most accesses must hit the most recent version.
	var first, total uint64
	for _, row := range rows {
		first += row[0]
		for _, v := range row {
			total += v
		}
	}
	if total == 0 || float64(first)/float64(total) < 0.8 {
		t.Fatalf("first-version share = %d/%d, expected dominance", first, total)
	}
}

func TestBackoffAblationShowsEagerDependence(t *testing.T) {
	// §6.4: without exponential backoff the eager mechanisms abort more.
	f := func() Workload { return micro.NewList() }
	with := Run(TwoPL, f, 8, quickOpts())
	o := quickOpts()
	o.NoBackoff = true
	without := Run(TwoPL, f, 8, o)
	if without.Aborts <= with.Aborts {
		t.Fatalf("no-backoff aborts %v <= backoff aborts %v", without.Aborts, with.Aborts)
	}
}

func TestOptionsPropagate(t *testing.T) {
	o := quickOpts()
	o.UnboundedVersions = true
	r := Run(SITM, func() Workload { return micro.NewList() }, 4, o)
	// With unbounded versions there can be no capacity aborts.
	if r.OtherAborts != 0 && r.MVM.DroppedOld != 0 {
		t.Fatalf("unbounded run recorded capacity effects: %+v", r)
	}
	if DefaultOptions().Seeds == nil {
		t.Fatal("default options must carry seeds")
	}
}

func TestMVMReport(t *testing.T) {
	var buf bytes.Buffer
	rows := MVMReport(&buf, 4, quickOpts())
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Installs == 0 && r.Workload != "Labyrinth" {
			t.Errorf("%s recorded no installs", r.Workload)
		}
		if r.PeakVersions > 4 {
			t.Errorf("%s peak versions %d exceeds the 4-version bound", r.Workload, r.PeakVersions)
		}
		if r.OverheadPct < 0 || r.OverheadPct > 50.01 {
			t.Errorf("%s overhead %.1f%% outside the paper's 12.5-50%% band", r.Workload, r.OverheadPct)
		}
	}
	if !strings.Contains(buf.String(), "coalesced") {
		t.Fatal("table rendering missing")
	}
}
