package harness

import (
	"bytes"
	"testing"
)

// TestFiguresByteIdenticalFastVsSlowSets is the acceptance gate for the
// signature-backed access tracking (internal/aset) at the report level:
// the Figure 7 and Figure 8 tables must be byte-identical whether the
// cells track transactional read/write sets with the aset fast path or
// the verbatim map-based reference implementation (each engine's
// slow.go). The per-structure property tests live in internal/aset and
// the engine-level sweep in internal/tmtest; this one proves the property
// survives engines, workloads, seed averaging and table rendering.
func TestFiguresByteIdenticalFastVsSlowSets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full figure sweeps")
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"List"}}
	fast := figureBytes(t, o)
	o.refSets = true
	slow := figureBytes(t, o)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("figure output diverges between access-set implementations:\n--- fast ---\n%s\n--- slow ---\n%s", fast, slow)
	}
}
