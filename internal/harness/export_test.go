package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteFigure7CSV(t *testing.T) {
	data := map[string]map[int][3]float64{
		"List": {8: {1, 0.5, 0.03}, 32: {1, 0.53, 0.08}},
	}
	var buf bytes.Buffer
	if err := WriteFigure7CSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 thread counts x 3 engines
	if len(rows) != 1+6 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if strings.Join(rows[0], ",") != "benchmark,threads,engine,aborts_rel_2pl" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "List" || rows[1][1] != "8" || rows[1][2] != "2PL" || rows[1][3] != "1" {
		t.Fatalf("first row = %v", rows[1])
	}
}

func TestWriteFigure8CSV(t *testing.T) {
	data := map[string]map[string][]float64{
		"Array": {
			"2PL":   {1, 2, 3, 4, 5, 5.1},
			"SI-TM": {1, 2.1, 4.5, 8.4, 15.6, 28.6},
		},
	}
	var buf bytes.Buffer
	if err := WriteFigure8CSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+2*len(Fig8Threads) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Engines are sorted: 2PL before SI-TM.
	if rows[1][2] != "2PL" || rows[1+len(Fig8Threads)][2] != "SI-TM" {
		t.Fatalf("engine ordering wrong: %v", rows)
	}
	last := rows[len(rows)-1]
	if last[1] != "32" || last[3] != "28.6" {
		t.Fatalf("last row = %v", last)
	}
}

func TestWriteTable2CSV(t *testing.T) {
	data := map[string][6]uint64{
		"Vacation": {767104, 6198, 4, 0, 0, 0},
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+6 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if rows[1][1] != "1st" || rows[1][2] != "767104" {
		t.Fatalf("first data row = %v", rows[1])
	}
	if rows[6][1] != "tail" {
		t.Fatalf("tail row = %v", rows[6])
	}
}
