package harness

import (
	"bytes"
	"testing"

	"repro/internal/exp"
)

// cachedOpts is the quick options shape with a fresh result cache.
func cachedOpts(t *testing.T) Options {
	t.Helper()
	c, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.Only = []string{"List", "Array"}
	o.Cache = c
	return o
}

// TestFiguresAreByteIdenticalWarmVsCold is the house differential test
// applied to the cache: every figure rendered from cached cell results
// must be byte-for-byte the figure rendered from live simulation.
func TestFiguresAreByteIdenticalWarmVsCold(t *testing.T) {
	o := cachedOpts(t)
	for _, figure := range FigureNames {
		cold, err := RenderFigureText(figure, 4, o)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := RenderFigureText(figure, 4, o)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("%s: warm render differs from cold:\ncold:\n%s\nwarm:\n%s", figure, cold, warm)
		}
		// And against a cacheless render — the cache must be invisible.
		plain := o
		plain.Cache = nil
		direct, err := RenderFigureText(figure, 4, plain)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct, warm) {
			t.Errorf("%s: cached render differs from uncached:\nuncached:\n%s\ncached:\n%s", figure, direct, warm)
		}
	}
}

// TestRepeatedSweepRecomputesNothing pins the acceptance criterion:
// re-running a figure sweep against an unchanged tree serves every cell
// from the cache.
func TestRepeatedSweepRecomputesNothing(t *testing.T) {
	o := cachedOpts(t)
	var buf bytes.Buffer
	Figure7(&buf, o) // cold: populates the cache

	var hits, computed int
	o.Progress = func(p exp.Progress) {
		if p.Cached {
			hits++
		} else {
			computed++
		}
	}
	Figure7(&buf, o)
	if computed != 0 {
		t.Fatalf("unchanged tree recomputed %d cells (%d hits)", computed, hits)
	}
	if hits == 0 {
		t.Fatal("warm sweep reported no progress at all")
	}
}

// TestPlanFigureCoversFigureSweep pins that PlanFigure enumerates exactly
// the cells the figure renders: warming the cache from the plan makes the
// subsequent render recompute nothing.
func TestPlanFigureCoversFigureSweep(t *testing.T) {
	for _, figure := range []string{"figure1", "figure7", "figure8", "table2", "mvm"} {
		o := cachedOpts(t)
		fp, err := PlanFigure(figure, 4, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(fp.Plan) == 0 {
			t.Fatalf("%s: empty plan", figure)
		}
		// Warm the cache from the plan alone, bypassing the renderers.
		cr := exp.CellRunner{
			Runner:  exp.Runner{},
			Config:  fp.Config,
			Resolve: WorkloadByName,
			Cache:   o.Cache,
		}
		if _, err := cr.Run(fp.Plan); err != nil {
			t.Fatal(err)
		}
		var computed int
		o.Progress = func(p exp.Progress) {
			if !p.Cached {
				computed++
			}
		}
		if _, err := RenderFigureText(figure, 4, o); err != nil {
			t.Fatal(err)
		}
		if computed != 0 {
			t.Errorf("%s: render recomputed %d cells not covered by PlanFigure", figure, computed)
		}
	}
}
