package harness

import (
	"bytes"
	"testing"
)

// TestFiguresByteIdenticalFastVsSlowStore is the acceptance gate for the
// paged memory tier (internal/mem.Paged) at the report level: the Figure
// 7 and Figure 8 tables must be byte-identical whether the engines' per
// -line tables and presence filters run on the paged O(touched) store or
// the retained dense reference backing. The per-structure property tests
// live in internal/mem; this one proves the property survives engines,
// workloads, seed averaging and table rendering.
func TestFiguresByteIdenticalFastVsSlowStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full figure sweeps")
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"List"}}
	fast := figureBytes(t, o)
	o.refStore = true
	slow := figureBytes(t, o)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("figure output diverges between store backings:\n--- fast ---\n%s\n--- slow ---\n%s", fast, slow)
	}
}

// TestOLTPFigureByteIdenticalFastVsSlowStore repeats the gate on the
// serving tier itself — the workload the paged store exists for — and
// covers the commit-latency quantile columns too.
func TestOLTPFigureByteIdenticalFastVsSlowStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two serving-tier sweeps")
	}
	render := func(o Options) []byte {
		var buf bytes.Buffer
		FigureOLTP(&buf, o)
		return buf.Bytes()
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"kv@0.50"}}
	fast := render(o)
	o.refStore = true
	slow := render(o)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("figure-oltp output diverges between store backings:\n--- fast ---\n%s\n--- slow ---\n%s", fast, slow)
	}
}
