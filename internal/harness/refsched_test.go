package harness

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/exp"
	"repro/internal/sched"
)

// figureBytes renders Figure 7 and Figure 8 for a restricted workload set
// and returns the raw table bytes.
func figureBytes(t *testing.T, o Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	Figure7(&buf, o)
	Figure8(&buf, o)
	return buf.Bytes()
}

// TestFiguresByteIdenticalFastVsSlow is the acceptance gate for the
// scheduler fast path at the report level: the Figure 7 and Figure 8
// tables must be byte-identical whether the cells run under the inline
// fast-path conductor or the reference linear-scan conductor. The
// per-trace differential tests live in internal/sched; this one proves
// the property survives engines, workloads, seed averaging and table
// rendering.
func TestFiguresByteIdenticalFastVsSlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full figure sweeps")
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"List"}}
	fast := figureBytes(t, o)
	o.refSched = true
	slow := figureBytes(t, o)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("figure output diverges between conductors:\n--- fast ---\n%s\n--- slow ---\n%s", fast, slow)
	}
}

// TestFiguresByteIdenticalBatchedVsPerEvent is the acceptance gate for
// horizon batching at the report level: the Figure 7 and Figure 8 tables
// must be byte-identical whether the conductor runs multi-event quanta
// (the default) or schedules strictly per event (Options.PerEvent, the
// -per-event flag). It also asserts batching actually engaged — cells
// must report batched events and strictly fewer coroutine switches than
// the per-event baseline, or the gate would pass vacuously.
func TestFiguresByteIdenticalBatchedVsPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full figure sweeps")
	}
	var batched, perEvent sched.Stats
	collect := func(into *sched.Stats) func(exp.Cell, exp.CellResult) {
		var mu sync.Mutex
		return func(_ exp.Cell, res exp.CellResult) {
			mu.Lock()
			into.Add(res.Sched)
			mu.Unlock()
		}
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"List"}, CellDone: collect(&batched)}
	fast := figureBytes(t, o)
	o.PerEvent = true
	o.CellDone = collect(&perEvent)
	ref := figureBytes(t, o)
	if !bytes.Equal(fast, ref) {
		t.Fatalf("figure output diverges between batched and per-event conductors:\n--- batched ---\n%s\n--- per-event ---\n%s", fast, ref)
	}
	if batched.BatchedEvents == 0 {
		t.Fatalf("batched sweep ran no batched events: %+v", batched)
	}
	if perEvent.BatchedEvents != 0 {
		t.Fatalf("per-event sweep batched %d events", perEvent.BatchedEvents)
	}
	if batched.CoroutineSwitches >= perEvent.CoroutineSwitches {
		t.Fatalf("batched sweep switched %d times, per-event %d: batching should reduce switches",
			batched.CoroutineSwitches, perEvent.CoroutineSwitches)
	}
}

// TestCellDoneReportsSimulatedCycles checks the benchmark hook: every
// cell reports its makespan, the totals are deterministic, and the sum
// matches the per-result makespans the report aggregates.
func TestCellDoneReportsSimulatedCycles(t *testing.T) {
	run := func() (uint64, uint64) {
		var cells, cycles atomic.Uint64
		o := Options{Seeds: []uint64{1, 2}, CellDone: func(_ exp.Cell, res exp.CellResult) {
			cells.Add(1)
			cycles.Add(res.SimCycles)
		}}
		f, err := WorkloadByName("Array")
		if err != nil {
			t.Fatal(err)
		}
		Run(SITM, f, 4, o)
		return cells.Load(), cycles.Load()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != 2 {
		t.Fatalf("CellDone fired %d times, want 2 (one per seed)", c1)
	}
	if s1 == 0 {
		t.Fatal("CellDone reported zero simulated cycles")
	}
	if c1 != c2 || s1 != s2 {
		t.Fatalf("CellDone totals nondeterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}
