package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/exp"
)

// MVMRow summarises the §3 multiversioned-memory behaviour of one
// workload run under SI-TM.
type MVMRow struct {
	Workload     string
	Installs     uint64
	CoalescedPct float64 // §3.1 version coalescing effectiveness
	GCReclaimed  uint64  // versions reclaimed on writes
	PeakVersions int     // deepest version list observed
	OverheadPct  float64 // §3.2 indirection storage overhead
	SharablePct  float64 // §3.3 deduplication opportunity
	Stalls       uint64  // starter stalls on the commit window
}

// MVMReport runs every workload on SI-TM at the given thread count and
// writes a table of the §3.1–§3.3 measurements: how often version
// coalescing collapses versions, how much the write-driven GC reclaims,
// the deepest version list, the indirection storage overhead, and the
// deduplication opportunity of the indirection layer. The cells run on
// the options' worker pool (one isolated simulation per workload).
func MVMReport(w io.Writer, threads int, o Options) []MVMRow {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	o.measureMVM = true
	names := o.filterWorkloads(registryNames())
	plan := exp.Cross(names, []EngineKind{SITM}, []int{threads}, o.Seeds[:1])
	rs := exp.RunWarm(o.runner(), plan, o.warmFactory(), func(_ int, c exp.Cell, warm warmState) cellStats {
		f, err := WorkloadByName(c.Workload)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		return runCell(c, f, o, warm)
	})

	fmt.Fprintf(w, "MVM behaviour under SI-TM (%d threads, seed %d)\n", threads, o.Seeds[0])
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tinstalls\tcoalesced %\tgc reclaimed\tpeak versions\toverhead %\tsharable %\tstalls")
	var out []MVMRow
	for _, r := range rs {
		cs := r.Value
		row := MVMRow{
			Workload:     cs.workload,
			Installs:     cs.mvm.Installs,
			GCReclaimed:  cs.mvm.GCReclaimed,
			PeakVersions: cs.mvm.PeakVersions,
			OverheadPct:  cs.overheadPct,
			SharablePct:  cs.sharablePct,
			Stalls:       cs.stalls,
		}
		if cs.mvm.Installs > 0 {
			row.CoalescedPct = 100 * float64(cs.mvm.Coalesced) / float64(cs.mvm.Installs)
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%.1f\t%.1f\t%d\n",
			row.Workload, row.Installs, row.CoalescedPct, row.GCReclaimed,
			row.PeakVersions, row.OverheadPct, row.SharablePct, row.Stalls)
	}
	tw.Flush()
	return out
}
