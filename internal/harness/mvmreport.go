package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/txlib"
)

// MVMRow summarises the §3 multiversioned-memory behaviour of one
// workload run under SI-TM.
type MVMRow struct {
	Workload     string
	Installs     uint64
	CoalescedPct float64 // §3.1 version coalescing effectiveness
	GCReclaimed  uint64  // versions reclaimed on writes
	PeakVersions int     // deepest version list observed
	OverheadPct  float64 // §3.2 indirection storage overhead
	SharablePct  float64 // §3.3 deduplication opportunity
	Stalls       uint64  // starter stalls on the commit window
}

// MVMReport runs every workload on SI-TM at the given thread count and
// writes a table of the §3.1–§3.3 measurements: how often version
// coalescing collapses versions, how much the write-driven GC reclaims,
// the deepest version list, the indirection storage overhead, and the
// deduplication opportunity of the indirection layer.
func MVMReport(w io.Writer, threads int, o Options) []MVMRow {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	fmt.Fprintf(w, "MVM behaviour under SI-TM (%d threads, seed %d)\n", threads, o.Seeds[0])
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tinstalls\tcoalesced %\tgc reclaimed\tpeak versions\toverhead %\tsharable %\tstalls")
	var out []MVMRow
	for _, f := range Registry() {
		wl := f()
		if s, ok := wl.(Scalable); ok && o.Scale > 1 {
			s.Scale(o.Scale)
		}
		e := newEngine(SITM, o).(*core.Engine)
		m := txlib.NewMem(e)
		wl.Setup(m, threads)
		bo := backoffFor(SITM, o)
		sched.New(threads, o.Seeds[0]).Run(func(th *sched.Thread) { wl.Run(m, th, bo) })

		ms := e.MVM().Stats()
		ov := e.MVM().MeasureOverheads(1)
		dd := e.MVM().MeasureDedup()
		row := MVMRow{
			Workload:     wl.Name(),
			Installs:     ms.Installs,
			GCReclaimed:  ms.GCReclaimed,
			PeakVersions: ms.PeakVersions,
			OverheadPct:  ov.OverheadPct,
			SharablePct:  dd.SharablePct(),
			Stalls:       e.Stats().Stalls,
		}
		if ms.Installs > 0 {
			row.CoalescedPct = 100 * float64(ms.Coalesced) / float64(ms.Installs)
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%.1f\t%.1f\t%d\n",
			row.Workload, row.Installs, row.CoalescedPct, row.GCReclaimed,
			row.PeakVersions, row.OverheadPct, row.SharablePct, row.Stalls)
	}
	tw.Flush()
	return out
}
