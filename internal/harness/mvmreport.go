package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/exp"
)

// MVMRow summarises the §3 multiversioned-memory behaviour of one
// workload run under SI-TM.
type MVMRow struct {
	Workload     string
	Installs     uint64
	CoalescedPct float64 // §3.1 version coalescing effectiveness
	GCReclaimed  uint64  // versions reclaimed on writes
	PeakVersions int     // deepest version list observed
	OverheadPct  float64 // §3.2 indirection storage overhead
	SharablePct  float64 // §3.3 deduplication opportunity
	Stalls       uint64  // starter stalls on the commit window
}

// MVMReport runs every workload on SI-TM at the given thread count and
// writes a table of the §3.1–§3.3 measurements: how often version
// coalescing collapses versions, how much the write-driven GC reclaims,
// the deepest version list, the indirection storage overhead, and the
// deduplication opportunity of the indirection layer. The cells run on
// the options' worker pool (one isolated simulation per workload) and
// through the options' result cache when configured; rendering is a pure
// function of the returned cell records (renderMVMReport).
func MVMReport(w io.Writer, threads int, o Options) []MVMRow {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	o.measureMVM = true
	plan := mvmPlan(threads, o)
	rs, err := o.cellRunner().Run(plan)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return renderMVMReport(w, threads, o.Seeds[0], rs)
}

// mvmPlan builds the MVM report's plan: every selected workload on SI-TM
// at one thread count, first seed only.
func mvmPlan(threads int, o Options) exp.Plan {
	names := o.filterWorkloads(registryNames())
	return exp.Cross(names, []EngineKind{SITM}, []int{threads}, o.Seeds[:1])
}

// renderMVMReport renders the §3 table from plan-ordered cell records —
// no simulator calls, so it renders identically from a warm cache.
func renderMVMReport(w io.Writer, threads int, seed uint64, rs []exp.Result[exp.CellResult]) []MVMRow {
	fmt.Fprintf(w, "MVM behaviour under SI-TM (%d threads, seed %d)\n", threads, seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tinstalls\tcoalesced %\tgc reclaimed\tpeak versions\toverhead %\tsharable %\tstalls")
	var out []MVMRow
	for _, r := range rs {
		cs := r.Value
		row := MVMRow{
			Workload:     cs.Workload,
			Installs:     cs.MVM.Installs,
			GCReclaimed:  cs.MVM.GCReclaimed,
			PeakVersions: cs.MVM.PeakVersions,
			OverheadPct:  cs.OverheadPct,
			SharablePct:  cs.SharablePct,
			Stalls:       cs.Stalls,
		}
		if cs.MVM.Installs > 0 {
			row.CoalescedPct = 100 * float64(cs.MVM.Coalesced) / float64(cs.MVM.Installs)
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%.1f\t%.1f\t%d\n",
			row.Workload, row.Installs, row.CoalescedPct, row.GCReclaimed,
			row.PeakVersions, row.OverheadPct, row.SharablePct, row.Stalls)
	}
	tw.Flush()
	return out
}
