package harness

import (
	"bytes"
	"testing"
)

// TestFiguresByteIdenticalFastVsSlowCache is the acceptance gate for the
// memory-hierarchy fast path at the report level: the Figure 7 and
// Figure 8 tables must be byte-identical whether the cells simulate the
// caches with the way-predicted implementation or the verbatim reference
// model (cache.SlowHierarchy). The per-stream differential tests live in
// internal/cache and the engine-level sweep in internal/tmtest; this one
// proves the property survives engines, workloads, seed averaging and
// table rendering.
func TestFiguresByteIdenticalFastVsSlowCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full figure sweeps")
	}
	o := Options{Seeds: []uint64{1}, Only: []string{"List"}}
	fast := figureBytes(t, o)
	o.refCache = true
	slow := figureBytes(t, o)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("figure output diverges between cache models:\n--- fast ---\n%s\n--- slow ---\n%s", fast, slow)
	}
}
