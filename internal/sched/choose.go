package sched

import "fmt"

// Chooser picks which runnable thread the conductor resumes next. It is
// the controlled-scheduling hook for the model checker (internal/mc): a
// chooser that enumerates picks turns the simulator into a decision tree
// whose every leaf is one complete schedule.
//
// The runnable slice is presented in thread-ID order and is only valid
// for the duration of the call; Choose must return an index into it.
// Implementations must be deterministic — given the same runnable set at
// the same point of the same simulation they must return the same pick —
// or replay (and therefore DFS backtracking) breaks.
type Chooser interface {
	Choose(runnable []*Thread) int
}

// DefaultChooser is the production scheduling policy as a Chooser:
// lowest cycle count first, ties broken by lowest thread ID. It is the
// same total order Run's heap and Slow's linear scan implement, so
// RunChoose(body, DefaultChooser{}) reproduces their schedule exactly
// (pinned byte-identical by TestChooseMatchesRunAndSlow).
type DefaultChooser struct{}

// Choose returns the index of the (cycles, id)-minimal runnable thread.
// Because runnable is in ID order, a strict cycles comparison suffices:
// the first thread at the minimal cycle count has the lowest ID.
func (DefaultChooser) Choose(runnable []*Thread) int {
	best := 0
	for i := 1; i < len(runnable); i++ {
		if runnable[i].cycles < runnable[best].cycles {
			best = i
		}
	}
	return best
}

// RunChoose executes body(thread) on every logical thread like Run and
// Slow, but delegates every scheduling decision to c. It uses the
// reference conductor shape — a coroutine handoff on every Tick, no
// inline fast path — so the chooser sees every yield point: the decision
// points presented to c are exactly the charged Tick/Stall yields plus
// body completions, which yieldlint (internal/lint) statically pins as
// the only places simulated shared memory may be touched.
//
// It panics on total deadlock (every live thread stalled) and on an
// out-of-range pick, both of which indicate bugs — in an engine and in a
// chooser respectively.
func (s *Sim) RunChoose(body func(*Thread), c Chooser) {
	live := s.start(body)
	runnable := make([]*Thread, 0, len(s.threads))
	for live > 0 {
		// Rebuild the runnable set in thread-ID order. The slice is
		// rebuilt rather than compacted so a chooser can never observe
		// an order that depends on the history of stalls.
		runnable = runnable[:0]
		for _, t := range s.threads {
			if !t.done && !t.stalled {
				runnable = append(runnable, t)
			}
		}
		if len(runnable) == 0 {
			panic("sched: deadlock — all live threads stalled")
		}
		pick := c.Choose(runnable)
		if pick < 0 || pick >= len(runnable) {
			panic(fmt.Sprintf("sched: chooser pick %d out of range [0,%d)", pick, len(runnable)))
		}
		next := runnable[pick]
		if _, ok := next.resume(); !ok {
			next.done = true
			live--
		}
	}
}
