package sched

import (
	"fmt"
	"testing"
)

// runChooseDefault adapts RunChoose(DefaultChooser) to runTraced's run
// signature.
func runChooseDefault(s *Sim, body func(*Thread)) {
	s.RunChoose(body, DefaultChooser{})
}

// TestChooseMatchesRunAndSlow pins the Chooser hook's default policy to
// the production conductors: RunChoose(DefaultChooser) must reproduce
// both Run's and Slow's schedules byte-identically, across random tick
// patterns and the stall/wake workload. This is the contract that lets
// the model checker treat the decision tree it explores as the tree the
// real conductor walks one path of.
func TestChooseMatchesRunAndSlow(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 8, 16} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("ticks/t%d/s%d", threads, seed), func(t *testing.T) {
				body := func(th *Thread, step func()) {
					for i := 0; i < 200; i++ {
						step()
						th.Tick(th.Rand().Uint64() % 4)
					}
				}
				chose := runTraced(threads, seed, runChooseDefault, body)
				fast := runTraced(threads, seed, (*Sim).Run, body)
				slow := runTraced(threads, seed, (*Sim).Slow, body)
				diffTraces(t, chose, fast)
				diffTraces(t, chose, slow)
			})
		}
	}
	for _, threads := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("stallwake/t%d/s%d", threads, seed), func(t *testing.T) {
				mk := func() func(*Thread, func()) {
					alive, stalled := threads, 0
					return func(th *Thread, step func()) {
						for i := 0; i < 100; i++ {
							step()
							r := th.Rand().Uint64() % 16
							switch {
							case r == 0 && alive-stalled > 1:
								stalled++
								th.Stall()
								stalled--
							case r == 1:
								th.WakeAll()
								th.Tick(1)
							default:
								th.Tick(r)
							}
						}
						alive--
						th.WakeAll()
					}
				}
				chose := runTraced(threads, seed, runChooseDefault, mk())
				fast := runTraced(threads, seed, (*Sim).Run, mk())
				diffTraces(t, chose, fast)
			})
		}
	}
}

// pathChooser drives one complete schedule down a fixed decision path:
// it replays prefix, then always picks 0, recording every decision's
// fanout so a DFS can backtrack. It is the miniature, test-local twin of
// the model checker's explorer (internal/mc), kept here so the
// enumeration arithmetic below is pinned independently of that package.
type pathChooser struct {
	prefix []pathChoice
	depth  int
	path   []pathChoice
}

type pathChoice struct{ pick, fanout int }

func (c *pathChooser) Choose(runnable []*Thread) int {
	pick := 0
	if c.depth < len(c.prefix) {
		pick = c.prefix[c.depth].pick
	}
	c.depth++
	c.path = append(c.path, pathChoice{pick: pick, fanout: len(runnable)})
	return pick
}

// enumerateSchedules DFS-walks the complete decision tree of body on a
// machine with the given thread count, returning the number of leaves —
// distinct complete schedules.
func enumerateSchedules(threads int, body func(*Thread)) int {
	schedules := 0
	prefix := []pathChoice{}
	for {
		c := &pathChooser{prefix: prefix}
		s := New(threads, 1)
		s.RunChoose(body, c)
		schedules++
		// Backtrack: find the deepest decision with an unexplored
		// sibling and advance it; the tree is exhausted when none
		// remains.
		i := len(c.path) - 1
		for i >= 0 && c.path[i].pick+1 >= c.path[i].fanout {
			i--
		}
		if i < 0 {
			return schedules
		}
		prefix = append(prefix[:0], c.path[:i]...)
		prefix = append(prefix, pathChoice{pick: c.path[i].pick + 1})
	}
}

// TestEnumerationIsPermutationComplete counts the schedule space of a
// 2-thread micro-program with k ticks per thread. Each thread needs k+1
// resumes (one per tick yield plus the completing resume), so the
// distinct schedules are the interleavings of two ordered sequences of
// k+1 resumes: C(2k+2, k+1). An exact match proves the chooser hook
// exposes every interleaving exactly once — no duplicate paths, no
// unreachable ones.
func TestEnumerationIsPermutationComplete(t *testing.T) {
	binom := func(n, k int) int {
		r := 1
		for i := 1; i <= k; i++ {
			r = r * (n - k + i) / i
		}
		return r
	}
	for k := 0; k <= 5; k++ {
		body := func(th *Thread) {
			for i := 0; i < k; i++ {
				th.Tick(1)
			}
		}
		got := enumerateSchedules(2, body)
		want := binom(2*k+2, k+1)
		if got != want {
			t.Errorf("k=%d ticks: enumerated %d schedules, want C(%d,%d) = %d",
				k, got, 2*k+2, k+1, want)
		}
	}
}

// TestRunChoosePanicsOnBadPick pins the chooser-contract guard.
func TestRunChoosePanicsOnBadPick(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pick did not panic")
		}
	}()
	s := New(2, 1)
	s.RunChoose(func(th *Thread) { th.Tick(1) }, badChooser{})
}

type badChooser struct{}

func (badChooser) Choose(runnable []*Thread) int { return len(runnable) }
