// Package sched implements a deterministic discrete-event machine simulator.
//
// It stands in for the ZSim cycle-accurate simulator used by the SI-TM paper
// (Litz et al., ASPLOS 2014). The simulator models N logical hardware
// threads, each with a monotonically increasing cycle counter. A conductor
// goroutine always resumes the runnable thread with the lowest cycle count
// (ties broken by thread ID), so operation streams from different threads
// interleave in simulated time exactly as they would in an event-driven
// architectural simulator. Given the same seed and workload, a simulation is
// fully deterministic.
//
// Exactly one logical thread executes at any instant; the channel handoffs
// between conductor and threads establish happens-before edges, so shared
// engine state needs no additional locking and the race detector stays
// quiet.
package sched

import (
	"fmt"
	"sort"
)

// Thread is one logical hardware thread of the simulated machine. All
// simulated work — transactional memory operations, local computation,
// backoff — is charged to its cycle counter via Tick.
type Thread struct {
	id     int
	sim    *Sim
	cycles uint64
	rng    *Rand

	resume  chan struct{}
	done    bool
	stalled bool
}

// ID returns the thread's index in [0, NumThreads).
func (t *Thread) ID() int { return t.id }

// Cycles returns the simulated cycles consumed by the thread so far.
func (t *Thread) Cycles() uint64 { return t.cycles }

// Rand returns the thread's deterministic random number generator.
func (t *Thread) Rand() *Rand { return t.rng }

// Tick charges c simulated cycles to the thread and yields to the
// conductor, which may switch to another thread whose cycle counter is now
// lower. Every modelled operation must Tick at least once so that the
// interleaving reflects simulated time.
func (t *Thread) Tick(c uint64) {
	t.cycles += c
	t.sim.yield <- t
	<-t.resume
}

// WakeAll unparks every stalled thread of the machine, advancing their
// clocks to this thread's clock (see Sim.WakeAll).
func (t *Thread) WakeAll() { t.sim.WakeAll(t) }

// Stall parks the thread until another thread calls Sim.WakeAll. It models
// a hardware stall (e.g. a transaction waiting for the commit window). The
// thread's clock is advanced to the waker's clock on wakeup so stalled time
// is accounted for.
func (t *Thread) Stall() {
	t.stalled = true
	t.sim.yield <- t
	<-t.resume
}

// Sim is the machine: a set of logical threads and the conductor that
// interleaves them deterministically in simulated time.
type Sim struct {
	threads []*Thread
	yield   chan *Thread
	seed    uint64
}

// New creates a machine with n logical threads. The seed makes every
// per-thread RNG, and therefore the whole simulation, deterministic.
func New(n int, seed uint64) *Sim {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid thread count %d", n))
	}
	s := &Sim{yield: make(chan *Thread)}
	s.seed = seed
	for i := 0; i < n; i++ {
		s.threads = append(s.threads, &Thread{
			id:     i,
			sim:    s,
			rng:    NewRand(seed*0x9E3779B97F4A7C15 + uint64(i+1)),
			resume: make(chan struct{}),
		})
	}
	return s
}

// NumThreads returns the number of logical threads.
func (s *Sim) NumThreads() int { return len(s.threads) }

// Thread returns logical thread i.
func (s *Sim) Thread(i int) *Thread { return s.threads[i] }

// Makespan returns the simulated completion time of the machine: the
// maximum cycle counter across threads. Call after Run.
func (s *Sim) Makespan() uint64 {
	var m uint64
	for _, t := range s.threads {
		if t.cycles > m {
			m = t.cycles
		}
	}
	return m
}

// TotalCycles returns the sum of all per-thread cycle counters.
func (s *Sim) TotalCycles() uint64 {
	var m uint64
	for _, t := range s.threads {
		m += t.cycles
	}
	return m
}

// WakeAll unparks every stalled thread, advancing their clocks to the
// caller's clock so that waiting time is charged.
func (s *Sim) WakeAll(waker *Thread) {
	for _, t := range s.threads {
		if t.stalled {
			t.stalled = false
			if t.cycles < waker.cycles {
				t.cycles = waker.cycles
			}
		}
	}
}

// Run executes body(thread) on every logical thread and interleaves them
// lowest-cycle-first until all bodies return. It panics on total deadlock
// (every live thread stalled), which indicates an engine bug.
func (s *Sim) Run(body func(*Thread)) {
	live := len(s.threads)
	for _, t := range s.threads {
		t.done = false
		go func(t *Thread) {
			defer func() {
				t.done = true
				s.yield <- t
			}()
			<-t.resume
			body(t)
		}(t)
	}

	runnable := make([]*Thread, len(s.threads))
	copy(runnable, s.threads)
	for live > 0 {
		// Pick the runnable (not stalled, not done) thread with the
		// lowest cycle count; ties break by ID for determinism.
		var next *Thread
		for _, t := range runnable {
			if t.done || t.stalled {
				continue
			}
			if next == nil || t.cycles < next.cycles || (t.cycles == next.cycles && t.id < next.id) {
				next = t
			}
		}
		if next == nil {
			panic("sched: deadlock — all live threads stalled")
		}
		next.resume <- struct{}{}
		y := <-s.yield
		if y.done {
			live--
			// Compact the runnable list occasionally; cheap at our scale.
			n := runnable[:0]
			for _, t := range runnable {
				if !t.done {
					n = append(n, t)
				}
			}
			runnable = n
			sort.Slice(runnable, func(i, j int) bool { return runnable[i].id < runnable[j].id })
		}
	}
}
