// Package sched implements a deterministic discrete-event machine simulator.
//
// It stands in for the ZSim cycle-accurate simulator used by the SI-TM paper
// (Litz et al., ASPLOS 2014). The simulator models N logical hardware
// threads, each with a monotonically increasing cycle counter. A conductor
// goroutine always resumes the runnable thread with the lowest cycle count
// (ties broken by thread ID), so operation streams from different threads
// interleave in simulated time exactly as they would in an event-driven
// architectural simulator. Given the same seed and workload, a simulation is
// fully deterministic.
//
// Exactly one logical thread executes at any instant. Threads are
// iter.Pull coroutines, not goroutines: a handoff between conductor and
// thread is a direct coroutine switch on the same OS thread — no runtime
// scheduler locks, no park/unpark, no cross-P wakeup — and the runtime's
// coroutine switch establishes the happens-before edges, so shared engine
// state needs no additional locking and the race detector stays quiet.
//
// Run keeps the non-running runnable threads in a min-heap keyed on
// (cycles, id) and lets Tick return inline — no coroutine switch at all —
// while the charging thread remains the lowest-cycle runnable thread (the
// heap root bounds everyone else, and their counters are frozen while
// parked). The interleaving is provably the one the per-Tick conductor
// would have chosen; Slow retains that original conductor as a
// differential oracle.
package sched

import (
	"fmt"
	"iter"
)

// Thread is one logical hardware thread of the simulated machine. All
// simulated work — transactional memory operations, local computation,
// backoff — is charged to its cycle counter via Tick.
type Thread struct {
	id     int
	sim    *Sim
	cycles uint64
	rng    *Rand

	// slack is the thread's published interaction slack: a promise that,
	// from any point where the thread is parked, it will charge strictly
	// more than slack cycles before performing its next non-commuting
	// effect on simulated shared state (an MVM install or revert, a cache
	// invalidation, a presence drain). The horizon conductor uses parked
	// threads' slacks to extend another thread's quantum past their cycle
	// counters; see TickHinted. Zero — the default — promises nothing.
	slack uint64

	// yield suspends the thread's coroutine and returns control to the
	// conductor's resume call; resume restarts it. Both are rebuilt by
	// start for every Run/Slow invocation.
	yield   func(struct{}) bool
	resume  func() (struct{}, bool)
	done    bool
	stalled bool
}

// ID returns the thread's index in [0, NumThreads).
func (t *Thread) ID() int { return t.id }

// Cycles returns the simulated cycles consumed by the thread so far.
func (t *Thread) Cycles() uint64 { return t.cycles }

// Rand returns the thread's deterministic random number generator.
func (t *Thread) Rand() *Rand { return t.rng }

// Tick charges c simulated cycles to the thread and yields to the
// conductor, which may switch to another thread whose cycle counter is now
// lower. Every modelled operation must Tick at least once so that the
// interleaving reflects simulated time.
//
// Under Run's heap conductor the yield is usually free: when the charging
// thread is still ordered before the heap root — strictly lower cycles, or
// equal cycles and lower ID — the conductor would resume it immediately,
// so Tick returns inline without even a coroutine switch. Parked threads'
// counters cannot change (only the running thread charges cycles; WakeAll
// re-inserts woken threads with their advanced clocks), so the root is a
// sound bound on every other runnable thread.
func (t *Thread) Tick(c uint64) {
	t.cycles += c
	s := t.sim
	if s.fast {
		if len(s.runq) == 0 {
			s.stats.InlineTicks++
			return
		}
		if r := &s.runq[0]; t.cycles < r.cycles || (t.cycles == r.cycles && int32(t.id) < r.id) {
			s.stats.InlineTicks++
			return
		}
	}
	if !t.yield(struct{}{}) {
		panic("sched: thread resumed after its conductor stopped")
	}
}

// LocalTick charges c simulated cycles for work that is purely
// thread-local: the inter-yield segment it covers performs no effect on
// simulated shared state at all (workload think time, backoff delays).
// Under the heap conductor it is a pure counter charge — no root check,
// no yield — because a charge with no attached effects commutes with
// every other thread's events: delaying the handoff cannot change what
// any thread observes. Under the reference conductors (Slow, RunChoose)
// and in per-event mode it behaves exactly like Tick, so the differential
// oracles and the model checker see an unchanged per-event machine.
//
// The caller must not touch simulated shared state between a LocalTick
// and the next Tick, TickHinted, Fence or Stall unless that touch is
// itself certified commuting (see TickHinted); tm.Atomic fences before
// Engine.Begin so transaction boundaries re-synchronise automatically.
func (t *Thread) LocalTick(c uint64) {
	t.cycles += c
	s := t.sim
	if s.fast && !s.perEvent {
		s.stats.LocalTicks++
		return
	}
	if s.fast {
		if len(s.runq) == 0 {
			s.stats.InlineTicks++
			return
		}
		if r := &s.runq[0]; t.cycles < r.cycles || (t.cycles == r.cycles && int32(t.id) < r.id) {
			s.stats.InlineTicks++
			return
		}
	}
	if !t.yield(struct{}{}) {
		panic("sched: thread resumed after its conductor stopped")
	}
}

// TickHinted charges c simulated cycles for an event the caller has
// certified non-interacting: until the thread's next Tick, TickHinted,
// Fence or Stall it will only perform effects that commute with anything
// a parked thread could do inside the horizon — blind presence ORs,
// mutation-free way-predicted cache hits, snapshot reads whose outcome is
// pinned by the parked threads' published slacks, and pure local work.
//
// Under the heap conductor it first takes Tick's inline path (still
// ordered before the heap root). Past the root it may *batch*: if the
// post-charge key is still strictly below the horizon — the minimum over
// parked runnable threads of (frozen cycle counter + published slack) —
// the thread keeps running inline, because no parked thread can perform
// a non-commuting effect below that bound (Thread.slack) and the batched
// events themselves were certified commuting by the caller. Otherwise it
// yields like Tick. Under the reference conductors and in per-event mode
// it is exactly Tick.
func (t *Thread) TickHinted(c uint64) {
	t.cycles += c
	s := t.sim
	if s.fast {
		if len(s.runq) == 0 {
			s.stats.InlineTicks++
			return
		}
		if r := &s.runq[0]; t.cycles < r.cycles || (t.cycles == r.cycles && int32(t.id) < r.id) {
			s.stats.InlineTicks++
			return
		}
		if !s.perEvent && t.cycles < s.horizon() {
			s.stats.BatchedEvents++
			if t.cycles > s.maxBatchedKey {
				s.maxBatchedKey = t.cycles
			}
			return
		}
	}
	if !t.yield(struct{}{}) {
		panic("sched: thread resumed after its conductor stopped")
	}
}

// Fence ends any batched quantum: under the heap conductor it yields if
// the thread has charged past the heap root (exactly Tick(0)); everywhere
// else — the reference conductors, per-event mode, or a thread still
// ordered before the root — it is a no-op. Call it before an effect that
// does not commute with parked threads' events when the preceding charges
// went through LocalTick/TickHinted; tm.Atomic fences once per attempt,
// which covers every engine's Begin-side clock and stall logic.
func (t *Thread) Fence() {
	s := t.sim
	if !s.fast || s.perEvent {
		return
	}
	if len(s.runq) == 0 {
		return
	}
	if r := &s.runq[0]; t.cycles < r.cycles || (t.cycles == r.cycles && int32(t.id) < r.id) {
		return
	}
	if !t.yield(struct{}{}) {
		panic("sched: thread resumed after its conductor stopped")
	}
}

// SetSlack publishes the calling thread's interaction slack: a promise
// that from any parked position it will charge strictly more than s
// cycles before its next non-commuting shared-state effect. Engines set
// it at phase boundaries (e.g. SI-TM holds CommitOverhead outside the
// writer-commit critical section and zero inside it) and must only ever
// set their own thread's slack. A stale promise is caught by Interact.
func (t *Thread) SetSlack(s uint64) {
	t.slack = s
}

// Slack returns the thread's published interaction slack.
func (t *Thread) Slack() uint64 { return t.slack }

// Interact is the audit hook guarding the horizon machinery: engines call
// it at every non-commuting shared-state effect (installs, invalidations,
// presence drains, reverts). If any thread has already batched an event
// at a simulated key above the caller's current key, the conductor
// admitted an interleaving the per-event machine would have ordered
// differently — a stale slack promise — and the simulation is unsound,
// so Interact panics rather than let the divergence propagate silently.
func (t *Thread) Interact() {
	s := t.sim
	if t.cycles < s.maxBatchedKey {
		panic(fmt.Sprintf(
			"sched: thread %d interacts with shared state at cycle %d below the batched horizon %d — a published slack promise was stale",
			t.id, t.cycles, s.maxBatchedKey))
	}
}

// before reports whether t runs before u in the lowest-cycle-first,
// ties-by-ID order.
func (t *Thread) before(u *Thread) bool {
	return t.cycles < u.cycles || (t.cycles == u.cycles && t.id < u.id)
}

// WakeAll unparks every stalled thread of the machine, advancing their
// clocks to this thread's clock (see Sim.WakeAll).
func (t *Thread) WakeAll() { t.sim.WakeAll(t) }

// Stall parks the thread until another thread calls Sim.WakeAll. It models
// a hardware stall (e.g. a transaction waiting for the commit window). The
// thread's clock is advanced to the waker's clock on wakeup so stalled time
// is accounted for. Stalling always hands control to the conductor — the
// inline fast path applies only to Tick, where the thread stays runnable.
func (t *Thread) Stall() {
	t.stalled = true
	if !t.yield(struct{}{}) {
		panic("sched: thread resumed after its conductor stopped")
	}
}

// Sim is the machine: a set of logical threads and the conductor that
// interleaves them deterministically in simulated time.
type Sim struct {
	threads []*Thread
	seed    uint64

	// runq is the conductor's min-heap of runnable, not-currently-running
	// threads, keyed on (cycles, id); fast is set while Run's heap
	// conductor is driving, enabling Tick's inline path. Slow leaves fast
	// unset so every Tick reaches its linear-scan conductor.
	runq []runqEnt
	fast bool

	// perEvent disables the horizon batching extensions while keeping the
	// heap conductor: LocalTick and TickHinted degrade to exactly Tick and
	// Fence to a no-op, reproducing the pre-horizon per-event conductor.
	// It is the differential baseline for the batched path.
	perEvent bool

	// horizonKey caches the current horizon — min over parked runnable
	// threads of (frozen cycles + published slack) — and horizonGen/heapGen
	// invalidate it: the run queue only changes at conductor handoffs, so
	// one recomputation per handoff serves an entire batched quantum.
	horizonKey uint64
	horizonGen uint64
	heapGen    uint64

	// maxBatchedKey is the highest simulated key at which any thread has
	// batched an event past the heap root; Interact audits against it.
	maxBatchedKey uint64

	stats Stats
}

// Stats counts conductor work for one Run/Slow invocation; reset at the
// start of each. It quantifies the coroutine-switch tax the horizon
// batching attacks (surfaced as the sched_stats section of
// sitm-bench -json).
type Stats struct {
	// CoroutineSwitches is the number of coroutine resumes the conductor
	// performed — each is a Go-runtime switch plus heap traffic.
	CoroutineSwitches uint64 `json:"coroutine_switches"`
	// InlineTicks counts charges that returned inline while the thread
	// was still ordered before the heap root (the PR 3 fast path).
	InlineTicks uint64 `json:"inline_ticks"`
	// BatchedEvents counts charges that returned inline past the heap
	// root because they stayed below the horizon (multi-event quanta).
	BatchedEvents uint64 `json:"batched_events"`
	// LocalTicks counts pure thread-local charges that skipped the
	// conductor entirely.
	LocalTicks uint64 `json:"local_ticks"`
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CoroutineSwitches += other.CoroutineSwitches
	s.InlineTicks += other.InlineTicks
	s.BatchedEvents += other.BatchedEvents
	s.LocalTicks += other.LocalTicks
}

// Stats returns the conductor counters of the last Run/Slow invocation.
func (s *Sim) Stats() Stats { return s.stats }

// SetPerEvent toggles per-event mode: with on, the heap conductor runs
// every charge through the pre-horizon per-event protocol (LocalTick and
// TickHinted behave exactly like Tick), providing the differential
// baseline the batched conductor is pinned against.
func (s *Sim) SetPerEvent(on bool) { s.perEvent = on }

// horizon returns the cached horizon for the current handoff, recomputing
// it if the run queue changed. A parked thread's counter is frozen and
// its slack can only be rewritten by itself (so not while parked), which
// makes the cached value exact for the duration of a quantum.
func (s *Sim) horizon() uint64 {
	if s.horizonGen == s.heapGen {
		return s.horizonKey
	}
	var h uint64
	for i := range s.runq {
		ent := &s.runq[i]
		if k := ent.cycles + ent.t.slack; i == 0 || k < h {
			h = k
		}
	}
	s.horizonKey = h
	s.horizonGen = s.heapGen
	return h
}

// runqEnt is one heap slot: the thread plus an inline copy of its sort
// key. A parked thread's counter is frozen (only the running thread
// charges cycles, and WakeAll advances clocks before re-inserting), so
// the snapshot taken at insertion stays exact; keeping it inline makes
// every heap comparison a pair of loads from the heap array instead of a
// pointer chase into the Thread.
type runqEnt struct {
	cycles uint64
	id     int32
	t      *Thread
}

// entOf snapshots t's sort key into a heap entry.
func entOf(t *Thread) runqEnt { return runqEnt{cycles: t.cycles, id: int32(t.id), t: t} }

// entBefore reports whether heap entry a orders before b
// (lowest-cycle-first, ties by ID).
func entBefore(a, b runqEnt) bool {
	return a.cycles < b.cycles || (a.cycles == b.cycles && a.id < b.id)
}

// New creates a machine with n logical threads. The seed makes every
// per-thread RNG, and therefore the whole simulation, deterministic.
func New(n int, seed uint64) *Sim {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid thread count %d", n))
	}
	s := &Sim{}
	s.seed = seed
	for i := 0; i < n; i++ {
		s.threads = append(s.threads, &Thread{
			id:  i,
			sim: s,
			rng: NewRand(seed*0x9E3779B97F4A7C15 + uint64(i+1)),
		})
	}
	return s
}

// NumThreads returns the number of logical threads.
func (s *Sim) NumThreads() int { return len(s.threads) }

// Thread returns logical thread i.
func (s *Sim) Thread(i int) *Thread { return s.threads[i] }

// Makespan returns the simulated completion time of the machine: the
// maximum cycle counter across threads. Call after Run.
func (s *Sim) Makespan() uint64 {
	var m uint64
	for _, t := range s.threads {
		if t.cycles > m {
			m = t.cycles
		}
	}
	return m
}

// TotalCycles returns the sum of all per-thread cycle counters.
func (s *Sim) TotalCycles() uint64 {
	var m uint64
	for _, t := range s.threads {
		m += t.cycles
	}
	return m
}

// WakeAll unparks every stalled thread, advancing their clocks to the
// caller's clock so that waiting time is charged. Under the heap conductor
// the woken threads re-enter the run queue with their advanced (and from
// then on frozen) counters, so the heap root stays a sound bound for the
// waker's subsequent inline Ticks.
func (s *Sim) WakeAll(waker *Thread) {
	for _, t := range s.threads {
		if t.stalled {
			t.stalled = false
			if t.cycles < waker.cycles {
				t.cycles = waker.cycles
			}
			if s.fast {
				s.push(t)
			}
		}
	}
}

// The run queue is a 4-ary heap: at the machine sizes simulated here
// (up to 64 threads) it halves the sift depth of a binary heap and keeps
// each node's children in one or two cache lines. Heap arity is not
// observable — every pop still returns the unique (cycles, id) minimum,
// so the interleaving is identical to any other heap's.
const heapArity = 4

// push inserts t into the run-queue heap.
func (s *Sim) push(t *Thread) {
	s.heapGen++
	s.runq = append(s.runq, entOf(t))
	i := len(s.runq) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !entBefore(s.runq[i], s.runq[p]) {
			break
		}
		s.runq[i], s.runq[p] = s.runq[p], s.runq[i]
		i = p
	}
}

// pop removes and returns the heap's minimum (cycles, id) thread.
func (s *Sim) pop() *Thread {
	s.heapGen++
	min := s.runq[0].t
	last := len(s.runq) - 1
	s.runq[0] = s.runq[last]
	s.runq[last] = runqEnt{}
	s.runq = s.runq[:last]
	s.siftDown()
	return min
}

// replaceTop swaps t for the heap's minimum in one sift: the returned
// thread is the old root (the next to run), and t takes its place in the
// heap. This is the conductor's per-handoff operation — a yielding thread
// is by construction no longer ordered before the root, so pop-then-push
// would sift twice for the same result.
func (s *Sim) replaceTop(t *Thread) *Thread {
	s.heapGen++
	min := s.runq[0].t
	s.runq[0] = entOf(t)
	s.siftDown()
	return min
}

// siftDown restores the heap property after the root was replaced. The
// displaced root is held out of the array and moves down a hole instead
// of being swapped level by level: one store per level rather than a
// 24-byte exchange. The final layout matches the classic swap formulation
// (the child scan is the same strict left-to-right minimum), and pop
// order would be unchanged by layout anyway — every pop extracts the
// unique (cycles, id) minimum.
func (s *Sim) siftDown() {
	n := len(s.runq)
	if n == 0 {
		return
	}
	ent := s.runq[0]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		next := first
		best := s.runq[first]
		for c := first + 1; c < last; c++ {
			if entBefore(s.runq[c], best) {
				next = c
				best = s.runq[c]
			}
		}
		if !entBefore(best, ent) {
			break
		}
		s.runq[i] = best
		i = next
	}
	s.runq[i] = ent
}

// start builds a fresh coroutine per logical thread, suspended before its
// first body instruction, and returns the live count. The coroutine runs
// body when first resumed; yielding inside Tick/Stall switches straight
// back to the conductor's resume call.
func (s *Sim) start(body func(*Thread)) int {
	s.stats = Stats{}
	s.maxBatchedKey = 0
	for _, t := range s.threads {
		t.done = false
		t.slack = 0
		t.resume, _ = iter.Pull(func(yield func(struct{}) bool) {
			t.yield = yield
			body(t)
		})
	}
	return len(s.threads)
}

// Run executes body(thread) on every logical thread and interleaves them
// lowest-cycle-first until all bodies return. It panics on total deadlock
// (every live thread stalled), which indicates an engine bug.
//
// The conductor holds every runnable, non-running thread in the run-queue
// heap: it pops the minimum, resumes it, and re-inserts it when it yields.
// The running thread only reaches the conductor when it is no longer the
// global minimum (see Tick), when it stalls, or when its body returns — on
// the common path a cycle charge is a single heap-root comparison.
func (s *Sim) Run(body func(*Thread)) {
	s.fast = true
	defer func() { s.fast = false }()
	live := s.start(body)
	s.runq = s.runq[:0]
	for _, t := range s.threads {
		s.push(t)
	}
	next := s.pop()
	for {
		s.stats.CoroutineSwitches++
		if _, ok := next.resume(); !ok {
			// The coroutine ran body to completion.
			next.done = true
			live--
			if live == 0 {
				return
			}
			if len(s.runq) == 0 {
				panic("sched: deadlock — all live threads stalled")
			}
			next = s.pop()
		} else if next.stalled {
			// Stalled threads stay out of the heap until WakeAll
			// re-inserts them.
			if len(s.runq) == 0 {
				panic("sched: deadlock — all live threads stalled")
			}
			next = s.pop()
		} else {
			// A non-stall yield means the heap root is ordered before
			// the yielder (Tick's inline check failed), so the root
			// runs next and the yielder takes its heap slot.
			next = s.replaceTop(next)
		}
	}
}

// Slow executes body exactly like Run but with the reference conductor: a
// coroutine handoff on every Tick and a linear min-scan over the runnable
// list per yield. It is retained as the differential oracle for Run — the
// two must produce identical interleavings, cycle counters and makespans
// for any body — and as the readable specification of the scheduling
// order.
func (s *Sim) Slow(body func(*Thread)) {
	live := s.start(body)
	runnable := make([]*Thread, len(s.threads))
	copy(runnable, s.threads)
	for live > 0 {
		// Pick the runnable (not stalled, not done) thread with the
		// lowest cycle count; ties break by ID for determinism.
		var next *Thread
		for _, t := range runnable {
			if t.done || t.stalled {
				continue
			}
			if next == nil || t.before(next) {
				next = t
			}
		}
		if next == nil {
			panic("sched: deadlock — all live threads stalled")
		}
		s.stats.CoroutineSwitches++
		if _, ok := next.resume(); !ok {
			next.done = true
			live--
			// Compact the runnable list; the in-place filter preserves
			// the existing ID order, so no re-sort is needed.
			n := runnable[:0]
			for _, t := range runnable {
				if !t.done {
					n = append(n, t)
				}
			}
			runnable = n
		}
	}
}
