package sched

import "testing"

func TestBarrierSynchronises(t *testing.T) {
	s := New(4, 1)
	b := NewBarrier(4)
	phase := make([]int, 4)
	var order []int
	s.Run(func(th *Thread) {
		// Unequal pre-barrier work: thread i ticks i*100 cycles.
		th.Tick(uint64(th.ID()) * 100)
		phase[th.ID()] = 1
		b.Wait(th)
		// After the barrier every thread must observe all phases = 1.
		for i, p := range phase {
			if p != 1 {
				t.Errorf("thread %d passed barrier before thread %d arrived", th.ID(), i)
			}
		}
		order = append(order, th.ID())
	})
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}

func TestBarrierReusable(t *testing.T) {
	s := New(3, 2)
	b := NewBarrier(3)
	counts := make([]int, 3)
	s.Run(func(th *Thread) {
		for phase := 0; phase < 5; phase++ {
			counts[th.ID()]++
			b.Wait(th)
			// After my wait returns, every thread has arrived at my
			// phase; a fast thread may already be one phase ahead,
			// but never behind and never two ahead.
			mine := counts[th.ID()]
			for i := range counts {
				if counts[i] < mine || counts[i] > mine+1 {
					t.Errorf("phase skew beyond one: %v", counts)
				}
			}
		}
	})
}

func TestBarrierChargesSpinCycles(t *testing.T) {
	s := New(2, 3)
	b := NewBarrier(2)
	s.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Tick(1000) // arrive late
		}
		b.Wait(th)
	})
	// The early thread must have spun up to roughly the late thread's
	// arrival time.
	if c := s.Thread(1).Cycles(); c < 1000 {
		t.Fatalf("early thread cycles = %d, want >= 1000 (spun at barrier)", c)
	}
}

func TestBarrierBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}
