package sched

// Barrier is a deterministic spin barrier for logical threads, used by
// phased workloads (the STAMP kernels separate their phases with
// barriers). Waiting threads burn simulated cycles polling, exactly like
// a hardware spin barrier, so barrier imbalance shows up in the makespan.
type Barrier struct {
	n       int
	arrived int
	gen     uint64
	// SpinCycles is the poll interval charged per check (default 5).
	SpinCycles uint64
}

// NewBarrier creates a barrier for n threads.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sched: barrier size must be positive")
	}
	return &Barrier{n: n, SpinCycles: 5}
}

// Wait blocks (spinning in simulated time) until n threads have arrived.
// The barrier is reusable: generation counting separates successive
// phases.
func (b *Barrier) Wait(t *Thread) {
	// Arrival order decides who releases the barrier, so it must happen
	// at the per-event scheduling point: end any batched quantum first.
	t.Fence()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		t.Tick(b.SpinCycles)
		return
	}
	for b.gen == gen {
		t.Tick(b.SpinCycles)
	}
}
