package sched

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift64*). Each logical thread owns one so that
// simulations are reproducible regardless of host scheduling.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	// splitmix64 scramble so that close seeds give unrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x2545F4914F6CDD1D
	}
	return &Rand{state: z}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sched: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
