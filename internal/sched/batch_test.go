package sched

import (
	"fmt"
	"strings"
	"testing"
)

// batchTrace is the observable outcome of one simulation whose bodies
// follow the horizon-batching protocol: per-thread step streams (real
// execution order inside one thread always matches simulated order), the
// globally ordered interaction log (interactions happen at per-event
// scheduling points, so their real order must equal their simulated
// order), the fenced observations of shared state, and the final clocks.
type batchTrace struct {
	perThread [][]uint64 // per-thread (cycle) stream at every step
	interacts []uint64   // global, order-sensitive: thread<<48|cycle
	observes  [][]uint64 // per-thread fenced reads: cycle<<16|sharedLen
	cycles    []uint64
	makespan  uint64
}

// runBatchBody drives a protocol-following random body under run and
// collects the trace. The body publishes a slack of `overhead` and keeps
// the promise exactly: every mutation or read of shared state happens
// behind SetSlack(0)+Tick(overhead) (mutations, audited with Interact) or
// behind a Fence (reads) — with the interaction landing exactly at
// park+overhead, the adversarial margin where only strictly-below-horizon
// batching is sound.
func runBatchBody(threads int, seed uint64, run func(*Sim, func(*Thread))) batchTrace {
	const overhead = 8
	tr := batchTrace{
		perThread: make([][]uint64, threads),
		observes:  make([][]uint64, threads),
	}
	var shared []uint64 // mutated only at interactions
	s := New(threads, seed)
	run(s, func(th *Thread) {
		id := th.ID()
		r := th.Rand()
		th.SetSlack(overhead)
		for i := 0; i < 120; i++ {
			tr.perThread[id] = append(tr.perThread[id], th.Cycles())
			switch r.Uint64() % 10 {
			case 0, 1:
				// Interaction: enter the critical section per-event.
				th.SetSlack(0)
				th.Tick(overhead)
				th.Interact()
				shared = append(shared, uint64(id)<<48|th.Cycles())
				tr.interacts = append(tr.interacts, uint64(id)<<48|th.Cycles())
				th.SetSlack(overhead)
				th.Tick(1)
			case 2:
				// Fenced order-sensitive read of the shared state.
				th.Fence()
				tr.observes[id] = append(tr.observes[id], th.Cycles()<<16|uint64(len(shared)))
				th.Tick(1 + r.Uint64()%3)
			case 3:
				// Thread-local waiting: never an event by itself.
				th.LocalTick(r.Uint64() % 20)
			default:
				// Batched-eligible charge, zero charges included.
				th.TickHinted(r.Uint64() % 5)
			}
		}
	})
	for i := 0; i < threads; i++ {
		tr.cycles = append(tr.cycles, s.Thread(i).Cycles())
	}
	tr.makespan = s.Makespan()
	return tr
}

// diffBatchTraces fails the test on any observable divergence.
func diffBatchTraces(t *testing.T, got, want batchTrace, gotName, wantName string) {
	t.Helper()
	if got.makespan != want.makespan {
		t.Errorf("makespan: %s %d, %s %d", gotName, got.makespan, wantName, want.makespan)
	}
	for i := range want.cycles {
		if got.cycles[i] != want.cycles[i] {
			t.Errorf("thread %d final cycles: %s %d, %s %d", i, gotName, got.cycles[i], wantName, want.cycles[i])
		}
	}
	if len(got.interacts) != len(want.interacts) {
		t.Fatalf("interaction counts: %s %d, %s %d", gotName, len(got.interacts), wantName, len(want.interacts))
	}
	for i := range want.interacts {
		if got.interacts[i] != want.interacts[i] {
			t.Fatalf("interaction order diverges at %d: %s (thread %d, cycle %d), %s (thread %d, cycle %d)",
				i, gotName, got.interacts[i]>>48, got.interacts[i]&(1<<48-1),
				wantName, want.interacts[i]>>48, want.interacts[i]&(1<<48-1))
		}
	}
	for id := range want.perThread {
		g, w := got.perThread[id], want.perThread[id]
		if len(g) != len(w) {
			t.Fatalf("thread %d step counts: %s %d, %s %d", id, gotName, len(g), wantName, len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("thread %d step %d: %s cycle %d, %s cycle %d", id, i, gotName, g[i], wantName, w[i])
			}
		}
	}
	for id := range want.observes {
		g, w := got.observes[id], want.observes[id]
		if len(g) != len(w) {
			t.Fatalf("thread %d observation counts: %s %d, %s %d", id, gotName, len(g), wantName, len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("thread %d fenced observation %d: %s cycle=%d len=%d, %s cycle=%d len=%d",
					id, i, gotName, g[i]>>16, g[i]&0xffff, wantName, w[i]>>16, w[i]&0xffff)
			}
		}
	}
}

// TestBatchedRunMatchesSlow is the horizon-batching differential oracle:
// random bodies that follow the slack protocol must be observably
// indistinguishable — interaction order, fenced reads, per-thread step
// streams, final clocks and makespan — between the batched heap conductor
// and the reference linear-scan conductor (under which TickHinted and
// LocalTick degrade to Tick and Fence to a no-op).
func TestBatchedRunMatchesSlow(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 8, 16} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("t%d/s%d", threads, seed), func(t *testing.T) {
				fast := runBatchBody(threads, seed, (*Sim).Run)
				slow := runBatchBody(threads, seed, (*Sim).Slow)
				diffBatchTraces(t, fast, slow, "batched", "slow")
			})
		}
	}
}

// TestBatchedRunMatchesPerEvent pins the differential the harness-level
// byte-identity gates build on: the batched conductor against the same
// heap conductor with batching disabled (SetPerEvent), which reproduces
// the pre-batching per-event fast path exactly.
func TestBatchedRunMatchesPerEvent(t *testing.T) {
	perEvent := func(s *Sim, body func(*Thread)) {
		s.SetPerEvent(true)
		s.Run(body)
	}
	for _, threads := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("t%d/s%d", threads, seed), func(t *testing.T) {
				batched := runBatchBody(threads, seed, (*Sim).Run)
				ref := runBatchBody(threads, seed, perEvent)
				diffBatchTraces(t, batched, ref, "batched", "per-event")
			})
		}
	}
}

// TestBatchingActuallyBatches guards the point of the mechanism: under the
// protocol bodies the batched conductor must run multi-event quanta (a
// regression to per-event scheduling would silently keep figures correct
// while losing the performance), and must switch coroutines strictly less
// often than the per-event conductor on the same workload.
func TestBatchingActuallyBatches(t *testing.T) {
	var batched Stats
	runBatchBody(4, 1, func(sim *Sim, body func(*Thread)) {
		sim.Run(body)
		batched = sim.Stats()
	})
	if batched.BatchedEvents == 0 {
		t.Fatalf("batched conductor ran no batched events: %+v", batched)
	}
	var perEvent Stats
	runBatchBody(4, 1, func(sim *Sim, body func(*Thread)) {
		sim.SetPerEvent(true)
		sim.Run(body)
		perEvent = sim.Stats()
	})
	if perEvent.BatchedEvents != 0 {
		t.Fatalf("per-event conductor batched %d events", perEvent.BatchedEvents)
	}
	if batched.CoroutineSwitches >= perEvent.CoroutineSwitches {
		t.Fatalf("batched conductor switched %d times, per-event %d: batching should reduce switches",
			batched.CoroutineSwitches, perEvent.CoroutineSwitches)
	}
	if perEvent.LocalTicks != 0 || batched.LocalTicks == 0 {
		t.Fatalf("LocalTicks: batched %d (want > 0), per-event %d (want 0)",
			batched.LocalTicks, perEvent.LocalTicks)
	}
}

// TestInteractPanicsOnStaleSlack is the adversarial stale-hint test: a
// thread that publishes a slack promise and then interacts with shared
// state early — below another thread's already-batched horizon — must be
// caught by the Interact audit, not silently corrupt the simulation.
func TestInteractPanicsOnStaleSlack(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Interact did not panic on a stale slack promise")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "stale") {
			t.Fatalf("panic %q does not mention the stale promise", msg)
		}
	}()
	s := New(2, 1)
	s.Run(func(th *Thread) {
		if th.ID() == 1 {
			// False promise: no interaction for 100 cycles...
			th.SetSlack(100)
			th.Tick(10)
			th.Tick(5)
			// ...broken here: thread 0 has batched past cycle 15 under
			// the published horizon of 110.
			th.Interact()
			return
		}
		for i := 0; i < 30; i++ {
			th.TickHinted(2)
		}
	})
}

// TestStatsResetPerRun pins that the conductor counters are per-Run: a
// second simulation on the same machine starts from zero.
func TestStatsResetPerRun(t *testing.T) {
	s := New(2, 1)
	body := func(th *Thread) {
		th.SetSlack(4)
		for i := 0; i < 20; i++ {
			th.TickHinted(1)
			th.LocalTick(1)
		}
	}
	s.Run(body)
	first := s.Stats()
	if first == (Stats{}) {
		t.Fatal("first run recorded no stats")
	}
	s.Run(body)
	if second := s.Stats(); second != first {
		t.Fatalf("stats not reset between runs: first %+v, second %+v", first, second)
	}
}
