package sched

import (
	"testing"
	"testing/quick"
)

func TestRunSingleThread(t *testing.T) {
	s := New(1, 42)
	ran := false
	s.Run(func(th *Thread) {
		ran = true
		th.Tick(10)
		th.Tick(5)
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if got := s.Thread(0).Cycles(); got != 15 {
		t.Fatalf("cycles = %d, want 15", got)
	}
	if s.Makespan() != 15 {
		t.Fatalf("makespan = %d, want 15", s.Makespan())
	}
}

func TestLowestCycleFirstInterleaving(t *testing.T) {
	// Thread 0 ticks 10 per step, thread 1 ticks 1 per step. The
	// observed global order must always resume the lowest-cycle thread.
	s := New(2, 1)
	var order []int
	s.Run(func(th *Thread) {
		step := uint64(10)
		if th.ID() == 1 {
			step = 1
		}
		for i := 0; i < 5; i++ {
			order = append(order, th.ID())
			th.Tick(step)
		}
	})
	// Thread 1 runs 5 steps (cycles 0..4) before thread 0's second step
	// (cycle 10). Expected: 0 (cycle 0) or 1 first (tie at 0 broken by
	// id): thread 0 at 0, thread 1 at 0 -> id 0 first.
	want := []int{0, 1, 1, 1, 1, 1, 0, 0, 0, 0}
	if len(order) != len(want) {
		t.Fatalf("order length = %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := New(4, 7)
		var trace []uint64
		s.Run(func(th *Thread) {
			for i := 0; i < 20; i++ {
				trace = append(trace, uint64(th.ID())<<32|th.Rand().Uint64()>>40)
				th.Tick(th.Rand().Uint64() % 17)
			}
		})
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestStallAndWakeAll(t *testing.T) {
	s := New(2, 3)
	var events []string
	s.Run(func(th *Thread) {
		if th.ID() == 0 {
			events = append(events, "stall")
			th.Stall()
			events = append(events, "woken")
			if th.Cycles() < 100 {
				t.Errorf("stalled thread clock = %d, want >= 100 (advanced to waker)", th.Cycles())
			}
		} else {
			th.Tick(100)
			events = append(events, "wake")
			th.WakeAll()
			th.Tick(1)
		}
	})
	if len(events) != 3 || events[0] != "stall" || events[1] != "wake" || events[2] != "woken" {
		t.Fatalf("events = %v", events)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := New(1, 0)
	s.Run(func(th *Thread) { th.Stall() })
}

func TestTotalCycles(t *testing.T) {
	s := New(3, 0)
	s.Run(func(th *Thread) { th.Tick(uint64(th.ID()+1) * 10) })
	if got := s.TotalCycles(); got != 60 {
		t.Fatalf("total = %d, want 60", got)
	}
	if got := s.Makespan(); got != 30 {
		t.Fatalf("makespan = %d, want 30", got)
	}
}

func TestNewPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 1)
}

func TestRandIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		p := r.Perm(32)
		seen := make([]bool, 32)
		for _, v := range p {
			if v < 0 || v >= 32 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDistinctStreams(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams overlap too much: %d identical draws", same)
	}
}
