package sched

import (
	"fmt"
	"testing"
)

// trace records the observable schedule of one simulation: the sequence of
// (thread, cycle) pairs at every step of every body, plus the final
// per-thread cycle counters.
type trace struct {
	steps  []uint64
	cycles []uint64
}

// runTraced executes body-shaped work under run (either (*Sim).Run or
// (*Sim).Slow) and returns the full observable schedule.
func runTraced(threads int, seed uint64, run func(*Sim, func(*Thread)), body func(*Thread, func())) trace {
	s := New(threads, seed)
	var tr trace
	run(s, func(th *Thread) {
		body(th, func() {
			tr.steps = append(tr.steps, uint64(th.ID())<<48|th.Cycles())
		})
	})
	for i := 0; i < threads; i++ {
		tr.cycles = append(tr.cycles, s.Thread(i).Cycles())
	}
	return tr
}

// diffTraces fails the test if two schedules are not identical.
func diffTraces(t *testing.T, fast, slow trace) {
	t.Helper()
	if len(fast.steps) != len(slow.steps) {
		t.Fatalf("step counts diverge: fast %d, slow %d", len(fast.steps), len(slow.steps))
	}
	for i := range fast.steps {
		if fast.steps[i] != slow.steps[i] {
			t.Fatalf("schedules diverge at step %d: fast (thread %d, cycle %d), slow (thread %d, cycle %d)",
				i, fast.steps[i]>>48, fast.steps[i]&(1<<48-1), slow.steps[i]>>48, slow.steps[i]&(1<<48-1))
		}
	}
	for i := range fast.cycles {
		if fast.cycles[i] != slow.cycles[i] {
			t.Fatalf("thread %d cycles diverge: fast %d, slow %d", i, fast.cycles[i], slow.cycles[i])
		}
	}
}

// TestRunMatchesSlowRandomTicks is the heap conductor's differential
// oracle: across thread counts and seeds, random tick patterns must
// produce the exact schedule of the reference linear-scan conductor.
func TestRunMatchesSlowRandomTicks(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 8, 16, 32} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("t%d/s%d", threads, seed), func(t *testing.T) {
				body := func(th *Thread, step func()) {
					for i := 0; i < 200; i++ {
						step()
						// Heavy tie mass: ~1/4 of ticks charge zero
						// cycles, stressing the ID tie-break.
						th.Tick(th.Rand().Uint64() % 4)
					}
				}
				fast := runTraced(threads, seed, (*Sim).Run, body)
				slow := runTraced(threads, seed, (*Sim).Slow, body)
				diffTraces(t, fast, slow)
			})
		}
	}
}

// TestRunMatchesSlowStallWake differentially checks Stall/WakeAll: threads
// randomly stall, and the lowest-ID runnable thread wakes the machine.
func TestRunMatchesSlowStallWake(t *testing.T) {
	for _, threads := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("t%d/s%d", threads, seed), func(t *testing.T) {
				// Shared (single-logical-thread-at-a-time) counters keep
				// the workload deadlock-free: a thread stalls only while
				// another live thread is runnable, and every body wakes
				// the machine before finishing — so some runnable thread
				// always eventually wakes the stalled ones.
				mk := func() func(*Thread, func()) {
					alive, stalled := threads, 0
					return func(th *Thread, step func()) {
						for i := 0; i < 100; i++ {
							step()
							r := th.Rand().Uint64() % 16
							switch {
							case r == 0 && alive-stalled > 1:
								stalled++
								th.Stall()
								stalled--
							case r == 1:
								th.WakeAll()
								th.Tick(1)
							default:
								th.Tick(r)
							}
						}
						alive--
						th.WakeAll()
					}
				}
				fast := runTraced(threads, seed, (*Sim).Run, mk())
				slow := runTraced(threads, seed, (*Sim).Slow, mk())
				diffTraces(t, fast, slow)
			})
		}
	}
}

// TestRunMatchesSlowBarrier differentially checks the spin barrier, whose
// zero-progress polling is the harshest tie-breaking workload.
func TestRunMatchesSlowBarrier(t *testing.T) {
	for _, threads := range []int{2, 4, 8} {
		seed := uint64(9)
		t.Run(fmt.Sprintf("t%d", threads), func(t *testing.T) {
			mk := func() (func(*Thread, func()), *Barrier) {
				b := NewBarrier(threads)
				return func(th *Thread, step func()) {
					for phase := 0; phase < 3; phase++ {
						step()
						th.Tick(th.Rand().Uint64() % 50)
						b.Wait(th)
					}
				}, b
			}
			fastBody, _ := mk()
			fast := runTraced(threads, seed, (*Sim).Run, fastBody)
			slowBody, _ := mk()
			slow := runTraced(threads, seed, (*Sim).Slow, slowBody)
			diffTraces(t, fast, slow)
		})
	}
}

// TestStallWhileFastPathing pins the fast-path/stall interaction: a thread
// that has been running inline (never touching the conductor) must still
// hand control back when it stalls, and the machine must continue with the
// woken threads in the right order.
func TestStallWhileFastPathing(t *testing.T) {
	s := New(3, 1)
	var order []string
	s.Run(func(th *Thread) {
		switch th.ID() {
		case 0:
			// Lowest cycles: every Tick is an inline fast path (the
			// others idle at higher cycle counts), then a stall.
			for i := 0; i < 50; i++ {
				th.Tick(1)
			}
			order = append(order, "t0-stall")
			th.Stall()
			order = append(order, "t0-woken")
			if th.Cycles() < 1000 {
				t.Errorf("t0 cycles = %d, want >= 1000 (advanced to waker)", th.Cycles())
			}
		case 1:
			th.Tick(1000)
			order = append(order, "t1-wake")
			th.WakeAll()
			th.Tick(1)
		case 2:
			th.Tick(2000)
			order = append(order, "t2-done")
		}
	})
	want := []string{"t0-stall", "t1-wake", "t0-woken", "t2-done"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWakeAllReordersFastPath checks that an inline-running waker loses
// the CPU to a thread it woke at equal cycles but lower ID: WakeAll must
// update the bound Tick compares against.
func TestWakeAllReordersFastPath(t *testing.T) {
	s := New(2, 1)
	var order []string
	s.Run(func(th *Thread) {
		if th.ID() == 0 {
			order = append(order, "t0-stall")
			th.Stall()
			order = append(order, "t0-woken")
		} else {
			th.Tick(10)
			order = append(order, "t1-wake")
			th.WakeAll()
			// t0 is now runnable at t1's cycle count with a lower ID, so
			// this tick — even charging zero — must yield to t0.
			th.Tick(0)
			order = append(order, "t1-after")
		}
	})
	want := []string{"t0-stall", "t1-wake", "t0-woken", "t1-after"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// benchmarkTick measures the fast-path cycle charge: thread 0 ticks b.N
// times while the other thread idles far in the simulated future, so every
// charge but the first two is an inline heap-root comparison.
func benchmarkTick(b *testing.B) {
	s := New(2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(func(th *Thread) {
		if th.ID() == 0 {
			for i := 0; i < b.N; i++ {
				th.Tick(1)
			}
		} else {
			th.Tick(uint64(b.N) + 2)
		}
	})
}

// BenchmarkTick must report 0 allocs/op: the inline fast path performs no
// channel handoff and no allocation.
func BenchmarkTick(b *testing.B) { benchmarkTick(b) }

// BenchmarkTickSlow is the reference conductor's cost for the same
// workload: two channel handoffs plus a linear scan per charge.
func BenchmarkTickSlow(b *testing.B) {
	s := New(2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	s.Slow(func(th *Thread) {
		if th.ID() == 0 {
			for i := 0; i < b.N; i++ {
				th.Tick(1)
			}
		} else {
			th.Tick(uint64(b.N) + 2)
		}
	})
}

// TestTickFastPathZeroAllocs asserts the acceptance bound directly: the
// steady-state Tick fast path allocates nothing.
func TestTickFastPathZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	r := testing.Benchmark(benchmarkTick)
	if a := r.AllocsPerOp(); a != 0 {
		t.Fatalf("Tick fast path allocates %d allocs/op, want 0", a)
	}
}
