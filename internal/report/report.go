// Package report turns EXPERIMENTS.md's verdicts into code: it checks
// measured figure data against the paper's qualitative shapes — who wins,
// roughly by what factor, where curves cross — and reports any deviation.
// The harness benchmarks and `sitm-bench -verify` run these checks so a
// regression in any engine or workload that breaks the reproduction fails
// loudly.
package report

import (
	"fmt"
	"sort"
)

// Finding is one shape check outcome.
type Finding struct {
	// Check names the paper claim being verified.
	Check string
	// OK reports whether the measured data matches the shape.
	OK bool
	// Detail holds the measured values (and the expectation on failure).
	Detail string
}

func (f Finding) String() string {
	status := "ok  "
	if !f.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("[%s] %-40s %s", status, f.Check, f.Detail)
}

// Findings is the full report.
type Findings []Finding

// AllOK reports whether every check passed.
func (fs Findings) AllOK() bool {
	for _, f := range fs {
		if !f.OK {
			return false
		}
	}
	return true
}

func (fs Findings) String() string {
	out := ""
	for _, f := range fs {
		out += f.String() + "\n"
	}
	return out
}

// CheckFigure1 verifies the Figure 1 shape: read-write conflicts cause the
// dominant share of 2PL aborts (the paper: 75-99% per benchmark).
// rwShare maps benchmark name to its read-write share in [0, 1].
func CheckFigure1(rwShare map[string]float64) Findings {
	var fs Findings
	for _, name := range sortedKeys(rwShare) {
		share := rwShare[name]
		fs = append(fs, Finding{
			Check:  fmt.Sprintf("fig1 %s rw-dominated", name),
			OK:     share >= 0.75,
			Detail: fmt.Sprintf("rw share %.1f%% (paper: 75-99%%)", 100*share),
		})
	}
	return fs
}

// CheckFigure7 verifies the Figure 7 shapes at 32 threads from the data
// Figure7 returns (benchmark -> threads -> [2PL, SONTM, SI-TM] relative
// aborts).
func CheckFigure7(data map[string]map[int][3]float64) Findings {
	var fs Findings
	at32 := func(name string) ([3]float64, bool) {
		rows, ok := data[name]
		if !ok {
			return [3]float64{}, false
		}
		row, ok := rows[32]
		return row, ok
	}

	// SI-TM must abort least (or tie) on every benchmark except the
	// RMW-bound kmeans, where parity is the expectation.
	for _, name := range sortedKeys(data) {
		row, ok := at32(name)
		if !ok {
			continue
		}
		si, cs := row[2], row[1]
		limit := 1.05 // parity tolerance
		fs = append(fs, Finding{
			Check:  fmt.Sprintf("fig7 %s si<=2pl", name),
			OK:     si <= limit,
			Detail: fmt.Sprintf("si/2pl=%.3f sontm/2pl=%.3f", si, cs),
		})
	}

	// Headline factors: Array and Vacation must show order-of-magnitude
	// reductions; List a large one.
	if row, ok := at32("Array"); ok {
		fs = append(fs, Finding{
			Check:  "fig7 Array si ~1000x below 2pl",
			OK:     row[2] <= 0.01,
			Detail: fmt.Sprintf("si/2pl=%.4f (paper ~0.0003)", row[2]),
		})
	}
	if row, ok := at32("Vacation"); ok {
		fs = append(fs, Finding{
			Check:  "fig7 Vacation si <10% of 2pl",
			OK:     row[2] <= 0.10,
			Detail: fmt.Sprintf("si/2pl=%.4f (paper <0.01)", row[2]),
		})
	}
	if row, ok := at32("List"); ok {
		fs = append(fs, Finding{
			Check:  "fig7 List si <20% of 2pl",
			OK:     row[2] <= 0.20,
			Detail: fmt.Sprintf("si/2pl=%.4f (paper ~0.03)", row[2]),
		})
	}
	if row, ok := at32("Kmeans"); ok {
		fs = append(fs, Finding{
			Check:  "fig7 Kmeans near parity",
			OK:     row[2] >= 0.3,
			Detail: fmt.Sprintf("si/2pl=%.3f (paper ~1: RMW conflicts unavoidable)", row[2]),
		})
	}
	return fs
}

// CheckFigure8 verifies the Figure 8 shapes from the data Figure8 returns
// (benchmark -> engine -> speedups over Fig8Threads).
func CheckFigure8(data map[string]map[string][]float64, threads []int) Findings {
	var fs Findings
	last := len(threads) - 1
	get := func(name, engine string) (float64, bool) {
		series, ok := data[name]
		if !ok {
			return 0, false
		}
		sp, ok := series[engine]
		if !ok || len(sp) <= last {
			return 0, false
		}
		return sp[last], true
	}

	if si, ok := get("Array", "SI-TM"); ok {
		fs = append(fs, Finding{
			Check:  "fig8 Array si ~20x at 32",
			OK:     si >= 15,
			Detail: fmt.Sprintf("si=%.1fx (paper ~20x)", si),
		})
	}
	if pl, ok := get("Array", "2PL"); ok {
		si, _ := get("Array", "SI-TM")
		fs = append(fs, Finding{
			Check:  "fig8 Array 2pl collapses vs si",
			OK:     pl <= si/3,
			Detail: fmt.Sprintf("2pl=%.1fx si=%.1fx (paper: 2pl below 1)", pl, si),
		})
	}
	if si, ok := get("List", "SI-TM"); ok {
		fs = append(fs, Finding{
			Check:  "fig8 List si ~14x at 32",
			OK:     si >= 10,
			Detail: fmt.Sprintf("si=%.1fx (paper 14x)", si),
		})
	}
	if si, ok := get("Vacation", "SI-TM"); ok {
		pl, _ := get("Vacation", "2PL")
		fs = append(fs, Finding{
			Check:  "fig8 Vacation si scales linearly",
			OK:     si >= 25 && si > pl*2,
			Detail: fmt.Sprintf("si=%.1fx 2pl=%.1fx (paper: linear to 32)", si, pl),
		})
	}
	if si, ok := get("Intruder", "SI-TM"); ok {
		pl, _ := get("Intruder", "2PL")
		fs = append(fs, Finding{
			Check:  "fig8 Intruder si well above 2pl",
			OK:     si >= pl*2,
			Detail: fmt.Sprintf("si=%.1fx 2pl=%.1fx", si, pl),
		})
	}
	// Kmeans: all engines in the same low band.
	if si, ok := get("Kmeans", "SI-TM"); ok {
		pl, _ := get("Kmeans", "2PL")
		fs = append(fs, Finding{
			Check:  "fig8 Kmeans engines comparable",
			OK:     si < 8 && pl < 8,
			Detail: fmt.Sprintf("si=%.1fx 2pl=%.1fx (paper: similar, low)", si, pl),
		})
	}
	// Labyrinth: everything scales; TM policy is not the limit.
	if si, ok := get("Labyrinth", "SI-TM"); ok {
		pl, _ := get("Labyrinth", "2PL")
		fs = append(fs, Finding{
			Check:  "fig8 Labyrinth all scale",
			OK:     si >= 20 && pl >= 20,
			Detail: fmt.Sprintf("si=%.1fx 2pl=%.1fx", si, pl),
		})
	}
	return fs
}

// CheckTable2 verifies Appendix A's conclusion: fewer than 1% of accesses
// target versions older than the 4th, validating the 4-version MVM.
func CheckTable2(data map[string][6]uint64) Findings {
	var fs Findings
	for _, name := range sortedKeys(data) {
		row := data[name]
		var old, total uint64
		for d, v := range row {
			total += v
			if d >= 4 {
				old += v
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(old) / float64(total)
		}
		fs = append(fs, Finding{
			Check:  fmt.Sprintf("table2 %s <1%% older than 4th", name),
			OK:     pct < 1,
			Detail: fmt.Sprintf("%.3f%% of %d accesses", pct, total),
		})
	}
	return fs
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
