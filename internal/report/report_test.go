package report

import (
	"strings"
	"testing"
)

func TestCheckFigure1(t *testing.T) {
	fs := CheckFigure1(map[string]float64{"List": 1.0, "Kmeans": 0.5})
	if fs.AllOK() {
		t.Fatal("0.5 rw share must fail the 75% bar")
	}
	var listOK, kmeansOK bool
	for _, f := range fs {
		if strings.Contains(f.Check, "List") {
			listOK = f.OK
		}
		if strings.Contains(f.Check, "Kmeans") {
			kmeansOK = f.OK
		}
	}
	if !listOK || kmeansOK {
		t.Fatalf("unexpected verdicts: %s", fs)
	}
}

func TestCheckFigure7Shapes(t *testing.T) {
	good := map[string]map[int][3]float64{
		"Array":    {32: {1, 0.8, 0.001}},
		"Vacation": {32: {1, 0.3, 0.04}},
		"List":     {32: {1, 0.5, 0.08}},
		"Kmeans":   {32: {1, 0.8, 0.7}},
	}
	if fs := CheckFigure7(good); !fs.AllOK() {
		t.Fatalf("good data failed:\n%s", fs)
	}
	bad := map[string]map[int][3]float64{
		"Array": {32: {1, 0.8, 1.5}}, // SI worse than 2PL
	}
	if fs := CheckFigure7(bad); fs.AllOK() {
		t.Fatal("bad data passed")
	}
}

func TestCheckFigure8Shapes(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16, 32}
	good := map[string]map[string][]float64{
		"Array":     {"SI-TM": {1, 2, 4, 8, 16, 28}, "2PL": {1, 2, 3, 4, 5, 5}, "SONTM": {1, 2, 3, 4, 6, 8}},
		"List":      {"SI-TM": {1, 2, 4, 6, 9, 13}, "2PL": {1, 2, 2, 2, 2, 2}, "SONTM": {1, 2, 3, 3, 3, 3}},
		"Vacation":  {"SI-TM": {1, 2, 5, 11, 22, 40}, "2PL": {1, 2, 5, 7, 8, 10}, "SONTM": {1, 2, 5, 11, 22, 39}},
		"Intruder":  {"SI-TM": {1, 2, 4, 6, 6, 7}, "2PL": {1, 1, 1, 1, 1, 1}, "SONTM": {1, 1, 1, 1, 2, 2}},
		"Kmeans":    {"SI-TM": {1, 2, 2, 3, 3, 3}, "2PL": {1, 2, 2, 2, 2, 2}, "SONTM": {1, 2, 2, 3, 3, 4}},
		"Labyrinth": {"SI-TM": {1, 2, 6, 15, 34, 76}, "2PL": {1, 2, 6, 15, 27, 51}, "SONTM": {1, 3, 7, 17, 43, 96}},
	}
	if fs := CheckFigure8(good, threads); !fs.AllOK() {
		t.Fatalf("good data failed:\n%s", fs)
	}
	bad := map[string]map[string][]float64{
		"Array": {"SI-TM": {1, 1, 1, 1, 1, 2}, "2PL": {1, 2, 3, 4, 5, 5}, "SONTM": {1, 1, 1, 1, 1, 1}},
	}
	if fs := CheckFigure8(bad, threads); fs.AllOK() {
		t.Fatal("bad data passed")
	}
}

func TestCheckTable2(t *testing.T) {
	good := map[string][6]uint64{"List": {1000, 50, 5, 1, 0, 0}}
	if fs := CheckTable2(good); !fs.AllOK() {
		t.Fatalf("good data failed:\n%s", fs)
	}
	bad := map[string][6]uint64{"List": {100, 5, 5, 1, 50, 20}}
	if fs := CheckTable2(bad); fs.AllOK() {
		t.Fatal("deep-access-heavy data passed the <1% bar")
	}
}

func TestFindingStrings(t *testing.T) {
	fs := Findings{{Check: "x", OK: true, Detail: "d"}, {Check: "y", OK: false, Detail: "e"}}
	s := fs.String()
	if !strings.Contains(s, "[ok  ]") || !strings.Contains(s, "[FAIL]") {
		t.Fatalf("rendering: %s", s)
	}
	if fs.AllOK() {
		t.Fatal("AllOK wrong")
	}
}
