package report

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
)

// Histogram bucket geometry: buckets are logarithmic with histSubBits
// sub-buckets per power of two (an HdrHistogram-style layout), so a
// recorded value lands in a bucket whose width is at most 1/2^histSubBits
// of its magnitude — quantiles carry at most ~3% relative error. The
// geometry is fixed at compile time: the histogram is a flat array, never
// allocates after creation, and two histograms fed the same values are
// byte-identical regardless of feeding order.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	// histBuckets covers the full uint64 range: values below
	// histSubBuckets land in the linear first group, and each exponent
	// from histSubBits to 63 contributes histSubBuckets sub-buckets.
	histBuckets = (64 - histSubBits + 1) * histSubBuckets
)

// Hist is a deterministic, allocation-free latency histogram of
// simulated-cycle values. The zero Hist is empty and ready to use.
// Everything about it is order-independent and integer-only, so per-cell
// quantiles are byte-stable across runs, worker counts and platforms —
// the property the figure pipeline's content-addressed cache relies on.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	// Position of the leading bit, then histSubBits bits below it.
	exp := 63 - bits.LeadingZeros64(v)
	sub := (v >> (uint(exp) - histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits+1)*histSubBuckets + int(sub)
}

// histBucketLow returns the smallest value mapping to bucket i — the
// conservative (lower-bound) value reported for quantiles in it.
func histBucketLow(i int) uint64 {
	if i < histSubBuckets {
		return uint64(i)
	}
	exp := uint(i/histSubBuckets) + histSubBits - 1
	sub := uint64(i % histSubBuckets)
	return (1 << exp) | (sub << (exp - histSubBits))
}

// Record adds one observation.
func (h *Hist) Record(v uint64) {
	h.counts[histBucket(v)]++
	h.total++
}

// Add merges o into h (used when aggregating per-seed cells).
func (h *Hist) Add(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Total returns the number of recorded observations.
func (h *Hist) Total() uint64 { return h.total }

// Quantile returns the value at quantile q in [0, 1] (0.99 = p99): the
// lower bound of the bucket holding the q-th observation, 0 when empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if c != 0 && seen > rank {
			return histBucketLow(i)
		}
	}
	return histBucketLow(histBuckets - 1)
}

// MarshalJSON encodes the histogram as sorted sparse [bucket, count]
// pairs: deterministic bytes, proportional to occupied buckets. Value
// receiver so a Hist embedded by value in a marshalled struct (e.g.
// exp.CellResult) encodes correctly.
func (h Hist) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "[%d,%d]", i, c)
	}
	b.WriteByte(']')
	return []byte(b.String()), nil
}

// UnmarshalJSON decodes the sparse pair encoding written by MarshalJSON
// (whitespace-tolerant: cached blobs are stored re-indented).
func (h *Hist) UnmarshalJSON(data []byte) error {
	*h = Hist{}
	var pairs [][2]uint64
	if err := json.Unmarshal(data, &pairs); err != nil {
		return fmt.Errorf("report: malformed histogram: %w", err)
	}
	for _, p := range pairs {
		if p[0] >= histBuckets {
			return fmt.Errorf("report: histogram bucket %d out of range", p[0])
		}
		h.counts[p[0]] += p[1]
		h.total += p[1]
	}
	return nil
}

// Summary renders the standard tail-latency triple.
func (h *Hist) Summary() string {
	return fmt.Sprintf("p50=%d p99=%d p999=%d",
		h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
}
