package report

import (
	"encoding/json"
	"math/rand/v2"
	"testing"
)

func TestHistBucketGeometry(t *testing.T) {
	// Every value maps to a bucket whose lower bound is <= the value,
	// and bucket lower bounds are monotone.
	for _, v := range []uint64{0, 1, 31, 32, 33, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, ^uint64(0)} {
		b := histBucket(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, b)
		}
		if lo := histBucketLow(b); lo > v {
			t.Fatalf("histBucketLow(%d) = %d > value %d", b, lo, v)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if histBucketLow(i) < histBucketLow(i-1) {
			t.Fatalf("bucket lows not monotone at %d", i)
		}
	}
	// Round trip: a bucket's own lower bound maps back to it.
	for i := 0; i < histBuckets; i++ {
		if got := histBucket(histBucketLow(i)); got != i {
			t.Fatalf("histBucket(histBucketLow(%d)) = %d", i, got)
		}
	}
}

func TestHistQuantileError(t *testing.T) {
	// Quantiles come back within the sub-bucket relative error bound.
	var h Hist
	for v := uint64(1); v <= 100000; v++ {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := uint64(q * 100000)
		got := h.Quantile(q)
		if got > exact {
			t.Fatalf("Quantile(%v) = %d above exact %d", q, got, exact)
		}
		if float64(got) < float64(exact)*(1-2.0/histSubBuckets) {
			t.Fatalf("Quantile(%v) = %d too far below exact %d", q, got, exact)
		}
	}
	if h.Total() != 100000 {
		t.Fatalf("Total() = %d", h.Total())
	}
}

func TestHistOrderIndependentAndMerge(t *testing.T) {
	vals := make([]uint64, 5000)
	r := rand.New(rand.NewPCG(1, 2))
	for i := range vals {
		vals[i] = r.Uint64N(1 << 30)
	}
	var fwd, rev, merged Hist
	var a, b Hist
	for i, v := range vals {
		fwd.Record(v)
		rev.Record(vals[len(vals)-1-i])
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged.Add(&a)
	merged.Add(&b)
	if fwd != rev || fwd != merged {
		t.Fatal("histogram depends on feeding order or merge path")
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 5, 5, 1000, 1 << 22} {
		h.Record(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("marshal not deterministic")
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip mismatch: %s vs %s", data, mustJSON(&back))
	}
	var empty Hist
	data, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty histogram marshals to %s", data)
	}
	var backEmpty Hist
	if err := json.Unmarshal(data, &backEmpty); err != nil {
		t.Fatal(err)
	}
	if backEmpty != empty {
		t.Fatal("empty round trip mismatch")
	}
}

func mustJSON(h *Hist) string {
	b, err := json.Marshal(h)
	if err != nil {
		panic(err)
	}
	return string(b)
}
