package twopl

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

func addr(i int) mem.Addr { return mem.Addr(i * mem.LineBytes) }

func single(body func(th *sched.Thread)) {
	sched.New(1, 1).Run(body)
}

func TestBasicCommit(t *testing.T) {
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 7)
		if v := tx.Read(addr(1)); v != 7 {
			t.Errorf("read own write = %d", v)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if e.NonTxRead(addr(1)) != 7 {
		t.Fatal("write not committed")
	}
}

func TestRequesterWinsOnRead(t *testing.T) {
	// A transactional read (get-shared) aborts the writer holding the
	// line: requester wins, victim sees a read-write abort.
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		w := e.Begin(th)
		w.Write(addr(1), 1)
		r := e.Begin(th)
		_ = r.Read(addr(1))
		if err := r.Commit(); err != nil {
			t.Errorf("requester must commit: %v", err)
		}
		defer func() {
			if recover() == nil {
				t.Error("victim writer should abort via signal")
			}
		}()
		w.Write(addr(2), 2) // doomed: unwinds
	})
	if e.Stats().Aborts[tm.AbortReadWrite] != 1 {
		t.Fatalf("read-write aborts = %d, want 1", e.Stats().Aborts[tm.AbortReadWrite])
	}
	if e.NonTxRead(addr(1)) != 0 {
		t.Fatal("doomed writer's data leaked")
	}
}

func TestRequesterWinsOnWrite(t *testing.T) {
	// A transactional write (get-exclusive) aborts all readers.
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		r := e.Begin(th)
		_ = r.Read(addr(1))
		w := e.Begin(th)
		w.Write(addr(1), 1)
		if err := w.Commit(); err != nil {
			t.Errorf("requester must commit: %v", err)
		}
		if err := r.Commit(); err == nil {
			t.Error("doomed reader must abort at commit")
		}
	})
	if e.Stats().Aborts[tm.AbortReadWrite] != 1 {
		t.Fatalf("read-write aborts = %d, want 1", e.Stats().Aborts[tm.AbortReadWrite])
	}
}

func TestWriteWriteDoom(t *testing.T) {
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		w1 := e.Begin(th)
		w1.Write(addr(1), 1)
		w2 := e.Begin(th)
		w2.Write(addr(1), 2)
		if err := w2.Commit(); err != nil {
			t.Errorf("requester: %v", err)
		}
		if err := w1.Commit(); err == nil {
			t.Error("victim must abort")
		}
	})
	if e.Stats().Aborts[tm.AbortWriteWrite] != 1 {
		t.Fatalf("write-write aborts = %d, want 1", e.Stats().Aborts[tm.AbortWriteWrite])
	}
}

// TestFigure2Schedule2PL replays Figure 2: TX0's accesses doom every other
// transaction — 2PL is "unnecessarily pessimistic".
func TestFigure2Schedule2PL(t *testing.T) {
	e := New(DefaultConfig())
	A, B, C := addr(1), addr(2), addr(3)
	aborted := 0
	single(func(th *sched.Thread) {
		tx0 := e.Begin(th)
		tx1 := e.Begin(th)
		tx2 := e.Begin(th)
		tx3 := e.Begin(th)

		attempt := func(tx tm.Txn, body func()) {
			defer func() {
				if recover() != nil {
					aborted++
				}
			}()
			body()
			if err := tx.Commit(); err != nil {
				aborted++
			}
		}

		_ = tx0.Read(A)
		_ = tx3.Read(A)
		tx0.Write(A, 1) // dooms tx3 (reader of A)
		_ = tx2.Read(B)
		tx2.Write(C, 1)
		tx0.Write(B, 1) // dooms tx2 (reader of B)
		if err := tx0.Commit(); err != nil {
			t.Fatalf("TX0: %v", err)
		}
		attempt(tx1, func() { _ = tx1.Read(A) }) // reads after tx0 commit: fine
		attempt(tx3, func() { tx3.Write(A, 2) })
		attempt(tx2, func() { _ = tx2.Read(A) })
	})
	// Under this interleaving TX2 and TX3 abort (TX1 read A after TX0
	// committed, so it survives; aborting TX1 requires overlap with
	// TX0's write, which Figure 2's timeline shows but a serial replay
	// cannot).
	if aborted != 2 {
		t.Fatalf("aborted = %d, want 2 (TX2, TX3)", aborted)
	}
}

func TestConcurrentIncrementsAreSerializable(t *testing.T) {
	e := New(DefaultConfig())
	s := sched.New(4, 5)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 25; i++ {
			err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				v := tx.Read(addr(1))
				tx.Write(addr(1), v+1)
				return nil
			})
			if err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
	})
	if got := e.NonTxRead(addr(1)); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestAbortDiscardsWriteLog(t *testing.T) {
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 5)
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 9)
		tx.Abort()
	})
	if e.NonTxRead(addr(1)) != 5 {
		t.Fatal("aborted write leaked")
	}
	if e.Stats().Aborts[tm.AbortExplicit] != 1 {
		t.Fatal("explicit abort not counted")
	}
}

func TestReadOnlyCounted(t *testing.T) {
	e := New(DefaultConfig())
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		_ = tx.Read(addr(1))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if e.Stats().ReadOnly != 1 {
		t.Fatal("read-only commit not counted")
	}
}

func TestLivelockAvoidedWithBackoff(t *testing.T) {
	// Two threads RMW the same two lines in opposite order: mutual
	// dooming is likely; exponential backoff must still let both make
	// progress (§6.4).
	e := New(DefaultConfig())
	s := sched.New(2, 11)
	done := [2]bool{}
	s.Run(func(th *sched.Thread) {
		a, b := addr(1), addr(2)
		if th.ID() == 1 {
			a, b = b, a
		}
		for i := 0; i < 10; i++ {
			err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				tx.Write(a, tx.Read(a)+1)
				tx.Write(b, tx.Read(b)+1)
				return nil
			})
			if err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
		done[th.ID()] = true
	})
	if !done[0] || !done[1] {
		t.Fatal("a thread failed to finish")
	}
	if e.NonTxRead(addr(1)) != 20 || e.NonTxRead(addr(2)) != 20 {
		t.Fatalf("counters = %d,%d want 20,20", e.NonTxRead(addr(1)), e.NonTxRead(addr(2)))
	}
}
