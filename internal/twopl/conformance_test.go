package twopl_test

import (
	"testing"

	"repro/internal/tm"
	"repro/internal/tmtest"
	"repro/internal/twopl"
)

func TestConformance2PL(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		return twopl.New(twopl.DefaultConfig())
	})
}

func TestSerializableSemantics2PL(t *testing.T) {
	tmtest.RunSerializableSuite(t, func() tm.Engine {
		return twopl.New(twopl.DefaultConfig())
	})
}
