package twopl

import "repro/internal/tm"

// The eager 2PL baseline self-registers under the paper's name so the
// harness and CLIs can construct it through the tm engine registry.
func init() {
	tm.Register("2PL", func(o tm.EngineOptions) tm.Engine {
		cfg := DefaultConfig()
		cfg.Cache.Scratch = o.CacheScratch
		cfg.Cache.Reference = o.ReferenceCache
		cfg.ReferenceSets = o.ReferenceSets
		cfg.ReferenceStore = o.ReferenceStore
		return New(cfg)
	})
}
