// Package twopl implements the paper's first baseline (§6.1): a
// state-of-the-art HTM with two-phase-locking semantics — eager conflict
// detection with a "requester wins" policy and lazy version management.
//
// Conflicts are detected at every transactional access, modelling the
// coherency broadcast: a transactional read sends a get-shared message
// that aborts any other transaction holding the line in its write set; a
// transactional write sends a get-exclusive message that aborts every
// other reader and writer of the line. Read and write sets are perfect
// (no-false-positive) bloom filters, modelled as exact sets. Commits
// serialize on a commit token and write the speculative write log back to
// memory; aborts discard the logs and restart in software.
//
// Access tracking uses the signature-backed tables of internal/aset:
// the write log is an aset.WriteLog, and per-line reader/writer holds are
// epoch-stamped records that a finished or recycled transaction
// invalidates all at once, so begin/commit/abort never walk the line
// table. The pre-aset map-based engine is kept verbatim in slow.go as a
// differential oracle behind Config.ReferenceSets.
package twopl

import (
	"fmt"
	"math/bits"

	"repro/internal/aset"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// Config tunes the baseline.
type Config struct {
	Cache cache.Config
	// BroadcastCost is the per-access cycle cost of the coherency
	// broadcast used for eager conflict detection.
	BroadcastCost uint64
	// CommitOverhead is the fixed cost of acquiring the commit token.
	CommitOverhead uint64
	// VersionBufferLines bounds the speculative write set: conventional
	// HTMs use the L1 cache as the version buffer and abort on
	// overflow (§4.3 — Haswell aborts transactions touching more than
	// its L1 can hold, sometimes after only 9 writes due to
	// associativity). 0 models an idealised unbounded buffer.
	VersionBufferLines int
	// InterruptPeriod injects an interrupt every N transactional
	// accesses engine-wide; a cache-buffered transaction cannot
	// survive a context switch, so the transaction running on the
	// interrupted thread aborts (§1, §4.3). 0 disables injection.
	InterruptPeriod int
	// InterruptCost is the handler overhead charged per interrupt.
	InterruptCost uint64
	// ReferenceSets routes transactions through the verbatim map-based
	// access-set implementation (slow.go), the differential oracle for
	// the aset fast path. Results are bit-identical to the default; only
	// simulator wall time changes.
	ReferenceSets bool
	// ReferenceStore backs the per-word values and per-line lock tables
	// with the retained dense mem store instead of the paged one, the
	// differential oracle for the paged backing. Results are
	// bit-identical to the default; only memory footprint changes.
	ReferenceStore bool
}

// DefaultConfig returns the evaluated configuration: idealised unbounded
// version buffers and no interrupts, matching the paper's baseline model.
func DefaultConfig() Config {
	return Config{Cache: cache.DefaultConfig(), BroadcastCost: 2, CommitOverhead: 10, InterruptCost: 200}
}

// noLine is the lastRead sentinel: no real line has this number, so a
// fresh transaction's first read always takes the set path.
const noLine = ^mem.Line(0)

// lineState tracks which transactions hold a line transactionally. The
// writer hold is valid only while (writer.epoch == wEpoch &&
// !writer.finished); reader records carry the same epoch validation
// inside aset.Readers. Finishing a transaction therefore releases every
// hold it had without touching this table.
type lineState struct {
	writer  *txn
	wEpoch  uint64
	readers aset.Readers[*txn]
}

// Engine is the 2PL baseline.
type Engine struct {
	cfg    Config
	shared *cache.Shared
	// hiers holds each core's private hierarchy, indexed by thread ID
	// (IDs are dense, 0..n-1); nil until the thread first begins.
	hiers  []*cache.Hierarchy
	stats  tm.Stats
	tracer tm.Tracer

	// presence filters commit-time invalidation: instead of broadcasting
	// every written line to every other core, only cores that actually
	// accessed the line since it was last invalidated are visited. The
	// skipped invalidations are no-ops (see cache.Presence), so the
	// filtered publish is observably identical.
	presence cache.Presence

	// words and lines are paged tables keyed by word/line number: the
	// simulated address space is dense (bump allocated), and these sit
	// on the per-access hot path where a map hash dominated. The paged
	// backing keeps the heap proportional to touched lines at
	// serving-scale footprints (Config.ReferenceStore retains the dense
	// backing as the differential oracle).
	words  mem.Paged[uint64]
	lines  mem.Paged[lineState]
	txnSeq uint64

	// lastTxn recycles each thread's most recent transaction object:
	// finishing a transaction invalidates its epoch-stamped line holds,
	// so the object — and its already-grown access sets — can be reused
	// without a fresh allocate-and-rehash cycle.
	lastTxn    map[int]*txn
	liveReader func(*txn, uint64) bool

	// Reference map-based implementation state (slow.go), used only when
	// cfg.ReferenceSets.
	linesSlow   mem.Dense[*slowLineState]
	lastTxnSlow map[int]*slowTxn

	commitBusy  bool
	accessCount int
}

// New creates a 2PL engine.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:      cfg,
		shared:   cache.NewShared(cfg.Cache),
		lastTxn:  make(map[int]*txn),
		presence: cache.NewPresence(cfg.Cache.Scratch, cfg.ReferenceStore),
	}
	e.liveReader = e.readerLive
	if cfg.ReferenceSets {
		e.lastTxnSlow = make(map[int]*slowTxn)
	}
	if cfg.ReferenceStore {
		e.words.SetReference()
		e.lines.SetReference()
	}
	return e
}

// Name implements tm.Engine.
func (e *Engine) Name() string { return "2PL" }

// Stats implements tm.Engine.
func (e *Engine) Stats() *tm.Stats { return &e.stats }

// Promote implements tm.Engine. 2PL already aborts on read-write
// conflicts, so promotion is a no-op: serializability needs no repair.
func (e *Engine) Promote(string) {}

// SetTracer implements tm.Engine.
func (e *Engine) SetTracer(tr tm.Tracer) { e.tracer = tr }

// NonTxRead implements tm.Engine.
//
//sitm:allow(yieldlint) workload setup/verification API, called before threads start or after they quiesce
func (e *Engine) NonTxRead(a mem.Addr) uint64 { return e.words.Load(mem.WordIndex(a)) }

// NonTxWrite implements tm.Engine.
//
//sitm:allow(yieldlint) workload setup/verification API, called before threads start or after they quiesce
func (e *Engine) NonTxWrite(a mem.Addr, v uint64) { e.words.Store(mem.WordIndex(a), v) }

func (e *Engine) hierarchy(t *sched.Thread) *cache.Hierarchy {
	id := t.ID()
	for id >= len(e.hiers) {
		e.hiers = append(e.hiers, nil)
	}
	h := e.hiers[id]
	if h == nil {
		h = cache.NewHierarchy(e.cfg.Cache, e.shared)
		e.hiers[id] = h
	}
	return h
}

// ReleaseCaches returns the simulated cache arrays to the scratch pool
// the engine was configured with (no-op without one). The harness calls
// it once the run's statistics have been extracted; the engine must not
// run transactions afterwards.
func (e *Engine) ReleaseCaches() {
	for _, h := range e.hiers {
		if h != nil {
			h.Release()
		}
	}
	e.hiers = nil
	e.shared.Release()
	e.presence.Release(e.cfg.Cache.Scratch)
}

// CacheStats returns aggregate cache statistics over all cores.
func (e *Engine) CacheStats() cache.Stats {
	var s cache.Stats
	for _, h := range e.hiers {
		if h == nil {
			continue
		}
		s.L1Hits += h.Stats.L1Hits
		s.L2Hits += h.Stats.L2Hits
		s.L3Hits += h.Stats.L3Hits
		s.MemAccesses += h.Stats.MemAccesses
		s.XlateHits += h.Stats.XlateHits
		s.XlateMisses += h.Stats.XlateMisses
		s.Accesses += h.Stats.Accesses
	}
	return s
}

// AuditAccessSets verifies that no live access-set state survives outside
// a running transaction: recycled transaction objects hold empty sets and
// no line records a live reader or writer. tmtest calls it after each
// conformance cell. The reference (map-based) path keeps the pre-aset
// engine's own lifecycle — cleanup deletes its holds eagerly — so it is
// not audited.
//
//sitm:allow(yieldlint) quiescent audit scan, runs after every simulated thread has finished
func (e *Engine) AuditAccessSets() error {
	if e.cfg.ReferenceSets {
		return nil
	}
	for id, tx := range e.lastTxn {
		if tx == nil {
			continue
		}
		if !tx.finished {
			return fmt.Errorf("twopl: thread %d transaction unfinished", id)
		}
		if n := tx.writes.Len(); n != 0 {
			return fmt.Errorf("twopl: thread %d leaked %d write-log lines", id, n)
		}
		if n := tx.reads.Len(); n != 0 {
			return fmt.Errorf("twopl: thread %d leaked %d read-set lines", id, n)
		}
	}
	var auditErr error
	e.lines.Range(func(i uint64, st *lineState) {
		if auditErr != nil {
			return
		}
		if w := st.writer; w != nil && w.epoch == st.wEpoch && !w.finished {
			auditErr = fmt.Errorf("twopl: line %d holds a live writer after quiescence", i)
			return
		}
		st.readers.Compact(e.liveReader)
		if n := st.readers.Len(); n != 0 {
			auditErr = fmt.Errorf("twopl: line %d holds %d live reader records after quiescence", i, n)
		}
	})
	return auditErr
}

// readerLive is the liveness predicate of reader records: live while the
// object has not been recycled (epoch match) and the transaction has not
// finished.
func (e *Engine) readerLive(r *txn, epoch uint64) bool {
	return r.epoch == epoch && !r.finished
}

// txn is one 2PL transaction attempt.
type txn struct {
	e  *Engine
	t  *sched.Thread
	h  *cache.Hierarchy
	id uint64
	// epoch distinguishes incarnations of a recycled transaction object:
	// line holds carry the epoch they were made under, so recycling
	// releases all of an object's holds without walking the line table.
	epoch uint64

	// reads dedups this transaction's reader registrations: one record
	// per line regardless of how often the line is read.
	reads aset.LineSet
	// lastRead memoises the line of the previous Read: registration is
	// idempotent and never revoked mid-transaction, so a repeat read of
	// the same line (sequential word scans hit the same line eight
	// times) can skip the set probe entirely.
	lastRead mem.Line
	// writes buffers the speculative stores: line membership,
	// first-write order and the logged words in one structure.
	writes aset.WriteLog

	// selfBit is this thread's presence bit (cache.CoreBit of its ID),
	// noted on every access so committers know this core may hold the
	// line.
	selfBit uint64

	doomed   bool
	doomKind tm.AbortKind
	doomLine mem.Line
	finished bool
	site     string
}

var _ tm.Txn = (*txn)(nil)

// Begin implements tm.Engine.
func (e *Engine) Begin(t *sched.Thread) tm.Txn {
	if e.cfg.ReferenceSets {
		return e.beginSlow(t)
	}
	e.txnSeq++
	var tx *txn
	if old := e.lastTxn[t.ID()]; old != nil && old.finished {
		// The object's sets were Reset when it finished, keeping their
		// grown capacity; bumping the epoch releases any line holds the
		// previous incarnation left behind. The thread object can
		// differ across scheduler runs even for the same thread ID, so
		// it is rebound.
		old.t = t
		old.id = e.txnSeq
		old.epoch++
		old.lastRead = noLine
		old.doomed, old.doomKind, old.doomLine = false, 0, 0
		old.finished = false
		old.site = ""
		tx = old
	} else {
		tx = &txn{
			e: e, t: t, h: e.hierarchy(t), id: e.txnSeq,
			epoch:    1,
			lastRead: noLine,
			selfBit:  cache.CoreBit(t.ID()),
		}
		e.lastTxn[t.ID()] = tx
	}
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	t.Tick(2)
	return tx
}

// Site implements tm.Txn.
func (x *txn) Site(s string) tm.Txn { x.site = s; return x }

// doom marks a victim transaction aborted; the requester always wins.
func (x *txn) doom(kind tm.AbortKind, line mem.Line) {
	if !x.doomed {
		x.doomed = true
		x.doomKind = kind
		x.doomLine = line
	}
}

// checkDoom unwinds the transaction (via the tm abort signal) if a
// requester doomed it; used on the Read/Write paths.
func (x *txn) checkDoom() {
	if !x.doomed {
		return
	}
	x.abortDoomed()
	tm.SignalAbort(x.doomKind, x.doomLine)
}

// abortDoomed finalises a doomed transaction and returns its abort error;
// used on the Commit path, which reports aborts as error values.
func (x *txn) abortDoomed() error {
	x.cleanup()
	x.e.stats.Count(x.doomKind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	return &tm.AbortError{Kind: x.doomKind, Line: x.doomLine}
}

// maybeInterrupt injects a periodic interrupt: a cache-buffered
// transaction cannot survive the context switch and aborts (§4.3).
func (x *txn) maybeInterrupt(line mem.Line) {
	if x.e.cfg.InterruptPeriod <= 0 {
		return
	}
	x.e.accessCount++
	if x.e.accessCount%x.e.cfg.InterruptPeriod != 0 {
		return
	}
	x.t.Tick(x.e.cfg.InterruptCost)
	x.cleanup()
	x.e.stats.Count(tm.AbortInterrupt)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	tm.SignalAbort(tm.AbortInterrupt, line)
}

// liveWriter returns the line's current writer, clearing a hold whose
// transaction finished or was recycled (the lazy counterpart of the
// eager slot clear the map-based cleanup performed).
func (st *lineState) liveWriter() *txn {
	if w := st.writer; w != nil {
		if w.epoch == st.wEpoch && !w.finished {
			return w
		}
		st.writer = nil
	}
	return nil
}

// Read implements tm.Txn: a get-shared broadcast aborts any conflicting
// writer ("requester wins"), then the line joins the read set.
func (x *txn) Read(a mem.Addr) uint64 {
	x.checkDoom()
	line := mem.LineOf(a)
	x.maybeInterrupt(line)
	// Note before the Tick: the fill happens when Access evaluates,
	// before the yield, so the presence record must be in place for any
	// commit that interleaves with the yield.
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line) + x.e.cfg.BroadcastCost)
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	// Eager conflict detection reads and writes the shared line table on
	// every access: 2PL interacts per event and can never batch.
	x.t.Interact()
	st := x.e.lines.Slot(uint64(line))
	if w := st.liveWriter(); w != nil && w != x {
		w.doom(tm.AbortReadWrite, line)
	}
	if line != x.lastRead {
		if x.reads.Add(line) {
			st.readers.CompactAdd(x, x.epoch, x.e.liveReader)
		}
		x.lastRead = line
	}
	if v, ok := x.writes.Load(a); ok {
		return v
	}
	return x.e.words.Load(mem.WordIndex(a))
}

// ReadPromoted implements tm.Txn; under 2PL it is an ordinary read.
func (x *txn) ReadPromoted(a mem.Addr) uint64 { return x.Read(a) }

// Write implements tm.Txn: a get-exclusive broadcast aborts every other
// reader and writer of the line, then the store is logged.
func (x *txn) Write(a mem.Addr, v uint64) {
	x.checkDoom()
	line := mem.LineOf(a)
	x.maybeInterrupt(line)
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line) + x.e.cfg.BroadcastCost)
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	// Version-buffer overflow (§4.3): the L1-resident speculative state
	// cannot exceed the buffer; the transaction aborts.
	if n := x.e.cfg.VersionBufferLines; n > 0 {
		if !x.writes.Has(line) && x.writes.Len() >= n {
			x.cleanup()
			x.e.stats.Count(tm.AbortCapacity)
			if x.e.tracer != nil {
				x.e.tracer.TxnAbort(x.id)
			}
			tm.SignalAbort(tm.AbortCapacity, line)
		}
	}
	x.t.Interact() // get-exclusive broadcast: per-event interaction
	st := x.e.lines.Slot(uint64(line))
	if w := st.liveWriter(); w != nil && w != x {
		w.doom(tm.AbortWriteWrite, line)
	}
	for _, ent := range st.readers.Entries() {
		if r := ent.Tx; r != x && r.epoch == ent.Epoch && !r.finished {
			r.doom(tm.AbortReadWrite, line)
		}
	}
	st.writer = x
	st.wEpoch = x.epoch
	x.writes.Store(a, v)
}

// cleanup releases the transaction's line holds and resets its sets.
// Setting finished invalidates every reader/writer record the
// transaction made (they are epoch-and-liveness validated), so no table
// walk is needed.
func (x *txn) cleanup() {
	x.finished = true
	x.writes.Reset()
	x.reads.Reset()
}

// Abort implements tm.Txn: read and write logs are discarded and the
// transaction restarts in software (§6.1).
func (x *txn) Abort() {
	if x.finished {
		return
	}
	x.cleanup()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn: the thread obtains the commit token, iterates
// over its write log and commits the speculative writes to main memory
// (§6.1).
func (x *txn) Commit() error {
	if x.finished {
		panic("twopl: Commit on finished transaction")
	}
	if x.doomed {
		return x.abortDoomed()
	}
	if x.writes.Len() == 0 {
		x.cleanup()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		x.t.Tick(2)
		return nil
	}
	for x.e.commitBusy {
		x.e.stats.Stalls++
		x.t.Stall()
		if x.doomed {
			return x.abortDoomed()
		}
	}
	x.e.commitBusy = true
	x.t.Tick(x.e.cfg.CommitOverhead)
	if x.doomed { // a requester may have doomed us while ticking
		x.e.commitBusy = false
		x.t.WakeAll()
		return x.abortDoomed()
	}
	x.t.Interact() // write-back + invalidations: per-event interactions
	for i := 0; i < x.writes.Len(); i++ {
		line, w := x.writes.At(i)
		for word := 0; word < mem.WordsPerLine; word++ {
			if w.Mask&(1<<word) != 0 {
				x.e.words.Store(mem.WordIndex(mem.WordAddr(line, word)), w.Words[word])
			}
		}
	}
	for _, line := range x.writes.Lines() {
		// Re-note: another commit may have drained this core's bit
		// while we were stalled, and the Access below re-fills the line.
		x.e.presence.Note(line, x.selfBit)
		x.t.Tick(x.h.Access(line))
		// 2PL never performs versioned accesses, so only the data
		// caches can hold the line (the translation caches and MVM
		// partition are never filled); invalidate exactly the cores the
		// presence filter says may hold it.
		for others := x.e.presence.Drain(line, x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateData(line)
		}
		for id := 64; id < len(x.e.hiers); id++ {
			if h := x.e.hiers[id]; h != nil && id != x.t.ID() {
				h.InvalidateData(line)
			}
		}
	}
	x.e.commitBusy = false
	x.cleanup()
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.t.WakeAll()
	return nil
}
