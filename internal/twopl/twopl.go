// Package twopl implements the paper's first baseline (§6.1): a
// state-of-the-art HTM with two-phase-locking semantics — eager conflict
// detection with a "requester wins" policy and lazy version management.
//
// Conflicts are detected at every transactional access, modelling the
// coherency broadcast: a transactional read sends a get-shared message
// that aborts any other transaction holding the line in its write set; a
// transactional write sends a get-exclusive message that aborts every
// other reader and writer of the line. Read and write sets are perfect
// (no-false-positive) bloom filters, modelled as exact sets. Commits
// serialize on a commit token and write the speculative write log back to
// memory; aborts discard the logs and restart in software.
package twopl

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// Config tunes the baseline.
type Config struct {
	Cache cache.Config
	// BroadcastCost is the per-access cycle cost of the coherency
	// broadcast used for eager conflict detection.
	BroadcastCost uint64
	// CommitOverhead is the fixed cost of acquiring the commit token.
	CommitOverhead uint64
	// VersionBufferLines bounds the speculative write set: conventional
	// HTMs use the L1 cache as the version buffer and abort on
	// overflow (§4.3 — Haswell aborts transactions touching more than
	// its L1 can hold, sometimes after only 9 writes due to
	// associativity). 0 models an idealised unbounded buffer.
	VersionBufferLines int
	// InterruptPeriod injects an interrupt every N transactional
	// accesses engine-wide; a cache-buffered transaction cannot
	// survive a context switch, so the transaction running on the
	// interrupted thread aborts (§1, §4.3). 0 disables injection.
	InterruptPeriod int
	// InterruptCost is the handler overhead charged per interrupt.
	InterruptCost uint64
}

// DefaultConfig returns the evaluated configuration: idealised unbounded
// version buffers and no interrupts, matching the paper's baseline model.
func DefaultConfig() Config {
	return Config{Cache: cache.DefaultConfig(), BroadcastCost: 2, CommitOverhead: 10, InterruptCost: 200}
}

// lineState tracks which active transactions hold a line transactionally.
type lineState struct {
	writer  *txn
	readers map[*txn]struct{}
}

// Engine is the 2PL baseline.
type Engine struct {
	cfg    Config
	shared *cache.Shared
	hier   map[int]*cache.Hierarchy
	stats  tm.Stats
	tracer tm.Tracer

	words  map[mem.Addr]uint64
	lines  map[mem.Line]*lineState
	txnSeq uint64

	// lastTxn recycles each thread's most recent transaction object.
	// cleanup fully deregisters a finished transaction from the engine
	// (readers, writer slots), so once the same thread begins again the
	// old object — and, crucially, its already-grown read/write-set
	// maps — can be reused without a fresh allocate-and-rehash cycle.
	lastTxn map[int]*txn

	commitBusy  bool
	accessCount int
}

// New creates a 2PL engine.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:     cfg,
		shared:  cache.NewShared(cfg.Cache),
		hier:    make(map[int]*cache.Hierarchy),
		words:   make(map[mem.Addr]uint64),
		lines:   make(map[mem.Line]*lineState),
		lastTxn: make(map[int]*txn),
	}
}

// Name implements tm.Engine.
func (e *Engine) Name() string { return "2PL" }

// Stats implements tm.Engine.
func (e *Engine) Stats() *tm.Stats { return &e.stats }

// Promote implements tm.Engine. 2PL already aborts on read-write
// conflicts, so promotion is a no-op: serializability needs no repair.
func (e *Engine) Promote(string) {}

// SetTracer implements tm.Engine.
func (e *Engine) SetTracer(tr tm.Tracer) { e.tracer = tr }

// NonTxRead implements tm.Engine.
func (e *Engine) NonTxRead(a mem.Addr) uint64 { return e.words[a] }

// NonTxWrite implements tm.Engine.
func (e *Engine) NonTxWrite(a mem.Addr, v uint64) { e.words[a] = v }

func (e *Engine) hierarchy(t *sched.Thread) *cache.Hierarchy {
	h := e.hier[t.ID()]
	if h == nil {
		h = cache.NewHierarchy(e.cfg.Cache, e.shared)
		e.hier[t.ID()] = h
	}
	return h
}

// ReleaseCaches returns the simulated cache arrays to the scratch pool
// the engine was configured with (no-op without one). The harness calls
// it once the run's statistics have been extracted; the engine must not
// run transactions afterwards.
func (e *Engine) ReleaseCaches() {
	for _, h := range e.hier {
		h.Release()
	}
	e.hier = nil
	e.shared.Release()
}

func (e *Engine) state(l mem.Line) *lineState {
	s := e.lines[l]
	if s == nil {
		s = &lineState{readers: make(map[*txn]struct{})}
		e.lines[l] = s
	}
	return s
}

// txn is one 2PL transaction attempt.
type txn struct {
	e  *Engine
	t  *sched.Thread
	h  *cache.Hierarchy
	id uint64

	readSet  map[mem.Line]struct{}
	writeLog map[mem.Addr]uint64
	writeSet map[mem.Line]struct{}
	// writeOrder preserves first-write order so commit-time cycle
	// charging is deterministic (map iteration is not).
	writeOrder []mem.Line

	doomed   bool
	doomKind tm.AbortKind
	doomLine mem.Line
	finished bool
	site     string
}

var _ tm.Txn = (*txn)(nil)

// Begin implements tm.Engine.
func (e *Engine) Begin(t *sched.Thread) tm.Txn {
	e.txnSeq++
	var tx *txn
	if old := e.lastTxn[t.ID()]; old != nil && old.finished {
		// clear keeps the maps' grown capacity, so steady-state
		// transactions insert without rehashing.
		clear(old.readSet)
		clear(old.writeLog)
		clear(old.writeSet)
		*old = txn{
			e: e, t: t, h: old.h, id: e.txnSeq,
			readSet:    old.readSet,
			writeLog:   old.writeLog,
			writeSet:   old.writeSet,
			writeOrder: old.writeOrder[:0],
		}
		tx = old
	} else {
		tx = &txn{
			e: e, t: t, h: e.hierarchy(t), id: e.txnSeq,
			readSet:  make(map[mem.Line]struct{}),
			writeLog: make(map[mem.Addr]uint64),
			writeSet: make(map[mem.Line]struct{}),
		}
		e.lastTxn[t.ID()] = tx
	}
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	t.Tick(2)
	return tx
}

// Site implements tm.Txn.
func (x *txn) Site(s string) tm.Txn { x.site = s; return x }

// doom marks a victim transaction aborted; the requester always wins.
func (x *txn) doom(kind tm.AbortKind, line mem.Line) {
	if !x.doomed {
		x.doomed = true
		x.doomKind = kind
		x.doomLine = line
	}
}

// checkDoom unwinds the transaction (via the tm abort signal) if a
// requester doomed it; used on the Read/Write paths.
func (x *txn) checkDoom() {
	if !x.doomed {
		return
	}
	x.abortDoomed()
	tm.SignalAbort(x.doomKind, x.doomLine)
}

// abortDoomed finalises a doomed transaction and returns its abort error;
// used on the Commit path, which reports aborts as error values.
func (x *txn) abortDoomed() error {
	x.cleanup()
	x.e.stats.Count(x.doomKind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	return &tm.AbortError{Kind: x.doomKind, Line: x.doomLine}
}

// maybeInterrupt injects a periodic interrupt: a cache-buffered
// transaction cannot survive the context switch and aborts (§4.3).
func (x *txn) maybeInterrupt(line mem.Line) {
	if x.e.cfg.InterruptPeriod <= 0 {
		return
	}
	x.e.accessCount++
	if x.e.accessCount%x.e.cfg.InterruptPeriod != 0 {
		return
	}
	x.t.Tick(x.e.cfg.InterruptCost)
	x.cleanup()
	x.e.stats.Count(tm.AbortInterrupt)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	tm.SignalAbort(tm.AbortInterrupt, line)
}

// Read implements tm.Txn: a get-shared broadcast aborts any conflicting
// writer ("requester wins"), then the line joins the read set.
func (x *txn) Read(a mem.Addr) uint64 {
	x.checkDoom()
	line := mem.LineOf(a)
	x.maybeInterrupt(line)
	x.t.Tick(x.h.Access(line) + x.e.cfg.BroadcastCost)
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	st := x.e.state(line)
	if st.writer != nil && st.writer != x {
		st.writer.doom(tm.AbortReadWrite, line)
	}
	st.readers[x] = struct{}{}
	x.readSet[line] = struct{}{}
	if v, ok := x.writeLog[a]; ok {
		return v
	}
	return x.e.words[a]
}

// ReadPromoted implements tm.Txn; under 2PL it is an ordinary read.
func (x *txn) ReadPromoted(a mem.Addr) uint64 { return x.Read(a) }

// Write implements tm.Txn: a get-exclusive broadcast aborts every other
// reader and writer of the line, then the store is logged.
func (x *txn) Write(a mem.Addr, v uint64) {
	x.checkDoom()
	line := mem.LineOf(a)
	x.maybeInterrupt(line)
	x.t.Tick(x.h.Access(line) + x.e.cfg.BroadcastCost)
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	// Version-buffer overflow (§4.3): the L1-resident speculative state
	// cannot exceed the buffer; the transaction aborts.
	if n := x.e.cfg.VersionBufferLines; n > 0 {
		if _, ok := x.writeSet[line]; !ok && len(x.writeSet) >= n {
			x.cleanup()
			x.e.stats.Count(tm.AbortCapacity)
			if x.e.tracer != nil {
				x.e.tracer.TxnAbort(x.id)
			}
			tm.SignalAbort(tm.AbortCapacity, line)
		}
	}
	st := x.e.state(line)
	if st.writer != nil && st.writer != x {
		st.writer.doom(tm.AbortWriteWrite, line)
	}
	for r := range st.readers {
		if r != x {
			r.doom(tm.AbortReadWrite, line)
		}
	}
	st.writer = x
	if _, ok := x.writeSet[line]; !ok {
		x.writeSet[line] = struct{}{}
		x.writeOrder = append(x.writeOrder, line)
	}
	x.writeLog[a] = v
}

// cleanup removes the transaction from every line state.
func (x *txn) cleanup() {
	for line := range x.readSet {
		if st := x.e.lines[line]; st != nil {
			delete(st.readers, x)
		}
	}
	for line := range x.writeSet {
		if st := x.e.lines[line]; st != nil && st.writer == x {
			st.writer = nil
		}
	}
	x.finished = true
}

// Abort implements tm.Txn: read and write logs are discarded and the
// transaction restarts in software (§6.1).
func (x *txn) Abort() {
	if x.finished {
		return
	}
	x.cleanup()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn: the thread obtains the commit token, iterates
// over its write log and commits the speculative writes to main memory
// (§6.1).
func (x *txn) Commit() error {
	if x.finished {
		panic("twopl: Commit on finished transaction")
	}
	if x.doomed {
		return x.abortDoomed()
	}
	if len(x.writeLog) == 0 {
		x.cleanup()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		x.t.Tick(2)
		return nil
	}
	for x.e.commitBusy {
		x.e.stats.Stalls++
		x.t.Stall()
		if x.doomed {
			return x.abortDoomed()
		}
	}
	x.e.commitBusy = true
	x.t.Tick(x.e.cfg.CommitOverhead)
	if x.doomed { // a requester may have doomed us while ticking
		x.e.commitBusy = false
		x.t.WakeAll()
		return x.abortDoomed()
	}
	for a, v := range x.writeLog {
		x.e.words[a] = v
	}
	for _, line := range x.writeOrder {
		x.t.Tick(x.h.Access(line))
		for id, h := range x.e.hier {
			if id != x.t.ID() {
				h.Invalidate(line)
			}
		}
	}
	x.e.commitBusy = false
	x.cleanup()
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.t.WakeAll()
	return nil
}
