package twopl

// The pre-aset access-set implementation, kept verbatim as the
// differential oracle for the signature-backed fast path (see
// Config.ReferenceSets). slowTxn tracks its write log and write set in Go
// maps, and each line's holders in a map[*slowTxn]struct{}, exactly as
// the engine did before internal/aset existed. Results are bit-identical
// to the fast path; only simulator wall time changes. Do not "improve"
// this file: its value is being the unchanged original.

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// slowLineState tracks which active transactions hold a line
// transactionally.
type slowLineState struct {
	writer  *slowTxn
	readers map[*slowTxn]struct{}
}

func (e *Engine) stateSlow(l mem.Line) *slowLineState {
	sp := e.linesSlow.Slot(uint64(l))
	if *sp == nil {
		*sp = &slowLineState{readers: make(map[*slowTxn]struct{})}
	}
	return *sp
}

// slowTxn is one 2PL transaction attempt under the reference map-based
// access tracking.
type slowTxn struct {
	e  *Engine
	t  *sched.Thread
	h  *cache.Hierarchy
	id uint64

	// readLines lists the lines this transaction holds in shared mode,
	// each exactly once (the insert is guarded by st.readers
	// membership, which doubles as the dedup set — one map operation
	// per read instead of the two a separate read-set map cost).
	readLines []mem.Line
	// lastRead memoises the line of the previous Read: membership in
	// st.readers is idempotent and never revoked mid-transaction, so a
	// repeat read of the same line (sequential word scans hit the same
	// line eight times) can skip the map probe entirely.
	lastRead mem.Line
	writeLog map[mem.Addr]uint64
	writeSet map[mem.Line]struct{}
	// writeOrder preserves first-write order so commit-time cycle
	// charging is deterministic (map iteration is not).
	writeOrder []mem.Line

	// selfBit is this thread's presence bit (cache.CoreBit of its ID),
	// noted on every access so committers know this core may hold the
	// line.
	selfBit uint64

	doomed   bool
	doomKind tm.AbortKind
	doomLine mem.Line
	finished bool
	site     string
}

var _ tm.Txn = (*slowTxn)(nil)

// beginSlow is the reference-path tm.Engine.Begin.
func (e *Engine) beginSlow(t *sched.Thread) tm.Txn {
	e.txnSeq++
	var tx *slowTxn
	if old := e.lastTxnSlow[t.ID()]; old != nil && old.finished {
		// clear keeps the maps' grown capacity, so steady-state
		// transactions insert without rehashing.
		clear(old.writeLog)
		clear(old.writeSet)
		*old = slowTxn{
			e: e, t: t, h: old.h, id: e.txnSeq,
			readLines:  old.readLines[:0],
			lastRead:   noLine,
			selfBit:    old.selfBit,
			writeLog:   old.writeLog,
			writeSet:   old.writeSet,
			writeOrder: old.writeOrder[:0],
		}
		tx = old
	} else {
		tx = &slowTxn{
			e: e, t: t, h: e.hierarchy(t), id: e.txnSeq,
			lastRead: noLine,
			selfBit:  cache.CoreBit(t.ID()),
			writeLog: make(map[mem.Addr]uint64),
			writeSet: make(map[mem.Line]struct{}),
		}
		e.lastTxnSlow[t.ID()] = tx
	}
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	t.Tick(2)
	return tx
}

// Site implements tm.Txn.
func (x *slowTxn) Site(s string) tm.Txn { x.site = s; return x }

// doom marks a victim transaction aborted; the requester always wins.
func (x *slowTxn) doom(kind tm.AbortKind, line mem.Line) {
	if !x.doomed {
		x.doomed = true
		x.doomKind = kind
		x.doomLine = line
	}
}

// checkDoom unwinds the transaction (via the tm abort signal) if a
// requester doomed it; used on the Read/Write paths.
func (x *slowTxn) checkDoom() {
	if !x.doomed {
		return
	}
	x.abortDoomed()
	tm.SignalAbort(x.doomKind, x.doomLine)
}

// abortDoomed finalises a doomed transaction and returns its abort error;
// used on the Commit path, which reports aborts as error values.
func (x *slowTxn) abortDoomed() error {
	x.cleanup()
	x.e.stats.Count(x.doomKind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	return &tm.AbortError{Kind: x.doomKind, Line: x.doomLine}
}

// maybeInterrupt injects a periodic interrupt: a cache-buffered
// transaction cannot survive the context switch and aborts (§4.3).
func (x *slowTxn) maybeInterrupt(line mem.Line) {
	if x.e.cfg.InterruptPeriod <= 0 {
		return
	}
	x.e.accessCount++
	if x.e.accessCount%x.e.cfg.InterruptPeriod != 0 {
		return
	}
	x.t.Tick(x.e.cfg.InterruptCost)
	x.cleanup()
	x.e.stats.Count(tm.AbortInterrupt)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	tm.SignalAbort(tm.AbortInterrupt, line)
}

// Read implements tm.Txn: a get-shared broadcast aborts any conflicting
// writer ("requester wins"), then the line joins the read set.
func (x *slowTxn) Read(a mem.Addr) uint64 {
	x.checkDoom()
	line := mem.LineOf(a)
	x.maybeInterrupt(line)
	// Note before the Tick: the fill happens when Access evaluates,
	// before the yield, so the presence record must be in place for any
	// commit that interleaves with the yield.
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line) + x.e.cfg.BroadcastCost)
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	st := x.e.stateSlow(line)
	if st.writer != nil && st.writer != x {
		st.writer.doom(tm.AbortReadWrite, line)
	}
	if line != x.lastRead {
		// One map operation instead of probe-then-insert: the length
		// delta reveals whether the assignment was a first read.
		n := len(st.readers)
		st.readers[x] = struct{}{}
		if len(st.readers) != n {
			x.readLines = append(x.readLines, line)
		}
		x.lastRead = line
	}
	if len(x.writeLog) != 0 {
		if v, ok := x.writeLog[a]; ok {
			return v
		}
	}
	return x.e.words.Load(mem.WordIndex(a))
}

// ReadPromoted implements tm.Txn; under 2PL it is an ordinary read.
func (x *slowTxn) ReadPromoted(a mem.Addr) uint64 { return x.Read(a) }

// Write implements tm.Txn: a get-exclusive broadcast aborts every other
// reader and writer of the line, then the store is logged.
func (x *slowTxn) Write(a mem.Addr, v uint64) {
	x.checkDoom()
	line := mem.LineOf(a)
	x.maybeInterrupt(line)
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line) + x.e.cfg.BroadcastCost)
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	// Version-buffer overflow (§4.3): the L1-resident speculative state
	// cannot exceed the buffer; the transaction aborts.
	if n := x.e.cfg.VersionBufferLines; n > 0 {
		if _, ok := x.writeSet[line]; !ok && len(x.writeSet) >= n {
			x.cleanup()
			x.e.stats.Count(tm.AbortCapacity)
			if x.e.tracer != nil {
				x.e.tracer.TxnAbort(x.id)
			}
			tm.SignalAbort(tm.AbortCapacity, line)
		}
	}
	st := x.e.stateSlow(line)
	if st.writer != nil && st.writer != x {
		st.writer.doom(tm.AbortWriteWrite, line)
	}
	for r := range st.readers {
		if r != x {
			r.doom(tm.AbortReadWrite, line)
		}
	}
	st.writer = x
	// One map operation instead of probe-then-insert: the length delta
	// reveals whether the assignment was a first write.
	n := len(x.writeSet)
	x.writeSet[line] = struct{}{}
	if len(x.writeSet) != n {
		x.writeOrder = append(x.writeOrder, line)
	}
	x.writeLog[a] = v
}

// cleanup removes the transaction from every line state.
func (x *slowTxn) cleanup() {
	for _, line := range x.readLines {
		if st := x.e.linesSlow.Load(uint64(line)); st != nil {
			delete(st.readers, x)
		}
	}
	for line := range x.writeSet {
		if st := x.e.linesSlow.Load(uint64(line)); st != nil && st.writer == x {
			st.writer = nil
		}
	}
	x.finished = true
}

// Abort implements tm.Txn: read and write logs are discarded and the
// transaction restarts in software (§6.1).
func (x *slowTxn) Abort() {
	if x.finished {
		return
	}
	x.cleanup()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn: the thread obtains the commit token, iterates
// over its write log and commits the speculative writes to main memory
// (§6.1).
func (x *slowTxn) Commit() error {
	if x.finished {
		panic("twopl: Commit on finished transaction")
	}
	if x.doomed {
		return x.abortDoomed()
	}
	if len(x.writeLog) == 0 {
		x.cleanup()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		x.t.Tick(2)
		return nil
	}
	for x.e.commitBusy {
		x.e.stats.Stalls++
		x.t.Stall()
		if x.doomed {
			return x.abortDoomed()
		}
	}
	x.e.commitBusy = true
	x.t.Tick(x.e.cfg.CommitOverhead)
	if x.doomed { // a requester may have doomed us while ticking
		x.e.commitBusy = false
		x.t.WakeAll()
		return x.abortDoomed()
	}
	for a, v := range x.writeLog {
		x.e.words.Store(mem.WordIndex(a), v)
	}
	for _, line := range x.writeOrder {
		// Re-note: another commit may have drained this core's bit
		// while we were stalled, and the Access below re-fills the line.
		x.e.presence.Note(line, x.selfBit)
		x.t.Tick(x.h.Access(line))
		// 2PL never performs versioned accesses, so only the data
		// caches can hold the line (the translation caches and MVM
		// partition are never filled); invalidate exactly the cores the
		// presence filter says may hold it.
		for others := x.e.presence.Drain(line, x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateData(line)
		}
		for id := 64; id < len(x.e.hiers); id++ {
			if h := x.e.hiers[id]; h != nil && id != x.t.ID() {
				h.InvalidateData(line)
			}
		}
	}
	x.e.commitBusy = false
	x.cleanup()
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.t.WakeAll()
	return nil
}
