package twopl

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// TestVersionBufferOverflowAborts reproduces the §4.3 limitation of
// cache-buffered HTMs: a transaction whose write set exceeds the version
// buffer aborts with a capacity abort, regardless of conflicts.
func TestVersionBufferOverflowAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VersionBufferLines = 8
	e := New(cfg)
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		aborted := false
		func() {
			defer func() {
				if recover() != nil {
					aborted = true
				}
			}()
			for i := 0; i < 9; i++ { // ninth distinct line overflows
				tx.Write(addr(i+1), uint64(i))
			}
			_ = tx.Commit()
		}()
		if !aborted {
			t.Error("9-line write set must overflow an 8-line buffer")
		}
	})
	if e.Stats().Aborts[tm.AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %d, want 1", e.Stats().Aborts[tm.AbortCapacity])
	}
	// Nothing leaked.
	for i := 0; i < 9; i++ {
		if e.NonTxRead(addr(i+1)) != 0 {
			t.Fatal("overflowed transaction leaked writes")
		}
	}
}

// TestVersionBufferRepeatedLinesDoNotOverflow checks the bound counts
// distinct lines, not stores.
func TestVersionBufferRepeatedLinesDoNotOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VersionBufferLines = 2
	e := New(cfg)
	single(func(th *sched.Thread) {
		tx := e.Begin(th)
		for i := 0; i < 20; i++ {
			tx.Write(addr(1), uint64(i)) // same line over and over
			tx.Write(addr(2), uint64(i))
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("repeated stores to 2 lines must fit a 2-line buffer: %v", err)
		}
	})
}

// TestInterruptInjectionAborts reproduces the §1/§4.3 claim: interrupts
// abort cache-buffered transactions. The retry loop still finishes the
// work.
func TestInterruptInjectionAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptPeriod = 7
	e := New(cfg)
	s := sched.New(2, 9)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 20; i++ {
			err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				v := tx.Read(addr(1 + th.ID()))
				tx.Write(addr(1+th.ID()), v+1)
				return nil
			})
			if err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
	})
	if e.Stats().Aborts[tm.AbortInterrupt] == 0 {
		t.Fatal("no interrupt aborts despite injection")
	}
	// Disjoint lines: every abort here is interrupt-caused, and all
	// increments still land exactly once.
	if e.NonTxRead(addr(1)) != 20 || e.NonTxRead(addr(2)) != 20 {
		t.Fatalf("counters = %d,%d want 20,20", e.NonTxRead(addr(1)), e.NonTxRead(addr(2)))
	}
}
