// Package core implements the paper's primary contribution: SI-TM, a
// hardware transactional memory based on snapshot isolation (§4), and its
// serializable extension SSI-TM (§5.2).
//
// An SI-TM transaction obtains a unique start timestamp at TM_BEGIN, reads
// every location from the multiversioned memory snapshot at that timestamp,
// buffers writes in a private write set, and at TM_COMMIT validates only
// for write-write conflicts: for each written line, if the newest version
// in the MVM is younger than the transaction's start timestamp, another
// overlapping transaction committed a write to the same line and the
// transaction aborts. Read-write conflicts never abort a transaction, and
// read-only transactions commit with zero overhead.
//
// Access tracking uses the signature-backed tables of internal/aset
// (write sets, promoted-read sets, and epoch-stamped visible-reader
// records), mirroring the fixed hardware set structures of real HTMs. The
// pre-aset map-based engine is kept verbatim in slow.go as a differential
// oracle behind Config.ReferenceSets.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/aset"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/mvm"
	"repro/internal/sched"
	"repro/internal/tm"
)

// Config selects the SI-TM options evaluated in the paper.
type Config struct {
	// MVM configures the multiversioned memory (§3.1 policies).
	MVM mvm.Config
	// Cache configures the simulated memory hierarchy (Table 1).
	Cache cache.Config
	// WordGranularity enables the §4.2 optimisation: on a line-level
	// write-write conflict, compare the conflicting words against the
	// snapshot to dismiss false-sharing and silent-store conflicts.
	// The paper's evaluation keeps this off ("we perform conflict
	// detection on a per cache line granularity ... a lower bound").
	WordGranularity bool
	// Serializable enables SSI-TM (§5.2): read sets are tracked, rw
	// antidependencies set per-transaction in/out flags, and a
	// transaction with both flags (a dangerous structure) aborts.
	Serializable bool
	// MaxInflight bounds concurrent commits (the hardware Δ);
	// 0 = unbounded.
	MaxInflight int
	// CommitOverhead is the fixed cycle cost of obtaining an end
	// timestamp and initiating the commit.
	CommitOverhead uint64
	// ReferenceSets routes transactions through the verbatim map-based
	// access-set implementation (slow.go), the differential oracle for
	// the aset fast path. Results are bit-identical to the default; only
	// simulator wall time changes.
	ReferenceSets bool
	// ReferenceStore backs the presence filters (and, via MVM.
	// ReferenceStore, the version table) with the retained dense mem
	// store instead of the paged one, the differential oracle for the
	// paged backing. Results are bit-identical to the default; only
	// memory footprint changes.
	ReferenceStore bool
}

// DefaultConfig mirrors the evaluated system: 4 versions with
// abort-on-fifth, coalescing, line-granularity conflicts, Table-1 caches.
func DefaultConfig() Config {
	return Config{
		MVM:            mvm.DefaultConfig(),
		Cache:          cache.DefaultConfig(),
		CommitOverhead: 10,
	}
}

// Engine is the SI-TM transactional memory.
type Engine struct {
	cfg    Config
	clk    *clock.Clock
	active *clock.ActiveTable
	mem    *mvm.Memory
	shared *cache.Shared
	// hiers holds each core's private hierarchy, indexed by thread ID
	// (IDs are dense, 0..n-1); nil until the thread first begins. nHier
	// counts the created entries.
	hiers  []*cache.Hierarchy
	nHier  int
	stats  tm.Stats
	tracer tm.Tracer

	// presence and xpresence filter commit-time invalidation (see
	// cache.Presence): presence tracks which cores may hold a data line
	// in L1/L2, xpresence which cores may hold a version-list line in
	// their translation cache. The translation cache is keyed at
	// version-list-line granularity — eight data lines share one entry —
	// so translations need their own filter at that granularity.
	presence  cache.Presence
	xpresence cache.Presence

	promoted map[string]bool
	txnSeq   uint64

	// lastTxn recycles each thread's most recent transaction object.
	// Under Serializable, a committed transaction is recyclable only
	// once no active transaction overlaps it (its SIREAD-style read
	// records are then dead); recycling bumps the object's epoch, which
	// invalidates any remaining reader records at once.
	lastTxn map[int]*txn

	// readers tracks, per line, the epoch-stamped visible-reader records
	// of SSI-TM transactions (visible readers exist only under
	// Serializable; plain SI-TM supports invisible readers, §4.2). A
	// record is live while liveReader accepts it; stale records are
	// swept out lazily by the CompactAdd on the next reader of the line.
	readers    aset.LineMap[aset.Readers[*txn]]
	liveReader func(*txn, uint64) bool

	// lastWriter tracks, per line, the most recent committed writer
	// (Serializable only; epoch-stamped like reader records). It serves
	// the read-side half of the dangerous-structure rule: a reader that
	// observes an overwritten line creates the rw edge reader->writer
	// *after* the writer committed, where ssiWriterCheck can no longer
	// see it. Without this table the structure T2 -rw-> T1 -rw-> T0
	// completed by T2's read of T1's overwrite goes undetected and the
	// read-only anomaly (Fekete et al.) commits — found by model
	// checking the read-only litmus, see DESIGN.md "Model checking".
	// Records are never swept: a record whose writer's end precedes
	// every active snapshot simply fails the concurrency test, and
	// recycling bumps the epoch exactly as for reader records.
	lastWriter aset.LineMap[writerRec]

	// slow holds the reference map-based implementation state (slow.go),
	// nil unless cfg.ReferenceSets.
	slow *slowState

	// batch enables the horizon-batched access path (sched.TickHinted):
	// plain SI-TM with the fast cache model, fast access sets and no
	// tracer. SSI-TM is excluded — its read paths mutate shared reader
	// tables and its read-only commits take order-sensitive clock reads —
	// as are the reference models, whose hits rewrite observable state.
	// batchable holds the configuration-derived part; batch additionally
	// requires no tracer (SetTracer recomputes it).
	batch     bool
	batchable bool
}

// New creates an SI-TM engine.
func New(cfg Config) *Engine {
	clk := clock.New()
	clk.MaxInflight = cfg.MaxInflight
	active := clock.NewActiveTable()
	e := &Engine{
		cfg:       cfg,
		clk:       clk,
		active:    active,
		mem:       mvm.New(cfg.MVM, clk, active),
		shared:    cache.NewShared(cfg.Cache),
		promoted:  make(map[string]bool),
		lastTxn:   make(map[int]*txn),
		presence:  cache.NewPresence(cfg.Cache.Scratch, cfg.ReferenceStore),
		xpresence: cache.NewPresence(cfg.Cache.Scratch, cfg.ReferenceStore),
	}
	e.liveReader = e.readerLive
	if cfg.ReferenceSets {
		e.slow = newSlowState(cfg.Serializable)
	}
	e.batchable = !cfg.Serializable && !cfg.ReferenceSets && !cfg.Cache.Reference
	e.batch = e.batchable
	return e
}

// Name implements tm.Engine.
func (e *Engine) Name() string {
	if e.cfg.Serializable {
		return "SSI-TM"
	}
	return "SI-TM"
}

// Stats implements tm.Engine.
func (e *Engine) Stats() *tm.Stats { return &e.stats }

// Promote implements tm.Engine: reads issued under the given site label
// are inserted into the write set for conflict detection without creating
// data versions (§5.1).
func (e *Engine) Promote(site string) { e.promoted[site] = true }

// SetTracer implements tm.Engine. Tracing pins the per-access event
// order, so it also disables the horizon-batched access path.
func (e *Engine) SetTracer(tr tm.Tracer) {
	e.tracer = tr
	e.batch = e.batchable && tr == nil
}

// MVM exposes the engine's multiversioned memory for measurement
// (Table 2 / Appendix A statistics).
func (e *Engine) MVM() *mvm.Memory { return e.mem }

// Clock exposes the engine's global timestamp clock.
func (e *Engine) Clock() *clock.Clock { return e.clk }

// hierarchy returns (creating on first use) the private cache hierarchy of
// logical thread t.
func (e *Engine) hierarchy(t *sched.Thread) *cache.Hierarchy {
	id := t.ID()
	for id >= len(e.hiers) {
		e.hiers = append(e.hiers, nil)
	}
	h := e.hiers[id]
	if h == nil {
		h = cache.NewHierarchy(e.cfg.Cache, e.shared)
		e.hiers[id] = h
		e.nHier++
	}
	return h
}

// CacheStats returns aggregate cache statistics over all cores.
func (e *Engine) CacheStats() cache.Stats {
	var s cache.Stats
	for _, h := range e.hiers {
		if h == nil {
			continue
		}
		s.L1Hits += h.Stats.L1Hits
		s.L2Hits += h.Stats.L2Hits
		s.L3Hits += h.Stats.L3Hits
		s.MemAccesses += h.Stats.MemAccesses
		s.XlateHits += h.Stats.XlateHits
		s.XlateMisses += h.Stats.XlateMisses
		s.Accesses += h.Stats.Accesses
	}
	return s
}

// ReleaseCaches returns the simulated cache arrays to the scratch pool
// the engine was configured with (no-op without one). The harness calls
// it once the run's statistics have been extracted; the engine must not
// run transactions afterwards.
func (e *Engine) ReleaseCaches() {
	for _, h := range e.hiers {
		if h != nil {
			h.Release()
		}
	}
	e.hiers = nil
	e.shared.Release()
	e.presence.Release(e.cfg.Cache.Scratch)
	e.xpresence.Release(e.cfg.Cache.Scratch)
}

// AuditAccessSets verifies that no live access-set state survives outside
// a running transaction: every recycled transaction object holds empty
// sets, and every reader list compacts to nothing once no transaction is
// active. tmtest calls it after each conformance cell. The reference
// (map-based) path keeps the pre-aset engine's own lifecycle — maps are
// cleared at Begin, readers pruned periodically — so it is not audited.
func (e *Engine) AuditAccessSets() error {
	if e.cfg.ReferenceSets {
		return nil
	}
	for id, tx := range e.lastTxn {
		if tx == nil {
			continue
		}
		if !tx.finished {
			return fmt.Errorf("core: thread %d transaction unfinished", id)
		}
		if n := tx.writes.Len(); n != 0 {
			return fmt.Errorf("core: thread %d leaked %d write-set lines", id, n)
		}
		if n := tx.promoted.Len(); n != 0 {
			return fmt.Errorf("core: thread %d leaked %d promoted lines", id, n)
		}
		if n := tx.reads.Len(); n != 0 {
			return fmt.Errorf("core: thread %d leaked %d read-set lines", id, n)
		}
		if n := len(tx.installBuf); n != 0 {
			return fmt.Errorf("core: thread %d leaked %d install records", id, n)
		}
	}
	for i := 0; i < e.readers.Len(); i++ {
		line, rs := e.readers.At(i)
		rs.Compact(e.liveReader)
		if n := rs.Len(); n != 0 {
			return fmt.Errorf("core: line %d holds %d live reader records after quiescence", line, n)
		}
	}
	return nil
}

// NonTxRead implements tm.Engine: non-transactional reads return the most
// current version (§3).
//
//sitm:allow(yieldlint) workload setup/verification API, called before threads start or after they quiesce
func (e *Engine) NonTxRead(a mem.Addr) uint64 { return e.mem.NonTxReadWord(a) }

// NonTxWrite implements tm.Engine: non-transactional writes modify the
// most current version in place (§3).
//
//sitm:allow(yieldlint) workload setup/verification API, called before threads start or after they quiesce
func (e *Engine) NonTxWrite(a mem.Addr, v uint64) { e.mem.NonTxWriteWord(a, v) }

// installRec remembers an optimistic install for rollback.
type installRec struct {
	line mem.Line
	undo mvm.Undo
}

// txn is one SI-TM transaction attempt.
type txn struct {
	e     *Engine
	t     *sched.Thread
	h     *cache.Hierarchy
	id    uint64
	start clock.Timestamp
	site  string
	// selfBit is this thread's presence bit (cache.CoreBit of its ID),
	// noted on every access so committers know this core may hold the
	// line (and, for versioned reads, its translation).
	selfBit uint64
	// epoch distinguishes incarnations of a recycled transaction object:
	// reader records carry the epoch they were made under, so recycling
	// invalidates all of an object's records without walking any table.
	epoch uint64

	// writes buffers the transaction's stores: line membership,
	// first-write order, and the buffered words in one structure.
	writes aset.WriteLog
	// promoted are reads promoted into conflict detection (§5.1); they
	// are validated like writes but create no versions. Iteration order
	// is first-promotion order, so commit-time cycle charging is
	// deterministic.
	promoted aset.LineSet

	// SSI-TM state (§5.2). The flags record rw-antidependency edges:
	// outFlag means this transaction read a line a concurrent
	// transaction (later) wrote (edge this -> other); inFlag means a
	// concurrent transaction read a line this transaction wrote (edge
	// other -> this). A transaction with both — a dangerous structure —
	// aborts. Reader records persist after commit (like SIREAD locks)
	// until no overlapping transaction remains, so committed pivots are
	// still detected; reads dedups this transaction's own registrations.
	reads aset.LineSet
	// hadReads records that this incarnation registered at least one
	// visible-reader record; canRecycle consults it after reads has been
	// Reset.
	hadReads bool
	inFlag   bool
	outFlag  bool
	doomed   bool

	committed bool
	end       clock.Timestamp // end timestamp once committed

	finished bool

	// installBuf is the reused commit-time install record buffer.
	installBuf []installRec
}

var _ tm.Txn = (*txn)(nil)

// writerRec is an epoch-stamped committed-writer record (see
// Engine.lastWriter); a mismatched epoch means the object was recycled
// and the record is dead, exactly as for reader records.
type writerRec struct {
	tx    *txn
	epoch uint64
}

// Begin implements tm.Engine. It stalls while any commit is in flight —
// the software rendering of the paper's starter stall (§4.2) — then takes
// a unique start timestamp, which creates the logical snapshot.
func (e *Engine) Begin(t *sched.Thread) tm.Txn {
	if e.cfg.ReferenceSets {
		return e.beginSlow(t)
	}
	for e.clk.MustStall() {
		e.clk.Stalls++
		e.stats.Stalls++
		t.Stall()
	}
	e.txnSeq++
	var tx *txn
	if old := e.lastTxn[t.ID()]; old != nil && old.finished && e.canRecycle(old) {
		// The object's sets were Reset when it finished, keeping their
		// grown capacity; bumping the epoch retires any reader records
		// the previous incarnation left behind. The thread object can
		// differ across scheduler runs even for the same thread ID, so
		// it is rebound.
		old.t = t
		old.id = e.txnSeq
		old.start = e.clk.Begin()
		old.site = ""
		old.epoch++
		old.hadReads = false
		old.inFlag, old.outFlag, old.doomed = false, false, false
		old.committed, old.finished = false, false
		old.end = 0
		tx = old
	} else {
		tx = &txn{
			e:       e,
			t:       t,
			h:       e.hierarchy(t),
			id:      e.txnSeq,
			start:   e.clk.Begin(),
			selfBit: cache.CoreBit(t.ID()),
			epoch:   1,
		}
		e.lastTxn[t.ID()] = tx
	}
	e.active.Register(tx.start)
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	if e.batch {
		// Publish the interaction slack backing the horizon-batched
		// path: from any parked position outside the writer-commit
		// critical section, this thread's next horizon-relevant effect
		// (install, invalidation, presence drain, revert) sits behind
		// the commit-entry Tick(CommitOverhead) plus at least one
		// charged line access, so it lands at least CommitOverhead +
		// L1Latency cycles past the parked key. Commit zeroes the slack
		// before entering the critical section.
		t.SetSlack(e.cfg.CommitOverhead + e.cfg.Cache.L1Latency)
	}
	t.Tick(2) // atomic increment of the global timestamp counter
	return tx
}

// canRecycle reports whether old's object may be reused for a new
// transaction. Plain SI-TM always recycles; under Serializable a
// committed transaction's reader records must stay valid (SIREAD
// semantics) while any active transaction overlaps it, so its object is
// reusable only once none does — the same condition under which the
// records are dead for every future writer check. A committed
// transaction that registered no reader records (write-only) left no
// epoch-stamped state behind and is always reusable.
func (e *Engine) canRecycle(old *txn) bool {
	if !e.cfg.Serializable || !old.committed || !old.hadReads {
		return true
	}
	oldest, any := e.active.OldestActive()
	return !any || old.end <= oldest
}

// readerLive is the liveness predicate of the visible-reader records: a
// record is live while its object has not been recycled and the
// transaction is either still active or committed with a possible
// overlapper. Records readerLive rejects are exactly those the writer
// check would skip, so sweeping them is invisible to the simulation.
func (e *Engine) readerLive(r *txn, epoch uint64) bool {
	if r.epoch != epoch || (r.finished && !r.committed) {
		return false
	}
	if !r.finished {
		return true
	}
	oldest, any := e.active.OldestActive()
	return any && r.end > oldest
}

// Site implements tm.Txn.
func (x *txn) Site(s string) tm.Txn {
	x.site = s
	return x
}

// Read implements tm.Txn: the most current version older than the start
// timestamp is returned (§4.2, TM READ), unless the transaction itself
// wrote the word.
// Fence ends any batched scheduling quantum of the transaction's thread
// (txlib's in-transaction allocator calls it so that shared
// non-transactional effects — bump allocations — happen in simulated
// order; see sched.Thread.Fence). A no-op outside horizon batching.
func (x *txn) Fence() { x.t.Fence() }

func (x *txn) Read(a mem.Addr) uint64 {
	// Most workloads never promote a site; the len guard keeps the
	// string-keyed map hash off the per-read hot path in that case.
	if len(x.e.promoted) != 0 && x.e.promoted[x.site] {
		return x.ReadPromoted(a)
	}
	return x.read(a)
}

func (x *txn) read(a mem.Addr) uint64 {
	line := mem.LineOf(a)
	// Note before the Tick: the fills happen when AccessVersioned
	// evaluates, before the yield, so the presence records must be in
	// place for any commit that interleaves with the yield. A versioned
	// access may fill both the data line and its translation.
	x.e.presence.Note(line, x.selfBit)
	x.e.xpresence.Note(cache.XlateLine(line), x.selfBit)
	if x.e.batch && x.h.PredictedHit(line) {
		// Certified non-interacting: the presence Notes above are blind
		// ORs and a predicted L1 hit mutates no cache state, so this
		// event may run inside a batched quantum past the heap root
		// (DESIGN.md "Horizon batching"). The snapshot read below is
		// pinned too — any concurrent install sits behind the horizon.
		x.t.TickHinted(x.h.AccessVersioned(line))
	} else {
		// A miss (or scan-path hit) fills and evicts — including shared
		// L3 state — so it must happen at the per-event point.
		x.t.Fence()
		x.t.Tick(x.h.AccessVersioned(line))
	}
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	if x.e.cfg.Serializable {
		x.trackRead(line)
	}
	if v, ok := x.writes.Load(a); ok {
		return v
	}
	v, ok := x.e.mem.ReadWord(a, x.start)
	if !ok {
		// DropOldest policy discarded the version this snapshot
		// needs (§3.1): the transaction aborts on the read.
		x.abortInternal(tm.AbortCapacity, line)
	}
	return v
}

// ReadPromoted implements tm.Txn: the read participates in commit-time
// conflict detection like a write, but creates no data version (§5.1).
func (x *txn) ReadPromoted(a mem.Addr) uint64 {
	x.promoted.Add(mem.LineOf(a))
	return x.read(a)
}

// Write implements tm.Txn: the store is buffered in the write set and the
// line marked transactionally written (§4.2, TM WRITE); no coherency
// traffic is emitted under lazy conflict detection.
func (x *txn) Write(a mem.Addr, v uint64) {
	line := mem.LineOf(a)
	x.e.presence.Note(line, x.selfBit)
	if x.e.batch && x.h.PredictedHit(line) {
		// Same certification as read: a predicted L1 hit plus the local
		// write-set store interacts with nothing inside the horizon.
		x.t.TickHinted(x.h.Access(line))
	} else {
		x.t.Fence()
		x.t.Tick(x.h.Access(line)) // write into the private cache
	}
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	x.writes.Store(a, v)
}

// trackRead registers this transaction as a visible reader of line for
// SSI-TM's rw-antidependency detection. Reading a line that a concurrent
// transaction has already overwritten records an outgoing edge — and, if
// that overwrite came from a committed transaction that itself has an
// outgoing edge, completes a dangerous structure around a committed
// pivot, which only this reader can break by aborting (§5.2; the
// read-side dual of ssiWriterCheck's committed-pivot rule).
func (x *txn) trackRead(line mem.Line) {
	x.checkDoom(line)
	if x.reads.Add(line) {
		x.hadReads = true
		rs, _ := x.e.readers.Put(line)
		rs.CompactAdd(x, x.epoch, x.e.liveReader)
	}
	if x.e.mem.NewestTS(line) > x.start {
		x.outFlag = true
		if x.inFlag {
			x.abortInternal(tm.AbortSkew, line)
		}
		if rec, ok := x.e.lastWriter.Get(line); ok {
			w := rec.tx
			if w != x && w.epoch == rec.epoch && w.committed && w.end > x.start {
				w.inFlag = true
				if w.outFlag {
					x.abortInternal(tm.AbortSkew, line)
				}
			}
		}
	}
}

// checkDoom aborts a transaction that a committing writer marked dangerous.
func (x *txn) checkDoom(line mem.Line) {
	if x.doomed {
		x.abortInternal(tm.AbortSkew, line)
	}
}

// resetAccessSets empties the transaction's sets in O(touched), keeping
// capacity for the next incarnation. Reader records are not touched: they
// live in the engine table and expire via epoch/liveness instead.
func (x *txn) resetAccessSets() {
	x.writes.Reset()
	x.promoted.Reset()
	x.reads.Reset()
	for i := range x.installBuf {
		x.installBuf[i] = installRec{}
	}
	x.installBuf = x.installBuf[:0]
}

// release drops all engine-side state of the transaction. The local sets
// are reset immediately; a committed SSI-TM transaction's reader records
// stay live (like SIREAD locks) until no overlapping transaction remains,
// at which point readerLive retires them lazily.
func (x *txn) release() {
	x.finished = true
	x.e.active.Deregister(x.start)
	x.resetAccessSets()
}

// abortInternal counts and signals an engine-initiated abort from inside
// Read/Write; it unwinds to tm.Atomic.
func (x *txn) abortInternal(kind tm.AbortKind, line mem.Line) {
	x.release()
	x.e.stats.Count(kind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	tm.SignalAbort(kind, line)
}

// Abort implements tm.Txn: the write set is discarded; nothing was
// published, so rollback is trivial (§4.3).
func (x *txn) Abort() {
	if x.finished {
		return
	}
	x.release()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn (§4.2, TM COMMIT). Read-only transactions
// commit with zero overhead. Writers reserve an end timestamp, then write
// back each line: a line whose newest version is younger than the start
// timestamp is a write-write conflict and the transaction rolls back its
// optimistically created versions and aborts; otherwise a new version
// tagged with the end timestamp is installed. Validation is purely local —
// a timestamp comparison against memory state — with no broadcast.
func (x *txn) Commit() error {
	if x.finished {
		panic("core: Commit on finished transaction")
	}
	// SSI-TM dangerous-structure checks accumulated during execution.
	if x.e.cfg.Serializable && (x.doomed || (x.inFlag && x.outFlag)) {
		return x.commitAbort(0, tm.AbortSkew)
	}
	if x.writes.Len() == 0 && x.promoted.Len() == 0 {
		// Read-only: no end timestamp, no checks (§4.2). Under
		// SSI-TM the reader records persist so later writers still see
		// the antidependencies this reader induced. The clock read is
		// order-sensitive, so end any batched quantum first.
		x.t.Fence()
		x.committed = true
		x.end = x.e.clk.Now()
		x.release()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		return nil
	}

	// Entering the writer-commit critical section: installs,
	// invalidations and presence drains follow, so the published slack
	// must drop to zero before the commit-overhead charge (a batching
	// thread reading the old slack across this Tick's yield would admit
	// events the install below could invalidate). Restored on every exit.
	x.t.SetSlack(0)
	x.t.Tick(x.e.cfg.CommitOverhead)
	end := x.e.clk.ReserveEnd()

	// Deregister before installing so that version coalescing measures
	// only *other* transactions' snapshots (Figure 4: TX1's commit
	// coalesces across TX1's own start timestamp).
	x.e.active.Deregister(x.start)

	// Validate promoted reads: a newer version of a promoted line
	// means a concurrent writer committed — the write-skew repair turns
	// that into an abort (§5.1). This early pass catches committed
	// conflicts cheaply; because commits of different transactions
	// interleave in time, the promoted lines are validated again after
	// the installs below, which guarantees that of two transactions
	// whose writes invalidate each other's promoted reads, at least the
	// one that finishes validating last observes the other's versions.
	for _, line := range x.promoted.Lines() {
		if x.writes.Has(line) {
			continue // validated atomically when the write installs
		}
		// Re-note: another commit may have drained this core's bit, and
		// the Access below re-fills the line.
		x.e.presence.Note(line, x.selfBit)
		x.t.Tick(x.h.Access(line))
		if x.e.mem.NewestTS(line) > x.start {
			return x.commitAbortReserved(end, line, tm.AbortSkew)
		}
	}

	for i := 0; i < x.writes.Len(); i++ {
		line, w := x.writes.At(i)
		x.e.presence.Note(line, x.selfBit)
		x.t.Tick(x.h.Access(line)) // write the line back to the MVM
		base, ok := x.e.mem.ReadLine(line, x.start)
		if !ok {
			return x.commitAbortReserved(end, line, tm.AbortCapacity)
		}
		mask := w.Mask
		if x.e.cfg.WordGranularity {
			// §4.2 optimisation: drop silent stores (words written
			// back with their snapshot value) from the write mask;
			// they carry no effect and must not clobber concurrent
			// writers' words.
			mask = changedMaskWords(w.Mask, &w.Words, &base)
		}
		if x.e.mem.NewestTS(line) > x.start {
			if !x.e.cfg.WordGranularity || x.trueConflict(line, mask, &base) {
				return x.commitAbortReserved(end, line, tm.AbortWriteWrite)
			}
		}
		if x.e.cfg.WordGranularity {
			if mask == 0 {
				continue // fully silent write: nothing to install
			}
			// Merge atop the current newest contents so that
			// dismissed false-sharing conflicts keep the other
			// transaction's words.
			base = x.e.mem.NewestLine(line)
		}
		x.t.Interact() // install: audited horizon-relevant effect
		undo, err := x.e.mem.Install(line, end, base, mask, &w.Words)
		if err != nil {
			return x.commitAbortReserved(end, line, tm.AbortCapacity)
		}
		x.installBuf = append(x.installBuf, installRec{line: line, undo: undo})
	}

	// Revalidate promoted reads now that our versions are installed:
	// any concurrent commit that finished between the early pass and
	// here is visible as a newer version (see the comment above). Lines
	// this transaction itself wrote are excluded — their newest version
	// is our own install, and the write-write check already validated
	// them against the snapshot without an intervening yield.
	for _, line := range x.promoted.Lines() {
		if x.writes.Has(line) {
			continue
		}
		if x.e.mem.NewestTS(line) > x.start {
			return x.commitAbortReserved(end, line, tm.AbortSkew)
		}
	}

	// SSI-TM: writing lines that concurrent transactions have read
	// creates rw antidependencies reader->writer; set the flags and
	// abort any reader that becomes dangerous (§5.2).
	if x.e.cfg.Serializable {
		if err := x.ssiWriterCheck(end); err != nil {
			return err
		}
		// Record this commit as the newest writer of its lines so later
		// readers of the overwritten versions can apply the read-side
		// committed-pivot rule (see trackRead).
		for _, line := range x.writes.Lines() {
			rec, _ := x.e.lastWriter.Put(line)
			rec.tx, rec.epoch = x, x.epoch
		}
	}

	// Publish: invalidate the committed lines in other cores' private
	// caches so subsequent transactions fetch the new versions (§4.4).
	// The presence filters bound the broadcast: data lines go only to
	// cores that accessed them, translations only to cores that made a
	// versioned access under the same version-list line (both filtered
	// at their own granularity; skipped cores would see a no-op). The
	// shared MVM partition holds one copy of the version-list line, so
	// it is scanned once per line rather than once per core — but only
	// when another core exists, matching the per-other-core fused
	// invalidation this replaces (a solo committer never invalidated
	// the partition, and partition residency is observable latency).
	x.t.Interact() // drains + invalidations: audited horizon-relevant effects
	for _, line := range x.writes.Lines() {
		for others := x.e.presence.Drain(line, x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateData(line)
		}
		for others := x.e.xpresence.Drain(cache.XlateLine(line), x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateXlate(line)
		}
		for id := 64; id < len(x.e.hiers); id++ {
			if h := x.e.hiers[id]; h != nil && id != x.t.ID() {
				h.InvalidatePrivate(line)
			}
		}
		if x.e.nHier > 1 {
			x.e.shared.InvalidateVersions(line)
		}
	}
	x.finished = true
	x.committed = true
	x.end = end
	x.resetAccessSets()
	x.e.clk.CompleteEnd(end)
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.commitSlack() // critical section over: re-publish the slack
	x.t.WakeAll()   // release starters stalled on the commit window
	x.t.Tick(2)
	return nil
}

// commitSlack re-publishes the out-of-critical-section interaction slack
// once a writer commit or rollback has finished its installs, drains and
// reverts (see Engine.Begin for the promise it encodes).
func (x *txn) commitSlack() {
	if x.e.batch {
		x.t.SetSlack(x.e.cfg.CommitOverhead + x.e.cfg.Cache.L1Latency)
	}
}

// changedMaskWords returns the subset of the write mask whose words
// actually differ from the transaction's snapshot. Words written back
// unmodified are silent stores (Lepak/Waliullah): executing or eliding
// them leaves the transaction's observable effect identical.
func changedMaskWords(mask uint8, words, snap *[mem.WordsPerLine]uint64) uint8 {
	var m uint8
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask&(1<<i) != 0 && words[i] != snap[i] {
			m |= 1 << i
		}
	}
	return m
}

// trueConflict implements the word-granularity §4.2 optimisation: a
// line-level conflict is real only when some word this transaction
// actually modified (mask, already silent-store-filtered) was also
// modified by the concurrent committer; otherwise the two transactions
// touched disjoint words of the line (false sharing) and both can keep
// their effects.
func (x *txn) trueConflict(line mem.Line, mask uint8, snap *[mem.WordsPerLine]uint64) bool {
	newest := x.e.mem.NewestLine(line)
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if newest[i] != snap[i] {
			return true // both modified word i: a true conflict
		}
	}
	return false
}

// ssiWriterCheck records rw antidependencies from concurrent visible
// readers of the lines this transaction is committing (§5.2). An active
// reader that now has both flags is doomed; a committed concurrent reader
// that already had an incoming edge is a pivot this transaction cannot
// serialize around, so this transaction aborts.
func (x *txn) ssiWriterCheck(end clock.Timestamp) error {
	// Flags are applied to every concurrent reader of every written
	// line before the dangerous-structure verdict, so the outcome does
	// not depend on record order. Stale records — recycled objects,
	// aborted readers, committed readers no transaction overlaps — are
	// skipped by the same conditions that would remove them, so lazy
	// sweeping never changes a verdict.
	abort := false
	var abortLine mem.Line
	for _, line := range x.writes.Lines() {
		rs, ok := x.e.readers.Get(line)
		if !ok {
			continue
		}
		for _, ent := range rs.Entries() {
			r := ent.Tx
			if r == x || r.epoch != ent.Epoch {
				continue
			}
			if r.committed {
				if r.end <= x.start {
					continue // serialized before us: no edge
				}
				// rw edge r -> x with r committed: if r also
				// had an incoming edge it is a committed pivot
				// this transaction cannot serialize around.
				x.inFlag = true
				if r.inFlag && !abort {
					abort, abortLine = true, line
				}
				continue
			}
			if r.finished {
				continue // aborted reader
			}
			// rw edge r -> x between active transactions.
			r.outFlag = true
			if r.inFlag {
				r.doomed = true
			}
			x.inFlag = true
		}
	}
	if abort || (x.inFlag && x.outFlag) {
		return x.commitAbortReserved(end, abortLine, tm.AbortSkew)
	}
	return nil
}

// commitAbortReserved rolls back optimistic installs, retires the end
// reservation, and returns the abort error. The transaction iterates over
// its write set and removes all written lines from the MVM (§4.2).
func (x *txn) commitAbortReserved(end clock.Timestamp, line mem.Line, kind tm.AbortKind) error {
	for i := len(x.installBuf) - 1; i >= 0; i-- {
		x.e.presence.Note(x.installBuf[i].line, x.selfBit)
		x.t.Tick(x.h.Access(x.installBuf[i].line))
		x.t.Interact() // revert: audited horizon-relevant effect
		x.e.mem.Revert(x.installBuf[i].line, end, x.installBuf[i].undo)
	}
	x.e.clk.CompleteEnd(end)
	x.finishAbort(kind)
	x.commitSlack() // critical section over: re-publish the slack
	x.t.WakeAll()
	return &tm.AbortError{Kind: kind, Line: line}
}

// commitAbort aborts before an end timestamp was reserved.
func (x *txn) commitAbort(line mem.Line, kind tm.AbortKind) error {
	x.e.active.Deregister(x.start)
	x.finishAbort(kind)
	return &tm.AbortError{Kind: kind, Line: line}
}

func (x *txn) finishAbort(kind tm.AbortKind) {
	x.finished = true
	x.resetAccessSets()
	x.e.stats.Count(kind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
}
