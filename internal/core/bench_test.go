package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// The per-transaction hot paths — Read, Write and Commit — run once per
// simulated access and once per transaction across every figure sweep, so
// they must be allocation-free in steady state: access sets are aset
// tables that Reset in O(touched), transaction objects recycle per
// thread, and the commit install buffer is reused. The benchmarks pin two
// regimes per path: "hit" is the repeat-access fast path on plain SI-TM;
// "conflict" runs SSI-TM with its visible-reader tracking engaged — the
// reader-table CompactAdd sweep on reads, and the commit-time writer
// check scanning an overlapping reader's records on writes and commits.
// TestTxnHotPathsAllocFree asserts 0 allocs/op for all of them; the CI
// bench smoke and sitm-bench -json report them.

// benchTxnOps is the transaction length of the access-level benchmarks:
// long enough to amortise Begin/Commit, short enough that a per-txn
// regression is visible in ns/op.
const benchTxnOps = 256

func benchLineAddr(i int) mem.Addr { return mem.Addr((1 + i) * mem.LineBytes) }

// runSingle drives body as the only thread of a deterministic simulation.
func runSingle(body func(th *sched.Thread)) {
	s := sched.New(1, 1)
	s.Run(body)
}

// runWithBystander drives body on thread 0 while thread 1 holds one
// transaction open across the whole timed region: it begins, touches its
// lines via setup, then sleeps past every cycle thread 0 can reach, so
// the conflict-detection machinery sees a concurrent transaction on every
// operation. The bystander aborts once thread 0 finishes.
func runWithBystander(e *Engine, setup func(tm.Txn), body func(th *sched.Thread)) {
	s := sched.New(2, 1)
	s.Run(func(th *sched.Thread) {
		if th.ID() == 1 {
			by := e.Begin(th)
			setup(by)
			th.Tick(1 << 62)
			by.Abort()
			return
		}
		// Start past the bystander's setup so it begins first.
		th.Tick(1 << 12)
		body(th)
	})
}

func benchEngine(serializable bool) *Engine {
	cfg := DefaultConfig()
	cfg.Serializable = serializable
	return New(cfg)
}

// benchReads runs read-only transactions of benchTxnOps reads cycling
// over spread lines.
func benchReads(b *testing.B, e *Engine, th *sched.Thread, spread int) {
	// One warm-up transaction brings the sets, the version chains and
	// the recycled object to steady state.
	tx := e.Begin(th)
	for i := 0; i < spread; i++ {
		_ = tx.Read(benchLineAddr(i))
	}
	_ = tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	tx = e.Begin(th)
	n := 0
	for i := 0; i < b.N; i++ {
		_ = tx.Read(benchLineAddr(i % spread))
		if n++; n == benchTxnOps {
			_ = tx.Commit()
			tx = e.Begin(th)
			n = 0
		}
	}
	b.StopTimer()
	_ = tx.Commit()
}

// benchWrites runs write-only transactions of benchTxnOps writes cycling
// over spread lines.
func benchWrites(b *testing.B, e *Engine, th *sched.Thread, spread int) {
	tx := e.Begin(th)
	for i := 0; i < spread; i++ {
		tx.Write(benchLineAddr(i), uint64(i))
	}
	_ = tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	tx = e.Begin(th)
	n := 0
	for i := 0; i < b.N; i++ {
		tx.Write(benchLineAddr(i%spread), uint64(i))
		if n++; n == benchTxnOps {
			_ = tx.Commit()
			tx = e.Begin(th)
			n = 0
		}
	}
	b.StopTimer()
	_ = tx.Commit()
}

// benchCommits runs one whole writer transaction per op: begin, first
// writes to `lines` lines, commit (reserve, install, publish, recycle).
func benchCommits(b *testing.B, e *Engine, th *sched.Thread, lines int) {
	commitOne := func(i int) {
		tx := e.Begin(th)
		for l := 0; l < lines; l++ {
			tx.Write(benchLineAddr(l), uint64(i))
		}
		if err := tx.Commit(); err != nil {
			b.Fatalf("commit: %v", err)
		}
	}
	commitOne(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		commitOne(i)
	}
	b.StopTimer()
}

// readBystander reads the benchmark's lines and stays active, so SSI-TM's
// commit-time writer check scans a live reader record per written line.
func readBystander(spread int) func(tm.Txn) {
	return func(by tm.Txn) {
		for i := 0; i < spread; i++ {
			_ = by.Read(benchLineAddr(i))
		}
	}
}

func BenchmarkTxnRead(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := benchEngine(false)
		runSingle(func(th *sched.Thread) { benchReads(b, e, th, 8) })
	})
	// SSI-TM visible-reader tracking: every first read registers an
	// epoch-stamped record, compacting the previous incarnation's stale
	// records out of the line's table.
	b.Run("conflict", func(b *testing.B) {
		e := benchEngine(true)
		runSingle(func(th *sched.Thread) { benchReads(b, e, th, 64) })
	})
}

func BenchmarkTxnWrite(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := benchEngine(false)
		runSingle(func(th *sched.Thread) { benchWrites(b, e, th, 8) })
	})
	// SSI-TM with an overlapping reader of the written lines: each
	// commit's writer check walks the reader's records (write-only
	// transactions recycle even under overlap — they leave no records).
	b.Run("conflict", func(b *testing.B) {
		e := benchEngine(true)
		runWithBystander(e, readBystander(8), func(th *sched.Thread) {
			benchWrites(b, e, th, 8)
		})
	})
}

func BenchmarkCommit(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := benchEngine(false)
		runSingle(func(th *sched.Thread) { benchCommits(b, e, th, 4) })
	})
	b.Run("conflict", func(b *testing.B) {
		e := benchEngine(true)
		runWithBystander(e, readBystander(4), func(th *sched.Thread) {
			benchCommits(b, e, th, 4)
		})
	})
}

// TestTxnHotPathsAllocFree asserts the transaction hot paths never
// allocate in steady state, in every regime — a steady-state allocation
// here would put GC pressure proportional to simulated transaction
// traffic on every experiment.
func TestTxnHotPathsAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks")
	}
	leaves := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"TxnRead/hit", func(b *testing.B) {
			e := benchEngine(false)
			runSingle(func(th *sched.Thread) { benchReads(b, e, th, 8) })
		}},
		{"TxnRead/conflict", func(b *testing.B) {
			e := benchEngine(true)
			runSingle(func(th *sched.Thread) { benchReads(b, e, th, 64) })
		}},
		{"TxnWrite/hit", func(b *testing.B) {
			e := benchEngine(false)
			runSingle(func(th *sched.Thread) { benchWrites(b, e, th, 8) })
		}},
		{"TxnWrite/conflict", func(b *testing.B) {
			e := benchEngine(true)
			runWithBystander(e, readBystander(8), func(th *sched.Thread) { benchWrites(b, e, th, 8) })
		}},
		{"Commit/hit", func(b *testing.B) {
			e := benchEngine(false)
			runSingle(func(th *sched.Thread) { benchCommits(b, e, th, 4) })
		}},
		{"Commit/conflict", func(b *testing.B) {
			e := benchEngine(true)
			runWithBystander(e, readBystander(4), func(th *sched.Thread) { benchCommits(b, e, th, 4) })
		}},
	}
	for _, leaf := range leaves {
		if r := testing.Benchmark(leaf.run); r.AllocsPerOp() != 0 {
			t.Errorf("%s: %d allocs/op, want 0", leaf.name, r.AllocsPerOp())
		}
	}
}
