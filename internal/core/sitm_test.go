package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/mvm"
	"repro/internal/sched"
	"repro/internal/tm"
)

// single runs body on a one-thread machine. Multiple transactions may be
// open at once on the single logical thread, which lets tests script exact
// interleavings.
func single(t *testing.T, e tm.Engine, body func(th *sched.Thread)) {
	t.Helper()
	s := sched.New(1, 1)
	s.Run(body)
}

func addr(i int) mem.Addr { return mem.Addr(i * mem.LineBytes) } // one line apart

func TestReadYourOwnWrites(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 42)
		if v := tx.Read(addr(1)); v != 42 {
			t.Errorf("read own write = %d, want 42", v)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if v := e.NonTxRead(addr(1)); v != 42 {
		t.Fatalf("committed value = %d, want 42", v)
	}
}

func TestSnapshotIgnoresLaterCommits(t *testing.T) {
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 10)
	single(t, e, func(th *sched.Thread) {
		reader := e.Begin(th)
		if v := reader.Read(addr(1)); v != 10 {
			t.Errorf("initial read = %d, want 10", v)
		}
		writer := e.Begin(th)
		writer.Write(addr(1), 99)
		if err := writer.Commit(); err != nil {
			t.Fatalf("writer commit: %v", err)
		}
		// The reader's snapshot must still be 10 (§4: reads always
		// return consistent data from the transaction's snapshot).
		if v := reader.Read(addr(1)); v != 10 {
			t.Errorf("snapshot read after concurrent commit = %d, want 10", v)
		}
		if err := reader.Commit(); err != nil {
			t.Errorf("read-only reader must commit: %v", err)
		}
	})
}

func TestWriteWriteConflictAborts(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		t1.Write(addr(1), 1)
		t2.Write(addr(1), 2)
		if err := t1.Commit(); err != nil {
			t.Fatalf("first committer must win: %v", err)
		}
		err := t2.Commit()
		ab, ok := err.(*tm.AbortError)
		if !ok || ab.Kind != tm.AbortWriteWrite {
			t.Fatalf("second committer err = %v, want write-write abort", err)
		}
	})
	if e.Stats().Aborts[tm.AbortWriteWrite] != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
	if v := e.NonTxRead(addr(1)); v != 1 {
		t.Fatalf("value = %d, want 1 (loser rolled back)", v)
	}
}

func TestReadWriteConflictDoesNotAbort(t *testing.T) {
	// The defining property of SI-TM: a transaction that read data
	// later overwritten by a concurrent committer still commits, as
	// long as its own write set is conflict-free.
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 5)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		_ = t1.Read(addr(1))
		t1.Write(addr(2), 7) // disjoint write set

		t2 := e.Begin(th)
		t2.Write(addr(1), 6)
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2 commit: %v", err)
		}
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1 must commit despite the read-write conflict: %v", err)
		}
	})
	if e.Stats().TotalAborts() != 0 {
		t.Fatalf("aborts = %d, want 0", e.Stats().TotalAborts())
	}
}

// TestFigure2Schedule replays the paper's Figure 2 under SI-TM: TX0
// commits; TX1 (pure reader of A) commits; TX2 (reads B and A, writes C)
// commits; only TX3 aborts, because it writes A which TX0 also wrote.
func TestFigure2Schedule(t *testing.T) {
	e := New(DefaultConfig())
	A, B, C := addr(1), addr(2), addr(3)
	single(t, e, func(th *sched.Thread) {
		tx0 := e.Begin(th)
		tx1 := e.Begin(th)
		tx2 := e.Begin(th)
		tx3 := e.Begin(th)

		_ = tx0.Read(A)
		_ = tx3.Read(A)
		tx0.Write(A, 1)
		_ = tx2.Read(B)
		tx2.Write(C, 1)
		tx0.Write(B, 1)
		if err := tx0.Commit(); err != nil {
			t.Fatalf("TX0: %v", err)
		}
		_ = tx1.Read(A)
		tx3.Write(A, 2)
		if err := tx1.Commit(); err != nil {
			t.Errorf("TX1 must commit under SI: %v", err)
		}
		_ = tx2.Read(A)
		if err := tx2.Commit(); err != nil {
			t.Errorf("TX2 must commit under SI: %v", err)
		}
		err := tx3.Commit()
		ab, ok := err.(*tm.AbortError)
		if !ok || ab.Kind != tm.AbortWriteWrite {
			t.Errorf("TX3 err = %v, want write-write abort", err)
		}
	})
}

func TestReadOnlyCommitsAreFree(t *testing.T) {
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 1)
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		_ = tx.Read(addr(1))
		before := th.Cycles()
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if got := th.Cycles() - before; got != 0 {
			t.Errorf("read-only commit cost %d cycles, want 0 (§4.2)", got)
		}
	})
	if e.Stats().ReadOnly != 1 {
		t.Fatalf("read-only commits = %d, want 1", e.Stats().ReadOnly)
	}
	if e.Clock().InFlight() != 0 {
		t.Fatal("read-only commit must not reserve an end timestamp")
	}
}

func TestWriteSkewIsPermittedUnderSI(t *testing.T) {
	// Listing 1's anomaly: both accounts start at 60, invariant
	// checking+saving > 50 holds; two concurrent withdrawals of 100
	// each read both accounts and write disjoint ones — SI commits
	// both and the invariant breaks. (The write-skew tool and SSI-TM
	// exist to catch exactly this.)
	e := New(DefaultConfig())
	checking, saving := addr(1), addr(2)
	e.NonTxWrite(checking, 60)
	e.NonTxWrite(saving, 60)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		if t1.Read(checking)+t1.Read(saving) > 100 {
			t1.Write(checking, t1.Read(checking)-100)
		}
		if t2.Read(checking)+t2.Read(saving) > 100 {
			t2.Write(saving, t2.Read(saving)-100)
		}
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2: %v (SI permits write skew)", err)
		}
	})
	sum := int64(e.NonTxRead(checking)) + int64(e.NonTxRead(saving))
	if sum != -80 {
		t.Fatalf("sum = %d, want -80 (both withdrawals applied)", sum)
	}
}

func TestSSIPreventsWriteSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Serializable = true
	e := New(cfg)
	checking, saving := addr(1), addr(2)
	e.NonTxWrite(checking, 60)
	e.NonTxWrite(saving, 60)
	aborted := 0
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		_ = t1.Read(checking)
		_ = t1.Read(saving)
		t1.Write(checking, 0)
		_ = t2.Read(checking)
		_ = t2.Read(saving)
		t2.Write(saving, 0)
		if err := t1.Commit(); err != nil {
			aborted++
		}
		if err := t2.Commit(); err != nil {
			aborted++
		}
	})
	if aborted == 0 {
		t.Fatal("SSI-TM must abort at least one transaction of a write skew")
	}
}

func TestPromotedReadForcesAbort(t *testing.T) {
	e := New(DefaultConfig())
	e.Promote("hot")
	e.NonTxWrite(addr(1), 1)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		_ = t1.Site("hot").Read(addr(1)) // promoted
		t1.Site("").Write(addr(2), 5)

		t2 := e.Begin(th)
		t2.Write(addr(1), 2)
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2: %v", err)
		}
		err := t1.Commit()
		ab, ok := err.(*tm.AbortError)
		if !ok || ab.Kind != tm.AbortSkew {
			t.Fatalf("t1 err = %v, want skew abort via promoted read", err)
		}
	})
	// The promoted read must not have created a data version.
	if v := e.NonTxRead(addr(1)); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestWordGranularityDismissesFalseSharing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WordGranularity = true
	e := New(cfg)
	a0 := addr(1) // word 0 of the line
	a1 := a0 + 8  // word 1 of the same line
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		t1.Write(a0, 1)
		t2.Write(a1, 2)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2 must commit: different words, false sharing only: %v", err)
		}
	})
	if e.NonTxRead(a0) != 1 || e.NonTxRead(a1) != 2 {
		t.Fatalf("merged line lost a write: %d %d", e.NonTxRead(a0), e.NonTxRead(a1))
	}
}

func TestWordGranularityDismissesSilentStores(t *testing.T) {
	// A silent store writes the value the transaction read from its
	// snapshot: it has no effect and must neither conflict nor clobber
	// a concurrent writer's update.
	cfg := DefaultConfig()
	cfg.WordGranularity = true
	e := New(cfg)
	e.NonTxWrite(addr(1), 7)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		t1.Write(addr(1), 9) // real change
		t2.Write(addr(1), 7) // writes back its snapshot value: silent
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2 must commit (silent store): %v", err)
		}
	})
	if v := e.NonTxRead(addr(1)); v != 9 {
		t.Fatalf("value = %d, want 9 (silent store must not clobber)", v)
	}
}

func TestWordGranularitySameValueRMWStillConflicts(t *testing.T) {
	// Two increments that happen to write the same numeric value both
	// modified the word relative to their snapshots: that is a true
	// conflict, not a silent store — dismissing it would lose an
	// update.
	cfg := DefaultConfig()
	cfg.WordGranularity = true
	e := New(cfg)
	e.NonTxWrite(addr(1), 4)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		t1.Write(addr(1), t1.Read(addr(1))+1) // 5
		t2.Write(addr(1), t2.Read(addr(1))+1) // also 5
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err == nil {
			t.Fatal("same-value RMW pair must still conflict")
		}
	})
}

func TestWordGranularityKeepsTrueConflicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WordGranularity = true
	e := New(cfg)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		t1.Write(addr(1), 1)
		t2.Write(addr(1), 2)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err == nil {
			t.Fatal("same-word different-value conflict must abort")
		}
	})
}

func TestCapacityAbortOnFifthVersion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MVM.Coalesce = false
	e := New(cfg)
	single(t, e, func(th *sched.Thread) {
		var pins []tm.Txn
		for i := 0; i < 4; i++ {
			w := e.Begin(th)
			w.Write(addr(1), uint64(i))
			if err := w.Commit(); err != nil {
				t.Fatalf("writer %d: %v", i, err)
			}
			pin := e.Begin(th)
			_ = pin.Read(addr(1)) // pin the version
			pins = append(pins, pin)
		}
		w := e.Begin(th)
		w.Write(addr(1), 99)
		err := w.Commit()
		ab, ok := err.(*tm.AbortError)
		if !ok || ab.Kind != tm.AbortCapacity {
			t.Fatalf("fifth version err = %v, want capacity abort", err)
		}
		for _, p := range pins {
			if err := p.Commit(); err != nil {
				t.Fatalf("pin commit: %v", err)
			}
		}
	})
}

func TestDropOldestPolicyAbortsStaleReader(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MVM.Policy = mvm.DropOldest
	cfg.MVM.MaxVersions = 2
	cfg.MVM.Coalesce = false
	e := New(cfg)
	e.NonTxWrite(addr(1), 1)
	got := make(chan error, 1)
	single(t, e, func(th *sched.Thread) {
		old := e.Begin(th)
		var pins []tm.Txn
		for i := 0; i < 3; i++ {
			w := e.Begin(th)
			w.Write(addr(1), uint64(i+10))
			if err := w.Commit(); err != nil {
				t.Fatalf("writer %d: %v", i, err)
			}
			pin := e.Begin(th)
			_ = pin.Read(addr(2))
			pins = append(pins, pin)
		}
		err := tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
			return nil
		})
		_ = err
		func() {
			defer func() { recover() }() // the read aborts via signal
			_ = old.Read(addr(1))
			got <- nil
		}()
		select {
		case <-got:
			t.Error("stale read should have aborted")
		default:
		}
		for _, p := range pins {
			_ = p.Commit()
		}
	})
	if e.Stats().Aborts[tm.AbortCapacity] != 1 {
		t.Fatalf("capacity aborts = %d, want 1", e.Stats().Aborts[tm.AbortCapacity])
	}
}

func TestAtomicRetriesUntilCommit(t *testing.T) {
	e := New(DefaultConfig())
	s := sched.New(2, 3)
	counts := [2]int{}
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 50; i++ {
			err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				v := tx.Read(addr(1))
				tx.Write(addr(1), v+1)
				return nil
			})
			if err != nil {
				t.Errorf("Atomic: %v", err)
			}
			counts[th.ID()]++
		}
	})
	if got := e.NonTxRead(addr(1)); got != 100 {
		t.Fatalf("counter = %d, want 100 (every increment applied exactly once)", got)
	}
	if e.Stats().Commits != 100 {
		t.Fatalf("commits = %d, want 100", e.Stats().Commits)
	}
}

func TestAtomicPropagatesWorkloadError(t *testing.T) {
	e := New(DefaultConfig())
	wantErr := tm.ErrRetry
	_ = wantErr
	single(t, e, func(th *sched.Thread) {
		calls := 0
		err := tm.Atomic(e, th, tm.BackoffConfig{}, func(tx tm.Txn) error {
			calls++
			if calls < 3 {
				return tm.ErrRetry
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Errorf("err=%v calls=%d, want nil/3", err, calls)
		}
	})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		e := New(DefaultConfig())
		s := sched.New(4, 99)
		s.Run(func(th *sched.Thread) {
			for i := 0; i < 30; i++ {
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					a := addr(1 + th.Rand().Intn(8))
					v := tx.Read(a)
					tx.Write(a, v+1)
					return nil
				})
			}
		})
		return e.Stats().Commits, e.Stats().TotalAborts(), s.Makespan()
	}
	c1, a1, m1 := run()
	c2, a2, m2 := run()
	if c1 != c2 || a1 != a2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, a1, m1, c2, a2, m2)
	}
}

func TestUnboundedTransactionSize(t *testing.T) {
	// §4.3: transactions exceed any cache capacity without aborting.
	e := New(DefaultConfig())
	const n = 4096 // 4096 lines = 256 KiB write set, past L1/L2
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		for i := 0; i < n; i++ {
			tx.Write(addr(i+1), uint64(i))
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("large transaction aborted: %v", err)
		}
	})
	if e.NonTxRead(addr(n)) != n-1 {
		t.Fatal("large write set not fully committed")
	}
}
