package core

// The pre-aset access-set implementation, kept verbatim as the
// differential oracle for the signature-backed fast path (see
// Config.ReferenceSets). slowTxn tracks its write set, promoted reads and
// SSI read set in Go maps, and the engine tracks visible readers as
// map[mem.Line]map[*slowTxn]struct{}, exactly as the engine did before
// internal/aset existed. Results are bit-identical to the fast path; only
// simulator wall time changes. Do not "improve" this file: its value is
// being the unchanged original.

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// slowState is the engine-side state of the reference implementation:
// per-thread recycled transaction objects and, under Serializable, the
// visible-reader table.
type slowState struct {
	lastTxn map[int]*slowTxn
	readers map[mem.Line]map[*slowTxn]struct{}
	// writers maps each line to its most recent committed writer, for
	// the read-side committed-pivot rule (see trackRead); the fast
	// path's epoch-stamped Engine.lastWriter table mirrors it.
	writers map[mem.Line]*slowTxn
}

func newSlowState(serializable bool) *slowState {
	s := &slowState{lastTxn: make(map[int]*slowTxn)}
	if serializable {
		s.readers = make(map[mem.Line]map[*slowTxn]struct{})
		s.writers = make(map[mem.Line]*slowTxn)
	}
	return s
}

// writeEntry buffers a transaction's stores to one cache line.
type writeEntry struct {
	mask  uint8
	words [mem.WordsPerLine]uint64
}

// slowTxn is one SI-TM transaction attempt under the reference map-based
// access tracking.
type slowTxn struct {
	e     *Engine
	t     *sched.Thread
	h     *cache.Hierarchy
	id    uint64
	start clock.Timestamp
	site  string
	// selfBit is this thread's presence bit (cache.CoreBit of its ID),
	// noted on every access so committers know this core may hold the
	// line (and, for versioned reads, its translation).
	selfBit uint64

	writes     map[mem.Line]*writeEntry
	writeOrder []mem.Line
	// promotedLines are reads promoted into conflict detection (§5.1);
	// they are validated like writes but create no versions.
	// promotedOrder preserves first-promotion order so commit-time
	// cycle charging is deterministic.
	promotedLines map[mem.Line]struct{}
	promotedOrder []mem.Line

	// SSI-TM state (§5.2). The flags record rw-antidependency edges:
	// outFlag means this transaction read a line a concurrent
	// transaction (later) wrote (edge this -> other); inFlag means a
	// concurrent transaction read a line this transaction wrote (edge
	// other -> this). A transaction with both — a dangerous structure —
	// aborts. Read entries persist after commit (like SIREAD locks)
	// until no overlapping transaction remains, so committed pivots are
	// still detected.
	reads   map[mem.Line]struct{}
	inFlag  bool
	outFlag bool
	doomed  bool

	committed bool
	end       clock.Timestamp // end timestamp once committed

	finished bool
}

var _ tm.Txn = (*slowTxn)(nil)

// beginSlow is the reference-path tm.Engine.Begin. It stalls while any
// commit is in flight — the software rendering of the paper's starter
// stall (§4.2) — then takes a unique start timestamp, which creates the
// logical snapshot.
func (e *Engine) beginSlow(t *sched.Thread) tm.Txn {
	for e.clk.MustStall() {
		e.clk.Stalls++
		e.stats.Stalls++
		t.Stall()
	}
	e.txnSeq++
	if e.cfg.Serializable && e.txnSeq%64 == 0 {
		e.pruneSSI()
	}
	var tx *slowTxn
	if old := e.slow.lastTxn[t.ID()]; old != nil && old.finished && !e.cfg.Serializable {
		// clear keeps the maps' grown capacity, so steady-state
		// transactions insert without rehashing.
		clear(old.writes)
		clear(old.promotedLines)
		*old = slowTxn{
			e:             e,
			t:             t,
			h:             old.h,
			id:            e.txnSeq,
			start:         e.clk.Begin(),
			selfBit:       old.selfBit,
			writes:        old.writes,
			writeOrder:    old.writeOrder[:0],
			promotedLines: old.promotedLines,
			promotedOrder: old.promotedOrder[:0],
		}
		tx = old
	} else {
		tx = &slowTxn{
			e:       e,
			t:       t,
			h:       e.hierarchy(t),
			id:      e.txnSeq,
			start:   e.clk.Begin(),
			selfBit: cache.CoreBit(t.ID()),
			writes:  make(map[mem.Line]*writeEntry),
		}
		e.slow.lastTxn[t.ID()] = tx
	}
	e.active.Register(tx.start)
	if e.cfg.Serializable {
		tx.reads = make(map[mem.Line]struct{})
	}
	if e.tracer != nil {
		e.tracer.TxnBegin(tx.id, t.ID())
	}
	t.Tick(2) // atomic increment of the global timestamp counter
	return tx
}

// Site implements tm.Txn.
func (x *slowTxn) Site(s string) tm.Txn {
	x.site = s
	return x
}

// Read implements tm.Txn: the most current version older than the start
// timestamp is returned (§4.2, TM READ), unless the transaction itself
// wrote the word.
func (x *slowTxn) Read(a mem.Addr) uint64 {
	// Most workloads never promote a site; the len guard keeps the
	// string-keyed map hash off the per-read hot path in that case.
	if len(x.e.promoted) != 0 && x.e.promoted[x.site] {
		return x.ReadPromoted(a)
	}
	return x.read(a)
}

func (x *slowTxn) read(a mem.Addr) uint64 {
	line := mem.LineOf(a)
	// Note before the Tick: the fills happen when AccessVersioned
	// evaluates, before the yield, so the presence records must be in
	// place for any commit that interleaves with the yield. A versioned
	// access may fill both the data line and its translation.
	x.e.presence.Note(line, x.selfBit)
	x.e.xpresence.Note(cache.XlateLine(line), x.selfBit)
	x.t.Tick(x.h.AccessVersioned(line))
	if x.e.tracer != nil {
		x.e.tracer.TxnRead(x.id, a, x.site)
	}
	if x.e.cfg.Serializable {
		x.trackRead(line)
	}
	if len(x.writes) != 0 {
		if w, ok := x.writes[line]; ok && w.mask&(1<<mem.WordOf(a)) != 0 {
			return w.words[mem.WordOf(a)]
		}
	}
	v, ok := x.e.mem.ReadWord(a, x.start)
	if !ok {
		// DropOldest policy discarded the version this snapshot
		// needs (§3.1): the transaction aborts on the read.
		x.abortInternal(tm.AbortCapacity, line)
	}
	return v
}

// ReadPromoted implements tm.Txn: the read participates in commit-time
// conflict detection like a write, but creates no data version (§5.1).
func (x *slowTxn) ReadPromoted(a mem.Addr) uint64 {
	if x.promotedLines == nil {
		x.promotedLines = make(map[mem.Line]struct{})
	}
	line := mem.LineOf(a)
	if _, ok := x.promotedLines[line]; !ok {
		x.promotedLines[line] = struct{}{}
		x.promotedOrder = append(x.promotedOrder, line)
	}
	return x.read(a)
}

// Write implements tm.Txn: the store is buffered in the write set and the
// line marked transactionally written (§4.2, TM WRITE); no coherency
// traffic is emitted under lazy conflict detection.
func (x *slowTxn) Write(a mem.Addr, v uint64) {
	line := mem.LineOf(a)
	x.e.presence.Note(line, x.selfBit)
	x.t.Tick(x.h.Access(line)) // write into the private cache
	if x.e.tracer != nil {
		x.e.tracer.TxnWrite(x.id, a, x.site)
	}
	w, ok := x.writes[line]
	if !ok {
		w = &writeEntry{}
		x.writes[line] = w
		x.writeOrder = append(x.writeOrder, line)
	}
	w.mask |= 1 << mem.WordOf(a)
	w.words[mem.WordOf(a)] = v
}

// trackRead registers this transaction as a visible reader of line for
// SSI-TM's rw-antidependency detection. Reading a line that a concurrent
// transaction has already overwritten records an outgoing edge — and, if
// that overwrite came from a committed transaction that itself has an
// outgoing edge, completes a dangerous structure around a committed
// pivot, which only this reader can break by aborting (§5.2; the
// read-side dual of ssiWriterCheck's committed-pivot rule).
func (x *slowTxn) trackRead(line mem.Line) {
	x.checkDoom(line)
	if _, ok := x.reads[line]; !ok {
		x.reads[line] = struct{}{}
		rs := x.e.slow.readers[line]
		if rs == nil {
			rs = make(map[*slowTxn]struct{})
			x.e.slow.readers[line] = rs
		}
		rs[x] = struct{}{}
	}
	if x.e.mem.NewestTS(line) > x.start {
		x.outFlag = true
		if x.inFlag {
			x.abortInternal(tm.AbortSkew, line)
		}
		if w := x.e.slow.writers[line]; w != nil && w != x && w.committed && w.end > x.start {
			w.inFlag = true
			if w.outFlag {
				x.abortInternal(tm.AbortSkew, line)
			}
		}
	}
}

// checkDoom aborts a transaction that a committing writer marked dangerous.
func (x *slowTxn) checkDoom(line mem.Line) {
	if x.doomed {
		x.abortInternal(tm.AbortSkew, line)
	}
}

// release drops all engine-side state of the transaction. Aborted
// transactions leave the readers table immediately; committed SSI-TM
// transactions keep their read entries (like SIREAD locks) until pruneSSI
// finds no overlapping transaction.
func (x *slowTxn) release() {
	x.finished = true
	x.e.active.Deregister(x.start)
	if x.e.cfg.Serializable && !x.committed {
		x.dropReads()
	}
}

func (x *slowTxn) dropReads() {
	for line := range x.reads {
		delete(x.e.slow.readers[line], x)
		if len(x.e.slow.readers[line]) == 0 {
			delete(x.e.slow.readers, line)
		}
	}
}

// pruneSSI removes committed readers and writer records that no active
// transaction overlaps: the records it drops are exactly those every
// remaining check would skip, so pruning is invisible to the simulation.
func (e *Engine) pruneSSI() {
	oldest, any := e.active.OldestActive()
	for line, rs := range e.slow.readers {
		for r := range rs {
			if r.committed && (!any || r.end <= oldest) {
				delete(rs, r)
			}
		}
		if len(rs) == 0 {
			delete(e.slow.readers, line)
		}
	}
	for line, w := range e.slow.writers {
		if !any || w.end <= oldest {
			delete(e.slow.writers, line)
		}
	}
}

// abortInternal counts and signals an engine-initiated abort from inside
// Read/Write; it unwinds to tm.Atomic.
func (x *slowTxn) abortInternal(kind tm.AbortKind, line mem.Line) {
	x.release()
	x.e.stats.Count(kind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	tm.SignalAbort(kind, line)
}

// Abort implements tm.Txn: the write set is discarded; nothing was
// published, so rollback is trivial (§4.3).
func (x *slowTxn) Abort() {
	if x.finished {
		return
	}
	x.release()
	x.e.stats.Count(tm.AbortExplicit)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
	x.t.Tick(2)
}

// Commit implements tm.Txn (§4.2, TM COMMIT). Read-only transactions
// commit with zero overhead. Writers reserve an end timestamp, then write
// back each line: a line whose newest version is younger than the start
// timestamp is a write-write conflict and the transaction rolls back its
// optimistically created versions and aborts; otherwise a new version
// tagged with the end timestamp is installed. Validation is purely local —
// a timestamp comparison against memory state — with no broadcast.
func (x *slowTxn) Commit() error {
	if x.finished {
		panic("core: Commit on finished transaction")
	}
	// SSI-TM dangerous-structure checks accumulated during execution.
	if x.e.cfg.Serializable && (x.doomed || (x.inFlag && x.outFlag)) {
		return x.commitAbort(0, tm.AbortSkew)
	}
	if len(x.writes) == 0 && len(x.promotedLines) == 0 {
		// Read-only: no end timestamp, no checks (§4.2). Under
		// SSI-TM the read entries persist so later writers still see
		// the antidependencies this reader induced.
		x.committed = true
		x.end = x.e.clk.Now()
		x.release()
		x.e.stats.Commits++
		x.e.stats.ReadOnly++
		if x.e.tracer != nil {
			x.e.tracer.TxnCommit(x.id)
		}
		return nil
	}

	x.t.Tick(x.e.cfg.CommitOverhead)
	end := x.e.clk.ReserveEnd()

	// Deregister before installing so that version coalescing measures
	// only *other* transactions' snapshots (Figure 4: TX1's commit
	// coalesces across TX1's own start timestamp).
	x.e.active.Deregister(x.start)

	// Validate promoted reads: a newer version of a promoted line
	// means a concurrent writer committed — the write-skew repair turns
	// that into an abort (§5.1). This early pass catches committed
	// conflicts cheaply; because commits of different transactions
	// interleave in time, the promoted lines are validated again after
	// the installs below, which guarantees that of two transactions
	// whose writes invalidate each other's promoted reads, at least the
	// one that finishes validating last observes the other's versions.
	for _, line := range x.promotedOrder {
		if _, mine := x.writes[line]; mine {
			continue // validated atomically when the write installs
		}
		// Re-note: another commit may have drained this core's bit, and
		// the Access below re-fills the line.
		x.e.presence.Note(line, x.selfBit)
		x.t.Tick(x.h.Access(line))
		if x.e.mem.NewestTS(line) > x.start {
			return x.commitAbortReserved(end, nil, line, tm.AbortSkew)
		}
	}

	var installed []installRec
	for _, line := range x.writeOrder {
		w := x.writes[line]
		x.e.presence.Note(line, x.selfBit)
		x.t.Tick(x.h.Access(line)) // write the line back to the MVM
		base, ok := x.e.mem.ReadLine(line, x.start)
		if !ok {
			return x.commitAbortReserved(end, installed, line, tm.AbortCapacity)
		}
		mask := w.mask
		if x.e.cfg.WordGranularity {
			// §4.2 optimisation: drop silent stores (words written
			// back with their snapshot value) from the write mask;
			// they carry no effect and must not clobber concurrent
			// writers' words.
			mask = changedMask(w, &base)
		}
		if x.e.mem.NewestTS(line) > x.start {
			if !x.e.cfg.WordGranularity || x.trueConflict(line, mask, &base) {
				return x.commitAbortReserved(end, installed, line, tm.AbortWriteWrite)
			}
		}
		if x.e.cfg.WordGranularity {
			if mask == 0 {
				continue // fully silent write: nothing to install
			}
			// Merge atop the current newest contents so that
			// dismissed false-sharing conflicts keep the other
			// transaction's words.
			base = x.e.mem.NewestLine(line)
		}
		undo, err := x.e.mem.Install(line, end, base, mask, &w.words)
		if err != nil {
			return x.commitAbortReserved(end, installed, line, tm.AbortCapacity)
		}
		installed = append(installed, installRec{line: line, undo: undo})
	}

	// Revalidate promoted reads now that our versions are installed:
	// any concurrent commit that finished between the early pass and
	// here is visible as a newer version (see the comment above). Lines
	// this transaction itself wrote are excluded — their newest version
	// is our own install, and the write-write check already validated
	// them against the snapshot without an intervening yield.
	for _, line := range x.promotedOrder {
		if _, mine := x.writes[line]; mine {
			continue
		}
		if x.e.mem.NewestTS(line) > x.start {
			return x.commitAbortReserved(end, installed, line, tm.AbortSkew)
		}
	}

	// SSI-TM: writing lines that concurrent transactions have read
	// creates rw antidependencies reader->writer; set the flags and
	// abort any reader that becomes dangerous (§5.2).
	if x.e.cfg.Serializable {
		if err := x.ssiWriterCheck(end, installed); err != nil {
			return err
		}
		// Record this commit as the newest writer of its lines so later
		// readers of the overwritten versions can apply the read-side
		// committed-pivot rule (see trackRead).
		for _, line := range x.writeOrder {
			x.e.slow.writers[line] = x
		}
	}

	// Publish: invalidate the committed lines in other cores' private
	// caches so subsequent transactions fetch the new versions (§4.4).
	// The presence filters bound the broadcast: data lines go only to
	// cores that accessed them, translations only to cores that made a
	// versioned access under the same version-list line (both filtered
	// at their own granularity; skipped cores would see a no-op). The
	// shared MVM partition holds one copy of the version-list line, so
	// it is scanned once per line rather than once per core — but only
	// when another core exists, matching the per-other-core fused
	// invalidation this replaces (a solo committer never invalidated
	// the partition, and partition residency is observable latency).
	for _, line := range x.writeOrder {
		for others := x.e.presence.Drain(line, x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateData(line)
		}
		for others := x.e.xpresence.Drain(cache.XlateLine(line), x.selfBit); others != 0; {
			id := bits.TrailingZeros64(others)
			others &^= 1 << uint(id)
			x.e.hiers[id].InvalidateXlate(line)
		}
		for id := 64; id < len(x.e.hiers); id++ {
			if h := x.e.hiers[id]; h != nil && id != x.t.ID() {
				h.InvalidatePrivate(line)
			}
		}
		if x.e.nHier > 1 {
			x.e.shared.InvalidateVersions(line)
		}
	}
	x.finished = true
	x.committed = true
	x.end = end
	x.e.clk.CompleteEnd(end)
	x.e.stats.Commits++
	if x.e.tracer != nil {
		x.e.tracer.TxnCommit(x.id)
	}
	x.t.WakeAll() // release starters stalled on the commit window
	x.t.Tick(2)
	return nil
}

// changedMask returns the subset of the write mask whose words actually
// differ from the transaction's snapshot. Words written back unmodified
// are silent stores (Lepak/Waliullah): executing or eliding them leaves
// the transaction's observable effect identical.
func changedMask(w *writeEntry, snap *[mem.WordsPerLine]uint64) uint8 {
	var m uint8
	for i := 0; i < mem.WordsPerLine; i++ {
		if w.mask&(1<<i) != 0 && w.words[i] != snap[i] {
			m |= 1 << i
		}
	}
	return m
}

// trueConflict implements the word-granularity §4.2 optimisation: a
// line-level conflict is real only when some word this transaction
// actually modified (mask, already silent-store-filtered) was also
// modified by the concurrent committer; otherwise the two transactions
// touched disjoint words of the line (false sharing) and both can keep
// their effects.
func (x *slowTxn) trueConflict(line mem.Line, mask uint8, snap *[mem.WordsPerLine]uint64) bool {
	newest := x.e.mem.NewestLine(line)
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if newest[i] != snap[i] {
			return true // both modified word i: a true conflict
		}
	}
	return false
}

// ssiWriterCheck records rw antidependencies from concurrent visible
// readers of the lines this transaction is committing (§5.2). An active
// reader that now has both flags is doomed; a committed concurrent reader
// that already had an incoming edge is a pivot this transaction cannot
// serialize around, so this transaction aborts.
func (x *slowTxn) ssiWriterCheck(end clock.Timestamp, installed []installRec) error {
	// Flags are applied to every concurrent reader of every written
	// line before the dangerous-structure verdict, so the outcome does
	// not depend on map iteration order.
	abort := false
	var abortLine mem.Line
	for _, line := range x.writeOrder {
		for r := range x.e.slow.readers[line] {
			if r == x {
				continue
			}
			if r.committed {
				if r.end <= x.start {
					continue // serialized before us: no edge
				}
				// rw edge r -> x with r committed: if r also
				// had an incoming edge it is a committed pivot
				// this transaction cannot serialize around.
				x.inFlag = true
				if r.inFlag && !abort {
					abort, abortLine = true, line
				}
				continue
			}
			if r.finished {
				continue // aborted reader
			}
			// rw edge r -> x between active transactions.
			r.outFlag = true
			if r.inFlag {
				r.doomed = true
			}
			x.inFlag = true
		}
	}
	if abort || (x.inFlag && x.outFlag) {
		return x.commitAbortReserved(end, installed, abortLine, tm.AbortSkew)
	}
	return nil
}

// commitAbortReserved rolls back optimistic installs, retires the end
// reservation, and returns the abort error. The transaction iterates over
// its write set and removes all written lines from the MVM (§4.2).
func (x *slowTxn) commitAbortReserved(end clock.Timestamp, installed []installRec, line mem.Line, kind tm.AbortKind) error {
	for i := len(installed) - 1; i >= 0; i-- {
		x.e.presence.Note(installed[i].line, x.selfBit)
		x.t.Tick(x.h.Access(installed[i].line))
		x.e.mem.Revert(installed[i].line, end, installed[i].undo)
	}
	x.e.clk.CompleteEnd(end)
	x.finishAbort(kind)
	x.t.WakeAll()
	return &tm.AbortError{Kind: kind, Line: line}
}

// commitAbort aborts before an end timestamp was reserved.
func (x *slowTxn) commitAbort(line mem.Line, kind tm.AbortKind) error {
	x.e.active.Deregister(x.start)
	x.finishAbort(kind)
	return &tm.AbortError{Kind: kind, Line: line}
}

func (x *slowTxn) finishAbort(kind tm.AbortKind) {
	x.finished = true
	if x.e.cfg.Serializable {
		x.dropReads()
	}
	x.e.stats.Count(kind)
	if x.e.tracer != nil {
		x.e.tracer.TxnAbort(x.id)
	}
}
