package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// ssiEngine builds a serializable SI-TM engine.
func ssiEngine() *Engine {
	cfg := DefaultConfig()
	cfg.Serializable = true
	return New(cfg)
}

// TestSSICommittedPivotDetected exercises the committed-pivot rule: T1
// commits as a reader with an incoming edge; a later overlapping writer
// that would give T1 an outgoing edge must abort, because the cycle
// through the committed transaction can no longer be broken by aborting
// it.
func TestSSICommittedPivotDetected(t *testing.T) {
	e := ssiEngine()
	A, B := addr(1), addr(2)
	e.NonTxWrite(A, 1)
	e.NonTxWrite(B, 1)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th) // reads B, writes A
		t2 := e.Begin(th) // reads A (old), will write B after t1 commits
		_ = t2.Read(A)
		_ = t1.Read(B)
		t1.Write(A, 2)
		// t1 commits: t2 read A which t1 wrote -> edge t2->t1
		// (t2.out, t1.in).
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		// t2 now writes B which committed t1 read -> edge t1->t2
		// with t1 committed and t1.in set: t1 is a committed pivot.
		t2.Write(B, 3)
		err := t2.Commit()
		ab, ok := err.(*tm.AbortError)
		if !ok || ab.Kind != tm.AbortSkew {
			t.Fatalf("t2 err = %v, want skew abort (committed pivot)", err)
		}
	})
}

// TestSSIReadSideCommittedPivotDetected exercises the read-side dual of
// the committed-pivot rule — the shape of Fekete et al.'s read-only
// anomaly, which model checking the read-only litmus found slipping
// through the writer-side checks. T1 (withdraw) commits with an out-edge
// to T0 (deposit); the observer T2, concurrent with T1, then reads a
// line T1 overwrote. That read completes T2 -rw-> T1 -rw-> T0 around the
// committed pivot T1 after both writers committed, so only T2's abort
// can break the cycle.
func TestSSIReadSideCommittedPivotDetected(t *testing.T) {
	e := ssiEngine()
	X, Y := addr(1), addr(2)
	single(t, e, func(th *sched.Thread) {
		t0 := e.Begin(th) // deposit: writes Y
		t1 := e.Begin(th) // withdraw: reads X and Y, writes X
		_ = t1.Read(X)
		_ = t1.Read(Y)
		t0.Write(Y, 20)
		// t0 commits over active reader t1: edge t1->t0 (t1.out).
		if err := t0.Commit(); err != nil {
			t.Fatalf("t0: %v", err)
		}
		t2 := e.Begin(th) // observer, concurrent with t1
		t1.Write(X, 93)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1 must commit (structure incomplete): %v", err)
		}
		defer func() {
			if recover() == nil {
				t.Error("t2's read must abort (read-side committed pivot)")
			}
		}()
		_ = t2.Read(X)
	})
	if e.Stats().Aborts[tm.AbortSkew] != 1 {
		t.Fatalf("skew aborts = %d, want 1", e.Stats().Aborts[tm.AbortSkew])
	}
}

// TestSSIReadOnlyInducedEdgePersists checks that a committed read-only
// transaction still constrains later writers while overlap remains.
func TestSSIReadOnlyInducedEdgePersists(t *testing.T) {
	e := ssiEngine()
	A, B := addr(1), addr(2)
	e.NonTxWrite(A, 1)
	e.NonTxWrite(B, 1)
	single(t, e, func(th *sched.Thread) {
		// Overlapping trio: reader R reads A and B; W1 writes A (gives
		// R an out-edge R->W1... wait: R reads what W1 writes, so
		// R.out and W1.in). Then R commits. W2 writes B: edge R->W2
		// also — two out-edges from R, no in-edge: not dangerous; all
		// commit. The point: R's reads still register on W2 even
		// though R committed first.
		r := e.Begin(th)
		w1 := e.Begin(th)
		w2 := e.Begin(th)
		_ = r.Read(A)
		_ = r.Read(B)
		w1.Write(A, 2)
		if err := w1.Commit(); err != nil {
			t.Fatalf("w1: %v", err)
		}
		if err := r.Commit(); err != nil {
			t.Fatalf("read-only r must commit: %v", err)
		}
		w2.Write(B, 3)
		if err := w2.Commit(); err != nil {
			t.Fatalf("w2 must commit (no dangerous structure): %v", err)
		}
	})
}

// TestSSIDoomedReaderAbortsAtNextAccess checks the doom path: an active
// reader that acquires both flags is aborted at its next operation.
func TestSSIDoomedReaderAbortsAtNextAccess(t *testing.T) {
	e := ssiEngine()
	A, B, C := addr(1), addr(2), addr(3)
	e.NonTxWrite(A, 1)
	e.NonTxWrite(B, 1)
	e.NonTxWrite(C, 1)
	single(t, e, func(th *sched.Thread) {
		mid := e.Begin(th) // will acquire in and out edges
		_ = mid.Read(A)    // reads what w1 writes -> out edge later
		mid.Write(B, 5)    // r2 will read B... no: in-edge needs a
		// concurrent reader of something mid wrote.
		r2 := e.Begin(th)
		_ = r2.Read(B) // r2 reads B (old version) — mid writes B
		w1 := e.Begin(th)
		w1.Write(A, 2)
		if err := w1.Commit(); err != nil {
			t.Fatalf("w1: %v", err)
		}
		// mid now has an out edge (read A, w1 wrote it). When mid
		// commits its write to B with r2 an active reader of B, the
		// edge r2->mid sets mid.in: in+out = dangerous, mid aborts.
		err := mid.Commit()
		ab, ok := err.(*tm.AbortError)
		if !ok || ab.Kind != tm.AbortSkew {
			t.Fatalf("mid err = %v, want skew abort (dangerous structure)", err)
		}
		if err := r2.Commit(); err != nil {
			t.Fatalf("r2: %v", err)
		}
	})
}

// TestSSISerialExecutionNeverAborts: without overlap there are no rw
// antidependencies and SSI-TM behaves exactly like SI-TM.
func TestSSISerialExecutionNeverAborts(t *testing.T) {
	e := ssiEngine()
	single(t, e, func(th *sched.Thread) {
		for i := 0; i < 20; i++ {
			tx := e.Begin(th)
			v := tx.Read(addr(1))
			tx.Write(addr(1), v+1)
			if err := tx.Commit(); err != nil {
				t.Fatalf("serial txn %d: %v", i, err)
			}
		}
	})
	if e.Stats().TotalAborts() != 0 {
		t.Fatalf("aborts = %d, want 0", e.Stats().TotalAborts())
	}
	if e.NonTxRead(addr(1)) != 20 {
		t.Fatalf("counter = %d, want 20", e.NonTxRead(addr(1)))
	}
}

// TestSSIPrunesCommittedReaders checks that the readers table does not
// grow without bound: once no active transaction overlaps a committed
// reader, pruning removes it.
func TestSSIPrunesCommittedReaders(t *testing.T) {
	e := ssiEngine()
	single(t, e, func(th *sched.Thread) {
		for i := 0; i < 200; i++ {
			tx := e.Begin(th)
			_ = tx.Read(addr(1 + i%8))
			tx.Write(addr(9), uint64(i))
			if err := tx.Commit(); err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
	})
	if err := e.AuditAccessSets(); err != nil {
		t.Fatalf("readers table not empty after quiescence: %v", err)
	}
}

// TestSSIConcurrentStressSerializable runs a write-skew-prone mix under
// SSI-TM and verifies the classic SI anomaly cannot occur: the sum
// invariant over account pairs survives.
func TestSSIConcurrentStressSerializable(t *testing.T) {
	e := ssiEngine()
	const pairs = 4
	for i := 0; i < pairs*2; i++ {
		e.NonTxWrite(addr(i+1), 100)
	}
	s := sched.New(8, 21)
	s.Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 25; i++ {
			p := r.Intn(pairs)
			a, b := addr(2*p+1), addr(2*p+2)
			target := a
			if r.Intn(2) == 1 {
				target = b
			}
			// Withdraw maintaining invariant a+b >= 100: the
			// unserializable schedule would break it.
			_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				if tx.Read(a)+tx.Read(b) >= 100+20 {
					tx.Write(target, tx.Read(target)-20)
				}
				return nil
			})
		}
	})
	for p := 0; p < pairs; p++ {
		sum := e.NonTxRead(addr(2*p+1)) + e.NonTxRead(addr(2*p+2))
		if sum < 100 || sum > 200 {
			t.Fatalf("pair %d invariant broken: sum=%d", p, sum)
		}
	}
	if e.Stats().Aborts[tm.AbortSkew] == 0 {
		t.Log("no skew aborts triggered in this schedule (invariant still held)")
	}
}
