package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// Residual abort-path coverage: explicit aborts under SSI, idempotent
// finish handling, and the engine state left behind by each abort kind.

func TestExplicitAbortUnderSSIDropsReaders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Serializable = true
	e := New(cfg)
	e.NonTxWrite(addr(1), 1)
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		_ = tx.Read(addr(1))
		tx.Abort()
		// The aborted reader must not constrain a later writer.
		w := e.Begin(th)
		w.Write(addr(1), 2)
		if err := w.Commit(); err != nil {
			t.Fatalf("writer after aborted reader: %v", err)
		}
	})
	if err := e.AuditAccessSets(); err != nil {
		t.Fatalf("aborted reader left live state: %v", err)
	}
}

func TestDoubleAbortIsIdempotent(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 1)
		tx.Abort()
		tx.Abort() // second abort must be a no-op
	})
	if e.Stats().Aborts[tm.AbortExplicit] != 1 {
		t.Fatalf("explicit aborts = %d, want 1", e.Stats().Aborts[tm.AbortExplicit])
	}
	if e.Clock().InFlight() != 0 {
		t.Fatal("abort left the window dirty")
	}
}

func TestCommitAfterAbortPanics(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Abort()
		defer func() {
			if recover() == nil {
				t.Error("Commit after Abort must panic (misuse)")
			}
		}()
		_ = tx.Commit()
	})
}

func TestAbortRollsBackNothingVisible(t *testing.T) {
	// §4.3: "On abort, no time-consuming undo needs to be performed as
	// the previous version still exists."
	e := New(DefaultConfig())
	e.NonTxWrite(addr(1), 5)
	single(t, e, func(th *sched.Thread) {
		before := e.MVM().Stats().Installs
		tx := e.Begin(th)
		for i := 0; i < 16; i++ {
			tx.Write(addr(1+i), uint64(100+i))
		}
		tx.Abort()
		if got := e.MVM().Stats().Installs; got != before {
			t.Errorf("abort installed %d versions", got-before)
		}
	})
	if e.NonTxRead(addr(1)) != 5 {
		t.Fatal("aborted writes leaked")
	}
}

func TestStatsResetBetweenPhases(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 1)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if e.Stats().Commits != 1 {
		t.Fatal("commit not counted")
	}
	e.Stats().Reset()
	e.MVM().ResetStats()
	if e.Stats().Commits != 0 || e.MVM().Stats().Installs != 0 {
		t.Fatal("reset did not clear counters")
	}
}
