package core

import (
	"repro/internal/mvm"
	"repro/internal/tm"
)

// SI-TM and its serializable extension SSI-TM (§5.2) self-register so the
// harness and CLIs can construct them through the tm engine registry.
func init() {
	tm.Register("SI-TM", func(o tm.EngineOptions) tm.Engine {
		return New(configFor(o, false))
	})
	tm.Register("SSI-TM", func(o tm.EngineOptions) tm.Engine {
		return New(configFor(o, true))
	})
}

// configFor maps the registry's representation-independent options onto
// the SI-TM configuration.
func configFor(o tm.EngineOptions, serializable bool) Config {
	cfg := DefaultConfig()
	cfg.Serializable = serializable
	cfg.WordGranularity = o.WordGranularity
	if o.UnboundedVersions {
		cfg.MVM.Policy = mvm.Unbounded
	}
	if o.DropOldest {
		cfg.MVM.Policy = mvm.DropOldest
	}
	if o.NoCoalescing {
		cfg.MVM.Coalesce = false
	}
	if o.NoXlate {
		cfg.Cache.XlateEntries = 0
	}
	cfg.Cache.Reference = o.ReferenceCache
	cfg.Cache.Scratch = o.CacheScratch
	cfg.ReferenceSets = o.ReferenceSets
	cfg.ReferenceStore = o.ReferenceStore
	cfg.MVM.ReferenceStore = o.ReferenceStore
	return cfg
}
