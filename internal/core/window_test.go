package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// TestBeginStallsDuringCommit verifies the starter-stall rule (§4.2): a
// transaction beginning while another transaction's commit is in flight
// waits for the commit window to drain, and the stall is counted.
func TestBeginStallsDuringCommit(t *testing.T) {
	e := New(DefaultConfig())
	s := sched.New(2, 1)
	committed := false
	s.Run(func(th *sched.Thread) {
		if th.ID() == 0 {
			tx := e.Begin(th)
			// Large write set: the commit ticks per line, leaving
			// a window in simulated time for thread 1 to attempt
			// Begin mid-commit.
			for i := 0; i < 64; i++ {
				tx.Write(addr(i+1), uint64(i))
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			committed = true
			return
		}
		// Thread 1 repeatedly begins/commits small transactions until
		// thread 0's large commit finishes; at least one Begin must
		// land inside that commit.
		for !committed {
			tx := e.Begin(th)
			_ = tx.Read(addr(100))
			if err := tx.Commit(); err != nil {
				t.Errorf("small commit: %v", err)
			}
			th.Tick(20)
		}
	})
	if !committed {
		t.Fatal("large transaction never committed")
	}
	if e.Stats().Stalls == 0 {
		t.Fatal("no starter stalls recorded; the commit window was never exercised")
	}
	// Nothing may remain in flight.
	if e.Clock().InFlight() != 0 {
		t.Fatal("commit window not drained")
	}
}

// TestSnapshotConsistencyAcrossInFlightCommit is the §4.2 race-condition
// check the Δ reservation exists for: a transaction that begins while a
// commit of {A, B} is being installed must see either both values or
// neither — never A new and B old.
func TestSnapshotConsistencyAcrossInFlightCommit(t *testing.T) {
	e := New(DefaultConfig())
	A, B := addr(1), addr(2)
	torn := false
	s := sched.New(3, 3)
	s.Run(func(th *sched.Thread) {
		switch th.ID() {
		case 0:
			for i := uint64(1); i <= 15; i++ {
				tx := e.Begin(th)
				tx.Write(A, i)
				tx.Write(B, i)
				if err := tx.Commit(); err != nil {
					t.Errorf("writer: %v", err)
				}
				th.Tick(10)
			}
		default:
			for i := 0; i < 25; i++ {
				tx := e.Begin(th)
				va := tx.Read(A)
				th.Tick(30) // widen the window inside the snapshot
				vb := tx.Read(B)
				if va != vb {
					torn = true
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("reader: %v", err)
				}
			}
		}
	})
	if torn {
		t.Fatal("a snapshot observed a half-installed commit")
	}
}

// TestMaxInflightBoundsWindow checks the bounded-Δ configuration: with
// MaxInflight=1, a second committer stalls until the first completes, and
// everything still commits.
func TestMaxInflightBoundsWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInflight = 1
	e := New(cfg)
	s := sched.New(4, 5)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 10; i++ {
			_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				tx.Write(addr(1+th.ID()*16+i), uint64(i))
				return nil
			})
		}
	})
	if e.Stats().Commits != 40 {
		t.Fatalf("commits = %d, want 40", e.Stats().Commits)
	}
	if e.Clock().InFlight() != 0 {
		t.Fatal("window not drained")
	}
}

// TestAbortedCommitDrainsWindow checks that a write-write abort retires
// its end-timestamp reservation so stalled starters wake up.
func TestAbortedCommitDrainsWindow(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th)
		t2 := e.Begin(th)
		t1.Write(addr(1), 1)
		t2.Write(addr(1), 2)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		if err := t2.Commit(); err == nil {
			t.Fatal("t2 should conflict")
		}
		if e.Clock().InFlight() != 0 {
			t.Fatal("aborted commit left its reservation in flight")
		}
		// New transactions proceed normally.
		t3 := e.Begin(th)
		t3.Write(addr(1), 3)
		if err := t3.Commit(); err != nil {
			t.Fatalf("t3: %v", err)
		}
	})
	if e.NonTxRead(addr(1)) != 3 {
		t.Fatalf("value = %d, want 3", e.NonTxRead(addr(1)))
	}
}

// TestCacheStatsAccumulate sanity-checks the per-engine cache statistics
// plumbing used by the cost model.
func TestCacheStatsAccumulate(t *testing.T) {
	e := New(DefaultConfig())
	single(t, e, func(th *sched.Thread) {
		tx := e.Begin(th)
		for i := 0; i < 32; i++ {
			_ = tx.Read(addr(i + 1))
		}
		for i := 0; i < 32; i++ {
			_ = tx.Read(addr(i + 1)) // warm hits
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	cs := e.CacheStats()
	if cs.MemAccesses == 0 {
		t.Fatal("no memory accesses recorded")
	}
	if cs.L1Hits == 0 {
		t.Fatal("no L1 hits recorded for the warm pass")
	}
	if cs.XlateHits+cs.XlateMisses == 0 {
		t.Fatal("translation cache never consulted")
	}
}
