package core

import (
	"testing"

	"repro/internal/sched"
)

// TestSSIRecycledTxnSheddsSIREAD pins the hazard that kept SSI-TM off the
// per-thread recycling path before epoch stamps existed: a committed
// serializable reader leaves SIREAD records in the engine's reader table,
// and those records reference the transaction object. If the object is
// recycled while a record is still in the table (records are swept
// lazily), a later writer of the same line must not mistake the new
// incarnation for the old reader — the epoch stamped into the record no
// longer matches the object's.
func TestSSIRecycledTxnSheddsSIREAD(t *testing.T) {
	e := ssiEngine()
	A, B, C := addr(1), addr(2), addr(3)
	e.NonTxWrite(A, 1)
	e.NonTxWrite(B, 1)
	single(t, e, func(th *sched.Thread) {
		t1 := e.Begin(th).(*txn)
		_ = t1.Read(A)
		if err := t1.Commit(); err != nil {
			t.Fatalf("t1: %v", err)
		}
		// Nothing is active, so the committed reader is recyclable; its
		// SIREAD record for A is still in the reader table.
		t2 := e.Begin(th).(*txn)
		if t2 != t1 {
			t.Fatalf("expected the committed SSI reader to be recycled")
		}
		// A concurrent writer of A walks A's reader records. The stale
		// record points at t2's object with t1's epoch; treating it as
		// live would mark t2 with an incoming edge it never earned.
		w := e.Begin(th)
		w.Write(A, 7)
		if err := w.Commit(); err != nil {
			t.Fatalf("w: %v", err)
		}
		if t2.inFlag {
			t.Fatalf("recycled txn observed its predecessor's SIREAD mark")
		}
		// Give t2 a genuine outgoing edge (it reads B, a concurrent
		// writer commits B). With the phantom incoming edge this would
		// be a dangerous structure and t2 would wrongly abort.
		_ = t2.Read(B)
		w2 := e.Begin(th)
		w2.Write(B, 9)
		if err := w2.Commit(); err != nil {
			t.Fatalf("w2: %v", err)
		}
		t2.Write(C, 1)
		if err := t2.Commit(); err != nil {
			t.Fatalf("recycled txn wrongly aborted: %v", err)
		}
	})
}
