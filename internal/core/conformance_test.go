package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tm"
	"repro/internal/tmtest"
)

func TestConformanceSITM(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		return core.New(core.DefaultConfig())
	})
}

func TestSnapshotIsolationSemanticsSITM(t *testing.T) {
	tmtest.RunSnapshotIsolationSuite(t, func() tm.Engine {
		return core.New(core.DefaultConfig())
	})
}

func TestConformanceSSITM(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		cfg := core.DefaultConfig()
		cfg.Serializable = true
		return core.New(cfg)
	})
}

func TestSerializableSemanticsSSITM(t *testing.T) {
	tmtest.RunSerializableSuite(t, func() tm.Engine {
		cfg := core.DefaultConfig()
		cfg.Serializable = true
		return core.New(cfg)
	})
}

func TestConformanceSITMWordGranularity(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		cfg := core.DefaultConfig()
		cfg.WordGranularity = true
		return core.New(cfg)
	})
}

func TestConformanceSITMNoCoalescing(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		cfg := core.DefaultConfig()
		cfg.MVM.Coalesce = false
		return core.New(cfg)
	})
}

func TestConformanceSITMBoundedWindow(t *testing.T) {
	tmtest.RunConformance(t, func() tm.Engine {
		cfg := core.DefaultConfig()
		cfg.MaxInflight = 2
		return core.New(cfg)
	})
}
