package mvm

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/mem"
)

// env bundles a memory with its clock and active table the way an engine
// wires them.
type env struct {
	clk    *clock.Clock
	active *clock.ActiveTable
	m      *Memory
}

func newEnv(cfg Config) *env {
	clk := clock.New()
	active := clock.NewActiveTable()
	return &env{clk: clk, active: active, m: New(cfg, clk, active)}
}

// commit installs words into line at a fresh end timestamp, simulating a
// committed writer with the given start timestamp.
func (e *env) commit(l mem.Line, start clock.Timestamp, mask uint8, vals [mem.WordsPerLine]uint64) error {
	end := e.clk.ReserveEnd()
	base, _ := e.m.ReadLine(l, start)
	_, err := e.m.Install(l, end, base, mask, &vals)
	e.clk.CompleteEnd(end)
	return err
}

func TestZeroFillBeforeFirstWrite(t *testing.T) {
	e := newEnv(DefaultConfig())
	v, ok := e.m.ReadWord(1234, 99)
	if !ok || v != 0 {
		t.Fatalf("unwritten word = %d,%v want 0,true", v, ok)
	}
}

func TestSnapshotVisibility(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: false})
	l := mem.Line(1)
	a := mem.WordAddr(l, 0)

	s0 := e.clk.Begin()
	e.active.Register(s0)
	if err := e.commit(l, s0, 1, [8]uint64{10}); err != nil {
		t.Fatal(err)
	}
	tsAfterFirst := e.clk.Now()
	s1 := e.clk.Begin()
	e.active.Register(s1)
	if err := e.commit(l, s1, 1, [8]uint64{20}); err != nil {
		t.Fatal(err)
	}

	if v, _ := e.m.ReadWord(a, s0); v != 0 {
		t.Fatalf("snapshot s0 sees %d, want 0", v)
	}
	if v, _ := e.m.ReadWord(a, tsAfterFirst); v != 10 {
		t.Fatalf("snapshot after first commit sees %d, want 10", v)
	}
	if v, _ := e.m.ReadWord(a, e.clk.Now()); v != 20 {
		t.Fatalf("latest snapshot sees %d, want 20", v)
	}
}

func TestNewestTSForConflictDetection(t *testing.T) {
	e := newEnv(DefaultConfig())
	l := mem.Line(2)
	if e.m.NewestTS(l) != 0 {
		t.Fatal("unwritten line must have newest ts 0")
	}
	start := e.clk.Begin()
	e.active.Register(start)
	if err := e.commit(l, start, 1, [8]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if e.m.NewestTS(l) <= start {
		t.Fatal("committed version must be newer than the writer's start")
	}
}

// TestFigure4Coalescing reproduces the paper's Figure 4: five transactions
// write the same address; because no transaction starts between the commit
// points of TX0/TX1 and TX3/TX4, their versions coalesce and the version
// list holds two entries instead of four.
func TestFigure4Coalescing(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: true})
	l := mem.Line(7)

	commitTx := func(val uint64) clock.Timestamp {
		s := e.clk.Begin()
		e.active.Register(s)
		// ... transaction body would run here ...
		e.active.Deregister(s) // committer leaves the table first
		end := e.clk.ReserveEnd()
		base, _ := e.m.ReadLine(l, s)
		if _, err := e.m.Install(l, end, base, 1, &[8]uint64{val}); err != nil {
			t.Fatal(err)
		}
		e.clk.CompleteEnd(end)
		return end
	}

	commitTx(100)       // TX0: commit; no reader between -> baseline version
	e1 := commitTx(101) // TX1: coalesces with TX0's version
	// TX2 starts and stays active (the long-running transaction).
	s2 := e.clk.Begin()
	e.active.Register(s2)
	commitTx(102)       // TX3: cannot coalesce across TX2's start
	e4 := commitTx(103) // TX4: coalesces with TX3's version

	got := e.m.VersionTimestamps(l)
	if len(got) != 2 {
		t.Fatalf("version list has %d entries %v, want 2 (coalesced)", len(got), got)
	}
	if got[0] != e1 || got[1] != e4 {
		t.Fatalf("version timestamps %v, want [%d %d]", got, e1, e4)
	}
	// TX2's snapshot still reads TX1's value.
	if v, _ := e.m.ReadWord(mem.WordAddr(l, 0), s2); v != 101 {
		t.Fatalf("TX2 snapshot reads %d, want 101", v)
	}
	if e.m.Stats().Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", e.m.Stats().Coalesced)
	}
	e.active.Deregister(s2)
}

func TestAbortFifthPolicy(t *testing.T) {
	e := newEnv(Config{MaxVersions: 4, Policy: AbortFifth, Coalesce: false})
	l := mem.Line(3)
	// A pinned old reader keeps versions alive.
	pin := e.clk.Begin()
	e.active.Register(pin)
	var err error
	for i := 0; i < 4; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		err = e.commit(l, s, 1, [8]uint64{uint64(i)})
		e.active.Deregister(s)
		if err != nil {
			t.Fatalf("install %d failed early: %v", i, err)
		}
		// Keep a reader between each pair of versions so GC and
		// coalescing cannot reclaim them.
		r := e.clk.Begin()
		e.active.Register(r)
	}
	s := e.clk.Begin()
	e.active.Register(s)
	if err = e.commit(l, s, 1, [8]uint64{99}); err != ErrCapacity {
		t.Fatalf("fifth version: err = %v, want ErrCapacity", err)
	}
}

func TestDropOldestPolicy(t *testing.T) {
	e := newEnv(Config{MaxVersions: 2, Policy: DropOldest, Coalesce: false})
	l := mem.Line(4)
	a := mem.WordAddr(l, 0)
	old := e.clk.Begin()
	e.active.Register(old)
	var readers []clock.Timestamp
	for i := 0; i < 3; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		if err := e.commit(l, s, 1, [8]uint64{uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		e.active.Deregister(s)
		r := e.clk.Begin()
		e.active.Register(r)
		readers = append(readers, r)
	}
	// The snapshot from before any write can no longer be served.
	if _, ok := e.m.ReadWord(a, old); ok {
		t.Fatal("stale snapshot should fail after DropOldest")
	}
	if e.m.Stats().StaleReads != 1 {
		t.Fatalf("stale reads = %d, want 1", e.m.Stats().StaleReads)
	}
	// The newest snapshots still work.
	if v, ok := e.m.ReadWord(a, readers[2]); !ok || v != 3 {
		t.Fatalf("fresh snapshot = %d,%v want 3,true", v, ok)
	}
}

func TestGCReclaimsUnreachableVersions(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: false})
	l := mem.Line(5)
	// Five commits with no concurrent readers: each install GC-collapses
	// the history down to the previous version (which stays reachable
	// while the install is revocable) plus the new one.
	for i := 0; i < 5; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		e.active.Deregister(s)
		if err := e.commit(l, s, 1, [8]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.m.VersionCount(l); n > 2 {
		t.Fatalf("versions = %d, want <= 2 after GC", n)
	}
	if e.m.Stats().GCReclaimed < 3 {
		t.Fatalf("GC reclaimed %d versions, want >= 3", e.m.Stats().GCReclaimed)
	}
}

func TestGCKeepsVersionsForOldestActive(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: false})
	l := mem.Line(6)
	a := mem.WordAddr(l, 0)
	s1 := e.clk.Begin()
	e.active.Register(s1)
	if err := e.commit(l, s1, 1, [8]uint64{11}); err != nil {
		t.Fatal(err)
	}
	reader := e.clk.Begin()
	e.active.Register(reader) // pins version 11
	s2 := e.clk.Begin()
	e.active.Register(s2)
	e.active.Deregister(s1)
	e.active.Deregister(s2)
	s3 := e.clk.Begin()
	e.active.Register(s3)
	if err := e.commit(l, s3, 1, [8]uint64{22}); err == nil {
		// s3 conflicts? No: newest (11) is older than s3 — fine.
	} else {
		t.Fatal(err)
	}
	if v, ok := e.m.ReadWord(a, reader); !ok || v != 11 {
		t.Fatalf("pinned snapshot reads %d,%v want 11,true", v, ok)
	}
}

func TestRevertCreatedVersion(t *testing.T) {
	e := newEnv(DefaultConfig())
	l := mem.Line(8)
	a := mem.WordAddr(l, 0)
	s := e.clk.Begin()
	e.active.Register(s)
	if err := e.commit(l, s, 1, [8]uint64{7}); err != nil {
		t.Fatal(err)
	}
	// A second writer installs then reverts (write-write conflict on
	// another line of its write set).
	end := e.clk.ReserveEnd()
	base, _ := e.m.ReadLine(l, e.clk.Now()-1)
	undo, err := e.m.Install(l, end, base, 1, &[8]uint64{8})
	if err != nil {
		t.Fatal(err)
	}
	e.m.Revert(l, end, undo)
	e.clk.CompleteEnd(end)
	if v := e.m.NonTxReadWord(a); v != 7 {
		t.Fatalf("after revert word = %d, want 7", v)
	}
}

func TestRevertCoalescedVersionRestoresPrevious(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: true})
	l := mem.Line(9)
	a := mem.WordAddr(l, 0)
	s := e.clk.Begin()
	e.active.Register(s)
	e.active.Deregister(s)
	end1 := e.clk.ReserveEnd()
	if _, err := e.m.Install(l, end1, [8]uint64{}, 1, &[8]uint64{100}); err != nil {
		t.Fatal(err)
	}
	e.clk.CompleteEnd(end1)

	// No active snapshots: the next install coalesces, then reverts.
	end2 := e.clk.ReserveEnd()
	base, _ := e.m.ReadLine(l, end1)
	undo, err := e.m.Install(l, end2, base, 1, &[8]uint64{200})
	if err != nil {
		t.Fatal(err)
	}
	if !undo.Coalesced {
		t.Fatal("expected a coalesced install")
	}
	e.m.Revert(l, end2, undo)
	e.clk.CompleteEnd(end2)
	if v := e.m.NonTxReadWord(a); v != 100 {
		t.Fatalf("after revert word = %d, want 100 (previous version)", v)
	}
	if ts := e.m.VersionTimestamps(l); len(ts) != 1 || ts[0] != end1 {
		t.Fatalf("version list %v, want [%d]", ts, end1)
	}
}

func TestNonTxAccess(t *testing.T) {
	e := newEnv(DefaultConfig())
	e.m.NonTxWriteWord(100, 5)
	if v := e.m.NonTxReadWord(100); v != 5 {
		t.Fatalf("non-tx read = %d, want 5", v)
	}
	// In-place: no extra version created.
	e.m.NonTxWriteWord(100, 6)
	if n := e.m.VersionCount(mem.LineOf(100)); n != 1 {
		t.Fatalf("versions = %d, want 1", n)
	}
	// Initial data is visible to every snapshot.
	if v, ok := e.m.ReadWord(100, 0); !ok || v != 6 {
		t.Fatalf("snapshot 0 reads %d,%v want 6,true", v, ok)
	}
}

func TestAccessDepthHistogram(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: false})
	l := mem.Line(10)
	a := mem.WordAddr(l, 0)
	var snaps []clock.Timestamp
	for i := 0; i < 3; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		if err := e.commit(l, s, 1, [8]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
		r := e.clk.Begin()
		e.active.Register(r)
		snaps = append(snaps, r)
	}
	e.m.ResetStats()
	e.m.ReadWord(a, snaps[2]) // newest -> depth 1
	e.m.ReadWord(a, snaps[1]) // second -> depth 2
	e.m.ReadWord(a, snaps[0]) // third  -> depth 3
	st := e.m.Stats()
	if st.AccessDepth[0] != 1 || st.AccessDepth[1] != 1 || st.AccessDepth[2] != 1 {
		t.Fatalf("histogram = %v", st.AccessDepth)
	}
}

func TestInstallWordMergeProperty(t *testing.T) {
	// Property: installed line = base overlaid with masked words.
	f := func(baseArr [8]uint64, vals [8]uint64, mask uint8) bool {
		e := newEnv(Config{Policy: Unbounded, Coalesce: false})
		l := mem.Line(1)
		end := e.clk.ReserveEnd()
		if _, err := e.m.Install(l, end, baseArr, mask, &vals); err != nil {
			return false
		}
		e.clk.CompleteEnd(end)
		got := e.m.NewestLine(l)
		for w := 0; w < 8; w++ {
			want := baseArr[w]
			if mask&(1<<w) != 0 {
				want = vals[w]
			}
			if got[w] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedPolicyRequiresMaxVersions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newEnv(Config{Policy: AbortFifth, MaxVersions: 0})
}
