// Package mvm implements the multiversioned memory architecture of §3 of
// the SI-TM paper: an indirection layer that maps (cache line address,
// timestamp) to immutable data versions, with copy-on-write installs,
// version coalescing (§3.1, Figure 4), write-driven garbage collection, and
// the bounded-version policies the paper evaluates (abort on a fifth
// version, or drop the oldest and abort stale readers).
//
// Data is modelled at the paper's granularity: 64-byte lines of eight
// 64-bit words. A line that has never been written reads as zero at every
// timestamp — physical lines are "allocated on the first write" (§3).
package mvm

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mem"
)

// Policy selects what happens when a line would exceed the version bound.
type Policy int

const (
	// AbortFifth aborts the transaction that tries to create a version
	// beyond the bound — the paper's default (§3.1).
	AbortFifth Policy = iota
	// DropOldest discards the oldest version instead; transactions
	// abort later on reads that cannot find a version old enough —
	// the paper's alternative, "within 1%" of AbortFifth.
	DropOldest
	// Unbounded keeps every version (subject to GC); used for the
	// Appendix A / Table 2 measurement.
	Unbounded
)

func (p Policy) String() string {
	switch p {
	case AbortFifth:
		return "abort-fifth"
	case DropOldest:
		return "drop-oldest"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config controls the version-management policies of §3.1.
type Config struct {
	// MaxVersions bounds the versions retained per line (the paper
	// uses 4). Ignored when Policy is Unbounded.
	MaxVersions int
	// Policy selects the overflow behaviour.
	Policy Policy
	// Coalesce enables version coalescing (§3.1, Figure 4): a new
	// version replaces the previous one unless an active transaction's
	// start timestamp separates them.
	Coalesce bool
	// ReferenceStore backs the per-line version table with the retained
	// dense mem store instead of the paged one, the differential oracle
	// for the paged backing. Results are bit-identical to the default;
	// only memory footprint changes.
	ReferenceStore bool
}

// DefaultConfig returns the paper's configuration: 4 versions,
// abort-on-fifth, coalescing enabled.
func DefaultConfig() Config {
	return Config{MaxVersions: 4, Policy: AbortFifth, Coalesce: true}
}

// ErrCapacity is reported by Install when the version bound would be
// exceeded under the AbortFifth policy.
var ErrCapacity = fmt.Errorf("mvm: version capacity exceeded")

// version is one immutable snapshot of a line, tagged with the end
// timestamp of the transaction that committed it.
type version struct {
	ts   clock.Timestamp
	data [mem.WordsPerLine]uint64
}

// inlineVersions sizes a versionList's inline storage: the paper's
// 4-version bound (§3.1) fits without a separate slice allocation, so on
// the bounded policies a line's whole version history lives in one
// allocation and the hot path (Install/gc/Revert) never reallocates.
const inlineVersions = 4

// versionList holds a line's versions in ascending timestamp order
// (newest last). Every line implicitly begins as an all-zero version at
// timestamp 0 ("physical memory is allocated on the first write", §3);
// truncated records that DropOldest discarded history, after which
// snapshots older than the oldest retained version must abort instead of
// seeing the implicit zero.
//
// v always starts out aliasing arr; every mutation (gc compaction,
// DropOldest, Revert) compacts in place so the base pointer is preserved
// and append only allocates when the Unbounded policy grows a line past
// the inline capacity.
type versionList struct {
	v         []version
	truncated bool
	arr       [inlineVersions]version
}

// newVersionList allocates a line's version list with its inline storage
// ready for appends.
func newVersionList() *versionList {
	vl := &versionList{}
	vl.v = vl.arr[:0]
	return vl
}

// Stats aggregates the measurements of §3.2 and Appendix A.
type Stats struct {
	// AccessDepth[d] counts transactional reads served by the d-th most
	// recent version (d=1 is the newest); AccessTail counts reads
	// served by versions older than the 5th — Table 2's rows.
	AccessDepth [5]uint64
	AccessTail  uint64

	Installs     uint64 // versions created by commits
	Coalesced    uint64 // installs that overwrote the previous version
	GCReclaimed  uint64 // versions dropped because no snapshot needs them
	DroppedOld   uint64 // versions discarded by the DropOldest policy
	StaleReads   uint64 // reads that found no version old enough
	PeakVersions int    // maximum versions observed on any line
}

// Memory is the multiversioned main memory shared by all cores.
type Memory struct {
	cfg    Config
	clk    *clock.Clock
	active *clock.ActiveTable
	// lines is a paged table keyed by line number — the simulated
	// address space is dense (bump allocated), and ReadWord sits on the
	// per-access hot path where a map hash dominated. The paged backing
	// keeps the heap proportional to touched lines at serving-scale
	// footprints (Config.ReferenceStore retains the dense backing as
	// the differential oracle). nLines counts the non-nil entries.
	lines  mem.Paged[*versionList]
	nLines int
	stats  Stats
}

// New creates a multiversioned memory. The active-transaction table drives
// garbage collection and coalescing decisions; it must be the same table
// the transactional engine registers transactions with. The clock is
// consulted so garbage collection never collapses a committed version into
// an in-flight (still revocable) install.
func New(cfg Config, clk *clock.Clock, active *clock.ActiveTable) *Memory {
	if cfg.Policy != Unbounded && cfg.MaxVersions <= 0 {
		panic("mvm: bounded policy requires MaxVersions > 0")
	}
	m := &Memory{cfg: cfg, clk: clk, active: active}
	if cfg.ReferenceStore {
		m.lines.SetReference()
	}
	return m
}

// safeHorizon returns the highest timestamp H such that no current or
// future snapshot, and no in-flight rollback, can need a version older
// than the newest version with ts <= H.
func (m *Memory) safeHorizon() clock.Timestamp {
	if s, ok := m.active.OldestActive(); ok {
		return s
	}
	if e, ok := m.clk.OldestInflight(); ok {
		return e - 1
	}
	return m.clk.Now()
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats clears the statistics (used between warm-up and measurement).
func (m *Memory) ResetStats() { m.stats = Stats{} }

// visible returns the newest version with timestamp <= at, its depth from
// the newest version (1-based), and whether one exists. A line with no
// versions is all-zero at timestamp 0 and visible to everyone at depth 1.
func (vl *versionList) visible(at clock.Timestamp) (*version, int, bool) {
	for i := len(vl.v) - 1; i >= 0; i-- {
		if vl.v[i].ts <= at {
			return &vl.v[i], len(vl.v) - i, true
		}
	}
	return nil, 0, false
}

// ReadWord returns the word at addr as of snapshot timestamp at. ok is
// false when the required version has been discarded (DropOldest policy),
// in which case the reading transaction must abort (§3.1).
func (m *Memory) ReadWord(a mem.Addr, at clock.Timestamp) (val uint64, ok bool) {
	vl := m.lines.Load(uint64(mem.LineOf(a)))
	if vl == nil || len(vl.v) == 0 {
		m.stats.AccessDepth[0]++
		return 0, true
	}
	v, depth, ok := vl.visible(at)
	if !ok {
		if vl.truncated {
			m.stats.StaleReads++
			return 0, false
		}
		// The line was first written after this snapshot: the
		// snapshot sees the implicit all-zero version (§3).
		m.countDepth(len(vl.v) + 1)
		return 0, true
	}
	m.countDepth(depth)
	return v.data[mem.WordOf(a)], true
}

// countDepth updates the Table-2 access histogram for a read served by the
// depth-th most recent version.
func (m *Memory) countDepth(depth int) {
	if depth <= len(m.stats.AccessDepth) {
		m.stats.AccessDepth[depth-1]++
	} else {
		m.stats.AccessTail++
	}
}

// ReadLine returns the full line contents as of snapshot timestamp at.
// It does not update the access histogram; engines use it to materialise
// the copy-on-write base of a new version.
func (m *Memory) ReadLine(l mem.Line, at clock.Timestamp) (data [mem.WordsPerLine]uint64, ok bool) {
	vl := m.lines.Load(uint64(l))
	if vl == nil || len(vl.v) == 0 {
		return data, true
	}
	v, _, ok := vl.visible(at)
	if !ok {
		if vl.truncated {
			return data, false
		}
		return data, true // implicit all-zero initial version
	}
	return v.data, true
}

// NewestTS returns the timestamp of the most recent version of l, or 0 if
// the line has never been written. Commit-time write-write conflict
// detection compares this against the committing transaction's start
// timestamp (§4.2).
func (m *Memory) NewestTS(l mem.Line) clock.Timestamp {
	vl := m.lines.Load(uint64(l))
	if vl == nil || len(vl.v) == 0 {
		return 0
	}
	return vl.v[len(vl.v)-1].ts
}

// NewestLine returns the most recent contents of l (all zeros if never
// written). Non-transactional reads always target the newest version (§3).
//
//sitm:allow(chargelint) commit-path callers (copy-on-write base reads, word-granularity conflict checks) charge the line access through cache.Hierarchy.AccessVersioned; this is the uncharged data fetch behind that already-charged access.
func (m *Memory) NewestLine(l mem.Line) [mem.WordsPerLine]uint64 {
	vl := m.lines.Load(uint64(l))
	if vl == nil || len(vl.v) == 0 {
		return [mem.WordsPerLine]uint64{}
	}
	return vl.v[len(vl.v)-1].data
}

// Undo records what Install did to a line so that a conflicting commit can
// revert its optimistic installs (§4.2: "rolls back its newly created
// versions, making the validation process itself transactional").
type Undo struct {
	// Coalesced is true when the install overwrote the previous version
	// in place; PrevTS/PrevData then hold the overwritten version.
	Coalesced bool
	PrevTS    clock.Timestamp
	PrevData  [mem.WordsPerLine]uint64
}

// Install creates a new version of line l at timestamp ts whose contents
// are base overlaid with the words selected by mask. It applies garbage
// collection, coalescing and the capacity policy, in that order, exactly as
// a write proceeds in §3.1. It returns ErrCapacity when the AbortFifth
// policy rejects the version; otherwise the returned Undo lets the caller
// revert the install.
func (m *Memory) Install(l mem.Line, ts clock.Timestamp, base [mem.WordsPerLine]uint64, mask uint8, words *[mem.WordsPerLine]uint64) (Undo, error) {
	vlp := m.lines.Slot(uint64(l))
	vl := *vlp
	if vl == nil {
		vl = newVersionList()
		*vlp = vl
		m.nLines++
	}
	data := base
	for w := 0; w < mem.WordsPerLine; w++ {
		if mask&(1<<w) != 0 {
			data[w] = words[w]
		}
	}

	m.gc(vl, ts)

	// Version coalescing (§3.1): create a new version only if some
	// active transaction's snapshot falls between the previous version
	// and this one; otherwise overwrite the previous version in place.
	// (The committing transaction deregisters its own start first, as
	// in Figure 4, where TX1's commit coalesces across TX1's start.)
	if m.cfg.Coalesce && len(vl.v) > 0 {
		prev := &vl.v[len(vl.v)-1]
		if !m.active.AnyIn(prev.ts, ts) {
			u := Undo{Coalesced: true, PrevTS: prev.ts, PrevData: prev.data}
			prev.ts = ts
			prev.data = data
			m.stats.Coalesced++
			m.stats.Installs++
			return u, nil
		}
	}

	if m.cfg.Policy != Unbounded && len(vl.v) >= m.cfg.MaxVersions {
		switch m.cfg.Policy {
		case AbortFifth:
			return Undo{}, ErrCapacity
		case DropOldest:
			// Shift down instead of re-slicing so the slice keeps its
			// base (the inline array) and the coming append stays
			// allocation-free.
			copy(vl.v, vl.v[1:])
			vl.v = vl.v[:len(vl.v)-1]
			vl.truncated = true
			m.stats.DroppedOld++
		}
	}
	vl.v = append(vl.v, version{ts: ts, data: data})
	m.stats.Installs++
	if n := len(vl.v); n > m.stats.PeakVersions {
		m.stats.PeakVersions = n
	}
	return Undo{}, nil
}

// gc discards versions no snapshot can reach. A version is reachable when
// it is the newest version at or below some active transaction's start
// timestamp (or the safe horizon, which stands in for in-flight rollbacks
// and quiescent state), or the newest version overall. This realises the
// paper's bound: "the number of active transactions, respectively hardware
// threads, bounds the number of versions" (§3.1). The check runs on every
// write to the line rather than scanning the whole indirection matrix.
// installTS is the timestamp the caller is about to install; versions
// above it (at most the caller's own prior coalesce target) are kept.
//
// Both the version list and the active table's Starts() are ascending, so
// one merge walk decides reachability: version i is some snapshot s's
// newest exactly when s lands in [v[i].ts, v[i+1].ts). That replaces the
// per-call mark buffer and the per-start rescans of the original
// implementation — gc is allocation-free and O(versions + active).
func (m *Memory) gc(vl *versionList, installTS clock.Timestamp) {
	n := len(vl.v)
	if n < 2 {
		return
	}
	horizon := m.safeHorizon()
	starts := m.active.Starts()
	j := 0 // first start not yet below the current version's timestamp
	out := vl.v[:0]
	for i := 0; i < n; i++ {
		ts := vl.v[i].ts
		// The newest version always survives; versions newer than the
		// install point belong to unfinished commits and must stay
		// revocable.
		keep := i == n-1 || ts >= installTS
		if !keep {
			next := vl.v[i+1].ts
			if ts <= horizon && horizon < next {
				keep = true
			}
			for j < len(starts) && starts[j] < ts {
				j++
			}
			if j < len(starts) && starts[j] < next {
				keep = true
			}
		}
		if keep {
			out = append(out, vl.v[i])
		} else {
			m.stats.GCReclaimed++
		}
	}
	vl.v = out
}

// Revert rolls back the version of l installed at ts, restoring the
// coalesced-away version when the install overwrote one. The list is
// ascending, so the newest-first scan stops as soon as the timestamps
// pass below the target — a revert of a recent install (the only kind the
// commit path performs) touches O(1) entries.
func (m *Memory) Revert(l mem.Line, ts clock.Timestamp, u Undo) {
	vl := m.lines.Load(uint64(l))
	if vl == nil {
		return
	}
	for i := len(vl.v) - 1; i >= 0 && vl.v[i].ts >= ts; i-- {
		if vl.v[i].ts == ts {
			if u.Coalesced {
				vl.v[i] = version{ts: u.PrevTS, data: u.PrevData}
			} else {
				vl.v = append(vl.v[:i], vl.v[i+1:]...)
			}
			return
		}
	}
}

// VersionCount returns how many versions of l currently exist.
func (m *Memory) VersionCount(l mem.Line) int {
	vl := m.lines.Load(uint64(l))
	if vl == nil {
		return 0
	}
	return len(vl.v)
}

// VersionTimestamps returns the timestamps of l's versions in ascending
// order; useful for tests that check coalescing behaviour (Figure 4).
func (m *Memory) VersionTimestamps(l mem.Line) []clock.Timestamp {
	vl := m.lines.Load(uint64(l))
	if vl == nil {
		return nil
	}
	out := make([]clock.Timestamp, len(vl.v))
	for i, v := range vl.v {
		out[i] = v.ts
	}
	return out
}

// NonTxReadWord performs a non-transactional read: the newest version (§3).
func (m *Memory) NonTxReadWord(a mem.Addr) uint64 {
	line := m.NewestLine(mem.LineOf(a))
	return line[mem.WordOf(a)]
}

// NonTxWriteWord performs a non-transactional write, modifying the most
// current version in place (§3); the first write to a line allocates it at
// timestamp 0 so that every snapshot sees initial data.
//
//sitm:allow(chargelint) non-transactional initialisation runs outside the measured region (single-threaded workload setup) and is uncharged by design.
func (m *Memory) NonTxWriteWord(a mem.Addr, val uint64) {
	l := mem.LineOf(a)
	vlp := m.lines.Slot(uint64(l))
	vl := *vlp
	if vl == nil {
		vl = newVersionList()
		*vlp = vl
		m.nLines++
	}
	if len(vl.v) == 0 {
		vl.v = append(vl.v, version{ts: 0})
	}
	vl.v[len(vl.v)-1].data[mem.WordOf(a)] = val
}

// LinesAllocated returns the number of lines with at least one version.
func (m *Memory) LinesAllocated() int { return m.nLines }

// StorePages returns the number of pages the version table has allocated
// — the footprint metric the serving-scale tests assert on (pages track
// touched lines, not the address span).
func (m *Memory) StorePages() int { return m.lines.Pages() }

// TotalVersions returns the total number of versions currently stored.
func (m *Memory) TotalVersions() int {
	n := 0
	m.lines.Range(func(_ uint64, vl **versionList) {
		if *vl != nil {
			n += len((*vl).v)
		}
	})
	return n
}
