package mvm

import (
	"testing"

	"repro/internal/mem"
)

func TestCheckpointReadsFrozenState(t *testing.T) {
	e := newEnv(DefaultConfig())
	a := mem.WordAddr(1, 0)
	e.m.NonTxWriteWord(a, 10)
	cp := e.m.Checkpoint()

	s := e.clk.Begin()
	e.active.Register(s)
	e.active.Deregister(s)
	if err := e.commit(mem.Line(1), s, 1, [8]uint64{20}); err != nil {
		t.Fatal(err)
	}

	if got := cp.ReadWord(a); got != 10 {
		t.Fatalf("checkpoint reads %d, want 10", got)
	}
	if got := e.m.NonTxReadWord(a); got != 20 {
		t.Fatalf("live state reads %d, want 20", got)
	}
	cp.Release()
}

func TestCheckpointRollbackRestores(t *testing.T) {
	e := newEnv(DefaultConfig())
	a := mem.WordAddr(1, 0)
	b := mem.WordAddr(2, 0)
	e.m.NonTxWriteWord(a, 1)
	cp := e.m.Checkpoint()

	// Commit changes to line 1 and create line 2 after the checkpoint.
	s := e.clk.Begin()
	e.active.Register(s)
	e.active.Deregister(s)
	if err := e.commit(mem.Line(1), s, 1, [8]uint64{2}); err != nil {
		t.Fatal(err)
	}
	s2 := e.clk.Begin()
	e.active.Register(s2)
	e.active.Deregister(s2)
	if err := e.commit(mem.Line(2), s2, 1, [8]uint64{3}); err != nil {
		t.Fatal(err)
	}

	cp.Rollback()
	if got := e.m.NonTxReadWord(a); got != 1 {
		t.Fatalf("after rollback a = %d, want 1", got)
	}
	if got := e.m.NonTxReadWord(b); got != 0 {
		t.Fatalf("after rollback b = %d, want 0 (line uncreated)", got)
	}
}

func TestCheckpointPinsAgainstGC(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: true})
	a := mem.WordAddr(1, 0)
	e.m.NonTxWriteWord(a, 5)
	cp := e.m.Checkpoint()
	// Many commits afterwards; without the pin they would coalesce/GC
	// the checkpointed version away.
	for i := 0; i < 10; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		e.active.Deregister(s)
		if err := e.commit(mem.Line(1), s, 1, [8]uint64{uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cp.ReadWord(a); got != 5 {
		t.Fatalf("checkpoint reads %d, want 5", got)
	}
	cp.Release()
}

func TestRollbackPanicsWithInflightCommits(t *testing.T) {
	e := newEnv(DefaultConfig())
	cp := e.m.Checkpoint()
	end := e.clk.ReserveEnd()
	defer func() {
		e.clk.CompleteEnd(end)
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cp.Rollback()
}

func TestMeasureDedup(t *testing.T) {
	e := newEnv(DefaultConfig())
	// Three lines: two with identical contents, one all-zero (written
	// then zeroed in place).
	e.m.NonTxWriteWord(mem.WordAddr(1, 0), 7)
	e.m.NonTxWriteWord(mem.WordAddr(2, 0), 7)
	e.m.NonTxWriteWord(mem.WordAddr(3, 0), 9)
	e.m.NonTxWriteWord(mem.WordAddr(3, 0), 0)

	d := e.m.MeasureDedup()
	if d.Lines != 3 {
		t.Fatalf("lines = %d, want 3", d.Lines)
	}
	if d.ZeroLines != 1 {
		t.Fatalf("zero lines = %d, want 1", d.ZeroLines)
	}
	if d.DupLines != 2 {
		t.Fatalf("dup lines = %d, want 2", d.DupLines)
	}
	if d.UniqueData != 2 {
		t.Fatalf("unique = %d, want 2", d.UniqueData)
	}
	want := 100 * float64(1) / 3
	if got := d.SharablePct(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("sharable = %.2f%%, want %.2f%%", got, want)
	}
}

func TestMeasureDedupEmpty(t *testing.T) {
	e := newEnv(DefaultConfig())
	if got := e.m.MeasureDedup().SharablePct(); got != 0 {
		t.Fatalf("empty memory sharable = %v, want 0", got)
	}
}
