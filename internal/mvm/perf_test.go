package mvm

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/mem"
)

// referenceGC is the original mark-buffer implementation of gc, retained
// verbatim as the differential oracle for the allocation-free merge walk.
func referenceGC(m *Memory, vl *versionList, installTS clock.Timestamp) (reclaimed int) {
	if len(vl.v) < 2 {
		return 0
	}
	horizon := m.safeHorizon()
	keep := make([]bool, len(vl.v))
	keep[len(vl.v)-1] = true
	mark := func(s clock.Timestamp) {
		for i := len(vl.v) - 1; i >= 0; i-- {
			if vl.v[i].ts <= s {
				keep[i] = true
				return
			}
		}
	}
	mark(horizon)
	for _, s := range m.active.Starts() {
		mark(s)
	}
	for i, v := range vl.v {
		if v.ts >= installTS {
			keep[i] = true
		}
	}
	out := vl.v[:0]
	for i, v := range vl.v {
		if keep[i] {
			out = append(out, v)
		} else {
			reclaimed++
		}
	}
	vl.v = out
	return reclaimed
}

// listWith builds a version list with the given ascending timestamps.
func listWith(ts []clock.Timestamp) *versionList {
	vl := newVersionList()
	for _, t := range ts {
		vl.v = append(vl.v, version{ts: t})
	}
	return vl
}

// TestGCMatchesReference property-tests the merge-walk gc against the
// original mark-buffer implementation across random version lists, active
// tables and install points.
func TestGCMatchesReference(t *testing.T) {
	f := func(gaps []uint8, starts []uint8, installGap uint8) bool {
		if len(gaps) > 12 {
			gaps = gaps[:12]
		}
		// Strictly ascending version timestamps from random gaps.
		var ts []clock.Timestamp
		cur := clock.Timestamp(0)
		for _, g := range gaps {
			cur += clock.Timestamp(g%7) + 1
			ts = append(ts, cur)
		}
		installTS := cur + clock.Timestamp(installGap%5)

		build := func() (*Memory, *versionList) {
			clk := clock.New()
			active := clock.NewActiveTable()
			for _, s := range starts {
				active.Register(clock.Timestamp(s % 40))
			}
			m := New(Config{Policy: Unbounded, Coalesce: true}, clk, active)
			return m, listWith(ts)
		}

		mNew, vlNew := build()
		mNew.gc(vlNew, installTS)

		mRef, vlRef := build()
		wantReclaimed := referenceGC(mRef, vlRef, installTS)

		if int(mNew.stats.GCReclaimed) != wantReclaimed {
			return false
		}
		return reflect.DeepEqual(tsOf(vlNew), tsOf(vlRef))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func tsOf(vl *versionList) []clock.Timestamp {
	out := []clock.Timestamp{}
	for _, v := range vl.v {
		out = append(out, v.ts)
	}
	return out
}

// TestDropOldestRevertStaleAccounting pins the satellite contract: the
// DropOldest policy, the in-place gc and Revert must leave stale-read
// accounting exactly as before. A truncated line aborts readers below the
// oldest retained version and counts them in StaleReads; reverting a
// later install must not resurrect or further truncate history.
func TestDropOldestRevertStaleAccounting(t *testing.T) {
	clk := clock.New()
	active := clock.NewActiveTable()
	m := New(Config{MaxVersions: 2, Policy: DropOldest, Coalesce: false}, clk, active)
	line := mem.Line(1)
	var words [mem.WordsPerLine]uint64

	install := func(pin bool) (clock.Timestamp, Undo) {
		if pin {
			active.Register(clk.Begin())
		}
		e := clk.ReserveEnd()
		words[0] = uint64(e)
		u, err := m.Install(line, e, m.NewestLine(line), 1, &words)
		if err != nil {
			t.Fatalf("install at %d: %v", e, err)
		}
		clk.CompleteEnd(e)
		return e, u
	}

	// Three pinned installs: the third forces DropOldest to discard the
	// first version and mark the line truncated.
	t1, _ := install(true)
	t2, _ := install(true)
	t3, _ := install(true)
	if got := m.VersionTimestamps(line); !reflect.DeepEqual(got, []clock.Timestamp{t2, t3}) {
		t.Fatalf("versions after drop = %v, want [%d %d]", got, t2, t3)
	}
	if m.Stats().DroppedOld != 1 {
		t.Fatalf("DroppedOld = %d, want 1", m.Stats().DroppedOld)
	}

	// A snapshot below the dropped version is a stale read, not a zero
	// read.
	if _, ok := m.ReadWord(mem.Addr(line)*mem.LineBytes, t1-1); ok {
		t.Fatal("read below truncated history must fail")
	}
	if m.Stats().StaleReads != 1 {
		t.Fatalf("StaleReads = %d, want 1", m.Stats().StaleReads)
	}

	// A fourth install drops t2 the same way, then a revert of it removes
	// exactly the new version: the exact install vanishes, truncation and
	// stale accounting stay.
	t4, u4 := install(true)
	if m.Stats().DroppedOld != 2 {
		t.Fatalf("DroppedOld = %d, want 2", m.Stats().DroppedOld)
	}
	m.Revert(line, t4, u4)
	if got := m.VersionTimestamps(line); !reflect.DeepEqual(got, []clock.Timestamp{t3}) {
		t.Fatalf("versions after revert = %v, want [%d]", got, t3)
	}
	if _, ok := m.ReadWord(mem.Addr(line)*mem.LineBytes, t1-1); ok {
		t.Fatal("revert must not resurrect dropped history")
	}
	if m.Stats().StaleReads != 2 {
		t.Fatalf("StaleReads = %d, want 2", m.Stats().StaleReads)
	}

	// Reads at or above the oldest retained version still succeed.
	if v, ok := m.ReadWord(mem.Addr(line)*mem.LineBytes, t3); !ok || v != uint64(t3) {
		t.Fatalf("read newest = %d,%v want %d,true", v, ok, t3)
	}
}

// TestRevertCoalescedRestoresPrev checks the coalesced-undo path against
// the inline-array list: the overwritten version comes back bit-exact.
func TestRevertCoalescedRestoresPrev(t *testing.T) {
	clk := clock.New()
	active := clock.NewActiveTable()
	m := New(DefaultConfig(), clk, active)
	line := mem.Line(2)
	var words [mem.WordsPerLine]uint64

	e1 := clk.ReserveEnd()
	words[0] = 11
	if _, err := m.Install(line, e1, m.NewestLine(line), 1, &words); err != nil {
		t.Fatal(err)
	}
	clk.CompleteEnd(e1)

	// No active snapshot separates e1 from e2: the install coalesces.
	e2 := clk.ReserveEnd()
	words[0] = 22
	u, err := m.Install(line, e2, m.NewestLine(line), 1, &words)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Coalesced || u.PrevTS != e1 {
		t.Fatalf("undo = %+v, want coalesced over ts %d", u, e1)
	}
	m.Revert(line, e2, u)
	clk.CompleteEnd(e2)

	if got := m.VersionTimestamps(line); !reflect.DeepEqual(got, []clock.Timestamp{e1}) {
		t.Fatalf("versions after revert = %v, want [%d]", got, e1)
	}
	if v := m.NonTxReadWord(mem.Addr(line) * mem.LineBytes); v != 11 {
		t.Fatalf("restored word = %d, want 11", v)
	}
}

// benchmarkInstall drives the steady-state Install hot path. With
// turnover, a sliding window of active snapshots pins recent versions so
// every install walks gc, fails coalescing and exercises the DropOldest
// shift; without it, every install coalesces in place.
func benchmarkInstall(b *testing.B, cfg Config, turnover bool) {
	clk := clock.New()
	active := clock.NewActiveTable()
	m := New(cfg, clk, active)
	const line = mem.Line(1)
	var words [mem.WordsPerLine]uint64
	install := func(i int) {
		if turnover {
			active.Register(clk.Begin())
		}
		ts := clk.ReserveEnd()
		words[0] = uint64(i)
		if _, err := m.Install(line, ts, m.NewestLine(line), 1, &words); err != nil {
			b.Fatal(err)
		}
		clk.CompleteEnd(ts)
		if turnover && active.Len() > 4 {
			s, _ := active.OldestActive()
			active.Deregister(s)
		}
	}
	for i := 0; i < 16; i++ {
		install(i) // reach steady state before measuring
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		install(i)
	}
}

// BenchmarkInstall must report 0 allocs/op on both steady-state paths:
// the version list lives in its inline array and gc walks without a mark
// buffer.
func BenchmarkInstall(b *testing.B) {
	b.Run("coalesce", func(b *testing.B) {
		benchmarkInstall(b, DefaultConfig(), false)
	})
	b.Run("dropoldest", func(b *testing.B) {
		benchmarkInstall(b, Config{MaxVersions: 4, Policy: DropOldest, Coalesce: true}, true)
	})
}

// TestInstallZeroAllocs asserts the acceptance bound directly for both
// steady-state paths.
func TestInstallZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks")
	}
	for name, bench := range map[string]func(*testing.B){
		"coalesce": func(b *testing.B) { benchmarkInstall(b, DefaultConfig(), false) },
		"dropoldest": func(b *testing.B) {
			benchmarkInstall(b, Config{MaxVersions: 4, Policy: DropOldest, Coalesce: true}, true)
		},
	} {
		r := testing.Benchmark(bench)
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s: Install allocates %d allocs/op, want 0", name, a)
		}
	}
}
