package mvm

import (
	"testing"

	"repro/internal/mem"
)

func TestOverheadAccounting(t *testing.T) {
	e := newEnv(Config{Policy: Unbounded, Coalesce: false})
	// Pin snapshots so versions survive, then create 4 versions on one
	// line and 1 version on another.
	for i := 0; i < 4; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		if err := e.commit(mem.Line(1), s, 1, [8]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
		r := e.clk.Begin()
		e.active.Register(r)
	}
	s := e.clk.Begin()
	e.active.Register(s)
	if err := e.commit(mem.Line(2), s, 1, [8]uint64{9}); err != nil {
		t.Fatal(err)
	}

	o := e.m.MeasureOverheads(1)
	if o.LinesAllocated != 2 {
		t.Fatalf("lines = %d, want 2", o.LinesAllocated)
	}
	if o.VersionsLive != 5 {
		t.Fatalf("versions = %d, want 5", o.VersionsLive)
	}
	if o.IndirectionBytes != 2*32 {
		t.Fatalf("indirection bytes = %d, want 64", o.IndirectionBytes)
	}
	// 64 bytes of indirection over 5*64 bytes of data = 20%.
	if o.OverheadPct < 19.9 || o.OverheadPct > 20.1 {
		t.Fatalf("overhead = %.2f%%, want 20%%", o.OverheadPct)
	}
}

func TestOverheadWorstCaseMatchesPaper(t *testing.T) {
	e := newEnv(DefaultConfig())
	// §3.2: single active line -> 50% worst case; bundling 8 lines
	// reduces it by 8x to 6.25%.
	o := e.m.MeasureOverheads(1)
	if o.BundledWorstPct != 50 {
		t.Fatalf("unbundled worst case = %.2f%%, want 50%%", o.BundledWorstPct)
	}
	o = e.m.MeasureOverheads(8)
	if o.BundledWorstPct != 6.25 {
		t.Fatalf("bundle-8 worst case = %.2f%%, want 6.25%%", o.BundledWorstPct)
	}
}

func TestOverheadFullOccupancyMatchesPaper(t *testing.T) {
	// §3.2: four versions per address -> 2*32/512 = 12.5%.
	e := newEnv(Config{Policy: Unbounded, Coalesce: false})
	for i := 0; i < 4; i++ {
		s := e.clk.Begin()
		e.active.Register(s)
		if err := e.commit(mem.Line(1), s, 1, [8]uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
		r := e.clk.Begin()
		e.active.Register(r)
	}
	o := e.m.MeasureOverheads(1)
	if o.VersionsLive != 4 {
		t.Fatalf("versions = %d, want 4", o.VersionsLive)
	}
	if o.OverheadPct != 12.5 {
		t.Fatalf("overhead = %.2f%%, want 12.5%%", o.OverheadPct)
	}
}
