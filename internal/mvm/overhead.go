package mvm

import "repro/internal/mem"

// Overheads quantifies §3.2 of the paper: the indirection layer stores,
// per cache-line address, four 32-bit version references and four 32-bit
// timestamps. With four live versions per address that is 2·32/512 =
// 12.5 % per line; in the worst case of a single live version the
// overhead is 50 % per allocated multiversioned line. Bundling B lines
// into one indirection entry divides the worst case by B at the price of
// copying whole bundles on the first write.
type Overheads struct {
	// LinesAllocated is the number of multiversioned line addresses
	// with at least one version.
	LinesAllocated int
	// VersionsLive is the total number of data versions currently held.
	VersionsLive int
	// IndirectionBytes is the version-list storage: 4 references + 4
	// timestamps of 4 bytes each per allocated line address.
	IndirectionBytes int
	// DataBytes is the storage for the versions themselves.
	DataBytes int
	// OverheadPct is IndirectionBytes as a percentage of DataBytes —
	// 12.5 % at full occupancy, 50 % in the single-version worst case.
	OverheadPct float64
	// BundledWorstPct is the worst-case overhead with the given bundle
	// factor (§3.2's example: 8 lines per bundle gives ~6 %).
	BundleFactor    int
	BundledWorstPct float64
}

// entryBytes is the per-address indirection cost: four 32-bit version
// references plus four 32-bit timestamps.
const entryBytes = 4*4 + 4*4

// MeasureOverheads reports the current §3.2 storage overheads of the
// memory, using bundleFactor lines per indirection entry for the bundled
// worst-case projection (use 1 for the unbundled architecture).
func (m *Memory) MeasureOverheads(bundleFactor int) Overheads {
	if bundleFactor < 1 {
		bundleFactor = 1
	}
	o := Overheads{BundleFactor: bundleFactor}
	m.lines.Range(func(_ uint64, slot **versionList) {
		vl := *slot
		if vl == nil || len(vl.v) == 0 {
			return
		}
		o.LinesAllocated++
		o.VersionsLive += len(vl.v)
	})
	o.IndirectionBytes = o.LinesAllocated * entryBytes
	o.DataBytes = o.VersionsLive * mem.LineBytes
	if o.DataBytes > 0 {
		o.OverheadPct = 100 * float64(o.IndirectionBytes) / float64(o.DataBytes)
	}
	// Worst case: one live version per allocated address, one entry
	// shared by bundleFactor lines.
	o.BundledWorstPct = 100 * float64(entryBytes) / float64(bundleFactor*mem.LineBytes)
	return o
}
