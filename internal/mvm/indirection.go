package mvm

import (
	"repro/internal/clock"
	"repro/internal/mem"
)

// This file implements the §3.3 capabilities of the indirection layer
// beyond multiversion concurrency control: checkpointing with rollback to
// a consistent state (speculation/resiliency) and measurement of the
// deduplication opportunity (HICAMP-style zero-line and duplicate-content
// sharing).

// Checkpoint pins the current committed state of the memory and returns a
// handle. While a checkpoint is held, garbage collection keeps every
// version the checkpoint can see, exactly as it would for a long-running
// transaction. Checkpoints make the snapshot mechanism usable for
// speculation and error recovery (§3.3).
type Checkpoint struct {
	m  *Memory
	ts clock.Timestamp
}

// Checkpoint captures the state as of the most recent timestamp. The
// caller must Release the checkpoint when done, or its versions are
// retained forever.
func (m *Memory) Checkpoint() *Checkpoint {
	ts := m.clk.Now()
	m.active.Register(ts) // pin like a long-running reader
	return &Checkpoint{m: m, ts: ts}
}

// Timestamp returns the snapshot point of the checkpoint.
func (c *Checkpoint) Timestamp() clock.Timestamp { return c.ts }

// ReadWord reads a word from the checkpointed state.
func (c *Checkpoint) ReadWord(a mem.Addr) uint64 {
	v, ok := c.m.ReadWord(a, c.ts)
	if !ok {
		// The checkpoint pins its versions, so a miss can only mean
		// the checkpoint was already released.
		panic("mvm: read from released checkpoint")
	}
	return v
}

// Release unpins the checkpoint without restoring it.
func (c *Checkpoint) Release() {
	if c.m == nil {
		return
	}
	c.m.active.Deregister(c.ts)
	c.m = nil
}

// Rollback restores the memory's visible state to the checkpoint by
// discarding every version newer than it, then releases the checkpoint.
// It must not be called while transactions are in flight — rollback is a
// recovery action, not a concurrency-control one ("allowing rollback to a
// consistent state in response to an error", §3.3).
func (c *Checkpoint) Rollback() {
	if c.m == nil {
		panic("mvm: rollback of released checkpoint")
	}
	if c.m.clk.InFlight() > 0 {
		panic("mvm: rollback with commits in flight")
	}
	c.m.lines.Range(func(_ uint64, slot **versionList) {
		vl := *slot
		if vl == nil {
			return
		}
		for len(vl.v) > 0 && vl.v[len(vl.v)-1].ts > c.ts {
			vl.v = vl.v[:len(vl.v)-1]
		}
		if len(vl.v) == 0 && !vl.truncated {
			*slot = nil
			c.m.nLines--
		}
	})
	c.Release()
}

// DedupStats measures the content-sharing opportunity of the indirection
// layer (§3.3): how many newest-version lines are all zero (the "zero
// cache line" common case) and how many are byte-identical duplicates of
// another line, i.e. could be mapped to one physical line.
type DedupStats struct {
	Lines      int // lines with at least one version
	ZeroLines  int // newest version is all zero
	DupLines   int // newest version equals some other line's newest
	UniqueData int // distinct newest-version contents
}

// SharablePct returns the percentage of lines whose physical storage the
// indirection layer could elide by sharing.
func (d DedupStats) SharablePct() float64 {
	if d.Lines == 0 {
		return 0
	}
	return 100 * float64(d.Lines-d.UniqueData) / float64(d.Lines)
}

// MeasureDedup scans the newest versions and reports the deduplication
// opportunity.
//
//sitm:allow(chargelint) offline measurement scan (§3.3 analysis), not on the simulated access path; no transaction pays for it.
func (m *Memory) MeasureDedup() DedupStats {
	var d DedupStats
	seen := make(map[[mem.WordsPerLine]uint64]int)
	m.lines.Range(func(_ uint64, slot **versionList) {
		vl := *slot
		if vl == nil || len(vl.v) == 0 {
			return
		}
		d.Lines++
		data := vl.v[len(vl.v)-1].data
		if data == ([mem.WordsPerLine]uint64{}) {
			d.ZeroLines++
		}
		seen[data]++
	})
	d.UniqueData = len(seen)
	for _, n := range seen {
		if n > 1 {
			d.DupLines += n
		}
	}
	return d
}
