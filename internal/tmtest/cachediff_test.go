package tmtest_test

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// TestCacheDifferential pins the memory-hierarchy fast path at the engine
// level: for every registered engine, across thread counts and seeds, the
// way-predicted cache model and the verbatim reference model
// (cache.SlowHierarchy, selected by EngineOptions.ReferenceCache) produce
// bit-identical engine statistics, makespans, final memory state and
// cache statistics. Any divergence means the fast path changed a charged
// latency or an eviction, which would silently shift every figure in the
// evaluation. The per-stream property tests live in internal/cache and
// the report-level gate in internal/harness; this sweep proves the
// equivalence survives real engine access patterns, including the
// commit-time invalidation traffic.
func TestCacheDifferential(t *testing.T) {
	for _, name := range tm.Engines() {
		for _, threads := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/t%d/s%d", name, threads, seed), func(t *testing.T) {
					fast := runEngineWorkload(t, name, tm.EngineOptions{}, threads, seed, (*sched.Sim).Run)
					slow := runEngineWorkload(t, name, tm.EngineOptions{ReferenceCache: true}, threads, seed, (*sched.Sim).Run)
					if fast != slow {
						t.Errorf("fast cache %+v\nreference cache %+v", fast, slow)
					}
				})
			}
		}
	}
}

// TestCacheStatsAccounting audits the hit/miss bookkeeping for every
// registered engine: each simulated access resolves at exactly one level,
// so the per-level hit counts plus memory accesses must sum to the total
// access count (translation-cache probes are accounted separately, as
// they ride along with a versioned access rather than resolving it).
func TestCacheStatsAccounting(t *testing.T) {
	for _, name := range tm.Engines() {
		t.Run(name, func(t *testing.T) {
			res := runEngineWorkload(t, name, tm.EngineOptions{}, 4, 1, (*sched.Sim).Run)
			cs := res.cache
			if cs.Accesses == 0 {
				t.Fatalf("%s reported no simulated cache accesses", name)
			}
			if got := cs.L1Hits + cs.L2Hits + cs.L3Hits + cs.MemAccesses; got != cs.Accesses {
				t.Errorf("%s cache stats do not balance: L1 %d + L2 %d + L3 %d + mem %d = %d, want Accesses %d",
					name, cs.L1Hits, cs.L2Hits, cs.L3Hits, cs.MemAccesses, got, cs.Accesses)
			}
		})
	}
}
