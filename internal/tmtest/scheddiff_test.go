package tmtest_test

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// schedResult is everything the evaluation reports about one simulation:
// the full engine statistics (commits, read-only commits, aborts by kind,
// stalls, backoff cycles) plus the simulated makespan. Stats holds only
// fixed-size fields, so results compare with ==.
type schedResult struct {
	stats    tm.Stats
	makespan uint64
	state    uint64      // xor over final memory words, pins the data too
	cache    cache.Stats // aggregate simulated-cache stats, when the engine reports them
}

// cacheStatser is implemented by every engine that simulates the memory
// hierarchy; the sweeps use it to compare and audit cache statistics
// without per-engine knowledge.
type cacheStatser interface {
	CacheStats() cache.Stats
}

// runEngineWorkload drives a mixed workload (contended counters plus bank
// transfers) on a fresh engine under the given conductor — the inline
// fast-path scheduler (*Sim).Run or the reference (*Sim).Slow.
func runEngineWorkload(t *testing.T, name string, opts tm.EngineOptions, threads int, seed uint64, run func(*sched.Sim, func(*sched.Thread))) schedResult {
	t.Helper()
	e, err := tm.NewEngine(name, opts)
	if err != nil {
		t.Fatalf("constructing %s: %v", name, err)
	}
	const accounts = 6
	addr := func(i int) mem.Addr { return mem.Addr((i + 1) * mem.LineBytes) }
	for i := 0; i < accounts; i++ {
		e.NonTxWrite(addr(i), 100)
	}
	s := sched.New(threads, seed)
	run(s, func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 30; i++ {
			if r.Uint64()%2 == 0 {
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					a := addr(r.Intn(accounts))
					tx.Write(a, tx.Read(a)+1)
					return nil
				})
			} else {
				from, to := addr(r.Intn(accounts)), addr(r.Intn(accounts))
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					balance := tx.Read(from)
					if from == to || balance < 3 {
						return nil
					}
					tx.Write(from, balance-3)
					tx.Write(to, tx.Read(to)+3)
					return nil
				})
			}
		}
	})
	res := schedResult{stats: *e.Stats(), makespan: s.Makespan()}
	if cs, ok := e.(cacheStatser); ok {
		res.cache = cs.CacheStats()
	}
	for i := 0; i < accounts; i++ {
		res.state ^= e.NonTxRead(addr(i)) * uint64(i+1)
	}
	return res
}

// TestSchedulerDifferential pins the PR's core invariant end to end: for
// every registered engine, across thread counts and seeds, the inline
// fast-path conductor and the reference linear-scan conductor produce
// bit-identical engine statistics, makespans and final memory state. Any
// divergence here means the Tick fast path changed the schedule, which
// would silently shift every figure in the evaluation.
func TestSchedulerDifferential(t *testing.T) {
	for _, name := range tm.Engines() {
		for _, threads := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/t%d/s%d", name, threads, seed), func(t *testing.T) {
					fast := runEngineWorkload(t, name, tm.EngineOptions{}, threads, seed, (*sched.Sim).Run)
					slow := runEngineWorkload(t, name, tm.EngineOptions{}, threads, seed, (*sched.Sim).Slow)
					if fast != slow {
						t.Errorf("fast conductor %+v\nslow conductor %+v", fast, slow)
					}
				})
			}
		}
	}
}

// TestBatchedSchedulerDifferential is the same registry-wide pin for
// horizon batching: for every engine the batched conductor and the same
// conductor with batching disabled (SetPerEvent) must agree on engine
// statistics, makespan, final memory and cache statistics. It also guards
// that batching is actually engaged where it is supposed to be — for the
// plain SI-TM engine with fast sets and the fast cache model — by
// asserting the coroutine-switch count drops against the per-event run.
func TestBatchedSchedulerDifferential(t *testing.T) {
	type run struct {
		res   schedResult
		stats sched.Stats
	}
	drive := func(t *testing.T, name string, threads int, seed uint64, perEvent bool) run {
		var st sched.Stats
		res := runEngineWorkload(t, name, tm.EngineOptions{}, threads, seed,
			func(s *sched.Sim, body func(*sched.Thread)) {
				s.SetPerEvent(perEvent)
				s.Run(body)
				st = s.Stats()
			})
		return run{res: res, stats: st}
	}
	for _, name := range tm.Engines() {
		for _, threads := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/t%d/s%d", name, threads, seed), func(t *testing.T) {
					batched := drive(t, name, threads, seed, false)
					perEvent := drive(t, name, threads, seed, true)
					if batched.res != perEvent.res {
						t.Errorf("batched conductor %+v\nper-event conductor %+v", batched.res, perEvent.res)
					}
					if perEvent.stats.BatchedEvents != 0 {
						t.Errorf("per-event conductor batched %d events", perEvent.stats.BatchedEvents)
					}
					// A single thread is always the heap root: its charges
					// stay on the inline-tick path and no quantum ever needs
					// batching, so the engagement assertions start at 2.
					if name == "SI-TM" && threads > 1 && batched.stats.BatchedEvents == 0 {
						t.Errorf("SI-TM ran no batched events: %+v", batched.stats)
					}
					if name == "SI-TM" && threads > 1 && batched.stats.CoroutineSwitches >= perEvent.stats.CoroutineSwitches {
						t.Errorf("batched conductor switched %d times, per-event %d: batching should reduce switches",
							batched.stats.CoroutineSwitches, perEvent.stats.CoroutineSwitches)
					}
				})
			}
		}
	}
}
