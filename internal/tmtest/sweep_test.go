package tmtest_test

import (
	"testing"

	"repro/internal/tm"
	"repro/internal/tmtest"

	// Engines under test self-register with the tm registry.
	_ "repro/internal/core"
	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

// TestRegistrySweep runs the conformance suite against every engine the
// tm registry knows, by registered name rather than a hard-coded list:
// an engine added in a future PR is covered the moment it self-registers.
// The isolation suite is chosen by probing the engine's behaviour on the
// write-skew litmus, so the sweep needs no per-engine knowledge at all.
func TestRegistrySweep(t *testing.T) {
	names := tm.Engines()
	if len(names) < 4 {
		t.Fatalf("registry lists %v; expected at least 2PL, SONTM, SI-TM and SSI-TM", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			f := func() tm.Engine {
				e, err := tm.NewEngine(name, tm.EngineOptions{})
				if err != nil {
					t.Fatalf("constructing %s: %v", name, err)
				}
				return e
			}
			tmtest.RunConformance(t, f)
			iso := tmtest.DetectIsolation(f)
			t.Logf("%s probes as %s", name, iso)
			switch iso {
			case tmtest.SnapshotIsolation:
				tmtest.RunSnapshotIsolationSuite(t, f)
			case tmtest.Serializable:
				tmtest.RunSerializableSuite(t, f)
			}
		})
	}
}

// TestRegistrySweepOptions re-runs conformance under the engine options
// the evaluation sweeps (word granularity, unbounded versions), again for
// every registered engine; engines ignore options that do not apply.
func TestRegistrySweepOptions(t *testing.T) {
	opts := map[string]tm.EngineOptions{
		"word-granularity":   {WordGranularity: true},
		"unbounded-versions": {UnboundedVersions: true},
		"reference-store":    {ReferenceStore: true},
	}
	for _, name := range tm.Engines() {
		for label, o := range opts {
			o := o
			t.Run(name+"/"+label, func(t *testing.T) {
				tmtest.RunConformance(t, func() tm.Engine {
					e, err := tm.NewEngine(name, o)
					if err != nil {
						t.Fatalf("constructing %s: %v", name, err)
					}
					return e
				})
			})
		}
	}
}
