package tmtest

// Isolation classifies an engine's observable isolation level, probed
// behaviourally rather than declared: the registry sweep uses it to pick
// the right suite for engines it has never heard of.
type Isolation int

const (
	// SnapshotIsolation engines permit the write-skew anomaly: both
	// Listing 1 transactions commit (§2, §5).
	SnapshotIsolation Isolation = iota
	// Serializable engines reject the write-skew schedule: at least one
	// of the two transactions aborts.
	Serializable
)

func (i Isolation) String() string {
	switch i {
	case SnapshotIsolation:
		return "snapshot-isolation"
	case Serializable:
		return "serializable"
	}
	return "unknown"
}

// DetectIsolation probes a fresh engine with the Listing 1 write-skew
// schedule and classifies the result. Engines that permit the anomaly
// run under snapshot isolation; engines that abort it are (at least
// conflict-) serializable on this litmus.
func DetectIsolation(f Factory) Isolation {
	aborts, _ := skewSchedule(f())
	if aborts == 0 {
		return SnapshotIsolation
	}
	return Serializable
}
