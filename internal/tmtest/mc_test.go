package tmtest_test

import (
	"testing"

	"repro/internal/mc"
	"repro/internal/tm"
	"repro/internal/tmtest"

	// Engines under test self-register with the tm registry.
	_ "repro/internal/core"
	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

// TestIsolationProbesAgree pins the repo's two behavioural isolation
// probes to each other for every registered engine: DetectIsolation's
// single-schedule write-skew probe (which picks the conformance suite)
// and mc.EngineFamily's exhaustive schedule-space classification (which
// picks the model-checking contract). If an engine change made them
// drift — an engine that aborts the one probed schedule but admits write
// skew under another interleaving, say — the suites and sitm-check would
// silently test different things.
func TestIsolationProbesAgree(t *testing.T) {
	for _, name := range tm.Engines() {
		t.Run(name, func(t *testing.T) {
			iso := tmtest.DetectIsolation(func() tm.Engine {
				e, err := tm.NewEngine(name, tm.EngineOptions{})
				if err != nil {
					t.Fatalf("constructing %s: %v", name, err)
				}
				return e
			})
			fam, err := mc.EngineFamily(name, tm.EngineOptions{})
			if err != nil {
				t.Fatalf("EngineFamily(%s): %v", name, err)
			}
			agree := (iso == tmtest.SnapshotIsolation) == (fam == mc.FamilySI)
			if !agree {
				t.Fatalf("probes drifted: DetectIsolation says %s, mc.EngineFamily says %s", iso, fam)
			}
		})
	}
}
