package tmtest_test

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// TestAccessSetDifferential pins the signature-backed access tracking
// (internal/aset) at the engine level: for every registered engine, across
// thread counts and seeds, the aset fast path and the verbatim map-based
// reference implementation (each engine's slow.go, selected by
// EngineOptions.ReferenceSets) produce bit-identical engine statistics,
// makespans, final memory state and cache statistics. Any divergence means
// the fast path changed a conflict verdict, a write-back value or a
// charged cost, which would silently shift every figure in the evaluation.
// The per-structure property tests live in internal/aset and the
// report-level gate in internal/harness; this sweep proves the equivalence
// survives real engine access patterns, including commit-time broadcast
// probes into concurrent transactions' sets.
func TestAccessSetDifferential(t *testing.T) {
	for _, name := range tm.Engines() {
		for _, threads := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/t%d/s%d", name, threads, seed), func(t *testing.T) {
					fast := runEngineWorkload(t, name, tm.EngineOptions{}, threads, seed, (*sched.Sim).Run)
					slow := runEngineWorkload(t, name, tm.EngineOptions{ReferenceSets: true}, threads, seed, (*sched.Sim).Run)
					if fast != slow {
						t.Errorf("fast sets %+v\nreference sets %+v", fast, slow)
					}
				})
			}
		}
	}
}

// accessSetAuditor is implemented by engines that can verify no access-set
// state outlives its transaction (empty slabs and reader tables at
// quiescence).
type accessSetAuditor interface {
	AuditAccessSets() error
}

// TestAccessSetQuiescence audits the access-set lifecycle for every
// registered engine: after a workload drains, no live read/write-set
// entries and no live reader-table records may remain. A leak here means a
// recycled transaction could observe a predecessor's accesses — the class
// of bug the epoch stamps exist to prevent — or that set memory grows
// without bound across transactions.
func TestAccessSetQuiescence(t *testing.T) {
	for _, name := range tm.Engines() {
		for _, threads := range []int{1, 4, 8} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/t%d/s%d", name, threads, seed), func(t *testing.T) {
					e, err := tm.NewEngine(name, tm.EngineOptions{})
					if err != nil {
						t.Fatalf("constructing %s: %v", name, err)
					}
					auditor, ok := e.(accessSetAuditor)
					if !ok {
						t.Fatalf("%s does not implement AuditAccessSets", name)
					}
					const accounts = 6
					addr := func(i int) mem.Addr { return mem.Addr((i + 1) * mem.LineBytes) }
					for i := 0; i < accounts; i++ {
						e.NonTxWrite(addr(i), 100)
					}
					s := sched.New(threads, seed)
					s.Run(func(th *sched.Thread) {
						r := th.Rand()
						for i := 0; i < 30; i++ {
							_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
								a, b := addr(r.Intn(accounts)), addr(r.Intn(accounts))
								v := tx.Read(a)
								if r.Uint64()%4 == 0 {
									return nil // read-only
								}
								tx.Write(b, v+1)
								return nil
							})
						}
					})
					if err := auditor.AuditAccessSets(); err != nil {
						t.Errorf("%s leaked access-set state: %v", name, err)
					}
				})
			}
		}
	}
}
