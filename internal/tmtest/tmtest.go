// Package tmtest provides a conformance suite that every transactional
// memory engine in this repository must pass: atomicity, consistency of
// snapshots or doom-checking, no lost updates, read-your-own-writes,
// explicit aborts, and determinism. The engine packages invoke it from
// their own tests so a behavioural regression in any engine fails loudly
// at the engine that caused it.
package tmtest

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
)

// Factory builds a fresh engine instance per test case.
type Factory func() tm.Engine

// addr returns the word address of line i (one object per line).
func addr(i int) mem.Addr { return mem.Addr(i * mem.LineBytes) }

// RunConformance runs the whole suite against engines built by f.
func RunConformance(t *testing.T, f Factory) {
	t.Helper()
	t.Run("ReadYourOwnWrites", func(t *testing.T) { testReadYourOwnWrites(t, f) })
	t.Run("AtomicVisibility", func(t *testing.T) { testAtomicVisibility(t, f) })
	t.Run("NoLostUpdates", func(t *testing.T) { testNoLostUpdates(t, f) })
	t.Run("ExplicitAbortRollsBack", func(t *testing.T) { testExplicitAbort(t, f) })
	t.Run("ReadOnlyCommits", func(t *testing.T) { testReadOnlyCommits(t, f) })
	t.Run("NonTxAccess", func(t *testing.T) { testNonTxAccess(t, f) })
	t.Run("Determinism", func(t *testing.T) { testDeterminism(t, f) })
	t.Run("BankInvariant", func(t *testing.T) { testBankInvariant(t, f) })
	t.Run("AbortErrorsCarryKind", func(t *testing.T) { testAbortKinds(t, f) })
}

func testReadYourOwnWrites(t *testing.T, f Factory) {
	e := f()
	sched.New(1, 1).Run(func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 11)
		tx.Write(addr(1)+8, 12) // second word, same line
		if tx.Read(addr(1)) != 11 || tx.Read(addr(1)+8) != 12 {
			t.Error("transaction cannot read its own writes")
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if e.NonTxRead(addr(1)) != 11 || e.NonTxRead(addr(1)+8) != 12 {
		t.Error("committed words lost")
	}
}

func testAtomicVisibility(t *testing.T, f Factory) {
	// A transaction writing two lines becomes visible all-or-nothing:
	// concurrent observers running under the retry loop never see one
	// line updated without the other.
	e := f()
	a, b := addr(1), addr(2)
	torn := false
	s := sched.New(4, 5)
	s.Run(func(th *sched.Thread) {
		if th.ID() == 0 {
			for i := uint64(1); i <= 20; i++ {
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					tx.Write(a, i)
					tx.Write(b, i)
					return nil
				})
			}
			return
		}
		for i := 0; i < 30; i++ {
			var va, vb uint64
			_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				va = tx.Read(a)
				vb = tx.Read(b)
				return nil
			})
			if va != vb {
				torn = true
			}
		}
	})
	if torn {
		t.Error("observed a torn (non-atomic) update")
	}
}

func testNoLostUpdates(t *testing.T, f Factory) {
	e := f()
	const perThread = 30
	s := sched.New(4, 7)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < perThread; i++ {
			err := tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				tx.Write(addr(1), tx.Read(addr(1))+1)
				return nil
			})
			if err != nil {
				t.Errorf("Atomic: %v", err)
			}
		}
	})
	if got := e.NonTxRead(addr(1)); got != 4*perThread {
		t.Errorf("counter = %d, want %d (lost or duplicated updates)", got, 4*perThread)
	}
}

func testExplicitAbort(t *testing.T, f Factory) {
	e := f()
	e.NonTxWrite(addr(1), 5)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		tx := e.Begin(th)
		tx.Write(addr(1), 99)
		tx.Abort()
	})
	if e.NonTxRead(addr(1)) != 5 {
		t.Error("aborted write leaked")
	}
	if e.Stats().Aborts[tm.AbortExplicit] != 1 {
		t.Error("explicit abort not counted")
	}
}

func testReadOnlyCommits(t *testing.T, f Factory) {
	e := f()
	e.NonTxWrite(addr(1), 1)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		tx := e.Begin(th)
		_ = tx.Read(addr(1))
		if err := tx.Commit(); err != nil {
			t.Errorf("read-only commit failed: %v", err)
		}
	})
	if e.Stats().ReadOnly != 1 || e.Stats().Commits != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func testNonTxAccess(t *testing.T, f Factory) {
	e := f()
	e.NonTxWrite(addr(3), 7)
	if e.NonTxRead(addr(3)) != 7 {
		t.Error("non-transactional round trip failed")
	}
	sched.New(1, 1).Run(func(th *sched.Thread) {
		tx := e.Begin(th)
		if tx.Read(addr(3)) != 7 {
			t.Error("initialisation data invisible to transactions")
		}
		_ = tx.Commit()
	})
}

func testDeterminism(t *testing.T, f Factory) {
	run := func() (uint64, uint64, uint64) {
		e := f()
		s := sched.New(4, 11)
		s.Run(func(th *sched.Thread) {
			for i := 0; i < 25; i++ {
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					a := addr(1 + th.Rand().Intn(4))
					tx.Write(a, tx.Read(a)+1)
					return nil
				})
			}
		})
		return e.Stats().Commits, e.Stats().TotalAborts(), s.Makespan()
	}
	c1, a1, m1 := run()
	c2, a2, m2 := run()
	if c1 != c2 || a1 != a2 || m1 != m2 {
		t.Errorf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, a1, m1, c2, a2, m2)
	}
}

func testBankInvariant(t *testing.T, f Factory) {
	// Transfers between accounts conserve the total. This holds under
	// snapshot isolation too: transfers are read-modify-write on both
	// accounts, so every interleaving is a write-write conflict.
	e := f()
	const accounts = 8
	for i := 0; i < accounts; i++ {
		e.NonTxWrite(addr(i+1), 100)
	}
	s := sched.New(4, 13)
	s.Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 40; i++ {
			from := addr(1 + r.Intn(accounts))
			to := addr(1 + r.Intn(accounts))
			amount := uint64(1 + r.Intn(10))
			_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				balance := tx.Read(from)
				if balance < amount || from == to {
					return nil
				}
				tx.Write(from, balance-amount)
				tx.Write(to, tx.Read(to)+amount)
				return nil
			})
		}
	})
	var total uint64
	for i := 0; i < accounts; i++ {
		total += e.NonTxRead(addr(i + 1))
	}
	if total != accounts*100 {
		t.Errorf("total = %d, want %d (money created or destroyed)", total, accounts*100)
	}
}

func testAbortKinds(t *testing.T, f Factory) {
	// Two concurrent writers to the same line: the losing commit (or
	// doomed victim) must report a classified abort, not success.
	e := f()
	failures := 0
	var kinds []tm.AbortKind
	sched.New(2, 17).Run(func(th *sched.Thread) {
		defer func() {
			if r := recover(); r != nil {
				failures++ // eager doom via signal is acceptable
			}
		}()
		tx := e.Begin(th)
		// Read-modify-write: unlike blind writes (which conflict
		// serializability may legitimately order last-writer-wins),
		// overlapping RMWs cannot both commit under any engine. The
		// long pauses force both reads to register before either
		// commit, so the transactions genuinely overlap.
		v := tx.Read(addr(1))
		th.Tick(300)
		tx.Write(addr(1), v+uint64(th.ID())+1)
		th.Tick(300)
		if err := tx.Commit(); err != nil {
			failures++
			if ab, ok := err.(*tm.AbortError); ok {
				kinds = append(kinds, ab.Kind)
			} else {
				t.Errorf("commit error is not *tm.AbortError: %v", err)
			}
		}
	})
	if failures == 0 {
		t.Error("conflicting writers both succeeded")
	}
	for _, k := range kinds {
		if k == tm.AbortExplicit {
			t.Errorf("conflict abort misclassified as explicit")
		}
	}
}
