package tmtest_test

import (
	"testing"

	"repro/internal/oltp"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// TestRegistrySweepOLTP runs one small serving-tier cell on every engine
// the registry knows: the workload invariant must hold, and the
// commit-latency histogram must account for exactly the committed
// transactions. Like TestRegistrySweep, an engine added in a future PR
// is covered the moment it self-registers.
func TestRegistrySweepOLTP(t *testing.T) {
	for _, name := range tm.Engines() {
		t.Run(name, func(t *testing.T) {
			w := oltp.NewKV(0.9)
			w.Keys = 1 << 14
			w.TxnsPerThread = 12
			e, err := tm.NewEngine(name, tm.EngineOptions{})
			if err != nil {
				t.Fatalf("constructing %s: %v", name, err)
			}
			m := txlib.NewMem(e)
			w.Setup(m, 4)
			bo := tm.DefaultBackoff()
			sched.New(4, 7).Run(func(th *sched.Thread) { w.Run(m, th, bo) })
			if msg := w.Validate(m); msg != "" {
				t.Fatal(msg)
			}
			st := e.Stats()
			if st.Commits == 0 {
				t.Fatal("no commits")
			}
			if got := st.CommitHist.Total(); got != st.Commits {
				t.Fatalf("commit histogram holds %d observations, stats count %d commits", got, st.Commits)
			}
		})
	}
}
