package tmtest

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// RunSnapshotIsolationSuite verifies the behaviours that define snapshot
// isolation (§2, §4): reads come from a begin-time snapshot, read-write
// conflicts never abort, read-only transactions always commit — and the
// write-skew anomaly is permitted (§5). Run it against SI-TM only.
func RunSnapshotIsolationSuite(t *testing.T, f Factory) {
	t.Helper()
	t.Run("SnapshotStability", func(t *testing.T) { testSnapshotStability(t, f) })
	t.Run("ReadWriteConflictCommits", func(t *testing.T) { testRWConflictCommits(t, f) })
	t.Run("ReadOnlyNeverAborts", func(t *testing.T) { testReadOnlyNeverAborts(t, f) })
	t.Run("WriteSkewPermitted", func(t *testing.T) { testWriteSkewPermitted(t, f) })
}

// RunSerializableSuite verifies serializability: the write-skew anomaly
// must be rejected. Run it against 2PL, SONTM and SSI-TM.
func RunSerializableSuite(t *testing.T, f Factory) {
	t.Helper()
	t.Run("WriteSkewRejected", func(t *testing.T) { testWriteSkewRejected(t, f) })
	t.Run("InvariantPreservedUnderStress", func(t *testing.T) { testInvariantStress(t, f) })
}

func testSnapshotStability(t *testing.T, f Factory) {
	e := f()
	e.NonTxWrite(addr(1), 10)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		reader := e.Begin(th)
		if v := reader.Read(addr(1)); v != 10 {
			t.Fatalf("first read = %d", v)
		}
		w := e.Begin(th)
		w.Write(addr(1), 99)
		if err := w.Commit(); err != nil {
			t.Fatalf("writer: %v", err)
		}
		if v := reader.Read(addr(1)); v != 10 {
			t.Errorf("snapshot unstable: reread = %d, want 10", v)
		}
		if err := reader.Commit(); err != nil {
			t.Errorf("reader: %v", err)
		}
	})
}

func testRWConflictCommits(t *testing.T, f Factory) {
	e := f()
	e.NonTxWrite(addr(1), 1)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		t1 := e.Begin(th)
		_ = t1.Read(addr(1))
		t1.Write(addr(2), 2)
		t2 := e.Begin(th)
		t2.Write(addr(1), 5)
		if err := t2.Commit(); err != nil {
			t.Fatalf("t2: %v", err)
		}
		if err := t1.Commit(); err != nil {
			t.Errorf("read-write conflict aborted a transaction under SI: %v", err)
		}
	})
}

func testReadOnlyNeverAborts(t *testing.T, f Factory) {
	e := f()
	s := sched.New(4, 3)
	s.Run(func(th *sched.Thread) {
		if th.ID() == 0 {
			for i := uint64(0); i < 30; i++ {
				_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
					tx.Write(addr(1+int(i%8)), i)
					return nil
				})
			}
			return
		}
		for i := 0; i < 30; i++ {
			tx := e.Begin(th)
			for j := 0; j < 8; j++ {
				_ = tx.Read(addr(1 + j))
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("read-only transaction aborted: %v", err)
			}
		}
	})
}

// skewSchedule runs the Listing 1 pattern and returns how many of the two
// transactions aborted and the final sum.
func skewSchedule(e tm.Engine) (aborts int, sum uint64) {
	a, b := addr(1), addr(2)
	e.NonTxWrite(a, 60)
	e.NonTxWrite(b, 60)
	sched.New(2, 5).Run(func(th *sched.Thread) {
		target := a
		if th.ID() == 1 {
			target = b
		}
		failed := true
		func() {
			defer func() { recover() }()
			tx := e.Begin(th)
			if tx.Read(a)+tx.Read(b) > 100 {
				th.Tick(200) // force overlap of both checks
				tx.Write(target, tx.Read(target)-100)
			}
			failed = tx.Commit() != nil
		}()
		if failed {
			aborts++
		}
	})
	return aborts, e.NonTxRead(a) + e.NonTxRead(b)
}

func testWriteSkewPermitted(t *testing.T, f Factory) {
	aborts, _ := skewSchedule(f())
	if aborts != 0 {
		t.Errorf("SI must permit the write skew (both commit); aborts=%d", aborts)
	}
}

func testWriteSkewRejected(t *testing.T, f Factory) {
	aborts, sum := skewSchedule(f())
	if aborts == 0 {
		t.Fatalf("serializable engine permitted write skew (sum=%d)", sum)
	}
	// The surviving state satisfies the invariant (unsigned underflow
	// would produce a huge sum).
	if sum < 20 || sum > 120 {
		t.Fatalf("invariant violated after rejection: sum=%d", sum)
	}
}

func testInvariantStress(t *testing.T, f Factory) {
	e := f()
	a, b := addr(1), addr(2)
	e.NonTxWrite(a, 500)
	e.NonTxWrite(b, 500)
	s := sched.New(4, 7)
	s.Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 25; i++ {
			target := a
			if r.Intn(2) == 1 {
				target = b
			}
			_ = tm.Atomic(e, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				if tx.Read(a)+tx.Read(b) >= 100 {
					tx.Write(target, tx.Read(target)-10)
				}
				return nil
			})
		}
	})
	sum := e.NonTxRead(a) + e.NonTxRead(b)
	if sum < 80 || sum > 1000 {
		t.Fatalf("invariant broken under stress: sum=%d", sum)
	}
}
