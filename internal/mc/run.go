package mc

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sched"
	"repro/internal/tm"
)

// HistoryVerdict is one distinct history of a litmus exploration with its
// axiom-check verdict and the number of schedules that produced it.
type HistoryVerdict struct {
	Key   string
	Count int
	Hist  *History
	Class Class
}

// Result is the outcome of exploring one (litmus program, engine, option)
// cell.
type Result struct {
	Program  Program
	Engine   string
	Explored ExploreStats
	// Histories holds the distinct histories in sorted key order.
	Histories []HistoryVerdict
	// Admitted is the union anomaly fingerprint over all histories.
	Admitted Anomalies
	// AllSI, AllSnapshotReads and AllSerializable aggregate the verdicts.
	AllSI, AllSnapshotReads, AllSerializable bool
}

// HistoryKeys returns the sorted distinct history keys — the history
// *set*, which the Reference* option variants must reproduce exactly.
func (r *Result) HistoryKeys() []string {
	keys := make([]string, len(r.Histories))
	for i := range r.Histories {
		keys[i] = r.Histories[i].Key
	}
	return keys
}

// releaser is the optional engine surface returning pooled cache arrays
// to the scratch between schedules (same seam as internal/exp).
type releaser interface{ ReleaseCaches() }

// RunLitmus explores the schedule space of prog on the named engine and
// classifies every distinct history. A fresh engine and machine are built
// per schedule (sharing only the cache scratch), so schedules are fully
// independent; the explorer's replay check would catch any state leak as
// a determinism divergence.
func RunLitmus(prog Program, engine string, eopts tm.EngineOptions, opts Options) (*Result, error) {
	if _, err := tm.NewEngine(engine, eopts); err != nil {
		return nil, err
	}
	if eopts.CacheScratch == nil {
		eopts.CacheScratch = cache.NewScratch()
	}
	threads := len(prog.Threads)

	type entry struct {
		hist  *History
		count int
	}
	byKey := make(map[string]*entry)
	var h History

	res := &Result{Program: prog, Engine: engine}
	res.Explored = Explore(opts, func(c sched.Chooser) {
		e, err := tm.NewEngine(engine, eopts)
		if err != nil {
			panic(fmt.Sprintf("mc: %v", err))
		}
		for v := range prog.Init {
			e.NonTxWrite(varAddr(v), prog.Init[v])
		}
		h.Ops = h.Ops[:0]
		s := sched.New(threads, 1)
		s.RunChoose(func(th *sched.Thread) {
			id := th.ID()
			h.append(Op{Txn: id, Kind: OpBegin})
			err := tm.RunOnce(e, th, func(tx tm.Txn) error {
				prog.Threads[id](&Tx{id: id, txn: tx, h: &h})
				return nil
			})
			if err == nil {
				h.append(Op{Txn: id, Kind: OpCommit})
			} else {
				h.append(Op{Txn: id, Kind: OpAbort})
			}
		}, c)
		key := h.Key()
		if ent := byKey[key]; ent != nil {
			ent.count++
		} else {
			byKey[key] = &entry{hist: h.Clone(), count: 1}
		}
		if r, ok := e.(releaser); ok {
			r.ReleaseCaches()
		}
	})

	var keys []string
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res.AllSI, res.AllSnapshotReads, res.AllSerializable = true, true, true
	for _, k := range keys {
		ent := byKey[k]
		checkWriteValues(prog, ent.hist)
		cl := Classify(ent.hist, prog.Init, threads)
		res.Histories = append(res.Histories, HistoryVerdict{
			Key: k, Count: ent.count, Hist: ent.hist, Class: cl,
		})
		res.Admitted = res.Admitted.Union(cl.Anomalies())
		res.AllSI = res.AllSI && cl.SI
		res.AllSnapshotReads = res.AllSnapshotReads && cl.SnapshotReads
		res.AllSerializable = res.AllSerializable && cl.Serializable
	}
	return res, nil
}

// checkWriteValues enforces the litmus value discipline the value-
// resolved axiom checks rely on: within one history, the committed final
// writes to a variable and its initial value must be pairwise distinct.
// A collision is a bug in the litmus program, not in an engine.
func checkWriteValues(prog Program, h *History) {
	vs := views(h, len(prog.Threads))
	for v := range prog.Init {
		vals := []uint64{prog.Init[v]}
		for i := range vs {
			if !vs[i].committed {
				continue
			}
			if val, ok := vs[i].wrote(v); ok {
				for _, seen := range vals {
					if seen == val {
						panic(fmt.Sprintf("mc: litmus %q writes duplicate value %d to %s — reads-from would be ambiguous",
							prog.Name, val, prog.VarNames[v]))
					}
				}
				vals = append(vals, val)
			}
		}
	}
}

// Family is an engine's behaviourally derived isolation family.
type Family int

const (
	// FamilySerializable engines never admit a non-serializable history.
	FamilySerializable Family = iota
	// FamilySI engines admit SI-permitted anomalies (write skew).
	FamilySI
)

func (f Family) String() string {
	if f == FamilySI {
		return "snapshot-isolation"
	}
	return "serializable"
}

// EngineFamily classifies an engine by exhaustively exploring the
// write-skew litmus: an engine that admits the anomaly somewhere in that
// schedule space runs under snapshot isolation. It is the model-checking
// counterpart of tmtest.DetectIsolation's single-schedule probe; the
// registry sweep pins the two to agree for every engine.
func EngineFamily(engine string, eopts tm.EngineOptions) (Family, error) {
	prog, err := ProgramByName("write-skew")
	if err != nil {
		return 0, err
	}
	r, err := RunLitmus(prog, engine, eopts, Options{})
	if err != nil {
		return 0, err
	}
	if r.Admitted.WriteSkew {
		return FamilySI, nil
	}
	return FamilySerializable, nil
}

// Violations checks the result against the acceptance expectations for
// an engine of the given family and returns human-readable failures —
// empty means the cell passed.
//
// Unconditionally, for every engine: every history's committed
// transactions must satisfy the SI axioms (snapshot reads and
// first-committer-wins), and the lost-update, non-snapshot-read and
// long-fork anomalies must never appear (long fork because these engines
// implement strong SI — see Program.SIAdmits). Serializable engines must
// additionally admit only serializable histories; their aborted attempts
// may zombie-read (eager 2PL dooms readers lazily and writes in place,
// so a doomed attempt can observe the dooming writer's state — opacity
// is exactly what the paper's MVM adds). SI engines must be opaque, and
// must admit exactly the program's expected anomalies when exploration
// was exhaustive — and no unexpected ones when it was bounded.
func (r *Result) Violations(fam Family) []string {
	var out []string
	for i := range r.Histories {
		hv := &r.Histories[i]
		switch {
		case !hv.Class.SnapshotReads:
			out = append(out, fmt.Sprintf("history %q: committed reads not explainable by any snapshot", hv.Key))
		case !hv.Class.SI:
			out = append(out, fmt.Sprintf("history %q: violates first-committer-wins", hv.Key))
		case fam == FamilySI && !hv.Class.Opaque:
			out = append(out, fmt.Sprintf("history %q: aborted attempt observed a non-snapshot state (MVM opacity)", hv.Key))
		}
		if fam == FamilySerializable && !hv.Class.Serializable {
			out = append(out, fmt.Sprintf("history %q: serializable engine admitted a non-serializable history", hv.Key))
		}
	}
	if r.Admitted.LostUpdate {
		out = append(out, "lost update admitted")
	}
	if r.Admitted.LongFork {
		out = append(out, "long fork admitted (strong SI must order all snapshots along one commit order)")
	}
	if fam == FamilySI {
		want := r.Program.SIAdmits
		if r.Admitted.WriteSkew && !want.WriteSkew {
			out = append(out, "write skew admitted where the litmus forbids it")
		}
		if r.Explored.Exhausted && want.WriteSkew && !r.Admitted.WriteSkew {
			out = append(out, "expected write skew not admitted despite exhaustive exploration")
		}
	}
	return out
}
