package mc

import (
	"fmt"

	"repro/internal/sched"
)

// choice is one recorded scheduling decision: which runnable thread was
// picked, out of how many.
type choice struct {
	pick   int
	fanout int
}

// pathChooser drives one complete schedule: it replays a decision prefix,
// then always picks the first runnable thread, recording every decision's
// fanout so the explorer can backtrack. Replay is verified — a fanout
// that differs from the recorded one means the simulation is not a
// deterministic function of the decision sequence, which would invalidate
// the whole enumeration, so it panics rather than continuing.
type pathChooser struct {
	prefix []choice
	depth  int
	path   []choice
}

// Choose implements sched.Chooser.
func (c *pathChooser) Choose(runnable []*sched.Thread) int {
	pick := 0
	if c.depth < len(c.prefix) {
		p := c.prefix[c.depth]
		if p.fanout != 0 && p.fanout != len(runnable) {
			panic(fmt.Sprintf("mc: replay diverged at decision %d: %d runnable, recorded %d — the simulation is not deterministic in its schedule",
				c.depth, len(runnable), p.fanout))
		}
		pick = p.pick
	}
	c.depth++
	c.path = append(c.path, choice{pick: pick, fanout: len(runnable)})
	return pick
}

// Options bounds an exploration.
type Options struct {
	// MaxSchedules stops the DFS after this many complete schedules;
	// 0 means unbounded (exhaust the tree).
	MaxSchedules int
}

// ExploreStats describes one exploration.
type ExploreStats struct {
	// Schedules is the number of complete schedules executed.
	Schedules int
	// Decisions is the total number of decision points visited.
	Decisions int64
	// MaxDepth is the longest schedule, in decisions.
	MaxDepth int
	// Exhausted reports that the whole decision tree was enumerated;
	// when false the run stopped at MaxSchedules and verdicts about
	// *admitted* behaviours are lower bounds only.
	Exhausted bool
}

// Explore DFS-enumerates the schedule decision tree of run. run must
// construct a fresh deterministic system and drive it through the given
// chooser exactly once per call — typically sched.New + engine
// construction + (*sched.Sim).RunChoose — and observe its own results via
// closure. Explore backtracks at the deepest decision with an unexplored
// alternative, replaying the (verified) prefix to reach it.
func Explore(opts Options, run func(sched.Chooser)) ExploreStats {
	var st ExploreStats
	var prefix []choice
	for {
		c := &pathChooser{prefix: prefix}
		run(c)
		st.Schedules++
		st.Decisions += int64(len(c.path))
		if len(c.path) > st.MaxDepth {
			st.MaxDepth = len(c.path)
		}
		// Backtrack: deepest decision with an unexplored sibling.
		i := len(c.path) - 1
		for i >= 0 && c.path[i].pick+1 >= c.path[i].fanout {
			i--
		}
		if i < 0 {
			st.Exhausted = true
			return st
		}
		if opts.MaxSchedules > 0 && st.Schedules >= opts.MaxSchedules {
			return st
		}
		prefix = append(prefix[:0], c.path[:i]...)
		prefix = append(prefix, choice{pick: c.path[i].pick + 1, fanout: c.path[i].fanout})
	}
}
