package mc

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/tm"
)

// litmusRun is one concrete execution of a litmus program: its recorded
// history and the final value of every variable.
type litmusRun struct {
	hist  *History
	final []uint64
	sched sched.Stats
}

// runLitmusOnce executes one litmus program once (one attempt per thread,
// like the explorer) under the given conductor.
func runLitmusOnce(t *testing.T, prog Program, engine string, run func(*sched.Sim, func(*sched.Thread))) litmusRun {
	t.Helper()
	e, err := tm.NewEngine(engine, tm.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range prog.Init {
		e.NonTxWrite(varAddr(v), prog.Init[v])
	}
	var h History
	s := sched.New(len(prog.Threads), 1)
	run(s, func(th *sched.Thread) {
		id := th.ID()
		h.append(Op{Txn: id, Kind: OpBegin})
		err := tm.RunOnce(e, th, func(tx tm.Txn) error {
			prog.Threads[id](&Tx{id: id, txn: tx, h: &h})
			return nil
		})
		if err == nil {
			h.append(Op{Txn: id, Kind: OpCommit})
		} else {
			h.append(Op{Txn: id, Kind: OpAbort})
		}
	})
	final := make([]uint64, len(prog.Init))
	for v := range prog.Init {
		final[v] = e.NonTxRead(varAddr(v))
	}
	return litmusRun{hist: h.Clone(), final: final, sched: s.Stats()}
}

// project returns the Txn-id-filtered op subsequence of a history when
// keep matches, as a printable key.
func project(h *History, keep func(Op) bool) string {
	var sub History
	for _, op := range h.Ops {
		if keep(op) {
			sub.Ops = append(sub.Ops, op)
		}
	}
	return sub.Key()
}

// TestLitmusBatchedVsPerEvent pins horizon batching on the litmus corpus:
// a single concrete execution of every program, on every engine, is
// simulation-equivalent whether the conductor batches multi-event quanta
// or schedules strictly per event — every thread performs the same ops
// and reads the same values, commits and aborts happen in the same global
// order, and memory ends in the same state.
//
// The full global interleaving of the *recorded* history is deliberately
// not compared for the batched run: mc's Tx appends ops in real execution
// order, which inside a batched quantum runs ahead of simulated order, so
// the log interleaves differently even though the simulation is
// identical. Recording a per-access global order is exactly the tracer
// contract, and tracers disable batching (core.SetTracer); the model
// checker itself always schedules per event (TestRunChooseNeverBatches).
func TestLitmusBatchedVsPerEvent(t *testing.T) {
	perEvent := func(s *sched.Sim, body func(*sched.Thread)) {
		s.SetPerEvent(true)
		s.Run(body)
	}
	for _, prog := range Programs() {
		for _, engine := range tm.Engines() {
			t.Run(prog.Name+"/"+engine, func(t *testing.T) {
				b := runLitmusOnce(t, prog, engine, (*sched.Sim).Run)
				p := runLitmusOnce(t, prog, engine, perEvent)
				s := runLitmusOnce(t, prog, engine, (*sched.Sim).Slow)
				// Per-event heap conductor vs reference conductor: the
				// whole recorded interleaving must match.
				if pk, sk := p.hist.Key(), s.hist.Key(); pk != sk {
					t.Errorf("per-event history diverges from reference conductor:\nper-event %s\nslow      %s", pk, sk)
				}
				// Batched vs per-event: same per-thread op streams...
				for id := range prog.Threads {
					keep := func(op Op) bool { return op.Txn == id }
					if bt, pt := project(b.hist, keep), project(p.hist, keep); bt != pt {
						t.Errorf("thread %d op stream diverges:\nbatched   %s\nper-event %s", id, bt, pt)
					}
				}
				// ...same global commit/abort/begin order...
				outcome := func(op Op) bool { return op.Kind != OpRead && op.Kind != OpWrite }
				if bo, po := project(b.hist, outcome), project(p.hist, outcome); bo != po {
					t.Errorf("transaction outcome order diverges:\nbatched   %s\nper-event %s", bo, po)
				}
				// ...same final memory.
				if fmt.Sprint(b.final) != fmt.Sprint(p.final) {
					t.Errorf("final values diverge: batched %v, per-event %v", b.final, p.final)
				}
			})
		}
	}
}

// TestRunChooseNeverBatches pins the enumeration claim directly: the
// chooser-driven conductor the model checker explores with schedules
// strictly per event, even while the engine publishes batching hints —
// every schedule the explorer thinks it enumerated is a schedule that
// actually happened, recorded in exact simulated order. The default
// chooser implements the production policy, so its full history must
// match the per-event heap conductor's byte for byte.
func TestRunChooseNeverBatches(t *testing.T) {
	for _, prog := range Programs() {
		for _, engine := range tm.Engines() {
			t.Run(prog.Name+"/"+engine, func(t *testing.T) {
				p := runLitmusOnce(t, prog, engine, func(s *sched.Sim, body func(*sched.Thread)) {
					s.SetPerEvent(true)
					s.Run(body)
				})
				c := runLitmusOnce(t, prog, engine, func(s *sched.Sim, body func(*sched.Thread)) {
					s.RunChoose(body, sched.DefaultChooser{})
				})
				if c.sched.BatchedEvents != 0 {
					t.Errorf("RunChoose batched %d events; the explorer's schedule space would be a lie", c.sched.BatchedEvents)
				}
				if ck, pk := c.hist.Key(), p.hist.Key(); ck != pk {
					t.Errorf("default-chooser history diverges from per-event conductor:\nchooser   %s\nper-event %s", ck, pk)
				}
				if fmt.Sprint(c.final) != fmt.Sprint(p.final) {
					t.Errorf("final values diverge: chooser %v, per-event %v", c.final, p.final)
				}
			})
		}
	}
}
