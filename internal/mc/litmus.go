package mc

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Tx is the litmus-program view of a transaction attempt: variable-
// indexed reads and writes that record themselves into the schedule's
// history. Variables live on distinct cache lines so engine conflict
// detection sees them as independent items at any granularity.
//
// Litmus programs must keep write values distinct per variable — distinct
// from the initial value and from every other write to the same variable
// in any execution — because the axiom checks resolve reads-from by
// value. RunLitmus verifies this per history and panics on a collision.
type Tx struct {
	id  int
	txn tm.Txn
	h   *History
}

// varAddr places variable v on its own cache line (line v+1; line 0 is
// left untouched to keep addresses nonzero).
func varAddr(v int) mem.Addr { return mem.Addr((v + 1) * mem.LineBytes) }

// Read returns variable v's value under the engine's isolation level.
func (t *Tx) Read(v int) uint64 {
	val := t.txn.Read(varAddr(v))
	t.h.append(Op{Txn: t.id, Kind: OpRead, Var: v, Val: val})
	return val
}

// Write buffers a store of val to variable v.
func (t *Tx) Write(v int, val uint64) {
	t.txn.Write(varAddr(v), val)
	t.h.append(Op{Txn: t.id, Kind: OpWrite, Var: v, Val: val})
}

// Program is one litmus test: a fixed set of tiny transactions, one per
// logical thread, each executed as a single attempt (tm.RunOnce — under
// an adversarial chooser a retry loop need not terminate, and an aborted
// attempt is itself a history the axioms must account for).
type Program struct {
	Name string
	// Doc is the one-line description shown by sitm-check -list.
	Doc string
	// VarNames names the variables for reports; len(VarNames) is the
	// variable count.
	VarNames []string
	// Init holds the initial value per variable, installed with
	// NonTxWrite before the machine starts. Initial values must be
	// distinct from every value the program can write to that variable.
	Init []uint64
	// Threads holds one transaction body per logical thread.
	Threads []func(*Tx)
	// SIAdmits is the anomaly fingerprint a snapshot-isolation engine is
	// expected to admit somewhere in this program's schedule space. With
	// exhaustive exploration the match must be exact; bounded
	// exploration only forbids anomalies outside the set. Note long fork
	// is never in the set: the engines implement *strong* SI (starters
	// stall on in-flight commits, so every snapshot is a prefix of one
	// total commit order), which forbids it — see DESIGN.md.
	SIAdmits Anomalies
}

// Programs returns the litmus library in its canonical order. The first
// four are exhaustively enumerable in well under 10^5 schedules; the
// 3- and 4-thread programs need a MaxSchedules bound.
func Programs() []Program {
	return []Program{
		{
			Name:     "write-skew",
			Doc:      "T0 reads y writes x, T1 reads x writes y: the canonical SI anomaly",
			VarNames: []string{"x", "y"},
			Init:     []uint64{1, 2},
			Threads: []func(*Tx){
				func(t *Tx) { t.Read(1); t.Write(0, 10) },
				func(t *Tx) { t.Read(0); t.Write(1, 20) },
			},
			SIAdmits: Anomalies{WriteSkew: true},
		},
		{
			Name:     "lost-update",
			Doc:      "both transactions read x then write x: first committer must win",
			VarNames: []string{"x"},
			Init:     []uint64{1},
			Threads: []func(*Tx){
				func(t *Tx) { t.Read(0); t.Write(0, 10) },
				func(t *Tx) { t.Read(0); t.Write(0, 20) },
			},
			SIAdmits: Anomalies{},
		},
		{
			Name:     "read-skew",
			Doc:      "T0 writes x then y, T1 reads x then y: reads must not fracture the update",
			VarNames: []string{"x", "y"},
			Init:     []uint64{1, 2},
			Threads: []func(*Tx){
				func(t *Tx) { t.Write(0, 10); t.Write(1, 20) },
				func(t *Tx) { t.Read(0); t.Read(1) },
			},
			SIAdmits: Anomalies{},
		},
		{
			Name:     "bank",
			Doc:      "Listing 1: both accounts withdraw if the joint balance covers it",
			VarNames: []string{"a", "b"},
			Init:     []uint64{60, 60},
			Threads: []func(*Tx){
				func(t *Tx) {
					ra, rb := t.Read(0), t.Read(1)
					if ra+rb >= 100 {
						t.Write(0, ra-50)
					}
				},
				func(t *Tx) {
					ra, rb := t.Read(0), t.Read(1)
					if ra+rb >= 100 {
						t.Write(1, rb-50)
					}
				},
			},
			SIAdmits: Anomalies{WriteSkew: true},
		},
		{
			Name:     "read-only",
			Doc:      "Fekete et al.'s read-only anomaly: an observer makes two SI-compatible writers non-serializable",
			VarNames: []string{"x", "y"},
			Init:     []uint64{0, 0},
			Threads: []func(*Tx){
				// Deposit 20 into y.
				func(t *Tx) {
					ry := t.Read(1)
					t.Write(1, ry+20)
				},
				// Withdraw 10 from x, with an overdraft penalty of 1
				// when the joint balance cannot cover it.
				func(t *Tx) {
					rx, ry := t.Read(0), t.Read(1)
					if int64(rx)+int64(ry) < 10 {
						t.Write(0, rx-11)
					} else {
						t.Write(0, rx-10)
					}
				},
				// Read-only observer.
				func(t *Tx) { t.Read(0); t.Read(1) },
			},
			SIAdmits: Anomalies{WriteSkew: true},
		},
		{
			Name:     "long-fork",
			Doc:      "independent writers of x and y, two readers: under strong SI they must agree on the order",
			VarNames: []string{"x", "y"},
			Init:     []uint64{1, 2},
			Threads: []func(*Tx){
				func(t *Tx) { t.Write(0, 10) },
				func(t *Tx) { t.Write(1, 20) },
				func(t *Tx) { t.Read(0); t.Read(1) },
				func(t *Tx) { t.Read(1); t.Read(0) },
			},
			SIAdmits: Anomalies{},
		},
	}
}

// ProgramNames lists the litmus program names in canonical order.
func ProgramNames() []string {
	ps := Programs()
	names := make([]string, len(ps))
	for i := range ps {
		names[i] = ps[i].Name
	}
	return names
}

// ProgramByName resolves a litmus program; unknown names return an error
// listing the valid ones.
func ProgramByName(name string) (Program, error) {
	for _, p := range Programs() {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("mc: unknown litmus program %q (valid: %s)",
		name, strings.Join(ProgramNames(), ", "))
}
