package mc

// This file is the repo's one direct-serialization-graph implementation:
// a small labeled digraph with a strongly-connected-component search.
// It has two frontends — the model checker builds WW/WR/RW dependency
// graphs over litmus histories for cycle evidence, and internal/skew
// builds RW antidependency graphs over dynamic traces for the paper's
// §5.1 write-skew tool. The SCC search is the iterative Tarjan formerly
// private to internal/skew.

// EdgeKind classifies a dependency edge of a serialization graph,
// following Adya's taxonomy.
type EdgeKind uint8

const (
	// WW is a write-write dependency: the target installed the next
	// version of the labeled item after the source.
	WW EdgeKind = iota
	// WR is a write-read dependency: the target read the version the
	// source installed.
	WR
	// RW is a read-write antidependency: the source read a version the
	// target overwrote — the edge whose cycles witness write skew.
	RW
)

func (k EdgeKind) String() string {
	switch k {
	case WW:
		return "ww"
	case WR:
		return "wr"
	case RW:
		return "rw"
	}
	return "?"
}

// Edge is one outgoing dependency edge. Label carries frontend context: a
// variable name for the model checker, a source site for the skew tool.
type Edge struct {
	To    int
	Kind  EdgeKind
	Label string
}

// Graph is a dependency graph over transactions 0..n-1.
type Graph struct {
	adj   [][]Edge
	edges int
}

// NewGraph returns an empty graph over n transactions.
func NewGraph(n int) *Graph { return &Graph{adj: make([][]Edge, n)} }

// Add inserts a from→to edge. Duplicate (from, to, kind) pairs are
// dropped: a second parallel edge cannot change reachability, and the
// skew frontend's per-reader dedup relied on the same property.
func (g *Graph) Add(from, to int, kind EdgeKind, label string) {
	for _, e := range g.adj[from] {
		if e.To == to && e.Kind == kind {
			return
		}
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Kind: kind, Label: label})
	g.edges++
}

// Len returns the number of transactions (nodes).
func (g *Graph) Len() int { return len(g.adj) }

// NumEdges returns the number of distinct (from, to, kind) edges.
func (g *Graph) NumEdges() int { return g.edges }

// Edges returns node v's outgoing edges (shared slice; do not modify).
func (g *Graph) Edges(v int) []Edge { return g.adj[v] }

// CyclicComponents returns every strongly connected component that
// contains a cycle: components of two or more nodes, plus single nodes
// with a self-loop. Each component's nodes are in Tarjan pop order;
// callers sort as needed.
func (g *Graph) CyclicComponents() [][]int {
	var out [][]int
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			out = append(out, comp)
			continue
		}
		for _, e := range g.adj[comp[0]] {
			if e.To == comp[0] {
				out = append(out, comp)
				break
			}
		}
	}
	return out
}

// SCCs returns the strongly connected components of the graph (iterative
// Tarjan, safe for deep graphs). The output order is deterministic: a
// function of the adjacency structure only.
func (g *Graph) SCCs() [][]int {
	n := len(g.adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack, comps = []int{}, [][]int{}
	next := 1

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei].To
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v: pop component if root of SCC.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
