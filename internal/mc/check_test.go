package mc

import (
	"fmt"
	"strings"
	"testing"
)

// parseHist builds a History from the canonical Key format ("b0 r1v0=1
// w0v0=10 c0 a1"), so the fixtures below read the same way the checker
// reports them.
func parseHist(t *testing.T, s string) *History {
	t.Helper()
	h := &History{}
	for _, tok := range strings.Fields(s) {
		var op Op
		var n int
		var err error
		switch tok[0] {
		case 'b', 'c', 'a':
			switch tok[0] {
			case 'b':
				op.Kind = OpBegin
			case 'c':
				op.Kind = OpCommit
			case 'a':
				op.Kind = OpAbort
			}
			n, err = fmt.Sscanf(tok[1:], "%d", &op.Txn)
			if n != 1 {
				t.Fatalf("bad token %q: %v", tok, err)
			}
		case 'r', 'w':
			if tok[0] == 'r' {
				op.Kind = OpRead
			} else {
				op.Kind = OpWrite
			}
			n, err = fmt.Sscanf(tok[1:], "%dv%d=%d", &op.Txn, &op.Var, &op.Val)
			if n != 3 {
				t.Fatalf("bad token %q: %v", tok, err)
			}
		default:
			t.Fatalf("bad token %q", tok)
		}
		h.append(op)
	}
	return h
}

func TestKeyRoundTrip(t *testing.T) {
	const s = "b0 b1 r1v0=1 w0v0=10 w0v1=20 r1v1=20 a1 c0"
	if got := parseHist(t, s).Key(); got != s {
		t.Fatalf("Key() = %q, want %q", got, s)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name  string
		hist  string
		init  []uint64
		nTxns int
		want  Class
		// anomalies is the expected fingerprint string.
		anomalies string
	}{
		{
			// T1 begins after T0's commit and reads its write: the one
			// serial order is forced by the real-time edge.
			name:  "serial",
			hist:  "b0 r0v0=1 w0v0=10 c0 b1 r1v0=10 c1",
			init:  []uint64{1},
			nTxns: 2,
			want: Class{SnapshotReads: true, SI: true, Opaque: true,
				Serializable: true},
			anomalies: "none",
		},
		{
			// The canonical write skew: both read the other's variable
			// from the initial snapshot, both commit disjoint writes.
			name:  "write-skew",
			hist:  "b0 b1 r0v1=2 r1v0=1 w0v0=10 w1v1=20 c0 c1",
			init:  []uint64{1, 2},
			nTxns: 2,
			want: Class{SnapshotReads: true, SI: true, Opaque: true,
				WriteSkew: true},
			anomalies: "write-skew",
		},
		{
			// Both read x's initial version and both commit writes to x:
			// first-committer-wins is violated, so SI must fail even
			// though each read alone is snapshot-consistent.
			name:  "lost-update",
			hist:  "b0 b1 r0v0=1 r1v0=1 w0v0=10 w1v0=20 c0 c1",
			init:  []uint64{1},
			nTxns: 2,
			want: Class{SnapshotReads: true, Opaque: true,
				LostUpdate: true},
			anomalies: "lost-update",
		},
		{
			// A committed reader fractures T0's two-variable update: new
			// x, old y. No snapshot explains it.
			name:      "non-snapshot-read",
			hist:      "b0 b1 w0v0=10 w0v1=20 r1v0=10 c0 r1v1=2 c1",
			init:      []uint64{1, 2},
			nTxns:     2,
			want:      Class{},
			anomalies: "non-snapshot-read",
		},
		{
			// The eager-2PL shape model checking found: the doomed T1
			// reads old x then new y, but aborts — committed behaviour is
			// clean, only opacity is lost.
			name:  "zombie-read",
			hist:  "b0 b1 r1v0=1 w0v0=10 w0v1=20 r1v1=20 a1 c0",
			init:  []uint64{1, 2},
			nTxns: 2,
			want: Class{SnapshotReads: true, SI: true,
				Serializable: true},
			anomalies: "zombie-read",
		},
		{
			// Independent writers of x and y observed in opposite orders
			// by two readers: parallel-SI's long fork. Prefix snapshots
			// cannot explain it, so strong SI rejects it outright.
			name:      "long-fork",
			hist:      "b0 b1 b2 b3 w0v0=10 w1v1=20 r2v0=10 r2v1=2 r3v0=1 r3v1=20 c0 c1 c2 c3",
			init:      []uint64{1, 2},
			nTxns:     4,
			want:      Class{LongFork: true},
			anomalies: "non-snapshot-read,long-fork",
		},
		{
			// Fekete et al.'s read-only anomaly: T1 charges the overdraft
			// penalty without seeing T0's deposit, and the read-only T2
			// sees the deposit but not the penalty — SI-valid, yet no
			// serial order explains all three.
			name:  "read-only-anomaly",
			hist:  "b1 r1v0=0 r1v1=0 b0 r0v1=0 w0v1=20 c0 b2 r2v0=0 r2v1=20 c2 w1v0=93 c1",
			init:  []uint64{0, 0},
			nTxns: 3,
			want: Class{SnapshotReads: true, SI: true, Opaque: true,
				WriteSkew: true},
			anomalies: "write-skew",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(parseHist(t, tc.hist), tc.init, tc.nTxns)
			if got != tc.want {
				t.Errorf("Classify = %+v, want %+v", got, tc.want)
			}
			if s := got.Anomalies().String(); s != tc.anomalies {
				t.Errorf("anomalies = %q, want %q", s, tc.anomalies)
			}
		})
	}
}

func TestDSGWriteSkewCycle(t *testing.T) {
	h := parseHist(t, "b0 b1 r0v1=2 r1v0=1 w0v0=10 w1v1=20 c0 c1")
	name := func(v int) string { return []string{"x", "y"}[v] }
	g := DSG(h, []uint64{1, 2}, 2, name)
	comps := g.CyclicComponents()
	if len(comps) != 1 || len(comps[0]) != 2 {
		t.Fatalf("CyclicComponents = %v, want one 2-node cycle", comps)
	}
	// Both edges are RW antidependencies: each transaction read the
	// version the other overwrote.
	for _, from := range []int{0, 1} {
		edges := g.Edges(from)
		if len(edges) != 1 || edges[0].Kind != RW || edges[0].To != 1-from {
			t.Fatalf("Edges(%d) = %+v, want one RW edge to %d", from, edges, 1-from)
		}
	}
}

func TestDSGSerialAcyclic(t *testing.T) {
	h := parseHist(t, "b0 r0v0=1 w0v0=10 c0 b1 r1v0=10 c1")
	g := DSG(h, []uint64{1}, 2, func(int) string { return "x" })
	if comps := g.CyclicComponents(); len(comps) != 0 {
		t.Fatalf("CyclicComponents = %v, want none", comps)
	}
	// The reads-from edge T0 -> T1 must be present as evidence.
	edges := g.Edges(0)
	if len(edges) != 1 || edges[0].Kind != WR || edges[0].To != 1 {
		t.Fatalf("Edges(0) = %+v, want one WR edge to 1", edges)
	}
}

func TestAnomaliesUnionAny(t *testing.T) {
	var none Anomalies
	if none.Any() || none.String() != "none" {
		t.Fatalf("zero Anomalies: Any = %v, String = %q", none.Any(), none.String())
	}
	u := Anomalies{WriteSkew: true}.Union(Anomalies{ZombieRead: true})
	if !u.WriteSkew || !u.ZombieRead || !u.Any() {
		t.Fatalf("Union = %+v", u)
	}
}
