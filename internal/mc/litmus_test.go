package mc

import (
	"reflect"
	"strings"
	"testing"

	_ "repro/internal/core"
	_ "repro/internal/sontm"
	"repro/internal/tm"
	_ "repro/internal/twopl"
)

// exhaustivePrograms are the 2-thread litmus tests whose whole schedule
// space is enumerable in well under 10^5 schedules per engine.
func exhaustivePrograms(t *testing.T) []Program {
	t.Helper()
	var out []Program
	for _, name := range []string{"write-skew", "lost-update", "read-skew", "bank"} {
		p, err := ProgramByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestEngineMatrix is the tentpole acceptance check: exhaustively model-
// check every exhaustive litmus program on every registered engine and
// require a clean verdict for the engine's behaviourally derived family —
// SI engines admit exactly the program's expected anomalies and are
// opaque; serializable engines admit no committed-transaction anomaly
// (zombie reads of aborted eager-2PL attempts are tolerated and surfaced
// in the fingerprint, never hidden).
func TestEngineMatrix(t *testing.T) {
	progs := exhaustivePrograms(t)
	for _, engine := range tm.Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			fam, err := EngineFamily(engine, tm.EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, prog := range progs {
				r, err := RunLitmus(prog, engine, tm.EngineOptions{}, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !r.Explored.Exhausted {
					t.Fatalf("%s: exploration not exhausted after %d schedules",
						prog.Name, r.Explored.Schedules)
				}
				if v := r.Violations(fam); len(v) != 0 {
					t.Errorf("%s (%s): violations:\n  %s",
						prog.Name, fam, strings.Join(v, "\n  "))
				}
				got := r.Admitted
				switch fam {
				case FamilySI:
					if got.ZombieRead {
						t.Errorf("%s: SI engine admitted a zombie read", prog.Name)
					}
					got.ZombieRead = false
					if got != prog.SIAdmits {
						t.Errorf("%s: admitted %s, SI expectation %s",
							prog.Name, got, prog.SIAdmits)
					}
				case FamilySerializable:
					got.ZombieRead = false
					if got.Any() {
						t.Errorf("%s: serializable engine admitted %s",
							prog.Name, r.Admitted)
					}
				}
			}
		})
	}
}

// TestEngineFamilyKnown pins the behavioural classification of the four
// paper engines: only SI-TM runs under (plain) snapshot isolation; the
// 2PL and SONTM baselines and the serializability-certifying SSI-TM never
// admit write skew.
func TestEngineFamilyKnown(t *testing.T) {
	want := map[string]Family{
		"2PL":    FamilySerializable,
		"SI-TM":  FamilySI,
		"SONTM":  FamilySerializable,
		"SSI-TM": FamilySerializable,
	}
	for engine, wantFam := range want {
		fam, err := EngineFamily(engine, tm.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fam != wantFam {
			t.Errorf("EngineFamily(%s) = %s, want %s", engine, fam, wantFam)
		}
	}
}

// TestVariantHistorySets pins that the differential option variants — the
// map-based reference access sets and the pre-fast-path reference cache
// model — admit exactly the same history set as the default fast paths,
// schedule space and all. A divergence would mean the fast path changed
// simulated behaviour, not just wall time.
func TestVariantHistorySets(t *testing.T) {
	variants := []struct {
		name string
		opts tm.EngineOptions
	}{
		{"reference-sets", tm.EngineOptions{ReferenceSets: true}},
		{"reference-cache", tm.EngineOptions{ReferenceCache: true}},
	}
	progs := []string{"write-skew"}
	for _, engine := range tm.Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			names := progs
			if engine == "2PL" {
				// Also cover the zombie-read-admitting cell.
				names = append([]string{"read-skew"}, progs...)
			}
			for _, name := range names {
				prog, err := ProgramByName(name)
				if err != nil {
					t.Fatal(err)
				}
				base, err := RunLitmus(prog, engine, tm.EngineOptions{}, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range variants {
					r, err := RunLitmus(prog, engine, v.opts, Options{})
					if err != nil {
						t.Fatal(err)
					}
					if r.Explored != base.Explored {
						t.Errorf("%s/%s: explored %+v, default %+v",
							name, v.name, r.Explored, base.Explored)
					}
					if !reflect.DeepEqual(r.HistoryKeys(), base.HistoryKeys()) {
						t.Errorf("%s/%s: history set diverged from default", name, v.name)
					}
				}
			}
		})
	}
}

func TestBoundedExploration(t *testing.T) {
	prog, err := ProgramByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunLitmus(prog, "SI-TM", tm.EngineOptions{}, Options{MaxSchedules: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r.Explored.Schedules != 50 || r.Explored.Exhausted {
		t.Fatalf("Explored = %+v, want exactly 50 schedules, not exhausted", r.Explored)
	}
}

func TestRunLitmusUnknownEngine(t *testing.T) {
	prog, err := ProgramByName("write-skew")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLitmus(prog, "nope", tm.EngineOptions{}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Fatalf("err = %v, want unknown-engine listing", err)
	}
}

func TestProgramByNameUnknown(t *testing.T) {
	_, err := ProgramByName("nope")
	if err == nil || !strings.Contains(err.Error(), "write-skew") {
		t.Fatalf("err = %v, want listing of valid programs", err)
	}
}

// TestCheckWriteValuesPanics pins the litmus value discipline: a
// committed write colliding with the initial value would make value-
// resolved reads-from ambiguous, so it must be rejected loudly.
func TestCheckWriteValuesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on duplicate write value")
		}
		if !strings.Contains(r.(string), "duplicate value") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	prog, err := ProgramByName("write-skew")
	if err != nil {
		t.Fatal(err)
	}
	checkWriteValues(prog, parseHist(t, "b0 w0v0=1 c0")) // init x is also 1
}
