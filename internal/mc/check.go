package mc

import "strings"

// Class is the verdict of the axiom checks on one history.
type Class struct {
	// SnapshotReads reports that every committed transaction's reads are
	// explainable by some committed-prefix snapshot consistent with real
	// time (the SI check minus first-committer-wins). Its failure is the
	// NonSnapshotRead anomaly: a fractured read no snapshot can explain,
	// forbidden for every engine.
	SnapshotReads bool
	// SI reports that the committed transactions satisfy snapshot
	// isolation: snapshot reads plus first-committer-wins on write-write
	// conflicts.
	SI bool
	// Opaque additionally requires the reads of *aborted* attempts to be
	// snapshot-consistent — the multiversioned-memory guarantee the
	// paper leans on (§4.3): even a doomed transaction only ever sees a
	// consistent snapshot. The eager in-place 2PL baseline does not
	// promise this: a transaction doomed by a conflicting writer can
	// observe the writer's half-installed state before it aborts (the
	// classic "zombie read"); model checking found exactly that, see
	// DESIGN.md "Model checking".
	Opaque bool
	// Serializable reports that the committed transactions have a serial
	// order, consistent with real time, explaining every external read.
	Serializable bool
	// LostUpdate: two committed transactions read the same version of a
	// variable and both committed writes to it.
	LostUpdate bool
	// WriteSkew: SI-valid but not serializable — the anomaly SI admits
	// by design (§2 of the paper).
	WriteSkew bool
	// LongFork: two committed readers observed two independent writes in
	// opposite orders — admitted by parallel SI, forbidden by the strong
	// SI these engines implement (every snapshot is a prefix of one
	// total commit order).
	LongFork bool
}

// Anomalies is the anomaly fingerprint of a history (or the union over a
// history set).
type Anomalies struct {
	LostUpdate      bool
	NonSnapshotRead bool
	WriteSkew       bool
	LongFork        bool
	// ZombieRead is a non-snapshot read confined to an aborted attempt:
	// committed transactions are clean but an attempt that later aborted
	// observed a state no snapshot explains (an opacity violation).
	ZombieRead bool
}

// Anomalies extracts the anomaly fingerprint from a verdict.
func (c Class) Anomalies() Anomalies {
	return Anomalies{
		LostUpdate:      c.LostUpdate,
		NonSnapshotRead: !c.SnapshotReads,
		WriteSkew:       c.WriteSkew,
		LongFork:        c.LongFork,
		ZombieRead:      c.SnapshotReads && !c.Opaque,
	}
}

// Any reports whether any anomaly is set.
func (a Anomalies) Any() bool {
	return a.LostUpdate || a.NonSnapshotRead || a.WriteSkew || a.LongFork || a.ZombieRead
}

// Union merges two fingerprints.
func (a Anomalies) Union(b Anomalies) Anomalies {
	return Anomalies{
		LostUpdate:      a.LostUpdate || b.LostUpdate,
		NonSnapshotRead: a.NonSnapshotRead || b.NonSnapshotRead,
		WriteSkew:       a.WriteSkew || b.WriteSkew,
		LongFork:        a.LongFork || b.LongFork,
		ZombieRead:      a.ZombieRead || b.ZombieRead,
	}
}

func (a Anomalies) String() string {
	var parts []string
	if a.LostUpdate {
		parts = append(parts, "lost-update")
	}
	if a.NonSnapshotRead {
		parts = append(parts, "non-snapshot-read")
	}
	if a.WriteSkew {
		parts = append(parts, "write-skew")
	}
	if a.LongFork {
		parts = append(parts, "long-fork")
	}
	if a.ZombieRead {
		parts = append(parts, "zombie-read")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Classify runs every axiom check on one history of a litmus program with
// nTxns transactions over variables initialised to init.
func Classify(h *History, init []uint64, nTxns int) Class {
	vs := views(h, nTxns)
	var c Class
	c.SnapshotReads = rywOK(vs, false) && checkSI(vs, init, false, false)
	if c.SnapshotReads {
		c.SI = checkSI(vs, init, true, false)
		c.Opaque = rywOK(vs, true) && checkSI(vs, init, false, true)
	}
	c.Serializable = checkSerializable(vs, init)
	c.LostUpdate = detectLostUpdate(vs)
	c.WriteSkew = c.SI && !c.Serializable
	c.LongFork = detectLongFork(vs)
	return c
}

// rywOK reports whether every committed transaction — and, with aborted
// set, every attempt — read back its own buffered writes.
func rywOK(vs []txnView, aborted bool) bool {
	for i := range vs {
		if !vs[i].present || (!vs[i].committed && !aborted) {
			continue
		}
		if !vs[i].rywOK {
			return false
		}
	}
	return true
}

// permutations calls f on every permutation of 0..n-1 until f returns
// true, and reports whether any call did (a witness was found). n is at
// most the litmus thread count, so the space is at most 4! = 24.
func permutations(n int, f func(perm []int) bool) bool {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return f(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if rec(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return rec(0)
}

// checkSI searches for an SI witness: a total commit order over the
// committed transactions plus a snapshot point per transaction. The
// snapshot point s(T) ∈ [0, n] means T's snapshot contains exactly the
// first s(T) transactions of the commit order.
//
// Constraints, all derived from events the recording provably brackets
// (begin recorded before the engine's Begin, commit recorded after
// Commit returned — see OpBegin):
//
//   - Real time: if A's recorded commit precedes B's recorded begin, A's
//     versions were installed before B's snapshot was taken, so A must
//     precede B in the commit order and lie inside B's snapshot.
//     Conversely if B's recorded begin follows A's... if A's recorded
//     begin follows B's recorded end, A cannot be in B's snapshot.
//   - Snapshot prefix: s(T) ≤ pos(T) for committed T — a transaction
//     cannot observe commits ordered after its own.
//   - Reads: every external read of v returns the final write of the
//     last transaction in the snapshot prefix that wrote v, or the
//     initial value if none did.
//   - First-committer-wins (fcw only): committed transactions that both
//     wrote a variable must not be concurrent — the earlier one must lie
//     inside the later one's snapshot.
//
// With aborted set, aborted attempts participate with a snapshot point
// but no commit-order position: their reads, too, must come from a
// consistent snapshot (the opacity check); they install nothing and are
// exempt from first-committer-wins. Without it only committed
// transactions are constrained — the SI contract proper.
func checkSI(vs []txnView, init []uint64, fcw, aborted bool) bool {
	var committed []int
	for i := range vs {
		if vs[i].present && vs[i].committed {
			committed = append(committed, i)
		}
	}
	n := len(committed)
	return permutations(n, func(perm []int) bool {
		// order[p] is the view index of the transaction at position p.
		order := make([]int, n)
		for p, q := range perm {
			order[p] = committed[q]
		}
		// Real-time edges must embed into the commit order.
		for pa := range order {
			for pb := range order {
				if vs[order[pa]].endIdx < vs[order[pb]].beginIdx && pa >= pb {
					return false
				}
			}
		}
		// Each transaction independently needs one feasible snapshot
		// point; constraints never couple two transactions' points, so
		// the per-transaction searches are separable.
		for i := range vs {
			t := &vs[i]
			if !t.present || (!t.committed && !aborted) {
				continue
			}
			lb, ub := 0, n
			pos := -1
			for p, j := range order {
				if j == i {
					pos = p
				}
			}
			if t.committed {
				ub = pos
			}
			for p, j := range order {
				if j == i {
					continue
				}
				u := &vs[j]
				if u.endIdx < t.beginIdx && lb < p+1 {
					lb = p + 1 // u committed before t began: in snapshot
				}
				if u.beginIdx > t.endIdx && ub > p {
					ub = p // u began after t ended: not in snapshot
				}
				if fcw && t.committed && p < pos && conflicts(t, u) && lb < p+1 {
					lb = p + 1 // first committer wins: no concurrent writer
				}
			}
			ok := false
			for s := lb; s <= ub && !ok; s++ {
				ok = readsMatch(t, s, order, vs, init)
			}
			if !ok {
				return false
			}
		}
		return true
	})
}

// conflicts reports whether two transactions committed writes to a common
// variable.
func conflicts(a, b *txnView) bool {
	for _, w := range a.writes {
		if _, ok := b.wrote(w.v); ok {
			return true
		}
	}
	return false
}

// readsMatch reports whether every external read of t returns the last
// write in the snapshot prefix order[:s], falling back to the initial
// value.
func readsMatch(t *txnView, s int, order []int, vs []txnView, init []uint64) bool {
	for _, r := range t.extReads {
		want := init[r.v]
		for p := 0; p < s; p++ {
			if v, ok := vs[order[p]].wrote(r.v); ok {
				want = v
			}
		}
		if r.val != want {
			return false
		}
	}
	return true
}

// checkSerializable searches for a serial witness: a total order over the
// committed transactions, embedding the real-time precedence (recorded
// commit before recorded begin), under which every external read returns
// the latest preceding write (or the initial value). Aborted attempts are
// outside the serializability contract.
func checkSerializable(vs []txnView, init []uint64) bool {
	var committed []int
	for i := range vs {
		if vs[i].present && vs[i].committed {
			committed = append(committed, i)
		}
	}
	n := len(committed)
	return permutations(n, func(perm []int) bool {
		order := make([]int, n)
		for p, q := range perm {
			order[p] = committed[q]
		}
		for pa := range order {
			for pb := range order {
				if vs[order[pa]].endIdx < vs[order[pb]].beginIdx && pa >= pb {
					return false
				}
			}
		}
		for p := range order {
			if !readsMatch(&vs[order[p]], p, order, vs, init) {
				return false
			}
		}
		return true
	})
}

// detectLostUpdate reports whether two committed transactions read the
// same version of a variable (witnessed by equal read values — write
// values are distinct per variable by litmus construction) and both
// committed writes to it.
func detectLostUpdate(vs []txnView) bool {
	for i := range vs {
		a := &vs[i]
		if !a.committed {
			continue
		}
		for j := i + 1; j < len(vs); j++ {
			b := &vs[j]
			if !b.committed {
				continue
			}
			for _, w := range a.writes {
				if _, ok := b.wrote(w.v); !ok {
					continue
				}
				ra, oka := extReadVal(a, w.v)
				rb, okb := extReadVal(b, w.v)
				if oka && okb && ra == rb {
					return true
				}
			}
		}
	}
	return false
}

// extReadVal returns t's first external read of v.
func extReadVal(t *txnView, v int) (uint64, bool) {
	for _, r := range t.extReads {
		if r.v == v {
			return r.val, true
		}
	}
	return 0, false
}

// detectLongFork reports the long-fork shape: independent committed
// writers W1 of u and W2 of v, and two committed readers that observed
// them in opposite orders — R1 saw W1's u but not W2's v, R2 saw W2's v
// but not W1's u. Reads-from is value-resolved, which the litmus
// programs' per-variable-distinct write values make exact.
func detectLongFork(vs []txnView) bool {
	for i := range vs {
		w1 := &vs[i]
		if !w1.committed {
			continue
		}
		for j := range vs {
			w2 := &vs[j]
			if j == i || !w2.committed {
				continue
			}
			for _, wu := range w1.writes {
				if _, ok := w2.wrote(wu.v); ok {
					continue // not independent writers of u
				}
				for _, wv := range w2.writes {
					if _, ok := w1.wrote(wv.v); ok {
						continue
					}
					if longForkReaders(vs, i, j, wu, wv) {
						return true
					}
				}
			}
		}
	}
	return false
}

// longForkReaders searches for the two opposite-order readers given
// writer views i (wrote wu) and j (wrote wv).
func longForkReaders(vs []txnView, i, j int, wu, wv writeObs) bool {
	sawNew := func(t *txnView, w writeObs) bool {
		v, ok := extReadVal(t, w.v)
		return ok && v == w.val
	}
	sawOld := func(t *txnView, w writeObs) bool {
		v, ok := extReadVal(t, w.v)
		return ok && v != w.val
	}
	for r1 := range vs {
		if r1 == i || r1 == j || !vs[r1].committed {
			continue
		}
		if !sawNew(&vs[r1], wu) || !sawOld(&vs[r1], wv) {
			continue
		}
		for r2 := range vs {
			if r2 == i || r2 == j || r2 == r1 || !vs[r2].committed {
				continue
			}
			if sawNew(&vs[r2], wv) && sawOld(&vs[r2], wu) {
				return true
			}
		}
	}
	return false
}

// DSG builds the direct serialization graph of a history's committed
// transactions, for cycle evidence in reports: WR edges from
// value-resolved reads-from, WW edges ordering committed writers of a
// variable by recorded commit, and RW antidependencies from a reader to
// every writer installing a later version than the one it read. The
// axiom checks above are the verdicts; the DSG is the explanation.
func DSG(h *History, init []uint64, nTxns int, varName func(int) string) *Graph {
	vs := views(h, nTxns)
	g := NewGraph(nTxns)
	for i := range vs {
		t := &vs[i]
		if !t.present || !t.committed {
			continue
		}
		for _, r := range t.extReads {
			// from: the committed writer of the value read, or -1 for
			// the initial version.
			from := -1
			for j := range vs {
				if j == i || !vs[j].committed {
					continue
				}
				if v, ok := vs[j].wrote(r.v); ok && v == r.val {
					from = j
					break
				}
			}
			if from >= 0 {
				g.Add(from, i, WR, varName(r.v))
			}
			for j := range vs {
				if j == i || j == from || !vs[j].committed {
					continue
				}
				if _, ok := vs[j].wrote(r.v); !ok {
					continue
				}
				// j installed a version of r.v other than the one read;
				// it is a later version when its recorded commit follows
				// the read version's installer (or the read was initial).
				if from < 0 || vs[j].endIdx > vs[from].endIdx {
					g.Add(i, j, RW, varName(r.v))
				}
			}
		}
		for _, w := range t.writes {
			for j := range vs {
				if j == i || !vs[j].committed {
					continue
				}
				if _, ok := vs[j].wrote(w.v); ok && vs[i].endIdx < vs[j].endIdx {
					g.Add(i, j, WW, varName(w.v))
				}
			}
		}
	}
	return g
}
