package mc

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// driveTree walks one schedule of a synthetic decision tree: fanout
// returns the branching factor at the current path (0 for a leaf). The
// chooser only ever inspects len(runnable), so placeholder slices stand
// in for real threads.
func driveTree(c sched.Chooser, fanout func(path []int) int) []int {
	var path []int
	for {
		f := fanout(path)
		if f == 0 {
			return path
		}
		path = append(path, c.Choose(make([]*sched.Thread, f)))
	}
}

func TestExploreUniformTree(t *testing.T) {
	const depth, fan = 4, 2
	seen := make(map[string]bool)
	st := Explore(Options{}, func(c sched.Chooser) {
		path := driveTree(c, func(p []int) int {
			if len(p) < depth {
				return fan
			}
			return 0
		})
		var b strings.Builder
		for _, pick := range path {
			b.WriteByte(byte('0' + pick))
		}
		if seen[b.String()] {
			t.Fatalf("schedule %s explored twice", b.String())
		}
		seen[b.String()] = true
	})
	want := 1
	for i := 0; i < depth; i++ {
		want *= fan
	}
	if st.Schedules != want || len(seen) != want {
		t.Fatalf("Schedules = %d, distinct = %d, want %d", st.Schedules, len(seen), want)
	}
	if !st.Exhausted {
		t.Fatal("tree not exhausted")
	}
	if st.MaxDepth != depth {
		t.Fatalf("MaxDepth = %d, want %d", st.MaxDepth, depth)
	}
	if st.Decisions != int64(want*depth) {
		t.Fatalf("Decisions = %d, want %d", st.Decisions, want*depth)
	}
}

// TestExploreUnevenTree checks backtracking across branches of different
// depth and fanout: picking 0 at the root opens three leaves, picking 1
// is itself a leaf — four schedules in all.
func TestExploreUnevenTree(t *testing.T) {
	st := Explore(Options{}, func(c sched.Chooser) {
		driveTree(c, func(p []int) int {
			switch {
			case len(p) == 0:
				return 2
			case len(p) == 1 && p[0] == 0:
				return 3
			default:
				return 0
			}
		})
	})
	if st.Schedules != 4 || !st.Exhausted {
		t.Fatalf("Schedules = %d, Exhausted = %v, want 4 exhausted", st.Schedules, st.Exhausted)
	}
}

func TestExploreMaxSchedules(t *testing.T) {
	st := Explore(Options{MaxSchedules: 5}, func(c sched.Chooser) {
		driveTree(c, func(p []int) int {
			if len(p) < 4 {
				return 2
			}
			return 0
		})
	})
	if st.Schedules != 5 {
		t.Fatalf("Schedules = %d, want 5", st.Schedules)
	}
	if st.Exhausted {
		t.Fatal("bounded run reported Exhausted")
	}
}

// TestExploreReplayDivergencePanics pins the determinism tripwire: if the
// same decision prefix reaches a point with a different fanout than the
// recorded one, the enumeration is invalid and Explore must panic.
func TestExploreReplayDivergencePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on replay divergence")
		}
		if !strings.Contains(r.(string), "replay diverged") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	runs := 0
	Explore(Options{}, func(c sched.Chooser) {
		runs++
		driveTree(c, func(p []int) int {
			if len(p) == 0 {
				return 1 + runs // root fanout changes between runs
			}
			if len(p) < 2 {
				return 2
			}
			return 0
		})
	})
}
