// Package mc is a small-scope model checker for the transactional memory
// engines: it drives a handful of tiny transactions (a litmus program)
// through every interleaving the deterministic simulator admits and
// validates each resulting history against declarative snapshot-isolation
// axioms (snapshot reads, first-committer-wins) and serializability, in
// the spirit of Raad–Lahav–Vafeiadis, "On the Semantics of Snapshot
// Isolation" (PAPERS.md) and the SnapshotIsolationRefinement TLA+ module
// (SNIPPETS.md).
//
// The schedule space is the decision tree of sched.RunChoose: every
// charged Tick/Stall yield plus every body completion is one decision
// point, and yieldlint (internal/lint) statically pins those yields as the
// only places engine code may touch simulated shared memory — together
// they make the tree the complete set of behaviours. Explore walks the
// tree depth-first with deterministic prefix replay; the histories at its
// leaves are classified once per distinct history.
//
// Axioms are checked existentially over small witness spaces (at most 4
// transactions, so at most 24 commit orders): a history is SI iff there
// is a total commit order and per-transaction snapshot prefixes — both
// constrained by sound real-time edges — under which every external read
// returns the last write in its snapshot and no two conflicting writers
// are concurrent. See DESIGN.md "Model checking" for the full definitions.
package mc

import (
	"strconv"
	"strings"
)

// OpKind is the kind of one history event.
type OpKind uint8

const (
	// OpBegin is recorded immediately before Engine.Begin is entered, so
	// a recorded commit that precedes a recorded begin is a sound
	// real-time edge: the committer's effects were installed before the
	// beginner's snapshot was taken.
	OpBegin OpKind = iota
	// OpRead is an external or own-write read that returned Val for Var.
	OpRead
	// OpWrite is a buffered transactional store of Val to Var.
	OpWrite
	// OpCommit is recorded after Txn.Commit returned nil.
	OpCommit
	// OpAbort is recorded after the attempt aborted (engine conflict or
	// explicit), whether during an access or at commit.
	OpAbort
)

// Op is one event of a history. Var and Val are meaningful for OpRead and
// OpWrite only. Txn is the litmus transaction index — one transaction per
// logical thread, so it equals the thread ID.
type Op struct {
	Txn  int
	Kind OpKind
	Var  int
	Val  uint64
}

// History is the globally ordered event sequence of one complete schedule.
// Exactly one logical thread runs at any instant, so appends from litmus
// transactions produce a total order without locking.
type History struct {
	Ops []Op
}

// append records one event.
func (h *History) append(op Op) { h.Ops = append(h.Ops, op) }

// Key returns the canonical string form of the history, used to
// deduplicate the histories different schedules produce. Distinct keys
// are distinct histories; classification runs once per key.
func (h *History) Key() string {
	var b strings.Builder
	for i, op := range h.Ops {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch op.Kind {
		case OpBegin:
			b.WriteByte('b')
			b.WriteString(strconv.Itoa(op.Txn))
		case OpRead, OpWrite:
			if op.Kind == OpRead {
				b.WriteByte('r')
			} else {
				b.WriteByte('w')
			}
			b.WriteString(strconv.Itoa(op.Txn))
			b.WriteByte('v')
			b.WriteString(strconv.Itoa(op.Var))
			b.WriteByte('=')
			b.WriteString(strconv.FormatUint(op.Val, 10))
		case OpCommit:
			b.WriteByte('c')
			b.WriteString(strconv.Itoa(op.Txn))
		case OpAbort:
			b.WriteByte('a')
			b.WriteString(strconv.Itoa(op.Txn))
		}
	}
	return b.String()
}

// Clone returns an independent copy of the history.
func (h *History) Clone() *History {
	c := &History{Ops: make([]Op, len(h.Ops))}
	copy(c.Ops, h.Ops)
	return c
}

// readObs is one external read observation: the transaction had not yet
// written Var when it read Val.
type readObs struct {
	index int // position in History.Ops, for error reporting
	v     int
	val   uint64
}

// writeObs is the final write of a transaction to one variable — the
// value its commit installs.
type writeObs struct {
	v   int
	val uint64
}

// txnView is the per-transaction digest of a history that the axiom
// checks consume.
type txnView struct {
	id        int
	present   bool // the transaction began in this history
	committed bool
	beginIdx  int // History.Ops index of the begin event
	endIdx    int // History.Ops index of the commit/abort event
	extReads  []readObs
	writes    []writeObs // final write per variable, in first-write order
	// rywOK reports that every own-write read returned the value this
	// transaction last buffered (read-your-writes). An eager in-place
	// engine can violate it inside a doomed attempt when the conflicting
	// writer overwrites the line before the attempt notices its doom.
	rywOK bool
}

// wrote returns the transaction's final write to v, if any.
func (t *txnView) wrote(v int) (uint64, bool) {
	for _, w := range t.writes {
		if w.v == v {
			return w.val, true
		}
	}
	return 0, false
}

// views digests a history into per-transaction views.
func views(h *History, nTxns int) []txnView {
	vs := make([]txnView, nTxns)
	for i := range vs {
		vs[i].id = i
		vs[i].beginIdx = -1
		vs[i].endIdx = -1
		vs[i].rywOK = true
	}
	for i, op := range h.Ops {
		t := &vs[op.Txn]
		switch op.Kind {
		case OpBegin:
			t.present = true
			t.beginIdx = i
		case OpRead:
			if own, ok := t.wrote(op.Var); ok {
				// Own-write read: must return the buffered value.
				if own != op.Val {
					t.rywOK = false
				}
			} else {
				t.extReads = append(t.extReads, readObs{index: i, v: op.Var, val: op.Val})
			}
		case OpWrite:
			replaced := false
			for j := range t.writes {
				if t.writes[j].v == op.Var {
					t.writes[j].val = op.Val
					replaced = true
					break
				}
			}
			if !replaced {
				t.writes = append(t.writes, writeObs{v: op.Var, val: op.Val})
			}
		case OpCommit:
			t.committed = true
			t.endIdx = i
		case OpAbort:
			t.endIdx = i
		}
	}
	for i := range vs {
		// A transaction still running when the history was cut behaves
		// as ending after every recorded event.
		if vs[i].present && vs[i].endIdx < 0 {
			vs[i].endIdx = len(h.Ops)
		}
	}
	return vs
}
