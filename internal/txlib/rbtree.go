package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// RBTree is a transactional red-black tree with set/map semantics, the
// container of the paper's Red Black Tree microbenchmark and the structure
// in which the write-skew tool found multiple anomalies (§5.1). Lookups
// are pure traversals (read-only under SI); inserts and deletes rebalance
// and therefore write several nodes per update, which is why the paper
// sees only ~2x improvement from SI on this container.
//
// Node layout (one cache line): key, value, left, right, parent, color.
const (
	rbKey = iota
	rbVal
	rbLeft
	rbRight
	rbParent
	rbColor
	rbFields
)

const (
	red   = 0
	black = 1
)

// Site labels for the write-skew tool.
const (
	SiteRBLookup = "rbtree.lookup"
	SiteRBInsert = "rbtree.insert"
	SiteRBDelete = "rbtree.delete"
	SiteRBFixup  = "rbtree.fixup"
)

// RBTree is a transactional red-black tree.
type RBTree struct {
	m *Mem
	// rootHolder is a one-word cell holding the root pointer, so the
	// root can change transactionally.
	rootHolder mem.Addr
}

// NewRBTree creates an empty tree.
func NewRBTree(m *Mem) *RBTree {
	t := &RBTree{m: m, rootHolder: m.allocNode(1)}
	m.E.NonTxWrite(t.rootHolder, nilPtr)
	return t
}

func (t *RBTree) root(tx tm.Txn) mem.Addr       { return mem.Addr(tx.Read(t.rootHolder)) }
func (t *RBTree) setRoot(tx tm.Txn, n mem.Addr) { tx.Write(t.rootHolder, uint64(n)) }

func getf(tx tm.Txn, n mem.Addr, f int) mem.Addr    { return mem.Addr(tx.Read(field(n, f))) }
func setf(tx tm.Txn, n mem.Addr, f int, v mem.Addr) { tx.Write(field(n, f), uint64(v)) }

// color of a node; nil nodes are black.
func (t *RBTree) color(tx tm.Txn, n mem.Addr) uint64 {
	if n == nilPtr {
		return black
	}
	return tx.Read(field(n, rbColor))
}

// Lookup returns the value stored under k.
func (t *RBTree) Lookup(tx tm.Txn, k uint64) (uint64, bool) {
	tx.Site(SiteRBLookup)
	n := t.root(tx)
	for n != nilPtr {
		nk := tx.Read(field(n, rbKey))
		switch {
		case k < nk:
			n = getf(tx, n, rbLeft)
		case k > nk:
			n = getf(tx, n, rbRight)
		default:
			return tx.Read(field(n, rbVal)), true
		}
	}
	return 0, false
}

// Contains reports whether k is present.
func (t *RBTree) Contains(tx tm.Txn, k uint64) bool {
	_, ok := t.Lookup(tx, k)
	return ok
}

// rotateLeft rotates n with its right child.
func (t *RBTree) rotateLeft(tx tm.Txn, n mem.Addr) {
	r := getf(tx, n, rbRight)
	rl := getf(tx, r, rbLeft)
	setf(tx, n, rbRight, rl)
	if rl != nilPtr {
		setf(tx, rl, rbParent, n)
	}
	p := getf(tx, n, rbParent)
	setf(tx, r, rbParent, p)
	if p == nilPtr {
		t.setRoot(tx, r)
	} else if getf(tx, p, rbLeft) == n {
		setf(tx, p, rbLeft, r)
	} else {
		setf(tx, p, rbRight, r)
	}
	setf(tx, r, rbLeft, n)
	setf(tx, n, rbParent, r)
}

// rotateRight rotates n with its left child.
func (t *RBTree) rotateRight(tx tm.Txn, n mem.Addr) {
	l := getf(tx, n, rbLeft)
	lr := getf(tx, l, rbRight)
	setf(tx, n, rbLeft, lr)
	if lr != nilPtr {
		setf(tx, lr, rbParent, n)
	}
	p := getf(tx, n, rbParent)
	setf(tx, l, rbParent, p)
	if p == nilPtr {
		t.setRoot(tx, l)
	} else if getf(tx, p, rbRight) == n {
		setf(tx, p, rbRight, l)
	} else {
		setf(tx, p, rbLeft, l)
	}
	setf(tx, l, rbRight, n)
	setf(tx, n, rbParent, l)
}

// Insert adds k/v; it reports false (and updates nothing) if k exists.
func (t *RBTree) Insert(tx tm.Txn, k, v uint64) bool {
	tx.Site(SiteRBInsert)
	var parent mem.Addr
	n := t.root(tx)
	for n != nilPtr {
		parent = n
		nk := tx.Read(field(n, rbKey))
		switch {
		case k < nk:
			n = getf(tx, n, rbLeft)
		case k > nk:
			n = getf(tx, n, rbRight)
		default:
			return false
		}
	}
	z := t.m.allocNodeIn(tx, rbFields)
	tx.Write(field(z, rbKey), k)
	tx.Write(field(z, rbVal), v)
	setf(tx, z, rbLeft, nilPtr)
	setf(tx, z, rbRight, nilPtr)
	setf(tx, z, rbParent, parent)
	tx.Write(field(z, rbColor), red)
	if parent == nilPtr {
		t.setRoot(tx, z)
	} else if k < tx.Read(field(parent, rbKey)) {
		setf(tx, parent, rbLeft, z)
	} else {
		setf(tx, parent, rbRight, z)
	}
	t.insertFixup(tx, z)
	return true
}

// insertFixup restores the red-black invariants after inserting z.
func (t *RBTree) insertFixup(tx tm.Txn, z mem.Addr) {
	tx.Site(SiteRBFixup)
	for {
		p := getf(tx, z, rbParent)
		if p == nilPtr || t.color(tx, p) == black {
			break
		}
		g := getf(tx, p, rbParent) // grandparent exists: p is red, root is black
		if getf(tx, g, rbLeft) == p {
			u := getf(tx, g, rbRight)
			if t.color(tx, u) == red {
				tx.Write(field(p, rbColor), black)
				tx.Write(field(u, rbColor), black)
				tx.Write(field(g, rbColor), red)
				z = g
				continue
			}
			if getf(tx, p, rbRight) == z {
				z = p
				t.rotateLeft(tx, z)
				p = getf(tx, z, rbParent)
				g = getf(tx, p, rbParent)
			}
			tx.Write(field(p, rbColor), black)
			tx.Write(field(g, rbColor), red)
			t.rotateRight(tx, g)
		} else {
			u := getf(tx, g, rbLeft)
			if t.color(tx, u) == red {
				tx.Write(field(p, rbColor), black)
				tx.Write(field(u, rbColor), black)
				tx.Write(field(g, rbColor), red)
				z = g
				continue
			}
			if getf(tx, p, rbLeft) == z {
				z = p
				t.rotateRight(tx, z)
				p = getf(tx, z, rbParent)
				g = getf(tx, p, rbParent)
			}
			tx.Write(field(p, rbColor), black)
			tx.Write(field(g, rbColor), red)
			t.rotateLeft(tx, g)
		}
	}
	root := t.root(tx)
	if t.color(tx, root) != black {
		tx.Write(field(root, rbColor), black)
	}
}

// transplant replaces subtree u with subtree v (v may be nil; vParent is
// used when v is nil, following the nil-as-zero convention).
func (t *RBTree) transplant(tx tm.Txn, u, v mem.Addr) {
	p := getf(tx, u, rbParent)
	if p == nilPtr {
		t.setRoot(tx, v)
	} else if getf(tx, p, rbLeft) == u {
		setf(tx, p, rbLeft, v)
	} else {
		setf(tx, p, rbRight, v)
	}
	if v != nilPtr {
		setf(tx, v, rbParent, p)
	}
}

// minimum returns the leftmost node of the subtree rooted at n.
func (t *RBTree) minimum(tx tm.Txn, n mem.Addr) mem.Addr {
	for {
		l := getf(tx, n, rbLeft)
		if l == nilPtr {
			return n
		}
		n = l
	}
}

// Delete removes k, reporting whether it was present.
func (t *RBTree) Delete(tx tm.Txn, k uint64) bool {
	tx.Site(SiteRBDelete)
	z := t.root(tx)
	for z != nilPtr {
		zk := tx.Read(field(z, rbKey))
		if k < zk {
			z = getf(tx, z, rbLeft)
		} else if k > zk {
			z = getf(tx, z, rbRight)
		} else {
			break
		}
	}
	if z == nilPtr {
		return false
	}

	y := z
	yColor := t.color(tx, y)
	var x, xParent mem.Addr
	if getf(tx, z, rbLeft) == nilPtr {
		x = getf(tx, z, rbRight)
		xParent = getf(tx, z, rbParent)
		t.transplant(tx, z, x)
	} else if getf(tx, z, rbRight) == nilPtr {
		x = getf(tx, z, rbLeft)
		xParent = getf(tx, z, rbParent)
		t.transplant(tx, z, x)
	} else {
		y = t.minimum(tx, getf(tx, z, rbRight))
		yColor = t.color(tx, y)
		x = getf(tx, y, rbRight)
		if getf(tx, y, rbParent) == z {
			xParent = y
		} else {
			xParent = getf(tx, y, rbParent)
			t.transplant(tx, y, x)
			zr := getf(tx, z, rbRight)
			setf(tx, y, rbRight, zr)
			setf(tx, zr, rbParent, y)
		}
		t.transplant(tx, z, y)
		zl := getf(tx, z, rbLeft)
		setf(tx, y, rbLeft, zl)
		setf(tx, zl, rbParent, y)
		tx.Write(field(y, rbColor), t.color(tx, z))
	}
	if yColor == black {
		t.deleteFixup(tx, x, xParent)
	}
	return true
}

// deleteFixup restores the invariants after removing a black node; x may
// be nil, in which case xParent locates it.
func (t *RBTree) deleteFixup(tx tm.Txn, x, xParent mem.Addr) {
	tx.Site(SiteRBFixup)
	for x != t.root(tx) && t.color(tx, x) == black {
		if xParent == nilPtr {
			break
		}
		if getf(tx, xParent, rbLeft) == x {
			w := getf(tx, xParent, rbRight)
			if t.color(tx, w) == red {
				tx.Write(field(w, rbColor), black)
				tx.Write(field(xParent, rbColor), red)
				t.rotateLeft(tx, xParent)
				w = getf(tx, xParent, rbRight)
			}
			if t.color(tx, getf(tx, w, rbLeft)) == black && t.color(tx, getf(tx, w, rbRight)) == black {
				tx.Write(field(w, rbColor), red)
				x = xParent
				xParent = getf(tx, x, rbParent)
			} else {
				if t.color(tx, getf(tx, w, rbRight)) == black {
					wl := getf(tx, w, rbLeft)
					if wl != nilPtr {
						tx.Write(field(wl, rbColor), black)
					}
					tx.Write(field(w, rbColor), red)
					t.rotateRight(tx, w)
					w = getf(tx, xParent, rbRight)
				}
				tx.Write(field(w, rbColor), t.color(tx, xParent))
				tx.Write(field(xParent, rbColor), black)
				wr := getf(tx, w, rbRight)
				if wr != nilPtr {
					tx.Write(field(wr, rbColor), black)
				}
				t.rotateLeft(tx, xParent)
				x = t.root(tx)
				xParent = nilPtr
			}
		} else {
			w := getf(tx, xParent, rbLeft)
			if t.color(tx, w) == red {
				tx.Write(field(w, rbColor), black)
				tx.Write(field(xParent, rbColor), red)
				t.rotateRight(tx, xParent)
				w = getf(tx, xParent, rbLeft)
			}
			if t.color(tx, getf(tx, w, rbRight)) == black && t.color(tx, getf(tx, w, rbLeft)) == black {
				tx.Write(field(w, rbColor), red)
				x = xParent
				xParent = getf(tx, x, rbParent)
			} else {
				if t.color(tx, getf(tx, w, rbLeft)) == black {
					wr := getf(tx, w, rbRight)
					if wr != nilPtr {
						tx.Write(field(wr, rbColor), black)
					}
					tx.Write(field(w, rbColor), red)
					t.rotateLeft(tx, w)
					w = getf(tx, xParent, rbLeft)
				}
				tx.Write(field(w, rbColor), t.color(tx, xParent))
				tx.Write(field(xParent, rbColor), black)
				wl := getf(tx, w, rbLeft)
				if wl != nilPtr {
					tx.Write(field(wl, rbColor), black)
				}
				t.rotateRight(tx, xParent)
				x = t.root(tx)
				xParent = nilPtr
			}
		}
	}
	if x != nilPtr {
		tx.Write(field(x, rbColor), black)
	}
}

// Set inserts or updates k/v.
func (t *RBTree) Set(tx tm.Txn, k, v uint64) {
	tx.Site(SiteRBLookup)
	n := t.root(tx)
	for n != nilPtr {
		nk := tx.Read(field(n, rbKey))
		switch {
		case k < nk:
			n = getf(tx, n, rbLeft)
		case k > nk:
			n = getf(tx, n, rbRight)
		default:
			tx.Write(field(n, rbVal), v)
			return
		}
	}
	t.Insert(tx, k, v)
}

// Keys returns all keys in sorted order (read-only in-order walk).
func (t *RBTree) Keys(tx tm.Txn) []uint64 {
	tx.Site(SiteRBLookup)
	var out []uint64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == nilPtr {
			return
		}
		walk(getf(tx, n, rbLeft))
		out = append(out, tx.Read(field(n, rbKey)))
		walk(getf(tx, n, rbRight))
	}
	walk(t.root(tx))
	return out
}

// SeedNonTx inserts keys (value=key) without a transaction for
// initialisation; it reuses the transactional code through a trivial
// pass-through transaction shim.
func (t *RBTree) SeedNonTx(keys []uint64) {
	sh := nonTxShim{e: t.m.E}
	for _, k := range keys {
		t.Insert(sh, k, k)
	}
}

// CheckInvariants verifies the red-black properties through tx; it
// returns an empty string when the tree is valid or a description of the
// violated property. Tests and the write-skew study use it to detect
// structural corruption.
func (t *RBTree) CheckInvariants(tx tm.Txn) string {
	root := t.root(tx)
	if root == nilPtr {
		return ""
	}
	if t.color(tx, root) != black {
		return "root is not black"
	}
	type res struct {
		blackHeight int
		ok          bool
	}
	var bad string
	var walk func(n mem.Addr, min, max uint64) res
	walk = func(n mem.Addr, min, max uint64) res {
		if n == nilPtr {
			return res{1, true}
		}
		k := tx.Read(field(n, rbKey))
		if k < min || k > max {
			bad = "BST order violated"
			return res{0, false}
		}
		c := t.color(tx, n)
		l, r := getf(tx, n, rbLeft), getf(tx, n, rbRight)
		if c == red && (t.color(tx, l) == red || t.color(tx, r) == red) {
			bad = "red node with red child"
			return res{0, false}
		}
		var lmax, rmin uint64
		if k > 0 {
			lmax = k - 1
		}
		rmin = k + 1
		lr := walk(l, min, lmax)
		rr := walk(r, rmin, max)
		if !lr.ok || !rr.ok {
			return res{0, false}
		}
		if lr.blackHeight != rr.blackHeight {
			bad = "black height mismatch"
			return res{0, false}
		}
		h := lr.blackHeight
		if c == black {
			h++
		}
		return res{h, true}
	}
	if r := walk(root, 0, ^uint64(0)); !r.ok {
		return bad
	}
	return ""
}

// nonTxShim adapts non-transactional engine access to the tm.Txn surface
// so seeding can reuse transactional structure code.
type nonTxShim struct{ e tm.Engine }

func (s nonTxShim) Read(a mem.Addr) uint64         { return s.e.NonTxRead(a) }
func (s nonTxShim) Write(a mem.Addr, v uint64)     { s.e.NonTxWrite(a, v) }
func (s nonTxShim) ReadPromoted(a mem.Addr) uint64 { return s.e.NonTxRead(a) }
func (s nonTxShim) Commit() error                  { return nil }
func (s nonTxShim) Abort()                         {}
func (s nonTxShim) Site(string) tm.Txn             { return s }
