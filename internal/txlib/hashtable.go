package txlib

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/tm"
)

// Hashtable is a fixed-bucket chained hash table, the lookup structure of
// the genome, intruder and vacation kernels. Each bucket head occupies its
// own cache line so that unrelated buckets do not conflict under the
// line-granularity conflict detection of §6.1; chains reuse the list node
// layout (key, value, next).
type Hashtable struct {
	m        *Mem
	buckets  mem.Addr // array of bucket-head pointers, one per line
	nBuckets uint64
}

// Site labels for the write-skew tool.
const (
	SiteHashLookup = "hashtable.lookup"
	SiteHashInsert = "hashtable.insert"
	SiteHashRemove = "hashtable.remove"
)

// NewHashtable creates a table with nBuckets chains (rounded up to 1).
func NewHashtable(m *Mem, nBuckets int) *Hashtable {
	if nBuckets < 1 {
		nBuckets = 1
	}
	h := &Hashtable{m: m, nBuckets: uint64(nBuckets)}
	h.buckets = m.A.AllocLines(nBuckets)
	for i := 0; i < nBuckets; i++ {
		m.E.NonTxWrite(h.bucket(uint64(i)), nilPtr)
	}
	return h
}

// bucket returns the address of bucket i's head pointer.
func (h *Hashtable) bucket(i uint64) mem.Addr {
	return h.buckets + mem.Addr(i*mem.LineBytes)
}

// hash spreads keys over buckets (splitmix64 finaliser).
func (h *Hashtable) hash(k uint64) uint64 {
	z := k + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) % h.nBuckets
}

// Get returns the value stored under k.
func (h *Hashtable) Get(tx tm.Txn, k uint64) (uint64, bool) {
	tx.Site(SiteHashLookup)
	cur := mem.Addr(tx.Read(h.bucket(h.hash(k))))
	for cur != nilPtr {
		if tx.Read(field(cur, listKey)) == k {
			return tx.Read(field(cur, listVal)), true
		}
		cur = mem.Addr(tx.Read(field(cur, listNext)))
	}
	return 0, false
}

// Contains reports whether k is present.
func (h *Hashtable) Contains(tx tm.Txn, k uint64) bool {
	_, ok := h.Get(tx, k)
	return ok
}

// Insert adds k/v at the head of its chain; it reports false if k exists.
func (h *Hashtable) Insert(tx tm.Txn, k, v uint64) bool {
	tx.Site(SiteHashLookup)
	b := h.bucket(h.hash(k))
	head := mem.Addr(tx.Read(b))
	for cur := head; cur != nilPtr; cur = mem.Addr(tx.Read(field(cur, listNext))) {
		if tx.Read(field(cur, listKey)) == k {
			return false
		}
	}
	tx.Site(SiteHashInsert)
	n := h.m.allocNodeIn(tx, listFields)
	tx.Write(field(n, listKey), k)
	tx.Write(field(n, listVal), v)
	tx.Write(field(n, listNext), uint64(head))
	tx.Write(b, uint64(n))
	return true
}

// Set inserts or updates k/v.
func (h *Hashtable) Set(tx tm.Txn, k, v uint64) {
	tx.Site(SiteHashLookup)
	b := h.bucket(h.hash(k))
	for cur := mem.Addr(tx.Read(b)); cur != nilPtr; cur = mem.Addr(tx.Read(field(cur, listNext))) {
		if tx.Read(field(cur, listKey)) == k {
			tx.Write(field(cur, listVal), v)
			return
		}
	}
	h.Insert(tx, k, v)
}

// Add increments the value under k by delta, inserting delta if absent;
// it returns the new value. This is the read-modify-write the kmeans
// kernel issues.
func (h *Hashtable) Add(tx tm.Txn, k, delta uint64) uint64 {
	tx.Site(SiteHashLookup)
	b := h.bucket(h.hash(k))
	for cur := mem.Addr(tx.Read(b)); cur != nilPtr; cur = mem.Addr(tx.Read(field(cur, listNext))) {
		if tx.Read(field(cur, listKey)) == k {
			v := tx.Read(field(cur, listVal)) + delta
			tx.Write(field(cur, listVal), v)
			return v
		}
	}
	h.Insert(tx, k, delta)
	return delta
}

// Remove deletes k, reporting whether it was present. The unlink nulls
// the victim's next pointer (the Listing-2 fix) to avoid write skew on
// adjacent chain removals.
func (h *Hashtable) Remove(tx tm.Txn, k uint64) bool {
	tx.Site(SiteHashRemove)
	b := h.bucket(h.hash(k))
	prev := mem.Addr(0)
	cur := mem.Addr(tx.Read(b))
	for cur != nilPtr {
		next := mem.Addr(tx.Read(field(cur, listNext)))
		if tx.Read(field(cur, listKey)) == k {
			if prev == nilPtr {
				tx.Write(b, uint64(next))
			} else {
				tx.Write(field(prev, listNext), uint64(next))
			}
			tx.Write(field(cur, listNext), nilPtr)
			return true
		}
		prev, cur = cur, next
	}
	return false
}

// SeedNonTx inserts pairs without a transaction. Keys are inserted in
// ascending order so the chain layout (and with it the simulation) is
// deterministic.
func (h *Hashtable) SeedNonTx(pairs map[uint64]uint64) {
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sh := nonTxShim{e: h.m.E}
	for _, k := range keys {
		h.Set(sh, k, pairs[k])
	}
}
