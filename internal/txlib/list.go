package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// List is a sorted singly linked list with set semantics, the container of
// the paper's List microbenchmark and of Listing 2's write-skew study. A
// sentinel head node keeps insert/remove uniform.
//
// Node layout (one cache line): key, value, next.
const (
	listKey = iota
	listVal
	listNext
	listFields
)

// List is a transactional sorted linked list.
type List struct {
	m *Mem
	// head is the sentinel node; head.next is the first element.
	head mem.Addr
	// UnsafeRemove reproduces Listing 2 verbatim: remove does not null
	// the victim's next pointer, so adjacent removes exhibit write
	// skew under snapshot isolation. The default (false) applies the
	// line-10 fix, which forces a write-write conflict instead.
	UnsafeRemove bool
}

// NewList creates an empty list. Construction is non-transactional
// (single-threaded initialisation).
func NewList(m *Mem) *List {
	l := &List{m: m, head: m.allocNode(listFields)}
	m.E.NonTxWrite(field(l.head, listNext), nilPtr)
	return l
}

// site labels help the write-skew tool point at the offending source
// operation (§5.1).
const (
	SiteListTraverse = "list.traverse"
	SiteListInsert   = "list.insert"
	SiteListRemove   = "list.remove"
	SiteListUnlink   = "list.remove:unlink"
)

// find returns the last node with key < k and its successor, reading
// through tx.
func (l *List) find(tx tm.Txn, k uint64) (prev, next mem.Addr) {
	tx.Site(SiteListTraverse)
	prev = l.head
	next = mem.Addr(tx.Read(field(prev, listNext)))
	for next != nilPtr {
		nk := tx.Read(field(next, listKey))
		if nk >= k {
			break
		}
		prev = next
		next = mem.Addr(tx.Read(field(prev, listNext)))
	}
	return prev, next
}

// Insert adds k (with value v) keeping the list sorted; it reports false
// if k was already present.
func (l *List) Insert(tx tm.Txn, k, v uint64) bool {
	prev, next := l.find(tx, k)
	if next != nilPtr && tx.Read(field(next, listKey)) == k {
		return false
	}
	tx.Site(SiteListInsert)
	n := l.m.allocNodeIn(tx, listFields)
	tx.Write(field(n, listKey), k)
	tx.Write(field(n, listVal), v)
	tx.Write(field(n, listNext), uint64(next))
	tx.Write(field(prev, listNext), uint64(n))
	return true
}

// Remove deletes k, reporting whether it was present. Unless UnsafeRemove
// is set, the victim's next pointer is nulled (Listing 2, line 10) so that
// concurrent removals of adjacent elements collide on a write-write
// conflict instead of silently corrupting the list.
func (l *List) Remove(tx tm.Txn, k uint64) bool {
	prev, next := l.find(tx, k)
	if next == nilPtr || tx.Read(field(next, listKey)) != k {
		return false
	}
	tx.Site(SiteListRemove)
	succ := tx.Read(field(next, listNext))
	tx.Write(field(prev, listNext), succ)
	if !l.UnsafeRemove {
		tx.Site(SiteListUnlink)
		tx.Write(field(next, listNext), nilPtr)
	}
	return true
}

// Contains reports whether k is in the list.
func (l *List) Contains(tx tm.Txn, k uint64) bool {
	_, next := l.find(tx, k)
	return next != nilPtr && tx.Read(field(next, listKey)) == k
}

// Get returns the value stored under k.
func (l *List) Get(tx tm.Txn, k uint64) (uint64, bool) {
	_, next := l.find(tx, k)
	if next == nilPtr || tx.Read(field(next, listKey)) != k {
		return 0, false
	}
	return tx.Read(field(next, listVal)), true
}

// Set updates the value stored under k, inserting if absent.
func (l *List) Set(tx tm.Txn, k, v uint64) {
	_, next := l.find(tx, k)
	if next != nilPtr && tx.Read(field(next, listKey)) == k {
		tx.Write(field(next, listVal), v)
		return
	}
	l.Insert(tx, k, v)
}

// Len counts the elements (a long read-only traversal).
func (l *List) Len(tx tm.Txn) int {
	tx.Site(SiteListTraverse)
	n := 0
	cur := mem.Addr(tx.Read(field(l.head, listNext)))
	for cur != nilPtr {
		n++
		cur = mem.Addr(tx.Read(field(cur, listNext)))
	}
	return n
}

// Keys returns the keys in order (read-only traversal).
func (l *List) Keys(tx tm.Txn) []uint64 {
	tx.Site(SiteListTraverse)
	var out []uint64
	cur := mem.Addr(tx.Read(field(l.head, listNext)))
	for cur != nilPtr {
		out = append(out, tx.Read(field(cur, listKey)))
		cur = mem.Addr(tx.Read(field(cur, listNext)))
	}
	return out
}

// SeedNonTx inserts keys without a transaction, for single-threaded
// initialisation before measurement.
func (l *List) SeedNonTx(keys []uint64) {
	e := l.m.E
	for _, k := range keys {
		prev := l.head
		next := mem.Addr(e.NonTxRead(field(prev, listNext)))
		for next != nilPtr && e.NonTxRead(field(next, listKey)) < k {
			prev = next
			next = mem.Addr(e.NonTxRead(field(prev, listNext)))
		}
		if next != nilPtr && e.NonTxRead(field(next, listKey)) == k {
			continue
		}
		n := l.m.allocNode(listFields)
		e.NonTxWrite(field(n, listKey), k)
		e.NonTxWrite(field(n, listNext), uint64(next))
		e.NonTxWrite(field(prev, listNext), uint64(n))
	}
}

// KeysNonTx returns the current keys without a transaction (consistency
// checking after a run).
func (l *List) KeysNonTx() []uint64 {
	e := l.m.E
	var out []uint64
	cur := mem.Addr(e.NonTxRead(field(l.head, listNext)))
	for cur != nilPtr {
		out = append(out, e.NonTxRead(field(cur, listKey)))
		cur = mem.Addr(e.NonTxRead(field(cur, listNext)))
	}
	return out
}
