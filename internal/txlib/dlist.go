package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// DList is a sorted doubly linked list — the second container in which the
// paper's tool found write-skew anomalies (§5.1). Like List, removal has a
// safe mode (null the victim's links, forcing write-write conflicts on
// adjacent removes) and an unsafe mode reproducing the anomaly.
//
// Node layout (one cache line): key, value, next, prev.
const (
	dKey = iota
	dVal
	dNext
	dPrev
	dFields
)

// DList is a transactional sorted doubly linked list.
type DList struct {
	m    *Mem
	head mem.Addr // sentinel
	tail mem.Addr // sentinel
	// UnsafeRemove reproduces the write-skew-prone removal.
	UnsafeRemove bool
}

// Site labels for the write-skew tool.
const (
	SiteDListTraverse = "dlist.traverse"
	SiteDListInsert   = "dlist.insert"
	SiteDListRemove   = "dlist.remove"
	SiteDListUnlink   = "dlist.remove:unlink"
)

// NewDList creates an empty list with head/tail sentinels.
func NewDList(m *Mem) *DList {
	l := &DList{m: m, head: m.allocNode(dFields), tail: m.allocNode(dFields)}
	e := m.E
	e.NonTxWrite(field(l.head, dNext), uint64(l.tail))
	e.NonTxWrite(field(l.head, dPrev), nilPtr)
	e.NonTxWrite(field(l.tail, dPrev), uint64(l.head))
	e.NonTxWrite(field(l.tail, dNext), nilPtr)
	return l
}

// find returns the first node with key >= k (possibly the tail sentinel).
func (l *DList) find(tx tm.Txn, k uint64) mem.Addr {
	tx.Site(SiteDListTraverse)
	cur := mem.Addr(tx.Read(field(l.head, dNext)))
	for cur != l.tail && tx.Read(field(cur, dKey)) < k {
		cur = mem.Addr(tx.Read(field(cur, dNext)))
	}
	return cur
}

// Insert adds k/v in sorted position; false if k exists.
func (l *DList) Insert(tx tm.Txn, k, v uint64) bool {
	at := l.find(tx, k)
	if at != l.tail && tx.Read(field(at, dKey)) == k {
		return false
	}
	tx.Site(SiteDListInsert)
	prev := mem.Addr(tx.Read(field(at, dPrev)))
	n := l.m.allocNodeIn(tx, dFields)
	tx.Write(field(n, dKey), k)
	tx.Write(field(n, dVal), v)
	tx.Write(field(n, dNext), uint64(at))
	tx.Write(field(n, dPrev), uint64(prev))
	tx.Write(field(prev, dNext), uint64(n))
	tx.Write(field(at, dPrev), uint64(n))
	return true
}

// Remove deletes k, reporting whether it was present.
func (l *DList) Remove(tx tm.Txn, k uint64) bool {
	at := l.find(tx, k)
	if at == l.tail || tx.Read(field(at, dKey)) != k {
		return false
	}
	tx.Site(SiteDListRemove)
	prev := mem.Addr(tx.Read(field(at, dPrev)))
	next := mem.Addr(tx.Read(field(at, dNext)))
	tx.Write(field(prev, dNext), uint64(next))
	tx.Write(field(next, dPrev), uint64(prev))
	if !l.UnsafeRemove {
		tx.Site(SiteDListUnlink)
		tx.Write(field(at, dNext), nilPtr)
		tx.Write(field(at, dPrev), nilPtr)
	}
	return true
}

// Contains reports whether k is present.
func (l *DList) Contains(tx tm.Txn, k uint64) bool {
	at := l.find(tx, k)
	return at != l.tail && tx.Read(field(at, dKey)) == k
}

// Keys returns the keys in order.
func (l *DList) Keys(tx tm.Txn) []uint64 {
	tx.Site(SiteDListTraverse)
	var out []uint64
	cur := mem.Addr(tx.Read(field(l.head, dNext)))
	for cur != l.tail {
		out = append(out, tx.Read(field(cur, dKey)))
		cur = mem.Addr(tx.Read(field(cur, dNext)))
	}
	return out
}

// CheckConsistent verifies forward/backward link agreement outside any
// transaction; it returns an empty string when consistent.
func (l *DList) CheckConsistent() string {
	e := l.m.E
	prev := l.head
	cur := mem.Addr(e.NonTxRead(field(l.head, dNext)))
	for cur != nilPtr && cur != l.tail {
		if mem.Addr(e.NonTxRead(field(cur, dPrev))) != prev {
			return "prev link does not match forward traversal"
		}
		prev = cur
		cur = mem.Addr(e.NonTxRead(field(cur, dNext)))
	}
	if cur == nilPtr {
		return "forward chain broken (nil before tail sentinel)"
	}
	if mem.Addr(e.NonTxRead(field(l.tail, dPrev))) != prev {
		return "tail prev does not match last node"
	}
	return ""
}

// SeedNonTx inserts keys (value=key) without a transaction.
func (l *DList) SeedNonTx(keys []uint64) {
	sh := nonTxShim{e: l.m.E}
	for _, k := range keys {
		l.Insert(sh, k, k)
	}
}
