package txlib

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tm"
)

// run executes body with a fresh SI-TM engine on n logical threads.
func run(n int, seed uint64, body func(m *Mem, th *sched.Thread)) *Mem {
	e := core.New(core.DefaultConfig())
	m := NewMem(e)
	s := sched.New(n, seed)
	s.Run(func(th *sched.Thread) { body(m, th) })
	return m
}

// atomic is a short-hand Atomic with default backoff.
func atomic(m *Mem, th *sched.Thread, body func(tx tm.Txn) error) {
	if err := tm.Atomic(m.E, th, tm.DefaultBackoff(), body); err != nil {
		panic(err)
	}
}

func TestListInsertContainsRemove(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		l := NewList(m)
		atomic(m, th, func(tx tm.Txn) error {
			if !l.Insert(tx, 5, 50) || !l.Insert(tx, 3, 30) || !l.Insert(tx, 9, 90) {
				t.Error("insert failed")
			}
			if l.Insert(tx, 5, 55) {
				t.Error("duplicate insert succeeded")
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			if !l.Contains(tx, 3) || !l.Contains(tx, 5) || !l.Contains(tx, 9) || l.Contains(tx, 4) {
				t.Error("contains wrong")
			}
			if v, ok := l.Get(tx, 5); !ok || v != 50 {
				t.Errorf("Get(5) = %d,%v", v, ok)
			}
			if got := l.Keys(tx); len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
				t.Errorf("keys = %v", got)
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			if !l.Remove(tx, 5) {
				t.Error("remove failed")
			}
			if l.Remove(tx, 5) {
				t.Error("double remove succeeded")
			}
			if l.Len(tx) != 2 {
				t.Errorf("len = %d", l.Len(tx))
			}
			return nil
		})
	})
}

func TestListSeedNonTx(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		l := NewList(m)
		l.SeedNonTx([]uint64{7, 2, 2, 5})
		got := l.KeysNonTx()
		if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 7 {
			t.Errorf("seeded keys = %v", got)
		}
	})
}

func TestListMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		model := map[uint64]bool{}
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			l := NewList(m)
			for _, op := range ops {
				k := uint64(op % 64)
				atomic(m, th, func(tx tm.Txn) error {
					switch op % 3 {
					case 0:
						if l.Insert(tx, k, k) == model[k] {
							ok = false
						}
						model[k] = true
					case 1:
						if l.Remove(tx, k) != model[k] {
							ok = false
						}
						delete(model, k)
					default:
						if l.Contains(tx, k) != model[k] {
							ok = false
						}
					}
					return nil
				})
			}
			// Final contents must match the model, sorted.
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := l.KeysNonTx()
			if len(got) != len(want) {
				ok = false
				return
			}
			for i := range want {
				if got[i] != want[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestListConcurrentSetSemantics(t *testing.T) {
	// Concurrent inserts/removes across threads must preserve set
	// semantics: no duplicates, sorted order.
	m := run(8, 42, func(m *Mem, th *sched.Thread) {})
	l := NewList(m)
	var keys []uint64
	for i := uint64(1); i <= 50; i++ {
		keys = append(keys, i*2)
	}
	l.SeedNonTx(keys)
	s := sched.New(8, 7)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 40; i++ {
			k := uint64(1 + th.Rand().Intn(100))
			atomic(m, th, func(tx tm.Txn) error {
				if th.Rand().Intn(2) == 0 {
					l.Insert(tx, k, k)
				} else {
					l.Remove(tx, k)
				}
				return nil
			})
		}
	})
	got := l.KeysNonTx()
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("keys not strictly sorted at %d: %v", i, got)
		}
	}
}

func TestRBTreeBasic(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		tr := NewRBTree(m)
		atomic(m, th, func(tx tm.Txn) error {
			for _, k := range []uint64{10, 5, 15, 3, 8, 12, 20} {
				if !tr.Insert(tx, k, k*10) {
					t.Errorf("insert %d failed", k)
				}
			}
			if tr.Insert(tx, 10, 1) {
				t.Error("duplicate insert succeeded")
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			if v, ok := tr.Lookup(tx, 8); !ok || v != 80 {
				t.Errorf("Lookup(8) = %d,%v", v, ok)
			}
			if _, ok := tr.Lookup(tx, 9); ok {
				t.Error("Lookup(9) found phantom")
			}
			if msg := tr.CheckInvariants(tx); msg != "" {
				t.Errorf("invariants: %s", msg)
			}
			ks := tr.Keys(tx)
			if len(ks) != 7 || !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
				t.Errorf("keys = %v", ks)
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			for _, k := range []uint64{10, 3, 20} {
				if !tr.Delete(tx, k) {
					t.Errorf("delete %d failed", k)
				}
			}
			if tr.Delete(tx, 10) {
				t.Error("double delete succeeded")
			}
			if msg := tr.CheckInvariants(tx); msg != "" {
				t.Errorf("invariants after delete: %s", msg)
			}
			return nil
		})
	})
}

func TestRBTreeMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		model := map[uint64]uint64{}
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			tr := NewRBTree(m)
			for _, op := range ops {
				k := uint64(op % 97)
				atomic(m, th, func(tx tm.Txn) error {
					switch op % 3 {
					case 0:
						_, had := model[k]
						if tr.Insert(tx, k, k+1) == had {
							ok = false
						}
						if !had {
							model[k] = k + 1
						}
					case 1:
						_, had := model[k]
						if tr.Delete(tx, k) != had {
							ok = false
						}
						delete(model, k)
					default:
						v, got := tr.Lookup(tx, k)
						wv, want := model[k]
						if got != want || (got && v != wv) {
							ok = false
						}
					}
					if msg := tr.CheckInvariants(tx); msg != "" {
						t.Logf("invariant violation: %s", msg)
						ok = false
					}
					return nil
				})
				if !ok {
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeLargeSequential(t *testing.T) {
	run(1, 3, func(m *Mem, th *sched.Thread) {
		tr := NewRBTree(m)
		r := sched.NewRand(5)
		present := map[uint64]bool{}
		for i := 0; i < 400; i++ {
			k := r.Uint64() % 1000
			atomic(m, th, func(tx tm.Txn) error {
				if r.Intn(3) != 0 {
					tr.Insert(tx, k, k)
					present[k] = true
				} else {
					tr.Delete(tx, k)
					delete(present, k)
				}
				return nil
			})
		}
		atomic(m, th, func(tx tm.Txn) error {
			if msg := tr.CheckInvariants(tx); msg != "" {
				t.Errorf("invariants: %s", msg)
			}
			ks := tr.Keys(tx)
			if len(ks) != len(present) {
				t.Errorf("size = %d, want %d", len(ks), len(present))
			}
			return nil
		})
	})
}

func TestRBTreeConcurrent(t *testing.T) {
	m := run(1, 1, func(m *Mem, th *sched.Thread) {})
	// Concurrent tree updates under snapshot isolation require the
	// §5.1 repair — read promotion on the update paths — or rebalances
	// with disjoint write sets corrupt the structure (the paper found
	// "multiple write skews in a Red-Black Tree implementation").
	m.E.Promote(SiteRBInsert)
	m.E.Promote(SiteRBDelete)
	m.E.Promote(SiteRBFixup)
	tr := NewRBTree(m)
	var seed []uint64
	for i := uint64(0); i < 100; i++ {
		seed = append(seed, i*3)
	}
	tr.SeedNonTx(seed)
	s := sched.New(8, 9)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 30; i++ {
			k := uint64(th.Rand().Intn(300))
			atomic(m, th, func(tx tm.Txn) error {
				switch th.Rand().Intn(4) {
				case 0:
					tr.Insert(tx, k, k)
				case 1:
					tr.Delete(tx, k)
				default:
					tr.Contains(tx, k)
				}
				return nil
			})
		}
	})
	// The final tree must satisfy every red-black invariant.
	s2 := sched.New(1, 1)
	s2.Run(func(th *sched.Thread) {
		atomic(m, th, func(tx tm.Txn) error {
			if msg := tr.CheckInvariants(tx); msg != "" {
				t.Errorf("invariants after concurrency: %s", msg)
			}
			return nil
		})
	})
}

func TestHashtable(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		h := NewHashtable(m, 16)
		atomic(m, th, func(tx tm.Txn) error {
			for i := uint64(0); i < 40; i++ {
				if !h.Insert(tx, i, i*2) {
					t.Errorf("insert %d failed", i)
				}
			}
			if h.Insert(tx, 7, 1) {
				t.Error("duplicate insert succeeded")
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			for i := uint64(0); i < 40; i++ {
				if v, ok := h.Get(tx, i); !ok || v != i*2 {
					t.Errorf("Get(%d) = %d,%v", i, v, ok)
				}
			}
			if _, ok := h.Get(tx, 99); ok {
				t.Error("phantom key")
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			if !h.Remove(tx, 7) || h.Remove(tx, 7) {
				t.Error("remove semantics wrong")
			}
			if h.Contains(tx, 7) {
				t.Error("removed key still present")
			}
			h.Set(tx, 8, 99)
			if v, _ := h.Get(tx, 8); v != 99 {
				t.Error("Set did not update")
			}
			if got := h.Add(tx, 8, 1); got != 100 {
				t.Errorf("Add = %d, want 100", got)
			}
			if got := h.Add(tx, 1000, 5); got != 5 {
				t.Errorf("Add new = %d, want 5", got)
			}
			return nil
		})
	})
}

func TestHashtableConcurrentDisjoint(t *testing.T) {
	// Disjoint keys across threads must not conflict at all under SI
	// when bucket count is large (padded buckets).
	e := core.New(core.DefaultConfig())
	m := NewMem(e)
	h := NewHashtable(m, 256)
	s := sched.New(4, 11)
	s.Run(func(th *sched.Thread) {
		base := uint64(th.ID()) * 1000
		for i := uint64(0); i < 25; i++ {
			atomic(m, th, func(tx tm.Txn) error {
				h.Insert(tx, base+i, i)
				return nil
			})
		}
	})
	if got := e.Stats().Commits; got != 100 {
		t.Fatalf("commits = %d, want 100", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		q := NewQueue(m)
		atomic(m, th, func(tx tm.Txn) error {
			if !q.Empty(tx) {
				t.Error("new queue not empty")
			}
			for i := uint64(1); i <= 5; i++ {
				q.Push(tx, i)
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			for i := uint64(1); i <= 5; i++ {
				v, ok := q.Pop(tx)
				if !ok || v != i {
					t.Errorf("pop = %d,%v want %d", v, ok, i)
				}
			}
			if _, ok := q.Pop(tx); ok {
				t.Error("pop from empty succeeded")
			}
			return nil
		})
	})
}

func TestQueueConcurrentDrain(t *testing.T) {
	m := run(1, 1, func(m *Mem, th *sched.Thread) {})
	q := NewQueue(m)
	var vals []uint64
	for i := uint64(1); i <= 64; i++ {
		vals = append(vals, i)
	}
	q.SeedNonTx(vals)
	seen := map[uint64]int{}
	s := sched.New(4, 13)
	s.Run(func(th *sched.Thread) {
		for {
			var v uint64
			var ok bool
			atomic(m, th, func(tx tm.Txn) error {
				v, ok = q.Pop(tx)
				return nil
			})
			if !ok {
				return
			}
			seen[v]++
		}
	})
	if len(seen) != 64 {
		t.Fatalf("drained %d distinct values, want 64", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		h := NewHeap(m, 64)
		input := []uint64{5, 1, 9, 3, 7, 2, 8}
		atomic(m, th, func(tx tm.Txn) error {
			for _, v := range input {
				if !h.Push(tx, v) {
					t.Errorf("push %d failed", v)
				}
			}
			return nil
		})
		want := []uint64{9, 8, 7, 5, 3, 2, 1}
		atomic(m, th, func(tx tm.Txn) error {
			for _, w := range want {
				v, ok := h.Pop(tx)
				if !ok || v != w {
					t.Errorf("pop = %d,%v want %d", v, ok, w)
				}
			}
			if _, ok := h.Pop(tx); ok {
				t.Error("pop from empty succeeded")
			}
			return nil
		})
	})
}

func TestHeapCapacity(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		h := NewHeap(m, 2)
		atomic(m, th, func(tx tm.Txn) error {
			if !h.Push(tx, 1) || !h.Push(tx, 2) {
				t.Error("push failed")
			}
			if h.Push(tx, 3) {
				t.Error("push past capacity succeeded")
			}
			return nil
		})
	})
}

func TestHeapPropertyMatchesSort(t *testing.T) {
	f := func(vals []uint16, seed uint64) bool {
		if len(vals) > 60 {
			vals = vals[:60]
		}
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			h := NewHeap(m, 64)
			atomic(m, th, func(tx tm.Txn) error {
				for _, v := range vals {
					h.Push(tx, uint64(v))
				}
				return nil
			})
			sorted := make([]uint64, len(vals))
			for i, v := range vals {
				sorted[i] = uint64(v)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
			atomic(m, th, func(tx tm.Txn) error {
				for _, w := range sorted {
					v, o := h.Pop(tx)
					if !o || v != w {
						ok = false
					}
				}
				return nil
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorPaddedVsPacked(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		padded := NewVector(m, 10, true)
		packed := NewVector(m, 10, false)
		if padded.Addr(1)-padded.Addr(0) != 64 {
			t.Error("padded stride must be one line")
		}
		if packed.Addr(1)-packed.Addr(0) != 8 {
			t.Error("packed stride must be one word")
		}
		atomic(m, th, func(tx tm.Txn) error {
			for i := 0; i < 10; i++ {
				padded.Set(tx, i, uint64(i))
				packed.Set(tx, i, uint64(i*2))
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			if padded.Sum(tx) != 45 || packed.Sum(tx) != 90 {
				t.Errorf("sums = %d,%d", padded.Sum(tx), packed.Sum(tx))
			}
			if padded.Add(tx, 3, 7) != 10 {
				t.Error("Add wrong")
			}
			return nil
		})
		if padded.SumNonTx() != 52 {
			t.Errorf("SumNonTx = %d", padded.SumNonTx())
		}
	})
}

func TestVectorBoundsPanic(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		v := NewVector(m, 3, true)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		v.Addr(3)
	})
}

func TestDListBasic(t *testing.T) {
	run(1, 1, func(m *Mem, th *sched.Thread) {
		l := NewDList(m)
		atomic(m, th, func(tx tm.Txn) error {
			for _, k := range []uint64{5, 1, 3} {
				if !l.Insert(tx, k, k) {
					t.Errorf("insert %d", k)
				}
			}
			if l.Insert(tx, 3, 0) {
				t.Error("dup insert")
			}
			ks := l.Keys(tx)
			if len(ks) != 3 || ks[0] != 1 || ks[1] != 3 || ks[2] != 5 {
				t.Errorf("keys = %v", ks)
			}
			return nil
		})
		atomic(m, th, func(tx tm.Txn) error {
			if !l.Remove(tx, 3) || l.Remove(tx, 3) {
				t.Error("remove semantics")
			}
			if !l.Contains(tx, 5) || l.Contains(tx, 3) {
				t.Error("contains wrong")
			}
			return nil
		})
		if msg := l.CheckConsistent(); msg != "" {
			t.Errorf("consistency: %s", msg)
		}
	})
}

func TestDListConcurrentStaysConsistent(t *testing.T) {
	m := run(1, 1, func(m *Mem, th *sched.Thread) {})
	l := NewDList(m)
	var seed []uint64
	for i := uint64(1); i <= 60; i++ {
		seed = append(seed, i)
	}
	l.SeedNonTx(seed)
	s := sched.New(6, 17)
	s.Run(func(th *sched.Thread) {
		for i := 0; i < 30; i++ {
			k := uint64(1 + th.Rand().Intn(80))
			atomic(m, th, func(tx tm.Txn) error {
				if th.Rand().Intn(2) == 0 {
					l.Insert(tx, k, k)
				} else {
					l.Remove(tx, k)
				}
				return nil
			})
		}
	})
	if msg := l.CheckConsistent(); msg != "" {
		t.Fatalf("safe removal must keep the dlist consistent: %s", msg)
	}
}
