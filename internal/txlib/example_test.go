package txlib_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Example demonstrates the basic pattern: build an engine, allocate
// transactional structures, and run transactions on simulated threads.
func Example() {
	engine := core.New(core.DefaultConfig())
	m := txlib.NewMem(engine)
	list := txlib.NewList(m)

	machine := sched.New(2, 7)
	machine.Run(func(th *sched.Thread) {
		for i := 0; i < 5; i++ {
			k := uint64(th.ID()*10 + i + 1)
			_ = tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
				list.Insert(tx, k, k)
				return nil
			})
		}
	})
	fmt.Println("keys:", list.KeysNonTx())
	// Output:
	// keys: [1 2 3 4 5 11 12 13 14 15]
}

// ExampleRBTree shows lookups and updates on the red-black tree with the
// read promotion the paper's tool applies to its update paths.
func ExampleRBTree() {
	engine := core.New(core.DefaultConfig())
	engine.Promote(txlib.SiteRBInsert)
	engine.Promote(txlib.SiteRBDelete)
	engine.Promote(txlib.SiteRBFixup)
	m := txlib.NewMem(engine)
	tree := txlib.NewRBTree(m)

	sched.New(1, 1).Run(func(th *sched.Thread) {
		_ = tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
			for _, k := range []uint64{30, 10, 20} {
				tree.Insert(tx, k, k*100)
			}
			return nil
		})
		_ = tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
			v, ok := tree.Lookup(tx, 20)
			fmt.Println("lookup 20:", v, ok)
			fmt.Println("sorted:", tree.Keys(tx))
			return nil
		})
	})
	// Output:
	// lookup 20: 2000 true
	// sorted: [10 20 30]
}

// ExampleQueue shows FIFO semantics through transactions.
func ExampleQueue() {
	engine := core.New(core.DefaultConfig())
	m := txlib.NewMem(engine)
	q := txlib.NewQueue(m)
	sched.New(1, 1).Run(func(th *sched.Thread) {
		_ = tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
			q.Push(tx, 1)
			q.Push(tx, 2)
			return nil
		})
		_ = tm.Atomic(engine, th, tm.DefaultBackoff(), func(tx tm.Txn) error {
			a, _ := q.Pop(tx)
			b, _ := q.Pop(tx)
			fmt.Println(a, b)
			return nil
		})
	})
	// Output:
	// 1 2
}
