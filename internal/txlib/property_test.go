package txlib

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/tm"
)

// These property tests check each container against a pure-Go model under
// randomized single-threaded operation sequences (semantics) and under
// randomized concurrent mixes (structural invariants), complementing the
// example-based tests in txlib_test.go.

func TestHashtableMatchesModelProperty(t *testing.T) {
	f := func(ops []uint32, seed uint64) bool {
		model := map[uint64]uint64{}
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			h := NewHashtable(m, 8) // few buckets: long chains
			for _, op := range ops {
				k := uint64(op % 50)
				v := uint64(op >> 8)
				atomic(m, th, func(tx tm.Txn) error {
					switch op % 4 {
					case 0:
						_, had := model[k]
						if h.Insert(tx, k, v) == had {
							ok = false
						}
						if !had {
							model[k] = v
						}
					case 1:
						h.Set(tx, k, v)
						model[k] = v
					case 2:
						_, had := model[k]
						if h.Remove(tx, k) != had {
							ok = false
						}
						delete(model, k)
					default:
						got, found := h.Get(tx, k)
						want, has := model[k]
						if found != has || (found && got != want) {
							ok = false
						}
					}
					return nil
				})
				if !ok {
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHashtableAddMatchesModelProperty(t *testing.T) {
	f := func(deltas []uint8, seed uint64) bool {
		model := map[uint64]uint64{}
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			h := NewHashtable(m, 4)
			for i, d := range deltas {
				k := uint64(i % 7)
				atomic(m, th, func(tx tm.Txn) error {
					got := h.Add(tx, k, uint64(d))
					model[k] += uint64(d)
					if got != model[k] {
						ok = false
					}
					return nil
				})
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		var model []uint64
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			q := NewQueue(m)
			for _, op := range ops {
				atomic(m, th, func(tx tm.Txn) error {
					if op%3 != 0 {
						q.Push(tx, uint64(op))
						model = append(model, uint64(op))
						return nil
					}
					v, got := q.Pop(tx)
					if len(model) == 0 {
						if got {
							ok = false
						}
						return nil
					}
					if !got || v != model[0] {
						ok = false
					}
					model = model[1:]
					return nil
				})
			}
			// Drain and compare the remainder.
			atomic(m, th, func(tx tm.Txn) error {
				for _, want := range model {
					v, got := q.Pop(tx)
					if !got || v != want {
						ok = false
					}
				}
				if _, got := q.Pop(tx); got {
					ok = false
				}
				return nil
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDListMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		model := map[uint64]bool{}
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			l := NewDList(m)
			for _, op := range ops {
				k := uint64(1 + op%40)
				atomic(m, th, func(tx tm.Txn) error {
					switch op % 3 {
					case 0:
						if l.Insert(tx, k, k) == model[k] {
							ok = false
						}
						model[k] = true
					case 1:
						if l.Remove(tx, k) != model[k] {
							ok = false
						}
						delete(model, k)
					default:
						if l.Contains(tx, k) != model[k] {
							ok = false
						}
					}
					return nil
				})
			}
			if msg := l.CheckConsistent(); msg != "" {
				ok = false
			}
			// Keys must be the sorted model.
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			atomic(m, th, func(tx tm.Txn) error {
				got := l.Keys(tx)
				if len(got) != len(want) {
					ok = false
					return nil
				}
				for i := range want {
					if got[i] != want[i] {
						ok = false
					}
				}
				return nil
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorMatchesModelProperty(t *testing.T) {
	f := func(writes []uint32, padded bool, seed uint64) bool {
		const n = 16
		model := make([]uint64, n)
		ok := true
		run(1, seed, func(m *Mem, th *sched.Thread) {
			v := NewVector(m, n, padded)
			for _, w := range writes {
				i := int(w % n)
				val := uint64(w >> 4)
				atomic(m, th, func(tx tm.Txn) error {
					v.Set(tx, i, val)
					model[i] = val
					if v.Get(tx, i) != val {
						ok = false
					}
					return nil
				})
			}
			var want uint64
			for _, x := range model {
				want += x
			}
			if v.SumNonTx() != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapConcurrentNoLossNoDuplication(t *testing.T) {
	// Concurrent pushers and poppers: every popped value was pushed,
	// and pushes+pops balance.
	m := run(1, 1, func(m *Mem, th *sched.Thread) {})
	h := NewHeap(m, 1024)
	pushed := make(map[uint64]int)
	popped := make(map[uint64]int)
	s := sched.New(6, 23)
	s.Run(func(th *sched.Thread) {
		r := th.Rand()
		for i := 0; i < 25; i++ {
			if r.Intn(2) == 0 {
				v := uint64(th.ID())<<32 | uint64(i+1)
				atomic(m, th, func(tx tm.Txn) error {
					if h.Push(tx, v) {
						return nil
					}
					return nil
				})
				pushed[v]++
			} else {
				var v uint64
				var got bool
				atomic(m, th, func(tx tm.Txn) error {
					v, got = h.Pop(tx)
					return nil
				})
				if got {
					popped[v]++
				}
			}
		}
	})
	for v, n := range popped {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
		if pushed[v] != 1 {
			t.Fatalf("popped phantom value %d", v)
		}
	}
	// Drain: the remainder must be exactly pushed - popped.
	var remaining int
	sched.New(1, 1).Run(func(th *sched.Thread) {
		atomic(m, th, func(tx tm.Txn) error {
			for {
				v, ok := h.Pop(tx)
				if !ok {
					return nil
				}
				remaining++
				if pushed[v] != 1 || popped[v] != 0 {
					t.Errorf("drained unexpected value %d", v)
				}
			}
		})
	})
	if remaining != len(pushed)-len(popped) {
		t.Fatalf("remaining = %d, want %d", remaining, len(pushed)-len(popped))
	}
}
