package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// Vector is a fixed-size transactional array. Layout is selectable: Packed
// stores eight 64-bit elements per cache line — adjacent indices share a
// line and can false-share; Padded gives every element its own line, the
// layout the Array microbenchmark uses for conflict-free access to
// disjoint cells (§6.2).
type Vector struct {
	m      *Mem
	base   mem.Addr
	n      int
	padded bool
}

// Site labels for the write-skew tool.
const (
	SiteVectorRead  = "vector.read"
	SiteVectorWrite = "vector.write"
)

// NewVector creates a zeroed vector of n elements.
func NewVector(m *Mem, n int, padded bool) *Vector {
	v := &Vector{m: m, n: n, padded: padded}
	if padded {
		v.base = m.A.AllocLines(n)
	} else {
		v.base = m.A.AllocLines((n + mem.WordsPerLine - 1) / mem.WordsPerLine)
	}
	return v
}

// Len returns the element count.
func (v *Vector) Len() int { return v.n }

// Addr returns the address of element i, so kernels can mix vector data
// with raw transactional accesses.
func (v *Vector) Addr(i int) mem.Addr {
	if i < 0 || i >= v.n {
		panic("txlib: vector index out of range")
	}
	if v.padded {
		return v.base + mem.Addr(i*mem.LineBytes)
	}
	return v.base + mem.Addr(i*mem.WordBytes)
}

// Get reads element i.
func (v *Vector) Get(tx tm.Txn, i int) uint64 {
	tx.Site(SiteVectorRead)
	return tx.Read(v.Addr(i))
}

// Set writes element i.
func (v *Vector) Set(tx tm.Txn, i int, val uint64) {
	tx.Site(SiteVectorWrite)
	tx.Write(v.Addr(i), val)
}

// Add increments element i by delta and returns the new value.
func (v *Vector) Add(tx tm.Txn, i int, delta uint64) uint64 {
	tx.Site(SiteVectorRead)
	nv := tx.Read(v.Addr(i)) + delta
	tx.Site(SiteVectorWrite)
	tx.Write(v.Addr(i), nv)
	return nv
}

// Sum reads every element (the long-running read-only iteration of the
// Array microbenchmark).
func (v *Vector) Sum(tx tm.Txn) uint64 {
	tx.Site(SiteVectorRead)
	var s uint64
	for i := 0; i < v.n; i++ {
		s += tx.Read(v.Addr(i))
	}
	return s
}

// SeedNonTx fills the vector without a transaction.
func (v *Vector) SeedNonTx(vals []uint64) {
	for i, val := range vals {
		if i >= v.n {
			break
		}
		v.m.E.NonTxWrite(v.Addr(i), val)
	}
}

// SumNonTx sums outside any transaction (post-run verification).
func (v *Vector) SumNonTx() uint64 {
	var s uint64
	for i := 0; i < v.n; i++ {
		s += v.m.E.NonTxRead(v.Addr(i))
	}
	return s
}
