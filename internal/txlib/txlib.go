// Package txlib provides the transactional data structures the paper's
// microbenchmarks and STAMP kernels are built on: a sorted singly linked
// list (including the Listing-2 write-skew variant and its fix), a doubly
// linked list, a red-black tree, a hash table, a FIFO queue, a binary heap
// and a vector.
//
// Every structure stores its fields in the simulated multiversioned memory
// and accesses them exclusively through a tm.Txn, so all traversals and
// updates participate in conflict detection exactly like the RSTM
// containers the paper evaluates. Nodes are allocated on separate cache
// lines (the evaluation detects conflicts at line granularity, §6.1).
package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// Mem couples a transactional engine with the allocator of its simulated
// address space. All structures in this package are built over one Mem.
type Mem struct {
	E tm.Engine
	A *mem.Allocator
}

// NewMem returns a Mem for engine e with a fresh address space.
func NewMem(e tm.Engine) *Mem {
	return &Mem{E: e, A: mem.NewAllocator()}
}

// allocNode reserves words fields on a private cache line. The bump
// allocation itself is not transactional: if the enclosing transaction
// aborts, the address is simply never reused — the mvmalloc()-backed
// structures of §4.4 leak allocations of aborted transactions the same
// way until the allocator's free list is consulted again.
func (m *Mem) allocNode(words int) mem.Addr {
	return m.A.AllocAligned(words)
}

// txnFencer is implemented by engine transactions whose conductor supports
// horizon batching (internal/core): Fence ends any batched quantum so the
// next effect happens at the per-event scheduling point.
type txnFencer interface{ Fence() }

// allocNodeIn is allocNode from inside transaction tx. The bump allocator
// is shared non-transactional state whose hand-out order is observable
// (threads write the addresses they receive into the structures), so the
// allocation must happen at a per-event scheduling point: inside a batched
// quantum the real execution order runs ahead of the simulated order and
// would permute the addresses (see sched.Thread.TickHinted).
func (m *Mem) allocNodeIn(tx tm.Txn, words int) mem.Addr {
	if f, ok := tx.(txnFencer); ok {
		f.Fence()
	}
	return m.A.AllocAligned(words)
}

// field returns the address of 64-bit field i of the node at base.
func field(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(i*mem.WordBytes)
}

// nilPtr is the null node address.
const nilPtr = 0
