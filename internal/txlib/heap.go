package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// Heap is a transactional binary max-heap backed by a padded array, used
// as the task priority queue of the bayes kernel. The size word is a
// deliberate write hot spot: every push/pop updates it, so concurrent heap
// updates are genuine write-write conflicts under every TM flavour.
type Heap struct {
	m    *Mem
	size mem.Addr // one-word cell on its own line
	arr  *Vector
	cap  int
}

// Site labels for the write-skew tool.
const (
	SiteHeapPush = "heap.push"
	SiteHeapPop  = "heap.pop"
)

// NewHeap creates an empty heap with fixed capacity.
func NewHeap(m *Mem, capacity int) *Heap {
	h := &Heap{m: m, size: m.allocNode(1), cap: capacity}
	h.arr = NewVector(m, capacity, true)
	m.E.NonTxWrite(h.size, 0)
	return h
}

// Len returns the current element count.
func (h *Heap) Len(tx tm.Txn) int {
	return int(tx.Read(h.size))
}

// Push inserts v; it reports false when the heap is full.
func (h *Heap) Push(tx tm.Txn, v uint64) bool {
	tx.Site(SiteHeapPush)
	n := int(tx.Read(h.size))
	if n >= h.cap {
		return false
	}
	i := n
	h.arr.Set(tx, i, v)
	for i > 0 {
		parent := (i - 1) / 2
		pv := h.arr.Get(tx, parent)
		if pv >= v {
			break
		}
		h.arr.Set(tx, i, pv)
		h.arr.Set(tx, parent, v)
		i = parent
	}
	tx.Write(h.size, uint64(n+1))
	return true
}

// Pop removes and returns the maximum element.
func (h *Heap) Pop(tx tm.Txn) (uint64, bool) {
	tx.Site(SiteHeapPop)
	n := int(tx.Read(h.size))
	if n == 0 {
		return 0, false
	}
	top := h.arr.Get(tx, 0)
	last := h.arr.Get(tx, n-1)
	tx.Write(h.size, uint64(n-1))
	n--
	if n == 0 {
		return top, true
	}
	i := 0
	h.arr.Set(tx, 0, last)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		lv := last
		if l < n {
			if cv := h.arr.Get(tx, l); cv > lv {
				largest, lv = l, cv
			}
		}
		if r < n {
			if cv := h.arr.Get(tx, r); cv > lv {
				largest, lv = r, cv
			}
		}
		if largest == i {
			break
		}
		h.arr.Set(tx, largest, last)
		h.arr.Set(tx, i, lv)
		i = largest
	}
	return top, true
}

// SeedNonTx pushes values without a transaction.
func (h *Heap) SeedNonTx(vals []uint64) {
	sh := nonTxShim{e: h.m.E}
	for _, v := range vals {
		h.Push(sh, v)
	}
}
