package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// Queue is a transactional FIFO queue (linked nodes with head/tail
// pointers on separate cache lines), the work-distribution structure of
// the intruder kernel. Concurrent dequeues conflict on the head pointer —
// a genuine write-write conflict every TM flavour must abort on.
//
// Node layout: value, next.
const (
	qVal = iota
	qNext
	qFields
)

// Queue is a transactional FIFO queue.
type Queue struct {
	m    *Mem
	head mem.Addr // one-word cell on its own line
	tail mem.Addr // one-word cell on its own line
}

// Site labels for the write-skew tool.
const (
	SiteQueuePush = "queue.push"
	SiteQueuePop  = "queue.pop"
)

// NewQueue creates an empty queue.
func NewQueue(m *Mem) *Queue {
	q := &Queue{m: m, head: m.allocNode(1), tail: m.allocNode(1)}
	m.E.NonTxWrite(q.head, nilPtr)
	m.E.NonTxWrite(q.tail, nilPtr)
	return q
}

// Push appends v.
func (q *Queue) Push(tx tm.Txn, v uint64) {
	tx.Site(SiteQueuePush)
	n := q.m.allocNodeIn(tx, qFields)
	tx.Write(field(n, qVal), v)
	tx.Write(field(n, qNext), nilPtr)
	tail := mem.Addr(tx.Read(q.tail))
	if tail == nilPtr {
		tx.Write(q.head, uint64(n))
	} else {
		tx.Write(field(tail, qNext), uint64(n))
	}
	tx.Write(q.tail, uint64(n))
}

// Pop removes and returns the oldest element.
func (q *Queue) Pop(tx tm.Txn) (uint64, bool) {
	tx.Site(SiteQueuePop)
	head := mem.Addr(tx.Read(q.head))
	if head == nilPtr {
		return 0, false
	}
	v := tx.Read(field(head, qVal))
	next := tx.Read(field(head, qNext))
	tx.Write(q.head, next)
	if next == nilPtr {
		tx.Write(q.tail, nilPtr)
	}
	return v, true
}

// Empty reports whether the queue has no elements.
func (q *Queue) Empty(tx tm.Txn) bool {
	return mem.Addr(tx.Read(q.head)) == nilPtr
}

// SeedNonTx pushes values without a transaction.
func (q *Queue) SeedNonTx(vals []uint64) {
	sh := nonTxShim{e: q.m.E}
	for _, v := range vals {
		q.Push(sh, v)
	}
}
