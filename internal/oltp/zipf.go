// Package oltp implements the serving-workload tier: a seeded Zipfian key
// generator, a tiny-transaction KV workload and a million-account
// bank/ledger, both read-mostly sessions punctuated by long analytical
// read-only scans — the regime where snapshot isolation's headline
// advantage (long read-only transactions never abort writers, §1) pays
// off at scale. Workloads satisfy the harness Workload interface
// structurally, exactly like internal/micro and internal/stamp.
package oltp

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// Zipf draws ranks in [0, n) with P(rank) ∝ 1/(rank+1)^theta — the Gray
// et al. "Quickly generating billion-record synthetic databases" formula
// YCSB popularised. All randomness comes from the caller's *sched.Rand,
// so draws are deterministic per simulated thread; the precomputed
// constants are pure functions of (n, theta).
//
// Ranks map to keys directly (rank 0 is the hottest key): scrambling the
// ranks across the key space, as YCSB does, would deliberately destroy
// locality — here the contiguous hot head is the point, letting the
// paged memory tier keep the footprint proportional to the touched
// pages while the address span stays serving-scale.
type Zipf struct {
	n      uint64
	theta  float64
	alpha  float64
	zetan  float64
	eta    float64
	thresh float64 // 1 + 0.5^theta, the two-element fast path bound
}

// ValidateTheta checks the skew parameter up front: the Gray formula
// needs theta in [0, 1) (theta = 0 is uniform; 1 diverges).
func ValidateTheta(theta float64) error {
	if math.IsNaN(theta) || theta < 0 || theta >= 1 {
		return fmt.Errorf("oltp: theta must be in [0, 1), got %g", theta)
	}
	return nil
}

// NewZipf prepares a generator over n ranks with skew theta. It panics on
// invalid parameters — callers validate user input with ValidateTheta.
// Preparation is O(n) (the zeta sum); the generator itself is O(1) per
// draw and immutable, so one Zipf is safely shared by every simulated
// thread of a cell.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("oltp: NewZipf with zero ranks")
	}
	if err := ValidateTheta(theta); err != nil {
		panic(err.Error())
	}
	z := &Zipf{n: n, theta: theta}
	for i := uint64(1); i <= n; i++ {
		z.zetan += math.Pow(float64(i), -theta)
	}
	zeta2 := 1.0
	if n >= 2 {
		zeta2 += math.Pow(2, -theta)
	}
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.thresh = 1 + math.Pow(0.5, theta)
	return z
}

// Next draws the next rank in [0, n) using r.
func (z *Zipf) Next(r *sched.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.thresh {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}
