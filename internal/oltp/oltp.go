package oltp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Workload mirrors the harness workload surface (internal/exp.Workload)
// structurally, so the tier plugs into the cell layer without importing
// it.
type Workload interface {
	Name() string
	Setup(m *txlib.Mem, threads int)
	Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig)
	Validate(m *txlib.Mem) string
}

// DefaultTheta is the Zipfian skew used when a tier name carries none —
// YCSB's default, and the paper-style hot-head regime where the paged
// store's footprint advantage is largest.
const DefaultTheta = 0.99

// defaultSpan is the default key/account count: a full 2²⁰ (>10⁶)-line
// address span. Setup only *reserves* the span (the bump allocator never
// touches memory), so the heap tracks the lines transactions actually
// touch, not the span — the property the serving-scale tests pin.
const defaultSpan = 1 << 20

// KV is the tiny-transaction key-value session workload: read-mostly
// Zipfian point transactions (a few reads, a couple of read-modify-write
// increments), punctuated every ScanEvery-th transaction by a long
// analytical read-only scan across the hot head of the key space. Keys
// occupy one cache line each; Zipf rank r maps to line r directly, so
// the hot head is contiguous.
type KV struct {
	Keys           int     // key count (span of the table)
	Theta          float64 // Zipfian skew, in [0, 1)
	TxnsPerThread  int
	ReadsPerTxn    int // point reads per session transaction
	WritesPerTxn   int // increments per session transaction
	ScanEvery      int // every Nth transaction is an analytical scan
	ScanLines      int // lines covered by one scan
	InterTxnCycles uint64

	z       *Zipf
	base    mem.Addr
	updates uint64 // committed update transactions (coroutine-serial)
}

// NewKV returns the serving-scale default configuration at the given
// skew (which must satisfy ValidateTheta).
func NewKV(theta float64) *KV {
	return &KV{
		Keys:           defaultSpan,
		Theta:          theta,
		TxnsPerThread:  40,
		ReadsPerTxn:    6,
		WritesPerTxn:   2,
		ScanEvery:      16,
		ScanLines:      2048,
		InterTxnCycles: 20,
	}
}

// Name implements the harness Workload interface.
func (w *KV) Name() string { return fmt.Sprintf("kv@%.2f", w.Theta) }

// Scale implements harness.Scalable: the span is already at serving
// scale, so only the session length grows.
func (w *KV) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.TxnsPerThread *= factor
}

// Setup implements the harness Workload interface. It reserves the key
// span without touching it — values are implicitly zero, and an
// increment of an untouched key reads that zero.
func (w *KV) Setup(m *txlib.Mem, threads int) {
	w.base = m.A.AllocLines(w.Keys)
	w.z = NewZipf(uint64(w.Keys), w.Theta)
	w.updates = 0
}

func (w *KV) addr(rank uint64) mem.Addr {
	return w.base + mem.Addr(rank)*mem.LineBytes
}

// Run implements the harness Workload interface.
func (w *KV) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	reads := make([]uint64, w.ReadsPerTxn)
	writes := make([]uint64, w.WritesPerTxn)
	for i := 0; i < w.TxnsPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		if w.ScanEvery > 0 && i%w.ScanEvery == w.ScanEvery-1 {
			// Long analytical read-only scan over the hot head — the
			// span every update hits. Under SI it commits read-only and
			// aborts no writer; under the eager baselines it conflicts
			// with every concurrent increment.
			_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
				var sum uint64
				for l := 0; l < w.ScanLines && l < w.Keys; l++ {
					sum += tx.Read(w.addr(uint64(l)))
				}
				return nil
			})
			continue
		}
		// Read-mostly session transaction: point reads plus increments.
		// Keys are drawn outside the atomic body so retries replay the
		// same transaction.
		for j := range reads {
			reads[j] = w.z.Next(r)
		}
		for j := range writes {
			writes[j] = w.z.Next(r)
		}
		err := tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
			for _, k := range reads {
				tx.Read(w.addr(k))
			}
			for _, k := range writes {
				a := w.addr(k)
				tx.Write(a, tx.Read(a)+1)
			}
			return nil
		})
		if err == nil {
			w.updates++
		}
	}
}

// Validate implements the harness Workload interface: every committed
// session transaction added exactly WritesPerTxn across the table.
//
//sitm:allow(yieldlint) quiescent verification scan, runs after every simulated thread has finished
func (w *KV) Validate(m *txlib.Mem) string {
	var sum uint64
	for k := 0; k < w.Keys; k++ {
		sum += m.E.NonTxRead(w.addr(uint64(k)))
	}
	want := w.updates * uint64(w.WritesPerTxn)
	if sum != want {
		return fmt.Sprintf("kv: table sums to %d, want %d (%d committed updates x %d writes)",
			sum, want, w.updates, w.WritesPerTxn)
	}
	return ""
}

// Ledger is the 10⁶-account bank: Zipfian transfers between accounts
// (debit one line, credit another; amounts wrap in uint64, so the grand
// total is conserved mod 2⁶⁴), punctuated every ScanEvery-th transaction
// by a long read-only audit scan over the hot accounts.
type Ledger struct {
	Accounts       int
	Theta          float64
	TxnsPerThread  int
	ScanEvery      int
	ScanLines      int
	InterTxnCycles uint64

	z    *Zipf
	base mem.Addr
}

// NewLedger returns the serving-scale default configuration at the given
// skew (which must satisfy ValidateTheta).
func NewLedger(theta float64) *Ledger {
	return &Ledger{
		Accounts:       defaultSpan,
		Theta:          theta,
		TxnsPerThread:  40,
		ScanEvery:      16,
		ScanLines:      2048,
		InterTxnCycles: 20,
	}
}

// Name implements the harness Workload interface.
func (w *Ledger) Name() string { return fmt.Sprintf("ledger@%.2f", w.Theta) }

// Scale implements harness.Scalable.
func (w *Ledger) Scale(factor int) {
	if factor < 1 {
		return
	}
	w.TxnsPerThread *= factor
}

// Setup implements the harness Workload interface: the account span is
// reserved, never touched — every balance starts at the implicit zero.
func (w *Ledger) Setup(m *txlib.Mem, threads int) {
	w.base = m.A.AllocLines(w.Accounts)
	w.z = NewZipf(uint64(w.Accounts), w.Theta)
}

func (w *Ledger) addr(rank uint64) mem.Addr {
	return w.base + mem.Addr(rank)*mem.LineBytes
}

// Run implements the harness Workload interface.
func (w *Ledger) Run(m *txlib.Mem, th *sched.Thread, bo tm.BackoffConfig) {
	r := th.Rand()
	for i := 0; i < w.TxnsPerThread; i++ {
		th.LocalTick(w.InterTxnCycles)
		if w.ScanEvery > 0 && i%w.ScanEvery == w.ScanEvery-1 {
			// Read-only audit over the hot accounts.
			_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
				var sum uint64
				for l := 0; l < w.ScanLines && l < w.Accounts; l++ {
					sum += tx.Read(w.addr(uint64(l)))
				}
				return nil
			})
			continue
		}
		src, dst := w.z.Next(r), w.z.Next(r)
		amount := uint64(1 + r.Intn(100))
		_ = tm.Atomic(m.E, th, bo, func(tx tm.Txn) error {
			sa, da := w.addr(src), w.addr(dst)
			tx.Write(sa, tx.Read(sa)-amount)
			tx.Write(da, tx.Read(da)+amount)
			return nil
		})
	}
}

// Validate implements the harness Workload interface: transfers conserve
// the grand total, which started at zero.
//
//sitm:allow(yieldlint) quiescent verification scan, runs after every simulated thread has finished
func (w *Ledger) Validate(m *txlib.Mem) string {
	var sum uint64
	for k := 0; k < w.Accounts; k++ {
		sum += m.E.NonTxRead(w.addr(uint64(k)))
	}
	if sum != 0 {
		return fmt.Sprintf("ledger: accounts sum to %d, want 0 (transfers must conserve)", sum)
	}
	return ""
}

// TierNames lists the workload tier's name forms for error listings and
// help text.
func TierNames() []string { return []string{"kv[@theta]", "ledger[@theta]"} }

// ByName resolves an OLTP tier name — "kv", "ledger", or either with an
// explicit skew suffix like "kv@0.99". The second result reports whether
// the name belongs to this tier at all; when it does but the skew is
// malformed or out of range, the error explains (registry-style: callers
// print it and exit 2).
func ByName(name string) (func() Workload, bool, error) {
	base, thetaStr, hasTheta := strings.Cut(name, "@")
	theta := DefaultTheta
	if hasTheta {
		v, err := strconv.ParseFloat(thetaStr, 64)
		if err != nil {
			return nil, true, fmt.Errorf("oltp: malformed theta %q in workload %q", thetaStr, name)
		}
		theta = v
	}
	var f func() Workload
	switch {
	case strings.EqualFold(base, "kv"):
		f = func() Workload { return NewKV(theta) }
	case strings.EqualFold(base, "ledger"):
		f = func() Workload { return NewLedger(theta) }
	default:
		return nil, false, nil
	}
	if err := ValidateTheta(theta); err != nil {
		return nil, true, err
	}
	return f, true, nil
}
