package oltp_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/oltp"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/txlib"

	_ "repro/internal/sontm"
	_ "repro/internal/twopl"
)

// runCell drives one workload cell exactly as the harness cell layer
// does: fresh engine from the registry, fresh address space, the
// deterministic machine.
func runCell(t *testing.T, engine string, w oltp.Workload, threads int, seed uint64) (tm.Engine, *txlib.Mem) {
	t.Helper()
	e, err := tm.NewEngine(engine, tm.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := txlib.NewMem(e)
	w.Setup(m, threads)
	bo := tm.DefaultBackoff()
	s := sched.New(threads, seed)
	s.Run(func(th *sched.Thread) { w.Run(m, th, bo) })
	return e, m
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	const n = 1 << 20
	z := oltp.NewZipf(n, 0.99)
	r1, r2 := sched.NewRand(7), sched.NewRand(7)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		a, b := z.Next(r1), z.Next(r2)
		if a != b {
			t.Fatalf("draw %d: %d vs %d with identical seeds", i, a, b)
		}
		if a >= n {
			t.Fatalf("draw %d out of range: %d", i, a)
		}
		if a < 4096 {
			hot++
		}
	}
	// At theta 0.99 over 2²⁰ ranks the mass is near-logarithmic in rank:
	// the first 4096 ranks (0.4% of the space) carry ~60% of the draws.
	if frac := float64(hot) / draws; frac < 0.50 {
		t.Fatalf("theta=0.99 put only %.2f of draws in the hot head", frac)
	}
	// Near-uniform at theta 0: the hot head gets roughly its share.
	u := oltp.NewZipf(n, 0)
	hot = 0
	for i := 0; i < draws; i++ {
		if u.Next(r1) < n/2 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.40 || frac > 0.60 {
		t.Fatalf("theta=0 is not near-uniform: %.2f of draws below the median", frac)
	}
}

func TestValidateTheta(t *testing.T) {
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if oltp.ValidateTheta(bad) == nil {
			t.Fatalf("theta %v must be rejected", bad)
		}
	}
	for _, ok := range []float64{0, 0.5, 0.99, 0.999} {
		if err := oltp.ValidateTheta(ok); err != nil {
			t.Fatalf("theta %v rejected: %v", ok, err)
		}
	}
}

func TestByName(t *testing.T) {
	f, isOLTP, err := oltp.ByName("kv@0.5")
	if !isOLTP || err != nil {
		t.Fatalf("kv@0.5: isOLTP=%v err=%v", isOLTP, err)
	}
	if name := f().Name(); name != "kv@0.50" {
		t.Fatalf("canonical name = %q", name)
	}
	if f, isOLTP, err = oltp.ByName("LEDGER"); !isOLTP || err != nil {
		t.Fatalf("LEDGER: isOLTP=%v err=%v", isOLTP, err)
	}
	if name := f().Name(); name != "ledger@0.99" {
		t.Fatalf("default-theta name = %q", name)
	}
	if _, isOLTP, err = oltp.ByName("kv@1.5"); !isOLTP || err == nil {
		t.Fatal("out-of-range theta must be an oltp-tier error")
	}
	if _, isOLTP, err = oltp.ByName("kv@zebra"); !isOLTP || err == nil {
		t.Fatal("malformed theta must be an oltp-tier error")
	}
	if _, isOLTP, _ = oltp.ByName("List"); isOLTP {
		t.Fatal("List is not an oltp tier name")
	}
}

// TestLedgerServingScaleFootprint is the acceptance cell: a 10⁶-account
// ledger at 32 threads, theta 0.99, completes with heap proportional to
// touched lines — the MVM's version table allocates a sliver of the
// address span.
func TestLedgerServingScaleFootprint(t *testing.T) {
	w := oltp.NewLedger(0.99)
	if w.Accounts < 1_000_000 {
		t.Fatalf("ledger span %d below 10^6 accounts", w.Accounts)
	}
	e, m := runCell(t, "SI-TM", w, 32, 1)
	if msg := w.Validate(m); msg != "" {
		t.Fatal(msg)
	}
	si := e.(*core.Engine)
	if c := si.Stats().Commits; c == 0 {
		t.Fatal("no commits")
	}
	lines := si.MVM().LinesAllocated()
	if lines == 0 {
		t.Fatal("no lines versioned")
	}
	if lines > w.Accounts/10 {
		t.Fatalf("MVM allocated %d lines for %d touched-line workload (span %d): footprint tracks the span, not the touches",
			lines, lines, w.Accounts)
	}
	// The paged store's allocation tracks touched pages, not the span:
	// the span needs Accounts/PageEntries pages; the run must use far
	// fewer entries' worth than the span.
	spanPages := w.Accounts / mem.PageEntries
	if got := si.MVM().StorePages(); got >= spanPages {
		t.Fatalf("version table allocated %d pages, span would be %d: paged store not sparse", got, spanPages)
	}
}

// TestKVSparseSpanFootprint widens the span to 2²⁴ lines with a short
// session: under the dense backing the version table alone would grow to
// the maximum touched index; paged, it allocates only around the touched
// ranks.
func TestKVSparseSpanFootprint(t *testing.T) {
	w := oltp.NewKV(0.99)
	w.Keys = 1 << 24
	w.TxnsPerThread = 8
	w.ScanEvery = 0 // point transactions only; keep the touch set tiny
	e, _ := runCell(t, "SI-TM", w, 8, 1)
	si := e.(*core.Engine)
	pages := si.MVM().StorePages()
	spanPages := w.Keys / mem.PageEntries
	if pages == 0 {
		t.Fatal("no pages allocated")
	}
	if pages*64 > spanPages {
		t.Fatalf("sparse 2^24-line span allocated %d pages (span equivalent %d): not O(touched)", pages, spanPages)
	}
}

// TestScansDoNotAbortWriters pins the paper's §1 claim at serving scale:
// under SI-TM the long analytical scans commit read-only and no
// transaction ever aborts on a read-write conflict, while 2PL running
// the identical cell pays read-write aborts for the same scans.
func TestScansDoNotAbortWriters(t *testing.T) {
	mk := func() *oltp.KV {
		w := oltp.NewKV(0.99)
		w.Keys = 1 << 16 // smaller span keeps the differential cell quick
		return w
	}
	si, _ := runCell(t, "SI-TM", mk(), 16, 1)
	st := si.Stats()
	if st.ReadOnly == 0 {
		t.Fatal("SI-TM: no read-only commits despite analytical scans")
	}
	if rw := st.Aborts[tm.AbortReadWrite]; rw != 0 {
		t.Fatalf("SI-TM: %d read-write aborts; snapshot reads must be invisible", rw)
	}
	pl, _ := runCell(t, "2PL", mk(), 16, 1)
	if rw := pl.Stats().Aborts[tm.AbortReadWrite]; rw == 0 {
		t.Fatal("2PL: same cell produced no read-write aborts; the differential claim has no teeth")
	}
}

// TestKVInvariantAcrossEngines runs a small KV cell on every registered
// engine and checks the commit-count invariant holds.
func TestKVInvariantAcrossEngines(t *testing.T) {
	for _, engine := range tm.Engines() {
		w := oltp.NewKV(0.9)
		w.Keys = 1 << 14
		w.TxnsPerThread = 10
		_, m := runCell(t, engine, w, 4, 2)
		if msg := w.Validate(m); msg != "" {
			t.Fatalf("%s: %s", engine, msg)
		}
	}
}

// TestDeterministicAcrossRuns pins byte-level stats determinism of the
// tier: identical cells produce identical counters and histograms.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() tm.Stats {
		w := oltp.NewLedger(0.9)
		w.Accounts = 1 << 16
		e, _ := runCell(t, "SI-TM", w, 8, 3)
		return *e.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", a, b)
	}
}
