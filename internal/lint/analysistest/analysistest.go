// Package analysistest runs sitm-lint analyzers over GOPATH-style
// testdata trees and checks their diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on the
// stdlib-only framework of internal/lint.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches `// want "regexp"` expectations in testdata sources;
// several may appear in one comment. Both backtick and double-quote
// delimiters are accepted (backticks cannot appear inside a Go line
// comment's backtick form, so quotes are the common case here).
var wantRe = regexp.MustCompile("want\\s+(?:`([^`]*)`|\"([^\"]*)\")")

// RunTest loads the given packages from dir/src (GOPATH-style: the import
// path is the directory relative to src), applies the analyzer, and
// checks its diagnostics against the `// want "regexp"` comments in the
// sources, exactly like golang.org/x/tools' analysistest. A diagnostic
// must match a want on its line; every want must be matched.
func RunTest(t *testing.T, dir string, a *lint.Analyzer, importPaths ...string) {
	t.Helper()
	loader := lint.NewLoader()
	if err := loader.AddTree(filepath.Join(dir, "src"), ""); err != nil {
		t.Fatalf("registering testdata: %v", err)
	}
	for _, importPath := range importPaths {
		pkg, err := loader.Load(importPath)
		if err != nil {
			t.Fatalf("loading %s: %v", importPath, err)
		}
		diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

// want is one expectation parsed from a testdata comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants extracts the expectations from every file of the package.
func parseWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		for i, lineText := range strings.Split(string(src), "\n") {
			idx := strings.Index(lineText, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(lineText[idx:], -1) {
				expr := m[1]
				if expr == "" {
					expr = m[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, expr, err)
				}
				wants = append(wants, &want{file: name, line: i + 1, pattern: re})
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		if w := matchWant(wants, d.Pos, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// matchWant finds an unmatched expectation on the diagnostic's line whose
// pattern matches the message.
func matchWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			return w
		}
	}
	return nil
}

// Testdata returns the conventional testdata directory for the calling
// test's package.
func Testdata() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(fmt.Sprintf("lint: getwd: %v", err))
	}
	return filepath.Join(wd, "testdata")
}
