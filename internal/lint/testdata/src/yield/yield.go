// Package yield is a yieldlint fixture: an engine-defining package whose
// simulated shared-memory accesses must sit behind Tick/Stall yield
// points, directly or through every intra-package caller.
package yield

import (
	"mem"
	"mvm"
	"sched"
	"tm"
)

// Engine implements tm.Engine, so yieldlint checks this package.
type Engine struct {
	mem   *mvm.Memory
	words mem.Dense[uint64]
	lines mem.Paged[uint64]
}

func (e *Engine) Name() string { return "fixture" }
func (e *Engine) Begin() int   { return 0 }

var _ tm.Engine = (*Engine)(nil)

// Read charges in its own body: covered.
func (e *Engine) Read(t *sched.Thread, a mem.Addr) uint64 {
	t.Tick(4)
	v, _ := e.mem.ReadWord(a, 0)
	return v + e.load(a)
}

// Commit charges through Stall: also covered.
func (e *Engine) Commit(t *sched.Thread, a mem.Addr) {
	t.Stall()
	e.mem.Install(a, 0, 1)
}

// load touches the dense table but is only called from charged entry
// points (Read): covered by its callers.
func (e *Engine) load(a mem.Addr) uint64 {
	return e.words.Load(uint64(a))
}

// Probe is an exported entry point that reaches storage through peek
// without ever charging: the touch site is flagged.
func (e *Engine) Probe(a mem.Addr) uint64 {
	return e.peek(a)
}

func (e *Engine) peek(a mem.Addr) uint64 { // want "without a reachable Tick/Stall yield point"
	v, _ := e.mem.ReadWord(a, 0)
	return v
}

// NonTxWrite touches storage in an exported body with no charge: flagged
// even though unexported callers could not save it anyway.
func (e *Engine) NonTxWrite(a mem.Addr, v uint64) { // want "exported entry points must charge in their own body"
	e.words.Store(uint64(a), v)
}

// Audit is a deliberate exception: end-of-run verification outside the
// scheduled region.
//
//sitm:allow(yieldlint) fixture: quiescent verification scan off the scheduled path
func (e *Engine) Audit(a mem.Addr) uint64 {
	v, _ := e.mem.ReadWord(a, 0)
	return v
}

// spinA and spinB form an uncharged call cycle that touches storage: a
// cycle with no charged root stays uncovered.
func (e *Engine) spinA(a mem.Addr, n int) uint64 { // want "without a reachable Tick/Stall yield point"
	if n == 0 {
		return e.words.Load(uint64(a))
	}
	return e.spinB(a, n-1)
}

func (e *Engine) spinB(a mem.Addr, n int) uint64 {
	return e.spinA(a, n)
}

// ReadHinted charges through the batched hint API: TickHinted behaves
// exactly like Tick under the reference conductors, so it covers the
// touch.
func (e *Engine) ReadHinted(t *sched.Thread, a mem.Addr) uint64 {
	t.TickHinted(4)
	v, _ := e.mem.ReadWord(a, 0)
	return v
}

// Backoff charges through LocalTick: also a covering charge.
func (e *Engine) Backoff(t *sched.Thread, a mem.Addr) uint64 {
	t.LocalTick(16)
	return e.words.Load(uint64(a))
}

// FencedPeek only fences: Fence charges nothing and never yields under
// the reference conductors, so the touch is still uncovered.
func (e *Engine) FencedPeek(t *sched.Thread, a mem.Addr) uint64 { // want "exported entry points must charge in their own body"
	t.Fence()
	v, _ := e.mem.ReadWord(a, 0)
	return v
}

// Stats touches no storage: metadata calls are not accesses.
func (e *Engine) Stats() int { return e.mem.Stats() }

// SumCharged walks the paged table behind a charge: Range is a touch,
// and the Tick covers it.
func (e *Engine) SumCharged(t *sched.Thread) uint64 {
	t.Tick(4)
	var sum uint64
	e.lines.Range(func(_ uint64, v *uint64) { sum += *v })
	return sum
}

// SumUncharged walks the paged table from an exported body with no
// charge: the bulk touch is flagged like any point access.
func (e *Engine) SumUncharged() uint64 { // want "exported entry points must charge in their own body"
	var sum uint64
	e.lines.Range(func(_ uint64, v *uint64) { sum += *v })
	return sum
}

// AuditLines is the sanctioned quiescent form, like the engines' real
// end-of-run audits over their paged tables.
//
//sitm:allow(yieldlint) fixture: quiescent verification scan off the scheduled path
func (e *Engine) AuditLines() uint64 {
	var sum uint64
	e.lines.Range(func(_ uint64, v *uint64) { sum += *v })
	return sum
}
