// Package mvm is a yieldlint fixture standing in for repro/internal/mvm:
// the analyzer recognises its access methods by name in a package whose
// import path ends in "mvm".
package mvm

import "mem"

// Memory is the multiversioned memory stand-in.
type Memory struct {
	words map[mem.Addr]uint64
}

// ReadWord is a simulated shared-memory access.
func (m *Memory) ReadWord(a mem.Addr, at uint64) (uint64, bool) {
	v, ok := m.words[a]
	return v, ok
}

// Install is a simulated shared-memory access.
func (m *Memory) Install(a mem.Addr, at uint64, v uint64) {
	if m.words == nil {
		m.words = map[mem.Addr]uint64{}
	}
	m.words[a] = v
}

// Stats is metadata, not an access: never a touch.
func (m *Memory) Stats() int { return len(m.words) }
