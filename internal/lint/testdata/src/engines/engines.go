// Package engines is an enginelint fixture: it defines an Engine
// implementation. Struct literals of the engine type are legal here — the
// defining package owns its constructor.
package engines

import "tm"

// Config is plain configuration, not an engine: literals of it are fine
// anywhere.
type Config struct {
	Threads int
}

// Engine implements tm.Engine.
type Engine struct {
	cfg Config
}

func (e *Engine) Name() string { return "fixture" }
func (e *Engine) Begin() int   { return 0 }

// New is the constructor the registry factory calls; the literal is in
// the defining package and therefore allowed.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg}
}

var _ tm.Engine = (*Engine)(nil)
