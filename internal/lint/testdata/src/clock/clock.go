// Package clock is a chargelint fixture standing in for
// repro/internal/clock.
package clock

// Timestamp is a simulated commit timestamp.
type Timestamp uint64

// Clock is the simulated global clock.
type Clock struct {
	now Timestamp
}
