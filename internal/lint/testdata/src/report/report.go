// Package report is a findinglint fixture standing in for
// repro/internal/report: the analyzer matches the Finding type by name in
// any package named report, including literals inside the defining
// package itself.
package report

// Finding is one shape-check outcome.
type Finding struct {
	Check  string
	OK     bool
	Detail string
}

// Findings is the full report.
type Findings []Finding

// Complete builds a fully specified finding.
func Complete(check string, ok bool, detail string) Finding {
	return Finding{Check: check, OK: ok, Detail: detail}
}

// Incomplete forgets the verdict even in the defining package.
func Incomplete(check string) Finding {
	return Finding{Check: check, Detail: "n/a"} // want "does not set OK"
}
