package engineuse

import "engines"

// Registration glue may construct engines directly: register.go files are
// exempt by name.
func registerFixture() *engines.Engine {
	return &engines.Engine{}
}
