// Package engineuse is an enginelint fixture: consumer code that
// constructs engines. Direct struct literals of engine types are flagged;
// constructor calls and non-engine literals are not.
package engineuse

import "engines"

func Direct() *engines.Engine {
	return &engines.Engine{} // want "bypasses the tm registry"
}

func DirectValue() engines.Engine {
	return engines.Engine{} // want "bypasses the tm registry"
}

// ViaConstructor builds through the defining package's New; enginelint
// does not flag constructor calls — only literals.
func ViaConstructor() *engines.Engine {
	return engines.New(engines.Config{Threads: 4})
}
