// Package sched is a chargelint fixture standing in for
// repro/internal/sched.
package sched

// Thread is a simulated logical thread that accumulates cycles.
type Thread struct {
	cycles uint64
}
