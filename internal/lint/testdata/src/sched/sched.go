// Package sched is a chargelint fixture standing in for
// repro/internal/sched.
package sched

// Thread is a simulated logical thread that accumulates cycles.
type Thread struct {
	cycles uint64
}

// Tick charges c cycles: a yield point for yieldlint.
func (t *Thread) Tick(c uint64) { t.cycles += c }

// Stall parks the thread until woken: also a yield point.
func (t *Thread) Stall() {}
