// Package sched is a chargelint fixture standing in for
// repro/internal/sched.
package sched

// Thread is a simulated logical thread that accumulates cycles.
type Thread struct {
	cycles uint64
}

// Tick charges c cycles: a yield point for yieldlint.
func (t *Thread) Tick(c uint64) { t.cycles += c }

// Stall parks the thread until woken: also a yield point.
func (t *Thread) Stall() {}

// TickHinted charges c cycles for a certified non-interacting event: a
// yield point under the reference conductors, so a charge for yieldlint.
func (t *Thread) TickHinted(c uint64) { t.cycles += c }

// LocalTick charges c cycles of purely thread-local work: also a charge.
func (t *Thread) LocalTick(c uint64) { t.cycles += c }

// Fence ends a batched quantum without charging: NOT a yield point under
// the reference conductors, so not a charge for yieldlint.
func (t *Thread) Fence() {}
