// Package tm is an enginelint fixture standing in for repro/internal/tm:
// the analyzer locates the Engine interface by its name in a package
// whose import path ends in "tm".
package tm

// Engine is the transactional-memory engine interface of the fixture.
type Engine interface {
	Name() string
	Begin() int
}
