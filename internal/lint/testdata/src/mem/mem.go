// Package mem is a lint fixture standing in for repro/internal/mem: the
// enginelint access-set rule recognises the Line type by its name in a
// package whose import path ends in "mem".
package mem

// Line is a cache-line number.
type Line uint64

// Addr is a byte address.
type Addr uint64

// Dense is a flat simulated-storage table standing in for mem.Dense:
// yieldlint treats its accessors as shared-memory touches.
type Dense[T any] struct {
	v []T
}

// Load reads slot i.
func (d *Dense[T]) Load(i uint64) T {
	var zero T
	if i >= uint64(len(d.v)) {
		return zero
	}
	return d.v[i]
}

// Store writes slot i.
func (d *Dense[T]) Store(i uint64, x T) {
	for i >= uint64(len(d.v)) {
		d.v = append(d.v, x)
	}
	d.v[i] = x
}

// Paged is a sparse simulated-storage table standing in for mem.Paged:
// yieldlint treats its accessors — Range included — as shared-memory
// touches.
type Paged[T any] struct {
	v map[uint64]T
}

// Load reads slot i.
func (p *Paged[T]) Load(i uint64) T { return p.v[i] }

// Slot returns a settable slot (the fixture fakes it with a local).
func (p *Paged[T]) Slot(i uint64) *T {
	if p.v == nil {
		p.v = make(map[uint64]T)
	}
	x := p.v[i]
	return &x
}

// Range visits every occupied slot: a bulk shared-memory touch.
func (p *Paged[T]) Range(f func(i uint64, v *T)) {
	for i := range p.v {
		x := p.v[i]
		f(i, &x)
	}
}
