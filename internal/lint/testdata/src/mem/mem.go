// Package mem is a lint fixture standing in for repro/internal/mem: the
// enginelint access-set rule recognises the Line type by its name in a
// package whose import path ends in "mem".
package mem

// Line is a cache-line number.
type Line uint64

// Addr is a byte address.
type Addr uint64
