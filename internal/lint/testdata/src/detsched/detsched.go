// Package detsched is a detlint fixture standing in for internal/sched:
// a concurrency-exempt package may spawn goroutines and select (it
// confines them behind its own determinism machinery), but wall-clock
// reads stay forbidden.
package detsched

import "time"

func RunThreads(n int) {
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func() { done <- 1 }() // exempt: no finding
	}
	for i := 0; i < n; i++ {
		select { // exempt: no finding
		case <-done:
		}
	}
}

func Deadline() int64 {
	return time.Now().UnixNano() // want "wall-clock read"
}
