// Package detsim is a detlint fixture: a stand-in simulation package
// exercising every nondeterminism source the analyzer forbids and every
// idiom it must recognise as deterministic.
package detsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func Timestamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read"
}

func Roll() int {
	return rand.Intn(6) // want "global math/rand"
}

// SeededRoll draws from an explicitly seeded generator: deterministic.
func SeededRoll(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

func Spawn(done chan int) {
	go func() { done <- 1 }() // want "goroutine in simulation code"
}

func Pick(a, b chan int) int {
	select { // want "select in simulation code"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// SortedKeys is the sanctioned collection idiom: the sort erases the map
// iteration order, so the range is not flagged.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func UnsortedValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "appends to a slice"
		out = append(out, v)
	}
	return out
}

func Dump(m map[string]int) {
	for k, v := range m { // want "writes output"
		fmt.Println(k, v)
	}
}

func Mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates floating-point"
		sum += v
	}
	return sum / float64(len(m))
}

// Count is order-insensitive: integer counting is commutative over any
// iteration order.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Sanctioned documents a deliberate wall-clock read with an allowlist
// directive in its doc comment.
//
//sitm:allow(detlint) fixture: demonstrates declaration-level suppression
func Sanctioned() int64 {
	return time.Now().UnixNano()
}

func InlineSanctioned() int64 {
	return time.Now().UnixNano() //sitm:allow(detlint) fixture: line-level suppression
}
