// Package findinguse is a findinglint fixture: consumer code building
// report.Finding values.
package findinguse

import "report"

func Good(share float64) report.Finding {
	return report.Finding{
		Check:  "fig1 rw-dominated",
		OK:     share >= 0.75,
		Detail: "measured share",
	}
}

// Positional literals necessarily set every field.
func Positional() report.Finding {
	return report.Finding{"check", true, "detail"}
}

func MissingDetail() report.Finding {
	return report.Finding{Check: "fig7 si<=2pl", OK: true} // want "does not set Detail"
}

func Empty() report.Finding {
	return report.Finding{} // want "does not set Check, Detail, OK"
}

func InSlice() report.Findings {
	return report.Findings{
		{Check: "a", OK: true, Detail: "ok"},
		{Check: "b", OK: false}, // want "does not set Detail"
	}
}
