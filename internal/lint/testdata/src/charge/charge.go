// Package charge is a chargelint fixture: a stand-in for the cache/mvm
// packages whose exported entry points must charge cycles when they
// dereference simulated memory.
package charge

import (
	"clock"
	"sched"
)

// version mimics mvm's version: data holds simulated memory contents.
type version struct {
	ts   clock.Timestamp
	data [8]uint64
}

// level mimics cache's level: access walks simulated tag storage.
type level struct {
	tags []uint64
}

func (l *level) access(line uint64) bool {
	for _, t := range l.tags {
		if t == line {
			return true
		}
	}
	return false
}

func (vl *Memory) visible(at clock.Timestamp) *version {
	for i := len(vl.v) - 1; i >= 0; i-- {
		if vl.v[i].ts <= at {
			return &vl.v[i]
		}
	}
	return nil
}

// Memory mimics mvm.Memory.
type Memory struct {
	v  []version
	l1 *level
}

// ReadWord charges through its snapshot timestamp parameter.
func (m *Memory) ReadWord(w int, at clock.Timestamp) uint64 {
	if v := m.visible(at); v != nil {
		return v.data[w]
	}
	return 0
}

// Access returns its latency in cycles: charged.
func (m *Memory) Access(line uint64) uint64 {
	if m.l1.access(line) {
		return 4
	}
	return 100
}

// Charge threads the simulated thread: charged.
func (m *Memory) Charge(t *sched.Thread, line uint64) bool {
	return m.l1.access(line)
}

func (m *Memory) Newest(w int) [8]uint64 { // want "without charging cycles"
	return [8]uint64{m.v[len(m.v)-1].data[w]}
}

func (m *Memory) Probe(line uint64) bool { // want "without charging cycles"
	return m.l1.access(line)
}

// Scan is a deliberate exception with a documented allowlist directive.
//
//sitm:allow(chargelint) fixture: measurement scan off the access path
func (m *Memory) Scan() int {
	n := 0
	for i := range m.v {
		if m.v[i].data[0] != 0 {
			n++
		}
	}
	return n
}

// stats is unexported: internal helpers are not entry points.
func (m *Memory) stats() uint64 {
	return m.v[0].data[0]
}

// Meta touches only version metadata, never simulated data or storage
// walkers: not flagged.
func (m *Memory) Meta() int {
	return len(m.v)
}
