// Package oltp is a detlint fixture standing in for the serving-workload
// tier (repro/internal/oltp): workload code runs inside simulated cells,
// so wall clocks and the global math/rand generator are forbidden, while
// explicitly seeded generators — the tier's per-thread sched.Rand idiom —
// are deterministic and pass.
package oltp

import (
	"math/rand"
	"time"
)

// Deadline reads the wall clock: a workload keyed on host time would
// break cell reproducibility.
func Deadline() int64 {
	return time.Now().Unix() // want "wall-clock read"
}

// Shuffle draws from the global generator: nondeterministic under
// concurrent cells.
func Shuffle(keys []int) {
	rand.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] }) // want "global math/rand"
}

// HotKey draws from the global generator: same problem as Shuffle.
func HotKey(n int) int {
	return rand.Intn(n) // want "global math/rand"
}

// SeededDraw is the sanctioned form: an explicitly seeded source, as the
// tier's Zipfian generator does through the caller's per-thread stream.
func SeededDraw(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}
