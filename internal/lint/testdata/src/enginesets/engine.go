// Package enginesets is an enginelint fixture: an engine-defining package
// whose access sets must use internal/aset. mem.Line-keyed maps are
// flagged everywhere except slow.go (the reference oracle).
package enginesets

import (
	"mem"
	"tm"
)

// Engine implements tm.Engine, which puts this package under the
// access-set rule.
type Engine struct {
	// readers is a mem.Line-keyed map in the fast path: flagged.
	readers map[mem.Line]int // want "mem.Line-keyed map in engine package"

	// lastTxn is keyed by thread ID, not by line: allowed.
	lastTxn map[int]*Engine
}

func (e *Engine) Name() string { return "fixture" }
func (e *Engine) Begin() int   { return 0 }

var _ tm.Engine = (*Engine)(nil)

type txn struct {
	writeSet map[mem.Line]struct{} // want "mem.Line-keyed map in engine package"
	// values keyed by address strings or plain integers are allowed.
	promoted map[string]bool
}

func scratch() {
	m := make(map[mem.Line]uint64) // want "mem.Line-keyed map in engine package"
	_ = m
}
