package enginesets

import "mem"

// slowTxn is the reference oracle: map-based access sets are allowed in
// slow.go, whose value is being the unchanged pre-aset original.
type slowTxn struct {
	readSet  map[mem.Line]struct{}
	writeLog map[mem.Addr]uint64
}

func (e *Engine) beginSlow() *slowTxn {
	return &slowTxn{
		readSet:  make(map[mem.Line]struct{}),
		writeLog: make(map[mem.Addr]uint64),
	}
}
