package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from directory trees registered
// with AddTree, resolving in-tree imports from source and delegating
// everything else (the standard library) to the compiler's source
// importer. It exists because this module vendors no dependencies: with
// golang.org/x/tools unavailable, go/packages cannot be used, and the
// stock source importer only understands GOROOT/GOPATH layouts.
//
// Only non-test files are loaded: the determinism contract applies to
// simulation code, while tests legitimately use wall-clock timeouts,
// goroutines and unordered iteration.
type Loader struct {
	fset    *token.FileSet
	dirs    map[string]string // import path -> directory
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		dirs:    map[string]string{},
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// AddTree walks root and registers every directory containing non-test Go
// files under the import-path prefix (the module path, or "" for
// GOPATH-style testdata trees). testdata, hidden and underscore
// directories are skipped.
func (l *Loader) AddTree(root, prefix string) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		imp := path.Join(prefix, filepath.ToSlash(rel))
		l.dirs[imp] = p
		return nil
	})
}

// Paths returns the registered import paths, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// goFiles lists the non-test .go files of dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// Load parses and type-checks the package at the given import path
// (previously registered via AddTree), loading its in-tree dependencies
// first. Results are cached.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("lint: package %q not registered", importPath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg resolves one import during type-checking.
func (l *Loader) importPkg(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[importPath]; ok {
		pkg, err := l.Load(importPath)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(importPath)
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
