package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestDetLint exercises every nondeterminism source on a stand-in
// simulation package, and the goroutine/select exemption on a stand-in
// scheduler package.
func TestDetLint(t *testing.T) {
	lint.SimPackagePaths["detsim"] = true
	lint.SimPackagePaths["detsched"] = true
	lint.ConcurrencyExemptPaths["detsched"] = true
	t.Cleanup(func() {
		delete(lint.SimPackagePaths, "detsim")
		delete(lint.SimPackagePaths, "detsched")
		delete(lint.ConcurrencyExemptPaths, "detsched")
	})
	analysistest.RunTest(t, analysistest.Testdata(), lint.DetLint, "detsim", "detsched")
}

// TestDetLintIgnoresOtherPackages verifies the analyzer is scoped: the
// same fixture produces no findings when its path is not registered as a
// simulation package.
func TestDetLintIgnoresOtherPackages(t *testing.T) {
	loader := lint.NewLoader()
	if err := loader.AddTree(analysistest.Testdata()+"/src", ""); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("detsim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.DetLint})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("detlint fired outside simulation packages: %v", diags)
	}
}
