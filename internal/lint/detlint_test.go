package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestDetLint exercises every nondeterminism source on a stand-in
// simulation package, and the goroutine/select exemption on a stand-in
// scheduler package.
func TestDetLint(t *testing.T) {
	lint.SimPackagePaths["detsim"] = true
	lint.SimPackagePaths["detsched"] = true
	lint.ConcurrencyExemptPaths["detsched"] = true
	t.Cleanup(func() {
		delete(lint.SimPackagePaths, "detsim")
		delete(lint.SimPackagePaths, "detsched")
		delete(lint.ConcurrencyExemptPaths, "detsched")
	})
	analysistest.RunTest(t, analysistest.Testdata(), lint.DetLint, "detsim", "detsched")
}

// TestDetLintOLTPFixture pins the serving-workload tier's coverage: the
// real package path is registered as simulation code, and the stand-in
// fixture shows detlint rejecting wall clocks and global randomness in
// workload bodies while the seeded-generator idiom passes.
func TestDetLintOLTPFixture(t *testing.T) {
	if !lint.SimPackagePaths["repro/internal/oltp"] {
		t.Error("repro/internal/oltp must be registered as a simulation package")
	}
	lint.SimPackagePaths["oltp"] = true
	t.Cleanup(func() { delete(lint.SimPackagePaths, "oltp") })
	analysistest.RunTest(t, analysistest.Testdata(), lint.DetLint, "oltp")
}

// TestDetLintServiceExemption pins the service-layer boundary: the
// sweep daemon and the cell orchestration layer may use wall clocks,
// goroutines and net/http without //sitm:allow noise, and the exemption
// wins even if a path is ever listed on both sides.
func TestDetLintServiceExemption(t *testing.T) {
	for _, path := range []string{"repro/internal/exp", "repro/internal/sweep"} {
		if !lint.ServicePackagePaths[path] {
			t.Errorf("%s must be a service package", path)
		}
	}
	for path := range lint.ServicePackagePaths {
		if lint.SimPackagePaths[path] {
			t.Errorf("%s is listed as both a simulation and a service package; detlint would silently skip it", path)
		}
	}
	// A package registered on both sides produces no findings: the
	// service exemption is checked first.
	lint.SimPackagePaths["detsim"] = true
	lint.ServicePackagePaths["detsim"] = true
	t.Cleanup(func() {
		delete(lint.SimPackagePaths, "detsim")
		delete(lint.ServicePackagePaths, "detsim")
	})
	loader := lint.NewLoader()
	if err := loader.AddTree(analysistest.Testdata()+"/src", ""); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("detsim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.DetLint})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("detlint fired inside a service package: %v", diags)
	}
}

// TestDetLintIgnoresOtherPackages verifies the analyzer is scoped: the
// same fixture produces no findings when its path is not registered as a
// simulation package.
func TestDetLintIgnoresOtherPackages(t *testing.T) {
	loader := lint.NewLoader()
	if err := loader.AddTree(analysistest.Testdata()+"/src", ""); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("detsim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.DetLint})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("detlint fired outside simulation packages: %v", diags)
	}
}
