package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestFindingLint checks that report.Finding literals missing Check, OK
// or Detail are flagged, in the defining package and in consumers, while
// complete keyed and positional literals pass.
func TestFindingLint(t *testing.T) {
	analysistest.RunTest(t, analysistest.Testdata(), lint.FindingLint, "report", "findinguse")
}
