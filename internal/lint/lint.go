// Package lint implements sitm-lint: custom static-analysis passes that
// enforce the invariants the evaluation rests on — simulator determinism
// (byte-identical reports at any -workers count) and the TM-engine
// protocol rules of the paper.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Report, a `// want`-driven analysistest) but is built
// entirely on the standard library's go/ast and go/types, because this
// module deliberately has no external dependencies. If the repo ever
// vendors x/tools, porting an analyzer is mechanical: the Run signature
// and reporting API match.
//
// Suppression: a diagnostic is intentional when the offending line, or
// the doc comment of the enclosing declaration, carries an explicit
// allowlist directive naming the analyzer:
//
//	//sitm:allow(chargelint) non-transactional initialisation is uncharged (§3)
//
// Allowlisting is a documented design decision, not an escape hatch: the
// directive must name the analyzer, and the reason is part of the source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and allow directives.
	Name string
	// Doc is the one-paragraph description printed by sitm-lint -help.
	Doc string
	// Run applies the pass to one package, reporting findings on pass.
	Run func(*Pass) error
}

// A Pass connects an Analyzer run to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		pos:      pos,
	})
}

// Diagnostic is one finding of one analyzer, with its resolved position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	pos token.Pos // raw position, for suppression-span checks
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// allowRe matches allowlist directives; group 1 is the analyzer name.
var allowRe = regexp.MustCompile(`//sitm:allow\(([a-z]+)\)`)

// allowIndex records where //sitm:allow directives appear in one package.
type allowIndex struct {
	fset *token.FileSet
	// line suppressions: file -> line -> analyzer set.
	lines map[string]map[int]map[string]bool
	// declaration suppressions: analyzer -> position ranges.
	spans map[string][]span
}

type span struct{ start, end token.Pos }

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{fset: fset, lines: map[string]map[int]map[string]bool{}, spans: map[string][]span{}}
	addLine := func(pos token.Position, name string) {
		byLine := ix.lines[pos.Filename]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			ix.lines[pos.Filename] = byLine
		}
		set := byLine[pos.Line]
		if set == nil {
			set = map[string]bool{}
			byLine[pos.Line] = set
		}
		set[name] = true
	}
	for _, f := range files {
		// Every directive suppresses on its own line (trailing comments)
		// and on the following line (standalone comment above a
		// statement).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					addLine(pos, m[1])
					pos.Line++
					addLine(pos, m[1])
				}
			}
		}
		// A directive in a declaration's doc comment suppresses the whole
		// declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
					ix.spans[m[1]] = append(ix.spans[m[1]], span{decl.Pos(), decl.End()})
				}
			}
		}
	}
	return ix
}

func (ix *allowIndex) allows(d Diagnostic) bool {
	if byLine := ix.lines[d.Pos.Filename]; byLine != nil && byLine[d.Pos.Line][d.Analyzer] {
		return true
	}
	for _, s := range ix.spans[d.Analyzer] {
		if s.start <= d.pos && d.pos < s.end {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package, filters findings
// through the //sitm:allow directives, and returns the survivors sorted
// by file position. Analyzer errors (not diagnostics) abort the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ix := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ix.allows(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full sitm-lint suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{DetLint, EngineLint, ChargeLint, FindingLint, YieldLint}
}
