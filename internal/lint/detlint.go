package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SimPackagePaths lists the packages whose code must be bit-for-bit
// deterministic: everything that runs under the lowest-cycle-first
// scheduler and therefore feeds the Figure 1/7/8 and Table 2 reports.
// detlint only fires inside these packages; the experiment runner
// (internal/exp) and the CLIs live outside the simulated world and may
// use wall clocks and goroutines freely.
var SimPackagePaths = map[string]bool{
	"repro/internal/aset":   true,
	"repro/internal/sched":  true,
	"repro/internal/core":   true,
	"repro/internal/twopl":  true,
	"repro/internal/sontm":  true,
	"repro/internal/mvm":    true,
	"repro/internal/cache":  true,
	"repro/internal/mem":    true,
	"repro/internal/micro":  true,
	"repro/internal/stamp":  true,
	"repro/internal/txlib":  true,
	"repro/internal/clock":  true,
	"repro/internal/tm":     true,
	"repro/internal/mc":     true,
	"repro/internal/skew":   true,
	"repro/internal/report": true,
	"repro/internal/oltp":   true,
}

// ConcurrencyExemptPaths are the packages allowed to spawn goroutines and
// select: the deterministic scheduler itself (which confines real
// concurrency behind its run-one-thread-at-a-time token) and the
// shared-nothing experiment runner.
var ConcurrencyExemptPaths = map[string]bool{
	"repro/internal/sched": true,
	"repro/internal/exp":   true,
}

// ServicePackagePaths are the service-layer packages where wall clocks,
// goroutines, net/http and timers are the whole point — the sweep daemon
// and the cell/cache orchestration around the simulator. detlint never
// fires here (they are outside SimPackagePaths anyway; the explicit list
// documents the boundary and keeps it test-pinned), so service code needs
// no //sitm:allow noise. The line detlint holds is: nothing here may leak
// into a simulated result except through a deterministic CellResult.
var ServicePackagePaths = map[string]bool{
	"repro/internal/exp":   true,
	"repro/internal/sweep": true,
}

// wallClockFuncs are the package-level time functions that read or depend
// on the host's wall clock or timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// deterministicRandFuncs are the math/rand package-level functions that do
// NOT touch the global generator: constructors for explicitly seeded
// sources. Everything else at package level draws from the shared global
// state and is nondeterministic under concurrency.
var deterministicRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// DetLint forbids nondeterminism sources inside simulation packages:
// wall-clock time, the global math/rand generator, goroutines and select
// (outside the scheduler and the experiment runner), and map iteration
// with an order-sensitive body.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc: `forbid nondeterminism sources in simulation packages

The evaluation contract (PR 1) is byte-identical reports at any -workers
count. Inside the simulation packages that means: no wall-clock reads
(time.Now/Since/...), no global math/rand (per-thread sched.Rand only),
no goroutines or select outside internal/sched and internal/exp, and no
ranging over a map when the body is order-sensitive (appends to a slice,
writes output, or accumulates floating-point values) — iterate sorted
keys instead, as internal/report's sortedKeys helper does.`,
	Run: runDetLint,
}

func runDetLint(pass *Pass) error {
	if ServicePackagePaths[pass.Pkg.Path()] {
		return nil
	}
	if !SimPackagePaths[pass.Pkg.Path()] {
		return nil
	}
	exempt := ConcurrencyExemptPaths[pass.Pkg.Path()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.GoStmt:
				if !exempt {
					pass.Reportf(n.Pos(), "goroutine in simulation code: real concurrency breaks determinism; only internal/sched and internal/exp may spawn goroutines")
				}
			case *ast.SelectStmt:
				if !exempt {
					pass.Reportf(n.Pos(), "select in simulation code: case choice is nondeterministic; only internal/sched and internal/exp may select")
				}
			case *ast.BlockStmt:
				checkStmtList(pass, n.List)
			case *ast.CaseClause:
				checkStmtList(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// pkgQualifier resolves expr to an imported package path when expr is a
// package qualifier identifier ("time" in time.Now).
func pkgQualifier(pass *Pass, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	path, ok := pkgQualifier(pass, sel.X)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch {
	case path == "time" && wallClockFuncs[name]:
		pass.Reportf(call.Pos(), "wall-clock read in simulation code: time.%s varies run to run; use the simulated clock (internal/clock) or thread cycles (sched.Thread)", name)
	case (path == "math/rand" || path == "math/rand/v2") && !deterministicRandFuncs[name]:
		pass.Reportf(call.Pos(), "global math/rand call in simulation code: rand.%s draws from shared global state; use the per-thread deterministic sched.Rand", name)
	}
}

// checkStmtList inspects every map-range statement in one statement list,
// with the statements that follow it available for idiom recognition.
func checkStmtList(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		checkMapRange(pass, rng, stmts[i+1:])
	}
}

// checkMapRange flags `range m` over a map when the loop body is
// order-sensitive: it appends to a slice, writes output, or accumulates
// floating-point values. Two shapes are recognised as deterministic and
// exempt: iterating sorted keys (internal/report's sortedKeys pattern
// ranges a slice, so it never reaches this check), and the key-collection
// idiom — a body consisting solely of appends whose every target slice is
// sorted later in the enclosing block, which erases the iteration order.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reason := orderSensitive(pass, rng.Body)
	if reason == "" {
		return
	}
	if collected, ok := collectionTargets(rng.Body); ok && allSortedAfter(pass, collected, rest) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration with order-sensitive body (%s): iteration order is random; range over sorted keys instead (sortedKeys in internal/report)", reason)
}

// collectionTargets returns the slices a pure collection body appends to:
// every statement must have the form `s = append(s, ...)`. ok is false
// for any other body shape.
func collectionTargets(body *ast.BlockStmt) ([]string, bool) {
	var targets []string
	for _, stmt := range body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return nil, false
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return nil, false
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
			return nil, false
		}
		lhs := types.ExprString(asg.Lhs[0])
		if types.ExprString(call.Args[0]) != lhs {
			return nil, false
		}
		targets = append(targets, lhs)
	}
	return targets, len(targets) > 0
}

// allSortedAfter reports whether every collected slice is passed to a
// sort.* or slices.* call in the statements following the loop.
func allSortedAfter(pass *Pass, targets []string, rest []ast.Stmt) bool {
	sorted := map[string]bool{}
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, ok := pkgQualifier(pass, sel.X); ok && (path == "sort" || path == "slices") {
				sorted[types.ExprString(call.Args[0])] = true
			}
			return true
		})
	}
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}

// orderSensitive reports why body depends on iteration order, or "".
func orderSensitive(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" || fun.Name == "print" || fun.Name == "println" {
					if obj := pass.Info.Uses[fun]; obj != nil {
						if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
							if fun.Name == "append" {
								reason = "appends to a slice"
							} else {
								reason = "writes output"
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if path, ok := pkgQualifier(pass, fun.X); ok && path == "fmt" &&
					(strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint")) {
					reason = "writes output"
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if t := pass.Info.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						reason = "accumulates floating-point values"
					}
				}
			}
		}
		return reason == ""
	})
	return reason
}
