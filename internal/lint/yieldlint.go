package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// yieldTouchMethods lists, per simulated-storage package (matched by
// import-path suffix), the methods whose call constitutes a simulated
// shared-memory access: multiversioned-memory reads/installs, cache
// hierarchy accesses and invalidations, and the dense word/line tables
// engines use as their backing store. Metadata getters (Config, Stats,
// VersionCount) and host-side pool management (Release) are not touches.
var yieldTouchMethods = map[string]map[string]bool{
	"mvm": {
		"ReadWord": true, "ReadLine": true, "NewestTS": true,
		"NewestLine": true, "Install": true, "Revert": true,
		"NonTxReadWord": true, "NonTxWriteWord": true,
		"Checkpoint": true, "Rollback": true,
	},
	"cache": {
		"Access": true, "AccessVersioned": true,
		"Invalidate": true, "InvalidateData": true,
		"InvalidatePrivate": true, "InvalidateXlate": true,
		"InvalidateVersions": true,
	},
	"mem": {
		"Load": true, "Store": true, "Slot": true, "Slice": true,
		"Range": true,
	},
}

// YieldLint is the static soundness prerequisite for the model checker's
// claim that charged yield points are the complete set of schedule
// decision points (see DESIGN.md "Model checking"): inside a package
// that defines a tm.Engine, every simulated shared-memory access must be
// reachable only through functions that charge cycles on the simulated
// thread (sched.Thread.Tick / Stall — the only places the conductor can
// switch threads). An access reachable without a yield point is a hidden
// interleaving the schedule-space enumeration would never exercise.
var YieldLint = &Analyzer{
	Name: "yieldlint",
	Doc: `simulated shared-memory accesses must sit behind Tick/Stall yield points

sitm-check enumerates exactly the interleavings the conductor admits, and
the conductor only switches threads at Tick/Stall. A function in an
engine package that reads or writes simulated storage (mvm, the cache
hierarchy, the dense word tables) without charging cycles — directly or
in every intra-package caller — is a memory access the enumeration never
interleaves against: the model checker's verdicts would be unsound.
Exported functions are entry points callable from outside the package,
so they must charge in their own body; unexported helpers may instead be
covered by their callers. Deliberately unscheduled paths (non-
transactional initialisation, end-of-run verification) carry a
//sitm:allow(yieldlint) directive stating why.`,
	Run: runYieldLint,
}

// yieldFunc is the per-function summary the coverage fixpoint runs on.
type yieldFunc struct {
	decl    *ast.FuncDecl
	touch   types.Object // first storage method this body calls, or nil
	charges bool         // body calls Thread.Tick or Thread.Stall
	entry   bool         // exported on an exported receiver: callable uncharged from outside
	callers map[*yieldFunc]bool
	callees []types.Object // in-package functions this body calls
	covered bool
}

func runYieldLint(pass *Pass) error {
	iface := findEngineInterface(pass.Pkg)
	if iface == nil || !packageDefinesEngine(pass.Pkg, iface) {
		return nil
	}

	// Summarise every function: what it touches, whether it charges,
	// and which in-package functions it calls. Calls inside function
	// literals are attributed to the enclosing declaration — the
	// closure runs on the same simulated thread.
	funcs := map[types.Object]*yieldFunc{}
	var order []*yieldFunc
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			yf := &yieldFunc{decl: fn, callers: map[*yieldFunc]bool{}}
			recv := receiverTypeName(fn)
			yf.entry = fn.Name.IsExported() && (recv == "" || ast.IsExported(recv))
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeObject(pass, call)
				if callee == nil {
					return true
				}
				switch {
				case isYieldCharge(callee):
					yf.charges = true
				case isYieldTouch(callee):
					if yf.touch == nil {
						yf.touch = callee
					}
				case callee.Pkg() == pass.Pkg:
					yf.callees = append(yf.callees, callee)
				}
				return true
			})
			funcs[obj] = yf
			order = append(order, yf)
		}
	}
	for _, yf := range order {
		for _, callee := range yf.callees {
			if target, ok := funcs[callee]; ok {
				target.callers[yf] = true
			}
		}
	}

	// Least fixpoint from the charging roots: a function is covered if
	// it charges itself, or if it is internal, has callers, and every
	// caller is covered. Cycles of uncharged helpers stay uncovered.
	for _, yf := range order {
		yf.covered = yf.charges
	}
	for changed := true; changed; {
		changed = false
		for _, yf := range order {
			if yf.covered || yf.entry || len(yf.callers) == 0 {
				continue
			}
			all := true
			for caller := range yf.callers {
				if !caller.covered {
					all = false
					break
				}
			}
			if all {
				yf.covered, changed = true, true
			}
		}
	}

	for _, yf := range order {
		if yf.touch == nil || yf.covered {
			continue
		}
		how := "charge cycles (Tick/Stall on the sched.Thread) in its body or in every caller"
		if yf.entry {
			how = "exported entry points must charge in their own body"
		}
		pass.Reportf(yf.decl.Name.Pos(),
			"%s accesses simulated shared memory (%s.%s) without a reachable Tick/Stall yield point — a hidden interleaving the model checker never enumerates; %s, or document the exception with //sitm:allow(yieldlint)",
			yf.decl.Name.Name, yf.touch.Pkg().Name(), yf.touch.Name(), how)
	}
	return nil
}

// isYieldCharge matches sched.Thread's charging methods — the operations
// that hand control back to the conductor. TickHinted and LocalTick
// count: under the reference conductors the model checker enumerates
// with, both behave exactly like Tick, so an access behind them is a
// decision point the enumeration does interleave (the batching they
// enable under the heap conductor is separately proven observation-
// equivalent by the differential oracles). Fence does NOT count — it
// charges nothing and is a no-op under the reference conductors, so it
// never yields where the model checker looks.
func isYieldCharge(obj types.Object) bool {
	switch obj.Name() {
	case "Tick", "Stall", "TickHinted", "LocalTick":
		return receiverInPackage(obj, "sched", "Thread")
	}
	return false
}

// isYieldTouch reports whether obj is a simulated-storage access method
// from yieldTouchMethods.
func isYieldTouch(obj types.Object) bool {
	for pkg, methods := range yieldTouchMethods {
		if methods[obj.Name()] && receiverInPackage(obj, pkg, "") {
			return true
		}
	}
	return false
}

// receiverInPackage reports whether obj is a method whose receiver's
// named base type is declared in a package with the given path suffix
// (and, when typeName is non-empty, has that name).
func receiverInPackage(obj types.Object, pkgSuffix, typeName string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if typeName != "" && named.Obj().Name() != typeName {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
