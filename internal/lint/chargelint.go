package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChargedPackagePaths are the packages that model simulated memory and
// must account every access in cycles: the cache hierarchy and the
// multiversioned memory.
var ChargedPackagePaths = map[string]bool{
	"repro/internal/cache": true,
	"repro/internal/mvm":   true,
}

// chargeTouchFuncs are the package-internal routines that walk simulated
// storage (cache tag arrays, version lists). An exported function that
// calls one of them is dereferencing simulated memory.
var chargeTouchFuncs = map[string]bool{
	"access": true, "invalidate": true, "visible": true, "gc": true,
}

// chargeTouchFields are the struct fields that hold simulated data
// contents; selecting one dereferences simulated memory.
var chargeTouchFields = map[string]bool{
	"data": true,
}

// ChargeLint ensures no simulated-memory access escapes latency
// accounting: an exported function in a charged package whose body
// dereferences simulated storage must either thread a cycle-charging
// parameter (*clock.Clock, *sched.Thread or a clock.Timestamp snapshot
// point) or return the access latency in cycles (uint64). Deliberate
// exceptions — measurement scans, non-transactional initialisation —
// carry a //sitm:allow(chargelint) directive stating why.
var ChargeLint = &Analyzer{
	Name: "chargelint",
	Doc: `simulated-memory accessors must charge cycles

The timing results (Figure 8) are only as good as the latency model: a
helper that reads version lists or cache tags without charging cycles is
a free memory access the simulated hardware would have paid for. Exported
entry points that touch simulated storage must take a charging parameter
or return their latency.`,
	Run: runChargeLint,
}

func runChargeLint(pass *Pass) error {
	if !ChargedPackagePaths[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if recv := receiverTypeName(fn); recv != "" && !ast.IsExported(recv) {
				continue // methods on unexported types are internal
			}
			if !touchesSimMemory(pass, fn.Body) {
				continue
			}
			if chargesCycles(pass, fn.Type) {
				continue
			}
			pass.Reportf(fn.Name.Pos(), "exported %s dereferences simulated memory without charging cycles: take a *clock.Clock, *sched.Thread or clock.Timestamp parameter, return the latency (uint64), or document the exception with //sitm:allow(chargelint)", fn.Name.Name)
		}
	}
	return nil
}

// receiverTypeName returns the name of the method receiver's base type,
// or "" for plain functions.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// touchesSimMemory reports whether body calls a storage-walking routine
// or selects a simulated-data field of this package.
func touchesSimMemory(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := calleeObject(pass, n); obj != nil &&
				obj.Pkg() == pass.Pkg && !obj.Exported() && chargeTouchFuncs[obj.Name()] {
				found = true
			}
		case *ast.SelectorExpr:
			if sel := pass.Info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				obj := sel.Obj()
				if obj.Pkg() == pass.Pkg && chargeTouchFields[obj.Name()] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// calleeObject resolves the function or method object a call invokes.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

// chargesCycles reports whether the signature threads a charging
// parameter or returns a latency.
func chargesCycles(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if isChargingType(pass.Info.TypeOf(field.Type)) {
				return true
			}
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			if t := pass.Info.TypeOf(field.Type); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
					// uint64 results are latencies in cycles by
					// convention (cache.Hierarchy.Access), except
					// named types like clock.Timestamp.
					if _, named := t.(*types.Named); !named {
						return true
					}
				}
			}
		}
	}
	return false
}

// isChargingType matches *clock.Clock, *sched.Thread and clock.Timestamp.
func isChargingType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name, pkg := named.Obj().Name(), named.Obj().Pkg().Path()
	switch name {
	case "Clock", "Timestamp":
		return pkg == "clock" || strings.HasSuffix(pkg, "/clock")
	case "Thread":
		return pkg == "sched" || strings.HasSuffix(pkg, "/sched")
	}
	return false
}
