package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// findingRequiredFields are the report.Finding fields every literal must
// set: a finding with an empty check name, an unset verdict or no detail
// is useless in the verification report.
var findingRequiredFields = []string{"Check", "OK", "Detail"}

// FindingLint requires every report.Finding composite literal to set
// Check, OK and Detail explicitly.
var FindingLint = &Analyzer{
	Name: "findinglint",
	Doc: `report.Finding literals must set Check, OK and Detail

The shape checks of EXPERIMENTS.md surface through report.Finding values;
sitm-bench -verify fails the reproduction on any finding with OK=false.
A literal that forgets OK silently passes, and one without Check or
Detail produces an undebuggable report line. Keyed literals must name all
three fields (positional literals necessarily set everything).`,
	Run: runFindingLint,
}

func runFindingLint(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			named, ok := pass.Info.TypeOf(lit).(*types.Named)
			if !ok || !isFindingType(named) {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			// A positional literal must populate every field; only keyed
			// (or empty) literals can omit one.
			if len(lit.Elts) > 0 {
				if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
					return true
				}
			}
			missing := map[string]bool{}
			for _, name := range findingRequiredFields {
				if hasField(st, name) {
					missing[name] = true
				}
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					delete(missing, key.Name)
				}
			}
			if len(missing) > 0 {
				names := make([]string, 0, len(missing))
				for name := range missing {
					names = append(names, name)
				}
				sort.Strings(names)
				pass.Reportf(lit.Pos(), "report.Finding literal does not set %s: every finding needs its check name, verdict and measured detail", strings.Join(names, ", "))
			}
			return true
		})
	}
	return nil
}

// isFindingType matches report.Finding (and testdata stand-ins: a type
// named Finding in a package named report).
func isFindingType(named *types.Named) bool {
	obj := named.Obj()
	return obj.Name() == "Finding" && obj.Pkg() != nil && obj.Pkg().Name() == "report"
}

// hasField reports whether the struct declares a field with this name.
func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
