package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestYieldLint checks the yield-point soundness contract on a stand-in
// engine package: every simulated shared-memory access must be reachable
// only through functions that charge Tick/Stall, directly or via every
// intra-package caller; exported entry points must charge in their own
// body.
func TestYieldLint(t *testing.T) {
	analysistest.RunTest(t, analysistest.Testdata(), lint.YieldLint, "yield")
}

// TestYieldLintSkipsNonEnginePackages: a package without a tm.Engine
// implementation is outside the rule even if it calls storage methods
// (the mvm fixture itself, whose map walks are its own business).
func TestYieldLintSkipsNonEnginePackages(t *testing.T) {
	analysistest.RunTest(t, analysistest.Testdata(), lint.YieldLint, "mvm")
}
