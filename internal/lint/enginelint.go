package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// EngineLint enforces two engine-package disciplines. Construction
// (PR 1): tm.Engine implementations are built through the engine registry
// (tm.NewEngine / self-registered factories), never by writing a struct
// literal of an engine type in consumer code. Literals are allowed only
// inside the engine's defining package (where its New constructor lives)
// and in register.go files (the registration glue). Access tracking
// (PR 5): inside packages that define an engine, per-transaction
// read/write sets are the signature-backed tables of internal/aset, not
// mem.Line-keyed Go maps; map-based tracking is allowed only in slow.go,
// the verbatim reference oracle behind EngineOptions.ReferenceSets.
var EngineLint = &Analyzer{
	Name: "enginelint",
	Doc: `engines must be constructed through the tm registry and track accesses with internal/aset

A direct struct literal of an engine type bypasses the registered
factory: it skips option mapping, produces engines the experiment runner
cannot name, and couples consumers to engine internals. Construct
engines with tm.NewEngine(name, opts); inside an engine package, use its
New constructor.

A mem.Line-keyed map in an engine package reintroduces the map-backed
access tracking the aset fast path replaced: it allocates per
transaction, hashes per access, and resets in O(capacity). Use
aset.LineSet / aset.LineMap / aset.WriteLog; the only map-based sets
allowed are in slow.go, the unchanged reference oracle.`,
	Run: runEngineLint,
}

func runEngineLint(pass *Pass) error {
	iface := findEngineInterface(pass.Pkg)
	if iface == nil {
		return nil // package cannot see tm.Engine, so no engine types either
	}
	if packageDefinesEngine(pass.Pkg, iface) {
		checkLineMaps(pass)
	}
	for _, f := range pass.Files {
		allowed := filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "register.go"
		if allowed {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if t == nil {
				return true
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg() == pass.Pkg {
				return true
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return true
			}
			if !types.Implements(types.NewPointer(named), iface) && !types.Implements(named, iface) {
				return true
			}
			pass.Reportf(lit.Pos(), "direct construction of engine %s.%s bypasses the tm registry; use tm.NewEngine(%q, opts) (or the package's New constructor from register.go)",
				named.Obj().Pkg().Name(), named.Obj().Name(), named.Obj().Name())
			return true
		})
	}
	return nil
}

// packageDefinesEngine reports whether the package declares a type
// implementing tm.Engine — the packages whose hot paths the access-set
// rule guards.
func packageDefinesEngine(pkg *types.Package, iface *types.Interface) bool {
	for _, name := range pkg.Scope().Names() {
		obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		t := obj.Type()
		if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
			continue
		}
		if types.Implements(types.NewPointer(t), iface) || types.Implements(t, iface) {
			return true
		}
	}
	return false
}

// checkLineMaps flags mem.Line-keyed map types anywhere outside the
// reference oracle (slow.go) and tests: engine access sets must use
// internal/aset.
func checkLineMaps(pass *Pass) {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if base == "slow.go" || strings.HasSuffix(base, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			mt, ok := n.(*ast.MapType)
			if !ok {
				return true
			}
			key := pass.Info.TypeOf(mt.Key)
			if key == nil || !isMemLine(key) {
				return true
			}
			pass.Reportf(mt.Pos(), "mem.Line-keyed map in engine package: track access sets with internal/aset (LineSet/LineMap/WriteLog); map-based tracking is allowed only in slow.go, the reference oracle")
			return true
		})
	}
}

// isMemLine matches the mem.Line address type (and testdata stand-ins in
// a package named mem).
func isMemLine(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != "Line" {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "repro/internal/mem" || path == "mem" || strings.HasSuffix(path, "/mem")
}

// findEngineInterface locates the tm.Engine interface among the package's
// transitive imports (packages implementing or consuming engines always
// import tm, directly or through the engine package).
func findEngineInterface(root *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Interface
	walk = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if isTMPath(p.Path()) {
			if obj, ok := p.Scope().Lookup("Engine").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
		for _, imp := range p.Imports() {
			if iface := walk(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return walk(root)
}

// isTMPath matches the tm package (and testdata stand-ins named tm).
func isTMPath(path string) bool {
	return path == "repro/internal/tm" || path == "tm" || strings.HasSuffix(path, "/tm")
}
