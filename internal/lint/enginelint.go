package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// EngineLint enforces the PR 1 construction discipline: tm.Engine
// implementations are built through the engine registry
// (tm.NewEngine / self-registered factories), never by writing a struct
// literal of an engine type in consumer code. Literals are allowed only
// inside the engine's defining package (where its New constructor lives)
// and in register.go files (the registration glue).
var EngineLint = &Analyzer{
	Name: "enginelint",
	Doc: `engines must be constructed through the tm registry

A direct struct literal of an engine type bypasses the registered
factory: it skips option mapping, produces engines the experiment runner
cannot name, and couples consumers to engine internals. Construct
engines with tm.NewEngine(name, opts); inside an engine package, use its
New constructor.`,
	Run: runEngineLint,
}

func runEngineLint(pass *Pass) error {
	iface := findEngineInterface(pass.Pkg)
	if iface == nil {
		return nil // package cannot see tm.Engine, so no engine types either
	}
	for _, f := range pass.Files {
		allowed := filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "register.go"
		if allowed {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if t == nil {
				return true
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg() == pass.Pkg {
				return true
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return true
			}
			if !types.Implements(types.NewPointer(named), iface) && !types.Implements(named, iface) {
				return true
			}
			pass.Reportf(lit.Pos(), "direct construction of engine %s.%s bypasses the tm registry; use tm.NewEngine(%q, opts) (or the package's New constructor from register.go)",
				named.Obj().Pkg().Name(), named.Obj().Name(), named.Obj().Name())
			return true
		})
	}
	return nil
}

// findEngineInterface locates the tm.Engine interface among the package's
// transitive imports (packages implementing or consuming engines always
// import tm, directly or through the engine package).
func findEngineInterface(root *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Interface
	walk = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if isTMPath(p.Path()) {
			if obj, ok := p.Scope().Lookup("Engine").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
		for _, imp := range p.Imports() {
			if iface := walk(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return walk(root)
}

// isTMPath matches the tm package (and testdata stand-ins named tm).
func isTMPath(path string) bool {
	return path == "repro/internal/tm" || path == "tm" || strings.HasSuffix(path, "/tm")
}
