package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestEngineLint checks that direct engine struct literals are flagged in
// consumer code, while the defining package, register.go files,
// constructor calls and non-engine literals pass.
func TestEngineLint(t *testing.T) {
	analysistest.RunTest(t, analysistest.Testdata(), lint.EngineLint, "engineuse", "engines")
}
