package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestEngineLint checks that direct engine struct literals are flagged in
// consumer code, while the defining package, register.go files,
// constructor calls and non-engine literals pass.
func TestEngineLint(t *testing.T) {
	analysistest.RunTest(t, analysistest.Testdata(), lint.EngineLint, "engineuse", "engines")
}

// TestEngineLintAccessSets checks the access-set rule: mem.Line-keyed
// maps are flagged inside engine-defining packages, except in slow.go
// (the reference oracle); thread-ID- and string-keyed maps pass.
func TestEngineLintAccessSets(t *testing.T) {
	analysistest.RunTest(t, analysistest.Testdata(), lint.EngineLint, "enginesets")
}
