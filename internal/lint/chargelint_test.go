package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// TestChargeLint checks the cycle-accounting contract on a stand-in
// memory package: exported entry points that dereference simulated
// storage must thread a charging parameter or return a latency.
func TestChargeLint(t *testing.T) {
	lint.ChargedPackagePaths["charge"] = true
	t.Cleanup(func() { delete(lint.ChargedPackagePaths, "charge") })
	analysistest.RunTest(t, analysistest.Testdata(), lint.ChargeLint, "charge")
}
