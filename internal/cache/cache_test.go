package cache

import (
	"testing"

	"repro/internal/mem"
)

func newPair() (*Hierarchy, Config) {
	cfg := DefaultConfig()
	sh := NewShared(cfg)
	return NewHierarchy(cfg, sh), cfg
}

func TestColdMissCosts(t *testing.T) {
	h, cfg := newPair()
	if got := h.Access(1); got != cfg.MemLatency {
		t.Fatalf("cold access = %d cycles, want %d", got, cfg.MemLatency)
	}
	if got := h.Access(1); got != cfg.L1Latency {
		t.Fatalf("warm access = %d cycles, want %d (L1 hit)", got, cfg.L1Latency)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	h, cfg := newPair()
	// L1: 32 KiB / 64 B / 4 ways = 128 sets. Lines k*128+set map to the
	// same set; 5 of them overflow the 4 ways.
	var conflict [5]mem.Line
	for i := range conflict {
		conflict[i] = mem.Line(uint64(i+1) * 128)
		h.Access(conflict[i])
	}
	// The first line was evicted from L1 but lives in L2.
	if got := h.Access(conflict[0]); got != cfg.L2Latency {
		t.Fatalf("evicted line = %d cycles, want %d (L2 hit)", got, cfg.L2Latency)
	}
}

func TestSharedL3VisibleAcrossCores(t *testing.T) {
	cfg := DefaultConfig()
	sh := NewShared(cfg)
	h0 := NewHierarchy(cfg, sh)
	h1 := NewHierarchy(cfg, sh)
	h0.Access(42)
	if got := h1.Access(42); got != cfg.L3Latency {
		t.Fatalf("other core access = %d cycles, want %d (shared L3 hit)", got, cfg.L3Latency)
	}
}

func TestInvalidateForcesRefetch(t *testing.T) {
	h, cfg := newPair()
	h.Access(7)
	h.Invalidate(7)
	if got := h.Access(7); got != cfg.L3Latency {
		t.Fatalf("post-invalidate access = %d cycles, want %d (L3, private caches flushed)", got, cfg.L3Latency)
	}
}

func TestVersionedIndirectionPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.XlateEntries = 0 // no translation cache: every L2 miss pays
	sh := NewShared(cfg)
	h := NewHierarchy(cfg, sh)
	// Cold: the version-list line misses the MVM partition (memory)
	// and the data line misses everything (memory).
	if got := h.AccessVersioned(9); got != cfg.MemLatency+cfg.MemLatency {
		t.Fatalf("cold versioned access = %d cycles, want %d", got, 2*cfg.MemLatency)
	}
	// Private-cache hits never pay the indirection.
	if got := h.AccessVersioned(9); got != cfg.L1Latency {
		t.Fatalf("warm versioned access = %d cycles, want %d", got, cfg.L1Latency)
	}
	// A neighbouring data line shares line 9's version-list line, which
	// is now resident in the MVM partition: one L3-latency indirection.
	if got := h.AccessVersioned(10); got != cfg.MemLatency+cfg.L3Latency {
		t.Fatalf("partition-hit versioned access = %d cycles, want %d", got, cfg.MemLatency+cfg.L3Latency)
	}
}

func TestTranslationCacheHidesIndirection(t *testing.T) {
	h, cfg := newPair()
	h.AccessVersioned(8) // warm the translation cache (pays once)
	// Line 9 shares line 8's translation line (8 entries per 64-byte
	// version-list line), so its cold access skips the indirection.
	if got := h.AccessVersioned(9); got != cfg.MemLatency {
		t.Fatalf("xlate-covered access = %d cycles, want %d (no indirection)", got, cfg.MemLatency)
	}
	if h.Stats.XlateHits == 0 {
		t.Fatal("expected a translation cache hit")
	}
}

func TestStatsCount(t *testing.T) {
	h, _ := newPair()
	h.Access(1)
	h.Access(1)
	if h.Stats.MemAccesses != 1 || h.Stats.L1Hits != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a zero-set cache")
		}
	}()
	newLevel(32, 3, nil) // smaller than one way of lines
}

func TestNonPowerOfTwoSetsWork(t *testing.T) {
	l := newLevel(3*64*2, 2, nil) // 3 sets, 2 ways
	for i := 1; i <= 12; i++ {
		l.access(mem.Line(i))
	}
	hits := 0
	for i := 7; i <= 12; i++ { // the 2 most recent lines of each set
		if l.access(mem.Line(i)) {
			hits++
		}
	}
	if hits != 6 {
		t.Fatalf("hits = %d, want 6 (LRU within modulo-indexed sets)", hits)
	}
}

func TestLRUReplacement(t *testing.T) {
	l := newLevel(2*64*2, 2, nil)                    // 2 sets, 2 ways
	a, b, c := mem.Line(2), mem.Line(4), mem.Line(6) // all map to set 0
	l.access(a)
	l.access(b)
	l.access(a) // a is MRU, b is LRU
	l.access(c) // evicts b
	if !l.access(a) {
		t.Fatal("a should still be resident")
	}
	if l.access(b) {
		t.Fatal("b should have been evicted (LRU)")
	}
}
