package cache

import "repro/internal/mem"

// This file retains the pre-fast-path memory-hierarchy model verbatim as
// the differential oracle for the way-predicted implementation in
// cache.go, mirroring the sched.Run/sched.Slow pattern: slowLevel and
// SlowHierarchy are the readable specification of the simulated
// architecture, and the property/engine/harness-level differential tests
// pin that the fast path charges identical latencies, produces identical
// stats and evicts identical lines for any access stream.
//
// The only deliberate deviations from the original implementation are
// that Stats.Accesses is counted (the field postdates the original) and
// that slow levels never pool their arrays (the oracle runs in tests and
// reference sweeps, where allocation cost is irrelevant).

// slowLevel is one set-associative cache with LRU replacement. Power-of-
// two set counts index with a mask; other sizes (e.g. the 24 MiB data
// region left after carving the MVM partition out of the L3) fall back to
// modulo.
type slowLevel struct {
	sets    int
	ways    int
	tags    []mem.Line // sets*ways entries; 0 means empty (line 0 unused)
	stamps  []uint64   // LRU timestamps, parallel to tags
	clock   uint64
	setMask uint64 // sets-1 when sets is a power of two, else 0
}

func newSlowLevel(sizeBytes, ways int) *slowLevel {
	sets := sizeBytes / mem.LineBytes / ways
	if sets <= 0 {
		panic("cache: set count must be positive")
	}
	l := &slowLevel{
		sets: sets, ways: ways,
		tags:   make([]mem.Line, sets*ways),
		stamps: make([]uint64, sets*ways),
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	}
	return l
}

// setOf maps a line to its set index.
func (l *slowLevel) setOf(line mem.Line) int {
	if l.setMask != 0 {
		return int(uint64(line) & l.setMask)
	}
	return int(uint64(line) % uint64(l.sets))
}

// access looks up line; on miss it fills the line, evicting LRU.
// It reports whether the access hit.
func (l *slowLevel) access(line mem.Line) bool {
	l.clock++
	base := l.setOf(line) * l.ways
	// Subslice the set once so the way scan runs without per-element
	// bounds checks.
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	victim, oldest := 0, ^uint64(0)
	for i, tag := range tags {
		if tag == line {
			stamps[i] = l.clock
			return true
		}
		if stamps[i] < oldest {
			oldest, victim = stamps[i], i
		}
	}
	tags[victim] = line
	stamps[victim] = l.clock
	return false
}

// invalidate removes line if present.
func (l *slowLevel) invalidate(line mem.Line) {
	base := l.setOf(line) * l.ways
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways]
	for i, tag := range tags {
		if tag == line {
			tags[i] = 0
			stamps[i] = 0
		}
	}
}

// SlowHierarchy is the reference implementation of Hierarchy: the private
// L1/L2 (+ translation cache) of one core wired to a shared L3, with a
// full way scan and LRU stamp update on every probe.
type SlowHierarchy struct {
	cfg   Config
	l1    *slowLevel
	l2    *slowLevel
	l3    *SlowShared
	xlate *slowLevel
	Stats Stats
}

// SlowShared is the reference implementation of Shared: the L3 cache
// split into a data region and the MVM partition.
type SlowShared struct {
	cfg Config
	l3  *slowLevel
	mvm *slowLevel
}

// NewSlowShared builds the reference shared L3 for cfg.
func NewSlowShared(cfg Config) *SlowShared {
	dataBytes := cfg.L3SizeBytes - cfg.MVMPartBytes
	if dataBytes <= 0 {
		dataBytes = cfg.L3SizeBytes
	}
	s := &SlowShared{cfg: cfg, l3: newSlowLevel(dataBytes, cfg.L3Ways)}
	if cfg.MVMPartBytes > 0 {
		s.mvm = newSlowLevel(cfg.MVMPartBytes, cfg.L3Ways)
	}
	return s
}

// NewSlowHierarchy builds one core's reference private hierarchy attached
// to shared.
func NewSlowHierarchy(cfg Config, shared *SlowShared) *SlowHierarchy {
	h := &SlowHierarchy{cfg: cfg, l1: newSlowLevel(cfg.L1SizeBytes, cfg.L1Ways), l2: newSlowLevel(cfg.L2SizeBytes, cfg.L2Ways), l3: shared}
	if cfg.XlateEntries > 0 {
		h.xlate = newSlowLevel(cfg.XlateEntries*mem.LineBytes, 4)
	}
	return h
}

// Access charges a plain (non-versioned) access to line and returns its
// latency in cycles.
func (h *SlowHierarchy) Access(line mem.Line) uint64 {
	h.Stats.Accesses++
	if h.l1.access(line) {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if h.l2.access(line) {
		h.Stats.L2Hits++
		return h.cfg.L2Latency
	}
	if h.l3.l3.access(line) {
		h.Stats.L3Hits++
		return h.cfg.L3Latency
	}
	h.Stats.MemAccesses++
	return h.cfg.MemLatency
}

// AccessVersioned charges a transactional access to a multiversioned
// line; see Hierarchy.AccessVersioned for the model.
func (h *SlowHierarchy) AccessVersioned(line mem.Line) uint64 {
	h.Stats.Accesses++
	if h.l1.access(line) {
		h.Stats.L1Hits++
		return h.cfg.L1Latency
	}
	if h.l2.access(line) {
		h.Stats.L2Hits++
		return h.cfg.L2Latency
	}
	// On an L2 miss the version-list entry must be consulted before
	// the data line: the translation cache hides the lookup entirely;
	// otherwise the entry is fetched from the L3's MVM partition, or
	// from memory when not resident there.
	var indirection uint64
	if h.xlate != nil && h.xlate.access(xlateLine(line)) {
		h.Stats.XlateHits++
	} else {
		h.Stats.XlateMisses++
		if h.l3.mvm != nil && h.l3.mvm.access(xlateLine(line)) {
			indirection = h.cfg.L3Latency
		} else if h.l3.mvm != nil {
			indirection = h.cfg.MemLatency
		} else {
			indirection = h.cfg.L3Latency
		}
	}
	if h.l3.l3.access(line) {
		h.Stats.L3Hits++
		return h.cfg.L3Latency + indirection
	}
	h.Stats.MemAccesses++
	return h.cfg.MemLatency + indirection
}

// Invalidate drops line from the private caches of this core, the cached
// translation and the partition-resident version-list line.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (h *SlowHierarchy) Invalidate(line mem.Line) {
	h.l1.invalidate(line)
	h.l2.invalidate(line)
	if h.xlate != nil {
		h.xlate.invalidate(xlateLine(line))
	}
	if h.l3.mvm != nil {
		h.l3.mvm.invalidate(xlateLine(line))
	}
}

// InvalidateVersions drops the version-list line holding line's
// indirection entry from the shared MVM partition; the Reference-mode
// counterpart of Shared.InvalidateVersions.
//
//sitm:allow(chargelint) invalidation is part of the committer's publish step; its cost is charged to the committing thread by the engine's commit Tick, not to the invalidated cores, which do no work.
func (s *SlowShared) InvalidateVersions(line mem.Line) {
	if s.mvm != nil {
		s.mvm.invalidate(xlateLine(line))
	}
}
