package cache

import (
	"testing"

	"repro/internal/mem"
)

// latencyTrace charges a fixed access pattern and returns the latency
// sequence — the full observable behaviour of a hierarchy.
func latencyTrace(cfg Config) []uint64 {
	sh := NewShared(cfg)
	h := NewHierarchy(cfg, sh)
	var out []uint64
	for i := 0; i < 64; i++ {
		l := mem.Line(i*37%19 + 1)
		out = append(out, h.Access(l), h.AccessVersioned(l+7))
		if i%13 == 0 {
			h.Invalidate(l)
		}
	}
	return out
}

// TestScratchReuseIsPristine pins the determinism contract of the pool:
// a hierarchy built from recycled arrays behaves bit-identically to one
// built from fresh allocations, however dirty the arrays were when
// released.
func TestScratchReuseIsPristine(t *testing.T) {
	fresh := latencyTrace(DefaultConfig())

	cfg := DefaultConfig()
	cfg.Scratch = NewScratch()
	for round := 0; round < 3; round++ {
		got := latencyTrace(cfg) // builds, dirties and leaks into the pool
		for i := range fresh {
			if got[i] != fresh[i] {
				t.Fatalf("round %d: latency[%d] = %d, recycled arrays diverge from fresh (%d)", round, i, got[i], fresh[i])
			}
		}
		// Return the arrays so the next round actually recycles them.
		sh := NewShared(cfg)
		h := NewHierarchy(cfg, sh)
		for i := 0; i < 100; i++ {
			h.Access(mem.Line(i + 1)) // dirty the tags before release
		}
		h.Release()
		sh.Release()
	}
}

// TestScratchRecyclesArrays checks the pool actually reuses backing
// arrays instead of silently allocating fresh ones.
func TestScratchRecyclesArrays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scratch = NewScratch()
	sh := NewShared(cfg)
	first := &sh.l3.tags[0]
	sh.Release()
	sh2 := NewShared(cfg)
	if &sh2.l3.tags[0] != first {
		t.Fatal("released L3 arrays were not recycled by the next NewShared")
	}
	if sh2.l3.clock != 0 {
		t.Fatalf("recycled level clock = %d, want 0", sh2.l3.clock)
	}
}

// TestScratchPoolIsBounded pins the pool's memory bound: releases beyond
// maxPoolPerGeometry levels of one geometry are dropped to the garbage
// collector instead of pinning their arrays forever, and acquire drains
// exactly the retained levels before falling back to fresh allocation.
func TestScratchPoolIsBounded(t *testing.T) {
	s := NewScratch()
	const ways = 2
	sizeBytes := 4 * mem.LineBytes * ways // 4 sets
	for i := 0; i < maxPoolPerGeometry+10; i++ {
		s.release(newLevel(sizeBytes, ways, nil))
	}
	g := geometry{sets: 4, ways: ways}
	if got := len(s.free[g]); got != maxPoolPerGeometry {
		t.Fatalf("pool holds %d levels of one geometry, want cap %d", got, maxPoolPerGeometry)
	}
	for i := 0; i < maxPoolPerGeometry; i++ {
		if s.acquire(4, ways) == nil {
			t.Fatalf("acquire %d returned nil with %d levels pooled", i, maxPoolPerGeometry)
		}
	}
	if s.acquire(4, ways) != nil {
		t.Fatal("acquire beyond the pooled count returned a level from an empty pool")
	}
}

// TestNilScratchIsNoop: a nil pool must behave exactly like no pool.
func TestNilScratchIsNoop(t *testing.T) {
	var s *Scratch
	if l := s.acquire(4, 2); l != nil {
		t.Fatal("nil scratch returned a level")
	}
	s.release(newLevel(4*64*2, 2, nil)) // must not panic
	sh := NewShared(DefaultConfig())
	sh.Release() // nil cfg.Scratch: no-op, must not panic
}
